package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/tune"
)

// The benchmarks in bench_test.go regenerate the paper's figures; these
// smoke tests make `go test .` exercise the same entry points as real
// tests, so the root package never reports "[no tests to run]" and a
// broken harness fails tier-1 CI instead of hiding behind -bench.

// TestSmokePaperCounts pins the paper's Section IV in-text transfer
// counts through the analytic model the benchmarks report.
func TestSmokePaperCounts(t *testing.T) {
	cases := []struct {
		p, native, tuned int
	}{
		{8, 56, 44},
		{10, 90, 75},
	}
	for _, tc := range cases {
		nat := core.RingTrafficNative(tc.p, 64*tc.p)
		tun := core.RingTrafficTuned(tc.p, 64*tc.p)
		if nat.Messages != tc.native || tun.Messages != tc.tuned {
			t.Errorf("P=%d: counts %d/%d want %d/%d", tc.p, nat.Messages, tun.Messages, tc.native, tc.tuned)
		}
	}
}

// TestSmokeSimHarness runs one simulated measurement per ring variant —
// the exact harness the Figure 6 benchmarks drive — and checks the
// paper's direction: opt at least matches native for a long message.
func TestSmokeSimHarness(t *testing.T) {
	cfg := simCfg()
	const np, n = 64, 1 << 20
	nat, err := bench.MeasureSim(cfg, bench.Native, np, n)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := bench.MeasureSim(cfg, bench.Opt, np, n)
	if err != nil {
		t.Fatal(err)
	}
	if nat.MBps <= 0 || opt.MBps <= 0 {
		t.Fatalf("non-positive bandwidth: native %v, opt %v", nat, opt)
	}
	if opt.Seconds > nat.Seconds*1.05 {
		t.Errorf("opt slower than native at (np=%d, n=%d): %g vs %g s", np, n, opt.Seconds, nat.Seconds)
	}
}

// TestSmokeSegmentedRingDecision runs a segmented-ring decision through
// the simulated harness, covering the registry path the segment-size
// sweep depends on.
func TestSmokeSegmentedRingDecision(t *testing.T) {
	cfg := simCfg()
	d := tune.Decision{Algorithm: tune.RingOptSeg, SegSize: 8192}
	r, err := bench.MeasureSimDecision(cfg, d, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.MBps <= 0 {
		t.Fatalf("non-positive bandwidth: %+v", r)
	}
}
