// Package repro is a from-scratch Go reproduction of "A Bandwidth-saving
// Optimization for MPI Broadcast Collective Operation" (Zhou, Marjanović,
// Niethammer, Gracia — ICPP 2015, arXiv:1603.06809).
//
// The paper tunes MPICH3's scatter-ring-allgather broadcast: the native
// allgather phase runs an enclosed ring in which every rank re-receives
// chunks it already holds from the binomial scatter; the tuned ring makes
// each rank ownership-aware and skips those transfers, saving bandwidth
// with the same step count.
//
// This module contains the complete system: the public API facade
// (package bcast — the module's importable surface), an MPI-like
// runtime (internal/engine), the broadcast algorithm family and its
// analytic traffic model (internal/core, internal/collective), the
// pluggable algorithm registry and auto-tuning subsystem that replaces
// MPICH3's hardcoded dispatch (internal/collective's registry +
// internal/tune), a deterministic cluster simulator that regenerates
// the paper's figures at full scale (internal/netsim), traffic tracing
// (internal/trace), the measurement harnesses (internal/bench),
// command-line tools (cmd/...), and runnable examples (examples/...).
// See README.md for the tour, the quickstart and the tuning workflow.
//
// Package bcast is how users reach the stack: bcast.NewCluster boots a
// placed group of ranks from functional options, Cluster.Run hands each
// rank a method-based Comm, and every communicating method takes a
// context.Context whose cancellation unwinds all ranks without leaking
// goroutines (plumbed through the engine's point-to-point operations).
// The examples import only this package.
//
// Algorithm selection is a first-class subsystem with exactly one
// path: every entry point — the facade's options, Bcast/BcastOpt/
// BcastWith, the bench harness — resolves to a collective.Options value
// whose Decide turns the call's environment into a tune.Decision that
// the registry executes. Every broadcast registers into that named
// registry with capability predicates; the default tuner reproduces
// MPICH3's thresholds bit-for-bit, and tune.AutoTune derives JSON
// tuning tables from measured crossover points on the simulated cluster
// (bcastsim -autotune) or the real engine (bcastbench -autotune), which
// bcast.TuneTable loads back at the API boundary. Segmentation is
// generalized from the chain broadcast to the whole scatter-ring family
// (scatter-ring-allgather-seg, scatter-ring-allgather-opt-seg), and
// tune.AutoTuneSweep re-measures the grid across segment sizes and
// process placements (blocked vs round-robin at varying cores per node;
// bcastsim -segs/-placements), emitting placement-keyed rule groups
// that resolve at run time through the environment derived from
// Comm.Topology(). See internal/tune's package documentation for the
// architecture.
//
// Measurement itself has two interchangeable substrates behind the
// tune.Measurer seam: the netsim virtual-time model, and internal/measure
// — the wall-clock subsystem that boots an engine.World per placement and
// times the registered implementations between barriers, reducing
// warmed-up repetitions with robust statistics (min/median/MAD-trimmed
// mean) and persisting raw samples as JSON. The real-engine auto-tuner
// (bcastbench -autotune) derives tables from those wall-clock runs, and
// bench.CrossCheck (bcastbench -crosscheck) derives one table from each
// substrate over the same grid and reports the cells where the cost model
// and the wall clock disagree on the winner.
//
// How ranks execute inside the engine is itself a pluggable layer
// (engine.Executor): the default substrate runs one goroutine per rank,
// and the pooled substrate (engine.Options.Executor = engine.Pooled,
// bcast.ExecPooled, bcastbench -exec pooled) multiplexes ranks
// cooperatively onto min(GOMAXPROCS, MaxWorkers) workers — ranks park at
// the engine's blocking points and release their execution slot, so
// worlds with np in the hundreds (the paper's Figures 5/7 regime) run
// with a bounded runnable set and wall-clock grids stay meaningful. The
// executor-parity grid test asserts both substrates produce
// byte-identical buffers and identical traced traffic for every
// registered algorithm, and every table or sample log records which
// substrate measured it.
//
// How messages move between ranks is pluggable too (internal/transport,
// engine.Options.Transport, bcast.WithTransport): the default chan
// transport keeps traffic on the in-process channel path — byte- and
// traffic-identical to the pre-seam engine by construction — while the
// udp transport carries every message over a real socket with
// length-prefixed datagram framing, sequence numbers, cumulative
// acknowledgements and timeout retransmit, so injected loss,
// duplication and reordering (transport.Faulty) cost latency, never
// correctness. A transport also decides which ranks a process hosts,
// letting one world span OS processes: cmd/bcastsoak spawns rank
// processes over loopback UDP and asserts every rank's result hash
// matches an in-process reference run. Wire activity (datagrams,
// bytes, retransmits, ack round-trips) surfaces in the metrics
// Snapshot, and measurements record their transport in provenance.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section; run them with
//
//	go test -bench=. -benchmem .
package repro
