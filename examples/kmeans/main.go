// Kmeans runs distributed k-means clustering: every iteration the root
// broadcasts the current centroids (a medium-sized message on a
// non-power-of-two communicator — exactly the paper's mmsg-npof2 case)
// and the ranks combine their partial sums with an allreduce. The whole
// exchange goes through the public bcast facade; the typed BcastSlice
// helper moves the centroid vector with no manual encoding.
//
//	go run ./examples/kmeans
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/bcast"
)

const (
	np         = 9 // non-power-of-two, like the paper's Figure 7 runs
	k          = 16
	dims       = 32
	pointsPer  = 2000
	iterations = 12
	root       = 0
)

func main() {
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		log.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		// Each rank owns a deterministic shard of points drawn around
		// k well-separated true centers.
		rng := rand.New(rand.NewSource(int64(100 + c.Rank())))
		points := makePoints(rng)

		centroids := make([]float64, k*dims)
		if c.Rank() == root {
			// Initialize centroids from the root's first points.
			copy(centroids, points[:k*dims])
		}

		for iter := 0; iter < iterations; iter++ {
			// Broadcast current centroids: 4 KiB here; at production
			// scale this is the medium-message broadcast the paper
			// tunes for non-power-of-two ranks. Pin the tuned ring,
			// as the paper's user-level experiments do.
			if err := bcast.BcastSlice(ctx, c, centroids, root,
				bcast.WithAlgorithm(bcast.RingOpt)); err != nil {
				return fmt.Errorf("iter %d bcast: %w", iter, err)
			}

			// Assign local points, accumulate sums and counts.
			sums := make([]float64, k*dims+k) // per-cluster sums, then counts
			for p := 0; p < pointsPer; p++ {
				pt := points[p*dims : (p+1)*dims]
				best, bestD := 0, math.Inf(1)
				for ci := 0; ci < k; ci++ {
					d := dist2(pt, centroids[ci*dims:(ci+1)*dims])
					if d < bestD {
						best, bestD = ci, d
					}
				}
				for j, v := range pt {
					sums[best*dims+j] += v
				}
				sums[k*dims+best]++
			}

			// Combine partial sums everywhere.
			total := make([]float64, len(sums))
			if err := c.AllreduceFloat64(ctx, sums, total, bcast.OpSum); err != nil {
				return fmt.Errorf("iter %d allreduce: %w", iter, err)
			}

			// New centroids (every rank computes the same result).
			for ci := 0; ci < k; ci++ {
				cnt := total[k*dims+ci]
				if cnt == 0 {
					continue
				}
				for j := 0; j < dims; j++ {
					centroids[ci*dims+j] = total[ci*dims+j] / cnt
				}
			}
		}

		// Report the final inertia from the root.
		local := []float64{0}
		for p := 0; p < pointsPer; p++ {
			pt := points[p*dims : (p+1)*dims]
			best := math.Inf(1)
			for ci := 0; ci < k; ci++ {
				if d := dist2(pt, centroids[ci*dims:(ci+1)*dims]); d < best {
					best = d
				}
			}
			local[0] += best
		}
		global := make([]float64, 1)
		if err := c.AllreduceFloat64(ctx, local, global, bcast.OpSum); err != nil {
			return err
		}
		if c.Rank() == root {
			fmt.Printf("k-means on %d ranks: %d clusters, %d points, final inertia %.1f\n",
				np, k, np*pointsPer, global[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func makePoints(rng *rand.Rand) []float64 {
	pts := make([]float64, pointsPer*dims)
	for p := 0; p < pointsPer; p++ {
		center := rng.Intn(k)
		for j := 0; j < dims; j++ {
			pts[p*dims+j] = float64(center*10) + rng.NormFloat64()
		}
	}
	return pts
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}
