// Quickstart: run 8 ranks in-process, broadcast a message from rank 0
// through the public bcast facade, and verify every rank received it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/bcast"
)

func main() {
	ctx := context.Background()
	const np, root = 8, 0
	message := []byte("hello from the tuned scatter-ring-allgather broadcast")

	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		log.Fatal(err)
	}

	// The default dispatch resolves per message size and rank count;
	// ask the selection path what it would actually run here rather
	// than guessing.
	d := cl.Decision(len(message))
	fmt.Printf("default dispatch for %d bytes over %d ranks: %s", len(message), np, d.Algorithm)
	if d.SegSize > 0 {
		fmt.Printf(" (seg %d)", d.SegSize)
	}
	fmt.Println()

	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, len(message))
		if c.Rank() == root {
			copy(buf, message)
		}

		// Pin the paper's non-enclosed ring for this call to see the
		// tuned algorithm itself, whatever the dispatch above picked.
		if err := c.Bcast(ctx, buf, root, bcast.WithAlgorithm(bcast.RingOpt)); err != nil {
			return err
		}

		if string(buf) != string(message) {
			return fmt.Errorf("rank %d: corrupted broadcast: %q", c.Rank(), buf)
		}
		fmt.Printf("rank %d received: %s\n", c.Rank(), buf)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
