// Quickstart: run 8 ranks in-process, broadcast a message from rank 0
// with the paper's tuned algorithm, and verify every rank received it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/mpi"
)

func main() {
	const np = 8
	message := []byte("hello from the tuned scatter-ring-allgather broadcast")

	err := engine.Run(np, func(c mpi.Comm) error {
		buf := make([]byte, len(message))
		if c.Rank() == 0 {
			copy(buf, message)
		}

		// BcastOpt dispatches like MPICH3 and uses the paper's
		// non-enclosed ring on the long-message / medium-npof2 paths;
		// at this tiny size it picks the binomial tree. Call the tuned
		// ring directly to see the paper's algorithm itself.
		if err := collective.BcastScatterRingAllgatherOpt(c, buf, 0); err != nil {
			return err
		}

		if string(buf) != string(message) {
			return fmt.Errorf("rank %d: corrupted broadcast: %q", c.Rank(), buf)
		}
		fmt.Printf("rank %d received: %s\n", c.Rank(), buf)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
