// Matmul distributes a dense matrix multiplication C = A x B across
// ranks the way HPL-style linear algebra codes do (the paper's
// introduction motivates broadcast with exactly this workload):
//
//   - the root broadcasts the full B matrix (a long message -> the
//     scatter-ring-allgather path under study);
//
//   - the rows of A are scattered evenly;
//
//   - every rank multiplies its row block;
//
//   - the C row blocks are gathered back on the root and checked against
//     a serial multiplication.
//
// Everything moves through the public bcast facade's typed slice
// helpers — no byte encoding in sight.
//
//	go run ./examples/matmul
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/bcast"
)

const (
	np   = 8
	dim  = 256 // matrix dimension; rows per rank = dim/np
	root = 0
)

func main() {
	ctx := context.Background()
	// Deterministic inputs, generated identically on the root only.
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, dim)
	b := randomMatrix(rng, dim)
	want := multiply(a, b, dim)

	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		log.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		rows := dim / np

		// Broadcast B (dim*dim float64s: 512 KiB at dim=256 — a long
		// message, so this is the algorithm the paper optimizes).
		bLocal := make([]float64, dim*dim)
		if c.Rank() == root {
			copy(bLocal, b)
		}
		if err := bcast.BcastSlice(ctx, c, bLocal, root,
			bcast.WithAlgorithm(bcast.RingOpt)); err != nil {
			return fmt.Errorf("bcast B: %w", err)
		}

		// Scatter A's row blocks.
		var aAll []float64
		if c.Rank() == root {
			aAll = a
		}
		aLocal := make([]float64, rows*dim)
		if err := bcast.ScatterSlice(ctx, c, aAll, aLocal, root); err != nil {
			return fmt.Errorf("scatter A: %w", err)
		}

		// Multiply the local row block.
		cLocal := make([]float64, rows*dim)
		for i := 0; i < rows; i++ {
			for k := 0; k < dim; k++ {
				aik := aLocal[i*dim+k]
				for j := 0; j < dim; j++ {
					cLocal[i*dim+j] += aik * bLocal[k*dim+j]
				}
			}
		}

		// Gather the C row blocks on the root.
		var cAll []float64
		if c.Rank() == root {
			cAll = make([]float64, dim*dim)
		}
		if err := bcast.GatherSlice(ctx, c, cLocal, cAll, root); err != nil {
			return fmt.Errorf("gather C: %w", err)
		}

		if c.Rank() == root {
			var maxErr float64
			for i := range want {
				if d := math.Abs(cAll[i] - want[i]); d > maxErr {
					maxErr = d
				}
			}
			if maxErr > 1e-9 {
				return fmt.Errorf("result mismatch: max abs error %g", maxErr)
			}
			fmt.Printf("C = A x B verified on %d ranks (dim %d, max abs error %.2g)\n", np, dim, maxErr)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	return m
}

func multiply(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}
