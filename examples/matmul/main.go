// Matmul distributes a dense matrix multiplication C = A x B across
// ranks the way HPL-style linear algebra codes do (the paper's
// introduction motivates broadcast with exactly this workload):
//
//   - the root broadcasts the full B matrix (a long message -> the
//     scatter-ring-allgather path under study);
//
//   - the rows of A are scattered evenly;
//
//   - every rank multiplies its row block;
//
//   - the C row blocks are gathered back on the root and checked against
//     a serial multiplication.
//
//     go run ./examples/matmul
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/mpi"
)

const (
	np   = 8
	dim  = 256 // matrix dimension; rows per rank = dim/np
	root = 0
)

func main() {
	// Deterministic inputs, generated identically on the root only.
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, dim)
	b := randomMatrix(rng, dim)
	want := multiply(a, b, dim)

	err := engine.Run(np, func(c mpi.Comm) error {
		rows := dim / np

		// Broadcast B (dim*dim float64s: 512 KiB at dim=256 — a long
		// message, so this is the algorithm the paper optimizes).
		bBuf := make([]byte, 8*dim*dim)
		if c.Rank() == root {
			encodeFloats(bBuf, b)
		}
		if err := collective.BcastScatterRingAllgatherOpt(c, bBuf, root); err != nil {
			return fmt.Errorf("bcast B: %w", err)
		}
		bLocal := decodeFloats(bBuf)

		// Scatter A's row blocks.
		chunk := 8 * rows * dim
		var aBuf []byte
		if c.Rank() == root {
			aBuf = make([]byte, np*chunk)
			encodeFloats(aBuf, a)
		}
		myRows := make([]byte, chunk)
		if err := collective.Scatter(c, aBuf, chunk, myRows, root); err != nil {
			return fmt.Errorf("scatter A: %w", err)
		}
		aLocal := decodeFloats(myRows)

		// Multiply the local row block.
		cLocal := make([]float64, rows*dim)
		for i := 0; i < rows; i++ {
			for k := 0; k < dim; k++ {
				aik := aLocal[i*dim+k]
				for j := 0; j < dim; j++ {
					cLocal[i*dim+j] += aik * bLocal[k*dim+j]
				}
			}
		}

		// Gather the C row blocks on the root.
		cBytes := make([]byte, chunk)
		encodeFloats(cBytes, cLocal)
		var cAll []byte
		if c.Rank() == root {
			cAll = make([]byte, np*chunk)
		}
		if err := collective.Gather(c, cBytes, chunk, cAll, root); err != nil {
			return fmt.Errorf("gather C: %w", err)
		}

		if c.Rank() == root {
			got := decodeFloats(cAll)
			var maxErr float64
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > maxErr {
					maxErr = d
				}
			}
			if maxErr > 1e-9 {
				return fmt.Errorf("result mismatch: max abs error %g", maxErr)
			}
			fmt.Printf("C = A x B verified on %d ranks (dim %d, max abs error %.2g)\n", np, dim, maxErr)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64()*2 - 1
	}
	return m
}

func multiply(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}

func encodeFloats(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

func decodeFloats(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
