// Osu is an OSU-micro-benchmark-style broadcast bandwidth sweep that
// compares MPI_Bcast_native and MPI_Bcast_opt side by side on the real
// engine — the shape (who wins, by how much) mirrors the paper's user-
// level testing at laptop scale. It is written entirely against the
// public bcast facade, following the paper's protocol: synchronize with
// a barrier, run a fixed iteration count, synchronize again, and report
// bandwidth from the root's elapsed wall clock.
//
//	go run ./examples/osu
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/bcast"
)

const (
	np    = 10 // non-power-of-two, the paper's harder case
	iters = 50
	root  = 0
	mib   = 1 << 20
)

// measure times iters broadcasts of n bytes with the named algorithm
// and returns the bandwidth in base-2 MB/s.
func measure(ctx context.Context, cl *bcast.Cluster, algo string, n int) (float64, error) {
	var elapsed time.Duration // written by the root, read after Run returns
	err := cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == root {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		if err := c.Barrier(ctx); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := c.Bcast(ctx, buf, root, bcast.WithAlgorithm(algo)); err != nil {
				return err
			}
		}
		if err := c.Barrier(ctx); err != nil {
			return err
		}
		if c.Rank() == root {
			elapsed = time.Since(start)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	perIter := elapsed.Seconds() / float64(iters)
	return float64(n) / perIter / mib, nil
}

func main() {
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# OSU-style bcast sweep, np=%d, %d iterations per size\n", np, iters)
	fmt.Printf("%-12s %16s %16s %10s\n", "bytes", "native MB/s", "opt MB/s", "speedup")
	for n := 16 << 10; n <= 4<<20; n <<= 1 {
		nat, err := measure(ctx, cl, bcast.RingNative, n)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := measure(ctx, cl, bcast.RingOpt, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %16.2f %16.2f %9.2fx\n", n, nat, opt, opt/nat)
	}
}
