// Osu is an OSU-micro-benchmark-style broadcast bandwidth sweep that
// compares MPI_Bcast_native and MPI_Bcast_opt side by side on the real
// engine — the shape (who wins, by how much) mirrors the paper's user-
// level testing at laptop scale.
//
//	go run ./examples/osu
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	const (
		np    = 10 // non-power-of-two, the paper's harder case
		iters = 50
	)
	fmt.Printf("# OSU-style bcast sweep, np=%d, %d iterations per size\n", np, iters)
	fmt.Printf("%-12s %16s %16s %10s\n", "bytes", "native MB/s", "opt MB/s", "speedup")
	for n := 16 << 10; n <= 4<<20; n <<= 1 {
		nat, err := bench.MeasureReal(bench.RealConfig{
			NP: np, Iterations: iters, Variant: bench.Native,
		}, n)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := bench.MeasureReal(bench.RealConfig{
			NP: np, Iterations: iters, Variant: bench.Opt,
		}, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %16.2f %16.2f %9.2fx\n", n, nat.MBps, opt.MBps, opt.MBps/nat.MBps)
	}
}
