// Placement demonstrates the node-aware ring extension on the simulated
// cluster: with a scattered (round-robin) rank placement, almost every
// ring edge crosses nodes and the tuned broadcast chokes on the NICs;
// reordering the ring node-by-node (core.NodeAwareOrder + sched.Relabel)
// restores the blocked placement's profile without touching the
// algorithm itself.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/topology"
)

const (
	np = 48
	n  = 1 << 20
)

func measure(name string, pr *sched.Program, topo *topology.Map, model *netsim.Model) {
	dt, err := netsim.SteadyStateIterTime(pr, topo, model, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := netsim.Simulate(pr, topo, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10.1f MB/s   (%4d of %4d messages inter-node)\n",
		name, float64(n)/dt/(1<<20), res.InterMessages, res.Messages)
}

func main() {
	model := netsim.Hornet()
	fmt.Printf("tuned broadcast, np=%d, %d-byte messages, Hornet model\n\n", np, n)

	blocked := topology.Blocked(np, topology.HornetCoresPerNode)
	measure("blocked placement", core.BcastOptProgram(np, 0, n), blocked, model)

	scattered := topology.RoundRobin(np, topology.HornetCoresPerNode)
	measure("round-robin placement", core.BcastOptProgram(np, 0, n), scattered, model)

	aware, err := core.BcastOptNodeAware(scattered, 0, n)
	if err != nil {
		log.Fatal(err)
	}
	measure("round-robin + node-aware", aware, scattered, model)
}
