// Placement demonstrates why rank placement is a tuning axis: the
// scatter-ring broadcasts send the same number of messages wherever the
// ranks sit, but how many of those messages cross nodes — the expensive
// edges the paper's optimization targets — depends entirely on the
// rank-to-node mapping. The traffic tracer built into the public facade
// measures it: under a blocked placement almost every ring edge stays
// inside a node, under a round-robin placement almost every edge
// crosses nodes, and in both the paper's non-enclosed ring
// (MPI_Bcast_opt) moves strictly fewer inter-node bytes than the native
// enclosed ring.
//
//	go run ./examples/placement
package main

import (
	"context"
	"fmt"
	"log"

	"repro/bcast"
)

const (
	np    = 48
	cores = 8 // ranks per node -> 6 nodes
	n     = 1 << 20
	root  = 0
)

// interTraffic broadcasts once with the named algorithm under the given
// placement and returns the measured traffic split.
func interTraffic(ctx context.Context, placement, algo string) (bcast.Traffic, error) {
	cl, err := bcast.NewCluster(ctx,
		bcast.Procs(np),
		bcast.Placement(placement),
		bcast.Algorithm(algo),
		bcast.TraceTraffic(),
	)
	if err != nil {
		return bcast.Traffic{}, err
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == root {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		return c.Bcast(ctx, buf, root)
	})
	if err != nil {
		return bcast.Traffic{}, err
	}
	tr, _ := cl.Traffic()
	return tr, nil
}

func main() {
	ctx := context.Background()
	spec := fmt.Sprintf("blocked:%d", cores)
	rrSpec := fmt.Sprintf("round-robin:%d", cores)

	fmt.Printf("broadcast traffic split, np=%d over %d-core nodes, %d-byte messages\n\n", np, cores, n)
	fmt.Printf("%-24s %-28s %10s %14s %9s\n", "placement", "algorithm", "inter msgs", "inter bytes", "share")
	for _, placement := range []string{spec, rrSpec} {
		for _, algo := range []string{bcast.RingNative, bcast.RingOpt} {
			tr, err := interTraffic(ctx, placement, algo)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-24s %-28s %10d %14d %8.1f%%\n",
				placement, algo, tr.InterMessages, tr.InterBytes,
				100*float64(tr.InterBytes)/float64(tr.Bytes))
		}
	}
	fmt.Println("\nblocked keeps ring edges on-node; round-robin pushes them onto the")
	fmt.Println("NICs; and on either placement the non-enclosed ring (opt) ships")
	fmt.Println("fewer inter-node bytes than the enclosed one — the paper's saving.")
}
