package bcast_test

import (
	"context"
	"fmt"
	"log"

	"repro/bcast"
)

// Example broadcasts a message from rank 0 to three other ranks with
// the default (MPICH3-style) dispatch.
func Example() {
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(4))
	if err != nil {
		log.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, 5)
		if c.Rank() == 0 {
			copy(buf, "hello")
		}
		if err := c.Bcast(ctx, buf, 0); err != nil {
			return err
		}
		if c.Rank() == 3 { // one rank prints, so output is deterministic
			fmt.Printf("rank 3 received %q\n", buf)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// rank 3 received "hello"
}

// ExampleCluster_Run places twelve ranks over three nodes, pins the
// paper's tuned ring, and reports what the selection path resolves to.
func ExampleCluster_Run() {
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx,
		bcast.Procs(12),
		bcast.Placement("blocked:4"),
		bcast.Algorithm(bcast.RingOpt),
	)
	if err != nil {
		log.Fatal(err)
	}
	d := cl.Decision(1 << 20)
	fmt.Printf("%d ranks on %d nodes (%s placement) -> %s\n",
		cl.NP(), cl.NumNodes(), cl.Placement(), d.Algorithm)

	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, 1<<20)
		if c.Rank() == 0 {
			buf[0] = 42
		}
		if err := c.Bcast(ctx, buf, 0); err != nil {
			return err
		}
		if c.Rank() == 11 {
			fmt.Printf("last rank got byte %d\n", buf[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// 12 ranks on 3 nodes (blocked placement) -> scatter-ring-allgather-opt
	// last rank got byte 42
}

// ExampleBcastSlice shares a float64 vector without manual encoding.
func ExampleBcastSlice() {
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(4))
	if err != nil {
		log.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		weights := make([]float64, 3)
		if c.Rank() == 0 {
			weights[0], weights[1], weights[2] = 0.5, 0.25, 0.25
		}
		if err := bcast.BcastSlice(ctx, c, weights, 0); err != nil {
			return err
		}
		if c.Rank() == 2 {
			fmt.Println("rank 2 weights:", weights)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// rank 2 weights: [0.5 0.25 0.25]
}

// ExampleTuner installs a custom selection policy: always the paper's
// tuned ring, segmented above 256 KiB.
func ExampleTuner() {
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx,
		bcast.Procs(8),
		bcast.Tuner(func(e bcast.Env) bcast.Decision {
			if e.Bytes >= 256<<10 {
				return bcast.Decision{Algorithm: bcast.RingOptSeg, SegSize: 64 << 10}
			}
			return bcast.Decision{Algorithm: bcast.RingOpt}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cl.Decision(4096).Algorithm)
	d := cl.Decision(1 << 20)
	fmt.Println(d.Algorithm, d.SegSize)
	// Output:
	// scatter-ring-allgather-opt
	// scatter-ring-allgather-opt-seg 65536
}
