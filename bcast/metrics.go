package bcast

import (
	"context"
	"errors"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// Snapshot is the cluster's merged observability view: engine counters
// (sends and receives split by protocol, staged bytes, executor parks,
// queue high-water marks), world lifecycle (boots, runs, failures by
// cause), process-global buffer-pool activity, the retained operation
// spans when WithSpans is enabled, and — when TraceTraffic is on — the
// traced traffic totals. String renders a compact summary, WriteProm
// the Prometheus text format, and WriteChromeTrace a Chrome/Perfetto
// trace of the spans.
type Snapshot = metrics.Snapshot

// Span is one completed collective operation on one rank, as retained
// in a Snapshot built with WithSpans.
type Span = metrics.Span

// PoolClassStats is one buffer-pool size class's activity in a
// Snapshot. The pools are process-global, so the totals span every
// cluster in the process.
type PoolClassStats = metrics.PoolClassStats

// TrafficTotals is the traced traffic summary embedded in a Snapshot
// when the cluster was built with TraceTraffic.
type TrafficTotals = metrics.TrafficTotals

// Metrics snapshots the cluster's instrumentation. Counters are always
// on and cost one atomic add per event on the rank that caused it;
// spans appear only when the cluster was built with WithSpans. The
// snapshot is a merged copy — reading it never perturbs the hot path —
// and, like Boots and Traffic, it must be taken between Runs, not
// during one.
func (cl *Cluster) Metrics() Snapshot {
	s := engine.CollectMetrics(cl.metrics)
	s.Executor = cl.Executor()
	s.Transport = cl.Transport()
	s.Boots = int64(cl.boots)
	s.Runs = cl.runs
	s.FailedRuns = cl.failedRuns
	if len(cl.retired) > 0 {
		retired := make(map[string]int64, len(cl.retired))
		for cause, n := range cl.retired {
			retired[cause] = n
		}
		s.RetiredWorlds = retired
	}
	if cl.collector != nil {
		st := cl.collector.Stats()
		s.Traffic = &metrics.TrafficTotals{
			Messages: st.Total.Messages, Bytes: st.Total.Bytes,
			IntraMessages: st.Intra.Messages, IntraBytes: st.Intra.Bytes,
			InterMessages: st.Inter.Messages, InterBytes: st.Inter.Bytes,
			Recvs: st.Recvs,
		}
	}
	return s
}

// retireCause classifies why a run failed, for the RetiredWorlds
// breakdown. Deadlock is checked before the generic abort because a
// deadlock error wraps both.
func retireCause(err error) string {
	switch {
	case errors.Is(err, mpi.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, mpi.ErrAborted):
		return "aborted"
	default:
		return "error"
	}
}
