package bcast

import (
	"repro/internal/collective"
	"repro/internal/tune"
)

// Registered broadcast algorithm names, re-exported from the tuning
// subsystem. These are the stable identifiers accepted by the Algorithm
// and WithAlgorithm options and emitted in Decisions; Algorithms lists
// them with their constraints.
const (
	// Binomial is the whole-buffer binomial tree (MPICH short-message).
	Binomial = tune.Binomial
	// ScatterRdb is binomial scatter + recursive-doubling allgather
	// (MPICH medium-message, power-of-two rank counts only).
	ScatterRdb = tune.ScatterRdb
	// RingNative is binomial scatter + enclosed ring allgather — the
	// paper's MPI_Bcast_native (MPICH long-message).
	RingNative = tune.RingNative
	// RingOpt is binomial scatter + the paper's non-enclosed ring
	// allgather — MPI_Bcast_opt, the bandwidth-saving contribution.
	RingOpt = tune.RingOpt
	// RingSeg and RingOptSeg pipeline the two rings in SegSize chunks.
	RingSeg    = tune.RingSeg
	RingOptSeg = tune.RingOptSeg
	// RingSegNB and RingOptSegNB additionally pre-post every segment
	// receive of a ring step before forwarding (overlap pipeline).
	RingSegNB    = tune.RingSegNB
	RingOptSegNB = tune.RingOptSegNB
	// Chain is the segmented pipeline-chain broadcast.
	Chain = tune.Chain
	// SMP and SMPOpt are the multi-core aware broadcasts (intra-node
	// binomial, native or tuned inter-node ring between node leaders);
	// they require a placement spanning more than one node.
	SMP    = tune.SMP
	SMPOpt = tune.SMPOpt
)

// Env is the selection environment a tuner decides on: everything known
// about a broadcast call before any byte moves. NumNodes, CoresPerNode
// and Placement derive from the cluster's rank placement.
type Env struct {
	// Bytes is the broadcast message size.
	Bytes int
	// Procs is the communicator size.
	Procs int
	// NumNodes is the number of distinct nodes hosting the ranks.
	NumNodes int
	// CoresPerNode is the largest number of ranks on one node.
	CoresPerNode int
	// Placement classifies the rank-to-node mapping: "single",
	// "blocked", "round-robin" or "irregular".
	Placement string
}

// Decision is a resolved selection: the registered algorithm to run and
// its segment size (0 for unsegmented algorithms or their default).
type Decision struct {
	// Algorithm is the registry name (one of the constants above, or a
	// registered extension).
	Algorithm string
	// SegSize is the pipeline segment size in bytes.
	SegSize int
}

// TunerFunc maps a selection environment to a Decision. Implementations
// must be pure — the same Env always yields the same Decision — because
// every rank of a collective evaluates it independently and all must
// agree on the algorithm.
type TunerFunc func(Env) Decision

// MPICH3Tuner returns the library's default dispatch as a TunerFunc:
// stock MPICH3's size and rank-count thresholds, with the paper's
// non-enclosed ring on the long-message paths when tuned is true. It is
// exported so callers can wrap or fall back to the default selection
// inside their own tuners.
func MPICH3Tuner(tuned bool) TunerFunc {
	t := tune.MPICH3{Tuned: tuned}
	return func(e Env) Decision {
		return decisionOut(t.Decide(envIn(e)))
	}
}

// envOut converts the internal selection environment to the public one.
func envOut(e tune.Env) Env {
	return Env{
		Bytes:        e.Bytes,
		Procs:        e.Procs,
		NumNodes:     e.NumNodes,
		CoresPerNode: e.CoresPerNode,
		Placement:    e.Placement,
	}
}

// envIn is the inverse of envOut.
func envIn(e Env) tune.Env {
	return tune.Env{
		Bytes:        e.Bytes,
		Procs:        e.Procs,
		NumNodes:     e.NumNodes,
		CoresPerNode: e.CoresPerNode,
		Placement:    e.Placement,
	}
}

// decisionOut converts an internal decision to the public type.
func decisionOut(d tune.Decision) Decision {
	return Decision{Algorithm: d.Algorithm, SegSize: d.SegSize}
}

// tunerAdapter lets a public TunerFunc stand where the selection
// subsystem expects a tune.Tuner.
type tunerAdapter struct{ fn TunerFunc }

func (a tunerAdapter) Decide(e tune.Env) tune.Decision {
	d := a.fn(envOut(e))
	return tune.Decision{Algorithm: d.Algorithm, SegSize: d.SegSize}
}

// AlgorithmInfo describes one registered broadcast algorithm.
type AlgorithmInfo struct {
	// Name is the registry identifier (pass it to Algorithm or
	// WithAlgorithm).
	Name string
	// Summary is a one-line human description.
	Summary string
	// Constraints are the algorithm's hard requirements as short labels
	// (e.g. "pow2-only", "multi-node-only", "segmented"); empty when
	// unconstrained.
	Constraints []string
}

// Algorithms lists every registered broadcast algorithm, sorted by name.
func Algorithms() []AlgorithmInfo {
	regs := collective.Algorithms()
	out := make([]AlgorithmInfo, 0, len(regs))
	for _, r := range regs {
		out = append(out, AlgorithmInfo{Name: r.Name, Summary: r.Summary, Constraints: r.Caps.Tags()})
	}
	return out
}
