package bcast

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/collective"
)

// ErrStaleHandle reports use of a Persistent handle (or a Comm) after
// the Run that created it ended. Errors wrap it together with the run's
// own outcome, so a handle orphaned by a canceled run explains both
// what it is and why its run died.
var ErrStaleHandle = errors.New("bcast: persistent handle outlived its run")

// Persistent is a persistent broadcast: the tuner decision, the
// validated registry dispatch and (for static algorithms) the
// communication schedule of one Comm.Bcast call, resolved once by
// Comm.BcastInit and executed many times by Start/Wait. In the steady
// state a Start/Wait pair performs no selection work and no
// allocations — it is the serving-workload fast path, gated by
// testing.AllocsPerRun the same way the per-call Bcast is.
//
// Lifecycle (mirroring MPI persistent requests): Init -> (Start ->
// Wait)* -> Free, with Run as a Start+Wait convenience. Start marks the
// operation active and is purely local; Wait executes the broadcast and
// blocks until this rank's part completes. Every rank of the
// communicator must create its own handle with identical arguments and
// drive it in the same order — a Start/Wait round is collective exactly
// like the Bcast call it replaces.
//
// Buffer ownership: the handle captures buf at Init (and Rebind); the
// caller must not touch it between Start and the completion of Wait,
// and must write the next payload into the same buffer (on the root)
// before the next Start. The handle never keeps or recycles the buffer
// after Free.
//
// A handle is bound to the Run it was created in. When that Run returns
// — cleanly, by error, or by cancellation mid-Start — the handle is
// retired and every later use fails with an error wrapping
// ErrStaleHandle and the run's outcome. Handles are per-rank-goroutine
// objects, like the Comm they came from: not safe for concurrent use.
type Persistent struct {
	c    Comm
	buf  []byte
	plan *collective.Plan

	active bool
	freed  bool
}

// BcastInit builds a persistent broadcast of buf from root: it resolves
// the cluster defaults merged with opts into a tuner decision, binds
// and validates the registry dispatch, caches the static schedule when
// the algorithm has one, and pre-registers pooled staging for the
// payload so the first Start/Wait already runs allocation-free.
// Collective: every rank must call it with the same root, length and
// options, like the Bcast it replaces.
func (c Comm) BcastInit(buf []byte, root int, opts ...CallOption) (*Persistent, error) {
	if err := c.epochAlive(); err != nil {
		return nil, fmt.Errorf("bcast: bcast init: %w", err)
	}
	plan, err := collective.NewPlan(c.mc, len(buf), root, c.defaults.merge(opts))
	if err != nil {
		return nil, fmt.Errorf("bcast: bcast init: %w", err)
	}
	warmStaging(len(buf), c.Size(), plan.Decision().SegSize)
	return &Persistent{c: c, buf: buf, plan: plan}, nil
}

// warmStaging touches the pool size classes a broadcast of n bytes over
// p ranks draws its staging from — the whole payload, the per-rank
// scatter chunk, and the pipeline segment — so the first execution
// finds them populated instead of allocating. Best-effort: pools are
// shared and unbounded misses stay correct, just not allocation-free.
func warmStaging(n, p, segSize int) {
	for _, sz := range [3]int{n, (n + p - 1) / p, segSize} {
		if sz > 0 {
			bufpool.Get(sz).Release()
		}
	}
}

// Start marks the persistent broadcast active. It is purely local —
// validation and an activation flag, no communication, no allocation —
// so a serving loop can Start before the payload's consumers are ready
// and pay the transfer only in Wait.
func (h *Persistent) Start() error {
	if h.freed {
		return fmt.Errorf("bcast: start: handle already freed")
	}
	if h.active {
		return fmt.Errorf("bcast: start: operation already started (Wait it first)")
	}
	if err := h.c.epochAlive(); err != nil {
		return fmt.Errorf("bcast: start: %w", err)
	}
	h.active = true
	return nil
}

// Wait executes the started broadcast and blocks until this rank's part
// completes, leaving the handle ready for the next Start. On the root
// the buffer is the message; everywhere else it is overwritten with it
// — byte-identical to the equivalent Comm.Bcast, because Wait
// dispatches through the same registered implementation the per-call
// path uses.
func (h *Persistent) Wait(ctx context.Context) error {
	if !h.active {
		return fmt.Errorf("bcast: wait: no started operation (call Start first)")
	}
	h.active = false
	if err := h.c.epochAlive(); err != nil {
		return fmt.Errorf("bcast: wait: %w", err)
	}
	return h.plan.Execute(h.c.bind(ctx), h.buf)
}

// Run is the Start/Wait convenience for callers that don't separate
// activation from completion.
func (h *Persistent) Run(ctx context.Context) error {
	if err := h.Start(); err != nil {
		return err
	}
	return h.Wait(ctx)
}

// Rebind points the handle at a new buffer. Same length: free — the
// memoized decision and schedule are reused untouched (the
// double-buffered serving pattern). Different length: the decision is
// re-resolved and re-validated, like a fresh Init. Only an inactive
// handle may be rebound.
func (h *Persistent) Rebind(buf []byte) error {
	if h.freed {
		return fmt.Errorf("bcast: rebind: handle already freed")
	}
	if h.active {
		return fmt.Errorf("bcast: rebind: operation in flight (Wait it first)")
	}
	if err := h.c.epochAlive(); err != nil {
		return fmt.Errorf("bcast: rebind: %w", err)
	}
	if err := h.plan.Rebind(h.c.mc, len(buf)); err != nil {
		return fmt.Errorf("bcast: rebind: %w", err)
	}
	warmStaging(len(buf), h.c.Size(), h.plan.Decision().SegSize)
	h.buf = buf
	return nil
}

// Free retires the handle. Freeing an active operation is an error
// (Wait it first); freeing an already-freed handle is a no-op. Free is
// local and never touches the buffer.
func (h *Persistent) Free() error {
	if h.active {
		return fmt.Errorf("bcast: free: operation in flight (Wait it first)")
	}
	h.freed = true
	return nil
}

// Decision reports the resolved algorithm selection the handle executes.
func (h *Persistent) Decision() Decision {
	return decisionOut(h.plan.Decision())
}
