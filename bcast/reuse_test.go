package bcast_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"repro/bcast"
	"repro/internal/testutil"
)

// reuseGridCells is the {executor} x {placement} grid the reuse tests
// sweep: world reuse must be invisible on every rank-execution
// substrate and every placement shape.
func reuseGridCells() []struct {
	name      string
	placement string
	pooled    bool
} {
	return []struct {
		name      string
		placement string
		pooled    bool
	}{
		{"goroutine/single", "single", false},
		{"goroutine/blocked", "blocked:8", false},
		{"goroutine/round-robin", "round-robin:8", false},
		{"pooled/single", "single", true},
		{"pooled/blocked", "blocked:8", true},
		{"pooled/round-robin", "round-robin:8", true},
	}
}

// reuseWorkload broadcasts a deterministic n-byte payload with the
// paper's segmented tuned ring and deposits every rank's final buffer
// into out[rank]. out is indexed disjointly per rank and Run's join
// orders the writes before the caller's reads.
func reuseWorkload(ctx context.Context, cl *bcast.Cluster, n int, out [][]byte) error {
	return cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i*7 + 3)
			}
		}
		if err := c.Bcast(ctx, buf, 0); err != nil {
			return err
		}
		out[c.Rank()] = buf
		return nil
	})
}

func reuseClusterOpts(cell struct {
	name      string
	placement string
	pooled    bool
}, np int) []bcast.Option {
	opts := []bcast.Option{
		bcast.Procs(np),
		bcast.Placement(cell.placement),
		bcast.Algorithm(bcast.RingOptSeg),
		bcast.SegSize(1 << 10),
		bcast.TraceTraffic(),
	}
	if cell.pooled {
		opts = append(opts, bcast.ExecPooled(0))
	}
	return opts
}

// TestClusterReuseParity is the reuse-parity grid: for every executor x
// placement cell, the Nth Run on a reused cluster must deliver byte-
// identical buffers and (per-run) identical traced traffic to a single
// Run on a fresh cluster — world reuse is a pure optimization with no
// observable protocol difference.
func TestClusterReuseParity(t *testing.T) {
	const (
		np   = 16
		n    = 8 << 10
		runs = 5
	)
	ctx := context.Background()
	for _, cell := range reuseGridCells() {
		t.Run(cell.name, func(t *testing.T) {
			// Fresh cluster: exactly one Run.
			fresh, err := bcast.NewCluster(ctx, reuseClusterOpts(cell, np)...)
			if err != nil {
				t.Fatal(err)
			}
			freshOut := make([][]byte, np)
			if err := reuseWorkload(ctx, fresh, n, freshOut); err != nil {
				t.Fatal(err)
			}
			freshTraffic, ok := fresh.Traffic()
			if !ok {
				t.Fatal("fresh cluster: no traffic trace")
			}

			// Reused cluster: the same workload, runs times over.
			reused, err := bcast.NewCluster(ctx, reuseClusterOpts(cell, np)...)
			if err != nil {
				t.Fatal(err)
			}
			lastOut := make([][]byte, np)
			for i := 0; i < runs; i++ {
				if err := reuseWorkload(ctx, reused, n, lastOut); err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
			}
			if boots := reused.Boots(); boots != 1 {
				t.Errorf("Boots() = %d after %d clean runs, want 1", boots, runs)
			}

			for r := 0; r < np; r++ {
				if !bytes.Equal(freshOut[r], lastOut[r]) {
					t.Errorf("rank %d: reused run buffer differs from fresh run", r)
				}
			}

			// The collector accumulates across runs, so the reused
			// cluster's totals must be exactly runs x one run's traffic —
			// which both checks reuse against fresh parity and that no
			// run leaked extra (or dropped) messages.
			reusedTraffic, ok := reused.Traffic()
			if !ok {
				t.Fatal("reused cluster: no traffic trace")
			}
			want := bcast.Traffic{
				Messages: freshTraffic.Messages * runs, Bytes: freshTraffic.Bytes * runs,
				IntraMessages: freshTraffic.IntraMessages * runs, IntraBytes: freshTraffic.IntraBytes * runs,
				InterMessages: freshTraffic.InterMessages * runs, InterBytes: freshTraffic.InterBytes * runs,
			}
			if !reflect.DeepEqual(reusedTraffic, want) {
				t.Errorf("traced traffic after %d reused runs = %+v, want %d x fresh run = %+v",
					runs, reusedTraffic, runs, want)
			}

			// Clean runs deliver every sent message: the traced receive
			// count must equal the send count, on both clusters, through
			// the metrics snapshot (the one surface that exposes Recvs).
			for _, c := range []struct {
				label string
				cl    *bcast.Cluster
			}{{"fresh", fresh}, {"reused", reused}} {
				tr := c.cl.Metrics().Traffic
				if tr == nil {
					t.Fatalf("%s cluster: snapshot has no traffic", c.label)
				}
				if tr.Recvs != tr.Messages {
					t.Errorf("%s cluster: traced recvs=%d != messages=%d after clean runs",
						c.label, tr.Recvs, tr.Messages)
				}
			}
		})
	}
}

// TestClusterReuseFallbackAfterAbort checks the documented fallback: a
// failed Run retires the booted world, the next Run transparently boots
// a fresh one, and Boots counts the transition.
func TestClusterReuseFallbackAfterAbort(t *testing.T) {
	const np = 8
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np), bcast.Placement("blocked:4"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, np)
	if err := reuseWorkload(ctx, cl, 1<<10, out); err != nil {
		t.Fatal(err)
	}
	if boots := cl.Boots(); boots != 1 {
		t.Fatalf("Boots() = %d after first clean run, want 1", boots)
	}

	boom := errors.New("boom")
	err = cl.Run(ctx, func(c bcast.Comm) error {
		if c.Rank() == 3 {
			return boom
		}
		buf := make([]byte, 1<<10)
		return c.Bcast(ctx, buf, 0)
	})
	if err == nil {
		t.Fatal("aborted run: want error")
	}

	// The next Run must succeed on a fresh world.
	if err := reuseWorkload(ctx, cl, 1<<10, out); err != nil {
		t.Fatalf("run after abort: %v", err)
	}
	for r := 1; r < np; r++ {
		if !bytes.Equal(out[0], out[r]) {
			t.Fatalf("rank %d: buffer differs after fallback boot", r)
		}
	}
	if boots := cl.Boots(); boots != 2 {
		t.Fatalf("Boots() = %d after abort + clean run, want 2", boots)
	}
}

// TestClusterReuseNoLeak reuses one cluster for 100 runs on each
// substrate and asserts the goroutine count returns to baseline: an
// idle reused world parks nothing — rank bodies, watchdogs and workers
// are all per-Run.
func TestClusterReuseNoLeak(t *testing.T) {
	const (
		np   = 8
		runs = 100
	)
	ctx := context.Background()
	for _, pooled := range []bool{false, true} {
		name := "goroutine"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			opts := []bcast.Option{bcast.Procs(np), bcast.Placement("blocked:4")}
			if pooled {
				opts = append(opts, bcast.ExecPooled(0))
			}
			cl, err := bcast.NewCluster(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			out := make([][]byte, np)
			for i := 0; i < runs; i++ {
				if err := reuseWorkload(ctx, cl, 1<<10, out); err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
			}
			if boots := cl.Boots(); boots != 1 {
				t.Errorf("Boots() = %d after %d clean runs, want 1", boots, runs)
			}
			for r := 1; r < np; r++ {
				if !bytes.Equal(out[0], out[r]) {
					t.Fatalf("rank %d: buffer differs", r)
				}
			}
			testutil.WaitGoroutines(t, base)
		})
	}
}
