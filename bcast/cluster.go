package bcast

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/tune"
)

// runEpoch ties the resources minted during one Cluster.Run — the Comms
// handed to rank functions and every Persistent handle built from them
// — to that run's lifetime. When the run returns, the epoch ends with
// the run's outcome, and any handle that escaped fails loudly on its
// next use instead of silently matching (or deadlocking against) a
// fresh world's traffic: after a fallback boot the engine's context
// sequence restarts, so a stale handle's communicator may carry a
// context id a new run legitimately reuses.
type runEpoch struct {
	done  atomic.Bool
	cause error // why the run ended; nil for a clean finish. Written before done.
}

// end closes the epoch with the run's outcome. cause is published
// before the atomic store, so any goroutine that observes done sees it.
func (e *runEpoch) end(cause error) {
	e.cause = cause
	e.done.Store(true)
}

// Cluster is a configured group of ranks. It is reusable, and reuse is
// cheap: the first Run boots an engine world with the cluster's
// placement and options, and every subsequent Run re-launches rank
// bodies onto that same booted world — endpoints, executor and per-rank
// state are paid once, so the steady state of a long-lived cluster
// allocates per broadcast, not per boot (see BENCH_steadystate_allocs
// .json for the measured difference). Sequential Runs remain
// independent: each gets fresh rank functions and communicators, and
// traffic tracing, when enabled, accumulates across them in place.
//
// The fallback: a Run that returns an error of any kind — a rank
// failure, cancellation of either context, a timeout, a deadlock —
// leaves the world spent, and the next Run transparently boots a fresh
// one. Boots reports how many worlds the cluster has booted, so tests
// (and capacity planning) can observe the reuse. A Cluster must not be
// shared by concurrent Runs.
//
// How ranks execute is part of the configuration: by default each rank
// runs on its own goroutine, and the ExecPooled option switches Runs to
// a bounded cooperative worker pool — the scalable choice once Procs is
// well past the host's cores (hundreds of ranks). Executor reports the
// effective substrate.
type Cluster struct {
	base      context.Context
	np        int
	topo      *topology.Map
	opts      callDefaults
	eager     int
	timeout   time.Duration
	exec      engine.ExecPolicy
	workers   int
	collector *trace.Collector

	// transport is the configured point-to-point substrate spec
	// (WithTransport); trans is the live transport booted with the
	// current world, closed when the world is retired or the cluster is
	// Closed.
	transport string
	trans     transport.Transport

	// world is the booted engine world Runs reuse; nil (or spent) means
	// the next Run boots. boots counts world boots for observability.
	world *engine.World
	boots int

	// metrics is the cluster-lifetime instrumentation, handed to every
	// world the cluster boots so counters and spans survive fallback
	// reboots. runs/failedRuns/retired are the facade-level lifecycle
	// counts Metrics folds into the Snapshot.
	metrics    *metrics.Metrics
	runs       int64
	failedRuns int64
	retired    map[string]int64
}

// NewCluster validates the options and returns a Cluster bound to ctx:
// cancellation of ctx aborts every subsequent Run, in addition to the
// per-Run context. The Procs option is required; everything else
// defaults (single-node placement, stock MPICH3 selection).
func NewCluster(ctx context.Context, opts ...Option) (*Cluster, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := context.Cause(ctx); err != nil {
		return nil, fmt.Errorf("bcast: cluster context already canceled: %w", err)
	}
	var cfg config
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("bcast: nil option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.topo()
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		base:      ctx,
		np:        cfg.np,
		topo:      topo,
		opts:      callDefaults{o: cfg.opts},
		eager:     cfg.eager,
		timeout:   cfg.timeout,
		exec:      cfg.exec,
		workers:   cfg.workers,
		transport: cfg.transport,
		metrics:   metrics.New(cfg.np, cfg.spanCap),
	}
	if cfg.traffic {
		cl.collector = trace.NewCollector()
	}
	return cl, nil
}

// NP returns the number of ranks.
func (cl *Cluster) NP() int { return cl.np }

// NumNodes returns the number of distinct nodes in the placement.
func (cl *Cluster) NumNodes() int { return cl.topo.NumNodes() }

// Placement returns the placement classification: "single", "blocked",
// "round-robin" or "irregular".
func (cl *Cluster) Placement() string { return cl.topo.Kind() }

// Executor names the rank-execution substrate each Run boots, worker
// clamp applied: "goroutine" (the default), or "pooled(N)" when the
// cluster was built with ExecPooled.
func (cl *Cluster) Executor() string {
	return engine.ExecLabel(cl.exec, cl.workers)
}

// Decision reports which algorithm the cluster's options (overridden by
// any per-call options) would select for an n-byte broadcast over the
// full cluster, without moving a byte. Inside Run, Comm.Decision is the
// same resolution for that rank's communicator.
func (cl *Cluster) Decision(n int, opts ...CallOption) Decision {
	o := cl.opts.merge(opts)
	return decisionOut(o.Decide(tune.EnvOf(n, cl.np, cl.topo)))
}

// Run executes fn once per rank, concurrently, and waits for all ranks.
// A rank returning an error (or panicking) aborts the whole run; so
// does cancellation of ctx or of the cluster's base context — every
// blocked operation on every rank then returns an error wrapping the
// cause, and Run returns with no rank goroutine left behind. The Comm
// passed to fn is only valid during the call.
//
// The first Run boots an engine world; clean Runs reuse it, and a Run
// that returns an error retires it so the next Run boots a fresh one
// (see the Cluster documentation for the reuse contract).
func (cl *Cluster) Run(ctx context.Context, fn func(Comm) error) error {
	if fn == nil {
		return fmt.Errorf("bcast: nil rank function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Merge the cluster's base context into the run context, preserving
	// the cancellation cause of whichever fires first.
	if cl.base.Done() != nil {
		merged, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		stop := context.AfterFunc(cl.base, func() {
			cancel(context.Cause(cl.base))
		})
		defer stop()
		ctx = merged
	}
	w := cl.world
	if w == nil || !w.Reusable() {
		// A retired world's transport goes with it; each boot gets a
		// fresh one (a UDP socket does not survive a wedged run any
		// better than the world does).
		if cl.trans != nil {
			cl.trans.Close()
			cl.trans = nil
		}
		trans, err := transport.New(cl.transport, cl.np)
		if err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
		w, err = engine.NewWorld(engine.Options{
			NP:         cl.np,
			Topology:   cl.topo,
			EagerLimit: cl.eager,
			Timeout:    cl.timeout,
			Executor:   cl.exec,
			MaxWorkers: cl.workers,
			Metrics:    cl.metrics,
			Transport:  trans,
		})
		if err != nil {
			trans.Close()
			return fmt.Errorf("bcast: %w", err)
		}
		cl.world = w
		cl.trans = trans
		cl.boots++
	}
	epoch := &runEpoch{}
	cl.runs++
	err := w.RunContext(ctx, func(mc mpiComm) error {
		if cl.collector != nil {
			// Per-rank recorder slots keep the collector's memory
			// constant however many runs reuse this world.
			mc = cl.collector.WrapSlot(mc.Rank(), mc)
		}
		return fn(Comm{mc: mc, defaults: cl.opts, epoch: epoch})
	})
	// Retire everything minted during the run — escaped Persistent
	// handles now fail with ErrStaleHandle (carrying this run's outcome
	// as the cause) rather than matching stale traffic on whatever world
	// the next Run uses.
	epoch.end(err)
	if err != nil {
		// Fallback to per-run boot: an aborted (or strictness-failed)
		// world may hold wedged state; retire it rather than reason
		// about partial cleanup.
		cl.world = nil
		if cl.trans != nil {
			cl.trans.Close()
			cl.trans = nil
		}
		cl.failedRuns++
		if cl.retired == nil {
			cl.retired = map[string]int64{}
		}
		cl.retired[retireCause(err)]++
	}
	return err
}

// Transport names the point-to-point substrate each Run boots: "chan"
// (the in-process default) or "udp" when the cluster was built with
// WithTransport("udp").
func (cl *Cluster) Transport() string {
	if cl.transport == "" {
		return transport.ChanName
	}
	return cl.transport
}

// Close releases the cluster's booted resources — today the live
// transport, tomorrow whatever else a backend pins. Clusters on the
// default in-process transport hold nothing a finalizer would not
// reclaim, so Close is optional there; clusters built with
// WithTransport("udp") hold an open socket and should be Closed when
// retired. Close does not interrupt a Run in flight; call it between
// Runs, after which the next Run boots fresh.
func (cl *Cluster) Close() error {
	cl.world = nil
	if cl.trans != nil {
		err := cl.trans.Close()
		cl.trans = nil
		return err
	}
	return nil
}

// Boots reports how many engine worlds the cluster has booted so far:
// 1 after any number of clean Runs (the steady state), +1 for every
// fallback boot forced by a failed or canceled Run. Call it between
// Runs, not during one.
func (cl *Cluster) Boots() int { return cl.boots }

// Traffic describes the message traffic of a cluster's runs, classified
// through the placement: Inter counts messages whose sender and
// receiver sit on different nodes — the traffic the paper's
// optimization saves.
type Traffic struct {
	Messages, Bytes           int64
	IntraMessages, IntraBytes int64
	InterMessages, InterBytes int64
}

// Traffic returns the totals accumulated over the cluster's finished
// runs. It reports false unless the cluster was built with
// TraceTraffic. Call it between Runs, not during one.
func (cl *Cluster) Traffic() (Traffic, bool) {
	if cl.collector == nil {
		return Traffic{}, false
	}
	s := cl.collector.Stats()
	return Traffic{
		Messages: s.Total.Messages, Bytes: s.Total.Bytes,
		IntraMessages: s.Intra.Messages, IntraBytes: s.Intra.Bytes,
		InterMessages: s.Inter.Messages, InterBytes: s.Inter.Bytes,
	}, true
}
