package bcast

import (
	"context"
	"fmt"
	"unsafe"
)

// Scalar constrains the element types of the typed collective helpers
// to fixed-layout numerics, so a slice can travel as its raw bytes.
// (The engine is in-process shared memory — there is no endianness or
// ABI boundary to cross.)
type Scalar interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~int |
		~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uint |
		~float32 | ~float64
}

// asBytes reinterprets a scalar slice as its backing bytes (zero copy).
func asBytes[T Scalar](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// BcastSlice broadcasts s from root: the root's elements overwrite
// every other rank's. All ranks must pass slices of equal length.
func BcastSlice[T Scalar](ctx context.Context, c Comm, s []T, root int, opts ...CallOption) error {
	return c.Bcast(ctx, asBytes(s), root, opts...)
}

// ScatterSlice distributes consecutive len(recv)-element pieces of send
// so rank i receives piece i. send is significant only on the root,
// where its length must be Size*len(recv).
func ScatterSlice[T Scalar](ctx context.Context, c Comm, send, recv []T, root int) error {
	if c.Rank() == root && len(send) != c.Size()*len(recv) {
		return fmt.Errorf("bcast: scatter send has %d elements, want Size*len(recv) = %d", len(send), c.Size()*len(recv))
	}
	chunk := len(recv) * int(unsafe.Sizeof(*new(T)))
	return c.Scatter(ctx, asBytes(send), chunk, asBytes(recv), root)
}

// GatherSlice collects each rank's send into recv on the root (length
// Size*len(send), significant only there), rank i's contribution at
// element offset i*len(send).
func GatherSlice[T Scalar](ctx context.Context, c Comm, send, recv []T, root int) error {
	if c.Rank() == root && len(recv) != c.Size()*len(send) {
		return fmt.Errorf("bcast: gather recv has %d elements, want Size*len(send) = %d", len(recv), c.Size()*len(send))
	}
	chunk := len(send) * int(unsafe.Sizeof(*new(T)))
	return c.Gather(ctx, asBytes(send), chunk, asBytes(recv), root)
}

// AllgatherSlice is GatherSlice delivered to every rank; recv must have
// Size*len(send) elements on all ranks.
func AllgatherSlice[T Scalar](ctx context.Context, c Comm, send, recv []T) error {
	if len(recv) != c.Size()*len(send) {
		return fmt.Errorf("bcast: allgather recv has %d elements, want Size*len(send) = %d", len(recv), c.Size()*len(send))
	}
	chunk := len(send) * int(unsafe.Sizeof(*new(T)))
	return c.Allgather(ctx, asBytes(send), chunk, asBytes(recv))
}
