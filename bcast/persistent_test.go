package bcast_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/bcast"
	"repro/internal/testutil"
)

// persistentPayload writes round's deterministic broadcast payload: the
// rounds differ so a handle replaying a stale schedule (or a stale
// buffer) cannot pass by accident.
func persistentPayload(buf []byte, round int) {
	for i := range buf {
		buf[i] = byte(i*7 + round*13 + 3)
	}
}

// hasConstraint reports whether the registered algorithm carries the
// given capability label.
func hasConstraint(info bcast.AlgorithmInfo, label string) bool {
	for _, c := range info.Constraints {
		if c == label {
			return true
		}
	}
	return false
}

// TestPersistentParityGrid is the registry-wide reuse-parity grid for
// persistent handles: for every executor x placement cell and every
// applicable registered algorithm, BcastInit + N x Start/Wait on one
// cluster must deliver byte-identical buffers every round and identical
// traced traffic to N x Comm.Bcast on a fresh cluster. The persistent
// path dispatches through the same registration as the per-call path,
// so any divergence here is a resolved-once cache gone stale.
func TestPersistentParityGrid(t *testing.T) {
	const (
		np   = 16 // power of two: pow2-only algorithms stay applicable
		n    = 8 << 10
		runs = 3
	)
	ctx := context.Background()
	for _, cell := range reuseGridCells() {
		for _, algo := range bcast.Algorithms() {
			if cell.placement == "single" && hasConstraint(algo, "multi-node-only") {
				continue
			}
			t.Run(cell.name+"/"+algo.Name, func(t *testing.T) {
				callOpts := []bcast.CallOption{
					bcast.WithAlgorithm(algo.Name),
					bcast.WithSegSize(1 << 10),
				}
				clusterOpts := []bcast.Option{
					bcast.Procs(np),
					bcast.Placement(cell.placement),
					bcast.TraceTraffic(),
				}
				if cell.pooled {
					clusterOpts = append(clusterOpts, bcast.ExecPooled(0))
				}

				// Fresh cluster: runs per-call broadcasts in one Run.
				fresh, err := bcast.NewCluster(ctx, clusterOpts...)
				if err != nil {
					t.Fatal(err)
				}
				freshOut := make([][][]byte, runs)
				for i := range freshOut {
					freshOut[i] = make([][]byte, np)
				}
				err = fresh.Run(ctx, func(c bcast.Comm) error {
					buf := make([]byte, n)
					for round := 0; round < runs; round++ {
						if c.Rank() == 0 {
							persistentPayload(buf, round)
						}
						if err := c.Bcast(ctx, buf, 0, callOpts...); err != nil {
							return fmt.Errorf("round %d: %w", round, err)
						}
						freshOut[round][c.Rank()] = append([]byte(nil), buf...)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				freshTraffic, ok := fresh.Traffic()
				if !ok {
					t.Fatal("fresh cluster: no traffic trace")
				}

				// Persistent cluster: one BcastInit, runs Start/Wait pairs.
				pers, err := bcast.NewCluster(ctx, clusterOpts...)
				if err != nil {
					t.Fatal(err)
				}
				persOut := make([][][]byte, runs)
				for i := range persOut {
					persOut[i] = make([][]byte, np)
				}
				err = pers.Run(ctx, func(c bcast.Comm) error {
					buf := make([]byte, n)
					h, err := c.BcastInit(buf, 0, callOpts...)
					if err != nil {
						return err
					}
					if got := h.Decision().Algorithm; got != algo.Name {
						return fmt.Errorf("pinned decision resolved to %q", got)
					}
					for round := 0; round < runs; round++ {
						if c.Rank() == 0 {
							persistentPayload(buf, round)
						}
						if err := h.Start(); err != nil {
							return fmt.Errorf("round %d: %w", round, err)
						}
						if err := h.Wait(ctx); err != nil {
							return fmt.Errorf("round %d: %w", round, err)
						}
						persOut[round][c.Rank()] = append([]byte(nil), buf...)
					}
					return h.Free()
				})
				if err != nil {
					t.Fatal(err)
				}

				for round := 0; round < runs; round++ {
					want := make([]byte, n)
					persistentPayload(want, round)
					for r := 0; r < np; r++ {
						if !bytes.Equal(persOut[round][r], want) {
							t.Fatalf("round %d rank %d: persistent payload corrupt", round, r)
						}
						if !bytes.Equal(persOut[round][r], freshOut[round][r]) {
							t.Fatalf("round %d rank %d: Start/Wait differs from fresh Bcast", round, r)
						}
					}
				}

				// Traffic identity: the resolved plan must move exactly the
				// messages the per-call path moves — init-time warming and
				// schedule caching may not add or drop a single send.
				persTraffic, ok := pers.Traffic()
				if !ok {
					t.Fatal("persistent cluster: no traffic trace")
				}
				if !reflect.DeepEqual(persTraffic, freshTraffic) {
					t.Errorf("traffic diverges: persistent %+v, fresh %+v", persTraffic, freshTraffic)
				}
			})
		}
	}
}

// TestPersistentStartWaitAllocs is the serving-workload allocation gate:
// inside one live world, a steady-state Start/Wait must cost at most 2
// allocations per operation per rank. The harness mirrors the collective
// package's alloc harness — only rank 0 talks to the host and relays the
// round through a persistent control broadcast, so pooled ranks block
// exclusively inside engine operations — but every measured operation
// here runs through the public Persistent handle. The cluster runs with
// span recording enabled (and counters are always on), so the budget
// also proves the observability layer's zero-allocation claim.
func TestPersistentStartWaitAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const (
		np = 8
		n  = 64 << 10
		// perOpBudget is the acceptance gate: allocations per Start/Wait
		// per rank in the steady state.
		perOpBudget = 2.0
	)
	ctx := context.Background()
	for _, pooled := range []bool{false, true} {
		name := "goroutine"
		if pooled {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			opts := []bcast.Option{
				bcast.Procs(np),
				bcast.Placement("single"),
				bcast.Timeout(10 * time.Minute),
				// Small on purpose: the measured rounds wrap the ring many
				// times over, so the gate also covers drop-oldest overwrites.
				bcast.WithSpans(16),
			}
			if pooled {
				opts = append(opts, bcast.ExecPooled(0))
			}
			cl, err := bcast.NewCluster(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			// All buffers live before the world launches; rank bodies and
			// the host never allocate per round.
			bufs := make([][]byte, np)
			for r := range bufs {
				bufs[r] = make([]byte, n)
			}
			bufs[0][0], bufs[0][n-1] = 0xAB, 0xCD
			ctls := make([][]byte, np)
			for r := range ctls {
				ctls[r] = make([]byte, 8)
			}
			jobs := make(chan int)
			done := make(chan error, 1)
			runDone := make(chan error, 1)
			go func() {
				runDone <- cl.Run(ctx, func(c bcast.Comm) error {
					r := c.Rank()
					ctl := ctls[r]
					ph, err := c.BcastInit(bufs[r], 0,
						bcast.WithAlgorithm(bcast.RingOptSeg), bcast.WithSegSize(8<<10))
					if err != nil {
						return err
					}
					ch, err := c.BcastInit(ctl, 0, bcast.WithAlgorithm(bcast.Binomial))
					if err != nil {
						return err
					}
					for {
						if r == 0 {
							binary.LittleEndian.PutUint64(ctl, uint64(int64(<-jobs)))
						}
						if err := ch.Run(ctx); err != nil {
							return err
						}
						if int(int64(binary.LittleEndian.Uint64(ctl))) < 0 {
							return errors.Join(ph.Free(), ch.Free())
						}
						err := ph.Run(ctx)
						if berr := c.Barrier(ctx); err == nil {
							err = berr
						}
						if r == 0 {
							done <- err
						}
						if err != nil {
							return err
						}
					}
				})
			}()
			round := func() error {
				jobs <- 0
				return <-done
			}
			// Warm: the first rounds populate the pooled staging classes.
			for i := 0; i < 3; i++ {
				if err := round(); err != nil {
					t.Fatal(err)
				}
			}
			perRound := testing.AllocsPerRun(20, func() {
				if err := round(); err != nil {
					t.Fatal(err)
				}
			})
			// One round is two Start/Wait pairs (control + payload) on each
			// of np ranks, plus a barrier; attribute everything to the 2*np
			// persistent operations — the gate holds even with the barrier
			// counted against it.
			perOp := perRound / (2 * np)
			t.Logf("allocs: %.1f per round, %.2f per Start/Wait per rank", perRound, perOp)
			if perOp > perOpBudget {
				t.Errorf("%.2f allocs per Start/Wait per rank, budget %.1f", perOp, perOpBudget)
			}
			jobs <- -1
			if err := <-runDone; err != nil {
				t.Fatal(err)
			}
			for r := 1; r < np; r++ {
				if bufs[r][0] != 0xAB || bufs[r][n-1] != 0xCD {
					t.Fatalf("rank %d: payload not broadcast", r)
				}
			}
			// The measured rounds must have exercised the full span
			// machinery: recording, retention bounded by the ring size,
			// and drop-oldest wraparound.
			m := cl.Metrics()
			if m.SpansRecorded == 0 {
				t.Error("no spans recorded with WithSpans enabled")
			}
			if got, max := len(m.Spans), 16*np; got > max {
				t.Errorf("retained %d spans, ring capacity bounds it at %d", got, max)
			}
			if m.SpanDrops == 0 {
				t.Error("rings never wrapped: the gate did not cover drop-oldest overwrites")
			}
		})
	}
}

// TestPersistentStaleAfterCleanRun pins the epoch contract: a handle
// (and the Comm under it) escaping a Run that returned cleanly must
// refuse every later use with ErrStaleHandle.
func TestPersistentStaleAfterCleanRun(t *testing.T) {
	const np = 4
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		t.Fatal(err)
	}
	var escaped *bcast.Persistent
	var escapedComm bcast.Comm
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, 1<<10)
		h, err := c.BcastInit(buf, 0)
		if err != nil {
			return err
		}
		// Prove the handle worked while its run was alive.
		if err := h.Run(ctx); err != nil {
			return err
		}
		if c.Rank() == 0 {
			escaped, escapedComm = h, c
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, use := range map[string]func() error{
		"start":  escaped.Start,
		"run":    func() error { return escaped.Run(ctx) },
		"rebind": func() error { return escaped.Rebind(make([]byte, 1<<10)) },
		"init": func() error {
			_, err := escapedComm.BcastInit(make([]byte, 1<<10), 0)
			return err
		},
	} {
		if err := use(); !errors.Is(err, bcast.ErrStaleHandle) {
			t.Errorf("%s on stale handle: got %v, want ErrStaleHandle", name, err)
		}
	}
}

// TestPersistentStaleAfterFailedRun checks the loud-failure half of the
// contract: a run that dies retires its in-flight handles, the error
// explains both the staleness and the run's own cause, and the next Run
// boots a fresh world on which new handles work.
func TestPersistentStaleAfterFailedRun(t *testing.T) {
	const np = 4
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var orphan *bcast.Persistent
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, 1<<10)
		h, err := c.BcastInit(buf, 0)
		if err != nil {
			return err
		}
		if err := h.Run(ctx); err != nil {
			return err
		}
		if c.Rank() == 0 {
			orphan = h
		}
		if c.Rank() == 3 {
			return boom
		}
		return nil
	})
	if err == nil {
		t.Fatal("failed run: want error")
	}
	if cl.Boots() != 1 {
		t.Fatalf("Boots() = %d after first (failed) run, want 1", cl.Boots())
	}

	serr := orphan.Run(ctx)
	if !errors.Is(serr, bcast.ErrStaleHandle) {
		t.Fatalf("orphaned handle: got %v, want ErrStaleHandle", serr)
	}
	if !errors.Is(serr, boom) {
		t.Errorf("orphaned handle error must carry the run's cause, got %v", serr)
	}
	if !strings.Contains(serr.Error(), "run ended with") {
		t.Errorf("orphaned handle error not explanatory: %v", serr)
	}

	// The next Run transparently boots a fresh world; a fresh handle on
	// it must work — only the orphan stays dead.
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, 1<<10)
		if c.Rank() == 0 {
			persistentPayload(buf, 0)
		}
		h, err := c.BcastInit(buf, 0)
		if err != nil {
			return err
		}
		if err := h.Run(ctx); err != nil {
			return err
		}
		want := make([]byte, 1<<10)
		persistentPayload(want, 0)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: payload corrupt after fallback boot", c.Rank())
		}
		return h.Free()
	})
	if err != nil {
		t.Fatalf("run after failure: %v", err)
	}
	if cl.Boots() != 2 {
		t.Fatalf("Boots() = %d after failure + clean run, want 2", cl.Boots())
	}
	if err := orphan.Start(); !errors.Is(err, bcast.ErrStaleHandle) {
		t.Fatalf("orphan must stay stale across the fresh boot, got %v", err)
	}
}

// TestConcurrentPersistentBcastOnSplitComms drives two persistent
// broadcasts concurrently on one cluster: the ranks split into two
// groups and each group Start/Waits its own handle with no cross-group
// ordering. Tag streams plus per-context matching must keep the two
// payloads isolated; under -race this also exercises the handle and
// stream bookkeeping for data races.
func TestConcurrentPersistentBcastOnSplitComms(t *testing.T) {
	const (
		np     = 8
		n      = 4 << 10
		rounds = 4
	)
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np), bcast.Placement("blocked:4"))
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		group := c.Rank() % 2
		sub, ok, err := c.Split(ctx, group, 0)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("rank %d: no subcommunicator", c.Rank())
		}
		buf := make([]byte, n)
		h, err := sub.BcastInit(buf, 0)
		if err != nil {
			return err
		}
		for round := 0; round < rounds; round++ {
			if sub.Rank() == 0 {
				for i := range buf {
					buf[i] = byte(i*5 + round*17 + group*101 + 7)
				}
			}
			if err := h.Run(ctx); err != nil {
				return fmt.Errorf("group %d round %d: %w", group, round, err)
			}
			for i := range buf {
				if want := byte(i*5 + round*17 + group*101 + 7); buf[i] != want {
					return fmt.Errorf("group %d round %d rank %d: byte %d = %#x, want %#x",
						group, round, sub.Rank(), i, buf[i], want)
				}
			}
		}
		return h.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitUndefined checks the facade's opt-out color: the rank passing
// Undefined gets ok=false and no communicator, while the remaining ranks
// form a working group.
func TestSplitUndefined(t *testing.T) {
	const np = 4
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = bcast.Undefined
		}
		sub, ok, err := c.Split(ctx, color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if ok {
				return errors.New("Undefined color must opt out")
			}
			return nil
		}
		if !ok || sub.Size() != np-1 {
			return fmt.Errorf("rank %d: group size %d, want %d", c.Rank(), sub.Size(), np-1)
		}
		buf := make([]byte, 256)
		if sub.Rank() == 0 {
			persistentPayload(buf, 1)
		}
		if err := sub.Bcast(ctx, buf, 0); err != nil {
			return err
		}
		want := make([]byte, 256)
		persistentPayload(want, 1)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: split-group broadcast corrupt", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPersistentLifecycleErrors walks the handle state machine's
// illegal transitions. All probes are local (no communication), so every
// rank runs the identical script and the world stays in step for the
// collective Wait calls in between.
func TestPersistentLifecycleErrors(t *testing.T) {
	// np >= MinRingProcs so the cross-threshold rebind below actually
	// crosses an algorithm boundary (smaller worlds always pick binomial).
	const np = 8
	ctx := context.Background()
	cl, err := bcast.NewCluster(ctx, bcast.Procs(np))
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		if _, err := c.BcastInit(make([]byte, 64), np); err == nil {
			return errors.New("out-of-range root must fail Init")
		}
		if _, err := c.BcastInit(make([]byte, 64), 0, bcast.WithAlgorithm("no-such-algorithm")); err == nil {
			return errors.New("unknown algorithm must fail Init")
		}

		small := make([]byte, 1<<10)
		h, err := c.BcastInit(small, 0)
		if err != nil {
			return err
		}
		if err := h.Wait(ctx); err == nil {
			return errors.New("Wait without Start must fail")
		}
		if err := h.Start(); err != nil {
			return err
		}
		if err := h.Start(); err == nil {
			return errors.New("double Start must fail")
		}
		if err := h.Free(); err == nil {
			return errors.New("Free while active must fail")
		}
		if err := h.Rebind(make([]byte, 1<<10)); err == nil {
			return errors.New("Rebind while active must fail")
		}
		if c.Rank() == 0 {
			persistentPayload(small, 0)
		}
		if err := h.Wait(ctx); err != nil {
			return err
		}

		// Same-length rebind keeps the resolved decision; the handle then
		// serves the new buffer (the double-buffering pattern).
		before := h.Decision()
		small2 := make([]byte, 1<<10)
		if err := h.Rebind(small2); err != nil {
			return err
		}
		if h.Decision() != before {
			return fmt.Errorf("same-length Rebind changed decision: %+v -> %+v", before, h.Decision())
		}
		if c.Rank() == 0 {
			persistentPayload(small2, 1)
		}
		if err := h.Run(ctx); err != nil {
			return err
		}
		want := make([]byte, 1<<10)
		persistentPayload(want, 1)
		if !bytes.Equal(small2, want) {
			return fmt.Errorf("rank %d: rebound buffer not served", c.Rank())
		}

		// Cross-threshold rebind re-resolves: a 1 KiB and a 1 MiB
		// broadcast select different algorithms under the default tuner,
		// and the handle's decision must match the per-call query's.
		big := make([]byte, 1<<20)
		if err := h.Rebind(big); err != nil {
			return err
		}
		if h.Decision().Algorithm == before.Algorithm {
			return fmt.Errorf("cross-threshold Rebind kept %q", before.Algorithm)
		}
		if want := c.Decision(len(big)); h.Decision() != want {
			return fmt.Errorf("rebound decision %+v, per-call query %+v", h.Decision(), want)
		}
		if c.Rank() == 0 {
			persistentPayload(big, 2)
		}
		if err := h.Run(ctx); err != nil {
			return err
		}
		wantBig := make([]byte, 1<<20)
		persistentPayload(wantBig, 2)
		if !bytes.Equal(big, wantBig) {
			return fmt.Errorf("rank %d: re-resolved handle corrupt", c.Rank())
		}

		if err := h.Free(); err != nil {
			return err
		}
		if err := h.Free(); err != nil {
			return fmt.Errorf("double Free must be a no-op, got %v", err)
		}
		if err := h.Start(); err == nil {
			return errors.New("Start after Free must fail")
		}
		if err := h.Rebind(small); err == nil {
			return errors.New("Rebind after Free must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
