package bcast

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mpi"
)

// promValue extracts the sample value of a metric line ("name 12" or
// "name{labels} 12") from Prometheus text output; -1 when absent.
func promValue(t *testing.T, prom, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(prom, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseInt(line[len(name)+1:], 10, 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q: %v", name, line, err)
		}
		return v
	}
	return -1
}

// TestClusterMetricsEndToEnd is the acceptance path from the issue: a
// pooled 64-rank cluster broadcasting across the eager/rendezvous
// boundary must surface nonzero protocol counters, buffer-pool
// activity and executor parks through WriteProm, and WriteChromeTrace
// must emit a valid timeline with one thread per recording rank.
func TestClusterMetricsEndToEnd(t *testing.T) {
	const np = 64
	cl, err := NewCluster(context.Background(),
		Procs(np),
		Algorithm(Binomial),
		ExecPooled(0),
		WithSpans(64),
		TraceTraffic(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// 16 KiB rides the eager path, 256 KiB and 1 MiB force rendezvous;
	// binomial sends whole buffers, so both protocols must show up.
	for _, n := range []int{16 << 10, 256 << 10, 1 << 20} {
		buf := make([]byte, n)
		err := cl.Run(context.Background(), func(c Comm) error {
			if c.Rank() == 0 {
				buf[0], buf[n-1] = 0x5A, 0xA5
			}
			if err := c.Bcast(context.Background(), buf, 0); err != nil {
				return err
			}
			if buf[0] != 0x5A || buf[n-1] != 0xA5 {
				return fmt.Errorf("rank %d: payload not broadcast", c.Rank())
			}
			return c.Barrier(context.Background())
		})
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
	}

	m := cl.Metrics()
	var prom bytes.Buffer
	if err := m.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, metric := range []string{
		`bcast_sends_total{protocol="eager"}`,
		`bcast_sends_total{protocol="rendezvous"}`,
		`bcast_recvs_total{protocol="eager"}`,
		`bcast_recvs_total{protocol="rendezvous"}`,
		`bcast_executor_parks_total`,
		`bcast_spans_recorded_total`,
		`bcast_traffic_recvs_total`,
	} {
		if v := promValue(t, out, metric); v <= 0 {
			t.Errorf("%s = %d, want > 0\n%s", metric, v, m)
		}
	}
	// Eager staging runs through the pooled size classes, so at least
	// one class must report gets.
	if !strings.Contains(out, "bcast_bufpool_gets_total{class=") {
		t.Errorf("no bufpool class activity in Prometheus output:\n%s", out)
	}
	if v := promValue(t, out, `bcast_runs_total`); v != 3 {
		t.Errorf("bcast_runs_total = %d, want 3", v)
	}
	if tr := m.Traffic; tr == nil || tr.Recvs != tr.Messages {
		t.Errorf("traced recvs must equal traced messages, got %+v", tr)
	}

	// The timeline must be valid JSON with one tid per recording rank —
	// every rank ran three broadcasts and three barriers, so all 64
	// must appear.
	var tl bytes.Buffer
	if err := m.WriteChromeTrace(&tl); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tl.Bytes(), &tf); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	meta, spans := map[int]int{}, map[int]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			meta[ev.Tid]++
		} else {
			spans[ev.Tid]++
		}
	}
	if len(spans) != np {
		t.Errorf("timeline covers %d ranks, want %d", len(spans), np)
	}
	for tid, n := range meta {
		if n != 1 {
			t.Errorf("rank %d: %d thread_name records, want exactly 1", tid, n)
		}
	}
	if int64(len(m.Spans)) != m.SpansRecorded {
		t.Errorf("retained %d spans but recorded %d; nothing should have dropped at cap 64", len(m.Spans), m.SpansRecorded)
	}
}

// TestClusterMetricsRetiredCauses checks the failure-cause breakdown: a
// failed run retires its world under the classified cause and counts as
// a failed run, and the next clean Run boots fresh.
func TestClusterMetricsRetiredCauses(t *testing.T) {
	cl, err := NewCluster(context.Background(), Procs(4))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := cl.Run(context.Background(), func(c Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		return c.Barrier(context.Background())
	}); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.Run(ctx, func(c Comm) error {
		return c.Barrier(context.Background())
	}); err == nil {
		t.Fatal("canceled Run must fail")
	}
	if err := cl.Run(context.Background(), func(c Comm) error {
		return c.Barrier(context.Background())
	}); err != nil {
		t.Fatal(err)
	}

	m := cl.Metrics()
	if m.Runs != 3 || m.FailedRuns != 2 {
		t.Errorf("runs=%d failed=%d, want 3/2", m.Runs, m.FailedRuns)
	}
	if m.RetiredWorlds["error"] != 1 || m.RetiredWorlds["canceled"] != 1 {
		t.Errorf("RetiredWorlds = %v, want error:1 canceled:1", m.RetiredWorlds)
	}
	if m.Boots != 3 {
		t.Errorf("Boots = %d, want 3 (two retirements force two reboots)", m.Boots)
	}
	if m.SpanCap != 0 || len(m.Spans) != 0 {
		t.Errorf("spans must stay off without WithSpans, got cap=%d retained=%d", m.SpanCap, len(m.Spans))
	}
}

// TestRetireCause pins the error classification table.
func TestRetireCause(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{fmt.Errorf("run: %w", mpi.ErrDeadlock), "deadlock"},
		{fmt.Errorf("run: %w", context.Canceled), "canceled"},
		{fmt.Errorf("run: %w", context.DeadlineExceeded), "deadline"},
		{fmt.Errorf("run: %w", mpi.ErrAborted), "aborted"},
		{errors.New("boom"), "error"},
	} {
		if got := retireCause(tc.err); got != tc.want {
			t.Errorf("retireCause(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
