package bcast

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/tune"
)

// config is the resolved cluster configuration NewCluster builds from
// its options.
type config struct {
	np        int
	placement tune.Placement
	nodeOf    []int // custom placement; overrides placement when set
	opts      collective.Options
	hasTuner  bool // a Tuner or TuneTable option was given
	eager     int
	timeout   time.Duration
	traffic   bool
	exec      engine.ExecPolicy
	workers   int
	spanCap   int
	transport string
}

// Option configures a Cluster. Options are applied in order by
// NewCluster; conflicting selection options (Algorithm versus
// Tuner/TuneTable) are rejected rather than silently ranked.
type Option func(*config) error

// Procs sets the number of ranks (required, > 0).
func Procs(np int) Option {
	return func(c *config) error {
		if np <= 0 {
			return fmt.Errorf("bcast: Procs must be positive, got %d", np)
		}
		c.np = np
		return nil
	}
}

// Placement maps ranks onto nodes from a spec string: "single" (all
// ranks on one node, the default), "blocked:N" (N consecutive ranks per
// node) or "round-robin:N" (ranks dealt across nodes of capacity N).
// The spec vocabulary matches the CLI tools' -placements flag, so a
// placement used to derive a tuning table names the same mapping here.
func Placement(spec string) Option {
	return func(c *config) error {
		pl, err := tune.ParsePlacement(spec)
		if err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
		c.placement = pl
		c.nodeOf = nil
		return nil
	}
}

// CustomPlacement places rank i on node nodeOf[i] for irregular
// layouts the Placement specs cannot express. The slice length must
// equal the Procs value.
func CustomPlacement(nodeOf ...int) Option {
	return func(c *config) error {
		if len(nodeOf) == 0 {
			return fmt.Errorf("bcast: empty custom placement")
		}
		c.nodeOf = append([]int(nil), nodeOf...)
		c.placement = tune.Placement{}
		return nil
	}
}

// Algorithm pins every broadcast of the cluster to one registered
// algorithm (see the name constants and Algorithms), bypassing the
// tuner. Mutually exclusive with Tuner and TuneTable; per-call
// overrides remain available through WithAlgorithm and WithTuner.
func Algorithm(name string) Option {
	return func(c *config) error {
		if name == "" {
			return fmt.Errorf("bcast: empty algorithm name")
		}
		c.opts.Algorithm = name
		return nil
	}
}

// SegSize sets the pipeline segment size in bytes for segmented
// algorithms: the parameter of a pinned Algorithm, or an override of
// the tuner's segment choice when positive.
func SegSize(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("bcast: negative segment size %d", n)
		}
		c.opts.SegSize = n
		return nil
	}
}

// Tuner installs fn as the cluster's algorithm selector. The function
// must be pure (see TunerFunc). Mutually exclusive with Algorithm and
// TuneTable.
func Tuner(fn TunerFunc) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("bcast: nil tuner")
		}
		if c.hasTuner {
			return fmt.Errorf("bcast: a tuner is already configured (give Tuner or TuneTable at most once)")
		}
		c.opts.Tuner = tunerAdapter{fn: fn}
		c.hasTuner = true
		return nil
	}
}

// TuneTable loads a JSON tuning table — the artifact bcastbench
// -autotune and bcastsim -autotune emit — and dispatches every
// broadcast through it, falling back to the default MPICH3 selection
// for environments no rule covers. The table is read and validated
// here, so a malformed file fails NewCluster, not a broadcast deep in a
// run. Mutually exclusive with Algorithm and Tuner.
func TuneTable(path string) Option {
	return func(c *config) error {
		if c.hasTuner {
			return fmt.Errorf("bcast: a tuner is already configured (give Tuner or TuneTable at most once)")
		}
		t, err := tune.LoadTable(path)
		if err != nil {
			return fmt.Errorf("bcast: %w", err)
		}
		c.opts.Tuner = tune.TableTuner{Table: t, Fallback: tune.MPICH3{}}
		c.hasTuner = true
		return nil
	}
}

// EagerLimit overrides the engine's eager/rendezvous protocol threshold
// in bytes (0 = engine default, negative = rendezvous for every
// message).
func EagerLimit(n int) Option {
	return func(c *config) error {
		c.eager = n
		return nil
	}
}

// Timeout bounds each Run's wall-clock time (0 = the engine default of
// two minutes per the measurement subsystem, 120 s for plain runs).
// Prefer a context deadline for per-call bounds; Timeout is the
// last-resort guard against a wedged run.
func Timeout(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("bcast: negative timeout %v", d)
		}
		c.timeout = d
		return nil
	}
}

// ExecPooled runs each Run's ranks on a bounded cooperative worker pool
// instead of the default one-goroutine-per-rank substrate: a rank is
// runnable only while it holds one of min(GOMAXPROCS, workers) slots and
// parks (slot released) whenever it blocks in a collective or
// point-to-point call. Use it when Procs is well past the host's core
// count — wall-clock behavior then reflects the communication schedule
// rather than OS-scheduler noise, and clusters with hundreds of ranks
// stay practical. workers 0 means GOMAXPROCS, which is the right choice
// unless the host is shared; negative is rejected. Cancellation
// semantics are identical across substrates.
func ExecPooled(workers int) Option {
	return func(c *config) error {
		if workers < 0 {
			return fmt.Errorf("bcast: negative worker count %d (0 = GOMAXPROCS)", workers)
		}
		c.exec = engine.Pooled
		c.workers = workers
		return nil
	}
}

// TraceTraffic records every message sent during the cluster's runs,
// classified intra- versus inter-node; Cluster.Traffic reports the
// accumulated totals.
func TraceTraffic() Option {
	return func(c *config) error {
		c.traffic = true
		return nil
	}
}

// WithSpans enables operation spans: every collective a rank completes
// is recorded — operation, algorithm, segment size, byte count, start
// and duration — into a fixed per-rank ring of n entries that drops the
// oldest span when full (the Snapshot reports how many were dropped).
// Recording is allocation-free, so the steady-state guarantees hold
// with spans on. Cluster.Metrics returns the retained spans;
// Snapshot.WriteChromeTrace renders them as a Chrome/Perfetto timeline.
// Counters need no option — they are always on.
func WithSpans(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("bcast: WithSpans needs a positive per-rank capacity, got %d", n)
		}
		c.spanCap = n
		return nil
	}
}

// WithTransport selects the engine's point-to-point substrate by name:
// transport.ChanName (the in-process default, also selected by "") or
// transport.UDPName, which routes every message through a loopback UDP
// socket using the real datagram framing and retransmit machinery (see
// internal/transport). The cluster boots a fresh transport with each
// world and closes it when the world is retired or the cluster is
// Closed. Traffic and results are byte-identical across transports; only
// wall-clock differs.
func WithTransport(spec string) Option {
	return func(c *config) error {
		switch spec {
		case "", transport.ChanName, transport.UDPName, transport.UDPBaseName:
			c.transport = spec
			return nil
		default:
			return fmt.Errorf("bcast: unknown transport %q (have %q, %q, %q)", spec, transport.ChanName, transport.UDPName, transport.UDPBaseName)
		}
	}
}

// topo realizes the configured placement for the configured rank count.
func (c *config) topo() (*topology.Map, error) {
	if c.nodeOf != nil {
		if len(c.nodeOf) != c.np {
			return nil, fmt.Errorf("bcast: custom placement has %d ranks, Procs is %d", len(c.nodeOf), c.np)
		}
		m, err := topology.Custom(c.nodeOf)
		if err != nil {
			return nil, fmt.Errorf("bcast: %w", err)
		}
		return m, nil
	}
	if c.placement.Kind == "" {
		return topology.SingleNode(c.np), nil
	}
	m, err := c.placement.Map(c.np)
	if err != nil {
		return nil, fmt.Errorf("bcast: %w", err)
	}
	return m, nil
}

// validate cross-checks the assembled configuration.
func (c *config) validate() error {
	if c.np <= 0 {
		return fmt.Errorf("bcast: the Procs option is required")
	}
	if c.opts.Algorithm != "" && c.hasTuner {
		return fmt.Errorf("bcast: Algorithm is mutually exclusive with Tuner and TuneTable (use per-call WithAlgorithm to override a tuner)")
	}
	if err := c.opts.Validate(); err != nil {
		return fmt.Errorf("bcast: %w", err)
	}
	return nil
}
