package bcast_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/bcast"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func mustCluster(t *testing.T, opts ...bcast.Option) *bcast.Cluster {
	t.Helper()
	cl, err := bcast.NewCluster(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestNewClusterValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		opts []bcast.Option
		want string
	}{
		{"missing procs", nil, "Procs option is required"},
		{"bad procs", []bcast.Option{bcast.Procs(0)}, "must be positive"},
		{"bad placement", []bcast.Option{bcast.Procs(4), bcast.Placement("diagonal:3")}, "unknown placement"},
		{"unknown algorithm", []bcast.Option{bcast.Procs(4), bcast.Algorithm("warp-bcast")}, "unknown algorithm"},
		{"algorithm vs tuner", []bcast.Option{
			bcast.Procs(4), bcast.Algorithm(bcast.RingOpt),
			bcast.Tuner(bcast.MPICH3Tuner(true)),
		}, "mutually exclusive"},
		{"negative seg", []bcast.Option{bcast.Procs(4), bcast.SegSize(-1)}, "negative segment size"},
		{"custom placement length", []bcast.Option{bcast.Procs(4), bcast.CustomPlacement(0, 0, 1)}, "custom placement has 3 ranks"},
		{"missing table", []bcast.Option{bcast.Procs(4), bcast.TuneTable("/no/such/table.json")}, "load table"},
	}
	for _, tc := range cases {
		_, err := bcast.NewCluster(ctx, tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := bcast.NewCluster(canceled, bcast.Procs(2)); err == nil {
		t.Error("pre-canceled cluster context not rejected")
	}
}

// TestRunBroadcastEveryPlacement drives the default dispatch and a
// pinned algorithm through the facade on each placement kind and checks
// every rank received the root's payload.
func TestRunBroadcastEveryPlacement(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		placement string
		opts      []bcast.CallOption
	}{
		{"single", nil},
		{"blocked:4", nil},
		{"round-robin:4", nil},
		{"blocked:4", []bcast.CallOption{bcast.WithAlgorithm(bcast.RingOpt)}},
		{"blocked:4", []bcast.CallOption{bcast.WithAlgorithm(bcast.RingOptSeg), bcast.WithSegSize(512)}},
		{"blocked:4", []bcast.CallOption{bcast.WithAlgorithm(bcast.SMPOpt)}},
	} {
		cl := mustCluster(t, bcast.Procs(9), bcast.Placement(tc.placement))
		const root = 2
		payload := bytes.Repeat([]byte("payload!"), 512)
		err := cl.Run(ctx, func(c bcast.Comm) error {
			buf := make([]byte, len(payload))
			if c.Rank() == root {
				copy(buf, payload)
			}
			if err := c.Bcast(ctx, buf, root, tc.opts...); err != nil {
				return err
			}
			if !bytes.Equal(buf, payload) {
				return errors.New("corrupted broadcast payload")
			}
			return c.Barrier(ctx)
		})
		if err != nil {
			t.Errorf("placement %s opts %d: %v", tc.placement, len(tc.opts), err)
		}
	}
}

// TestClusterReusable checks a Cluster survives sequential Runs (each
// boots a fresh world).
func TestClusterReusable(t *testing.T) {
	ctx := context.Background()
	cl := mustCluster(t, bcast.Procs(4))
	for i := 0; i < 3; i++ {
		if err := cl.Run(ctx, func(c bcast.Comm) error {
			buf := []byte{0}
			if c.Rank() == 0 {
				buf[0] = byte(i + 1)
			}
			if err := c.Bcast(ctx, buf, 0); err != nil {
				return err
			}
			if buf[0] != byte(i+1) {
				return errors.New("stale broadcast value")
			}
			return nil
		}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestDecisionResolution(t *testing.T) {
	cl := mustCluster(t, bcast.Procs(16))

	// Default dispatch is stock MPICH3: tiny messages take the binomial
	// tree, long ones the (native) ring.
	if d := cl.Decision(64); d.Algorithm != bcast.Binomial {
		t.Errorf("64 B decision = %+v, want binomial", d)
	}
	if d := cl.Decision(1 << 20); d.Algorithm != bcast.RingNative {
		t.Errorf("1 MiB decision = %+v, want %s", d, bcast.RingNative)
	}
	// The tuned dispatch picks the paper's ring on the long path.
	if d := cl.Decision(1<<20, bcast.WithTuner(bcast.MPICH3Tuner(true))); d.Algorithm != bcast.RingOpt {
		t.Errorf("tuned 1 MiB decision = %+v, want %s", d, bcast.RingOpt)
	}
	// Per-call pinning beats the cluster default, and WithSegSize rides
	// along.
	d := cl.Decision(1<<20, bcast.WithAlgorithm(bcast.RingOptSeg), bcast.WithSegSize(8192))
	if d.Algorithm != bcast.RingOptSeg || d.SegSize != 8192 {
		t.Errorf("pinned decision = %+v, want %s@8192", d, bcast.RingOptSeg)
	}
	// A custom tuner sees the real environment.
	var seen bcast.Env
	cl2 := mustCluster(t, bcast.Procs(8), bcast.Placement("blocked:4"),
		bcast.Tuner(func(e bcast.Env) bcast.Decision {
			seen = e
			return bcast.Decision{Algorithm: bcast.Binomial}
		}))
	if d := cl2.Decision(4096); d.Algorithm != bcast.Binomial {
		t.Errorf("custom tuner decision = %+v", d)
	}
	if seen.Procs != 8 || seen.Bytes != 4096 || seen.NumNodes != 2 || seen.Placement != "blocked" || seen.CoresPerNode != 4 {
		t.Errorf("tuner env = %+v, want procs=8 bytes=4096 nodes=2 blocked cores=4", seen)
	}
	// WithTuner(nil) restores the default dispatch rather than
	// installing a tuner that cannot decide.
	if d := cl.Decision(1<<20, bcast.WithTuner(bcast.MPICH3Tuner(true)), bcast.WithTuner(nil)); d.Algorithm != bcast.RingNative {
		t.Errorf("WithTuner(nil) decision = %+v, want default %s", d, bcast.RingNative)
	}
	// A negative per-call segment size fails the call loudly instead of
	// silently running the default pipeline.
	ctx := context.Background()
	err := cl.Run(ctx, func(c bcast.Comm) error {
		return c.Bcast(ctx, make([]byte, 1024), 0,
			bcast.WithAlgorithm(bcast.RingOptSeg), bcast.WithSegSize(-8192))
	})
	if err == nil || !strings.Contains(err.Error(), "negative segment size") {
		t.Errorf("negative per-call seg size not rejected: %v", err)
	}
	// Inside Run, Comm.Decision agrees with Cluster.Decision.
	if err := cl.Run(ctx, func(c bcast.Comm) error {
		if d := c.Decision(1 << 20); d.Algorithm != bcast.RingNative {
			return errors.New("Comm.Decision diverged from Cluster.Decision: " + d.Algorithm)
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
}

// TestTrafficInterNodeSaving reproduces the paper's claim as a
// measurement through the public API alone: with a multi-node placement
// the tuned ring moves strictly fewer inter-node bytes than the native
// ring for a long message.
func TestTrafficInterNodeSaving(t *testing.T) {
	ctx := context.Background()
	const np, n, root = 12, 1 << 18, 0
	inter := map[string]int64{}
	for _, algo := range []string{bcast.RingNative, bcast.RingOpt} {
		cl := mustCluster(t, bcast.Procs(np), bcast.Placement("blocked:4"),
			bcast.Algorithm(algo), bcast.TraceTraffic())
		err := cl.Run(ctx, func(c bcast.Comm) error {
			buf := make([]byte, n)
			return c.Bcast(ctx, buf, root)
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		tr, ok := cl.Traffic()
		if !ok {
			t.Fatalf("%s: traffic tracing not enabled", algo)
		}
		if tr.Messages == 0 || tr.Bytes == 0 {
			t.Fatalf("%s: empty traffic stats: %+v", algo, tr)
		}
		if tr.InterMessages+tr.IntraMessages != tr.Messages {
			t.Errorf("%s: intra+inter != total: %+v", algo, tr)
		}
		inter[algo] = tr.InterBytes
	}
	if inter[bcast.RingOpt] >= inter[bcast.RingNative] {
		t.Errorf("tuned ring saved no inter-node bytes: opt %d >= native %d",
			inter[bcast.RingOpt], inter[bcast.RingNative])
	}

	// Without the option, Traffic reports absence.
	cl := mustCluster(t, bcast.Procs(2))
	if _, ok := cl.Traffic(); ok {
		t.Error("Traffic reported stats without TraceTraffic")
	}
}

func TestSliceHelpers(t *testing.T) {
	ctx := context.Background()
	cl := mustCluster(t, bcast.Procs(6))
	err := cl.Run(ctx, func(c bcast.Comm) error {
		// BcastSlice: float64 payload from rank 1.
		vals := make([]float64, 100)
		if c.Rank() == 1 {
			for i := range vals {
				vals[i] = float64(i) / 7
			}
		}
		if err := bcast.BcastSlice(ctx, c, vals, 1); err != nil {
			return err
		}
		for i := range vals {
			if vals[i] != float64(i)/7 {
				return errors.New("BcastSlice corrupted payload")
			}
		}

		// ScatterSlice + GatherSlice round trip int32 chunks.
		var send []int32
		if c.Rank() == 0 {
			send = make([]int32, 3*c.Size())
			for i := range send {
				send[i] = int32(i)
			}
		}
		mine := make([]int32, 3)
		if err := bcast.ScatterSlice(ctx, c, send, mine, 0); err != nil {
			return err
		}
		for j, v := range mine {
			if v != int32(3*c.Rank()+j) {
				return errors.New("ScatterSlice delivered wrong chunk")
			}
			mine[j] = v * 10
		}
		var back []int32
		if c.Rank() == 0 {
			back = make([]int32, 3*c.Size())
		}
		if err := bcast.GatherSlice(ctx, c, mine, back, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i, v := range back {
				if v != int32(i*10) {
					return errors.New("GatherSlice reassembled wrong data")
				}
			}
		}

		// AllgatherSlice: every rank contributes its rank id.
		all := make([]uint16, c.Size())
		if err := bcast.AllgatherSlice(ctx, c, []uint16{uint16(c.Rank())}, all); err != nil {
			return err
		}
		for i, v := range all {
			if v != uint16(i) {
				return errors.New("AllgatherSlice wrong layout")
			}
		}

		// AllreduceFloat64 sums rank ids: 0+1+...+5 = 15.
		out := make([]float64, 1)
		if err := c.AllreduceFloat64(ctx, []float64{float64(c.Rank())}, out, bcast.OpSum); err != nil {
			return err
		}
		if out[0] != 15 {
			return errors.New("AllreduceFloat64 wrong sum")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Length validation fails loudly at the root.
	err = cl.Run(ctx, func(c bcast.Comm) error {
		recv := make([]int32, 2)
		err := bcast.ScatterSlice(ctx, c, make([]int32, 5), recv, 0)
		if c.Rank() == 0 {
			if err == nil {
				return errors.New("short scatter send not rejected")
			}
			return nil
		}
		// Non-root ranks abort via the root's failure; any error is fine.
		return nil
	})
	if err == nil {
		t.Error("mismatched ScatterSlice run reported no error")
	}
}

func TestAlgorithmsListing(t *testing.T) {
	algos := bcast.Algorithms()
	if len(algos) < 10 {
		t.Fatalf("registry listing too short: %d entries", len(algos))
	}
	found := map[string]bcast.AlgorithmInfo{}
	for _, a := range algos {
		if a.Name == "" || a.Summary == "" {
			t.Errorf("incomplete listing entry: %+v", a)
		}
		found[a.Name] = a
	}
	for _, want := range []string{bcast.Binomial, bcast.RingNative, bcast.RingOpt, bcast.RingOptSeg, bcast.SMPOpt} {
		if _, ok := found[want]; !ok {
			t.Errorf("algorithm %q missing from listing", want)
		}
	}
	if info := found[bcast.SMPOpt]; len(info.Constraints) == 0 {
		t.Errorf("SMPOpt listing lost its constraints: %+v", info)
	}
}

func TestSendRecv(t *testing.T) {
	ctx := context.Background()
	cl := mustCluster(t, bcast.Procs(2))
	err := cl.Run(ctx, func(c bcast.Comm) error {
		if c.Rank() == 0 {
			return c.Send(ctx, []byte("ping"), 1, 42)
		}
		buf := make([]byte, 8)
		st, err := c.Recv(ctx, buf, bcast.AnySource, bcast.AnyTag)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 42 || st.Count != 4 || string(buf[:st.Count]) != "ping" {
			return errors.New("wrong message or status")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTuneTableDrivesSelection writes a table by hand and checks the
// facade both loads it and lets it win over the default dispatch.
func TestTuneTableDrivesSelection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.json")
	table := `{
  "name": "test-table",
  "rules": [
    {"min_bytes": 1, "decision": {"algorithm": "` + bcast.RingOptSeg + `", "seg_size": 4096}}
  ]
}`
	if err := writeFile(path, table); err != nil {
		t.Fatal(err)
	}
	cl := mustCluster(t, bcast.Procs(8), bcast.TuneTable(path))
	d := cl.Decision(1 << 20)
	if d.Algorithm != bcast.RingOptSeg || d.SegSize != 4096 {
		t.Fatalf("table-driven decision = %+v, want %s@4096", d, bcast.RingOptSeg)
	}
	// And it actually runs.
	ctx := context.Background()
	if err := cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, 1<<16)
		if c.Rank() == 0 {
			buf[0] = 1
		}
		if err := c.Bcast(ctx, buf, 0); err != nil {
			return err
		}
		if buf[0] != 1 {
			return errors.New("table-dispatched broadcast corrupted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
