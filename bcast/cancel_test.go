package bcast_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/bcast"
	"repro/internal/testutil"
)

// TestCancelInFlightBroadcast cancels a broadcast that can never
// complete (the root withholds its payload by blocking in a receive no
// one answers) and checks: Run returns promptly, the error carries
// context.Canceled, every rank unwound, and no goroutine leaked.
func TestCancelInFlightBroadcast(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cl, err := bcast.NewCluster(context.Background(), bcast.Procs(8))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = cl.Run(ctx, func(c bcast.Comm) error {
		if c.Rank() == 0 {
			// The root never enters the broadcast: it blocks in a
			// receive nobody matches, so all other ranks stay blocked
			// inside Bcast until cancellation unwinds them.
			_, err := c.Recv(ctx, make([]byte, 1), bcast.AnySource, 7)
			return err
		}
		buf := make([]byte, 1<<20)
		return c.Bcast(ctx, buf, 0)
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled run returned nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("run error does not wrap context.Canceled: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("cancellation took %v, want prompt unwind", elapsed)
	}
	testutil.WaitGoroutines(t, base)
}

// TestDeadlineAbortsRun checks deadline expiry behaves like
// cancellation, with context.DeadlineExceeded as the cause.
func TestDeadlineAbortsRun(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	cl, err := bcast.NewCluster(context.Background(), bcast.Procs(4))
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Run(ctx, func(c bcast.Comm) error {
		if c.Rank() == 0 {
			<-ctx.Done() // never participates
			return nil
		}
		return c.Barrier(ctx)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("run error does not wrap context.DeadlineExceeded: %v", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestBaseContextCancelsRun checks the cluster-level context given to
// NewCluster aborts a Run whose own context never fires.
func TestBaseContextCancelsRun(t *testing.T) {
	base := runtime.NumGoroutine()
	clusterCtx, cancel := context.WithCancel(context.Background())
	cl, err := bcast.NewCluster(clusterCtx, bcast.Procs(4))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	runCtx := context.Background()
	err = cl.Run(runCtx, func(c bcast.Comm) error {
		if c.Rank() == 0 {
			_, err := c.Recv(runCtx, make([]byte, 1), bcast.AnySource, 9)
			return err
		}
		buf := make([]byte, 1<<20)
		return c.Bcast(runCtx, buf, 0)
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("run error does not wrap context.Canceled from the base context: %v", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestRanksSeeCancellationError checks the error each rank's blocked
// call returns also carries the cause, so application code can
// errors.Is on it.
func TestRanksSeeCancellationError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cl, err := bcast.NewCluster(context.Background(), bcast.Procs(4))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	rankErrs := make([]error, 4) // each slot written by one rank only
	_ = cl.Run(ctx, func(c bcast.Comm) error {
		if c.Rank() == 0 {
			<-ctx.Done()
			return nil
		}
		buf := make([]byte, 1<<20)
		rankErrs[c.Rank()] = c.Bcast(ctx, buf, 0)
		return rankErrs[c.Rank()]
	})
	for r := 1; r < 4; r++ {
		if !errors.Is(rankErrs[r], context.Canceled) {
			t.Errorf("rank %d broadcast error does not wrap context.Canceled: %v", r, rankErrs[r])
		}
	}
}
