// Package bcast is the public, importable API of the broadcast system:
// a context-aware, option-driven facade over the in-process MPI-like
// engine, the pluggable broadcast-algorithm registry, and the
// auto-tuning stack underneath (the reproduction of "A Bandwidth-Saving
// Optimization for MPI Broadcast Collective Operation", ICPP 2015).
//
// # Model
//
// NewCluster boots a fixed-size group of ranks from functional options
// and returns a reusable Cluster; Cluster.Run executes a function once
// per rank, each invocation receiving a method-based Comm:
//
//	cl, err := bcast.NewCluster(ctx, bcast.Procs(8))
//	if err != nil { ... }
//	err = cl.Run(ctx, func(c bcast.Comm) error {
//		buf := make([]byte, 1<<20)
//		if c.Rank() == 0 {
//			fillPayload(buf)
//		}
//		return c.Bcast(ctx, buf, 0)
//	})
//
// Every communicating method takes a context.Context. Because an MPI
// collective left half-finished poisons every participant, cancellation
// is collective too: when a context fires, the whole run unwinds — every
// rank's blocked operation returns an error wrapping the context's cause
// (errors.Is against context.Canceled or context.DeadlineExceeded
// works), Run returns, and no rank goroutine is left behind.
//
// How ranks are scheduled is configurable: the default substrate runs
// one goroutine per rank, and ExecPooled(workers) switches Runs to a
// bounded cooperative worker pool — the scalable choice once Procs is
// well past the host's cores (hundreds of ranks), with identical
// results, traffic and cancellation semantics. Cluster.Executor reports
// the effective substrate.
//
// # Cluster reuse
//
// A Cluster amortizes its engine world across Runs: the first Run boots
// it, and every later clean Run re-launches rank bodies onto the booted
// world, whose pooled message buffers make the steady-state cost of a
// broadcast a few hundred allocations for the relaunch instead of tens
// of thousands for a boot (BENCH_steadystate_allocs.json records the
// measured trajectory). Reuse is semantically invisible — buffers and
// traced traffic are identical run over run — and it degrades safely: a
// Run that returns an error for any reason (rank failure, cancellation,
// timeout, deadlock) retires the world and the next Run transparently
// boots a fresh one. Cluster.Boots exposes the boot count, so tests can
// assert the steady state really reused (Boots() == 1) or that a
// fallback boot happened (Boots() == 2 after one failed Run).
//
// # Selection: options in, one Decision out
//
// Which broadcast algorithm runs is decided in exactly one place. Cluster
// options (Algorithm, SegSize, Tuner, TuneTable) set the defaults, per-
// call options (WithAlgorithm, WithSegSize, WithTuner) override them, and
// the merged options resolve against the call's environment — message
// size, rank count, node count and placement classification, all derived
// from the cluster's topology — into a Decision naming a registered
// algorithm and its segment size. Comm.Decision reports the resolution
// without moving a byte; Comm.Bcast runs it. By default the dispatch is
// stock MPICH3's (binomial below 12 KiB, scatter + recursive-doubling
// for medium power-of-two, scatter + ring beyond); a TuneTable option
// loads a JSON table produced by the auto-tuner (bcastbench -autotune or
// bcastsim -autotune) and replaces those hardcoded thresholds with
// measured crossover points.
//
// # Persistent handles
//
// Serving loops that broadcast the same-shaped buffer many times use
// Comm.BcastInit to resolve the selection once and execute it many
// times, mirroring MPI persistent requests:
//
//	h, err := c.BcastInit(buf, 0)        // Init: decide + validate + warm
//	for i := 0; i < rounds; i++ {
//		if err := h.Start(); err != nil { ... }  // activate (local, no comm)
//		if err := h.Wait(ctx); err != nil { ... } // execute + complete
//	}
//	err = h.Free()
//
// The lifecycle contract: Init -> (Start -> Wait)* -> Free, with
// Persistent.Run as the Start+Wait convenience and Rebind to swap
// buffers between rounds (free for the same length; a re-resolution
// for a new one). Init is collective — every rank builds its own handle
// with the same root, length and options — and each Start/Wait round is
// collective exactly like the Bcast it replaces. The handle owns the
// buffer between Start and Wait's return: the root writes the next
// payload before the next Start, nobody touches it in between. A
// steady-state Start/Wait performs no selection work and no allocations
// (gated at <= 2 allocs per operation per rank;
// BENCH_persistent_throughput.json records the measured throughput),
// and its buffers and traced traffic are identical to the equivalent
// sequence of per-call Bcasts.
//
// A handle is bound to the Run that created it. When that Run returns —
// cleanly, by error, or by cancellation — the handle is retired and
// every later use fails with an error wrapping ErrStaleHandle together
// with the run's own outcome, so a stale handle can never silently
// broadcast onto the fresh world a failed run boots.
//
// # Concurrent collectives
//
// Comm.Split partitions a running cluster into disjoint groups (equal
// colors, ordered by key; Undefined opts out). Each group's
// collectives — per-call or persistent — run concurrently with and
// fully isolated from the parent's and the sibling groups', backed by
// per-operation tag streams inside the engine: every collective entry
// advances its communicator's stream, so two overlapping operations on
// different communicators can never match each other's messages even
// though the algorithms stamp them from the same phase-tag constants.
//
// # Typed helpers
//
// BcastSlice, ScatterSlice, GatherSlice and AllgatherSlice are generic
// wrappers over the byte-buffer collectives for slices of fixed-size
// numeric types, so numeric workloads need no manual encoding.
//
// # Observability
//
// The TraceTraffic option records every message on the send side,
// classified intra- versus inter-node through the cluster's placement;
// Cluster.Traffic reports the totals. Comparing the inter-node bytes of
// Algorithm(RingNative) against Algorithm(RingOpt) reproduces the
// paper's bandwidth saving as a measurement, not a claim.
//
// Engine counters are always on: every cluster counts sends and
// receives by protocol (eager versus rendezvous), staged bytes,
// executor parks and slot waits, queue high-water marks, world boots
// and failed runs by cause — each event one atomic add on the rank
// that caused it, nothing shared, nothing allocated. Cluster.Metrics
// merges them into a Snapshot whose String, WriteProm and
// WriteChromeTrace methods render a human summary, the Prometheus text
// format, and a Chrome/Perfetto timeline respectively.
//
// Operation spans are the opt-in half: WithSpans(n) gives every rank a
// fixed n-entry ring that records each completed collective —
// operation, algorithm, segment size, bytes, start, duration — and
// drops the oldest entry when full (the Snapshot counts the drops).
// Recording is allocation-free, so the zero-alloc steady-state
// guarantees hold unchanged with spans on; the alloc gates run with
// spans enabled to keep that true.
package bcast
