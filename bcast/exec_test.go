package bcast_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/bcast"
	"repro/internal/engine"
	"repro/internal/testutil"
)

// TestExecPooledBroadcast runs a cluster several times wider than its
// worker pool through the public facade: the broadcast must deliver
// identical bytes everywhere and the cluster must report the pooled
// substrate.
func TestExecPooledBroadcast(t *testing.T) {
	const np = 64
	cl, err := bcast.NewCluster(context.Background(),
		bcast.Procs(np),
		bcast.Placement("blocked:8"),
		bcast.ExecPooled(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("pooled(%d)", engine.PooledWorkers(2))
	if got := cl.Executor(); got != want {
		t.Fatalf("Executor() = %q, want %q", got, want)
	}
	ctx := context.Background()
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]int32, 1024)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = int32(i * 3)
			}
		}
		if err := bcast.BcastSlice(ctx, c, buf, 0); err != nil {
			return err
		}
		for i, v := range buf {
			if v != int32(i*3) {
				return fmt.Errorf("rank %d: buf[%d] = %d, want %d", c.Rank(), i, v, i*3)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecPooledRejectsNegative: a bad worker count must fail cluster
// construction, not a broadcast deep in a run.
func TestExecPooledRejectsNegative(t *testing.T) {
	if _, err := bcast.NewCluster(context.Background(), bcast.Procs(4), bcast.ExecPooled(-1)); err == nil {
		t.Fatal("ExecPooled(-1) accepted")
	}
}

// TestExecDefaultIsGoroutine pins the default substrate's label.
func TestExecDefaultIsGoroutine(t *testing.T) {
	cl, err := bcast.NewCluster(context.Background(), bcast.Procs(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Executor(); got != "goroutine" {
		t.Fatalf("default Executor() = %q, want goroutine", got)
	}
}

// TestCancelPooledRun: the facade's collective-cancellation contract —
// prompt unwind, cause attached, goroutine count back at baseline —
// must hold identically on the pooled substrate.
func TestCancelPooledRun(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cl, err := bcast.NewCluster(context.Background(),
		bcast.Procs(32),
		bcast.ExecPooled(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(40 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = cl.Run(ctx, func(c bcast.Comm) error {
		if c.Rank() == 0 {
			// The root withholds the payload: every other rank parks
			// inside Bcast until cancellation unwinds the world.
			_, err := c.Recv(ctx, make([]byte, 1), bcast.AnySource, 7)
			return err
		}
		return c.Bcast(ctx, make([]byte, 1<<20), 0)
	})
	if err == nil {
		t.Fatal("canceled pooled run returned nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("run error does not wrap context.Canceled: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("pooled cancellation took %v, want prompt unwind", elapsed)
	}
	testutil.WaitGoroutines(t, base)
}
