package bcast_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/bcast"
	"repro/internal/bench"
	"repro/internal/measure"
	"repro/internal/tune"
)

// TestAutoTuneTableRoundTrip drives the full loop the CLI workflow
// promises: auto-tune on the real engine exactly as `bcastbench
// -autotune` does (same bench.AutoTuneEngine entry point), save the
// JSON table, load it back through the public bcast.TuneTable option,
// and check the facade's selection is the table's verdict cell by cell.
func TestAutoTuneTableRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("engine auto-tune sweep in -short mode")
	}
	const np = 4
	sizes := []int{1 << 13, 1 << 14}
	eng := measure.EngineMeasurer{Warmup: 1, Reps: 2, Stat: measure.StatMin}
	table, winners, err := bench.AutoTuneEngine(eng, nil, tune.SweepConfig{
		Procs: []int{np}, Sizes: sizes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rules) == 0 || len(winners) != len(sizes) {
		t.Fatalf("degenerate tuning result: %d rules, %d winners", len(table.Rules), len(winners))
	}
	path := filepath.Join(t.TempDir(), "engine-table.json")
	if err := tune.SaveTable(table, path); err != nil {
		t.Fatal(err)
	}

	cl, err := bcast.NewCluster(context.Background(), bcast.Procs(np), bcast.TuneTable(path))
	if err != nil {
		t.Fatal(err)
	}
	// The facade must resolve every tuned grid point to the winner the
	// engine measured.
	for _, w := range winners {
		got := cl.Decision(w.Bytes)
		if got.Algorithm != w.Decision.Algorithm || got.SegSize != w.Decision.SegSize {
			t.Errorf("size %d: facade decision %+v, table winner %+v", w.Bytes, got, w.Decision)
		}
	}
	// And the table-driven broadcast really runs through the facade.
	ctx := context.Background()
	err = cl.Run(ctx, func(c bcast.Comm) error {
		buf := make([]byte, sizes[0])
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		if err := c.Bcast(ctx, buf, 0); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i) {
				return errors.New("tuned broadcast corrupted payload")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
