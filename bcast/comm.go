package bcast

import (
	"context"
	"fmt"

	"repro/internal/collective"
	"repro/internal/mpi"
	"repro/internal/tune"
)

// mpiComm abbreviates the internal communicator interface in signatures
// that cannot mention it publicly.
type mpiComm = mpi.Comm

// Wildcards for Recv, mirroring MPI_ANY_SOURCE and MPI_ANY_TAG.
const (
	// AnySource matches a message from any rank.
	AnySource = mpi.AnySource
	// AnyTag matches a message with any tag.
	AnyTag = mpi.AnyTag
	// MaxUserTag is the largest tag application code may use; larger
	// values are reserved for the collective algorithms (Send and Recv
	// reject them).
	MaxUserTag = mpi.MaxUserTag
	// Undefined, passed as the color of Split, excludes the caller from
	// every resulting communicator.
	Undefined = mpi.Undefined
)

// Status describes a completed receive.
type Status struct {
	// Source is the rank that sent the message (resolved even for
	// AnySource receives).
	Source int
	// Tag is the message tag (resolved even for AnyTag receives).
	Tag int
	// Count is the number of payload bytes transferred.
	Count int
}

// callDefaults carries a cluster's selection defaults into each Comm.
type callDefaults struct{ o collective.Options }

// merge applies per-call options over the defaults.
func (d callDefaults) merge(opts []CallOption) collective.Options {
	o := d.o
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// CallOption overrides the cluster's selection defaults for a single
// call (or a single Decision query).
type CallOption func(*collective.Options)

// WithAlgorithm pins this call to a registered algorithm, bypassing the
// tuner.
func WithAlgorithm(name string) CallOption {
	return func(o *collective.Options) {
		o.Algorithm = name
		o.Tuner = nil
	}
}

// WithSegSize sets this call's pipeline segment size in bytes.
func WithSegSize(n int) CallOption {
	return func(o *collective.Options) { o.SegSize = n }
}

// WithTuner selects this call's algorithm through fn instead of the
// cluster's default; a nil fn selects the default MPICH3 dispatch.
func WithTuner(fn TunerFunc) CallOption {
	return func(o *collective.Options) {
		o.Algorithm = ""
		if fn == nil {
			o.Tuner = nil
			return
		}
		o.Tuner = tunerAdapter{fn: fn}
	}
}

// Comm is one rank's view of a running cluster. It is valid only inside
// the Run invocation that received it, and only on that rank's
// goroutine. Every communicating method is collective unless stated
// otherwise (all ranks must call it with compatible arguments) and
// takes a context whose cancellation unwinds the whole run (see the
// package documentation).
type Comm struct {
	mc       mpi.Comm
	defaults callDefaults
	// epoch is the Run this Comm (and every Persistent handle built on
	// it) belongs to; nil only for the zero value.
	epoch *runEpoch
}

// epochAlive reports whether this Comm's Run is still in progress —
// the precondition for using it or any Persistent handle built on it.
// The zero-alloc fast path is one atomic load.
func (c Comm) epochAlive() error {
	if c.epoch == nil || !c.epoch.done.Load() {
		return nil
	}
	if cause := c.epoch.cause; cause != nil {
		return fmt.Errorf("%w: its run ended with: %w (build handles inside the current Run; a failed run boots a fresh world whose traffic a stale handle must not match)", ErrStaleHandle, cause)
	}
	return fmt.Errorf("%w: its run already finished (build handles inside the current Run)", ErrStaleHandle)
}

// Rank returns the caller's rank, in [0, Size).
func (c Comm) Rank() int { return c.mc.Rank() }

// Size returns the number of ranks.
func (c Comm) Size() int { return c.mc.Size() }

// NumNodes returns the number of distinct nodes hosting the ranks.
func (c Comm) NumNodes() int { return c.mc.Topology().NumNodes() }

// Placement returns the placement classification of the ranks.
func (c Comm) Placement() string { return c.mc.Topology().Kind() }

// bind attaches ctx to the underlying communicator for one operation.
func (c Comm) bind(ctx context.Context) mpi.Comm {
	return mpi.WithContext(ctx, c.mc)
}

// env is the selection environment of an n-byte collective here.
func (c Comm) env(n int) tune.Env {
	return tune.EnvOf(n, c.mc.Size(), c.mc.Topology())
}

// Decision reports which algorithm an n-byte Bcast with the same
// options would run, without moving a byte. Not collective.
func (c Comm) Decision(n int, opts ...CallOption) Decision {
	return decisionOut(c.defaults.merge(opts).Decide(c.env(n)))
}

// Bcast broadcasts buf from root: on the root the buffer is the
// message, everywhere else it is overwritten with it. The algorithm is
// selected by the cluster options merged with opts — see the package
// documentation for the selection path.
func (c Comm) Bcast(ctx context.Context, buf []byte, root int, opts ...CallOption) error {
	return collective.Broadcast(c.bind(ctx), buf, root, c.defaults.merge(opts))
}

// Barrier synchronizes all ranks.
func (c Comm) Barrier(ctx context.Context) error {
	return collective.Barrier(c.bind(ctx))
}

// Send delivers buf to rank to with the given tag (at most MaxUserTag;
// larger tags belong to the collective streams and are rejected here),
// blocking until the buffer may be reused. Not collective — the peer
// must post a matching Recv.
func (c Comm) Send(ctx context.Context, buf []byte, to, tag int) error {
	if err := mpi.CheckUserTag(tag, false); err != nil {
		return fmt.Errorf("bcast: send: %w", err)
	}
	return c.bind(ctx).Send(buf, to, tag)
}

// Recv blocks until a message matching (from, tag) — wildcards
// AnySource and AnyTag allowed; tags above MaxUserTag rejected —
// arrives and is copied into buf. Not collective.
func (c Comm) Recv(ctx context.Context, buf []byte, from, tag int) (Status, error) {
	if err := mpi.CheckUserTag(tag, true); err != nil {
		return Status{}, fmt.Errorf("bcast: recv: %w", err)
	}
	st, err := c.bind(ctx).Recv(buf, from, tag)
	return Status{Source: st.Source, Tag: st.Tag, Count: st.Count}, err
}

// Split partitions the communicator: ranks passing equal colors form a
// new group, ordered by (key, then current rank). It returns this
// rank's view of its new group, or ok=false when color is Undefined
// (the rank opted out). Split is collective — every rank must call it —
// and the returned Comm is live for the remainder of this Run: its
// collectives run concurrently with (and fully isolated from) those of
// the parent and of sibling groups, which is how independent broadcasts
// on disjoint groups pipeline through one cluster.
func (c Comm) Split(ctx context.Context, color, key int) (Comm, bool, error) {
	sub, err := c.bind(ctx).Split(color, key)
	if err != nil {
		return Comm{}, false, fmt.Errorf("bcast: split: %w", err)
	}
	if sub == nil {
		return Comm{}, false, nil
	}
	return Comm{mc: sub, defaults: c.defaults, epoch: c.epoch}, true, nil
}

// Scatter distributes consecutive chunk-byte pieces of send (significant
// only on the root, length Size*chunk) so rank i receives piece i into
// recv (length chunk).
func (c Comm) Scatter(ctx context.Context, send []byte, chunk int, recv []byte, root int) error {
	return collective.Scatter(c.bind(ctx), send, chunk, recv, root)
}

// Gather collects each rank's chunk-byte send buffer into recv on the
// root (length Size*chunk, significant only there), rank i's
// contribution at offset i*chunk.
func (c Comm) Gather(ctx context.Context, send []byte, chunk int, recv []byte, root int) error {
	return collective.Gather(c.bind(ctx), send, chunk, recv, root)
}

// Allgather is Gather delivered to every rank: recv (length Size*chunk)
// holds rank i's send at offset i*chunk on all ranks.
func (c Comm) Allgather(ctx context.Context, send []byte, chunk int, recv []byte) error {
	return collective.Allgather(c.bind(ctx), send, chunk, recv)
}

// Op is a reduction operator over float64 vectors.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
)

// opIn maps the public operator onto the executable one.
func opIn(op Op) (collective.Op, error) {
	switch op {
	case OpSum:
		return collective.OpSum, nil
	case OpProd:
		return collective.OpProd, nil
	case OpMax:
		return collective.OpMax, nil
	case OpMin:
		return collective.OpMin, nil
	default:
		return 0, fmt.Errorf("bcast: unknown reduction operator %d", int(op))
	}
}

// AllreduceFloat64 combines every rank's in element-wise with op and
// leaves the identical result in out on all ranks. len(in) must equal
// len(out) and match across ranks.
func (c Comm) AllreduceFloat64(ctx context.Context, in, out []float64, op Op) error {
	cop, err := opIn(op)
	if err != nil {
		return err
	}
	return collective.AllreduceFloat64(c.bind(ctx), in, out, cop)
}

// ReduceFloat64 combines every rank's in element-wise with op into out
// on the root (significant only there).
func (c Comm) ReduceFloat64(ctx context.Context, in, out []float64, op Op, root int) error {
	cop, err := opIn(op)
	if err != nil {
		return err
	}
	return collective.ReduceFloat64(c.bind(ctx), in, out, cop, root)
}
