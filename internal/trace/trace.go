// Package trace observes the traffic of MPI-like programs by wrapping
// mpi.Comm. It counts messages and bytes on the send side, classified
// intra- versus inter-node through the communicator's topology and broken
// down by tag — the reserved per-phase tags of internal/core let tests
// separate scatter traffic from ring traffic and cross-validate measured
// counts against the paper's analytic model.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Counts accumulates message and byte totals.
type Counts struct {
	// Messages counts transfers, including zero-byte envelopes.
	Messages int64
	// Bytes is the payload volume.
	Bytes int64
}

func (c *Counts) add(n int) {
	c.Messages++
	c.Bytes += int64(n)
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Messages += other.Messages
	c.Bytes += other.Bytes
}

// Stats is the aggregated view over all wrapped communicators.
type Stats struct {
	// Total counts every sent message.
	Total Counts
	// Intra counts messages between ranks on the same node.
	Intra Counts
	// Inter counts messages crossing nodes.
	Inter Counts
	// ByTag breaks the totals down by message tag (the collective
	// algorithms use one reserved tag per phase).
	ByTag map[int]Counts
	// Recvs counts completed receives (should equal Total.Messages after
	// a clean run).
	Recvs int64
}

// String renders a compact summary. Recvs is printed next to the send
// totals so a clean run's invariant (recvs == msgs) — and any breach of
// it — is visible at a glance.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "msgs=%d recvs=%d bytes=%d intra=%d/%d inter=%d/%d",
		s.Total.Messages, s.Recvs, s.Total.Bytes,
		s.Intra.Messages, s.Intra.Bytes,
		s.Inter.Messages, s.Inter.Bytes)
	tags := make([]int, 0, len(s.ByTag))
	for tag := range s.ByTag {
		tags = append(tags, tag)
	}
	sort.Ints(tags)
	for _, tag := range tags {
		c := s.ByTag[tag]
		fmt.Fprintf(&b, " tag[%#x]=%d/%d", tag, c.Messages, c.Bytes)
	}
	return b.String()
}

// Collector aggregates traffic from any number of wrapped communicators.
// Wrap may be called concurrently (each rank wraps its own Comm); the
// returned Comm must be used by a single rank goroutine, like any Comm.
// Stats must only be called after the ranks have finished.
type Collector struct {
	mu        sync.Mutex
	recorders []*recorder
	// slots holds the per-rank recorders WrapSlot reuses across
	// sequential runs, so a collector observing a long-lived reused
	// world accumulates in place instead of growing one recorder per
	// rank per run.
	slots []*recorder
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Wrap returns a Comm that forwards to c and records its traffic into a
// fresh recorder.
func (col *Collector) Wrap(c mpi.Comm) mpi.Comm {
	r := &recorder{byTag: map[int]*tagCounts{}}
	col.mu.Lock()
	col.recorders = append(col.recorders, r)
	col.mu.Unlock()
	return &tracedComm{inner: c, rec: r, col: col}
}

// WrapSlot is Wrap with a stable identity: calls with the same slot
// (one per rank) share one recorder, which keeps a collector's memory
// constant across any number of sequential runs on a reused cluster.
// The counts accumulate exactly as with Wrap. Like any Comm, the
// returned communicator — and therefore the slot's recorder — must be
// driven by one rank goroutine at a time; distinct slots may be wrapped
// concurrently.
func (col *Collector) WrapSlot(slot int, c mpi.Comm) mpi.Comm {
	col.mu.Lock()
	for len(col.slots) <= slot {
		col.slots = append(col.slots, nil)
	}
	r := col.slots[slot]
	if r == nil {
		r = &recorder{byTag: map[int]*tagCounts{}}
		col.slots[slot] = r
		col.recorders = append(col.recorders, r)
	}
	col.mu.Unlock()
	return &tracedComm{inner: c, rec: r, col: col}
}

// Stats sums every recorder. Call only after the traced program finished.
func (col *Collector) Stats() Stats {
	col.mu.Lock()
	defer col.mu.Unlock()
	s := Stats{ByTag: map[int]Counts{}}
	for _, r := range col.recorders {
		s.Total.Add(r.total)
		s.Intra.Add(r.intra)
		s.Inter.Add(r.inter)
		s.Recvs += r.recvs
		for tag, tc := range r.byTag {
			cur := s.ByTag[tag]
			cur.Add(tc.c)
			s.ByTag[tag] = cur
		}
	}
	return s
}

type tagCounts struct{ c Counts }

// recorder is written by exactly one rank goroutine; aggregation happens
// after the run, so no locking is needed on the hot path.
type recorder struct {
	total Counts
	intra Counts
	inter Counts
	byTag map[int]*tagCounts
	recvs int64
}

func (r *recorder) recordSend(topo *topology.Map, from, to, tag, n int) {
	r.total.add(n)
	if topo.SameNode(from, to) {
		r.intra.add(n)
	} else {
		r.inter.add(n)
	}
	tc := r.byTag[tag]
	if tc == nil {
		tc = &tagCounts{}
		r.byTag[tag] = tc
	}
	tc.c.add(n)
}

// tracedComm forwards every call and records successful sends.
type tracedComm struct {
	inner mpi.Comm
	rec   *recorder
	col   *Collector
}

var _ mpi.Comm = (*tracedComm)(nil)

// NextTagStream implements mpi.TagStreamer by forwarding to the wrapped
// communicator when it supports tag streams — a decorator must not
// swallow the capability, or collectives running through a traced comm
// would stop isolating from each other. (The engine translates reserved
// tags internally, so the tags recorded here remain the stable base
// phase tags regardless of stream.) Without the capability underneath,
// everything stays on stream 0.
func (t *tracedComm) NextTagStream() int {
	if ts, ok := t.inner.(mpi.TagStreamer); ok {
		return ts.NextTagStream()
	}
	return 0
}

// SpanRing implements metrics.SpanSource by forwarding to the wrapped
// communicator — tracing a comm must not hide its span ring from the
// collectives, or enabling traffic tracing would silently disable
// operation spans.
func (t *tracedComm) SpanRing() *metrics.SpanRing {
	return metrics.RingOf(t.inner)
}

func (t *tracedComm) Rank() int               { return t.inner.Rank() }
func (t *tracedComm) Size() int               { return t.inner.Size() }
func (t *tracedComm) Topology() *topology.Map { return t.inner.Topology() }

// WithContext implements mpi.Contexter by rebinding the wrapped
// communicator and keeping this rank's recorder, so per-call context
// binding does not fragment the traffic counts.
func (t *tracedComm) WithContext(ctx context.Context) mpi.Comm {
	return &tracedComm{inner: mpi.WithContext(ctx, t.inner), rec: t.rec, col: t.col}
}

func (t *tracedComm) Send(buf []byte, to, tag int) error {
	err := t.inner.Send(buf, to, tag)
	if err == nil {
		t.rec.recordSend(t.inner.Topology(), t.inner.Rank(), to, tag, len(buf))
	}
	return err
}

func (t *tracedComm) Recv(buf []byte, from, tag int) (mpi.Status, error) {
	st, err := t.inner.Recv(buf, from, tag)
	if err == nil {
		t.rec.recvs++
	}
	return st, err
}

func (t *tracedComm) Sendrecv(sendBuf []byte, to, sendTag int, recvBuf []byte, from, recvTag int) (mpi.Status, error) {
	st, err := t.inner.Sendrecv(sendBuf, to, sendTag, recvBuf, from, recvTag)
	if err == nil {
		t.rec.recordSend(t.inner.Topology(), t.inner.Rank(), to, sendTag, len(sendBuf))
		t.rec.recvs++
	}
	return st, err
}

func (t *tracedComm) Isend(buf []byte, to, tag int) (mpi.Request, error) {
	req, err := t.inner.Isend(buf, to, tag)
	if err == nil {
		// Sends are counted at issue: a started nonblocking send will be
		// delivered (or the world aborts and counts stop mattering).
		t.rec.recordSend(t.inner.Topology(), t.inner.Rank(), to, tag, len(buf))
	}
	return req, err
}

func (t *tracedComm) Irecv(buf []byte, from, tag int) (mpi.Request, error) {
	req, err := t.inner.Irecv(buf, from, tag)
	if err != nil {
		return req, err
	}
	return &tracedRecvReq{Request: req, rec: t.rec}, nil
}

// tracedRecvReq counts the receive when its request first completes.
// Requests belong to a single rank goroutine, so a plain bool suffices.
type tracedRecvReq struct {
	mpi.Request
	rec     *recorder
	counted bool
}

func (r *tracedRecvReq) Wait() (mpi.Status, error) {
	st, err := r.Request.Wait()
	if err == nil && !r.counted {
		r.counted = true
		r.rec.recvs++
	}
	return st, err
}

func (t *tracedComm) Split(color, key int) (mpi.Comm, error) {
	sub, err := t.inner.Split(color, key)
	if err != nil || sub == nil {
		return nil, err
	}
	// Sub-communicator traffic is recorded too (fresh recorder via the
	// same collector). The Split handshake itself is engine-internal and
	// not counted, matching how MPI implementations account traffic.
	return t.col.Wrap(sub), nil
}

func (t *tracedComm) Iprobe(from, tag int) (mpi.Status, bool, error) {
	return t.inner.Iprobe(from, tag)
}
