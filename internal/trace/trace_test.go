package trace

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func TestCollectorCountsSends(t *testing.T) {
	col := NewCollector()
	err := engine.Run(2, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		if tc.Rank() == 0 {
			return tc.Send(make([]byte, 100), 1, 5)
		}
		buf := make([]byte, 100)
		_, err := tc.Recv(buf, 0, 5)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if s.Total.Messages != 1 || s.Total.Bytes != 100 {
		t.Fatalf("total = %+v", s.Total)
	}
	if s.Recvs != 1 {
		t.Fatalf("recvs = %d", s.Recvs)
	}
	if s.ByTag[5].Messages != 1 || s.ByTag[5].Bytes != 100 {
		t.Fatalf("byTag = %+v", s.ByTag)
	}
	if s.Intra.Messages != 1 || s.Inter.Messages != 0 {
		t.Fatalf("single node must be all intra: %+v", s)
	}
}

func TestCollectorClassifiesInterNode(t *testing.T) {
	col := NewCollector()
	topo := topology.Blocked(4, 2)
	err := engine.RunWith(engine.Options{NP: 4, Topology: topo}, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		switch tc.Rank() {
		case 0:
			if err := tc.Send(make([]byte, 10), 1, 1); err != nil { // intra (node 0)
				return err
			}
			return tc.Send(make([]byte, 20), 2, 1) // inter (node 0 -> 1)
		case 1:
			_, err := tc.Recv(make([]byte, 10), 0, 1)
			return err
		case 2:
			_, err := tc.Recv(make([]byte, 20), 0, 1)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if s.Intra.Messages != 1 || s.Intra.Bytes != 10 {
		t.Fatalf("intra = %+v", s.Intra)
	}
	if s.Inter.Messages != 1 || s.Inter.Bytes != 20 {
		t.Fatalf("inter = %+v", s.Inter)
	}
}

func TestCollectorCountsSendrecvOnce(t *testing.T) {
	col := NewCollector()
	err := engine.Run(2, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		peer := 1 - tc.Rank()
		out := make([]byte, 8)
		in := make([]byte, 8)
		_, err := tc.Sendrecv(out, peer, 3, in, peer, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if s.Total.Messages != 2 || s.Total.Bytes != 16 {
		t.Fatalf("sendrecv pair should record 2 messages: %+v", s.Total)
	}
	if s.Recvs != 2 {
		t.Fatalf("recvs = %d", s.Recvs)
	}
}

func TestCollectorTracksSubComms(t *testing.T) {
	col := NewCollector()
	err := engine.Run(4, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		sub, err := tc.Split(tc.Rank()%2, tc.Rank())
		if err != nil {
			return err
		}
		if sub.Rank() == 0 {
			return sub.Send(make([]byte, 7), 1, 9)
		}
		_, err = sub.Recv(make([]byte, 7), 0, 9)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if s.Total.Messages != 2 || s.Total.Bytes != 14 {
		t.Fatalf("sub-comm traffic not recorded: %+v", s.Total)
	}
}

func TestCollectorSplitUndefined(t *testing.T) {
	col := NewCollector()
	err := engine.Run(2, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		color := 0
		if tc.Rank() == 1 {
			color = mpi.Undefined
		}
		sub, err := tc.Split(color, 0)
		if err != nil {
			return err
		}
		if tc.Rank() == 1 && sub != nil {
			t.Error("undefined split must stay nil through the wrapper")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	col := NewCollector()
	err := engine.Run(2, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		if tc.Rank() == 0 {
			return tc.Send(make([]byte, 3), 1, 0x7F02)
		}
		_, err := tc.Recv(make([]byte, 3), 0, 0x7F02)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got := col.Stats().String()
	for _, want := range []string{"msgs=1", "bytes=3", "tag[0x7f02]=1/3"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats string %q missing %q", got, want)
		}
	}
}

func TestFailedSendNotCounted(t *testing.T) {
	col := NewCollector()
	err := engine.Run(2, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		if tc.Rank() == 0 {
			if err := tc.Send(nil, 99, 1); err == nil {
				t.Error("expected rank error")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := col.Stats(); s.Total.Messages != 0 {
		t.Fatalf("failed send was counted: %+v", s.Total)
	}
}

func TestCollectorCountsNonblocking(t *testing.T) {
	col := NewCollector()
	err := engine.Run(2, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		if tc.Rank() == 0 {
			req, err := tc.Isend(make([]byte, 12), 1, 4)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 12)
		req, err := tc.Irecv(buf, 0, 4)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		// Second Wait must not double-count the receive.
		_, err = req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Stats()
	if s.Total.Messages != 1 || s.Total.Bytes != 12 {
		t.Fatalf("isend not counted: %+v", s.Total)
	}
	if s.Recvs != 1 {
		t.Fatalf("irecv recvs = %d want 1", s.Recvs)
	}
}
