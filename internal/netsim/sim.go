package netsim

import (
	"container/heap"
	"fmt"

	"repro/internal/sched"
	"repro/internal/topology"
)

// Result reports a simulated schedule execution.
type Result struct {
	// Finish is each rank's completion time in seconds.
	Finish []float64
	// Makespan is the time the last rank finishes.
	Makespan float64
	// Messages counts simulated transfers; InterMessages those that
	// crossed nodes.
	Messages      int
	InterMessages int
	// NICBusy and MemBusy are total resource occupancy in seconds,
	// summed over nodes (utilization diagnostics).
	NICBusy float64
	MemBusy float64
}

type chanKey struct{ src, dst, tag int }

// simMsg is one in-flight message in a channel queue.
type simMsg struct {
	n     int
	eager bool
	// injected reports whether an eager payload has entered the
	// transport (false while the sender is credit-blocked).
	injected bool
	// ready is when an eager payload is available at the receiver.
	ready float64
	// senderReach is when the sender posted the message (rendezvous
	// start, or the time a credit-blocked eager sender arrived).
	senderReach float64
	sender      int
}

type channel struct {
	msgs []*simMsg
	head int
	// buffered counts eager messages injected but not yet consumed —
	// the occupied credit window.
	buffered int
	// pending is the index of a credit-blocked eager message (-1 if
	// none). At most one can exist: its sender is blocked.
	pending int
}

// Rank phases.
const (
	phasePending = iota // activation event queued
	phaseActive         // waiting for op halves to resolve
	phaseDone
)

type rankState struct {
	pc    int
	t     float64
	phase int
	ver   int64 // invalidates stale heap entries

	hasSend, hasRecv bool
	sendResolved     bool
	sendDone         float64
	recvResolved     bool
	recvDone         float64
}

// Event kinds.
const (
	evActivate = iota
	evConsume
)

type event struct {
	t    float64
	seq  int64
	rank int
	kind int
	ver  int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type sim struct {
	pr    *sched.Program
	topo  *topology.Map
	m     *Model
	ranks []rankState
	chans map[chanKey]*channel

	nicIn  []*resource // per-node injection
	nicOut []*resource // per-node extraction
	mem    []*resource // per-node memory channels
	memBW  []float64   // effective per-node copy bandwidth

	h      eventHeap
	seq    int64
	result Result
}

// Simulate replays the program on the modelled cluster and returns the
// predicted timing. The topology must have exactly pr.P ranks.
func Simulate(pr *sched.Program, topo *topology.Map, m *Model) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if topo.NP() != pr.P {
		return nil, fmt.Errorf("netsim: topology has %d ranks, program %d", topo.NP(), pr.P)
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	s := &sim{
		pr:    pr,
		topo:  topo,
		m:     m,
		ranks: make([]rankState, pr.P),
		chans: map[chanKey]*channel{},
		memBW: make([]float64, topo.NumNodes()),
	}
	for node := 0; node < topo.NumNodes(); node++ {
		s.nicIn = append(s.nicIn, newResource(1, m.NoContention))
		s.nicOut = append(s.nicOut, newResource(1, m.NoContention))
		s.mem = append(s.mem, newResource(m.MemChannels, m.NoContention))
		workingSet := pr.N * len(topo.RanksOnNode(node))
		s.memBW[node] = m.effectiveIntraBW(workingSet)
	}
	for r := 0; r < pr.P; r++ {
		if len(pr.Ranks[r]) == 0 {
			s.ranks[r].phase = phaseDone
			continue
		}
		s.push(0, r, evActivate, s.ranks[r].ver)
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	s.result.Finish = make([]float64, pr.P)
	for r := range s.ranks {
		s.result.Finish[r] = s.ranks[r].t
		if s.ranks[r].t > s.result.Makespan {
			s.result.Makespan = s.ranks[r].t
		}
	}
	for node := 0; node < topo.NumNodes(); node++ {
		s.result.NICBusy += s.nicIn[node].busy + s.nicOut[node].busy
		s.result.MemBusy += s.mem[node].busy
	}
	return &s.result, nil
}

func (s *sim) push(t float64, rank, kind int, ver int64) {
	s.seq++
	heap.Push(&s.h, event{t: t, seq: s.seq, rank: rank, kind: kind, ver: ver})
}

func (s *sim) chanOf(src, dst, tag int) *channel {
	k := chanKey{src, dst, tag}
	ch := s.chans[k]
	if ch == nil {
		ch = &channel{pending: -1}
		s.chans[k] = ch
	}
	return ch
}

func (s *sim) run() error {
	for s.h.Len() > 0 {
		ev := heap.Pop(&s.h).(event)
		st := &s.ranks[ev.rank]
		if ev.ver != st.ver {
			continue // stale
		}
		switch ev.kind {
		case evActivate:
			s.activate(ev.rank)
		case evConsume:
			s.consume(ev.rank)
		}
	}
	for r := range s.ranks {
		if s.ranks[r].phase != phaseDone {
			return fmt.Errorf("netsim: rank %d stalled at op %d of %q (simulation deadlock)",
				r, s.ranks[r].pc, s.pr.Name)
		}
	}
	return nil
}

// activate begins the rank's current op: issue the send half (if any) and
// start waiting on the receive half (if any).
func (s *sim) activate(r int) {
	st := &s.ranks[r]
	op := s.pr.Ranks[r][st.pc]
	st.phase = phaseActive
	st.hasSend = op.Kind == sched.OpSend || op.Kind == sched.OpSendrecv
	st.hasRecv = op.Kind == sched.OpRecv || op.Kind == sched.OpSendrecv
	st.sendResolved, st.recvResolved = false, false

	if st.hasSend {
		s.issueSend(r, op)
	}
	if st.hasRecv {
		s.evaluateRecv(r, op)
	}
	s.tryComplete(r)
}

// issueSend posts the send half of op at the rank's current time.
func (s *sim) issueSend(r int, op sched.Op) {
	st := &s.ranks[r]
	now := st.t
	ch := s.chanOf(r, op.To, op.Tag)
	srcNode := s.topo.NodeOf(r)
	dstNode := s.topo.NodeOf(op.To)
	inter := srcNode != dstNode
	s.result.Messages++
	if inter {
		s.result.InterMessages++
	}

	n := op.SendLen
	if n <= s.m.EagerLimit {
		msg := &simMsg{n: n, eager: true, senderReach: now + s.m.SendOverhead, sender: r}
		ch.msgs = append(ch.msgs, msg)
		if s.m.EagerCredits > 0 && ch.buffered >= s.m.EagerCredits {
			// Credit window exhausted: the sender blocks until the
			// receiver drains a message (flow control). consume()
			// performs the deferred injection.
			ch.pending = len(ch.msgs) - 1
		} else {
			s.injectEager(ch, msg, op.To)
		}
	} else {
		// Rendezvous: register and block until the receiver resolves it.
		ch.msgs = append(ch.msgs, &simMsg{n: n, eager: false, senderReach: now + s.m.SendOverhead, sender: r})
	}
	s.wakeReceiver(op.To, r, op.Tag)
}

// injectEager moves an eager payload into the transport at
// msg.senderReach (or later) and resolves the sender's send half.
func (s *sim) injectEager(ch *channel, msg *simMsg, dst int) {
	srcNode := s.topo.NodeOf(msg.sender)
	dstNode := s.topo.NodeOf(dst)
	var sendDone, ready float64
	if srcNode != dstNode {
		_, injEnd := s.nicIn[srcNode].acquire(msg.senderReach, copyTime(msg.n, s.m.InterBandwidth))
		sendDone = injEnd
		arrival := injEnd + s.m.InterLatency
		_, extEnd := s.nicOut[dstNode].acquire(arrival, copyTime(msg.n, s.m.InterBandwidth))
		ready = extEnd
	} else {
		_, cpEnd := s.mem[srcNode].acquire(msg.senderReach, copyTime(msg.n, s.memBW[srcNode]))
		sendDone = cpEnd
		ready = cpEnd + s.m.IntraLatency
	}
	msg.injected = true
	msg.ready = ready
	ch.buffered++
	ss := &s.ranks[msg.sender]
	ss.sendResolved = true
	ss.sendDone = sendDone
	s.tryComplete(msg.sender)
}

// wakeReceiver re-evaluates dst's receive half if it is currently waiting
// on the (src, tag) channel.
func (s *sim) wakeReceiver(dst, src, tag int) {
	st := &s.ranks[dst]
	if st.phase != phaseActive || !st.hasRecv || st.recvResolved {
		return
	}
	op := s.pr.Ranks[dst][st.pc]
	if op.From != src || op.Tag != tag {
		return
	}
	s.evaluateRecv(dst, op)
}

// evaluateRecv pushes a consume event if the head message of the matching
// channel is available.
func (s *sim) evaluateRecv(r int, op sched.Op) {
	st := &s.ranks[r]
	ch := s.chanOf(op.From, r, op.Tag)
	if ch.head >= len(ch.msgs) {
		return // nothing yet; a future issueSend will wake us
	}
	msg := ch.msgs[ch.head]
	t := st.t
	if msg.eager {
		if !msg.injected {
			return // credit-blocked; injection will re-evaluate
		}
		if msg.ready > t {
			t = msg.ready
		}
	} else if msg.senderReach > t {
		t = msg.senderReach
	}
	st.ver++
	s.push(t, r, evConsume, st.ver)
}

// consume executes the receive half against the head message.
func (s *sim) consume(r int) {
	st := &s.ranks[r]
	if st.phase != phaseActive || !st.hasRecv || st.recvResolved {
		return
	}
	op := s.pr.Ranks[r][st.pc]
	ch := s.chanOf(op.From, r, op.Tag)
	if ch.head >= len(ch.msgs) {
		return
	}
	msg := ch.msgs[ch.head]
	if msg.eager && !msg.injected {
		return // stale event racing a credit block
	}
	ch.head++
	dstNode := s.topo.NodeOf(r)

	if msg.eager {
		// Copy out of the staging buffer (the eager double-copy).
		start := st.t
		if msg.ready > start {
			start = msg.ready
		}
		_, cpEnd := s.mem[dstNode].acquire(start, copyTime(msg.n, s.memBW[dstNode]))
		st.recvResolved = true
		st.recvDone = cpEnd + s.m.RecvOverhead
		ch.buffered--
		// The freed credit admits a blocked sender, no earlier than the
		// moment the buffer slot is actually released.
		if ch.pending >= 0 && (s.m.EagerCredits == 0 || ch.buffered < s.m.EagerCredits) {
			p := ch.msgs[ch.pending]
			if cpEnd > p.senderReach {
				p.senderReach = cpEnd
			}
			ch.pending = -1
			s.injectEager(ch, p, r)
		}
		s.tryComplete(r)
		return
	}

	// Rendezvous: handshake, then a single transfer; resolve the sender.
	sender := msg.sender
	srcNode := s.topo.NodeOf(sender)
	inter := srcNode != dstNode
	lat := s.m.IntraLatency
	if inter {
		lat = s.m.InterLatency
	}
	// Request/acknowledge round trip from when both sides are ready.
	hs := msg.senderReach + lat
	if st.t > hs {
		hs = st.t
	}
	start := hs + lat

	var senderDone, recvDone float64
	if inter {
		_, injEnd := s.nicIn[srcNode].acquire(start, copyTime(msg.n, s.m.InterBandwidth))
		arrival := injEnd + s.m.InterLatency
		_, extEnd := s.nicOut[dstNode].acquire(arrival, copyTime(msg.n, s.m.InterBandwidth))
		senderDone = injEnd
		recvDone = extEnd + s.m.RecvOverhead
	} else {
		_, cpEnd := s.mem[dstNode].acquire(start, copyTime(msg.n, s.memBW[dstNode]))
		senderDone = cpEnd
		recvDone = cpEnd + s.m.RecvOverhead
	}

	st.recvResolved = true
	st.recvDone = recvDone

	ss := &s.ranks[sender]
	ss.sendResolved = true
	ss.sendDone = senderDone

	s.tryComplete(r)
	s.tryComplete(sender)
}

// tryComplete finishes the rank's current op once every half is resolved,
// advancing its clock and scheduling the next activation.
func (s *sim) tryComplete(r int) {
	st := &s.ranks[r]
	if st.phase != phaseActive {
		return
	}
	if st.hasSend && !st.sendResolved {
		return
	}
	if st.hasRecv && !st.recvResolved {
		return
	}
	newT := st.t
	if st.hasSend && st.sendDone > newT {
		newT = st.sendDone
	}
	if st.hasRecv && st.recvDone > newT {
		newT = st.recvDone
	}
	st.t = newT
	st.pc++
	st.ver++
	if st.pc >= len(s.pr.Ranks[r]) {
		st.phase = phaseDone
		return
	}
	st.phase = phasePending
	s.push(st.t, r, evActivate, st.ver)
}

// Replicate concatenates the program with itself k times — the paper's
// back-to-back measurement loop ("repeat the broadcast operation for 100
// iterations"), which lets consecutive broadcasts pipeline through ranks
// that finish their part early.
func Replicate(pr *sched.Program, k int) *sched.Program {
	out := sched.New(fmt.Sprintf("%s x%d", pr.Name, k), pr.P, pr.N, pr.Root)
	for r := 0; r < pr.P; r++ {
		for i := 0; i < k; i++ {
			out.Ranks[r] = append(out.Ranks[r], pr.Ranks[r]...)
		}
	}
	return out
}

// SteadyStateIterTime returns the marginal per-iteration time of the
// program in a back-to-back loop: simulate warm and total iterations and
// divide the extra time by the extra iterations. This mirrors the paper's
// bandwidth metric (time per broadcast in a 100-iteration loop) while
// keeping simulations short.
func SteadyStateIterTime(pr *sched.Program, topo *topology.Map, m *Model, warm, total int) (float64, error) {
	if warm < 1 || total <= warm {
		return 0, fmt.Errorf("netsim: need 1 <= warm < total, got %d, %d", warm, total)
	}
	r1, err := Simulate(Replicate(pr, warm), topo, m)
	if err != nil {
		return 0, err
	}
	r2, err := Simulate(Replicate(pr, total), topo, m)
	if err != nil {
		return 0, err
	}
	return (r2.Makespan - r1.Makespan) / float64(total-warm), nil
}
