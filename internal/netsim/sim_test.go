package netsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/topology"
)

// flatModel returns simple round-number parameters for hand computation.
func flatModel() *Model {
	return &Model{
		Name:           "flat",
		SendOverhead:   1,   // 1 s: easy arithmetic
		RecvOverhead:   2,   //
		IntraLatency:   10,  //
		IntraBandwidth: 100, // bytes/s
		MemChannels:    2,   //
		InterLatency:   50,  //
		InterBandwidth: 10,  // bytes/s
		EagerLimit:     100, //
		CacheBytes:     0,   // disabled
	}
}

func sendRecvProgram(n int) *sched.Program {
	pr := sched.New("pair", 2, n, 0)
	pr.Add(0, sched.Op{Kind: sched.OpSend, To: 1, SendOff: 0, SendLen: n, Tag: 1})
	pr.Add(1, sched.Op{Kind: sched.OpRecv, From: 0, RecvOff: 0, RecvLen: n, Tag: 1})
	return pr
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v want %v", name, got, want)
	}
}

func TestEagerIntraHandComputed(t *testing.T) {
	// n=100 <= eager limit. Sender: copy-in starts at o_send=1, lasts
	// 100/100 = 1 s -> sendDone = 2; ready = 2 + 10 = 12.
	// Receiver: copy-out at max(0, 12) for 1 s -> 13; +o_recv=2 -> 15.
	res, err := Simulate(sendRecvProgram(100), topology.SingleNode(2), flatModel())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "sender finish", res.Finish[0], 2)
	approx(t, "receiver finish", res.Finish[1], 15)
	approx(t, "makespan", res.Makespan, 15)
	if res.Messages != 1 || res.InterMessages != 0 {
		t.Fatalf("counts: %+v", res)
	}
}

func TestRendezvousIntraHandComputed(t *testing.T) {
	// n=200 > eager limit. senderReach = 1. Receiver posts at 0.
	// Handshake: max(1+10, 0) + 10 = 21. Copy 200/100 = 2 s -> 23.
	// senderDone = 23; recvDone = 23 + 2 = 25.
	res, err := Simulate(sendRecvProgram(200), topology.SingleNode(2), flatModel())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "sender finish", res.Finish[0], 23)
	approx(t, "receiver finish", res.Finish[1], 25)
}

func TestEagerInterHandComputed(t *testing.T) {
	// Ranks on different nodes, n=100 eager.
	// Injection: starts 1, lasts 100/10=10 -> sendDone 11.
	// Arrival = 11 + 50 = 61; extraction 10 s -> ready 71.
	// Receiver copy-out 100/100=1 -> 72; +2 -> 74.
	topo, err := topology.Custom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sendRecvProgram(100), topo, flatModel())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "sender finish", res.Finish[0], 11)
	approx(t, "receiver finish", res.Finish[1], 74)
	if res.InterMessages != 1 {
		t.Fatalf("inter messages = %d", res.InterMessages)
	}
}

func TestRendezvousInterHandComputed(t *testing.T) {
	// n=200 rendezvous across nodes. senderReach=1; handshake:
	// max(1+50, 0)+50 = 101. Injection 200/10=20 -> 121 (senderDone).
	// Arrival 121+50=171; extraction 20 -> 191; +o_recv=2 -> 193.
	topo, err := topology.Custom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sendRecvProgram(200), topo, flatModel())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "sender finish", res.Finish[0], 121)
	approx(t, "receiver finish", res.Finish[1], 193)
}

func TestNICInjectionContention(t *testing.T) {
	// Two ranks on node 0 send 100 eager bytes to two ranks on node 1 at
	// the same time: injections serialize on node 0's NIC (10 s each),
	// extractions on node 1's NIC.
	topo, err := topology.Custom([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pr := sched.New("2pairs", 4, 100, 0)
	pr.Add(0, sched.Op{Kind: sched.OpSend, To: 2, SendLen: 100, Tag: 1})
	pr.Add(1, sched.Op{Kind: sched.OpSend, To: 3, SendLen: 100, Tag: 1})
	pr.Add(2, sched.Op{Kind: sched.OpRecv, From: 0, RecvLen: 100, Tag: 1})
	pr.Add(3, sched.Op{Kind: sched.OpRecv, From: 1, RecvLen: 100, Tag: 1})

	m := flatModel()
	res, err := Simulate(pr, topo, m)
	if err != nil {
		t.Fatal(err)
	}
	// First injection 1..11, second 11..21: the slower sender finishes
	// at 21 (serialized), not 11 (parallel).
	slow := math.Max(res.Finish[0], res.Finish[1])
	approx(t, "serialized second injection", slow, 21)

	m.NoContention = true
	res2, err := Simulate(pr, topo, m)
	if err != nil {
		t.Fatal(err)
	}
	slow2 := math.Max(res2.Finish[0], res2.Finish[1])
	approx(t, "parallel injections without contention", slow2, 11)
}

func TestMemChannelContention(t *testing.T) {
	// Four concurrent intra-node eager copies, MemChannels=2: the copies
	// (1 s each) pack two per slot -> senders finish at 2 and 3.
	topo := topology.SingleNode(8)
	pr := sched.New("4pairs", 8, 100, 0)
	for i := 0; i < 4; i++ {
		pr.Add(i, sched.Op{Kind: sched.OpSend, To: 4 + i, SendLen: 100, Tag: 1})
		pr.Add(4+i, sched.Op{Kind: sched.OpRecv, From: i, RecvLen: 100, Tag: 1})
	}
	res, err := Simulate(pr, topo, flatModel())
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 4; i++ {
		if res.Finish[i] > last {
			last = res.Finish[i]
		}
	}
	// Copy-in requests all arrive at t=1: two run 1..2, two run 2..3.
	approx(t, "slowest sender", last, 3)
}

func TestCacheDegradation(t *testing.T) {
	m := flatModel()
	m.CacheBytes = 150 // per-node working set threshold
	m.CacheFactor = 0.5
	// Working set = N * ranks on node = 100*2 = 200 > 150 -> bandwidth
	// halves: copy takes 2 s instead of 1.
	res, err := Simulate(sendRecvProgram(100), topology.SingleNode(2), m)
	if err != nil {
		t.Fatal(err)
	}
	// sender: 1 + 2 = 3; ready 13; recv copy 2 -> 15; +2 -> 17.
	approx(t, "degraded receiver finish", res.Finish[1], 17)
}

func TestSimDetectsStall(t *testing.T) {
	// Both ranks post rendezvous sends first, then receives: neither
	// receiver is ever reached. Structurally valid, dynamically stuck.
	pr := sched.New("head-to-head", 2, 400, 0)
	pr.Add(0, sched.Op{Kind: sched.OpSend, To: 1, SendLen: 200, Tag: 1})
	pr.Add(0, sched.Op{Kind: sched.OpRecv, From: 1, RecvLen: 200, Tag: 1})
	pr.Add(1, sched.Op{Kind: sched.OpSend, To: 0, SendLen: 200, Tag: 1})
	pr.Add(1, sched.Op{Kind: sched.OpRecv, From: 0, RecvLen: 200, Tag: 1})
	_, err := Simulate(pr, topology.SingleNode(2), flatModel())
	if err == nil {
		t.Fatal("expected stall detection")
	}
}

func TestZeroByteMessagesCostLatencyOnly(t *testing.T) {
	res, err := Simulate(sendRecvProgram(0), topology.SingleNode(2), flatModel())
	if err != nil {
		t.Fatal(err)
	}
	// sender: o_send, zero copy -> 1; ready 11; recv copy 0 s -> 11+2=13.
	approx(t, "zero-byte receiver", res.Finish[1], 13)
}

func TestBcastProgramsComplete(t *testing.T) {
	// Every generated broadcast program must run to completion on the
	// simulator across a parameter grid (no stalls, positive makespan).
	m := Hornet()
	for _, p := range []int{2, 3, 8, 10, 17} {
		topo := topology.Blocked(p, 4)
		for _, n := range []int{0, 1, 100, 100000} {
			for _, gen := range []func(int, int, int) *sched.Program{
				core.BcastNativeProgram, core.BcastOptProgram, core.BinomialBcast,
			} {
				pr := gen(p, 0, n)
				res, err := Simulate(pr, topo, m)
				if err != nil {
					t.Fatalf("p=%d n=%d %s: %v", p, n, pr.Name, err)
				}
				if res.Makespan < 0 {
					t.Fatalf("negative makespan")
				}
				if n > 0 && res.Makespan == 0 && p > 1 {
					t.Fatalf("p=%d n=%d %s: zero makespan", p, n, pr.Name)
				}
			}
		}
	}
}

func TestTunedNeverSlowerOnBcast(t *testing.T) {
	// The central performance claim, in simulation: the tuned broadcast's
	// steady-state iteration time is never worse than the native one.
	m := Hornet()
	for _, cfg := range []struct{ p, cores, n int }{
		{16, 24, 1 << 19},
		{16, 24, 1 << 22},
		{64, 24, 1 << 20},
		{129, 24, 12288},
		{129, 24, 1 << 20},
		{9, 24, 524287},
		{10, 4, 4096},
	} {
		topo := topology.Blocked(cfg.p, cfg.cores)
		nat, err := SteadyStateIterTime(core.BcastNativeProgram(cfg.p, 0, cfg.n), topo, m, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SteadyStateIterTime(core.BcastOptProgram(cfg.p, 0, cfg.n), topo, m, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if opt > nat*1.0001 {
			t.Errorf("p=%d n=%d: tuned %.6g s slower than native %.6g s", cfg.p, cfg.n, opt, nat)
		}
	}
}

func TestMakespanMonotoneInSize(t *testing.T) {
	m := Hornet()
	topo := topology.Blocked(16, 8)
	prev := -1.0
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		res, err := Simulate(core.BcastNativeProgram(16, 0, n), topo, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan <= prev {
			t.Fatalf("makespan not increasing at n=%d: %v <= %v", n, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}

func TestRootRotationInvariance(t *testing.T) {
	// On a symmetric (single-node) topology, rotating the root must not
	// change the makespan (the schedule is rotation-symmetric).
	m := Hornet()
	topo := topology.SingleNode(12)
	base, err := Simulate(core.BcastOptProgram(12, 0, 60000), topo, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []int{3, 7, 11} {
		res, err := Simulate(core.BcastOptProgram(12, root, 60000), topo, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan-base.Makespan) > 1e-12*base.Makespan {
			t.Fatalf("root %d: makespan %v != %v", root, res.Makespan, base.Makespan)
		}
	}
}

func TestReplicate(t *testing.T) {
	pr := sendRecvProgram(100)
	r3 := Replicate(pr, 3)
	if len(r3.OpsOf(0)) != 3 || len(r3.OpsOf(1)) != 3 {
		t.Fatalf("replicate op counts wrong")
	}
	if err := r3.Validate(); err != nil {
		t.Fatal(err)
	}
	res1, err := Simulate(pr, topology.SingleNode(2), flatModel())
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Simulate(r3, topology.SingleNode(2), flatModel())
	if err != nil {
		t.Fatal(err)
	}
	if res3.Makespan <= res1.Makespan {
		t.Fatalf("3 iterations not slower than 1: %v vs %v", res3.Makespan, res1.Makespan)
	}
	if res3.Messages != 3*res1.Messages {
		t.Fatalf("message counts: %d vs %d", res3.Messages, res1.Messages)
	}
}

func TestSteadyStateIterTimeValidation(t *testing.T) {
	pr := sendRecvProgram(10)
	if _, err := SteadyStateIterTime(pr, topology.SingleNode(2), flatModel(), 0, 3); err == nil {
		t.Fatal("warm < 1 must fail")
	}
	if _, err := SteadyStateIterTime(pr, topology.SingleNode(2), flatModel(), 3, 3); err == nil {
		t.Fatal("total <= warm must fail")
	}
	dt, err := SteadyStateIterTime(pr, topology.SingleNode(2), flatModel(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 {
		t.Fatalf("iteration time = %v", dt)
	}
}

func TestModelValidation(t *testing.T) {
	bad := flatModel()
	bad.IntraBandwidth = 0
	if _, err := Simulate(sendRecvProgram(1), topology.SingleNode(2), bad); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
	bad2 := flatModel()
	bad2.MemChannels = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero channels must fail")
	}
	bad3 := flatModel()
	bad3.CacheBytes = 100
	bad3.CacheFactor = 2
	if err := bad3.Validate(); err == nil {
		t.Fatal("cache factor > 1 must fail")
	}
	if err := Hornet().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Laki().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologySizeMismatch(t *testing.T) {
	if _, err := Simulate(sendRecvProgram(1), topology.SingleNode(3), flatModel()); err == nil {
		t.Fatal("topology mismatch must fail")
	}
}

func TestPipeliningAdvantageForTunedRoot(t *testing.T) {
	// In a replicated (back-to-back) run the tuned broadcast pipelines
	// better: its root never waits for ring receives. Verify the per-
	// iteration advantage exceeds the single-shot advantage for a small
	// eager-sized message (the Figure 7 mechanism).
	m := Hornet()
	const p, n = 9, 12288
	topo := topology.Blocked(p, 24)
	natOnce, err := Simulate(core.BcastNativeProgram(p, 0, n), topo, m)
	if err != nil {
		t.Fatal(err)
	}
	optOnce, err := Simulate(core.BcastOptProgram(p, 0, n), topo, m)
	if err != nil {
		t.Fatal(err)
	}
	natIter, err := SteadyStateIterTime(core.BcastNativeProgram(p, 0, n), topo, m, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	optIter, err := SteadyStateIterTime(core.BcastOptProgram(p, 0, n), topo, m, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	onceSpeedup := natOnce.Makespan / optOnce.Makespan
	iterSpeedup := natIter / optIter
	if iterSpeedup <= 1 {
		t.Fatalf("no steady-state speedup: %v", iterSpeedup)
	}
	if iterSpeedup < onceSpeedup {
		t.Fatalf("pipelining should amplify the gain: once %.3f, iter %.3f", onceSpeedup, iterSpeedup)
	}
}

func TestEagerCreditsBlockSender(t *testing.T) {
	// Credit window of 1: the second eager send cannot inject until the
	// receiver consumes the first.
	m := flatModel()
	m.EagerCredits = 1
	pr := sched.New("credits", 2, 300, 0)
	pr.Add(0, sched.Op{Kind: sched.OpSend, To: 1, SendLen: 100, Tag: 1})
	pr.Add(0, sched.Op{Kind: sched.OpSend, To: 1, SendLen: 100, Tag: 1})
	pr.Add(1, sched.Op{Kind: sched.OpRecv, From: 0, RecvLen: 100, Tag: 1})
	pr.Add(1, sched.Op{Kind: sched.OpRecv, From: 0, RecvLen: 100, Tag: 1})
	res, err := Simulate(pr, topology.SingleNode(2), m)
	if err != nil {
		t.Fatal(err)
	}
	// First msg: copy-in 1..2, ready 12; receiver copy-out 12..13 frees
	// the credit. Second injection: senderReach raised to 13, copy
	// 13..14 -> sender finishes at 14 (it would be 4 with open credits:
	// copy-in 3..4 after the second send's overhead).
	approx(t, "credit-blocked sender finish", res.Finish[0], 14)

	m.EagerCredits = 0
	res2, err := Simulate(pr, topology.SingleNode(2), m)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "unlimited-credit sender finish", res2.Finish[0], 4)
}

func TestEagerCreditsPreserveOrderAndCompletion(t *testing.T) {
	// A longer pipelined exchange with a tiny window must still complete
	// with all messages delivered.
	m := flatModel()
	m.EagerCredits = 2
	const k = 20
	pr := sched.New("credit-stream", 2, 100, 0)
	for i := 0; i < k; i++ {
		pr.Add(0, sched.Op{Kind: sched.OpSend, To: 1, SendLen: 50, Tag: 1})
		pr.Add(1, sched.Op{Kind: sched.OpRecv, From: 0, RecvLen: 50, Tag: 1})
	}
	res, err := Simulate(pr, topology.SingleNode(2), m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != k {
		t.Fatalf("messages = %d want %d", res.Messages, k)
	}
	// Sender cannot finish before the receiver consumed message k-2.
	if res.Finish[0] <= res.Finish[1]/2 {
		t.Fatalf("sender %v implausibly ahead of receiver %v", res.Finish[0], res.Finish[1])
	}
}

func TestCreditsDampSmallMessagePipelining(t *testing.T) {
	// With one credit the broadcast loop cannot run far ahead: the
	// steady-state time must be at least as large as with open credits.
	m := Hornet()
	pr := core.BcastOptProgram(17, 0, 12288)
	topo := topology.Blocked(17, 24)
	open, err := SteadyStateIterTime(pr, topo, m, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	tight := Hornet()
	tight.EagerCredits = 1
	closed, err := SteadyStateIterTime(pr, topo, tight, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if closed < open {
		t.Fatalf("tight credits faster than open: %v < %v", closed, open)
	}
}

func TestNodeAwareRingRecoversBlockedProfile(t *testing.T) {
	// On a round-robin placement the plain ring crosses nodes on almost
	// every edge; the node-aware reorder (extension) cuts that to one
	// crossing per node and must be significantly faster in simulation.
	const np, n = 24, 1 << 20
	m := Hornet()
	topo := topology.RoundRobin(np, 8) // 3 nodes, scattered ranks
	plain, err := SteadyStateIterTime(core.BcastOptProgram(np, 0, n), topo, m, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := func() (float64, error) {
		pr, err := core.BcastOptNodeAware(topo, 0, n)
		if err != nil {
			return 0, err
		}
		return SteadyStateIterTime(pr, topo, m, 2, 5)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if aware >= plain {
		t.Fatalf("node-aware ring not faster on scattered placement: %.6g vs %.6g", aware, plain)
	}
}

func TestChainVsRingCrossover(t *testing.T) {
	// Sanity for the extension baseline: the pipelined chain completes
	// and is slower than the tuned ring for wide communicators (the ring
	// parallelizes bandwidth, the chain serializes it through every hop).
	m := Hornet()
	const np, n = 24, 1 << 20
	topo := topology.Blocked(np, 24)
	ring, err := SteadyStateIterTime(core.BcastOptProgram(np, 0, n), topo, m, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := SteadyStateIterTime(core.ChainBcast(np, 0, n, 64<<10), topo, m, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if chain <= 0 || ring <= 0 {
		t.Fatal("nonpositive times")
	}
	// With back-to-back pipelining the chain can stream well, but it
	// must not beat the ring by an order of magnitude; mostly this
	// guards that both simulate sanely.
	if chain*100 < ring {
		t.Fatalf("chain implausibly fast: %.6g vs ring %.6g", chain, ring)
	}
}

func TestSimulationIsDeterministic(t *testing.T) {
	// Two runs of the same program must produce bit-identical times —
	// the simulator is a pure function (heap ties broken by sequence).
	m := Hornet()
	topo := topology.Blocked(33, 8)
	pr := core.BcastOptProgram(33, 5, 123457)
	a, err := Simulate(pr, topo, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(pr, topo, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	for r := range a.Finish {
		if a.Finish[r] != b.Finish[r] {
			t.Fatalf("rank %d finish differs: %v vs %v", r, a.Finish[r], b.Finish[r])
		}
	}
	if a.NICBusy != b.NICBusy || a.MemBusy != b.MemBusy {
		t.Fatalf("resource accounting differs")
	}
}

func TestResourceUtilizationAccounting(t *testing.T) {
	// The busy accounting must reflect exactly the transferred volume:
	// one eager inter-node message occupies both NICs for n/BW each.
	topo, err := topology.Custom([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := flatModel()
	res, err := Simulate(sendRecvProgram(100), topo, m)
	if err != nil {
		t.Fatal(err)
	}
	wantNIC := 2 * (100.0 / m.InterBandwidth)
	if math.Abs(res.NICBusy-wantNIC) > 1e-9 {
		t.Fatalf("NIC busy = %v want %v", res.NICBusy, wantNIC)
	}
	// Plus the receiver's copy-out on its node's memory resource.
	wantMem := 100.0 / m.IntraBandwidth
	if math.Abs(res.MemBusy-wantMem) > 1e-9 {
		t.Fatalf("mem busy = %v want %v", res.MemBusy, wantMem)
	}
}
