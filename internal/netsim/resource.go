package netsim

// resource models a server pool with k parallel slots: a request at time
// t for duration d starts at max(t, earliest slot availability) and
// occupies that slot until start+d. With k = 1 it is a FIFO link (a NIC
// direction); with k > 1 it models memory-controller channel parallelism.
// Requests are served in the order they are issued, which the simulator
// keeps aligned with virtual time by executing events in time order.
type resource struct {
	slots []float64 // availability time per slot
	// unlimited short-circuits contention (ablation mode).
	unlimited bool
	// busy accumulates total occupied time for utilization reporting.
	busy float64
}

func newResource(k int, unlimited bool) *resource {
	return &resource{slots: make([]float64, k), unlimited: unlimited}
}

// acquire reserves a slot from time at for duration dur, returning the
// actual start and end times.
func (r *resource) acquire(at, dur float64) (start, end float64) {
	r.busy += dur
	if r.unlimited {
		return at, at + dur
	}
	best := 0
	for i := 1; i < len(r.slots); i++ {
		if r.slots[i] < r.slots[best] {
			best = i
		}
	}
	start = at
	if r.slots[best] > start {
		start = r.slots[best]
	}
	end = start + dur
	r.slots[best] = end
	return start, end
}
