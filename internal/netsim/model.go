// Package netsim predicts the completion time of communication schedules
// on a modelled multi-core cluster. It substitutes for the paper's
// evaluation platforms (Cray XC40 "Hornet", NEC "Laki"), which cannot be
// reproduced directly from Go: the experiments' figures are regenerated
// by replaying the schedules of internal/core against a deterministic
// LogGP-style cost model with explicit contention.
//
// The model charges, per message:
//
//   - fixed per-message CPU overheads at sender and receiver;
//   - intra-node transfers: memory copies through a per-node memory
//     resource with a limited number of parallel channels (concurrent
//     copies beyond that queue up) — eager messages cost two copies
//     (staging in, copy out), rendezvous messages one;
//   - inter-node transfers: serialization through the source node's NIC
//     injection resource, wire latency, and the destination node's NIC
//     extraction resource — concurrent messages through one NIC queue up,
//     which is exactly the "quantity of data transmission [negatively
//     influencing] the network environment" effect the paper argues the
//     tuned ring relieves;
//   - rendezvous handshake: one request/acknowledge latency round trip
//     before the payload moves;
//   - cache capacity: when a node's working set (per-rank buffer times
//     ranks on the node) exceeds the last-level cache, its memory
//     bandwidth degrades — reproducing the bandwidth drop the paper
//     attributes to "limited memory capacity" (Figure 6(a) beyond ~4 MB)
//     and "cache effects" (Figure 6(c) around 3 MB).
//
// Because the simulator replays explicit per-rank schedules with data
// dependencies, pipelining emerges naturally: in the paper's measurement
// loop (100 back-to-back broadcasts) the tuned ring lets the root start
// the next iteration long before the ring wavefront drains, which is the
// mechanism behind the large small-message throughput gains of Figure 7.
package netsim

import "fmt"

// Model holds the cluster cost parameters. All times are in seconds, all
// bandwidths in bytes per second.
type Model struct {
	// Name identifies the calibration (e.g. "hornet").
	Name string

	// SendOverhead and RecvOverhead are fixed per-message CPU costs.
	SendOverhead float64
	RecvOverhead float64

	// IntraLatency is the one-way latency of an intra-node transfer
	// (shared-memory handoff).
	IntraLatency float64
	// IntraBandwidth is the memcpy bandwidth of one copy stream.
	IntraBandwidth float64
	// MemChannels is how many copy streams a node sustains concurrently
	// before they queue (memory-controller parallelism).
	MemChannels int

	// InterLatency is the one-way network latency between nodes.
	InterLatency float64
	// InterBandwidth is the NIC injection/extraction bandwidth.
	InterBandwidth float64

	// EagerLimit is the eager/rendezvous protocol threshold in bytes
	// (larger messages pay the handshake but skip the staging copy).
	EagerLimit int

	// EagerCredits bounds the eager messages buffered but not yet
	// received on one (sender, receiver, tag) channel — finite
	// unexpected-buffer space with credit-based flow control, as real
	// MPI transports implement. A sender that exhausts the window blocks
	// until the receiver drains a message. Zero means unlimited. This is
	// the knob behind Figure 7's shape: pipelined back-to-back broadcasts
	// let the tuned root race ahead only while the ring's step count
	// stays within the credit window, so the small-message speedup
	// collapses between 33 and 65 processes.
	EagerCredits int

	// CacheBytes is the per-node last-level cache capacity; CacheFactor
	// scales IntraBandwidth down once the node's working set exceeds it.
	// CacheBytes <= 0 disables the effect.
	CacheBytes  int
	CacheFactor float64

	// NoContention disables NIC and memory-channel serialization
	// (infinite parallel resources) — the ablation knob showing that the
	// tuned ring's advantage is a contention effect.
	NoContention bool
}

// Validate checks the parameters are usable.
func (m *Model) Validate() error {
	if m.IntraBandwidth <= 0 || m.InterBandwidth <= 0 {
		return fmt.Errorf("netsim: model %q: bandwidths must be positive", m.Name)
	}
	if m.MemChannels <= 0 {
		return fmt.Errorf("netsim: model %q: MemChannels must be positive", m.Name)
	}
	if m.SendOverhead < 0 || m.RecvOverhead < 0 || m.IntraLatency < 0 || m.InterLatency < 0 {
		return fmt.Errorf("netsim: model %q: negative latency/overhead", m.Name)
	}
	if m.CacheBytes > 0 && (m.CacheFactor <= 0 || m.CacheFactor > 1) {
		return fmt.Errorf("netsim: model %q: CacheFactor must be in (0,1]", m.Name)
	}
	if m.EagerCredits < 0 {
		return fmt.Errorf("netsim: model %q: EagerCredits must be >= 0", m.Name)
	}
	return nil
}

const (
	us = 1e-6
	// GiBps converts GiB/s to bytes/s.
	gib = float64(1 << 30)
)

// Hornet returns the Cray XC40 calibration: dual 12-core Haswell
// E5-2680v3 nodes (24 cores, 30 MiB L3) on an Aries dragonfly
// interconnect. Values are chosen so the simulated absolute bandwidths
// land in the paper's measured range (hundreds to ~2700 MiB/s) — the
// reproduction targets curve shapes, not testbed-exact constants.
func Hornet() *Model {
	return &Model{
		Name:           "hornet",
		SendOverhead:   0.30 * us,
		RecvOverhead:   0.30 * us,
		IntraLatency:   0.30 * us,
		IntraBandwidth: 8.5 * gib,
		MemChannels:    6,
		InterLatency:   1.30 * us,
		InterBandwidth: 2.5 * gib, // effective per-NIC share under full-node load
		EagerLimit:     8192,      // Cray MPI's default eager cutoff region
		EagerCredits:   48,        // unexpected-buffer window per channel
		CacheBytes:     60 << 20,  // buffers + staging working set per node
		CacheFactor:    0.60,
	}
}

// Laki returns the NEC cluster calibration: dual 4-core Nehalem X5560
// nodes (8 MiB L3) on switched InfiniBand — slower NICs and fewer memory
// channels than Hornet. The paper reports "the same bandwidth performance
// trend" there; the second calibration exists to demonstrate exactly
// that.
func Laki() *Model {
	return &Model{
		Name:           "laki",
		SendOverhead:   0.60 * us,
		RecvOverhead:   0.60 * us,
		IntraLatency:   0.45 * us,
		IntraBandwidth: 3.2 * gib,
		MemChannels:    3,
		InterLatency:   1.90 * us,
		InterBandwidth: 3.0 * gib,
		EagerLimit:     12288,
		EagerCredits:   32,
		CacheBytes:     8 << 20,
		CacheFactor:    0.55,
	}
}

// effectiveIntraBW returns the node's memory bandwidth given its working
// set (cache degradation applied beyond capacity).
func (m *Model) effectiveIntraBW(workingSet int) float64 {
	if m.CacheBytes > 0 && workingSet > m.CacheBytes {
		return m.IntraBandwidth * m.CacheFactor
	}
	return m.IntraBandwidth
}

// copyTime is the duration of one n-byte memory copy at bandwidth bw.
func copyTime(n int, bw float64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / bw
}
