// Package mpi defines the MPI-like programming interface the reproduction
// is written against.
//
// Go has no viable MPI bindings, so the paper's user-level broadcast
// implementations are ported onto this minimal, faithful subset of the
// MPI point-to-point API: blocking Send/Recv with (source, tag, context)
// matching and wildcards, combined Sendrecv with concurrent halves, and
// communicator Split. Two engines implement the interface:
//
//   - internal/engine: a real in-process runtime (pluggable rank
//     execution — goroutine-per-rank or a pooled cooperative scheduler —
//     eager and rendezvous protocols, real buffer copies) used for
//     correctness tests, user-level wall-clock benchmarks and the
//     examples;
//   - decorators such as internal/trace wrap any Comm to observe traffic.
//
// Buffer semantics follow MPI_BYTE transfers: payloads are byte slices,
// a receive completes with the actual transferred count in Status, and a
// payload longer than the receive buffer is a truncation error.
package mpi

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/topology"
)

// Wildcard and sentinel values, mirroring MPI_ANY_SOURCE, MPI_ANY_TAG and
// MPI_UNDEFINED.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -2
	// Undefined, passed as the color of Split, excludes the caller from
	// every resulting communicator (Split returns a nil Comm).
	Undefined = -32766
)

// MaxUserTag is the largest tag application code may use; larger tags are
// reserved for the collective algorithms (see internal/core).
const MaxUserTag = 0x7EFF

// Status describes a completed receive, like MPI_Status.
type Status struct {
	// Source is the rank that sent the message (resolved even for
	// AnySource receives).
	Source int
	// Tag is the message tag (resolved even for AnyTag receives).
	Tag int
	// Count is the number of payload bytes transferred.
	Count int
}

// Sentinel errors. Engine errors wrap these so callers can use errors.Is.
var (
	// ErrTruncate reports a message longer than the posted receive buffer.
	ErrTruncate = errors.New("message truncated")
	// ErrRank reports a peer rank outside [0, Size).
	ErrRank = errors.New("rank out of range")
	// ErrTag reports an invalid tag (negative non-wildcard, or above
	// MaxUserTag+reserved space).
	ErrTag = errors.New("invalid tag")
	// ErrAborted reports that the world was torn down (another rank
	// failed, or deadlock was detected) while this operation was blocked.
	ErrAborted = errors.New("world aborted")
	// ErrDeadlock reports that the runtime detected a global deadlock:
	// every live rank was blocked in a communication call with no
	// progress possible.
	ErrDeadlock = errors.New("deadlock detected")
)

// Request is a pending nonblocking operation, like MPI_Request.
type Request interface {
	// Wait blocks until the operation completes. For receives, the
	// Status carries the resolved source, tag and byte count; for sends
	// it reports the payload size. Wait is idempotent.
	Wait() (Status, error)
	// Done reports completion without blocking (MPI_Test).
	Done() bool
}

// Comm is a communicator: an isolated message-passing context over a
// fixed group of ranks, like MPI_Comm.
//
// All methods are called from the owning rank's goroutine. Implementations
// must support concurrent use of distinct ranks' Comms, and the two halves
// of Sendrecv must progress independently (a ring of Sendrecvs must not
// deadlock).
type Comm interface {
	// Rank returns the caller's rank within this communicator.
	Rank() int
	// Size returns the number of ranks in this communicator.
	Size() int

	// Send delivers buf to rank `to` with the given tag, blocking until
	// the buffer may be reused (eager copy taken, or rendezvous transfer
	// complete).
	Send(buf []byte, to, tag int) error
	// Recv blocks until a matching message (from, tag; wildcards allowed)
	// arrives and is copied into buf. The returned Status carries the
	// resolved source, tag and byte count.
	Recv(buf []byte, from, tag int) (Status, error)
	// Sendrecv executes a send and a receive concurrently and returns
	// when both complete, like MPI_Sendrecv.
	Sendrecv(sendBuf []byte, to, sendTag int, recvBuf []byte, from, recvTag int) (Status, error)

	// Isend starts a nonblocking send. The buffer must not be modified
	// until the request completes. Messages between one (sender,
	// receiver, tag) triple are non-overtaking in issue order.
	Isend(buf []byte, to, tag int) (Request, error)
	// Irecv posts a nonblocking receive; the buffer must not be read
	// until the request completes.
	Irecv(buf []byte, from, tag int) (Request, error)
	// Iprobe reports, without consuming it, whether a message matching
	// (from, tag; wildcards allowed) has arrived, and its envelope if so
	// (MPI_Iprobe).
	Iprobe(from, tag int) (Status, bool, error)

	// Split partitions the communicator: ranks passing equal colors join
	// a new communicator, ordered by (key, old rank). A color of
	// Undefined yields a nil Comm. Split is collective: every rank of
	// this communicator must call it.
	Split(color, key int) (Comm, error)

	// Topology returns the node placement of this communicator's ranks
	// (indexed by communicator rank).
	Topology() *topology.Map
}

// Contexter is the optional capability of communicators that can bind a
// context.Context to their operations. WithContext returns a view of the
// same communicator whose blocking calls additionally observe ctx:
// cancellation or deadline expiry unblocks them promptly. Because a
// collective left half-finished poisons every participant, a fired
// context tears the whole world down (all ranks' pending operations
// return an error wrapping ErrAborted and the context's cause) rather
// than abandoning one rank's operation in place.
type Contexter interface {
	WithContext(ctx context.Context) Comm
}

// WithContext binds ctx to c when the communicator supports it and
// returns c unchanged otherwise (including for a nil or never-canceled
// context, which needs no binding).
func WithContext(ctx context.Context, c Comm) Comm {
	if ctx == nil || ctx.Done() == nil {
		return c
	}
	if cc, ok := c.(Contexter); ok {
		return cc.WithContext(ctx)
	}
	return c
}

// WaitAll waits for every request, returning the statuses and the first
// error encountered (all requests are waited regardless, like
// MPI_Waitall's error semantics).
func WaitAll(reqs ...Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		st, err := r.Wait()
		sts[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}

// CheckPeer validates a peer rank against a communicator size, allowing
// wildcard when any is true.
func CheckPeer(rank, size int, any bool) error {
	if any && rank == AnySource {
		return nil
	}
	if rank < 0 || rank >= size {
		return fmt.Errorf("%w: %d (size %d)", ErrRank, rank, size)
	}
	return nil
}

// CheckTag validates a tag, allowing the AnyTag wildcard when any is true.
func CheckTag(tag int, any bool) error {
	if any && tag == AnyTag {
		return nil
	}
	if tag < 0 {
		return fmt.Errorf("%w: %d", ErrTag, tag)
	}
	return nil
}
