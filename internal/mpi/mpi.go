// Package mpi defines the MPI-like programming interface the reproduction
// is written against.
//
// Go has no viable MPI bindings, so the paper's user-level broadcast
// implementations are ported onto this minimal, faithful subset of the
// MPI point-to-point API: blocking Send/Recv with (source, tag, context)
// matching and wildcards, combined Sendrecv with concurrent halves, and
// communicator Split. Two engines implement the interface:
//
//   - internal/engine: a real in-process runtime (pluggable rank
//     execution — goroutine-per-rank or a pooled cooperative scheduler —
//     eager and rendezvous protocols, real buffer copies) used for
//     correctness tests, user-level wall-clock benchmarks and the
//     examples;
//   - decorators such as internal/trace wrap any Comm to observe traffic.
//
// Buffer semantics follow MPI_BYTE transfers: payloads are byte slices,
// a receive completes with the actual transferred count in Status, and a
// payload longer than the receive buffer is a truncation error.
package mpi

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/topology"
)

// Wildcard and sentinel values, mirroring MPI_ANY_SOURCE, MPI_ANY_TAG and
// MPI_UNDEFINED.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -2
	// Undefined, passed as the color of Split, excludes the caller from
	// every resulting communicator (Split returns a nil Comm).
	Undefined = -32766
)

// MaxUserTag is the largest tag application code may use; larger tags are
// reserved for the collective algorithms (see internal/core).
const MaxUserTag = 0x7EFF

// The reserved collective tag space. Collective algorithms stamp each
// message with a phase tag from the base block [CollTagBase,
// CollTagBase+TagStreamStride); the engine then namespaces every
// in-flight collective by offsetting those base tags into one of
// NumTagStreams per-operation streams (stream s maps base tag t to
// t + s*TagStreamStride). Streams are what let independent collectives
// overlap on one communicator without their fixed phase tags colliding:
// the Nth collective issued on a communicator matches only messages of
// the Nth collective, never a straggler from the (N-1)th or an eager
// early arrival from the (N+1)th.
const (
	// CollTagBase is the first reserved collective tag (MaxUserTag+1).
	CollTagBase = MaxUserTag + 1
	// TagStreamStride is the width of one tag stream: the number of
	// distinct phase tags a single collective operation may use.
	TagStreamStride = 0x40
	// NumTagStreams is how many concurrent collective streams one
	// communicator context distinguishes before stream ids wrap. Wrapping
	// is safe far earlier than this: a rank has at most one blocking
	// collective in flight per communicator, so two live collectives are
	// never NumTagStreams apart.
	NumTagStreams = 256
	// MaxTag is the largest tag the engine will ever carry: the last tag
	// of the last stream.
	MaxTag = CollTagBase + NumTagStreams*TagStreamStride - 1
)

// StreamTag maps a base collective tag onto stream s. Tags outside the
// base block (user tags, wildcards) are returned unchanged.
func StreamTag(tag, s int) int {
	if tag < CollTagBase || tag >= CollTagBase+TagStreamStride {
		return tag
	}
	return tag + s*TagStreamStride
}

// BaseTag folds a streamed collective tag back to its base-block phase
// tag (the inverse of StreamTag for any stream); tags outside the
// reserved space are returned unchanged. Observability layers use it so
// per-phase traffic breakdowns stay keyed by the stable phase tags.
func BaseTag(tag int) int {
	if tag < CollTagBase || tag > MaxTag {
		return tag
	}
	return CollTagBase + (tag-CollTagBase)%TagStreamStride
}

// TagStreamer is the optional capability of communicators that
// namespace collective operations into per-operation tag streams.
// NextTagStream advances the communicator's stream counter and returns
// the stream id the next collective should run under; every rank of the
// communicator must call it in the same collective order (which the MPI
// collective-call ordering rule already guarantees), so all ranks agree
// on each operation's stream without communicating. Decorator
// communicators forward the call to the communicator they wrap.
type TagStreamer interface {
	NextTagStream() int
}

// AdvanceTagStream moves c to the next collective tag stream when the
// communicator supports streams, and is a no-op otherwise. Collective
// implementations call it once on entry.
func AdvanceTagStream(c Comm) {
	if ts, ok := c.(TagStreamer); ok {
		ts.NextTagStream()
	}
}

// CheckUserTag validates a tag at the application boundary: user code
// may use [0, MaxUserTag] (plus the AnyTag wildcard when any is true);
// everything above is reserved for the collective streams.
func CheckUserTag(tag int, any bool) error {
	if any && tag == AnyTag {
		return nil
	}
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("%w: %d (user tags are 0..%#x; higher tags are reserved for collectives)", ErrTag, tag, MaxUserTag)
	}
	return nil
}

// Status describes a completed receive, like MPI_Status.
type Status struct {
	// Source is the rank that sent the message (resolved even for
	// AnySource receives).
	Source int
	// Tag is the message tag (resolved even for AnyTag receives).
	Tag int
	// Count is the number of payload bytes transferred.
	Count int
}

// Sentinel errors. Engine errors wrap these so callers can use errors.Is.
var (
	// ErrTruncate reports a message longer than the posted receive buffer.
	ErrTruncate = errors.New("message truncated")
	// ErrRank reports a peer rank outside [0, Size).
	ErrRank = errors.New("rank out of range")
	// ErrTag reports an invalid tag (negative non-wildcard, or above
	// MaxUserTag+reserved space).
	ErrTag = errors.New("invalid tag")
	// ErrAborted reports that the world was torn down (another rank
	// failed, or deadlock was detected) while this operation was blocked.
	ErrAborted = errors.New("world aborted")
	// ErrDeadlock reports that the runtime detected a global deadlock:
	// every live rank was blocked in a communication call with no
	// progress possible.
	ErrDeadlock = errors.New("deadlock detected")
)

// Request is a pending nonblocking operation, like MPI_Request.
type Request interface {
	// Wait blocks until the operation completes. For receives, the
	// Status carries the resolved source, tag and byte count; for sends
	// it reports the payload size. Wait is idempotent.
	Wait() (Status, error)
	// Done reports completion without blocking (MPI_Test).
	Done() bool
}

// Comm is a communicator: an isolated message-passing context over a
// fixed group of ranks, like MPI_Comm.
//
// All methods are called from the owning rank's goroutine. Implementations
// must support concurrent use of distinct ranks' Comms, and the two halves
// of Sendrecv must progress independently (a ring of Sendrecvs must not
// deadlock).
type Comm interface {
	// Rank returns the caller's rank within this communicator.
	Rank() int
	// Size returns the number of ranks in this communicator.
	Size() int

	// Send delivers buf to rank `to` with the given tag, blocking until
	// the buffer may be reused (eager copy taken, or rendezvous transfer
	// complete).
	Send(buf []byte, to, tag int) error
	// Recv blocks until a matching message (from, tag; wildcards allowed)
	// arrives and is copied into buf. The returned Status carries the
	// resolved source, tag and byte count.
	Recv(buf []byte, from, tag int) (Status, error)
	// Sendrecv executes a send and a receive concurrently and returns
	// when both complete, like MPI_Sendrecv.
	Sendrecv(sendBuf []byte, to, sendTag int, recvBuf []byte, from, recvTag int) (Status, error)

	// Isend starts a nonblocking send. The buffer must not be modified
	// until the request completes. Messages between one (sender,
	// receiver, tag) triple are non-overtaking in issue order.
	Isend(buf []byte, to, tag int) (Request, error)
	// Irecv posts a nonblocking receive; the buffer must not be read
	// until the request completes.
	Irecv(buf []byte, from, tag int) (Request, error)
	// Iprobe reports, without consuming it, whether a message matching
	// (from, tag; wildcards allowed) has arrived, and its envelope if so
	// (MPI_Iprobe).
	Iprobe(from, tag int) (Status, bool, error)

	// Split partitions the communicator: ranks passing equal colors join
	// a new communicator, ordered by (key, old rank). A color of
	// Undefined yields a nil Comm. Split is collective: every rank of
	// this communicator must call it.
	Split(color, key int) (Comm, error)

	// Topology returns the node placement of this communicator's ranks
	// (indexed by communicator rank).
	Topology() *topology.Map
}

// Contexter is the optional capability of communicators that can bind a
// context.Context to their operations. WithContext returns a view of the
// same communicator whose blocking calls additionally observe ctx:
// cancellation or deadline expiry unblocks them promptly. Because a
// collective left half-finished poisons every participant, a fired
// context tears the whole world down (all ranks' pending operations
// return an error wrapping ErrAborted and the context's cause) rather
// than abandoning one rank's operation in place.
type Contexter interface {
	WithContext(ctx context.Context) Comm
}

// WithContext binds ctx to c when the communicator supports it and
// returns c unchanged otherwise (including for a nil or never-canceled
// context, which needs no binding).
func WithContext(ctx context.Context, c Comm) Comm {
	if ctx == nil || ctx.Done() == nil {
		return c
	}
	if cc, ok := c.(Contexter); ok {
		return cc.WithContext(ctx)
	}
	return c
}

// WaitAll waits for every request, returning the statuses and the first
// error encountered (all requests are waited regardless, like
// MPI_Waitall's error semantics).
func WaitAll(reqs ...Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		st, err := r.Wait()
		sts[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}

// CheckPeer validates a peer rank against a communicator size, allowing
// wildcard when any is true.
func CheckPeer(rank, size int, any bool) error {
	if any && rank == AnySource {
		return nil
	}
	if rank < 0 || rank >= size {
		return fmt.Errorf("%w: %d (size %d)", ErrRank, rank, size)
	}
	return nil
}

// CheckTag validates a tag, allowing the AnyTag wildcard when any is
// true. The engine carries tags up to MaxTag: the user range plus the
// reserved collective base block (which stream translation then offsets
// within [CollTagBase, MaxTag]).
func CheckTag(tag int, any bool) error {
	if any && tag == AnyTag {
		return nil
	}
	if tag < 0 || tag > MaxTag {
		return fmt.Errorf("%w: %d (valid tags are 0..%#x)", ErrTag, tag, MaxTag)
	}
	return nil
}
