package mpi

import (
	"errors"
	"testing"
)

func TestCheckPeer(t *testing.T) {
	if err := CheckPeer(0, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckPeer(3, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckPeer(4, 4, false); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank, got %v", err)
	}
	if err := CheckPeer(-1, 4, false); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank for AnySource without wildcard, got %v", err)
	}
	if err := CheckPeer(AnySource, 4, true); err != nil {
		t.Fatalf("wildcard allowed: %v", err)
	}
	if err := CheckPeer(-7, 4, true); !errors.Is(err, ErrRank) {
		t.Fatalf("arbitrary negative is not a wildcard: %v", err)
	}
}

func TestCheckTag(t *testing.T) {
	if err := CheckTag(0, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckTag(12345, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckTag(-1, false); !errors.Is(err, ErrTag) {
		t.Fatalf("want ErrTag, got %v", err)
	}
	if err := CheckTag(AnyTag, true); err != nil {
		t.Fatalf("wildcard allowed: %v", err)
	}
	if err := CheckTag(AnyTag, false); !errors.Is(err, ErrTag) {
		t.Fatalf("AnyTag without wildcard: %v", err)
	}
}

func TestSentinelsDistinct(t *testing.T) {
	if AnySource == AnyTag || AnySource == Undefined || AnyTag == Undefined {
		t.Fatal("sentinel values must be distinct")
	}
	if AnySource >= 0 || AnyTag >= 0 || Undefined >= 0 {
		t.Fatal("sentinels must be negative (outside rank/tag space)")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrTruncate, ErrRank, ErrTag, ErrAborted, ErrDeadlock}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("errors %v and %v alias", a, b)
			}
		}
	}
}
