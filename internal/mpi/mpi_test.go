package mpi

import (
	"errors"
	"testing"
)

func TestCheckPeer(t *testing.T) {
	if err := CheckPeer(0, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckPeer(3, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckPeer(4, 4, false); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank, got %v", err)
	}
	if err := CheckPeer(-1, 4, false); !errors.Is(err, ErrRank) {
		t.Fatalf("want ErrRank for AnySource without wildcard, got %v", err)
	}
	if err := CheckPeer(AnySource, 4, true); err != nil {
		t.Fatalf("wildcard allowed: %v", err)
	}
	if err := CheckPeer(-7, 4, true); !errors.Is(err, ErrRank) {
		t.Fatalf("arbitrary negative is not a wildcard: %v", err)
	}
}

func TestCheckTag(t *testing.T) {
	if err := CheckTag(0, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckTag(12345, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckTag(-1, false); !errors.Is(err, ErrTag) {
		t.Fatalf("want ErrTag, got %v", err)
	}
	if err := CheckTag(AnyTag, true); err != nil {
		t.Fatalf("wildcard allowed: %v", err)
	}
	if err := CheckTag(AnyTag, false); !errors.Is(err, ErrTag) {
		t.Fatalf("AnyTag without wildcard: %v", err)
	}
}

func TestCheckTagUpperBound(t *testing.T) {
	if err := CheckTag(MaxTag, false); err != nil {
		t.Fatalf("MaxTag must be valid: %v", err)
	}
	if err := CheckTag(MaxTag+1, false); !errors.Is(err, ErrTag) {
		t.Fatalf("want ErrTag above MaxTag, got %v", err)
	}
}

func TestCheckUserTag(t *testing.T) {
	if err := CheckUserTag(0, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckUserTag(MaxUserTag, false); err != nil {
		t.Fatal(err)
	}
	if err := CheckUserTag(CollTagBase, false); !errors.Is(err, ErrTag) {
		t.Fatalf("reserved tags must be rejected at the user boundary, got %v", err)
	}
	if err := CheckUserTag(-3, false); !errors.Is(err, ErrTag) {
		t.Fatalf("want ErrTag, got %v", err)
	}
	if err := CheckUserTag(AnyTag, true); err != nil {
		t.Fatalf("wildcard allowed: %v", err)
	}
	if err := CheckUserTag(AnyTag, false); !errors.Is(err, ErrTag) {
		t.Fatalf("AnyTag without wildcard: %v", err)
	}
}

func TestStreamAndBaseTag(t *testing.T) {
	// Base-block tags move by whole strides; everything else passes
	// through both directions.
	base := CollTagBase + 0x0B
	for _, s := range []int{0, 1, 7, NumTagStreams - 1} {
		st := StreamTag(base, s)
		if want := base + s*TagStreamStride; st != want {
			t.Fatalf("StreamTag(%#x, %d) = %#x, want %#x", base, s, st, want)
		}
		if st > MaxTag {
			t.Fatalf("streamed tag %#x exceeds MaxTag %#x", st, MaxTag)
		}
		if got := BaseTag(st); got != base {
			t.Fatalf("BaseTag(StreamTag(%#x, %d)) = %#x", base, s, got)
		}
	}
	for _, tag := range []int{0, 5, MaxUserTag, AnyTag, MaxTag + 1} {
		if got := StreamTag(tag, 3); got != tag {
			t.Fatalf("StreamTag(%d) must pass through, got %d", tag, got)
		}
		if got := BaseTag(tag); got != tag {
			t.Fatalf("BaseTag(%d) must pass through, got %d", tag, got)
		}
	}
	// Two distinct streams of one phase tag never collide, and distinct
	// phase tags inside one stream never collide either.
	if StreamTag(base, 1) == StreamTag(base, 2) {
		t.Fatal("streams must not collide")
	}
	if StreamTag(CollTagBase+1, 1) == StreamTag(CollTagBase+2, 1) {
		t.Fatal("phase tags within a stream must stay distinct")
	}
}

func TestSentinelsDistinct(t *testing.T) {
	if AnySource == AnyTag || AnySource == Undefined || AnyTag == Undefined {
		t.Fatal("sentinel values must be distinct")
	}
	if AnySource >= 0 || AnyTag >= 0 || Undefined >= 0 {
		t.Fatal("sentinels must be negative (outside rank/tag space)")
	}
}

func TestErrorsAreDistinct(t *testing.T) {
	errs := []error{ErrTruncate, ErrRank, ErrTag, ErrAborted, ErrDeadlock}
	for i, a := range errs {
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("errors %v and %v alias", a, b)
			}
		}
	}
}
