package collective

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
)

// Span op names. These are the interned constants every emission site
// passes to SpanRing.Record, so recording never builds a string. The
// broadcast op carries the registry algorithm name alongside; the
// fixed-algorithm collectives leave it empty.
const (
	opBcast     = "bcast"
	opScatter   = "scatter"
	opGather    = "gather"
	opAllgather = "allgather"
	opAlltoall  = "alltoall"
	opBarrier   = "barrier"
	opReduce    = "reduce"
	opAllreduce = "allreduce"
)

// spanStart opens the span bracket for a collective entry: it extracts
// c's ring through the metrics.SpanSource capability and reads the
// clock only when spans are actually enabled. Sites close the bracket
// with ring.Record on the success path (failed operations abort the
// world — the AbortedRuns counter covers them; a half-run span would
// only pollute the timeline). The whole disabled-spans cost is one
// interface assertion and a nil check.
func spanStart(c mpi.Comm) (*metrics.SpanRing, time.Time) {
	ring := metrics.RingOf(c)
	if ring == nil {
		return nil, time.Time{}
	}
	return ring, time.Now()
}
