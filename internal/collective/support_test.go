package collective

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/mpi"
)

func TestBarrierCompletes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		err := engine.Run(p, func(c mpi.Comm) error {
			for i := 0; i < 5; i++ {
				if err := Barrier(c); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Every rank increments before the barrier; after it, all must see
	// the full count (the dissemination pattern creates a happens-before
	// chain from every rank to every other).
	const p = 9
	var before atomic.Int64
	err := engine.Run(p, func(c mpi.Comm) error {
		before.Add(1)
		if err := Barrier(c); err != nil {
			return err
		}
		if got := before.Load(); got != p {
			return fmt.Errorf("rank %d saw %d increments after barrier", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 9, 16} {
		for _, root := range []int{0, p - 1} {
			for _, chunk := range []int{0, 1, 7, 256} {
				err := engine.Run(p, func(c mpi.Comm) error {
					var src []byte
					if c.Rank() == root {
						src = pattern(p * chunk)
					}
					mine := make([]byte, chunk)
					if err := Scatter(c, src, chunk, mine, root); err != nil {
						return err
					}
					want := pattern(p * chunk)[c.Rank()*chunk : (c.Rank()+1)*chunk]
					if !bytes.Equal(mine, want) {
						return fmt.Errorf("rank %d scatter mismatch", c.Rank())
					}
					// Transform and gather back.
					for i := range mine {
						mine[i] ^= 0xFF
					}
					var dst []byte
					if c.Rank() == root {
						dst = make([]byte, p*chunk)
					}
					if err := Gather(c, mine, chunk, dst, root); err != nil {
						return err
					}
					if c.Rank() == root {
						wantAll := pattern(p * chunk)
						for i := range wantAll {
							wantAll[i] ^= 0xFF
						}
						if !bytes.Equal(dst, wantAll) {
							return fmt.Errorf("gather mismatch at %d", firstDiff(dst, wantAll))
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("p=%d root=%d chunk=%d: %v", p, root, chunk, err)
				}
			}
		}
	}
}

func TestScatterValidation(t *testing.T) {
	err := engine.Run(2, func(c mpi.Comm) error {
		if err := Scatter(c, nil, -1, nil, 0); err == nil {
			return errors.New("negative chunk must fail")
		}
		if err := Scatter(c, nil, 4, make([]byte, 2), 0); err == nil {
			return errors.New("short recv buffer must fail")
		}
		if c.Rank() == 0 {
			if err := Scatter(c, make([]byte, 4), 4, make([]byte, 4), 0); err == nil {
				return errors.New("short send buffer must fail on root")
			}
		}
		return nil
	})
	// Ranks disagree on whether the collective started; the engine's
	// leftover check may fire. Only assert the validation errors above
	// surfaced (err == nil means each rank returned nil).
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 12} {
		for _, chunk := range []int{0, 1, 9, 128} {
			err := engine.Run(p, func(c mpi.Comm) error {
				mine := bytes.Repeat([]byte{byte(c.Rank() + 1)}, chunk)
				all := make([]byte, p*chunk)
				if err := Allgather(c, mine, chunk, all); err != nil {
					return err
				}
				for r := 0; r < p; r++ {
					for i := 0; i < chunk; i++ {
						if all[r*chunk+i] != byte(r+1) {
							return fmt.Errorf("rank %d: allgather slot %d corrupt", c.Rank(), r)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d chunk=%d: %v", p, chunk, err)
			}
		}
	}
}

func TestReduceFloat64Sum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for _, root := range []int{0, p - 1} {
			err := engine.Run(p, func(c mpi.Comm) error {
				in := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
				var out []float64
				if c.Rank() == root {
					out = make([]float64, 3)
				}
				if err := ReduceFloat64(c, in, out, OpSum, root); err != nil {
					return err
				}
				if c.Rank() == root {
					wantSum := float64(p*(p-1)) / 2
					if out[0] != wantSum || out[1] != float64(p) || out[2] != -wantSum {
						return fmt.Errorf("reduce sum = %v", out)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceFloat64MaxMinProd(t *testing.T) {
	const p = 7
	err := engine.Run(p, func(c mpi.Comm) error {
		r := float64(c.Rank())
		out := make([]float64, 1)
		if err := AllreduceFloat64(c, []float64{r}, out, OpMax); err != nil {
			return err
		}
		if out[0] != float64(p-1) {
			return fmt.Errorf("max = %v", out[0])
		}
		if err := AllreduceFloat64(c, []float64{r}, out, OpMin); err != nil {
			return err
		}
		if out[0] != 0 {
			return fmt.Errorf("min = %v", out[0])
		}
		if err := AllreduceFloat64(c, []float64{r + 1}, out, OpProd); err != nil {
			return err
		}
		want := 1.0
		for i := 1; i <= p; i++ {
			want *= float64(i)
		}
		if math.Abs(out[0]-want) > 1e-9 {
			return fmt.Errorf("prod = %v want %v", out[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	for _, p := range []int{1, 2, 4, 9} {
		err := engine.Run(p, func(c mpi.Comm) error {
			in := []float64{1}
			out := make([]float64, 1)
			if err := AllreduceFloat64(c, in, out, OpSum); err != nil {
				return err
			}
			if out[0] != float64(p) {
				return fmt.Errorf("rank %d: allreduce sum = %v want %d", c.Rank(), out[0], p)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestReduceValidation(t *testing.T) {
	err := engine.Run(2, func(c mpi.Comm) error {
		if err := ReduceFloat64(c, []float64{1}, nil, OpSum, 9); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("bad root: got %v", err)
		}
		if c.Rank() == 0 {
			if err := ReduceFloat64(c, []float64{1, 2}, make([]float64, 1), OpSum, 0); err == nil {
				return errors.New("short out must fail on root")
			}
		}
		if err := AllreduceFloat64(c, []float64{1, 2}, make([]float64, 1), OpSum); err == nil {
			return errors.New("short out must fail in allreduce")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpSum.String() != "sum" || OpProd.String() != "prod" || OpMax.String() != "max" || OpMin.String() != "min" {
		t.Fatal("op names wrong")
	}
	if Op(42).String() != "Op(42)" {
		t.Fatal("unknown op name wrong")
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 9, 13} {
		for _, chunk := range []int{0, 1, 5, 64} {
			err := engine.Run(p, func(c mpi.Comm) error {
				// Rank i's chunk for rank j is filled with i*16+j.
				send := make([]byte, p*chunk)
				for j := 0; j < p; j++ {
					for b := 0; b < chunk; b++ {
						send[j*chunk+b] = byte(c.Rank()*16 + j)
					}
				}
				recv := make([]byte, p*chunk)
				if err := Alltoall(c, send, chunk, recv); err != nil {
					return err
				}
				for j := 0; j < p; j++ {
					for b := 0; b < chunk; b++ {
						if recv[j*chunk+b] != byte(j*16+c.Rank()) {
							return fmt.Errorf("rank %d slot %d byte %d = %d want %d",
								c.Rank(), j, b, recv[j*chunk+b], byte(j*16+c.Rank()))
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d chunk=%d: %v", p, chunk, err)
			}
		}
	}
}

func TestAlltoallValidation(t *testing.T) {
	err := engine.Run(2, func(c mpi.Comm) error {
		if err := Alltoall(c, nil, -1, nil); err == nil {
			return errors.New("negative chunk must fail")
		}
		if err := Alltoall(c, make([]byte, 2), 4, make([]byte, 8)); err == nil {
			return errors.New("short send buffer must fail")
		}
		if err := Alltoall(c, make([]byte, 8), 4, make([]byte, 2)); err == nil {
			return errors.New("short recv buffer must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
