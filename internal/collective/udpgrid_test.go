package collective

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/tune"
)

// runDecisionWired runs one registry broadcast on a world bound to the
// given transport and verifies every rank's buffer inside the run.
func runDecisionWired(t *testing.T, opts engine.Options, d tune.Decision, root, n int) {
	t.Helper()
	want := pattern(n)
	err := engine.RunWith(opts, func(c mpi.Comm) error {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(0xA0 + c.Rank())
		}
		if c.Rank() == root {
			copy(buf, want)
		}
		if err := RunDecision(c, buf, root, d); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: buffer mismatch (first diff at %d)", c.Rank(), firstDiff(buf, want))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s exec=%v n=%d: %v", d.Algorithm, opts.Executor, n, err)
	}
}

// TestUDPTransportRegistryGrid is the transport acceptance grid: every
// registry algorithm at np=8 on a force-wired loopback UDP transport —
// all traffic really framed into datagrams, acked, reassembled — on
// both executors, at an eager and a rendezvous message size. Buffers
// must match the in-process result exactly (same pattern oracle the
// chan-transport grids assert against).
func TestUDPTransportRegistryGrid(t *testing.T) {
	const (
		p     = 8
		seg   = 512
		eager = 2 << 10 // EagerLimit: n=seg+1 eager, n=32KiB rendezvous
	)
	topo := topology.Blocked(p, 4)
	root := p / 2
	for _, r := range Algorithms() {
		for _, execPolicy := range []engine.ExecPolicy{engine.Goroutine, engine.Pooled} {
			for _, n := range []int{seg + 1, 32 << 10} {
				e := tune.EnvOf(n, p, topo)
				if !r.Caps.Match(e) {
					continue
				}
				d := tune.Decision{Algorithm: r.Name}
				if r.Caps.Segmented {
					d.SegSize = seg
				}
				tr, err := transport.SelfUDP(p)
				if err != nil {
					t.Fatal(err)
				}
				opts := engine.Options{
					NP: p, Topology: topo, EagerLimit: eager,
					Timeout: 60 * time.Second, Transport: tr, Executor: execPolicy,
				}
				if execPolicy == engine.Pooled {
					opts.MaxWorkers = 2
				}
				runDecisionWired(t, opts, d, root, n)
				tr.Close()
			}
		}
	}
}

// TestUDPTransportFaultGrid proves the acceptance criterion for the
// fault-injection satellite at the collective level: native, opt and
// opt-seg broadcasts over a loopback UDP transport whose socket drops
// 5% of datagrams (plus duplication and reordering) must still produce
// byte-identical buffers, with the recovery visible as retransmits in
// the metrics snapshot.
func TestUDPTransportFaultGrid(t *testing.T) {
	const (
		p   = 8
		n   = 24 << 10
		seg = 4096
	)
	topo := topology.Blocked(p, 4)
	m := metrics.New(p, 0)
	for _, algo := range []string{tune.RingNative, tune.RingOpt, tune.RingOptSeg} {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		faulty := transport.NewFaulty(conn, transport.FaultConfig{Drop: 0.05, Dup: 0.02, Reorder: 0.02})
		tr, err := transport.NewUDP(transport.UDPConfig{
			NP: p, Conn: faulty, ForceWire: true, RetransmitEvery: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		d := tune.Decision{Algorithm: algo}
		if algo == tune.RingOptSeg {
			d.SegSize = seg
		}
		runDecisionWired(t, engine.Options{
			NP: p, Topology: topo, EagerLimit: 2 << 10,
			Timeout: 120 * time.Second, Transport: tr, Metrics: m,
		}, d, 0, n)
		tr.Close()
	}
	s := m.Snapshot()
	if s.WireRetransmits == 0 {
		t.Error("5% datagram loss must surface as retransmits in the snapshot")
	}
	if s.WireDatagramsSent == 0 || s.WireDatagramsRecv == 0 {
		t.Errorf("wire counters dark under the fault grid: %+v", s)
	}
}
