package collective

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// pattern fills deterministic, offset-dependent bytes so any misplaced
// chunk is detected.
func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + 7)
	}
	return b
}

type bcastFn func(mpi.Comm, []byte, int) error

// runBcast executes algo on a fresh world and checks every rank ends with
// the full pattern.
func runBcast(t *testing.T, name string, algo bcastFn, opts engine.Options, root, n int) {
	t.Helper()
	want := pattern(n)
	if opts.Timeout == 0 {
		opts.Timeout = 60 * time.Second
	}
	err := engine.RunWith(opts, func(c mpi.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == root {
			copy(buf, want)
		}
		if err := algo(c, buf, root); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: buffer mismatch (first diff at %d)", c.Rank(), firstDiff(buf, want))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s p=%d root=%d n=%d: %v", name, opts.NP, root, n, err)
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// algorithms lists every broadcast implementation with its constraints.
var algorithms = []struct {
	name     string
	fn       bcastFn
	pow2Only bool
}{
	{"binomial", BcastBinomial, false},
	{"scatter-ring-native", BcastScatterRingAllgather, false},
	{"scatter-ring-opt", BcastScatterRingAllgatherOpt, false},
	{"scatter-rdb", BcastScatterRdbAllgather, true},
	{"dispatch-native", Bcast, false},
	{"dispatch-opt", BcastOpt, false},
	{"smp-native", BcastSMP, false},
	{"smp-opt", BcastSMPOpt, false},
}

func TestBcastCorrectnessGrid(t *testing.T) {
	for _, alg := range algorithms {
		for _, p := range []int{1, 2, 3, 4, 5, 8, 9, 10, 16, 17} {
			if alg.pow2Only && !core.IsPow2(p) {
				continue
			}
			for _, root := range []int{0, p / 2, p - 1} {
				if root < 0 {
					continue
				}
				for _, n := range []int{0, 1, p - 1, p, 10*p + 3, 1 << 12} {
					if n < 0 {
						continue
					}
					runBcast(t, alg.name, alg.fn, engine.Options{NP: p}, root, n)
				}
			}
		}
	}
}

func TestBcastRendezvousOnly(t *testing.T) {
	// All transports rendezvous: exercises blocked senders inside the
	// ring. Smaller grid, both ring variants.
	for _, alg := range algorithms[:3] {
		for _, p := range []int{2, 5, 8, 10} {
			opts := engine.Options{NP: p, EagerLimit: -1}
			runBcast(t, alg.name+"/rdv", alg.fn, opts, 0, 64*p+3)
		}
	}
}

func TestBcastTinyEagerLimit(t *testing.T) {
	// Eager limit of 16 bytes mixes the protocols within one broadcast
	// (short tail chunks eager, full chunks rendezvous).
	for _, alg := range algorithms[:3] {
		for _, p := range []int{4, 9, 12} {
			opts := engine.Options{NP: p, EagerLimit: 16}
			runBcast(t, alg.name+"/mixed", alg.fn, opts, 1%p, 24*p+5)
		}
	}
}

func TestBcastOnBlockedTopology(t *testing.T) {
	// Multi-node placement: all algorithms must stay correct regardless
	// of topology (only performance depends on it).
	topo := topology.Blocked(12, 4)
	for _, alg := range algorithms {
		if alg.pow2Only {
			continue
		}
		opts := engine.Options{NP: 12, Topology: topo}
		runBcast(t, alg.name+"/blocked", alg.fn, opts, 5, 4096)
	}
}

func TestBcastSMPRootNotLeader(t *testing.T) {
	// Root 7 is not a node leader under Blocked(9,3) (leaders: 0,3,6).
	topo := topology.Blocked(9, 3)
	for _, fn := range []bcastFn{BcastSMP, BcastSMPOpt} {
		opts := engine.Options{NP: 9, Topology: topo}
		runBcast(t, "smp-nonleader-root", fn, opts, 7, 1000)
	}
}

func TestBcastSMPSingleNodeFallsBack(t *testing.T) {
	// On one node the SMP variant degenerates to a plain binomial; it
	// must still work.
	runBcast(t, "smp-single-node", BcastSMP, engine.Options{NP: 6}, 2, 512)
}

func TestBcastRejectsBadRoot(t *testing.T) {
	err := engine.Run(2, func(c mpi.Comm) error {
		err := BcastBinomial(c, nil, 5)
		if !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("want ErrRank, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRdbRejectsNonPow2(t *testing.T) {
	err := engine.Run(3, func(c mpi.Comm) error {
		err := BcastScatterRdbAllgather(c, make([]byte, 3), 0)
		if err == nil {
			return errors.New("want power-of-two error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectAlgorithm(t *testing.T) {
	cases := []struct {
		n, p  int
		tuned bool
		want  Algorithm
	}{
		// Short messages: always binomial.
		{0, 64, false, AlgBinomial},
		{12287, 64, false, AlgBinomial},
		{12287, 64, true, AlgBinomial},
		// Small communicators: always binomial, even long messages.
		{1 << 20, 7, false, AlgBinomial},
		{1 << 20, 7, true, AlgBinomial},
		// Medium, power-of-two: recursive doubling.
		{12288, 64, false, AlgScatterRdbAllgather},
		{524287, 16, false, AlgScatterRdbAllgather},
		{524287, 16, true, AlgScatterRdbAllgather},
		// Medium, non-power-of-two: the ring path (the paper's
		// mmsg-npof2 case).
		{12288, 9, false, AlgScatterRingAllgather},
		{12288, 9, true, AlgScatterRingAllgatherOpt},
		{524287, 129, false, AlgScatterRingAllgather},
		{524287, 129, true, AlgScatterRingAllgatherOpt},
		// Long messages: the ring path regardless of process count.
		{524288, 16, false, AlgScatterRingAllgather},
		{524288, 16, true, AlgScatterRingAllgatherOpt},
		{1 << 25, 256, false, AlgScatterRingAllgather},
		{1 << 25, 256, true, AlgScatterRingAllgatherOpt},
	}
	for _, tc := range cases {
		if got := SelectAlgorithm(tc.n, tc.p, tc.tuned); got != tc.want {
			t.Errorf("SelectAlgorithm(%d, %d, %v) = %v want %v", tc.n, tc.p, tc.tuned, got, tc.want)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgBinomial:                "binomial",
		AlgScatterRdbAllgather:     "scatter-rdb-allgather",
		AlgScatterRingAllgather:    "scatter-ring-allgather(native)",
		AlgScatterRingAllgatherOpt: "scatter-ring-allgather(opt)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q want %q", int(a), a.String(), want)
		}
	}
}

// TestDispatchUsesThresholdSizes runs the dispatcher at exactly the
// paper's threshold sizes end-to-end (correctness at the seams).
func TestDispatchUsesThresholdSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold sizes move hundreds of KiB per rank")
	}
	for _, n := range []int{BcastShortMsgSize - 1, BcastShortMsgSize, BcastLongMsgSize - 1, BcastLongMsgSize} {
		for _, p := range []int{8, 9} {
			runBcast(t, "dispatch-threshold", Bcast, engine.Options{NP: p}, 0, n)
			runBcast(t, "dispatch-threshold-opt", BcastOpt, engine.Options{NP: p}, 0, n)
		}
	}
}

func TestBcastNBCorrectnessGrid(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 9, 10, 16} {
		for _, root := range []int{0, p - 1} {
			for _, n := range []int{0, 1, p, 32*p + 5} {
				runBcast(t, "nb-opt", BcastScatterRingAllgatherOptNB, engine.Options{NP: p}, root, n)
			}
		}
	}
	// Rendezvous-only pass.
	runBcast(t, "nb-opt-rdv", BcastScatterRingAllgatherOptNB,
		engine.Options{NP: 10, EagerLimit: -1}, 3, 640)
}
