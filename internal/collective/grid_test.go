package collective

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/tune"
)

// TestRegistryCorrectnessGrid is the cross-algorithm correctness grid:
// every registered broadcast runs over single-node, blocked and
// round-robin placements, power-of-two and non-power-of-two process
// counts, and awkward sizes (empty, one byte, straddling the segment
// size, non-divisible by p) — skipping a point only when the algorithm's
// declared capabilities reject that environment. The grid iterates the
// registry itself, so any future algorithm is covered by registration
// alone.
//
// Every rank starts from a distinct garbage buffer, so a chunk delivered
// to the wrong rank (not just a missing delivery) is detected.
func TestRegistryCorrectnessGrid(t *testing.T) {
	const seg = 512 // segment size forced onto segmented algorithms
	placements := []struct {
		name string
		topo func(p int) *topology.Map
	}{
		{"single", topology.SingleNode},
		{"blocked", func(p int) *topology.Map { return topology.Blocked(p, 4) }},
		{"round-robin", func(p int) *topology.Map { return topology.RoundRobin(p, 4) }},
	}
	procs := []int{4, 5, 8, 9, 13} // pow2 and non-pow2, above and below cores/node
	sizes := []int{0, 1, seg - 1, seg + 1}

	for _, r := range Algorithms() {
		for _, pl := range placements {
			for _, p := range procs {
				topo := pl.topo(p)
				root := p / 2
				for _, n := range append(sizes, 10*p+3) { // non-divisible by p
					e := tune.EnvOf(n, p, topo)
					if !r.Caps.Match(e) {
						continue // skip only by declared capability
					}
					d := tune.Decision{Algorithm: r.Name}
					if r.Caps.Segmented {
						d.SegSize = seg
					}
					label := fmt.Sprintf("%s/%s/p=%d/n=%d", r.Name, pl.name, p, n)
					want := pattern(n)
					err := engine.RunWith(engine.Options{NP: p, Topology: topo, Timeout: 60 * time.Second}, func(c mpi.Comm) error {
						buf := make([]byte, n)
						for i := range buf {
							buf[i] = byte(0xA0 + c.Rank()) // distinct per rank
						}
						if c.Rank() == root {
							copy(buf, want)
						}
						if err := RunDecision(c, buf, root, d); err != nil {
							return err
						}
						if !bytes.Equal(buf, want) {
							return fmt.Errorf("rank %d: buffer mismatch (first diff at %d)",
								c.Rank(), firstDiff(buf, want))
						}
						return nil
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
			}
		}
	}
}
