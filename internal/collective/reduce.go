package collective

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/mpi"
)

// Op is a reduction operator over float64 vectors.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
)

// String names the operator.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// combine accumulates src into dst element-wise.
func (op Op) combine(dst, src []float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// encodeFloat64sInto writes vals into b (which must hold 8*len(vals)
// bytes), so callers with pooled scratch encode without allocating.
func encodeFloat64sInto(b []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
}

func decodeFloat64s(b []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// ReduceFloat64 reduces every rank's `in` vector element-wise with op
// into the root's `out` vector along a binomial tree (all operators are
// commutative and associative up to floating-point rounding). Non-root
// ranks may pass a nil out.
func ReduceFloat64(c mpi.Comm, in, out []float64, op Op, root int) error {
	ring, start := spanStart(c)
	if err := reduceFloat64(c, in, out, op, root); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opReduce, "", 0, 8*len(in), start, time.Since(start))
	}
	return nil
}

func reduceFloat64(c mpi.Comm, in, out []float64, op Op, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p, rank := c.Size(), c.Rank()
	if rank == root && len(out) < len(in) {
		return fmt.Errorf("collective: reduce: out %d < in %d", len(out), len(in))
	}
	if p > 1 {
		mpi.AdvanceTagStream(c)
	}
	// All scratch — the accumulator, the decode staging and the wire
	// buffer — is pooled, so steady-state reductions on a long-lived
	// world allocate nothing here. Scratch is released only on the clean
	// path: when a Send/Recv errors the world aborted and a peer may
	// still be copying through the wire buffer, so everything is
	// abandoned to the GC instead (the engine pools' abort rule).
	accBuf := bufpool.GetF64(len(in))
	acc := accBuf.F
	copy(acc, in)
	var tmpBuf *bufpool.F64
	var wire *bufpool.Buf
	if p > 1 {
		rel := core.RelRank(rank, root, p)
		// Children are exactly the binomial-bcast children; receive them
		// smallest-first (reverse of bcast send order).
		recvMask := core.CeilPow2(p)
		if rel != 0 {
			recvMask = rel & (-rel)
		}
		tmpBuf = bufpool.GetF64(len(in))
		tmp := tmpBuf.F
		wire = bufpool.Get(8 * len(in))
		buf := wire.B
		for mask := 1; mask < recvMask; mask <<= 1 {
			child := rel + mask
			if child >= p {
				continue
			}
			src := core.AbsRank(child, root, p)
			if _, err := c.Recv(buf, src, tagReduce); err != nil {
				return fmt.Errorf("collective: reduce recv: %w", err)
			}
			decodeFloat64s(buf, tmp)
			op.combine(acc, tmp)
		}
		if rel != 0 {
			parent := core.AbsRank(rel-(rel&(-rel)), root, p)
			encodeFloat64sInto(buf, acc)
			if err := c.Send(buf, parent, tagReduce); err != nil {
				return fmt.Errorf("collective: reduce send: %w", err)
			}
		}
	}
	if rank == root {
		copy(out, acc)
	}
	accBuf.Release()
	tmpBuf.Release()
	wire.Release()
	return nil
}

// AllreduceFloat64 reduces element-wise with op and delivers the result
// to every rank's out vector (reduce to rank 0, then binomial broadcast).
func AllreduceFloat64(c mpi.Comm, in, out []float64, op Op) error {
	ring, start := spanStart(c)
	if err := allreduceFloat64(c, in, out, op); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opAllreduce, "", 0, 8*len(in), start, time.Since(start))
	}
	return nil
}

// allreduceFloat64 calls the unexported reduce so the composite records
// one "allreduce" span, not a nested "reduce" inside it.
func allreduceFloat64(c mpi.Comm, in, out []float64, op Op) error {
	if len(out) < len(in) {
		return fmt.Errorf("collective: allreduce: out %d < in %d", len(out), len(in))
	}
	var root0Out []float64
	if c.Rank() == 0 {
		root0Out = out
	}
	if err := reduceFloat64(c, in, root0Out, op, 0); err != nil {
		return err
	}
	// Released only on success: on a broadcast error the wire buffer may
	// still be in a peer's hands, so it is abandoned to the GC.
	wire := bufpool.Get(8 * len(in))
	buf := wire.B
	if c.Rank() == 0 {
		encodeFloat64sInto(buf, out[:len(in)])
	}
	if err := BcastBinomial(c, buf, 0); err != nil {
		return err
	}
	decodeFloat64s(buf, out[:len(in)])
	wire.Release()
	return nil
}
