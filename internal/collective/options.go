package collective

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/tune"
)

// Options select the algorithm for one broadcast call. Every selecting
// entry point in this module — Bcast, BcastOpt, BcastWith, the public
// bcast facade, and the benchmark harness — resolves its arguments into
// an Options value and routes through Broadcast, so there is exactly one
// selection path: Options -> Decide -> tune.Decision -> RunDecision.
//
// The zero value selects like stock MPICH3 (the tune.MPICH3 tuner).
type Options struct {
	// Algorithm, when non-empty, pins a registry algorithm by name and
	// bypasses the tuner entirely.
	Algorithm string
	// SegSize is the segment size in bytes for segmented (pipelined)
	// algorithms. With Algorithm set it is the pinned algorithm's
	// parameter; with a tuner deciding it overrides the decision's
	// segment size when positive (0 keeps the tuner's choice).
	SegSize int
	// Tuner decides the algorithm when Algorithm is empty; nil selects
	// the default tune.MPICH3 dispatch.
	Tuner tune.Tuner
}

// Decide resolves the options against a selection environment. This is
// the module's one selection path; nothing else turns call arguments
// into a tune.Decision.
func (o Options) Decide(e tune.Env) tune.Decision {
	if o.Algorithm != "" {
		return tune.Decision{Algorithm: o.Algorithm, SegSize: o.SegSize}
	}
	t := o.Tuner
	if t == nil {
		t = tune.MPICH3{}
	}
	d := t.Decide(e)
	if o.SegSize > 0 {
		d.SegSize = o.SegSize
	}
	return d
}

// Validate rejects options that can never select successfully: an
// Algorithm that is not registered, or a negative segment size. It does
// not check capability constraints — those depend on the communicator
// and are enforced per call by RunDecision.
func (o Options) Validate() error {
	if o.SegSize < 0 {
		return fmt.Errorf("collective: negative segment size %d", o.SegSize)
	}
	if o.Algorithm != "" {
		if _, ok := Lookup(o.Algorithm); !ok {
			return fmt.Errorf("collective: unknown algorithm %q (registered: %v)", o.Algorithm, Names())
		}
	}
	return nil
}

// Broadcast broadcasts buf from root with the algorithm the options
// select for this communicator and message — the single selecting entry
// point behind Bcast, BcastOpt and BcastWith.
func Broadcast(c mpi.Comm, buf []byte, root int, o Options) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	return RunDecision(c, buf, root, o.Decide(envOf(c, len(buf))))
}
