package collective

import (
	"fmt"
	"time"

	"repro/internal/mpi"
)

// tagAlltoall is the base phase tag of pairwise-exchange all-to-all
// messages; like every collective tag it is namespaced per operation by
// the engine's tag streams (mpi.StreamTag), so overlapping Alltoalls on
// one communicator cannot match each other's rounds.
const tagAlltoall = 0x7F0B

// Alltoall performs the complete exchange: rank i sends
// sendBuf[j*chunk:(j+1)*chunk] to rank j and receives rank j's i-th chunk
// into recvBuf[j*chunk:(j+1)*chunk].
//
// The implementation is MPICH's pairwise exchange for long messages: P-1
// rounds, in round k rank i exchanges with partner i XOR k when P is a
// power of two, and with (i+k) mod P / (i-k) mod P otherwise — each round
// is a single Sendrecv, so the network sees at most one message per rank
// per round.
func Alltoall(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte) error {
	ring, start := spanStart(c)
	if err := alltoall(c, sendBuf, chunk, recvBuf); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opAlltoall, "", 0, c.Size()*chunk, start, time.Since(start))
	}
	return nil
}

func alltoall(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte) error {
	p, rank := c.Size(), c.Rank()
	if chunk < 0 {
		return fmt.Errorf("collective: alltoall: negative chunk %d", chunk)
	}
	if len(sendBuf) < p*chunk {
		return fmt.Errorf("collective: alltoall: send buffer %d bytes < %d", len(sendBuf), p*chunk)
	}
	if len(recvBuf) < p*chunk {
		return fmt.Errorf("collective: alltoall: recv buffer %d bytes < %d", len(recvBuf), p*chunk)
	}
	if chunk == 0 {
		return nil
	}
	// Local chunk moves without communication.
	copy(recvBuf[rank*chunk:(rank+1)*chunk], sendBuf[rank*chunk:(rank+1)*chunk])
	if p == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)

	pow2 := p&(p-1) == 0
	for k := 1; k < p; k++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = rank ^ k
			recvFrom = sendTo
		} else {
			sendTo = (rank + k) % p
			recvFrom = (rank - k + p) % p
		}
		sb := sendBuf[sendTo*chunk : (sendTo+1)*chunk]
		rb := recvBuf[recvFrom*chunk : (recvFrom+1)*chunk]
		if _, err := c.Sendrecv(sb, sendTo, tagAlltoall, rb, recvFrom, tagAlltoall); err != nil {
			return fmt.Errorf("collective: alltoall round %d: %w", k, err)
		}
	}
	return nil
}
