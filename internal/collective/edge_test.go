package collective

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// TestZeroChunkEdgePaths drives every chunked collective through the
// chunk==0 fast path on several communicator sizes: the call must
// succeed, move zero messages (no zero-byte tree traffic, no
// zero-length pool scratch) and leave the receive buffers untouched.
func TestZeroChunkEdgePaths(t *testing.T) {
	ops := []struct {
		name string
		run  func(c mpi.Comm, p int) error
	}{
		{"scatter", func(c mpi.Comm, p int) error {
			return Scatter(c, make([]byte, 0), 0, []byte{}, 0)
		}},
		{"gather", func(c mpi.Comm, p int) error {
			return Gather(c, []byte{}, 0, make([]byte, 0), 0)
		}},
		{"allgather", func(c mpi.Comm, p int) error {
			return Allgather(c, []byte{}, 0, make([]byte, 0))
		}},
		{"alltoall", func(c mpi.Comm, p int) error {
			return Alltoall(c, []byte{}, 0, make([]byte, 0))
		}},
	}
	for _, op := range ops {
		for _, p := range []int{1, 2, 5, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", op.name, p), func(t *testing.T) {
				col := trace.NewCollector()
				err := engine.Run(p, func(c mpi.Comm) error {
					return op.run(col.Wrap(c), p)
				})
				if err != nil {
					t.Fatal(err)
				}
				if s := col.Stats(); s.Total.Messages != 0 {
					t.Fatalf("chunk=0 moved %d messages, want 0", s.Total.Messages)
				}
			})
		}
	}
}

// TestSingleRankEdgePaths checks the p==1 degenerate of every chunked
// collective: a pure local copy, zero messages.
func TestSingleRankEdgePaths(t *testing.T) {
	const chunk = 37
	col := trace.NewCollector()
	err := engine.Run(1, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		src := pattern(chunk)
		dst := make([]byte, chunk)
		if err := Scatter(tc, src, chunk, dst, 0); err != nil {
			return fmt.Errorf("scatter: %w", err)
		}
		if !bytes.Equal(dst, src) {
			return fmt.Errorf("scatter p=1 copy mismatch")
		}
		dst = make([]byte, chunk)
		if err := Gather(tc, src, chunk, dst, 0); err != nil {
			return fmt.Errorf("gather: %w", err)
		}
		if !bytes.Equal(dst, src) {
			return fmt.Errorf("gather p=1 copy mismatch")
		}
		dst = make([]byte, chunk)
		if err := Allgather(tc, src, chunk, dst); err != nil {
			return fmt.Errorf("allgather: %w", err)
		}
		if !bytes.Equal(dst, src) {
			return fmt.Errorf("allgather p=1 copy mismatch")
		}
		dst = make([]byte, chunk)
		if err := Alltoall(tc, src, chunk, dst); err != nil {
			return fmt.Errorf("alltoall: %w", err)
		}
		if !bytes.Equal(dst, src) {
			return fmt.Errorf("alltoall p=1 copy mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := col.Stats(); s.Total.Messages != 0 {
		t.Fatalf("p=1 moved %d messages, want 0", s.Total.Messages)
	}
}

// TestConcurrentAlltoallOnSplitComms is the tag-collision regression
// test: two groups of one world each run several Alltoalls genuinely
// concurrently (the groups share no ordering), all stamped from the
// same fixed phase-tag constant. Per-context matching plus per-
// operation tag streams must keep every exchange isolated; run under
// -race this also proves the stream bookkeeping itself is data-race
// free.
func TestConcurrentAlltoallOnSplitComms(t *testing.T) {
	const (
		p      = 8
		chunk  = 64
		rounds = 5
	)
	err := engine.Run(p, func(c mpi.Comm) error {
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		sp, sr := sub.Size(), sub.Rank()
		send := make([]byte, sp*chunk)
		recv := make([]byte, sp*chunk)
		for round := 0; round < rounds; round++ {
			// Rank sr sends (color, round, sr, dst) markers to each dst.
			for dst := 0; dst < sp; dst++ {
				fill := byte(c.Rank()%2<<6 | round<<3 | sr<<1 ^ dst)
				for i := 0; i < chunk; i++ {
					send[dst*chunk+i] = fill
				}
			}
			for i := range recv {
				recv[i] = 0xEE
			}
			if err := Alltoall(sub, send, chunk, recv); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			for src := 0; src < sp; src++ {
				want := byte(c.Rank()%2<<6 | round<<3 | src<<1 ^ sr)
				for i := 0; i < chunk; i++ {
					if recv[src*chunk+i] != want {
						return fmt.Errorf("round %d: rank %d got %#x from %d, want %#x",
							round, sr, recv[src*chunk+i], src, want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagStreamsAdvancePerCollective pins the stream allocator's
// contract: engine communicators expose mpi.TagStreamer, streams
// advance once per collective entry identically on every rank, and the
// counters restart when a world is reused for a new run.
func TestTagStreamsAdvancePerCollective(t *testing.T) {
	w, err := engine.NewWorld(engine.Options{NP: 4})
	if err != nil {
		t.Fatal(err)
	}
	body := func(c mpi.Comm) error {
		ts, ok := c.(mpi.TagStreamer)
		if !ok {
			return fmt.Errorf("engine comm must implement mpi.TagStreamer")
		}
		buf := make([]byte, 256)
		// Two collectives consume streams 1 and 2; the probe then draws 3.
		if err := BcastBinomial(c, buf, 0); err != nil {
			return err
		}
		if err := Barrier(c); err != nil {
			return err
		}
		if got := ts.NextTagStream(); got != 3 {
			return fmt.Errorf("rank %d: stream after two collectives = %d, want 3", c.Rank(), got)
		}
		return nil
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	// Reuse: the counters must restart with the world's next run, or a
	// long-lived cluster's per-ctx stream map would grow forever.
	if err := w.Run(body); err != nil {
		t.Fatalf("second run on reused world: %v", err)
	}
}
