package collective

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/tune"
)

// tracedDecision runs one registry broadcast under the trace collector
// on the given executor, verifies every rank's buffer against the
// expected pattern, and returns the traffic stats.
func tracedDecision(t *testing.T, opts engine.Options, d tune.Decision, root, n int) trace.Stats {
	t.Helper()
	col := trace.NewCollector()
	want := pattern(n)
	err := engine.RunWith(opts, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(0xA0 + c.Rank()) // distinct garbage per rank
		}
		if c.Rank() == root {
			copy(buf, want)
		}
		if err := RunDecision(tc, buf, root, d); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: buffer mismatch (first diff at %d)", c.Rank(), firstDiff(buf, want))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("exec=%v p=%d root=%d n=%d: %v", opts.Executor, opts.NP, root, n, err)
	}
	return col.Stats()
}

// TestExecutorParityGrid is the executor-parity grid: every registry
// algorithm runs over {goroutine, pooled} x {single, blocked,
// round-robin}, and for each cell the two executors must produce
// byte-identical buffers (asserted inside the run) and identical traced
// traffic — total, intra/inter split, and the per-tag breakdown. The
// execution substrate schedules ranks; it must not change a single
// message of the communication schedule.
//
// The pooled side runs with fewer workers than ranks, so every blocking
// point of every algorithm exercises park/unpark.
func TestExecutorParityGrid(t *testing.T) {
	const seg = 512 // forced onto segmented algorithms
	placements := []struct {
		name string
		topo func(p int) *topology.Map
	}{
		{"single", topology.SingleNode},
		{"blocked", func(p int) *topology.Map { return topology.Blocked(p, 4) }},
		{"round-robin", func(p int) *topology.Map { return topology.RoundRobin(p, 4) }},
	}
	procs := []int{5, 8} // non-pow2 and pow2, both above cores/node

	for _, r := range Algorithms() {
		for _, pl := range placements {
			for _, p := range procs {
				topo := pl.topo(p)
				root := p / 2
				for _, n := range []int{seg + 1, 10*p + 3} {
					e := tune.EnvOf(n, p, topo)
					if !r.Caps.Match(e) {
						continue // skip only by declared capability
					}
					d := tune.Decision{Algorithm: r.Name}
					if r.Caps.Segmented {
						d.SegSize = seg
					}
					base := engine.Options{NP: p, Topology: topo, Timeout: 60 * time.Second}
					pooled := base
					pooled.Executor = engine.Pooled
					pooled.MaxWorkers = 2

					gStats := tracedDecision(t, base, d, root, n)
					pStats := tracedDecision(t, pooled, d, root, n)
					if !reflect.DeepEqual(gStats, pStats) {
						t.Fatalf("%s/%s/p=%d/n=%d: traffic diverges between executors:\ngoroutine: %+v\npooled:    %+v",
							r.Name, pl.name, p, n, gStats, pStats)
					}
				}
			}
		}
	}
}

// TestPooledLargeWorldOptSeg is the scale acceptance point: a np=512
// blocked-placement scatter-ring-allgather-opt-seg broadcast on the
// pooled executor must complete with correct buffers on every rank —
// the world size the goroutine-per-rank substrate was refactored to
// unblock.
func TestPooledLargeWorldOptSeg(t *testing.T) {
	if testing.Short() {
		t.Skip("np=512 world is not a -short test")
	}
	const p = 512
	n := 64 * p // every rank's ring chunk is a few cache lines
	topo := topology.Blocked(p, 32)
	d := tune.Decision{Algorithm: tune.RingOptSeg, SegSize: 4096}
	want := pattern(n)
	err := engine.RunWith(engine.Options{
		NP:       p,
		Topology: topo,
		Executor: engine.Pooled,
		Timeout:  10 * time.Minute,
	}, func(c mpi.Comm) error {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(0xA0 + c.Rank())
		}
		if c.Rank() == 0 {
			copy(buf, want)
		}
		if err := RunDecision(c, buf, 0, d); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: buffer mismatch (first diff at %d)", c.Rank(), firstDiff(buf, want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
