package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

// ringAllgatherSeg runs the segmented ring allgather phase: the same
// P-1-step ring as ringAllgather, with every chunk transfer pipelined in
// segSize pieces (see core.RingAllgatherNativeSeg / TunedSeg for the
// schedule-level description). With tuned=true the ownership-aware
// degeneration of the paper's non-enclosed ring applies to every segment
// of the affected steps.
func ringAllgatherSeg(c mpi.Comm, buf []byte, root int, tuned bool, segSize int) error {
	p, rank := c.Size(), c.Rank()
	if segSize <= 0 {
		segSize = core.DefaultRingSegment
	}
	l := core.NewLayout(len(buf), p)
	left := (p + rank - 1) % p
	right := (rank + 1) % p

	var sf core.StepFlag
	if tuned {
		sf = core.ComputeStepFlag(core.RelRank(rank, root, p), p)
	}

	j, jnext := rank, left
	for i := 1; i < p; i++ {
		relJ := core.RelRank(j, root, p)
		relJnext := core.RelRank(jnext, root, p)
		sendCnt, recvCnt := l.Count(relJ), l.Count(relJnext)
		sendDisp, recvDisp := l.Disp(relJ), l.Disp(relJnext)

		doSend, doRecv := true, true
		if tuned && sf.Step > p-i {
			doSend, doRecv = !sf.RecvOnly, sf.RecvOnly
		}
		rounds := 0
		if doSend {
			rounds = core.RingSegments(sendCnt, segSize)
		}
		if doRecv {
			if r := core.RingSegments(recvCnt, segSize); r > rounds {
				rounds = r
			}
		}
		for s := 0; s < rounds; s++ {
			var sendBuf, recvBuf []byte
			sOK := doSend && s < core.RingSegments(sendCnt, segSize)
			rOK := doRecv && s < core.RingSegments(recvCnt, segSize)
			if sOK {
				off, length := core.SegSpan(sendCnt, segSize, s)
				sendBuf = buf[sendDisp+off : sendDisp+off+length]
			}
			if rOK {
				off, length := core.SegSpan(recvCnt, segSize, s)
				recvBuf = buf[recvDisp+off : recvDisp+off+length]
			}
			switch {
			case sOK && rOK:
				if _, err := c.Sendrecv(sendBuf, right, core.TagRing, recvBuf, left, core.TagRing); err != nil {
					return fmt.Errorf("collective: seg ring step %d seg %d sendrecv: %w", i, s, err)
				}
			case rOK:
				if _, err := c.Recv(recvBuf, left, core.TagRing); err != nil {
					return fmt.Errorf("collective: seg ring step %d seg %d recv: %w", i, s, err)
				}
			case sOK:
				if err := c.Send(sendBuf, right, core.TagRing); err != nil {
					return fmt.Errorf("collective: seg ring step %d seg %d send: %w", i, s, err)
				}
			}
		}
		j = jnext
		jnext = (p + jnext - 1) % p
	}
	return nil
}

// BcastScatterRingAllgatherSeg is the segmented native broadcast:
// binomial scatter followed by the enclosed ring allgather pipelined in
// segSize chunks. segSize <= 0 selects core.DefaultRingSegment.
func BcastScatterRingAllgatherSeg(c mpi.Comm, buf []byte, root, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return ringAllgatherSeg(c, buf, root, false, segSize)
}

// BcastScatterRingAllgatherOptSeg is the segmented tuned broadcast:
// binomial scatter followed by the paper's non-enclosed ring allgather
// pipelined in segSize chunks. segSize <= 0 selects
// core.DefaultRingSegment.
func BcastScatterRingAllgatherOptSeg(c mpi.Comm, buf []byte, root, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return ringAllgatherSeg(c, buf, root, true, segSize)
}
