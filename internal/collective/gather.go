package collective

import (
	"fmt"
	"time"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/mpi"
)

// Scatter distributes equal chunk-byte slices of sendBuf from root: rank
// i receives sendBuf[i*chunk : (i+1)*chunk] into recvBuf. Only the root's
// sendBuf is read; every rank's recvBuf must be at least chunk bytes.
// The implementation is MPICH's binomial tree: interior ranks receive
// their whole subtree block into a temporary buffer and forward
// sub-blocks downward, so the root is not a serial bottleneck.
func Scatter(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte, root int) error {
	ring, start := spanStart(c)
	if err := scatter(c, sendBuf, chunk, recvBuf, root); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opScatter, "", 0, c.Size()*chunk, start, time.Since(start))
	}
	return nil
}

func scatter(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p, rank := c.Size(), c.Rank()
	if chunk < 0 {
		return fmt.Errorf("collective: scatter: negative chunk %d", chunk)
	}
	if len(recvBuf) < chunk {
		return fmt.Errorf("collective: scatter: recv buffer %d bytes < chunk %d", len(recvBuf), chunk)
	}
	if rank == root && len(sendBuf) < p*chunk {
		return fmt.Errorf("collective: scatter: send buffer %d bytes < %d", len(sendBuf), p*chunk)
	}
	if chunk == 0 {
		// Nothing to move: skip the tree rather than threading zero-byte
		// messages and zero-length pool scratch through it. Every rank
		// sees the same chunk, so all take this path together.
		return nil
	}
	if p == 1 {
		copy(recvBuf[:chunk], sendBuf[:chunk])
		return nil
	}
	mpi.AdvanceTagStream(c)

	rel := core.RelRank(rank, root, p)
	extent := core.Extent(rel, p)

	// tmp holds this rank's subtree block in relative-chunk order:
	// relative chunk k lives at tmp[(k-rel)*chunk : ...). The scratch
	// comes from the shared buffer pool, so repeated scatters on a
	// long-lived world allocate nothing here in the steady state. It is
	// released only on the clean path: an errored Send/Recv means the
	// world aborted, and a peer may still be copying through this buffer,
	// so it must be abandoned to the GC rather than recycled (the same
	// rule the engine's own pools follow — see internal/engine/pool.go).
	var tmp []byte
	var scratch *bufpool.Buf
	if rank == root {
		// Rotate the source into relative order so subtree blocks are
		// contiguous (root's own chunk first).
		scratch = bufpool.Get(p * chunk)
		tmp = scratch.B
		for k := 0; k < p; k++ {
			src := core.AbsRank(k, root, p)
			copy(tmp[k*chunk:(k+1)*chunk], sendBuf[src*chunk:(src+1)*chunk])
		}
	} else {
		scratch = bufpool.Get(extent * chunk)
		tmp = scratch.B
		recvMask := rel & (-rel)
		parent := core.AbsRank(rel-recvMask, root, p)
		if _, err := c.Recv(tmp, parent, tagScatter); err != nil {
			return fmt.Errorf("collective: scatter recv: %w", err)
		}
	}

	recvMask := core.CeilPow2(p)
	if rel != 0 {
		recvMask = rel & (-rel)
	}
	for mask := recvMask >> 1; mask > 0; mask >>= 1 {
		child := rel + mask
		if child >= p {
			continue
		}
		childExtent := core.Extent(child, p)
		off := (child - rel) * chunk
		dst := core.AbsRank(child, root, p)
		if err := c.Send(tmp[off:off+childExtent*chunk], dst, tagScatter); err != nil {
			return fmt.Errorf("collective: scatter send: %w", err)
		}
	}
	copy(recvBuf[:chunk], tmp[:chunk])
	scratch.Release()
	return nil
}

// Gather collects chunk bytes from every rank's sendBuf into the root's
// recvBuf (rank i's contribution lands at recvBuf[i*chunk:(i+1)*chunk]).
// It is the mirror of Scatter: leaves send up the binomial tree, interior
// ranks assemble their subtree block before forwarding.
func Gather(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte, root int) error {
	ring, start := spanStart(c)
	if err := gather(c, sendBuf, chunk, recvBuf, root); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opGather, "", 0, c.Size()*chunk, start, time.Since(start))
	}
	return nil
}

func gather(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p, rank := c.Size(), c.Rank()
	if chunk < 0 {
		return fmt.Errorf("collective: gather: negative chunk %d", chunk)
	}
	if len(sendBuf) < chunk {
		return fmt.Errorf("collective: gather: send buffer %d bytes < chunk %d", len(sendBuf), chunk)
	}
	if rank == root && len(recvBuf) < p*chunk {
		return fmt.Errorf("collective: gather: recv buffer %d bytes < %d", len(recvBuf), p*chunk)
	}
	if chunk == 0 {
		// Mirror of Scatter's zero-chunk fast path.
		return nil
	}
	if p == 1 {
		copy(recvBuf[:chunk], sendBuf[:chunk])
		return nil
	}
	mpi.AdvanceTagStream(c)

	rel := core.RelRank(rank, root, p)
	extent := core.Extent(rel, p)

	// Pooled like Scatter's scratch, with the same discipline: released
	// only on the clean paths, abandoned to the GC when a Send/Recv errors
	// (an aborted peer may still be copying through it).
	scratch := bufpool.Get(extent * chunk)
	tmp := scratch.B
	copy(tmp[:chunk], sendBuf[:chunk])

	// Receive children's subtree blocks, smallest mask first (the reverse
	// of the scatter send order, so children that finish early match).
	recvMask := core.CeilPow2(p)
	if rel != 0 {
		recvMask = rel & (-rel)
	}
	for mask := 1; mask < recvMask; mask <<= 1 {
		child := rel + mask
		if child >= p {
			continue
		}
		childExtent := core.Extent(child, p)
		off := (child - rel) * chunk
		src := core.AbsRank(child, root, p)
		if _, err := c.Recv(tmp[off:off+childExtent*chunk], src, tagGather); err != nil {
			return fmt.Errorf("collective: gather recv: %w", err)
		}
	}
	if rel != 0 {
		parentMask := rel & (-rel)
		parent := core.AbsRank(rel-parentMask, root, p)
		if err := c.Send(tmp, parent, tagGather); err != nil {
			return fmt.Errorf("collective: gather send: %w", err)
		}
		scratch.Release()
		return nil
	}
	// Root: un-rotate the relative-order block into absolute rank order.
	for k := 0; k < p; k++ {
		dst := core.AbsRank(k, root, p)
		copy(recvBuf[dst*chunk:(dst+1)*chunk], tmp[k*chunk:(k+1)*chunk])
	}
	scratch.Release()
	return nil
}

// Allgather concatenates every rank's chunk-byte sendBuf into every
// rank's recvBuf (size-p*chunk, rank i's data at offset i*chunk) using
// the classic ring: P-1 steps, each rank forwarding the block it received
// in the previous step. This is the textbook setting where the ring
// allgather is bandwidth-optimal — unlike inside the broadcast, where the
// scatter phase's subtree ownership makes the enclosed ring wasteful.
func Allgather(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte) error {
	ring, start := spanStart(c)
	if err := allgather(c, sendBuf, chunk, recvBuf); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opAllgather, "", 0, c.Size()*chunk, start, time.Since(start))
	}
	return nil
}

func allgather(c mpi.Comm, sendBuf []byte, chunk int, recvBuf []byte) error {
	p, rank := c.Size(), c.Rank()
	if chunk < 0 {
		return fmt.Errorf("collective: allgather: negative chunk %d", chunk)
	}
	if len(sendBuf) < chunk {
		return fmt.Errorf("collective: allgather: send buffer %d bytes < chunk %d", len(sendBuf), chunk)
	}
	if len(recvBuf) < p*chunk {
		return fmt.Errorf("collective: allgather: recv buffer %d bytes < %d", len(recvBuf), p*chunk)
	}
	if chunk == 0 {
		return nil
	}
	copy(recvBuf[rank*chunk:(rank+1)*chunk], sendBuf[:chunk])
	if p == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	left := (rank - 1 + p) % p
	right := (rank + 1) % p
	j, jnext := rank, left
	for i := 1; i < p; i++ {
		sb := recvBuf[j*chunk : (j+1)*chunk]
		rb := recvBuf[jnext*chunk : (jnext+1)*chunk]
		if _, err := c.Sendrecv(sb, right, tagAllgather, rb, left, tagAllgather); err != nil {
			return fmt.Errorf("collective: allgather step %d: %w", i, err)
		}
		j = jnext
		jnext = (jnext - 1 + p) % p
	}
	return nil
}
