package collective

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/topology"
)

// runProgram executes a generated schedule on the real engine and checks
// the broadcast postcondition.
func runProgram(t *testing.T, pr *sched.Program, opts engine.Options) {
	t.Helper()
	want := pattern(pr.N)
	err := engine.RunWith(opts, func(c mpi.Comm) error {
		buf := make([]byte, pr.N)
		if c.Rank() == pr.Root {
			copy(buf, want)
		}
		if err := ExecProgram(c, pr, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: buffer mismatch at %d", c.Rank(), firstDiff(buf, want))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", pr.Name, err)
	}
}

// TestExecGeneratedPrograms runs every schedule generator's output on the
// real engine — the schedule world and the executable world must move
// identical bytes.
func TestExecGeneratedPrograms(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 10, 16} {
		for _, root := range []int{0, p - 1} {
			n := 32*p + 3
			programs := []*sched.Program{
				core.BcastNativeProgram(p, root, n),
				core.BcastOptProgram(p, root, n),
				core.BinomialBcast(p, root, n),
				core.ChainBcast(p, root, n, 64),
			}
			if core.IsPow2(p) {
				programs = append(programs, core.BcastRdbProgram(p, root, n))
			}
			for _, pr := range programs {
				runProgram(t, pr, engine.Options{NP: p})
			}
		}
	}
}

func TestExecNodeAwareProgramOnEngine(t *testing.T) {
	topo := topology.RoundRobin(9, 3)
	pr, err := core.BcastOptNodeAware(topo, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	runProgram(t, pr, engine.Options{NP: 9, Topology: topo})
}

func TestExecValidation(t *testing.T) {
	err := engine.Run(2, func(c mpi.Comm) error {
		pr := core.BinomialBcast(3, 0, 8) // wrong size
		if err := ExecProgram(c, pr, make([]byte, 8)); err == nil {
			return fmt.Errorf("rank-count mismatch must fail")
		}
		pr2 := core.BinomialBcast(2, 0, 8)
		if err := ExecProgram(c, pr2, make([]byte, 4)); err == nil {
			return fmt.Errorf("short buffer must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastChainCollective(t *testing.T) {
	for _, p := range []int{1, 2, 5, 9} {
		for _, seg := range []int{0, 50} {
			runBcast(t, "chain", func(c mpi.Comm, buf []byte, root int) error {
				return BcastChain(c, buf, root, seg)
			}, engine.Options{NP: p}, p/2, 10*p+7)
		}
	}
}

// TestExecMatchesHandWrittenTraffic: executing the generated native
// program produces byte-identical buffers to the hand-written collective
// run under the same inputs (both already checked against the pattern;
// here we additionally compare the resulting buffers of a *random*-ish
// asymmetric size directly).
func TestExecMatchesHandWrittenTraffic(t *testing.T) {
	const p, root, n = 10, 3, 777
	want := pattern(n)
	for _, mode := range []string{"program", "handwritten"} {
		got := make([][]byte, p)
		err := engine.Run(p, func(c mpi.Comm) error {
			buf := make([]byte, n)
			if c.Rank() == root {
				copy(buf, want)
			}
			var err error
			if mode == "program" {
				err = ExecProgram(c, core.BcastOptProgram(p, root, n), buf)
			} else {
				err = BcastScatterRingAllgatherOpt(c, buf, root)
			}
			if err != nil {
				return err
			}
			got[c.Rank()] = buf
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for r := 0; r < p; r++ {
			if !bytes.Equal(got[r], want) {
				t.Fatalf("%s: rank %d buffer wrong", mode, r)
			}
		}
	}
}
