// Package collective implements executable MPI collectives over the
// mpi.Comm interface.
//
// The broadcast family is the subject of the reproduced paper:
//
//   - BcastBinomial — MPICH's short-message whole-buffer binomial tree;
//   - BcastScatterRingAllgather — MPICH's long-message algorithm
//     (binomial scatter + enclosed ring allgather), the paper's
//     MPI_Bcast_native;
//   - BcastScatterRingAllgatherOpt — the paper's contribution
//     (binomial scatter + non-enclosed ring allgather), a faithful port
//     of Listing 1, the paper's MPI_Bcast_opt;
//   - BcastScatterRingAllgatherSeg / BcastScatterRingAllgatherOptSeg —
//     segmented variants of the two rings that pipeline the allgather
//     phase in SegSize chunks (segmentation generalized from the chain
//     broadcast to the scatter-ring family);
//   - BcastScatterRdbAllgather — MPICH's medium-message power-of-two
//     algorithm (binomial scatter + recursive-doubling allgather);
//   - Bcast / BcastOpt — MPICH3's size/process-count dispatch over the
//     above (native vs tuned ring path);
//   - BcastSMP / BcastSMPOpt — the multi-core aware variant described in
//     the paper's introduction (intra-node binomial on the root's node,
//     inter-node scatter-ring-allgather among node leaders, intra-node
//     binomial everywhere else).
//
// # Registry and tuning
//
// Every broadcast registers into a named registry (registry.go) as a
// Registration: a stable name (the tune.* name constants), the
// executable implementation, capability predicates (power-of-two-only,
// minimum processes, multi-node-only, segmented), and — for algorithms
// whose communication pattern is static — a schedule generator shared
// with the verifier, the simulator, and the auto-tuner.
//
// Selection is delegated to internal/tune and flows through exactly one
// path: every entry point resolves its arguments into an Options value
// (a pinned Algorithm, a SegSize, a Tuner — zero value = stock MPICH3
// dispatch) and calls Broadcast, which runs Options.Decide to obtain a
// tune.Decision and hands it to RunDecision. Bcast, BcastOpt and
// BcastWith are thin wrappers that fill Options; the public bcast facade
// and the bench harness build the same struct, so "which algorithm runs"
// has a single answer per (Options, Env) everywhere in the system.
// tune.MPICH3 reproduces MPICH3's hardcoded dispatch bit-for-bit
// (golden-tested against SelectAlgorithm), and tune.TableTuner
// dispatches through a JSON tuning table derived by the auto-tuner from
// measured crossover points. RunDecision executes a single decision
// after checking it against the registered capabilities, so a mis-keyed
// table fails loudly instead of hanging a pow2-only algorithm on 129
// ranks.
//
// New algorithms plug in by calling Register (or MustRegister at init
// time); the CLI tools (bcastbench, bcastsim, transfercount) enumerate
// the registry rather than keeping private switches, so a registered
// algorithm is immediately benchmarkable, simulatable, countable, and
// auto-tunable.
//
// Supporting collectives (Barrier, Scatter, Gather, Allgather, Reduce,
// Allreduce) exist because the examples and the benchmark protocol need
// them, mirroring how a real MPI application would use the library.
//
// All byte-buffer collectives follow MPI_BYTE semantics. Every function
// is collective: all ranks of the communicator must call it with
// compatible arguments.
package collective

import (
	"repro/internal/core"
	"repro/internal/tune"
)

// Reserved tags for collectives not covered by internal/core's phase tags.
const (
	tagReduce    = 0x7F06
	tagGather    = 0x7F07
	tagScatter   = 0x7F08
	tagAllgather = 0x7F09
)

// MPICH3 broadcast dispatch thresholds, re-exported from internal/tune
// (the selection subsystem owns them; see tune.ShortMsgSize and friends
// for the paper's Section V provenance).
const (
	// BcastShortMsgSize: messages strictly below this use the binomial tree.
	BcastShortMsgSize = tune.ShortMsgSize
	// BcastLongMsgSize: messages at or above this always use
	// scatter-ring-allgather.
	BcastLongMsgSize = tune.LongMsgSize
	// BcastMinProcs: communicators smaller than this always use the
	// binomial tree (MPIR_BCAST_MIN_PROCS in MPICH).
	BcastMinProcs = tune.MinRingProcs
)

// Re-exported phase tags (defined next to the schedule generators so that
// traces can be matched against generated programs).
const (
	TagScatter  = core.TagScatter
	TagRing     = core.TagRing
	TagRdb      = core.TagRdb
	TagBinomial = core.TagBinomial
	TagBarrier  = core.TagBarrier
)
