// Package collective implements executable MPI collectives over the
// mpi.Comm interface.
//
// The broadcast family is the subject of the reproduced paper:
//
//   - BcastBinomial — MPICH's short-message whole-buffer binomial tree;
//   - BcastScatterRingAllgather — MPICH's long-message algorithm
//     (binomial scatter + enclosed ring allgather), the paper's
//     MPI_Bcast_native;
//   - BcastScatterRingAllgatherOpt — the paper's contribution
//     (binomial scatter + non-enclosed ring allgather), a faithful port
//     of Listing 1, the paper's MPI_Bcast_opt;
//   - BcastScatterRdbAllgather — MPICH's medium-message power-of-two
//     algorithm (binomial scatter + recursive-doubling allgather);
//   - Bcast / BcastOpt — MPICH3's size/process-count dispatch over the
//     above (native vs tuned ring path);
//   - BcastSMP / BcastSMPOpt — the multi-core aware variant described in
//     the paper's introduction (intra-node binomial on the root's node,
//     inter-node scatter-ring-allgather among node leaders, intra-node
//     binomial everywhere else).
//
// Supporting collectives (Barrier, Scatter, Gather, Allgather, Reduce,
// Allreduce) exist because the examples and the benchmark protocol need
// them, mirroring how a real MPI application would use the library.
//
// All byte-buffer collectives follow MPI_BYTE semantics. Every function
// is collective: all ranks of the communicator must call it with
// compatible arguments.
package collective

import "repro/internal/core"

// Reserved tags for collectives not covered by internal/core's phase tags.
const (
	tagReduce    = 0x7F06
	tagGather    = 0x7F07
	tagScatter   = 0x7F08
	tagAllgather = 0x7F09
)

// MPICH3 broadcast dispatch thresholds (Section V of the paper: "The
// message size threshold determined by MPICH3 to switch from short
// messages to medium messages is 12288 bytes and ... from medium to long
// messages is 524288 bytes").
const (
	// BcastShortMsgSize: messages strictly below this use the binomial tree.
	BcastShortMsgSize = 12288
	// BcastLongMsgSize: messages at or above this always use
	// scatter-ring-allgather.
	BcastLongMsgSize = 512 << 10
	// BcastMinProcs: communicators smaller than this always use the
	// binomial tree (MPIR_BCAST_MIN_PROCS in MPICH).
	BcastMinProcs = 8
)

// Re-exported phase tags (defined next to the schedule generators so that
// traces can be matched against generated programs).
const (
	TagScatter  = core.TagScatter
	TagRing     = core.TagRing
	TagRdb      = core.TagRdb
	TagBinomial = core.TagBinomial
	TagBarrier  = core.TagBarrier
)
