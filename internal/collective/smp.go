package collective

import (
	"fmt"

	"repro/internal/mpi"
)

// bcastSMP is the multi-core aware broadcast the paper describes for
// medium messages with non-power-of-two process counts (Section I):
//
//  1. intra-node binomial broadcast on the root's node;
//  2. inter-node broadcast among the node leaders using
//     scatter-ring-allgather (native or tuned);
//  3. intra-node binomial broadcast on every other node.
//
// Sub-communicators are built with Split: one per node, plus a leaders
// communicator ordered by node id.
func bcastSMP(c mpi.Comm, buf []byte, root int, tuned bool) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	topo := c.Topology()
	if topo.NumNodes() == 1 {
		return BcastBinomial(c, buf, root)
	}
	rank := c.Rank()
	myNode := topo.NodeOf(rank)
	rootNode := topo.NodeOf(root)

	nodeCommI, err := c.Split(myNode, rank)
	if err != nil {
		return fmt.Errorf("collective: smp bcast node split: %w", err)
	}
	nodeComm := nodeCommI
	leaderColor := mpi.Undefined
	if topo.IsLeader(rank) {
		leaderColor = 0
	}
	leadersComm, err := c.Split(leaderColor, myNode)
	if err != nil {
		return fmt.Errorf("collective: smp bcast leaders split: %w", err)
	}

	// Phase 1: intra-node broadcast on the root's node. The node
	// communicator is ordered by world rank, so the local rank of the
	// root is its index among the node's ranks.
	if myNode == rootNode {
		localRoot := indexOf(topo.RanksOnNode(rootNode), root)
		if localRoot < 0 {
			return fmt.Errorf("collective: smp bcast: root %d not among ranks %v of its node %d (inconsistent topology)",
				root, topo.RanksOnNode(rootNode), rootNode)
		}
		if err := BcastBinomial(nodeComm, buf, localRoot); err != nil {
			return fmt.Errorf("collective: smp bcast phase 1: %w", err)
		}
	}

	// Phase 2: inter-node broadcast among leaders (keys were node ids, so
	// leader of node k has leaders-comm rank k).
	if leadersComm != nil {
		bcast := BcastScatterRingAllgather
		if tuned {
			bcast = BcastScatterRingAllgatherOpt
		}
		if err := bcast(leadersComm, buf, rootNode); err != nil {
			return fmt.Errorf("collective: smp bcast phase 2: %w", err)
		}
	}

	// Phase 3: intra-node broadcast everywhere else, from the local
	// leader (lowest world rank on the node = local rank 0).
	if myNode != rootNode {
		if err := BcastBinomial(nodeComm, buf, 0); err != nil {
			return fmt.Errorf("collective: smp bcast phase 3: %w", err)
		}
	}
	return nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// BcastSMP is the multi-core aware broadcast with the native enclosed
// ring in its inter-node phase.
func BcastSMP(c mpi.Comm, buf []byte, root int) error {
	return bcastSMP(c, buf, root, false)
}

// BcastSMPOpt is the multi-core aware broadcast with the paper's tuned
// non-enclosed ring in its inter-node phase.
func BcastSMPOpt(c mpi.Comm, buf []byte, root int) error {
	return bcastSMP(c, buf, root, true)
}
