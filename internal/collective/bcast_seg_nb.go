package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

// ringAllgatherSegNB is the overlap-aware segmented ring allgather: the
// same steps, segments and per-step tuned degeneration as
// ringAllgatherSeg, but within each ring step every segment receive is
// pre-posted through Irecv before the first segment is forwarded, and all
// segment sends are issued as Isends — so while segment k of the send
// chunk forwards, the receive for segment k+1 (and every later segment)
// of the incoming chunk is already posted, the pattern
// BcastScatterRingAllgatherOptNB demonstrates per whole chunk. Per
// (sender, receiver, tag) non-overtaking order guarantees the pre-posted
// receives match the neighbour's segments in schedule order, so the
// traffic is message-for-message identical to the blocking segmented
// ring.
func ringAllgatherSegNB(c mpi.Comm, buf []byte, root int, tuned bool, segSize int) error {
	p, rank := c.Size(), c.Rank()
	if segSize <= 0 {
		segSize = core.DefaultRingSegment
	}
	l := core.NewLayout(len(buf), p)
	left := (p + rank - 1) % p
	right := (rank + 1) % p

	var sf core.StepFlag
	if tuned {
		sf = core.ComputeStepFlag(core.RelRank(rank, root, p), p)
	}

	j, jnext := rank, left
	for i := 1; i < p; i++ {
		relJ := core.RelRank(j, root, p)
		relJnext := core.RelRank(jnext, root, p)
		sendCnt, recvCnt := l.Count(relJ), l.Count(relJnext)
		sendDisp, recvDisp := l.Disp(relJ), l.Disp(relJnext)

		doSend, doRecv := true, true
		if tuned && sf.Step > p-i {
			doSend, doRecv = !sf.RecvOnly, sf.RecvOnly
		}

		var reqs []mpi.Request
		if doRecv {
			for s := 0; s < core.RingSegments(recvCnt, segSize); s++ {
				off, length := core.SegSpan(recvCnt, segSize, s)
				req, err := c.Irecv(buf[recvDisp+off:recvDisp+off+length], left, core.TagRing)
				if err != nil {
					return fmt.Errorf("collective: nb seg ring step %d seg %d irecv: %w", i, s, err)
				}
				reqs = append(reqs, req)
			}
		}
		if doSend {
			for s := 0; s < core.RingSegments(sendCnt, segSize); s++ {
				off, length := core.SegSpan(sendCnt, segSize, s)
				req, err := c.Isend(buf[sendDisp+off:sendDisp+off+length], right, core.TagRing)
				if err != nil {
					return fmt.Errorf("collective: nb seg ring step %d seg %d isend: %w", i, s, err)
				}
				reqs = append(reqs, req)
			}
		}
		// The next step forwards the chunk received here, so the step
		// boundary is a genuine dependency: wait for everything in flight.
		if _, err := mpi.WaitAll(reqs...); err != nil {
			return fmt.Errorf("collective: nb seg ring step %d: %w", i, err)
		}
		j = jnext
		jnext = (p + jnext - 1) % p
	}
	return nil
}

// BcastScatterRingAllgatherSegNB is the overlap-aware segmented native
// broadcast: binomial scatter followed by the enclosed ring allgather
// pipelined in segSize chunks with pre-posted nonblocking segment
// transfers. segSize <= 0 selects core.DefaultRingSegment.
func BcastScatterRingAllgatherSegNB(c mpi.Comm, buf []byte, root, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return ringAllgatherSegNB(c, buf, root, false, segSize)
}

// BcastScatterRingAllgatherOptSegNB is the overlap-aware segmented tuned
// broadcast: binomial scatter followed by the paper's non-enclosed ring
// allgather pipelined in segSize chunks with pre-posted nonblocking
// segment transfers. segSize <= 0 selects core.DefaultRingSegment.
func BcastScatterRingAllgatherOptSegNB(c mpi.Comm, buf []byte, root, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return ringAllgatherSegNB(c, buf, root, true, segSize)
}
