package collective_test

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/mpi"
)

// The tuned broadcast in three lines: run ranks, fill the root's buffer,
// call the collective.
func ExampleBcastScatterRingAllgatherOpt() {
	err := engine.Run(4, func(c mpi.Comm) error {
		buf := make([]byte, 4)
		if c.Rank() == 0 {
			copy(buf, []byte{10, 20, 30, 40})
		}
		if err := collective.BcastScatterRingAllgatherOpt(c, buf, 0); err != nil {
			return err
		}
		if c.Rank() == 3 {
			fmt.Println("rank 3 received", buf)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// rank 3 received [10 20 30 40]
}

// SelectAlgorithm reproduces MPICH3's dispatch; the tuned ring serves
// the paper's two target cases.
func ExampleSelectAlgorithm() {
	fmt.Println(collective.SelectAlgorithm(1024, 64, true))   // short
	fmt.Println(collective.SelectAlgorithm(65536, 64, true))  // medium pow2
	fmt.Println(collective.SelectAlgorithm(65536, 129, true)) // medium npof2
	fmt.Println(collective.SelectAlgorithm(1<<20, 64, true))  // long
	fmt.Println(collective.SelectAlgorithm(1<<20, 64, false)) // long, native
	// Output:
	// binomial
	// scatter-rdb-allgather
	// scatter-ring-allgather(opt)
	// scatter-ring-allgather(opt)
	// scatter-ring-allgather(native)
}

// Allreduce gives every rank the global sum.
func ExampleAllreduceFloat64() {
	err := engine.Run(5, func(c mpi.Comm) error {
		out := make([]float64, 1)
		if err := collective.AllreduceFloat64(c, []float64{float64(c.Rank())}, out, collective.OpSum); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("sum of ranks:", out[0])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// sum of ranks: 10
}
