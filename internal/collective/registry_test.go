package collective

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/tune"
)

// TestRegistryComplete asserts every broadcast of the paper's family is
// registered under its stable name.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		tune.Binomial, tune.Chain, tune.ScatterRdb,
		tune.RingNative, tune.RingOpt, tune.RingSeg, tune.RingOptSeg,
		tune.RingSegNB, tune.RingOptSegNB,
		tune.SMP, tune.SMPOpt,
	}
	for _, name := range want {
		r, ok := Lookup(name)
		if !ok {
			t.Fatalf("algorithm %q not registered (have %v)", name, Names())
		}
		if r.Run == nil {
			t.Errorf("algorithm %q has nil Run", name)
		}
		if r.Summary == "" {
			t.Errorf("algorithm %q has no summary", name)
		}
	}
	if got := len(Names()); got != len(want) {
		t.Errorf("registry has %d algorithms, want %d: %v", got, len(want), Names())
	}
}

// TestRegistryCapabilities asserts every registered algorithm's
// capability predicate matches its documented constraints.
func TestRegistryCapabilities(t *testing.T) {
	single := func(p, n int) tune.Env { return tune.Env{Bytes: n, Procs: p, NumNodes: 1} }
	multi := func(p, n int) tune.Env { return tune.Env{Bytes: n, Procs: p, NumNodes: 2} }

	cases := []struct {
		algo  string
		env   tune.Env
		match bool
	}{
		// Binomial: no constraints.
		{tune.Binomial, single(1, 0), true},
		{tune.Binomial, single(129, 1<<25), true},
		{tune.Binomial, multi(7, 64), true},
		// Scatter-rdb: power-of-two communicators only.
		{tune.ScatterRdb, single(8, 1<<16), true},
		{tune.ScatterRdb, single(256, 1<<16), true},
		{tune.ScatterRdb, single(10, 1<<16), false},
		{tune.ScatterRdb, single(129, 1<<16), false},
		{tune.ScatterRdb, multi(129, 1<<16), false},
		// The rings and the chain: any communicator, any placement.
		{tune.RingNative, single(1, 0), true},
		{tune.RingNative, multi(129, 1<<20), true},
		{tune.RingOpt, single(10, 1<<20), true},
		{tune.RingOpt, multi(256, 1<<25), true},
		{tune.Chain, single(3, 1<<10), true},
		{tune.Chain, multi(64, 1<<22), true},
		// SMP variants: meaningful only across nodes.
		{tune.SMP, single(16, 1<<20), false},
		{tune.SMP, multi(16, 1<<20), true},
		{tune.SMPOpt, single(16, 1<<20), false},
		{tune.SMPOpt, multi(16, 1<<20), true},
	}
	for _, tc := range cases {
		r, ok := Lookup(tc.algo)
		if !ok {
			t.Fatalf("algorithm %q not registered", tc.algo)
		}
		if got := r.Caps.Match(tc.env); got != tc.match {
			t.Errorf("%s.Caps.Match(%+v) = %v want %v", tc.algo, tc.env, got, tc.match)
		}
	}

	// Structural expectations of the documented constraints.
	if r, _ := Lookup(tune.ScatterRdb); !r.Caps.Pow2Only {
		t.Error("scatter-rdb must be Pow2Only")
	}
	for _, name := range []string{tune.Chain, tune.RingSeg, tune.RingOptSeg} {
		if r, _ := Lookup(name); !r.Caps.Segmented {
			t.Errorf("%s must be Segmented", name)
		}
	}
	for _, name := range []string{tune.SMP, tune.SMPOpt} {
		if r, _ := Lookup(name); !r.Caps.MultiNodeOnly {
			t.Errorf("%s must be MultiNodeOnly", name)
		}
	}
}

// TestDefaultTunerGolden proves tune.MPICH3 — the tuner behind Bcast and
// BcastOpt — reproduces SelectAlgorithm bit-for-bit across a grid of
// (n, p, tuned) values, including every threshold seam.
func TestDefaultTunerGolden(t *testing.T) {
	sizes := []int{
		0, 1, 1024,
		BcastShortMsgSize - 1, BcastShortMsgSize, BcastShortMsgSize + 1,
		1 << 16, 1 << 18,
		BcastLongMsgSize - 1, BcastLongMsgSize, BcastLongMsgSize + 1,
		1 << 20, 1 << 25,
	}
	procs := []int{1, 2, 3, 4, 7, 8, 9, 10, 16, 17, 64, 100, 128, 129, 256, 257}
	for _, tuned := range []bool{false, true} {
		tuner := tune.MPICH3{Tuned: tuned}
		for _, n := range sizes {
			for _, p := range procs {
				want := SelectAlgorithm(n, p, tuned).Name()
				// The default dispatch must not depend on topology: check
				// both single- and multi-node environments.
				for _, nodes := range []int{1, 4} {
					d := tuner.Decide(tune.Env{Bytes: n, Procs: p, NumNodes: nodes})
					if d.Algorithm != want {
						t.Fatalf("MPICH3{Tuned:%v}.Decide(n=%d, p=%d, nodes=%d) = %q, SelectAlgorithm says %q",
							tuned, n, p, nodes, d.Algorithm, want)
					}
					if d.SegSize != 0 {
						t.Fatalf("default tuner must not set SegSize, got %d", d.SegSize)
					}
				}
			}
		}
	}
}

// TestRunDecisionExecutesEveryAlgorithm broadcasts through RunDecision
// for every registered algorithm in an environment its capabilities
// admit, checking payload delivery on all ranks.
func TestRunDecisionExecutesEveryAlgorithm(t *testing.T) {
	const p, n, root = 8, 4096, 3
	topo := topology.Blocked(p, 4) // 2 nodes: admits the SMP variants
	want := pattern(n)
	for _, r := range Algorithms() {
		d := tune.Decision{Algorithm: r.Name}
		if r.Caps.Segmented {
			d.SegSize = 512
		}
		err := engine.RunWith(engine.Options{NP: p, Topology: topo}, func(c mpi.Comm) error {
			buf := make([]byte, n)
			if c.Rank() == root {
				copy(buf, want)
			}
			if err := RunDecision(c, buf, root, d); err != nil {
				return err
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("rank %d: buffer mismatch", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Errorf("RunDecision(%q): %v", r.Name, err)
		}
	}
}

// TestRunDecisionRejects covers the failure modes a bad tuning table can
// trigger: unknown names and capability mismatches.
func TestRunDecisionRejects(t *testing.T) {
	err := engine.Run(6, func(c mpi.Comm) error {
		if err := RunDecision(c, make([]byte, 64), 0, tune.Decision{Algorithm: "no-such-bcast"}); err == nil ||
			!strings.Contains(err.Error(), "unknown algorithm") {
			return fmt.Errorf("unknown algorithm: got %v", err)
		}
		// scatter-rdb on 6 ranks violates Pow2Only.
		if err := RunDecision(c, make([]byte, 64), 0, tune.Decision{Algorithm: tune.ScatterRdb}); err == nil ||
			!strings.Contains(err.Error(), "cannot run") {
			return fmt.Errorf("capability mismatch: got %v", err)
		}
		// smp on a single node violates MultiNodeOnly.
		if err := RunDecision(c, make([]byte, 64), 0, tune.Decision{Algorithm: tune.SMP}); err == nil ||
			!strings.Contains(err.Error(), "cannot run") {
			return fmt.Errorf("smp on one node: got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBcastWithTableTuner drives BcastWith through a hand-written tuning
// table, checking the table's decision (not the default dispatch) runs.
func TestBcastWithTableTuner(t *testing.T) {
	table := &tune.Table{
		Name: "test",
		Rules: []tune.Rule{
			// Everything on 5 ranks goes through the chain with 128-byte
			// segments — a selection MPICH3's dispatch would never make.
			{MinProcs: 5, MaxProcs: 5, Decision: tune.Decision{Algorithm: tune.Chain, SegSize: 128}},
		},
	}
	tuner := tune.TableTuner{Table: table, Fallback: tune.MPICH3{}}
	const n, root = 2048, 1
	want := pattern(n)
	err := engine.Run(5, func(c mpi.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == root {
			copy(buf, want)
		}
		if err := BcastWith(c, buf, root, tuner); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: buffer mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegisterRejects covers registry hygiene: empty names, nil Run,
// duplicates.
func TestRegisterRejects(t *testing.T) {
	if err := Register(Registration{Name: ""}); err == nil {
		t.Error("empty name must fail")
	}
	if err := Register(Registration{Name: "x"}); err == nil {
		t.Error("nil Run must fail")
	}
	dummy := func(mpi.Comm, []byte, int, int) error { return nil }
	if err := Register(Registration{Name: tune.Binomial, Run: dummy}); err == nil {
		t.Error("duplicate name must fail")
	}
}

// TestCandidatesCoverStaticAlgorithms asserts the auto-tuner sees exactly
// the schedule-static registry entries.
func TestCandidatesCoverStaticAlgorithms(t *testing.T) {
	got := map[string]bool{}
	for _, c := range Candidates() {
		got[c.Name] = true
		if c.Program == nil {
			t.Errorf("candidate %q has nil Program", c.Name)
		}
		if c.Applies == nil {
			t.Errorf("candidate %q has nil Applies", c.Name)
		}
	}
	for _, r := range Algorithms() {
		if (r.Program != nil) != got[r.Name] {
			t.Errorf("candidate coverage mismatch for %q (static=%v, candidate=%v)",
				r.Name, r.Program != nil, got[r.Name])
		}
	}
	// The Split-based SMP broadcasts have no static schedule.
	if got[tune.SMP] || got[tune.SMPOpt] {
		t.Error("smp variants must not be auto-tuner candidates")
	}
}

// TestIndexOf pins the helper behind bcastSMP's local-root resolution,
// including the -1 miss the defensive guard in bcastSMP now catches
// (topology.Map is self-consistent today, so the guard is unreachable
// through the public API; the helper's miss behavior is what it relies
// on).
func TestIndexOf(t *testing.T) {
	xs := []int{3, 7, 11}
	for i, v := range xs {
		if got := indexOf(xs, v); got != i {
			t.Errorf("indexOf(%v, %d) = %d want %d", xs, v, got, i)
		}
	}
	if got := indexOf(xs, 5); got != -1 {
		t.Errorf("indexOf miss = %d want -1", got)
	}
	if got := indexOf(nil, 0); got != -1 {
		t.Errorf("indexOf(nil) = %d want -1", got)
	}
}
