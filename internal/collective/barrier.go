package collective

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

// Barrier synchronizes all ranks of the communicator using the
// dissemination algorithm: ceil(log2 P) rounds in which rank r signals
// (r + 2^k) mod P and waits for (r - 2^k) mod P. The benchmark protocol
// of Section V ("all processes are synchronized with a MPI barrier before
// reaching the broadcast interface") uses it.
func Barrier(c mpi.Comm) error {
	ring, start := spanStart(c)
	if err := barrier(c); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opBarrier, "", 0, 0, start, time.Since(start))
	}
	return nil
}

func barrier(c mpi.Comm) error {
	p, rank := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	for mask := 1; mask < p; mask <<= 1 {
		dst := (rank + mask) % p
		src := (rank - mask + p) % p
		if _, err := c.Sendrecv(nil, dst, core.TagBarrier, nil, src, core.TagBarrier); err != nil {
			return fmt.Errorf("collective: barrier: %w", err)
		}
	}
	return nil
}
