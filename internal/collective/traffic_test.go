package collective

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
)

// measureBcast runs algo under the trace collector and returns the stats.
func measureBcast(t *testing.T, algo bcastFn, opts engine.Options, root, n int) trace.Stats {
	t.Helper()
	col := trace.NewCollector()
	err := engine.RunWith(opts, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		buf := make([]byte, n)
		if tc.Rank() == root {
			copy(buf, pattern(n))
		}
		return algo(tc, buf, root)
	})
	if err != nil {
		t.Fatalf("measure p=%d root=%d n=%d: %v", opts.NP, root, n, err)
	}
	return col.Stats()
}

// TestMeasuredTrafficMatchesAnalyticModel is the central cross-validation:
// the hand-written collectives (ports of the paper's pseudo-code) must
// produce exactly the per-phase message and byte counts that the analytic
// model in internal/core predicts — for both ring variants, across
// process counts, roots, and uneven chunk sizes.
func TestMeasuredTrafficMatchesAnalyticModel(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8, 9, 10, 16, 17} {
		for _, root := range []int{0, p - 1} {
			for _, n := range []int{p, 8*p + 3, 1 << 10} {
				natStats := measureBcast(t, BcastScatterRingAllgather, engine.Options{NP: p}, root, n)
				optStats := measureBcast(t, BcastScatterRingAllgatherOpt, engine.Options{NP: p}, root, n)

				scat := core.ScatterTraffic(p, n)
				nat := core.RingTrafficNative(p, n)
				opt := core.RingTrafficTuned(p, n)

				if got := natStats.ByTag[core.TagScatter]; got.Messages != int64(scat.Messages) || got.Bytes != int64(scat.Bytes) {
					t.Fatalf("p=%d root=%d n=%d: scatter traffic %+v want %+v", p, root, n, got, scat)
				}
				if got := natStats.ByTag[core.TagRing]; got.Messages != int64(nat.Messages) || got.Bytes != int64(nat.Bytes) {
					t.Fatalf("p=%d root=%d n=%d: native ring traffic %+v want %+v", p, root, n, got, nat)
				}
				if got := optStats.ByTag[core.TagRing]; got.Messages != int64(opt.Messages) || got.Bytes != int64(opt.Bytes) {
					t.Fatalf("p=%d root=%d n=%d: tuned ring traffic %+v want %+v", p, root, n, got, opt)
				}
				// Every message sent was received.
				if natStats.Recvs != natStats.Total.Messages {
					t.Fatalf("p=%d root=%d n=%d: native recvs %d != sends %d", p, root, n, natStats.Recvs, natStats.Total.Messages)
				}
				if optStats.Recvs != optStats.Total.Messages {
					t.Fatalf("p=%d root=%d n=%d: opt recvs %d != sends %d", p, root, n, optStats.Recvs, optStats.Total.Messages)
				}
			}
		}
	}
}

// TestMeasuredPaperCounts reproduces the paper's Section IV counts with
// the real executable collectives: P=8 ring 56 vs 44, P=10 ring 90 vs 75.
func TestMeasuredPaperCounts(t *testing.T) {
	cases := []struct {
		p, native, tuned int
	}{
		{8, 56, 44},
		{10, 90, 75},
	}
	for _, tc := range cases {
		n := 64 * tc.p
		nat := measureBcast(t, BcastScatterRingAllgather, engine.Options{NP: tc.p}, 0, n)
		opt := measureBcast(t, BcastScatterRingAllgatherOpt, engine.Options{NP: tc.p}, 0, n)
		if got := nat.ByTag[core.TagRing].Messages; got != int64(tc.native) {
			t.Errorf("P=%d native ring messages = %d want %d", tc.p, got, tc.native)
		}
		if got := opt.ByTag[core.TagRing].Messages; got != int64(tc.tuned) {
			t.Errorf("P=%d tuned ring messages = %d want %d", tc.p, got, tc.tuned)
		}
	}
}

// TestIntraInterSplitOnBlockedPlacement checks the topology
// classification: with Blocked(8,4) every ring crossing between ranks 3/4
// and 7/0 is inter-node, the rest intra-node; the tuned ring must save
// messages overall.
func TestIntraInterSplitOnBlockedPlacement(t *testing.T) {
	const p, n = 8, 1 << 10
	topo := topology.Blocked(p, 4)
	nat := measureBcast(t, BcastScatterRingAllgather, engine.Options{NP: p, Topology: topo}, 0, n)
	opt := measureBcast(t, BcastScatterRingAllgatherOpt, engine.Options{NP: p, Topology: topo}, 0, n)

	if nat.Intra.Messages+nat.Inter.Messages != nat.Total.Messages {
		t.Fatalf("classification does not partition: %+v", nat)
	}
	if nat.Inter.Messages == 0 || nat.Intra.Messages == 0 {
		t.Fatalf("blocked placement must mix levels: %+v", nat)
	}
	saved := nat.Total.Messages - opt.Total.Messages
	if saved != int64(core.TunedSavedMessages(p)) {
		t.Fatalf("saved %d messages, want %d", saved, core.TunedSavedMessages(p))
	}
	// The ring cut crossings: ranks 3->4 and 7->0 cross nodes in each
	// direction... only ring and scatter messages between the two halves
	// are inter-node. Sanity: inter < intra for this placement.
	if nat.Inter.Messages >= nat.Intra.Messages {
		t.Fatalf("expected mostly intra-node traffic: %+v", nat)
	}
}

// TestSMPTrafficConcentratesInterNodeOnLeaders: in the SMP variant, only
// the leaders' ring runs inter-node; everything else must be intra-node.
func TestSMPTrafficConcentratesInterNodeOnLeaders(t *testing.T) {
	const p, n = 12, 1 << 10
	topo := topology.Blocked(p, 4) // 3 nodes, leaders 0, 4, 8
	smp := measureBcast(t, BcastSMP, engine.Options{NP: p, Topology: topo}, 0, n)
	flat := measureBcast(t, BcastScatterRingAllgather, engine.Options{NP: p, Topology: topo}, 0, n)

	// All SMP inter-node traffic comes from the 3-leader ring phase:
	// scatter 2 msgs + enclosed ring 3*2 = 6 msgs -> 8 inter messages.
	if smp.Inter.Messages != 8 {
		t.Fatalf("smp inter messages = %d want 8 (%s)", smp.Inter.Messages, smp)
	}
	// The flat ring sends far more across nodes than the SMP variant.
	if flat.Inter.Messages <= smp.Inter.Messages {
		t.Fatalf("flat ring should cross nodes more: flat %d vs smp %d",
			flat.Inter.Messages, smp.Inter.Messages)
	}
	// Binomial phases are tagged TagBinomial and must all be intra-node.
	binom := smp.ByTag[core.TagBinomial]
	if binom.Messages == 0 {
		t.Fatalf("smp run recorded no binomial traffic: %s", smp)
	}
}

// TestTunedNeverSendsMore: across a grid, the tuned variant's total is
// never above the native's, and equals it minus the closed-form savings.
func TestTunedNeverSendsMore(t *testing.T) {
	for _, p := range []int{2, 4, 6, 11, 13} {
		n := 16 * p
		nat := measureBcast(t, BcastScatterRingAllgather, engine.Options{NP: p}, 0, n)
		opt := measureBcast(t, BcastScatterRingAllgatherOpt, engine.Options{NP: p}, 0, n)
		want := int64(core.TunedSavedMessages(p))
		if nat.Total.Messages-opt.Total.Messages != want {
			t.Fatalf("p=%d: savings %d want %d", p, nat.Total.Messages-opt.Total.Messages, want)
		}
		if opt.Total.Bytes > nat.Total.Bytes {
			t.Fatalf("p=%d: tuned bytes %d > native %d", p, opt.Total.Bytes, nat.Total.Bytes)
		}
	}
}

// TestOptMovesFewerInterNodeBytes asserts the paper's headline invariant
// as a regression test: at every long-message grid point, on every
// multi-node placement, the tuned broadcast — and its segmented variant —
// moves strictly fewer inter-node bytes (and messages) than the native
// ring. This is the bandwidth saving the paper claims, measured on real
// traced execution rather than the analytic model.
func TestOptMovesFewerInterNodeBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("moves megabytes per grid point")
	}
	const seg = 48 << 10 // below the chunk size at every grid point
	optSeg := func(c mpi.Comm, buf []byte, root int) error {
		return BcastScatterRingAllgatherOptSeg(c, buf, root, seg)
	}
	for _, p := range []int{8, 10, 12} {
		for _, topo := range []*topology.Map{
			topology.Blocked(p, 4),
			topology.RoundRobin(p, 4),
		} {
			for _, n := range []int{512 << 10, 1 << 20} { // the paper's long-message regime
				opts := engine.Options{NP: p, Topology: topo}
				nat := measureBcast(t, BcastScatterRingAllgather, opts, 0, n)
				opt := measureBcast(t, BcastScatterRingAllgatherOpt, opts, 0, n)
				optS := measureBcast(t, optSeg, opts, 0, n)

				if opt.Inter.Bytes >= nat.Inter.Bytes {
					t.Errorf("%s n=%d: opt inter bytes %d >= native %d", topo, n, opt.Inter.Bytes, nat.Inter.Bytes)
				}
				if optS.Inter.Bytes >= nat.Inter.Bytes {
					t.Errorf("%s n=%d: opt-seg inter bytes %d >= native %d", topo, n, optS.Inter.Bytes, nat.Inter.Bytes)
				}
				if opt.Inter.Messages >= nat.Inter.Messages {
					t.Errorf("%s n=%d: opt inter messages %d >= native %d", topo, n, opt.Inter.Messages, nat.Inter.Messages)
				}
				// The segmented variant re-partitions messages but must move
				// exactly the tuned ring's byte volume, inter and intra.
				if optS.Inter.Bytes != opt.Inter.Bytes || optS.Intra.Bytes != opt.Intra.Bytes {
					t.Errorf("%s n=%d: opt-seg bytes inter/intra %d/%d != opt %d/%d",
						topo, n, optS.Inter.Bytes, optS.Intra.Bytes, opt.Inter.Bytes, opt.Intra.Bytes)
				}
			}
		}
	}
}

// TestSegCollectivesMatchSchedules cross-validates the hand-written
// segmented collectives against their generated schedules: the traced
// message and byte totals of an execution must equal the program stats,
// for both variants, across segment sizes that split chunks unevenly.
func TestSegCollectivesMatchSchedules(t *testing.T) {
	for _, p := range []int{2, 5, 8, 10, 13} {
		for _, seg := range []int{1, 7, 64} {
			n := 32*p + 5
			for _, root := range []int{0, p - 1} {
				natStats := measureBcast(t, func(c mpi.Comm, buf []byte, r int) error {
					return BcastScatterRingAllgatherSeg(c, buf, r, seg)
				}, engine.Options{NP: p}, root, n)
				natProg := core.BcastNativeSegProgram(p, root, n, seg).Stats()
				if natStats.Total.Messages != int64(natProg.Messages) || natStats.Total.Bytes != int64(natProg.Bytes) {
					t.Fatalf("p=%d root=%d seg=%d: native-seg traced %d/%d != schedule %d/%d",
						p, root, seg, natStats.Total.Messages, natStats.Total.Bytes, natProg.Messages, natProg.Bytes)
				}
				optStats := measureBcast(t, func(c mpi.Comm, buf []byte, r int) error {
					return BcastScatterRingAllgatherOptSeg(c, buf, r, seg)
				}, engine.Options{NP: p}, root, n)
				optProg := core.BcastOptSegProgram(p, root, n, seg).Stats()
				if optStats.Total.Messages != int64(optProg.Messages) || optStats.Total.Bytes != int64(optProg.Bytes) {
					t.Fatalf("p=%d root=%d seg=%d: opt-seg traced %d/%d != schedule %d/%d",
						p, root, seg, optStats.Total.Messages, optStats.Total.Bytes, optProg.Messages, optProg.Bytes)
				}
			}
		}
	}
}

// TestNBRingIdenticalTraffic: the nonblocking tuned ring transfers
// exactly the blocking tuned ring's messages and bytes.
func TestNBRingIdenticalTraffic(t *testing.T) {
	for _, p := range []int{2, 8, 10, 13} {
		n := 32 * p
		blocking := measureBcast(t, BcastScatterRingAllgatherOpt, engine.Options{NP: p}, 0, n)
		nb := measureBcast(t, BcastScatterRingAllgatherOptNB, engine.Options{NP: p}, 0, n)
		if blocking.Total != nb.Total {
			t.Fatalf("p=%d: nb traffic %+v != blocking %+v", p, nb.Total, blocking.Total)
		}
		if blocking.ByTag[core.TagRing] != nb.ByTag[core.TagRing] {
			t.Fatalf("p=%d: nb ring traffic differs", p)
		}
	}
}
