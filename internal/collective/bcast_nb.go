package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

// BcastScatterRingAllgatherOptNB is the tuned broadcast with its ring
// phase expressed through nonblocking operations: each step posts the
// receive first, starts the send, and waits for both — the way MPICH
// implements MPI_Sendrecv internally. It transfers exactly the same
// messages as BcastScatterRingAllgatherOpt (tests assert identical
// traffic) and exists both as an API demonstration and as the natural
// starting point for overlap experiments (pre-posting step i+1's receive
// during step i).
func BcastScatterRingAllgatherOptNB(c mpi.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p, rank := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}

	l := core.NewLayout(len(buf), p)
	left := (p + rank - 1) % p
	right := (rank + 1) % p
	sf := core.ComputeStepFlag(core.RelRank(rank, root, p), p)

	j, jnext := rank, left
	for i := 1; i < p; i++ {
		relJ := core.RelRank(j, root, p)
		relJnext := core.RelRank(jnext, root, p)
		sendBuf := buf[l.Disp(relJ) : l.Disp(relJ)+l.Count(relJ)]
		recvBuf := buf[l.Disp(relJnext) : l.Disp(relJnext)+l.Count(relJnext)]

		var reqs []mpi.Request
		doRecv := sf.Step <= p-i || sf.RecvOnly
		doSend := sf.Step <= p-i || !sf.RecvOnly
		if doRecv {
			rreq, err := c.Irecv(recvBuf, left, core.TagRing)
			if err != nil {
				return fmt.Errorf("collective: nb ring step %d irecv: %w", i, err)
			}
			reqs = append(reqs, rreq)
		}
		if doSend {
			sreq, err := c.Isend(sendBuf, right, core.TagRing)
			if err != nil {
				return fmt.Errorf("collective: nb ring step %d isend: %w", i, err)
			}
			reqs = append(reqs, sreq)
		}
		if _, err := mpi.WaitAll(reqs...); err != nil {
			return fmt.Errorf("collective: nb ring step %d: %w", i, err)
		}
		j = jnext
		jnext = (p + jnext - 1) % p
	}
	return nil
}
