package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/tune"
)

func checkRoot(c mpi.Comm, root int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("collective: %w: root %d (size %d)", mpi.ErrRank, root, c.Size())
	}
	return nil
}

// BcastBinomial broadcasts buf from root along a binomial tree, sending
// the whole buffer in each message — MPICH's short-message algorithm.
func BcastBinomial(c mpi.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p, rank := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	rel := core.RelRank(rank, root, p)

	recvMask := core.CeilPow2(p)
	if rel != 0 {
		recvMask = rel & (-rel)
		src := core.AbsRank(rel-recvMask, root, p)
		if _, err := c.Recv(buf, src, core.TagBinomial); err != nil {
			return fmt.Errorf("collective: binomial bcast recv: %w", err)
		}
	}
	for mask := recvMask >> 1; mask > 0; mask >>= 1 {
		child := rel + mask
		if child >= p {
			continue
		}
		dst := core.AbsRank(child, root, p)
		if err := c.Send(buf, dst, core.TagBinomial); err != nil {
			return fmt.Errorf("collective: binomial bcast send: %w", err)
		}
	}
	return nil
}

// scatterForBcast is the binomial scatter phase shared by the
// scatter-allgather broadcasts: a direct port of MPICH's
// scatter_for_bcast. On return, the buffer of relative rank rel holds
// valid data for chunks [rel, rel+Extent(rel)) (its own chunk plus the
// subtree it forwarded).
func scatterForBcast(c mpi.Comm, buf []byte, root int) error {
	p, rank := c.Size(), c.Rank()
	n := len(buf)
	l := core.NewLayout(n, p)
	rel := core.RelRank(rank, root, p)

	curr := 0
	if rank == root {
		curr = n
	}
	recvMask := core.CeilPow2(p)
	if rel != 0 {
		recvMask = rel & (-rel)
		recvSize := n - rel*l.ScatterSize
		if recvSize <= 0 {
			curr = 0 // uneven division: nothing for this subtree
		} else {
			src := core.AbsRank(rel-recvMask, root, p)
			// Post the whole remaining range; the parent sends only the
			// subtree's bytes and the status reports the actual count.
			st, err := c.Recv(buf[rel*l.ScatterSize:n], src, core.TagScatter)
			if err != nil {
				return fmt.Errorf("collective: scatter recv: %w", err)
			}
			curr = st.Count
		}
	}
	for mask := recvMask >> 1; mask > 0; mask >>= 1 {
		child := rel + mask
		if child >= p {
			continue
		}
		sendSize := curr - l.ScatterSize*mask
		if sendSize <= 0 {
			continue
		}
		dst := core.AbsRank(child, root, p)
		off := l.ScatterSize * child
		if err := c.Send(buf[off:off+sendSize], dst, core.TagScatter); err != nil {
			return fmt.Errorf("collective: scatter send: %w", err)
		}
		curr -= sendSize
	}
	return nil
}

// ringAllgather runs the P-1-step ring allgather phase. With tuned=false
// it is the enclosed ring of MPICH (the paper's Figure 3); with
// tuned=true it is the paper's non-enclosed ring (Listing 1): each rank
// computes (step, flag) and degenerates to send-only or receive-only for
// its final step-1 iterations.
func ringAllgather(c mpi.Comm, buf []byte, root int, tuned bool) error {
	p, rank := c.Size(), c.Rank()
	l := core.NewLayout(len(buf), p)
	left := (p + rank - 1) % p
	right := (rank + 1) % p

	var sf core.StepFlag
	if tuned {
		sf = core.ComputeStepFlag(core.RelRank(rank, root, p), p)
	}

	j, jnext := rank, left
	for i := 1; i < p; i++ {
		relJ := core.RelRank(j, root, p)
		relJnext := core.RelRank(jnext, root, p)
		sendBuf := buf[l.Disp(relJ) : l.Disp(relJ)+l.Count(relJ)]
		recvBuf := buf[l.Disp(relJnext) : l.Disp(relJnext)+l.Count(relJnext)]

		switch {
		case !tuned || sf.Step <= p-i:
			if _, err := c.Sendrecv(sendBuf, right, core.TagRing, recvBuf, left, core.TagRing); err != nil {
				return fmt.Errorf("collective: ring step %d sendrecv: %w", i, err)
			}
		case sf.RecvOnly:
			if _, err := c.Recv(recvBuf, left, core.TagRing); err != nil {
				return fmt.Errorf("collective: ring step %d recv: %w", i, err)
			}
		default:
			if err := c.Send(sendBuf, right, core.TagRing); err != nil {
				return fmt.Errorf("collective: ring step %d send: %w", i, err)
			}
		}
		j = jnext
		jnext = (p + jnext - 1) % p
	}
	return nil
}

// BcastScatterRingAllgather is MPI_Bcast_native: MPICH3's long-message
// broadcast, a binomial scatter followed by the enclosed ring allgather.
func BcastScatterRingAllgather(c mpi.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return ringAllgather(c, buf, root, false)
}

// BcastScatterRingAllgatherOpt is MPI_Bcast_opt: the paper's tuned
// broadcast, a binomial scatter followed by the non-enclosed ring
// allgather that skips transfers of chunks the receiver already owns.
func BcastScatterRingAllgatherOpt(c mpi.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return ringAllgather(c, buf, root, true)
}

// rdbAllgather is the recursive-doubling allgather phase (power-of-two
// communicators only): round k exchanges the currently owned 2^k-chunk
// block with the partner rel XOR 2^k.
func rdbAllgather(c mpi.Comm, buf []byte, root int) error {
	p, rank := c.Size(), c.Rank()
	l := core.NewLayout(len(buf), p)
	rel := core.RelRank(rank, root, p)
	for i, mask := 0, 1; mask < p; i, mask = i+1, mask<<1 {
		relDst := rel ^ mask
		dst := core.AbsRank(relDst, root, p)
		myRoot := rel &^ (mask - 1)
		dstRoot := relDst &^ (mask - 1)
		sendBuf := buf[l.Disp(myRoot):l.Disp(myRoot+mask)]
		recvBuf := buf[l.Disp(dstRoot):l.Disp(dstRoot+mask)]
		if _, err := c.Sendrecv(sendBuf, dst, core.TagRdb, recvBuf, dst, core.TagRdb); err != nil {
			return fmt.Errorf("collective: rdb round %d: %w", i, err)
		}
	}
	return nil
}

// BcastScatterRdbAllgather is MPICH3's medium-message power-of-two
// broadcast: binomial scatter followed by recursive-doubling allgather.
// The communicator size must be a power of two.
func BcastScatterRdbAllgather(c mpi.Comm, buf []byte, root int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	if !core.IsPow2(p) {
		return fmt.Errorf("collective: scatter-rdb-allgather requires a power-of-two communicator, got %d", p)
	}
	mpi.AdvanceTagStream(c)
	if err := scatterForBcast(c, buf, root); err != nil {
		return err
	}
	return rdbAllgather(c, buf, root)
}

// Algorithm identifies which broadcast algorithm the dispatcher selected.
// It predates the named registry (registry.go) and remains as the compact
// identifier of MPICH3's own dispatch family; Name maps it onto the
// registry namespace.
type Algorithm int

// Broadcast algorithm identifiers, in dispatch order.
const (
	AlgBinomial Algorithm = iota
	AlgScatterRdbAllgather
	AlgScatterRingAllgather
	AlgScatterRingAllgatherOpt
)

// String names the algorithm like the paper does.
func (a Algorithm) String() string {
	switch a {
	case AlgBinomial:
		return "binomial"
	case AlgScatterRdbAllgather:
		return "scatter-rdb-allgather"
	case AlgScatterRingAllgather:
		return "scatter-ring-allgather(native)"
	case AlgScatterRingAllgatherOpt:
		return "scatter-ring-allgather(opt)"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Name returns the algorithm's registry name (see registry.go and
// internal/tune); the default tuner's decisions are golden-tested to be
// identical to SelectAlgorithm through this mapping.
func (a Algorithm) Name() string {
	switch a {
	case AlgBinomial:
		return tune.Binomial
	case AlgScatterRdbAllgather:
		return tune.ScatterRdb
	case AlgScatterRingAllgather:
		return tune.RingNative
	case AlgScatterRingAllgatherOpt:
		return tune.RingOpt
	default:
		return fmt.Sprintf("algorithm-%d", int(a))
	}
}

// SelectAlgorithm reproduces MPICH3's broadcast dispatch for an n-byte
// message over p ranks. With tuned=true, the long-message/mmsg-npof2 ring
// path selects the paper's optimized ring.
//
// It is the golden reference for tune.MPICH3, the default Tuner that
// Bcast and BcastOpt dispatch through; a test asserts the two agree on
// every (n, p, tuned) input.
func SelectAlgorithm(n, p int, tuned bool) Algorithm {
	switch {
	case n < BcastShortMsgSize || p < BcastMinProcs:
		return AlgBinomial
	case n < BcastLongMsgSize && core.IsPow2(p):
		return AlgScatterRdbAllgather
	case tuned:
		return AlgScatterRingAllgatherOpt
	default:
		return AlgScatterRingAllgather
	}
}

// Bcast broadcasts buf from root using MPICH3's native algorithm
// selection (short: binomial; medium power-of-two: scatter + recursive
// doubling; long or medium non-power-of-two: scatter + enclosed ring),
// dispatched through the registry by the default tuner. It is Broadcast
// with zero Options.
func Bcast(c mpi.Comm, buf []byte, root int) error {
	return Broadcast(c, buf, root, Options{})
}

// BcastOpt is Bcast with the paper's tuned ring allgather on the
// long-message and medium-non-power-of-two paths.
func BcastOpt(c mpi.Comm, buf []byte, root int) error {
	return Broadcast(c, buf, root, Options{Tuner: tune.MPICH3{Tuned: true}})
}
