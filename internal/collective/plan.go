package collective

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/tune"
)

// Plan is a pre-resolved broadcast: the tuner decision, the registry
// entry it names and (for static algorithms) the communication
// schedule, all computed and validated once so repeated executions skip
// selection entirely. It is the engine-side half of the facade's
// persistent handles: Broadcast does envOf + Decide + Lookup + Caps
// per call; a Plan does them at build time and Execute goes straight
// to the registered implementation.
//
// A Plan belongs to one rank of one communicator group (every rank of
// a persistent collective builds its own), is not safe for concurrent
// use, and is pinned to the (byte count, root) it was built with until
// Rebind.
type Plan struct {
	n    int
	root int
	opts Options
	dec  tune.Decision
	reg  Registration
	prog *sched.Program // nil for schedule-less (Split-based) algorithms

	// cache memoizes the tuner decision across Rebinds keyed on the full
	// environment: double-buffered serving (two buffers, same length)
	// re-resolves for free, while a length change genuinely re-decides.
	cache tune.CachedDecision
}

// NewPlan resolves o against (c, n, root) and validates the outcome the
// same way RunDecision would, so an Init-time Plan failure is exactly
// the failure the equivalent Broadcast call would have produced — just
// earlier, before anything is in flight.
func NewPlan(c mpi.Comm, n, root int, o Options) (*Plan, error) {
	if err := checkRoot(c, root); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("collective: plan: negative length %d", n)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{root: root, opts: o}
	if err := p.resolve(c, n); err != nil {
		return nil, err
	}
	return p, nil
}

// resolve decides and validates for a byte count, caching the schedule
// of static algorithms for introspection.
func (p *Plan) resolve(c mpi.Comm, n int) error {
	e := envOf(c, n)
	d := p.cache.Get(e, p.opts.Decide)
	r, ok := Lookup(d.Algorithm)
	if !ok {
		return fmt.Errorf("collective: plan: unknown algorithm %q (registered: %v)", d.Algorithm, Names())
	}
	if d.SegSize < 0 {
		return fmt.Errorf("collective: plan: negative segment size %d for %q", d.SegSize, d.Algorithm)
	}
	if !r.Caps.Match(e) {
		return fmt.Errorf("collective: plan: algorithm %q cannot run with %d bytes on %d ranks over %d node(s)",
			d.Algorithm, e.Bytes, e.Procs, e.NumNodes)
	}
	var prog *sched.Program
	if r.Program != nil {
		pr, err := r.Program(c.Size(), p.root, n, d.SegSize)
		if err != nil {
			return fmt.Errorf("collective: plan: schedule for %q: %w", d.Algorithm, err)
		}
		prog = pr
	}
	p.n, p.dec, p.reg, p.prog = n, d, r, prog
	return nil
}

// Rebind re-resolves the plan for a new byte count (a new buffer of the
// same length is free: the memoized decision wins an equality check and
// nothing else changes).
func (p *Plan) Rebind(c mpi.Comm, n int) error {
	if n == p.n {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("collective: plan: negative length %d", n)
	}
	return p.resolve(c, n)
}

// SetOptions replaces the selection options and invalidates the
// decision memo — an override must force a fresh decision even for an
// unchanged environment.
func (p *Plan) SetOptions(c mpi.Comm, o Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	p.opts = o
	p.cache.Invalidate()
	return p.resolve(c, p.n)
}

// Execute runs the planned broadcast on c. The buffer must have the
// planned length (use Rebind for a different size). It dispatches
// through the registration's Run — the exact code path Broadcast takes
// after selection — so a plan execution is byte- and traffic-identical
// to the equivalent per-call broadcast by construction (including the
// overlap behavior of the nonblocking variants, which a generic
// schedule interpreter would lose). Like RunDecision, it emits an
// operation span on success when the communicator carries a span ring,
// so persistent Start/Wait rounds appear on the same timeline as
// per-call broadcasts — and stays allocation-free doing it.
func (p *Plan) Execute(c mpi.Comm, buf []byte) error {
	if len(buf) != p.n {
		return fmt.Errorf("collective: plan executed with %d bytes, built for %d (Rebind first)", len(buf), p.n)
	}
	ring, start := spanStart(c)
	if err := p.reg.Run(c, buf, p.root, p.dec.SegSize); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opBcast, p.dec.Algorithm, p.dec.SegSize, p.n, start, time.Since(start))
	}
	return nil
}

// Bytes returns the byte count the plan is currently bound to.
func (p *Plan) Bytes() int { return p.n }

// Root returns the broadcast root the plan was built for.
func (p *Plan) Root() int { return p.root }

// Decision returns the resolved tuner decision.
func (p *Plan) Decision() tune.Decision { return p.dec }

// Program returns the cached static schedule, or nil when the planned
// algorithm's communication pattern depends on runtime communicator
// state.
func (p *Plan) Program() *sched.Program { return p.prog }
