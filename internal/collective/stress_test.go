package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// TestRandomCollectiveSequences runs randomized but rank-agreed sequences
// of collectives (mixed algorithms, roots and sizes, with interleaved
// barriers) and checks every broadcast postcondition. Catches cross-
// collective interference (tag leakage, stale unexpected messages,
// ordering bugs).
func TestRandomCollectiveSequences(t *testing.T) {
	algos := []bcastFn{
		BcastBinomial,
		BcastScatterRingAllgather,
		BcastScatterRingAllgatherOpt,
		Bcast,
		BcastOpt,
	}
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(11)
		steps := 8
		type step struct {
			algo  int
			root  int
			n     int
			barry bool
		}
		script := make([]step, steps)
		for i := range script {
			script[i] = step{
				algo:  rng.Intn(len(algos)),
				root:  rng.Intn(p),
				n:     rng.Intn(2000),
				barry: rng.Intn(3) == 0,
			}
		}
		err := engine.RunWith(engine.Options{NP: p, Timeout: time.Minute}, func(c mpi.Comm) error {
			for i, s := range script {
				want := pattern(s.n)
				buf := make([]byte, s.n)
				if c.Rank() == s.root {
					copy(buf, want)
				}
				if err := algos[s.algo](c, buf, s.root); err != nil {
					return fmt.Errorf("step %d: %w", i, err)
				}
				if !bytes.Equal(buf, want) {
					return fmt.Errorf("step %d: rank %d corrupted buffer", i, c.Rank())
				}
				if s.barry {
					if err := Barrier(c); err != nil {
						return fmt.Errorf("step %d barrier: %w", i, err)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestNestedSplits exercises communicator trees: world -> halves ->
// quarters, broadcasting at each level with different data.
func TestNestedSplits(t *testing.T) {
	const p = 12
	err := engine.RunWith(engine.Options{NP: p, Timeout: time.Minute}, func(c mpi.Comm) error {
		half, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()%2, half.Rank())
		if err != nil {
			return err
		}
		// Broadcast distinct payloads at all three levels concurrently
		// (the contexts must isolate them).
		check := func(comm mpi.Comm, fill byte) error {
			buf := make([]byte, 64)
			if comm.Rank() == 0 {
				for i := range buf {
					buf[i] = fill
				}
			}
			if err := BcastScatterRingAllgatherOpt(comm, buf, 0); err != nil {
				return err
			}
			for _, b := range buf {
				if b != fill {
					return fmt.Errorf("level fill %d corrupted: got %d", fill, b)
				}
			}
			return nil
		}
		if err := check(c, 1); err != nil {
			return err
		}
		if err := check(half, 2); err != nil {
			return err
		}
		if err := check(quarter, 3); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSMPBcastOnLakiShape runs the multi-core aware broadcast on the
// second platform's node shape (8 cores) with non-power-of-two totals.
func TestSMPBcastOnLakiShape(t *testing.T) {
	for _, np := range []int{9, 17, 33} {
		topo := topology.Blocked(np, topology.LakiCoresPerNode)
		runBcast(t, "smp-laki", BcastSMPOpt, engine.Options{NP: np, Topology: topo}, np-1, 3000)
	}
}

// TestBcastAllRootsExhaustive sweeps every root for a fixed size on both
// ring variants (root handling is where relative-rank bugs hide).
func TestBcastAllRootsExhaustive(t *testing.T) {
	const p = 11
	for root := 0; root < p; root++ {
		runBcast(t, "native-all-roots", BcastScatterRingAllgather, engine.Options{NP: p}, root, 500)
		runBcast(t, "opt-all-roots", BcastScatterRingAllgatherOpt, engine.Options{NP: p}, root, 500)
	}
}

// TestConcurrentWorlds runs several independent worlds in parallel —
// engines must not share hidden state.
func TestConcurrentWorlds(t *testing.T) {
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			errs <- engine.Run(4+i, func(c mpi.Comm) error {
				buf := make([]byte, 100*(i+1))
				if c.Rank() == 0 {
					copy(buf, pattern(len(buf)))
				}
				if err := BcastOpt(c, buf, 0); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(len(buf))) {
					return fmt.Errorf("world %d corrupted", i)
				}
				return nil
			})
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
