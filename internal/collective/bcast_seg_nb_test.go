package collective

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mpi"
)

// TestSegNBIdenticalTraffic: the overlap-aware segmented rings transfer
// exactly the blocking segmented rings' messages and bytes, for segment
// sizes that split chunks unevenly — the registered schedules (shared
// with the blocking variants) stay truthful for the NB pair.
func TestSegNBIdenticalTraffic(t *testing.T) {
	for _, p := range []int{2, 5, 8, 10, 13} {
		for _, seg := range []int{1, 7, 64} {
			n := 32*p + 5
			for _, root := range []int{0, p - 1} {
				blkNat := measureBcast(t, func(c mpi.Comm, buf []byte, r int) error {
					return BcastScatterRingAllgatherSeg(c, buf, r, seg)
				}, engine.Options{NP: p}, root, n)
				nbNat := measureBcast(t, func(c mpi.Comm, buf []byte, r int) error {
					return BcastScatterRingAllgatherSegNB(c, buf, r, seg)
				}, engine.Options{NP: p}, root, n)
				if blkNat.Total != nbNat.Total {
					t.Fatalf("p=%d root=%d seg=%d: native nb traffic %+v != blocking %+v",
						p, root, seg, nbNat.Total, blkNat.Total)
				}
				if blkNat.ByTag[core.TagRing] != nbNat.ByTag[core.TagRing] {
					t.Fatalf("p=%d root=%d seg=%d: native nb ring traffic differs", p, root, seg)
				}

				blkOpt := measureBcast(t, func(c mpi.Comm, buf []byte, r int) error {
					return BcastScatterRingAllgatherOptSeg(c, buf, r, seg)
				}, engine.Options{NP: p}, root, n)
				nbOpt := measureBcast(t, func(c mpi.Comm, buf []byte, r int) error {
					return BcastScatterRingAllgatherOptSegNB(c, buf, r, seg)
				}, engine.Options{NP: p}, root, n)
				if blkOpt.Total != nbOpt.Total {
					t.Fatalf("p=%d root=%d seg=%d: opt nb traffic %+v != blocking %+v",
						p, root, seg, nbOpt.Total, blkOpt.Total)
				}
				if blkOpt.ByTag[core.TagRing] != nbOpt.ByTag[core.TagRing] {
					t.Fatalf("p=%d root=%d seg=%d: opt nb ring traffic differs", p, root, seg)
				}
			}
		}
	}
}

// TestCapabilityTags pins the CLI flag labels the tools print next to
// registry names.
func TestCapabilityTags(t *testing.T) {
	cases := []struct {
		caps Capabilities
		want string
	}{
		{Capabilities{}, ""},
		{Capabilities{Segmented: true}, "segmented"},
		{Capabilities{Pow2Only: true}, "pow2-only"},
		{Capabilities{MultiNodeOnly: true}, "multi-node-only"},
		{Capabilities{MinProcs: 2, Pow2Only: true, Segmented: true}, "min-procs=2 pow2-only segmented"},
	}
	for _, tc := range cases {
		got := ""
		for i, tag := range tc.caps.Tags() {
			if i > 0 {
				got += " "
			}
			got += tag
		}
		if got != tc.want {
			t.Errorf("Tags(%+v) = %q, want %q", tc.caps, got, tc.want)
		}
	}
}
