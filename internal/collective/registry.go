package collective

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/tune"
)

// Capabilities are the hard constraints of a registered algorithm — what
// it needs to run correctly, as opposed to when it is fast (the tuner's
// concern).
type Capabilities struct {
	// MinProcs is the smallest communicator the algorithm accepts
	// (0 = no minimum).
	MinProcs int
	// Pow2Only restricts the algorithm to power-of-two communicators.
	Pow2Only bool
	// MultiNodeOnly restricts the algorithm to placements spanning more
	// than one node (the SMP-aware broadcasts degenerate to a plain
	// binomial tree on one node, so selecting them there is meaningless).
	MultiNodeOnly bool
	// Segmented marks algorithms that take a segment-size parameter.
	Segmented bool
}

// Tags renders the constraints as short flag labels for CLI listings
// (e.g. "pow2-only", "segmented"); an unconstrained algorithm yields nil.
func (cp Capabilities) Tags() []string {
	var tags []string
	if cp.MinProcs > 0 {
		tags = append(tags, fmt.Sprintf("min-procs=%d", cp.MinProcs))
	}
	if cp.Pow2Only {
		tags = append(tags, "pow2-only")
	}
	if cp.MultiNodeOnly {
		tags = append(tags, "multi-node-only")
	}
	if cp.Segmented {
		tags = append(tags, "segmented")
	}
	return tags
}

// Label renders the flags as one bracketed CLI column ("-" when
// unconstrained); bcastbench -list and bcastsim -candidates list share
// it so their listings stay format-identical.
func (cp Capabilities) Label() string {
	tags := cp.Tags()
	if len(tags) == 0 {
		return "-"
	}
	return "[" + strings.Join(tags, " ") + "]"
}

// Match reports whether the environment satisfies the constraints.
func (cp Capabilities) Match(e tune.Env) bool {
	if cp.MinProcs > 0 && e.Procs < cp.MinProcs {
		return false
	}
	if cp.Pow2Only && !e.Pow2() {
		return false
	}
	if cp.MultiNodeOnly && !e.MultiNode() {
		return false
	}
	return true
}

// Registration is one pluggable broadcast algorithm: a stable name, the
// executable implementation, its capability constraints, and (when the
// algorithm's communication pattern is data-independent and static) a
// schedule generator for the verifier, the simulator, and the auto-tuner.
type Registration struct {
	// Name is the registry key (one of the tune.* algorithm names for the
	// built-ins; extensions pick fresh names).
	Name string
	// Summary is a one-line human description, shown by the CLI tools.
	Summary string
	// Run executes the broadcast. segSize is meaningful only for
	// Capabilities.Segmented algorithms (0 = the algorithm's default).
	Run func(c mpi.Comm, buf []byte, root, segSize int) error
	// Caps are the algorithm's hard constraints.
	Caps Capabilities
	// Program generates the static communication schedule, or is nil for
	// algorithms whose schedule depends on runtime communicator state
	// (the Split-based SMP broadcasts).
	Program func(p, root, n, segSize int) (*sched.Program, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Registration{}
)

// Register adds an algorithm to the registry. Names must be unique and
// non-empty, and a Run implementation is mandatory.
func Register(r Registration) error {
	if r.Name == "" {
		return fmt.Errorf("collective: register: empty name")
	}
	if r.Run == nil {
		return fmt.Errorf("collective: register %q: nil Run", r.Name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[r.Name]; dup {
		return fmt.Errorf("collective: register %q: duplicate name", r.Name)
	}
	registry[r.Name] = r
	return nil
}

// MustRegister is Register that panics on error; the built-in algorithms
// use it at init time.
func MustRegister(r Registration) {
	if err := Register(r); err != nil {
		panic(err)
	}
}

// Lookup returns the registration for name.
func Lookup(name string) (Registration, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := registry[name]
	return r, ok
}

// Names returns every registered algorithm name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Algorithms returns every registration, sorted by name.
func Algorithms() []Registration {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Registration, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Candidates adapts the registry to the auto-tuner: every algorithm with
// a static schedule becomes a tune.Candidate whose applicability is its
// capability predicate.
func Candidates() []tune.Candidate {
	var out []tune.Candidate
	for _, r := range Algorithms() {
		if r.Program == nil {
			continue
		}
		out = append(out, candidateOf(r))
	}
	return out
}

// AllCandidates adapts the whole registry, including algorithms without
// a static schedule (the SMP broadcasts, whose pattern depends on
// runtime communicator state). Only measurers that execute candidates by
// name (tune.ProgramFree, like the real-engine measurer) can measure the
// schedule-less entries; schedule-replaying measurers skip them.
func AllCandidates() []tune.Candidate {
	var out []tune.Candidate
	for _, r := range Algorithms() {
		out = append(out, candidateOf(r))
	}
	return out
}

func candidateOf(r Registration) tune.Candidate {
	caps := r.Caps
	return tune.Candidate{
		Name:      r.Name,
		Segmented: caps.Segmented,
		Applies:   caps.Match,
		Program:   r.Program,
	}
}

// envOf builds the selection environment of a broadcast call. Node
// count, node occupancy and placement classification are all carried
// through the communicator's topology, so placement-keyed tuning rules
// resolve at run time exactly as they were derived.
func envOf(c mpi.Comm, n int) tune.Env {
	return tune.EnvOf(n, c.Size(), c.Topology())
}

// RunDecision executes a tuner decision through the registry, after
// checking the decided algorithm exists and its capabilities admit the
// environment (a mis-keyed tuning table fails loudly, not with a hang or
// a wrong answer deep inside an algorithm). As the one selection path's
// execution point it is also the broadcast span-emission site: when the
// communicator carries a span ring, every successful run records a
// {rank, op, algorithm, seg, bytes, start, duration} span.
func RunDecision(c mpi.Comm, buf []byte, root int, d tune.Decision) error {
	r, ok := Lookup(d.Algorithm)
	if !ok {
		return fmt.Errorf("collective: unknown algorithm %q (registered: %v)", d.Algorithm, Names())
	}
	if d.SegSize < 0 {
		// The segmented algorithms treat any non-positive segment as
		// their default; a negative one is a caller bug that must not
		// silently run with a different pipeline than asked for.
		return fmt.Errorf("collective: negative segment size %d for %q", d.SegSize, d.Algorithm)
	}
	if e := envOf(c, len(buf)); !r.Caps.Match(e) {
		return fmt.Errorf("collective: algorithm %q cannot run with %d bytes on %d ranks over %d node(s)",
			d.Algorithm, e.Bytes, e.Procs, e.NumNodes)
	}
	ring, start := spanStart(c)
	if err := r.Run(c, buf, root, d.SegSize); err != nil {
		return err
	}
	if ring != nil {
		ring.Record(opBcast, d.Algorithm, d.SegSize, len(buf), start, time.Since(start))
	}
	return nil
}

// BcastWith broadcasts buf from root using the algorithm t selects for
// this communicator and message. It is Broadcast with only the Tuner
// option set; all selection goes through Options.Decide.
func BcastWith(c mpi.Comm, buf []byte, root int, t tune.Tuner) error {
	return Broadcast(c, buf, root, Options{Tuner: t})
}

// The built-in broadcast family. Every Bcast* entry point in this package
// routes through these registrations (Bcast/BcastOpt via the default
// tuner, the named functions via the same implementations).
func init() {
	MustRegister(Registration{
		Name:    tune.Binomial,
		Summary: "whole-buffer binomial tree (MPICH short-message)",
		Run: func(c mpi.Comm, buf []byte, root, _ int) error {
			return BcastBinomial(c, buf, root)
		},
		Program: func(p, root, n, _ int) (*sched.Program, error) {
			return core.BinomialBcast(p, root, n), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.ScatterRdb,
		Summary: "binomial scatter + recursive-doubling allgather (MPICH medium-message, pow2 only)",
		Run: func(c mpi.Comm, buf []byte, root, _ int) error {
			return BcastScatterRdbAllgather(c, buf, root)
		},
		Caps: Capabilities{Pow2Only: true},
		Program: func(p, root, n, _ int) (*sched.Program, error) {
			if !core.IsPow2(p) {
				return nil, fmt.Errorf("collective: %s requires a power-of-two communicator, got %d", tune.ScatterRdb, p)
			}
			return core.BcastRdbProgram(p, root, n), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.RingNative,
		Summary: "binomial scatter + enclosed ring allgather (MPI_Bcast_native)",
		Run: func(c mpi.Comm, buf []byte, root, _ int) error {
			return BcastScatterRingAllgather(c, buf, root)
		},
		Program: func(p, root, n, _ int) (*sched.Program, error) {
			return core.BcastNativeProgram(p, root, n), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.RingOpt,
		Summary: "binomial scatter + non-enclosed ring allgather (the paper's MPI_Bcast_opt)",
		Run: func(c mpi.Comm, buf []byte, root, _ int) error {
			return BcastScatterRingAllgatherOpt(c, buf, root)
		},
		Program: func(p, root, n, _ int) (*sched.Program, error) {
			return core.BcastOptProgram(p, root, n), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.RingSeg,
		Summary: "binomial scatter + segmented enclosed ring allgather (pipelined native)",
		Run: func(c mpi.Comm, buf []byte, root, segSize int) error {
			return BcastScatterRingAllgatherSeg(c, buf, root, segSize)
		},
		Caps: Capabilities{Segmented: true},
		Program: func(p, root, n, segSize int) (*sched.Program, error) {
			return core.BcastNativeSegProgram(p, root, n, segSize), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.RingOptSeg,
		Summary: "binomial scatter + segmented non-enclosed ring allgather (pipelined MPI_Bcast_opt)",
		Run: func(c mpi.Comm, buf []byte, root, segSize int) error {
			return BcastScatterRingAllgatherOptSeg(c, buf, root, segSize)
		},
		Caps: Capabilities{Segmented: true},
		Program: func(p, root, n, segSize int) (*sched.Program, error) {
			return core.BcastOptSegProgram(p, root, n, segSize), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.RingSegNB,
		Summary: "segmented enclosed ring with pre-posted nonblocking segment transfers (overlap pipeline)",
		Run: func(c mpi.Comm, buf []byte, root, segSize int) error {
			return BcastScatterRingAllgatherSegNB(c, buf, root, segSize)
		},
		Caps: Capabilities{Segmented: true},
		// Message-for-message the blocking segmented ring's traffic, so
		// the same schedule describes it.
		Program: func(p, root, n, segSize int) (*sched.Program, error) {
			return core.BcastNativeSegProgram(p, root, n, segSize), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.RingOptSegNB,
		Summary: "segmented non-enclosed ring with pre-posted nonblocking segment transfers (overlap pipeline)",
		Run: func(c mpi.Comm, buf []byte, root, segSize int) error {
			return BcastScatterRingAllgatherOptSegNB(c, buf, root, segSize)
		},
		Caps: Capabilities{Segmented: true},
		Program: func(p, root, n, segSize int) (*sched.Program, error) {
			return core.BcastOptSegProgram(p, root, n, segSize), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.Chain,
		Summary: "segmented pipeline-chain broadcast (extension baseline)",
		Run: func(c mpi.Comm, buf []byte, root, segSize int) error {
			return BcastChain(c, buf, root, segSize)
		},
		Caps: Capabilities{Segmented: true},
		Program: func(p, root, n, segSize int) (*sched.Program, error) {
			return core.ChainBcast(p, root, n, segSize), nil
		},
	})
	MustRegister(Registration{
		Name:    tune.SMP,
		Summary: "multi-core aware: intra-node binomial + native inter-node ring between leaders",
		Run: func(c mpi.Comm, buf []byte, root, _ int) error {
			return BcastSMP(c, buf, root)
		},
		Caps: Capabilities{MultiNodeOnly: true},
	})
	MustRegister(Registration{
		Name:    tune.SMPOpt,
		Summary: "multi-core aware: intra-node binomial + tuned inter-node ring between leaders",
		Run: func(c mpi.Comm, buf []byte, root, _ int) error {
			return BcastSMPOpt(c, buf, root)
		},
		Caps: Capabilities{MultiNodeOnly: true},
	})
}
