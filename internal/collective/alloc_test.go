package collective

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/testutil"
	"repro/internal/tune"
)

// allocHarness drives broadcasts through one long-lived world so a
// "round" (one full broadcast across all ranks) costs only the
// collective itself — no boot, no goroutine launches. Only rank 0 talks
// to the host: it receives the round's size index from a channel and
// relays it to the other ranks with a tiny control broadcast, so every
// other rank blocks exclusively inside engine operations. That matters
// on the pooled executor, where a rank blocked on a bare channel would
// sit on an execution slot and starve ranks that still need to run.
type allocHarness struct {
	np      int
	sizes   []int
	bufs    [][][]byte // bufs[sizeIdx][rank]
	jobs    chan int   // size index; -1 shuts down
	done    chan error
	runDone chan error
}

func startAllocHarness(t *testing.T, np int, exec engine.ExecPolicy, mx *metrics.Metrics, sizes []int, bcast func(c mpi.Comm, buf []byte) error) *allocHarness {
	t.Helper()
	h := &allocHarness{
		np:      np,
		sizes:   sizes,
		bufs:    make([][][]byte, len(sizes)),
		jobs:    make(chan int),
		done:    make(chan error, 1),
		runDone: make(chan error, 1),
	}
	// The buffer table is built before the world launches and never
	// written by the host again, so rank bodies read it without locks.
	for i, n := range sizes {
		bs := make([][]byte, np)
		for r := range bs {
			bs[r] = make([]byte, n)
		}
		bs[0][0], bs[0][n-1] = 0xAB, 0xCD
		h.bufs[i] = bs
	}
	w, err := engine.NewWorld(engine.Options{
		NP:       np,
		Executor: exec,
		Metrics:  mx,
		// The world stays up for the whole measurement; keep the
		// wall-clock watchdog out of the way.
		Timeout: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		h.runDone <- w.Run(func(c mpi.Comm) error {
			r := c.Rank()
			ctl := make([]byte, 8)
			for {
				if r == 0 {
					binary.LittleEndian.PutUint64(ctl, uint64(int64(<-h.jobs)))
				}
				if err := BcastBinomial(c, ctl, 0); err != nil {
					return err
				}
				idx := int(int64(binary.LittleEndian.Uint64(ctl)))
				if idx < 0 {
					return nil
				}
				err := bcast(c, h.bufs[idx][r])
				if berr := Barrier(c); err == nil {
					err = berr
				}
				if r == 0 {
					h.done <- err
				}
				if err != nil {
					return err
				}
			}
		})
	}()
	return h
}

// round runs one full broadcast of sizes[idx] bytes on every rank. It
// allocates nothing itself: two channel handoffs around engine traffic.
func (h *allocHarness) round(idx int) error {
	h.jobs <- idx
	return <-h.done
}

func (h *allocHarness) stop(t *testing.T) {
	t.Helper()
	h.jobs <- -1
	if err := <-h.runDone; err != nil {
		t.Fatal(err)
	}
}

// TestBcastOptSegSteadyStateAllocs is the allocs/op gate for the paper's
// segmented scatter-ring-allgather broadcast: on a long-lived world the
// per-broadcast allocation count must be (a) small — the engine's pooled
// staging, envelopes, posted receives and requests leave only incidental
// allocations — and (b) independent of the message size. (b) is the
// sharp edge: a 1 MiB broadcast with 8 KiB segments moves 128x the
// segments of a 4 KiB one, so any leaked per-segment or per-byte
// allocation shows up as a slope across the sizes.
func TestBcastOptSegSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const (
		np      = 8
		segSize = 8 << 10
		// perRoundBudget bounds the allocations of one full broadcast
		// round (all np ranks, control traffic and barrier included) at
		// any size. The measured steady state is ~0-2; the budget leaves
		// headroom for runtime incidentals (a pool refill after a
		// background GC, a channel wakeup's sudog).
		perRoundBudget = 64.0
		// flatSlack bounds how much the largest size may exceed the
		// smallest: flatness, not just boundedness.
		flatSlack = 32.0
	)
	sizes := []int{4 << 10, 64 << 10, 1 << 20}

	// The grid's second axis proves the observability layer free: the
	// "spans" cells dispatch through the selection path (Broadcast) with
	// span recording on, and must meet the exact same budgets as the
	// direct-call cells. Counters are always on in both.
	for _, exec := range []engine.ExecPolicy{engine.Goroutine, engine.Pooled} {
		for _, spans := range []bool{false, true} {
			name := exec.String()
			bcastFn := func(c mpi.Comm, buf []byte) error {
				return BcastScatterRingAllgatherOptSeg(c, buf, 0, segSize)
			}
			var mx *metrics.Metrics
			if spans {
				name += "/spans"
				mx = metrics.New(np, 256)
				o := Options{Algorithm: tune.RingOptSeg, SegSize: segSize}
				bcastFn = func(c mpi.Comm, buf []byte) error {
					return Broadcast(c, buf, 0, o)
				}
			}
			t.Run(name, func(t *testing.T) {
				h := startAllocHarness(t, np, exec, mx, sizes, bcastFn)
				defer h.stop(t)

				// Warm the pools: the first broadcast at each size populates
				// the size classes the steady state reuses.
				for i := range sizes {
					if err := h.round(i); err != nil {
						t.Fatal(err)
					}
				}

				got := make([]float64, len(sizes))
				for i, n := range sizes {
					i := i
					got[i] = testing.AllocsPerRun(20, func() {
						if err := h.round(i); err != nil {
							t.Fatal(err)
						}
					})
					t.Logf("size=%-8d allocs/broadcast=%.1f", n, got[i])
				}
				for i, n := range sizes {
					if got[i] > perRoundBudget {
						t.Errorf("size %d: %.1f allocs per broadcast round, budget %.0f", n, got[i], perRoundBudget)
					}
				}
				if d := got[len(sizes)-1] - got[0]; d > flatSlack {
					t.Errorf("allocs not flat across sizes: %.1f more at %d B than at %d B (slack %.0f)",
						d, sizes[len(sizes)-1], sizes[0], flatSlack)
				}
				// Spot-check the payload actually traveled.
				for i, n := range sizes {
					for r := 1; r < np; r++ {
						if h.bufs[i][r][0] != 0xAB || h.bufs[i][r][n-1] != 0xCD {
							t.Fatalf("size %d rank %d: payload not broadcast", n, r)
						}
					}
				}
				if mx != nil {
					if rec := mx.Snapshot().SpansRecorded; rec == 0 {
						t.Error("spans cell recorded no spans")
					}
				}
			})
		}
	}
}
