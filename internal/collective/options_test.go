package collective

import (
	"strings"
	"testing"

	"repro/internal/tune"
)

// staticTuner always returns the same decision.
type staticTuner struct{ d tune.Decision }

func (s staticTuner) Decide(tune.Env) tune.Decision { return s.d }

func TestOptionsDecide(t *testing.T) {
	long := tune.Env{Bytes: 1 << 20, Procs: 16}
	cases := []struct {
		name string
		o    Options
		e    tune.Env
		want tune.Decision
	}{
		{"zero value = MPICH3 native", Options{}, long,
			tune.Decision{Algorithm: tune.RingNative}},
		{"tuner decides", Options{Tuner: tune.MPICH3{Tuned: true}}, long,
			tune.Decision{Algorithm: tune.RingOpt}},
		{"pinned algorithm bypasses tuner",
			Options{Algorithm: tune.Binomial, Tuner: tune.MPICH3{Tuned: true}}, long,
			tune.Decision{Algorithm: tune.Binomial}},
		{"pinned algorithm carries seg size",
			Options{Algorithm: tune.RingOptSeg, SegSize: 8192}, long,
			tune.Decision{Algorithm: tune.RingOptSeg, SegSize: 8192}},
		{"seg size overrides tuner's segment choice",
			Options{Tuner: staticTuner{tune.Decision{Algorithm: tune.RingSeg, SegSize: 4096}}, SegSize: 1 << 14}, long,
			tune.Decision{Algorithm: tune.RingSeg, SegSize: 1 << 14}},
		{"zero seg size keeps tuner's segment choice",
			Options{Tuner: staticTuner{tune.Decision{Algorithm: tune.RingSeg, SegSize: 4096}}}, long,
			tune.Decision{Algorithm: tune.RingSeg, SegSize: 4096}},
	}
	for _, tc := range cases {
		if got := tc.o.Decide(tc.e); got != tc.want {
			t.Errorf("%s: Decide = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	if err := (Options{Algorithm: tune.RingOpt}).Validate(); err != nil {
		t.Errorf("registered algorithm invalid: %v", err)
	}
	err := Options{Algorithm: "no-such-bcast"}.Validate()
	if err == nil || !strings.Contains(err.Error(), "no-such-bcast") {
		t.Errorf("unknown algorithm not rejected: %v", err)
	}
	if err := (Options{SegSize: -1}).Validate(); err == nil {
		t.Error("negative segment size not rejected")
	}
}
