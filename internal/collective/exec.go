package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sched"
)

// ExecProgram executes the calling rank's portion of a generated
// communication schedule against the communicator, moving real bytes in
// buf. It is the bridge between the schedule world (internal/core
// generators, the verifier, the simulator) and the executable world: any
// generated program — including relabelled extensions like the
// node-aware ring — runs on the real engine without a hand-written
// collective, and tests use it to prove that generated schedules and
// hand-written collectives transfer identical data.
//
// Every rank of the communicator must call ExecProgram with the same
// program. The buffer must be at least pr.N bytes.
func ExecProgram(c mpi.Comm, pr *sched.Program, buf []byte) error {
	if pr.P != c.Size() {
		return fmt.Errorf("collective: exec: program has %d ranks, communicator %d", pr.P, c.Size())
	}
	if len(buf) < pr.N {
		return fmt.Errorf("collective: exec: buffer %d bytes, program needs %d", len(buf), pr.N)
	}
	me := c.Rank()
	for i, op := range pr.OpsOf(me) {
		switch op.Kind {
		case sched.OpSend:
			if err := c.Send(buf[op.SendOff:op.SendOff+op.SendLen], op.To, op.Tag); err != nil {
				return fmt.Errorf("collective: exec %q rank %d op %d: %w", pr.Name, me, i, err)
			}
		case sched.OpRecv:
			st, err := c.Recv(buf[op.RecvOff:op.RecvOff+op.RecvLen], op.From, op.Tag)
			if err != nil {
				return fmt.Errorf("collective: exec %q rank %d op %d: %w", pr.Name, me, i, err)
			}
			if st.Count != op.RecvLen {
				return fmt.Errorf("collective: exec %q rank %d op %d: received %d bytes, schedule says %d",
					pr.Name, me, i, st.Count, op.RecvLen)
			}
		case sched.OpSendrecv:
			st, err := c.Sendrecv(
				buf[op.SendOff:op.SendOff+op.SendLen], op.To, op.Tag,
				buf[op.RecvOff:op.RecvOff+op.RecvLen], op.From, op.Tag)
			if err != nil {
				return fmt.Errorf("collective: exec %q rank %d op %d: %w", pr.Name, me, i, err)
			}
			if st.Count != op.RecvLen {
				return fmt.Errorf("collective: exec %q rank %d op %d: received %d bytes, schedule says %d",
					pr.Name, me, i, st.Count, op.RecvLen)
			}
		default:
			return fmt.Errorf("collective: exec %q rank %d op %d: unknown kind %d", pr.Name, me, i, op.Kind)
		}
	}
	return nil
}

// BcastChain broadcasts buf from root through a segmented pipeline chain
// (extension baseline; see core.ChainBcast). segSize <= 0 selects the
// default segment size.
func BcastChain(c mpi.Comm, buf []byte, root int, segSize int) error {
	if err := checkRoot(c, root); err != nil {
		return err
	}
	if c.Size() > 1 {
		mpi.AdvanceTagStream(c)
	}
	return ExecProgram(c, chainProgram(c.Size(), root, len(buf), segSize), buf)
}

// chainProgram is a tiny indirection so tests can reuse the exact program.
func chainProgram(p, root, n, segSize int) *sched.Program {
	return core.ChainBcast(p, root, n, segSize)
}
