package engine

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
)

// ExecPolicy selects the rank-execution substrate of a World — how the
// NP rank bodies are scheduled onto the host's cores. The zero value is
// Goroutine, today's one-goroutine-per-rank behavior.
type ExecPolicy int

const (
	// Goroutine runs every rank on its own OS-scheduled goroutine. All
	// runnable ranks compete for cores at once, which is fine for
	// correctness tests and small worlds but turns wall-clock timing into
	// scheduler noise once NP is well past GOMAXPROCS.
	Goroutine ExecPolicy = iota
	// Pooled multiplexes the ranks cooperatively onto a bounded worker
	// pool of min(GOMAXPROCS, Options.MaxWorkers) execution slots: a rank
	// holds a slot only while it runs user code, parks (releasing the
	// slot) at every blocking point the engine owns — send, receive,
	// request Wait, eager flow control — and re-queues for a slot when
	// its operation completes. Blocked ranks therefore cost nothing but
	// their parked goroutine, and at most the pool's width of ranks is
	// runnable at any instant, which keeps np in the hundreds practical
	// for measurement grids.
	Pooled
)

// String names the policy like the CLIs' -exec flag.
func (p ExecPolicy) String() string {
	switch p {
	case Goroutine:
		return "goroutine"
	case Pooled:
		return "pooled"
	default:
		return fmt.Sprintf("ExecPolicy(%d)", int(p))
	}
}

// ParseExecPolicy maps a CLI name to an ExecPolicy.
func ParseExecPolicy(s string) (ExecPolicy, error) {
	switch s {
	case "goroutine":
		return Goroutine, nil
	case "pooled":
		return Pooled, nil
	default:
		return 0, fmt.Errorf("engine: unknown executor %q (goroutine|pooled)", s)
	}
}

// PooledWorkers returns the worker count a pooled executor configured
// with maxWorkers would run: min(GOMAXPROCS, maxWorkers), with zero
// meaning GOMAXPROCS. More slots than cores cannot increase true
// parallelism, so the clamp keeps the runnable set within the hardware.
func PooledWorkers(maxWorkers int) int {
	procs := runtime.GOMAXPROCS(0)
	if maxWorkers <= 0 || maxWorkers > procs {
		return procs
	}
	return maxWorkers
}

// ExecLabel names the substrate a world built from (policy, maxWorkers)
// would run, worker clamp applied — "goroutine", or "pooled(8)". Every
// provenance string in the stack (table descriptions, sample logs,
// benchmark headers, the facade's Cluster.Executor) is built through
// this one helper so they cannot drift from each other or from
// World.ExecutorName.
func ExecLabel(policy ExecPolicy, maxWorkers int) string {
	if policy == Pooled {
		return fmt.Sprintf("pooled(%d)", PooledWorkers(maxWorkers))
	}
	return policy.String()
}

// Executor abstracts how rank bodies execute, so "how ranks run" is a
// pluggable layer under the engine's messaging core. The contract:
//
//   - Launch starts np rank bodies and returns only after every body has
//     returned. Bodies may run with any concurrency the executor chooses.
//   - Park(rank) is called by rank's body immediately before it blocks in
//     an engine operation (the engine owns every blocking point, so user
//     code never needs to call it); Unpark(rank) is called after the
//     operation's wakeup, before user code resumes. Calls are strictly
//     paired per rank and always made from that rank's body.
//
// An executor that bounds concurrency must release capacity in Park and
// reacquire it in Unpark, or blocked ranks would starve runnable ones.
type Executor interface {
	// Name labels the executor for provenance ("goroutine", "pooled(8)").
	Name() string
	Launch(np int, body func(rank int))
	Park(rank int)
	Unpark(rank int)
}

// GoroutineExecutor is the default substrate: one goroutine per rank,
// scheduling left entirely to the Go runtime. Park and Unpark are no-ops
// because a blocked goroutine already costs nothing to the scheduler.
type GoroutineExecutor struct{}

// Name implements Executor.
func (GoroutineExecutor) Name() string { return "goroutine" }

// Launch implements Executor.
func (GoroutineExecutor) Launch(np int, body func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(rank)
		}(r)
	}
	wg.Wait()
}

// Park implements Executor.
func (GoroutineExecutor) Park(int) {}

// Unpark implements Executor.
func (GoroutineExecutor) Unpark(int) {}

// PooledExecutor runs rank bodies over a fixed number of execution
// slots. Each rank still owns a goroutine (its stack holds the user
// code's locals across blocking calls), but only slot holders are
// runnable: Park releases the slot before the rank blocks, Unpark
// re-queues for one after the wakeup. Queued ranks are served in FIFO
// order (channel semantics), so no rank starves.
type PooledExecutor struct {
	workers int
	slots   chan struct{}
	// metrics, when non-nil, receives slot-wait counts (an Unpark that
	// found no free slot and had to queue). NewWorld binds it; a bare
	// executor runs uninstrumented.
	metrics *metrics.Metrics
}

// NewPooledExecutor builds a pool of PooledWorkers(maxWorkers) slots.
func NewPooledExecutor(maxWorkers int) *PooledExecutor {
	n := PooledWorkers(maxWorkers)
	return &PooledExecutor{workers: n, slots: make(chan struct{}, n)}
}

// Workers returns the pool width.
func (p *PooledExecutor) Workers() int { return p.workers }

// Name implements Executor.
func (p *PooledExecutor) Name() string { return ExecLabel(Pooled, p.workers) }

func (p *PooledExecutor) acquire() { p.slots <- struct{}{} }
func (p *PooledExecutor) release() { <-p.slots }

// Launch implements Executor: every body waits for a slot before its
// first instruction and holds one whenever it runs user code.
func (p *PooledExecutor) Launch(np int, body func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p.acquire()
			defer p.release()
			body(rank)
		}(r)
	}
	wg.Wait()
}

// Park implements Executor.
func (p *PooledExecutor) Park(int) { p.release() }

// Unpark implements Executor. The fast path is a non-blocking slot
// grab; falling through to the blocking acquire means the pool was
// saturated and this rank queued for a slot — the contention signal
// the SlotWaits counter exposes.
func (p *PooledExecutor) Unpark(rank int) {
	select {
	case p.slots <- struct{}{}:
		return
	default:
	}
	if p.metrics != nil {
		p.metrics.Add(rank, metrics.SlotWaits, 1)
	}
	p.acquire()
}

// newExecutor realizes the Options' executor choice.
func newExecutor(policy ExecPolicy, maxWorkers int) (Executor, error) {
	if maxWorkers < 0 {
		return nil, fmt.Errorf("engine: MaxWorkers must be non-negative, got %d (0 = GOMAXPROCS)", maxWorkers)
	}
	switch policy {
	case Goroutine:
		if maxWorkers != 0 {
			return nil, fmt.Errorf("engine: MaxWorkers is pooled-only (set Options.Executor = Pooled)")
		}
		return GoroutineExecutor{}, nil
	case Pooled:
		return NewPooledExecutor(maxWorkers), nil
	default:
		return nil, fmt.Errorf("engine: unknown executor policy %d", int(policy))
	}
}

// parkRank marks rank blocked for the deadlock detector and releases its
// execution slot. Every blocking select in the engine is bracketed by
// parkRank/unparkRank, so a pooled world never wedges on a blocked rank
// holding a slot.
func (w *World) parkRank(rank int) {
	w.metrics.Add(rank, metrics.Parks, 1)
	w.state[rank].Store(1)
	w.exec.Park(rank)
}

// unparkRank reacquires an execution slot and marks rank running again.
// The slot comes first: the rank is not runnable until it holds one, and
// keeping state blocked meanwhile preserves the watchdog's invariant
// that only slot holders can be mid-user-code.
func (w *World) unparkRank(rank int) {
	w.exec.Unpark(rank)
	w.state[rank].Store(0)
	w.metrics.Add(rank, metrics.Unparks, 1)
}
