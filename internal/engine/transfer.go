package engine

import (
	"repro/internal/bufpool"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// countSend charges one issued message to the sender's shard and, when
// the send also delivered (matched an already-posted receive), one
// completed receive to the receiver's. Split eager/rendezvous so the
// protocol mix — the quantity the eager-limit knob tunes — is a
// first-class observable.
func (w *World) countSend(srcWorld int, eager bool) {
	if eager {
		w.metrics.Add(srcWorld, metrics.EagerSends, 1)
	} else {
		w.metrics.Add(srcWorld, metrics.RdvSends, 1)
	}
}

func (w *World) countRecv(dstWorld int, eager bool) {
	if eager {
		w.metrics.Add(dstWorld, metrics.EagerRecvs, 1)
	} else {
		w.metrics.Add(dstWorld, metrics.RdvRecvs, 1)
	}
}

// send implements the blocking send. srcRank is the sender's rank within
// the ctx communicator (carried in the envelope for matching), dstWorld
// the destination's world rank. track controls whether the sender's rank
// state is marked blocked while waiting (true for top-level Send on the
// rank's own goroutine; false for the spawned half of a Sendrecv, whose
// blocking is accounted by the Sendrecv wrapper). cnl is the operation's
// bound cancellation signal (zero = unbound).
func (w *World) send(ctx int64, srcRank, srcWorld, dstWorld int, buf []byte, tag int, track bool, cnl cancelSignal) error {
	if w.wired && w.trans.Wire(dstWorld) {
		return w.remoteSend(ctx, srcRank, srcWorld, dstWorld, buf, tag, track, cnl)
	}
	ep := w.eps[dstWorld]
	eager := len(buf) <= w.eagerLimit

	for {
		select {
		case <-w.aborted:
			return w.abortError()
		default:
		}
		if err := cnl.fired(w); err != nil {
			return err
		}
		ep.mu.Lock()
		if pr := ep.matchPosted(ctx, srcRank, tag); pr != nil {
			// A receive is already waiting. Rendezvous delivers with a
			// single direct copy (the LMT path); eager still pays the
			// staging copy like MPICH's shared-memory cells do, so the
			// protocol's cost does not depend on receive timing.
			var n int
			var err error
			if eager {
				staging := bufpool.Get(len(buf))
				copy(staging.B, buf)
				n, err = copyPayload(pr.buf, staging.B)
				staging.Release()
				w.metrics.Add(srcWorld, metrics.StagedBytes, int64(len(buf)))
			} else {
				n, err = copyPayload(pr.buf, buf)
			}
			ep.mu.Unlock()
			pr.done <- recvResult{st: mpi.Status{Source: srcRank, Tag: tag, Count: n}, err: err}
			w.progress.Add(1)
			w.countSend(srcWorld, eager)
			w.countRecv(dstWorld, eager)
			return nil
		}
		if !eager {
			break // fall through to rendezvous below, still holding the lock
		}
		if w.eagerCredits == 0 || ep.eagerBuffered[srcWorld] < w.eagerCredits {
			// Eager within the credit window: the engine takes a copy
			// (pooled) and the send completes immediately. (The
			// receive-side staging copy this implies is charged by
			// internal/netsim in simulated time.)
			ep.arrivals = append(ep.arrivals, newEagerEnvelope(ctx, srcRank, srcWorld, tag, buf))
			ep.eagerBuffered[srcWorld]++
			w.metrics.Max(dstWorld, metrics.ArrivalQueueMax, int64(len(ep.arrivals)))
			ep.mu.Unlock()
			w.progress.Add(1)
			w.metrics.Add(srcWorld, metrics.EagerSends, 1)
			w.metrics.Add(srcWorld, metrics.StagedBytes, int64(len(buf)))
			return nil
		}
		// Flow control: the receiver holds a full window of our eager
		// messages. Block until it drains one, then retry the whole
		// matching sequence (a receive may have been posted meanwhile).
		wait := make(chan struct{})
		ep.creditWait[srcWorld] = wait
		ep.mu.Unlock()
		if track {
			w.parkRank(srcWorld)
		}
		var werr error
		select {
		case <-wait:
		case <-w.aborted:
			werr = w.abortError()
		case <-cnl.done:
			werr = cnl.fire(w)
		}
		if track {
			w.unparkRank(srcWorld)
		}
		if werr != nil {
			return werr
		}
	}

	// Rendezvous: enqueue a handle to the sender's buffer and block until
	// the receiver copies from it. ep.mu is held.
	env := newRdvEnvelope(ctx, srcRank, srcWorld, tag, buf)
	rdv := env.rdv
	ep.arrivals = append(ep.arrivals, env)
	w.metrics.Max(dstWorld, metrics.ArrivalQueueMax, int64(len(ep.arrivals)))
	ep.mu.Unlock()
	w.progress.Add(1)
	w.metrics.Add(srcWorld, metrics.RdvSends, 1)

	if track {
		w.parkRank(srcWorld)
		defer w.unparkRank(srcWorld)
	}
	select {
	case <-rdv.done:
		putRdv(rdv) // signal consumed; the receiver is done with it
		return nil
	case <-w.aborted:
		return w.abortError()
	case <-cnl.done:
		return cnl.fire(w)
	}
}

// recv implements the blocking receive for the rank whose world rank is
// myWorld: an irecv followed by an immediate Wait. src and tag may be
// wildcards. track marks the rank blocked while waiting (top-level
// receives on the rank's goroutine).
func (w *World) recv(ctx int64, myWorld int, buf []byte, src, tag int, track bool, cnl cancelSignal) (mpi.Status, error) {
	r := w.irecv(ctx, myWorld, buf, src, tag, cnl)
	if !track {
		r.trackRank = -1
	}
	st, err := r.Wait()
	putRequest(r) // recv is the sole holder; recycle
	return st, err
}
