package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/testutil"
)

// TestRunContextCancelUnblocksRecv cancels a run while every rank is
// blocked in a receive that will never be matched. All ranks must
// unwind promptly with an error wrapping both mpi.ErrAborted and
// context.Canceled, and no goroutine may be left behind.
func TestRunContextCancelUnblocksRecv(t *testing.T) {
	base := runtime.NumGoroutine()
	w, err := NewWorld(Options{NP: 4, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = w.RunContext(ctx, func(c mpi.Comm) error {
		buf := make([]byte, 8)
		_, err := c.Recv(buf, mpi.AnySource, mpi.AnyTag) // no sender exists
		return err
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RunContext returned nil after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("cancellation took %v; want prompt unblock", elapsed)
	}
	testutil.WaitGoroutines(t, base)
}

// TestRunContextDeadlineUnblocksSend forces rendezvous for every message
// and lets a send block forever (no receiver); the deadline must abort it
// with context.DeadlineExceeded.
func TestRunContextDeadlineUnblocksSend(t *testing.T) {
	base := runtime.NumGoroutine()
	w, err := NewWorld(Options{NP: 2, EagerLimit: -1, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var sendErr error // written by rank 0, read after RunContext returns
	err = w.RunContext(ctx, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			sendErr = c.Send(make([]byte, 1<<10), 1, 7) // rank 1 never receives
			return sendErr
		}
		<-ctx.Done() // rank 1 idles outside any communication call
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("run error does not wrap context.DeadlineExceeded: %v", err)
	}
	if !errors.Is(sendErr, mpi.ErrAborted) || !errors.Is(sendErr, context.DeadlineExceeded) {
		t.Errorf("blocked send error does not wrap mpi.ErrAborted and the cause: %v", sendErr)
	}
	testutil.WaitGoroutines(t, base)
}

// TestWithContextPerOperation binds a context to a single operation via
// the mpi.Contexter capability: a blocked Wait on an Irecv must return
// when that context fires, even though the run context never does.
func TestWithContextPerOperation(t *testing.T) {
	base := runtime.NumGoroutine()
	w, err := NewWorld(Options{NP: 2, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c mpi.Comm) error {
		if c.Rank() != 0 {
			// Rank 1 participates in nothing; it simply returns and the
			// abort from rank 0's canceled receive tears the world down
			// around the already-finished rank.
			return nil
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		cc := mpi.WithContext(ctx, c)
		_, err := cc.Recv(make([]byte, 4), 1, 5) // never sent
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestRunContextCleanFinish checks that a context-bound run that
// completes normally neither errors nor leaves the watcher behind.
func TestRunContextCleanFinish(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w, err := NewWorld(Options{NP: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = w.RunContext(ctx, func(c mpi.Comm) error {
		buf := make([]byte, 64)
		if c.Rank() == 0 {
			for r := 1; r < c.Size(); r++ {
				if err := c.Send(buf, r, 3); err != nil {
					return err
				}
			}
			return nil
		}
		_, err := c.Recv(buf, 0, 3)
		return err
	})
	if err != nil {
		t.Fatalf("clean context-bound run failed: %v", err)
	}
	testutil.WaitGoroutines(t, base)
}

// TestRunContextPreCanceled starts a run whose context is already dead;
// the first communication call must fail immediately.
func TestRunContextPreCanceled(t *testing.T) {
	w, err := NewWorld(Options{NP: 2, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = w.RunContext(ctx, func(c mpi.Comm) error {
		return c.Send(make([]byte, 4), (c.Rank()+1)%2, 1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
}
