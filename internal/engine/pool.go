package engine

import (
	"sync"

	"repro/internal/bufpool"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// The engine's per-message objects — eager payload copies, unexpected-
// queue envelopes, posted receives, rendezvous states and the requests
// of the internal blocking paths — are recycled through the free lists
// below, so a long-lived world's steady state allocates nothing per
// message no matter how many segments a pipelined broadcast splits
// into.
//
// # Ownership rules
//
// Every pooled object has exactly one owner at a time, and only the
// owner may return it:
//
//   - Eager payload buffers (bufpool.Buf): the sender acquires and
//     fills one; ownership transfers to the receiver with the envelope;
//     the receiver releases it after copying the payload out.
//   - envelopes: owned by the destination endpoint's queue; the
//     receiver that dequeues one (matchArrival) releases it after
//     reading its fields.
//   - posted receives: enqueued by the receiver; a matching sender
//     borrows one only long enough to deliver into pr.done. The
//     receiver's request recycles it after consuming the result from
//     the channel — and only then, because until that receive the
//     sender may still be mid-delivery. On the abort/cancel paths the
//     object is abandoned to the garbage collector instead.
//   - rdvStates: created by the sender; the receiver borrows one to
//     copy out of rdv.buf and signal rdv.done, after which it must not
//     touch it. The sender recycles it after consuming the done signal
//     (clean completion only).
//   - requests: recycled only by the engine's own blocking wrappers
//     (recv, Sendrecv), which provably drop every reference after
//     Wait. Requests returned to callers by Isend/Irecv are user-owned
//     and never recycled.
//
// The channels inside posted and rdvState are allocated once per
// object and reused across recycles: each use moves exactly one value
// through them (rendezvous completion is a buffered send, not a
// close), so a recycled object's channel is always empty.

var envelopePool = sync.Pool{New: func() any { return new(envelope) }}

var postedPool = sync.Pool{
	New: func() any { return &posted{done: make(chan recvResult, 1)} },
}

var rdvPool = sync.Pool{
	New: func() any { return &rdvState{done: make(chan struct{}, 1)} },
}

var requestPool = sync.Pool{New: func() any { return new(request) }}

// newEagerEnvelope builds a pooled envelope carrying a pooled copy of
// buf (the eager protocol's engine-owned payload).
func newEagerEnvelope(ctx int64, src, srcWorld, tag int, buf []byte) *envelope {
	data := bufpool.Get(len(buf))
	copy(data.B, buf)
	env := envelopePool.Get().(*envelope)
	env.ctx, env.src, env.srcWorld, env.tag = ctx, src, srcWorld, tag
	env.data, env.dbuf, env.rdv = data.B, data, nil
	return env
}

// newRdvEnvelope builds a pooled envelope referencing the sender's own
// buffer through a pooled rdvState.
func newRdvEnvelope(ctx int64, src, srcWorld, tag int, buf []byte) *envelope {
	rdv := rdvPool.Get().(*rdvState)
	rdv.buf = buf
	env := envelopePool.Get().(*envelope)
	env.ctx, env.src, env.srcWorld, env.tag = ctx, src, srcWorld, tag
	env.data, env.dbuf, env.rdv = nil, nil, rdv
	return env
}

// newRemoteEnvelope builds a pooled envelope for a transport-delivered
// message, taking ownership of its payload buffer. fin is non-nil for
// remote rendezvous payloads (the consumption ack callback).
func newRemoteEnvelope(m *transport.Message, fin func()) *envelope {
	env := envelopePool.Get().(*envelope)
	env.ctx, env.src, env.srcWorld, env.tag = m.Ctx, m.Src, m.SrcWorld, m.Tag
	env.data, env.dbuf, env.rdv = m.Data, m.Buf, nil
	env.fin = fin
	return env
}

// putEnvelope recycles a consumed envelope, releasing its eager payload
// buffer (if any). The caller must have read every field it needs and,
// for rendezvous envelopes, must recycle the rdvState separately (it
// belongs to the sender).
func putEnvelope(env *envelope) {
	if env.dbuf != nil {
		env.dbuf.Release()
	}
	env.data, env.dbuf, env.rdv, env.fin = nil, nil, nil, nil
	envelopePool.Put(env)
}

// getPosted builds a pooled posted receive. Its done channel is reused
// across recycles and is empty on return.
func getPosted(ctx int64, src, tag int, buf []byte) *posted {
	pr := postedPool.Get().(*posted)
	pr.ctx, pr.src, pr.tag, pr.buf = ctx, src, tag, buf
	return pr
}

// putPosted recycles a posted receive. Legal only after the owner
// received the delivery from pr.done — a sender may otherwise still be
// about to send into the channel.
func putPosted(pr *posted) {
	pr.buf = nil
	postedPool.Put(pr)
}

// putRdv recycles a rendezvous state. Legal only for the sender, after
// it consumed the done signal.
func putRdv(rdv *rdvState) {
	rdv.buf = nil
	rdvPool.Put(rdv)
}

// completedRequest returns an already-finished pooled request.
func completedRequest(st mpi.Status, err error) *request {
	r := requestPool.Get().(*request)
	*r = request{complete: true, st: st, err: err, trackRank: -1}
	return r
}

// putRequest recycles a finished request. Only the engine's internal
// blocking paths may call it (they are the sole holders of their
// requests); requests handed to users via Isend/Irecv are never
// recycled. Incomplete requests are left to the garbage collector —
// their completion source may still fire.
func putRequest(r *request) {
	if r == nil || !r.complete {
		return
	}
	*r = request{}
	requestPool.Put(r)
}
