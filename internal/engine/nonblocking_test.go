package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend([]byte("async"), 1, 4)
			if err != nil {
				return err
			}
			st, err := req.Wait()
			if err != nil {
				return err
			}
			if st.Count != 5 {
				return fmt.Errorf("send status = %+v", st)
			}
			return nil
		}
		buf := make([]byte, 8)
		req, err := c.Irecv(buf, 0, 4)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Count != 5 || string(buf[:5]) != "async" {
			return fmt.Errorf("recv %q status %+v", buf[:st.Count], st)
		}
		// Wait is idempotent.
		st2, err := req.Wait()
		if err != nil || st2 != st {
			return fmt.Errorf("second Wait: %+v %v", st2, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendNonOvertaking(t *testing.T) {
	// Multiple outstanding isends on one channel, mixing eager and
	// zero-copy (rendezvous-size) messages, must arrive in issue order.
	const k = 12
	err := RunWith(Options{NP: 2, EagerLimit: 64, DeadlockAfter: time.Second}, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			bufs := make([][]byte, k)
			reqs := make([]mpi.Request, k)
			for i := 0; i < k; i++ {
				size := 8
				if i%2 == 1 {
					size = 256 // beyond eager: zero-copy envelope
				}
				bufs[i] = bytes.Repeat([]byte{byte(i)}, size)
				req, err := c.Isend(bufs[i], 1, 3)
				if err != nil {
					return err
				}
				reqs[i] = req
			}
			_, err := mpi.WaitAll(reqs...)
			return err
		}
		for i := 0; i < k; i++ {
			buf := make([]byte, 256)
			st, err := c.Recv(buf, 0, 3)
			if err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d out of order: first byte %d (count %d)", i, buf[0], st.Count)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvPostedBeforeSendGetsZeroCopy(t *testing.T) {
	// Posting the receive first lets a rendezvous-size isend complete
	// directly against it.
	err := RunWith(Options{NP: 2, EagerLimit: -1, DeadlockAfter: time.Second}, func(c mpi.Comm) error {
		payload := bytes.Repeat([]byte{7}, 1024)
		if c.Rank() == 1 {
			buf := make([]byte, 1024)
			req, err := c.Irecv(buf, 0, 9)
			if err != nil {
				return err
			}
			// Tell rank 0 the receive is posted.
			if err := c.Send(nil, 0, 1); err != nil {
				return err
			}
			st, err := req.Wait()
			if err != nil {
				return err
			}
			if st.Count != 1024 || !bytes.Equal(buf, payload) {
				return fmt.Errorf("zero-copy recv corrupt: %+v", st)
			}
			return nil
		}
		if _, err := c.Recv(nil, 1, 1); err != nil {
			return err
		}
		req, err := c.Isend(payload, 1, 9)
		if err != nil {
			return err
		}
		if !req.Done() {
			// The posted receive existed, so the send matched instantly.
			return errors.New("isend against posted recv should complete immediately")
		}
		_, err = req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestDonePolling(t *testing.T) {
	err := RunWith(testOpts(2), func(c mpi.Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			return c.Send([]byte{1}, 1, 1)
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(buf, 0, 1)
		if err != nil {
			return err
		}
		if req.Done() {
			return errors.New("request done before any send")
		}
		for !req.Done() {
			time.Sleep(time.Millisecond)
		}
		st, err := req.Wait()
		if err != nil || st.Count != 1 {
			return fmt.Errorf("after Done: %+v %v", st, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendValidation(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := c.Isend(nil, 9, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("peer: %v", err)
		}
		if _, err := c.Isend(nil, 0, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("self: %v", err)
		}
		if _, err := c.Isend(nil, 1, -1); !errors.Is(err, mpi.ErrTag) {
			return fmt.Errorf("tag: %v", err)
		}
		if _, err := c.Irecv(nil, -9, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("irecv peer: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendOverflowBeyondCreditsCompletes(t *testing.T) {
	// More outstanding isends than the credit window: the overflow is
	// parked zero-copy and everything still arrives intact and in order.
	const k = 10
	err := RunWith(Options{NP: 2, EagerLimit: 1 << 10, EagerCredits: 2, DeadlockAfter: time.Second}, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			bufs := make([][]byte, k)
			reqs := make([]mpi.Request, k)
			for i := range reqs {
				bufs[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
				req, err := c.Isend(bufs[i], 1, 2)
				if err != nil {
					return err
				}
				reqs[i] = req
			}
			_, err := mpi.WaitAll(reqs...)
			return err
		}
		time.Sleep(10 * time.Millisecond) // let the sender queue up
		for i := 0; i < k; i++ {
			buf := make([]byte, 64)
			if _, err := c.Recv(buf, 0, 2); err != nil {
				return err
			}
			if buf[0] != byte(i+1) {
				return fmt.Errorf("message %d out of order: %d", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllCollectsFirstError(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send([]byte{1, 2, 3, 4}, 1, 1); err != nil {
				return err
			}
			return c.Send([]byte{5}, 1, 2)
		}
		small := make([]byte, 1) // will truncate tag 1
		ok := make([]byte, 1)
		r1, err := c.Irecv(small, 0, 1)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(ok, 0, 2)
		if err != nil {
			return err
		}
		sts, err := mpi.WaitAll(r1, r2)
		if !errors.Is(err, mpi.ErrTruncate) {
			return fmt.Errorf("want truncate, got %v", err)
		}
		if sts[1].Count != 1 || ok[0] != 5 {
			return fmt.Errorf("second request not completed: %+v", sts[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvStillWorksAfterRefactor(t *testing.T) {
	// Regression guard: Sendrecv (now goroutine-free) under forced
	// rendezvous in large rings.
	err := RunWith(Options{NP: 16, EagerLimit: -1, DeadlockAfter: 2 * time.Second}, func(c mpi.Comm) error {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() + c.Size() - 1) % c.Size()
		out := bytes.Repeat([]byte{byte(c.Rank())}, 4096)
		in := make([]byte, 4096)
		for step := 0; step < 5; step++ {
			if _, err := c.Sendrecv(out, right, 1, in, left, 1); err != nil {
				return err
			}
			if in[0] != byte(left) {
				return fmt.Errorf("step %d: got %d want %d", step, in[0], left)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobe(t *testing.T) {
	err := RunWith(testOpts(2), func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send([]byte{1, 2, 3}, 1, 7); err != nil {
				return err
			}
			// Signal that the message is definitely enqueued.
			return c.Send(nil, 1, 8)
		}
		if _, err := c.Recv(nil, 0, 8); err != nil {
			return err
		}
		st, ok, err := c.Iprobe(0, 7)
		if err != nil {
			return err
		}
		if !ok || st.Count != 3 || st.Source != 0 || st.Tag != 7 {
			return fmt.Errorf("iprobe = %+v ok=%v", st, ok)
		}
		// Probing must not consume: the receive still succeeds.
		buf := make([]byte, 3)
		if _, err := c.Recv(buf, 0, 7); err != nil {
			return err
		}
		// Nothing left now.
		if _, ok, err := c.Iprobe(mpi.AnySource, mpi.AnyTag); err != nil || ok {
			return fmt.Errorf("iprobe after drain: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeValidation(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, _, err := c.Iprobe(-9, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("peer: %v", err)
		}
		if _, _, err := c.Iprobe(1, -5); !errors.Is(err, mpi.ErrTag) {
			return fmt.Errorf("tag: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
