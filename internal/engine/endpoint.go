package engine

import (
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/mpi"
)

// envelope is a message that arrived before a matching receive was posted
// (MPI's "unexpected message queue" entry). Envelopes are pooled; see
// pool.go for the ownership rules.
type envelope struct {
	ctx      int64
	src      int // sender's rank within the ctx communicator
	srcWorld int // sender's world rank (for flow-control accounting)
	tag      int
	data     []byte       // eager payload (engine-owned copy); nil for rendezvous
	dbuf     *bufpool.Buf // pool handle backing data; released on consumption
	rdv      *rdvState    // non-nil for local rendezvous
	// fin, when non-nil, marks a remote rendezvous payload: the consuming
	// receive calls it (after copying out) to send the RdvAck that
	// unblocks the sender in its process. Remote eager envelopes are
	// indistinguishable from local ones (data + dbuf, no fin).
	fin func()
}

// rdvState links a blocked rendezvous sender to the eventual receiver.
// The receiver copies directly out of buf (single copy) and signals done
// with one buffered send — a send, not a close, so the channel survives
// recycling through rdvPool.
type rdvState struct {
	buf  []byte
	done chan struct{} // buffered(1); exactly one signal per use
}

// posted is a receive waiting for a matching message. Pooled; the done
// channel is reused across recycles (one value per use, drained by the
// receiver before the object returns to the pool).
type posted struct {
	ctx      int64
	src, tag int // may be mpi.AnySource / mpi.AnyTag
	buf      []byte
	done     chan recvResult // buffered(1): sender never blocks delivering
}

type recvResult struct {
	st  mpi.Status
	err error
}

// endpoint is one rank's mailbox: the unexpected-message queue and the
// posted-receive queue, both in arrival/post order so matching follows
// MPI's non-overtaking rule.
type endpoint struct {
	mu       sync.Mutex
	arrivals []*envelope
	recvs    []*posted
	// eagerBuffered counts unconsumed eager envelopes per sender world
	// rank; creditWait holds a blocked sender's wakeup channel (at most
	// one per sender — a rank has at most one send in flight).
	eagerBuffered map[int]int
	creditWait    map[int]chan struct{}
	// tagStreams holds this rank's current collective tag stream per
	// communicator context (see mpi.StreamTag). It is touched only by the
	// owning rank's goroutine during a run — every operation of a comm
	// runs on its owner — and cleared by RunContext between runs (the
	// executor handoff orders those accesses), so ep.mu is not needed.
	tagStreams map[int64]int
}

func newEndpoint() *endpoint {
	return &endpoint{
		eagerBuffered: map[int]int{},
		creditWait:    map[int]chan struct{}{},
		tagStreams:    map[int64]int{},
	}
}

// stream returns this rank's current collective tag stream for ctx.
func (ep *endpoint) stream(ctx int64) int { return ep.tagStreams[ctx] }

// nextStream advances the rank's collective tag stream for ctx and
// returns the new stream id. Stream ids wrap at mpi.NumTagStreams; a
// rank finishes (or at least issues every operation of) collective N on
// a comm before entering collective N+1, so live collectives are never
// a full wrap apart and wrapped ids cannot collide.
func (ep *endpoint) nextStream(ctx int64) int {
	s := (ep.tagStreams[ctx] + 1) % mpi.NumTagStreams
	ep.tagStreams[ctx] = s
	return s
}

// resetStreams clears all stream counters (between runs, so counters —
// and the per-ctx map footprint from Split — don't grow across runs).
func (ep *endpoint) resetStreams() {
	clear(ep.tagStreams)
}

// releaseEagerCredit is called (with ep.mu held) after an eager envelope
// from srcWorld has been consumed; it wakes a flow-control-blocked sender.
func (ep *endpoint) releaseEagerCredit(srcWorld int) {
	ep.eagerBuffered[srcWorld]--
	if ep.eagerBuffered[srcWorld] <= 0 {
		delete(ep.eagerBuffered, srcWorld)
	}
	if ch, ok := ep.creditWait[srcWorld]; ok {
		delete(ep.creditWait, srcWorld)
		close(ch)
	}
}

func matchSrc(want, got int) bool { return want == mpi.AnySource || want == got }
func matchTag(want, got int) bool { return want == mpi.AnyTag || want == got }

// copyPayload copies src into dst, reporting truncation when src does not
// fit (MPI_ERR_TRUNCATE; the receiver sees the error, the sender does not).
func copyPayload(dst, src []byte) (int, error) {
	if len(src) > len(dst) {
		copy(dst, src[:len(dst)])
		return len(dst), fmt.Errorf("%w: %d-byte message, %d-byte buffer", mpi.ErrTruncate, len(src), len(dst))
	}
	copy(dst, src)
	return len(src), nil
}

// matchPosted finds and removes the first posted receive matching
// (ctx, src, tag). Caller holds ep.mu. The vacated tail slot is nil'ed:
// the shift-down delete otherwise leaves the last pointer duplicated
// past the new length, pinning a delivered (and possibly recycled)
// object for the world's lifetime.
func (ep *endpoint) matchPosted(ctx int64, src, tag int) *posted {
	for i, pr := range ep.recvs {
		if pr.ctx == ctx && matchSrc(pr.src, src) && matchTag(pr.tag, tag) {
			last := len(ep.recvs) - 1
			copy(ep.recvs[i:], ep.recvs[i+1:])
			ep.recvs[last] = nil
			ep.recvs = ep.recvs[:last]
			return pr
		}
	}
	return nil
}

// matchArrival finds and removes the first arrived envelope matching
// (ctx, src, tag). Caller holds ep.mu. The vacated tail slot is nil'ed
// so consumed envelopes (and the pooled buffers they carry) stay
// reclaimable.
func (ep *endpoint) matchArrival(ctx int64, src, tag int) *envelope {
	for i, env := range ep.arrivals {
		if env.ctx == ctx && matchSrc(src, env.src) && matchTag(tag, env.tag) {
			last := len(ep.arrivals) - 1
			copy(ep.arrivals[i:], ep.arrivals[i+1:])
			ep.arrivals[last] = nil
			ep.arrivals = ep.arrivals[:last]
			return env
		}
	}
	return nil
}

func (ep *endpoint) pendingArrivals() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.arrivals)
}

func (ep *endpoint) pendingRecvs() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.recvs)
}

// describePending renders this endpoint's stuck state for diagnostics.
func (ep *endpoint) describePending(rank int) string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	s := ""
	for _, pr := range ep.recvs {
		s += fmt.Sprintf(" [rank %d waiting recv src=%d tag=%d ctx=%d]", rank, pr.src, pr.tag, pr.ctx)
	}
	for _, env := range ep.arrivals {
		if env.rdv != nil {
			s += fmt.Sprintf(" [rank %d holds blocked rendezvous send from %d tag=%d ctx=%d]", rank, env.src, env.tag, env.ctx)
		}
	}
	return s
}
