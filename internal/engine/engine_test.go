package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/topology"
)

// testOpts returns options with short watchdog windows for fast failures.
func testOpts(np int) Options {
	return Options{NP: np, Timeout: 20 * time.Second, DeadlockAfter: 200 * time.Millisecond}
}

func TestSendRecvRoundTrip(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send([]byte("hello"), 1, 7)
		case 1:
			buf := make([]byte, 16)
			st, err := c.Recv(buf, 0, 7)
			if err != nil {
				return err
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != 5 {
				return fmt.Errorf("status = %+v", st)
			}
			if string(buf[:st.Count]) != "hello" {
				return fmt.Errorf("payload = %q", buf[:st.Count])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousRoundTrip(t *testing.T) {
	// Force rendezvous for everything; data must still arrive intact and
	// the sender's buffer must be reusable after Send returns.
	payload := bytes.Repeat([]byte{0xAB}, 1<<16)
	err := RunWith(Options{NP: 2, EagerLimit: -1, DeadlockAfter: 200 * time.Millisecond}, func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			buf := append([]byte(nil), payload...)
			if err := c.Send(buf, 1, 1); err != nil {
				return err
			}
			// Overwrite after Send returns: receiver must have its copy.
			for i := range buf {
				buf[i] = 0
			}
		case 1:
			time.Sleep(10 * time.Millisecond) // let the sender block first
			buf := make([]byte, len(payload))
			st, err := c.Recv(buf, 0, 1)
			if err != nil {
				return err
			}
			if st.Count != len(payload) || !bytes.Equal(buf, payload) {
				return fmt.Errorf("rendezvous payload corrupted (count=%d)", st.Count)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerBufferIndependence(t *testing.T) {
	// Eager send must copy: mutating the sender buffer immediately after
	// Send returns must not corrupt the message.
	err := Run(2, func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			buf := []byte{1, 2, 3, 4}
			if err := c.Send(buf, 1, 1); err != nil {
				return err
			}
			buf[0] = 99
		case 1:
			time.Sleep(10 * time.Millisecond) // ensure the message waits in the queue
			buf := make([]byte, 4)
			if _, err := c.Recv(buf, 0, 1); err != nil {
				return err
			}
			if buf[0] != 1 {
				return fmt.Errorf("eager payload corrupted: %v", buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteMessage(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(nil, 1, 3)
		}
		st, err := c.Recv(nil, 0, 3)
		if err != nil {
			return err
		}
		if st.Count != 0 || st.Source != 0 || st.Tag != 3 {
			return fmt.Errorf("status = %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Two messages with different tags, received in reverse order.
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, 10); err != nil {
				return err
			}
			return c.Send([]byte{2}, 1, 20)
		}
		buf := make([]byte, 1)
		if _, err := c.Recv(buf, 0, 20); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("tag 20 delivered %d", buf[0])
		}
		if _, err := c.Recv(buf, 0, 10); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("tag 10 delivered %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c mpi.Comm) error {
		switch c.Rank() {
		case 1, 2:
			return c.Send([]byte{byte(c.Rank())}, 0, c.Rank()*100)
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 1)
				st, err := c.Recv(buf, mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return err
				}
				if int(buf[0]) != st.Source || st.Tag != st.Source*100 {
					return fmt.Errorf("wildcard status mismatch: %+v payload %d", st, buf[0])
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources seen: %v", seen)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseNonOvertaking(t *testing.T) {
	// 100 same-tag messages from 0 to 1 must arrive in order, mixing
	// eager and rendezvous sizes.
	const n = 100
	err := RunWith(Options{NP: 2, EagerLimit: 64, DeadlockAfter: time.Second}, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				size := 1
				if i%3 == 0 {
					size = 128 // rendezvous
				}
				buf := bytes.Repeat([]byte{byte(i)}, size)
				if err := c.Send(buf, 1, 5); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			buf := make([]byte, 128)
			st, err := c.Recv(buf, 0, 5)
			if err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d out of order: got %d (count %d)", i, buf[0], st.Count)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send([]byte{1, 2, 3, 4}, 1, 1)
		}
		buf := make([]byte, 2)
		_, err := c.Recv(buf, 0, 1)
		if !errors.Is(err, mpi.ErrTruncate) {
			return fmt.Errorf("want ErrTruncate, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRingAllSizes(t *testing.T) {
	// A ring of Sendrecvs must not deadlock, eager or rendezvous.
	for _, eager := range []int{0, -1} {
		for _, np := range []int{2, 3, 5, 8} {
			opts := testOpts(np)
			opts.EagerLimit = eager
			err := RunWith(opts, func(c mpi.Comm) error {
				right := (c.Rank() + 1) % c.Size()
				left := (c.Rank() + c.Size() - 1) % c.Size()
				out := []byte{byte(c.Rank())}
				in := make([]byte, 1)
				if _, err := c.Sendrecv(out, right, 9, in, left, 9); err != nil {
					return err
				}
				if in[0] != byte(left) {
					return fmt.Errorf("ring got %d want %d", in[0], left)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("np=%d eager=%d: %v", np, eager, err)
			}
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	start := time.Now()
	err := RunWith(testOpts(2), func(c mpi.Comm) error {
		// Head-to-head: both ranks receive first.
		buf := make([]byte, 1)
		_, err := c.Recv(buf, 1-c.Rank(), 1)
		return err
	})
	if !errors.Is(err, mpi.ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("deadlock detection took too long: %v", time.Since(start))
	}
}

func TestDeadlockDetectionRendezvousSend(t *testing.T) {
	// A rendezvous send with no receiver must be detected once the other
	// ranks finish.
	opts := testOpts(2)
	opts.EagerLimit = -1
	err := RunWith(opts, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(make([]byte, 1024), 1, 1)
		}
		return nil // rank 1 never receives
	})
	if !errors.Is(err, mpi.ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestPanicRecovery(t *testing.T) {
	err := RunWith(testOpts(2), func(c mpi.Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 blocks; the panic must abort it.
		buf := make([]byte, 1)
		_, err := c.Recv(buf, 1, 1)
		return err
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("panicked")) {
		t.Fatalf("want panic error, got %v", err)
	}
}

func TestRankErrorAbortsWorld(t *testing.T) {
	sentinel := errors.New("rank failure")
	err := RunWith(testOpts(2), func(c mpi.Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		buf := make([]byte, 1)
		_, err := c.Recv(buf, 1, 1)
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
}

func TestUnconsumedMessageStrictness(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send([]byte{1}, 1, 1) // eager: completes immediately
		}
		return nil // rank 1 never receives
	})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("unconsumed")) {
		t.Fatalf("want unconsumed-message error, got %v", err)
	}
}

func TestWorldReuseAfterCleanRun(t *testing.T) {
	w, err := NewWorld(Options{NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Reusable() {
		t.Fatal("fresh world must be reusable")
	}
	for run := 0; run < 3; run++ {
		payload := byte(10 + run)
		err := w.Run(func(c mpi.Comm) error {
			if c.Rank() == 0 {
				return c.Send([]byte{payload}, 1, 1)
			}
			buf := make([]byte, 1)
			if _, err := c.Recv(buf, 0, 1); err != nil {
				return err
			}
			if buf[0] != payload {
				return fmt.Errorf("run %d: got %d, want %d", run, buf[0], payload)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("run %d on reused world: %v", run, err)
		}
		if !w.Reusable() {
			t.Fatalf("world not reusable after clean run %d", run)
		}
	}
}

func TestWorldSpentAfterAbort(t *testing.T) {
	w, err := NewWorld(Options{NP: 2, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("rank failure")
	if err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return sentinel
		}
		_, err := c.Recv(make([]byte, 1), 0, 1)
		return err
	}); !errors.Is(err, sentinel) {
		t.Fatalf("aborting run: %v", err)
	}
	if w.Reusable() {
		t.Fatal("aborted world must not be reusable")
	}
	err = w.Run(func(mpi.Comm) error { return nil })
	if err == nil || !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("Run on spent world = %v, want wrapped mpi.ErrAborted", err)
	}
}

func TestValidationErrors(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(nil, 5, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("peer range: got %v", err)
		}
		if err := c.Send(nil, 1, -3); !errors.Is(err, mpi.ErrTag) {
			return fmt.Errorf("tag range: got %v", err)
		}
		if err := c.Send(nil, 0, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("self send: got %v", err)
		}
		if _, err := c.Recv(nil, mpi.AnySource, -9); !errors.Is(err, mpi.ErrTag) {
			return fmt.Errorf("recv tag: got %v", err)
		}
		if _, err := c.Sendrecv(nil, 9, 1, nil, 0, 1); !errors.Is(err, mpi.ErrRank) {
			return fmt.Errorf("sendrecv peer: got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Options{NP: 0}); err == nil {
		t.Fatal("NP=0 must fail")
	}
	if _, err := NewWorld(Options{NP: 4, Topology: topology.SingleNode(3)}); err == nil {
		t.Fatal("topology size mismatch must fail")
	}
}

func TestCommTopologyDefaults(t *testing.T) {
	err := RunWith(Options{NP: 4}, func(c mpi.Comm) error {
		topo := c.Topology()
		if topo.NP() != 4 || topo.NumNodes() != 1 {
			return fmt.Errorf("default topology = %v", topo)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommTopologyBlocked(t *testing.T) {
	topo := topology.Blocked(6, 2)
	err := RunWith(Options{NP: 6, Topology: topo}, func(c mpi.Comm) error {
		if c.Topology().NumNodes() != 3 {
			return fmt.Errorf("nodes = %d", c.Topology().NumNodes())
		}
		if c.Topology().NodeOf(4) != 2 {
			return fmt.Errorf("rank 4 on node %d", c.Topology().NodeOf(4))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	err := RunWith(testOpts(5), func(c mpi.Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		wantSize := 3 // evens: 0,2,4
		if c.Rank()%2 == 1 {
			wantSize = 2 // odds: 1,3
		}
		if sub.Size() != wantSize {
			return fmt.Errorf("rank %d: sub size %d want %d", c.Rank(), sub.Size(), wantSize)
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("rank %d: sub rank %d want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The new communicator must be usable: ring exchange inside it.
		if sub.Size() > 1 {
			right := (sub.Rank() + 1) % sub.Size()
			left := (sub.Rank() + sub.Size() - 1) % sub.Size()
			out := []byte{byte(sub.Rank())}
			in := make([]byte, 1)
			if _, err := sub.Sendrecv(out, right, 2, in, left, 2); err != nil {
				return err
			}
			if in[0] != byte(left) {
				return fmt.Errorf("sub-comm ring got %d want %d", in[0], left)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	err := RunWith(testOpts(4), func(c mpi.Comm) error {
		// All same color; key reverses the order.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		want := c.Size() - 1 - c.Rank()
		if sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank %d want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	err := RunWith(testOpts(4), func(c mpi.Comm) error {
		color := 0
		if c.Rank() == 2 {
			color = mpi.Undefined
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if sub != nil {
				return errors.New("undefined color must yield nil comm")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			return fmt.Errorf("sub = %v", sub)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitContextIsolation(t *testing.T) {
	// Same-tag traffic in parent and child communicators must not mix.
	err := RunWith(testOpts(2), func(c mpi.Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		const tag = 11
		if c.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, tag); err != nil { // parent ctx
				return err
			}
			return sub.Send([]byte{2}, 1, tag) // child ctx
		}
		buf := make([]byte, 1)
		// Receive from the child context first: must get the child's
		// payload even though the parent message arrived earlier.
		if _, err := sub.Recv(buf, 0, tag); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("child ctx delivered %d", buf[0])
		}
		if _, err := c.Recv(buf, 0, tag); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("parent ctx delivered %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTopologySubset(t *testing.T) {
	topo := topology.Blocked(4, 2) // nodes: {0,1}, {2,3}
	opts := testOpts(4)
	opts.Topology = topo
	err := RunWith(opts, func(c mpi.Comm) error {
		// Group ranks 0 and 2 (different nodes) and 1 and 3.
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Topology().NumNodes() != 2 {
			return fmt.Errorf("sub topology = %v", sub.Topology())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksRandomExchange(t *testing.T) {
	// Stress: every rank sends a token to a random peer (deterministic
	// seed per rank) and receives exactly the tokens addressed to it.
	const np = 32
	counts := make([]int64, np)
	// Precompute destinations so receivers know how many to expect.
	dests := make([]int, np)
	rng := rand.New(rand.NewSource(42))
	for r := 0; r < np; r++ {
		d := rng.Intn(np - 1)
		if d >= r {
			d++
		}
		dests[r] = d
		atomic.AddInt64(&counts[d], 1)
	}
	err := RunWith(testOpts(np), func(c mpi.Comm) error {
		me := c.Rank()
		if err := c.Send([]byte{byte(me)}, dests[me], 1); err != nil {
			return err
		}
		for i := int64(0); i < counts[me]; i++ {
			buf := make([]byte, 1)
			st, err := c.Recv(buf, mpi.AnySource, 1)
			if err != nil {
				return err
			}
			if dests[buf[0]] != me || st.Source != int(buf[0]) {
				return fmt.Errorf("rank %d got stray token %d from %d", me, buf[0], st.Source)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortUnblocksEverything(t *testing.T) {
	// Many ranks blocked in receives; one fails: all must return quickly.
	start := time.Now()
	err := RunWith(testOpts(8), func(c mpi.Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			return errors.New("fail fast")
		}
		buf := make([]byte, 1)
		_, err := c.Recv(buf, 0, 1)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("abort too slow: %v", time.Since(start))
	}
}

func TestEncodeDecodeInts(t *testing.T) {
	vals := []int{0, 1, -1, 1 << 40, -(1 << 40), mpi.Undefined}
	b := encodeInts(vals...)
	got := decodeInts(b, len(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("roundtrip[%d] = %d want %d", i, got[i], vals[i])
		}
	}
}

func TestRendezvousTruncation(t *testing.T) {
	// Truncation on the rendezvous path: the receiver errors, the sender
	// completes normally (its buffer was consumed as far as it fit).
	opts := testOpts(2)
	opts.EagerLimit = -1
	err := RunWith(opts, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send(make([]byte, 1024), 1, 1)
		}
		buf := make([]byte, 100)
		_, err := c.Recv(buf, 0, 1)
		if !errors.Is(err, mpi.ErrTruncate) {
			return fmt.Errorf("want truncate, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvWildcards(t *testing.T) {
	err := RunWith(testOpts(3), func(c mpi.Comm) error {
		if c.Rank() != 0 {
			return c.Send([]byte{byte(c.Rank())}, 0, 40+c.Rank())
		}
		got := map[int]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			req, err := c.Irecv(buf, mpi.AnySource, mpi.AnyTag)
			if err != nil {
				return err
			}
			st, err := req.Wait()
			if err != nil {
				return err
			}
			if st.Tag != 40+st.Source || int(buf[0]) != st.Source {
				return fmt.Errorf("wildcard irecv: %+v payload %d", st, buf[0])
			}
			got[st.Source] = true
		}
		if !got[1] || !got[2] {
			return fmt.Errorf("sources: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitAllUndefined(t *testing.T) {
	err := RunWith(testOpts(3), func(c mpi.Comm) error {
		sub, err := c.Split(mpi.Undefined, 0)
		if err != nil {
			return err
		}
		if sub != nil {
			return errors.New("all-undefined split must return nil everywhere")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColorRejected(t *testing.T) {
	err := RunWith(testOpts(1), func(c mpi.Comm) error {
		if _, err := c.Split(-5, 0); err == nil {
			return errors.New("negative non-Undefined color must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerLimitBoundaryExact(t *testing.T) {
	// A payload exactly at the eager limit is eager (<=); one byte more
	// is rendezvous. Both must deliver correctly back to back.
	opts := testOpts(2)
	opts.EagerLimit = 128
	err := RunWith(opts, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(bytes.Repeat([]byte{1}, 128), 1, 1); err != nil {
				return err
			}
			return c.Send(bytes.Repeat([]byte{2}, 129), 1, 1)
		}
		buf := make([]byte, 129)
		st1, err := c.Recv(buf, 0, 1)
		if err != nil || st1.Count != 128 || buf[0] != 1 {
			return fmt.Errorf("eager boundary: %+v %v", st1, err)
		}
		st2, err := c.Recv(buf, 0, 1)
		if err != nil || st2.Count != 129 || buf[0] != 2 {
			return fmt.Errorf("rendezvous boundary: %+v %v", st2, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
