package engine

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// wirePattern fills a payload deterministically from a seed.
func wirePattern(seed, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed*37 + i*11)
	}
	return b
}

// wireRing is a rank body exercising both wire protocols: a blocking
// Sendrecv ring at an eager size and a rendezvous size, then a
// nonblocking Irecv/Isend ring at a rendezvous size. EagerLimit in the
// world options must sit between eagerSz and rdvSz.
const (
	wireEagerSz = 128
	wireRdvSz   = 8 << 10
	wireLimit   = 1 << 10
)

func wireRing(c mpi.Comm) error {
	me, np := c.Rank(), c.Size()
	next, prev := (me+1)%np, (me+np-1)%np
	for _, sz := range []int{wireEagerSz, wireRdvSz} {
		out := wirePattern(me, sz)
		in := make([]byte, sz)
		st, err := c.Sendrecv(out, next, 7, in, prev, 7)
		if err != nil {
			return err
		}
		if st.Count != sz {
			return fmt.Errorf("rank %d: sendrecv count %d, want %d", me, st.Count, sz)
		}
		if !bytes.Equal(in, wirePattern(prev, sz)) {
			return fmt.Errorf("rank %d: %d-byte ring payload corrupted", me, sz)
		}
	}
	out := wirePattern(me+100, wireRdvSz)
	in := make([]byte, wireRdvSz)
	rr, err := c.Irecv(in, prev, 9)
	if err != nil {
		return err
	}
	sr, err := c.Isend(out, next, 9)
	if err != nil {
		return err
	}
	if _, err := rr.Wait(); err != nil {
		return err
	}
	if _, err := sr.Wait(); err != nil {
		return err
	}
	if !bytes.Equal(in, wirePattern(prev+100, wireRdvSz)) {
		return fmt.Errorf("rank %d: nonblocking ring payload corrupted", me)
	}
	return nil
}

// TestSelfUDPWiredWorld boots one world whose transport force-wires
// every rank through its own UDP socket: all traffic really crosses the
// datagram path, in one process, and results must be correct with wire
// counters lit.
func TestSelfUDPWiredWorld(t *testing.T) {
	tr, err := transport.SelfUDP(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	m := metrics.New(4, 0)
	w, err := NewWorld(Options{
		NP: 4, EagerLimit: wireLimit, Timeout: 30 * time.Second,
		Transport: tr, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.TransportName() != transport.UDPName {
		t.Errorf("TransportName = %q, want udp", w.TransportName())
	}
	// Two sequential runs: world reuse must survive the wire path.
	for run := 0; run < 2; run++ {
		if err := w.Run(wireRing); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	s := m.Snapshot()
	if s.WireDatagramsSent == 0 || s.WireDatagramsRecv == 0 {
		t.Errorf("wire counters dark on a force-wired world: %+v", s)
	}
	if s.EagerSends == 0 || s.RdvSends == 0 {
		t.Errorf("both protocols should have crossed the wire: eager=%d rdv=%d", s.EagerSends, s.RdvSends)
	}
}

// TestSplitHostedWorlds runs one 6-rank world as two cooperating
// "processes" in-process: world A hosts ranks 0–2, world B hosts 3–5,
// each with its own UDP socket, addressing the other's. The ring body
// must complete with correct bytes on every rank across both worlds —
// the same structure cmd/bcastsoak runs across real OS processes.
func TestSplitHostedWorlds(t *testing.T) {
	const np = 6
	connA, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	connB, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peersTo := func(addr net.Addr, ranks ...int) map[int]string {
		p := map[int]string{}
		for _, r := range ranks {
			p[r] = addr.String()
		}
		return p
	}
	trA, err := transport.NewUDP(transport.UDPConfig{
		NP: np, Hosted: []int{0, 1, 2}, Conn: connA,
		Peers: peersTo(connB.LocalAddr(), 3, 4, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trA.Close()
	trB, err := transport.NewUDP(transport.UDPConfig{
		NP: np, Hosted: []int{3, 4, 5}, Conn: connB,
		Peers: peersTo(connA.LocalAddr(), 0, 1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trB.Close()

	mkWorld := func(tr transport.Transport) *World {
		w, err := NewWorld(Options{
			NP: np, EagerLimit: wireLimit, Timeout: 30 * time.Second, Transport: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	wa, wb := mkWorld(trA), mkWorld(trB)

	for run := 0; run < 2; run++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i, w := range []*World{wa, wb} {
			wg.Add(1)
			go func(i int, w *World) {
				defer wg.Done()
				errs[i] = w.Run(wireRing)
			}(i, w)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("run %d, world %d: %v", run, i, err)
			}
		}
	}
}

// TestWiredWorldUnhostedRanksSkipBody: a split-hosted world must invoke
// fn only for its hosted ranks.
func TestWiredWorldUnhostedRanksSkipBody(t *testing.T) {
	const np = 4
	tr, err := transport.NewUDP(transport.UDPConfig{
		NP: np, Hosted: []int{1, 3},
		Peers: map[int]string{0: "127.0.0.1:9", 2: "127.0.0.1:9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	w, err := NewWorld(Options{NP: np, Timeout: 10 * time.Second, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ran := map[int]bool{}
	err = w.Run(func(c mpi.Comm) error {
		mu.Lock()
		ran[c.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 || !ran[1] || !ran[3] {
		t.Errorf("fn ran on ranks %v, want exactly {1, 3}", ran)
	}
}

// TestChanTransportDefaultUnwired: the default world must report the
// chan transport and keep strictness checking active (an unconsumed
// message still fails the run) — the byte-identical pre-seam behavior.
func TestChanTransportDefaultUnwired(t *testing.T) {
	w, err := NewWorld(Options{NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.TransportName() != transport.ChanName {
		t.Errorf("TransportName = %q, want chan", w.TransportName())
	}
	err = w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return c.Send([]byte{1}, 1, 5) // never received
		}
		return nil
	})
	if err == nil {
		t.Error("strictness must still fail an unconsumed message on the chan transport")
	}
}
