// Package engine is the in-process MPI-like runtime: it executes NP rank
// bodies over a pluggable execution substrate (see Executor) and provides
// blocking point-to-point messaging with MPI matching semantics
// ((context, source, tag) with wildcards, pairwise non-overtaking order),
// an eager protocol for small messages (payload copied into the
// receiver's unexpected queue) and a rendezvous protocol for large ones
// (sender blocks until the receiver copies directly from the sender's
// buffer — the single-copy large-transfer path the paper's platforms use
// for the message sizes under study).
//
// How ranks run is a layer of its own: the default GoroutineExecutor
// gives every rank an OS-scheduled goroutine, while the PooledExecutor
// (Options.Executor = Pooled) multiplexes ranks cooperatively onto a
// bounded worker pool — the engine owns every blocking point, so a rank
// parks (releasing its execution slot) whenever it would block and
// re-queues when its operation completes. The pool keeps the runnable
// set within min(GOMAXPROCS, Options.MaxWorkers), which is what makes
// wall-clock measurement of worlds with np in the hundreds meaningful
// instead of scheduler noise.
//
// The engine substitutes for a real MPI library plus cluster: every
// algorithm really moves its bytes through shared memory, so correctness
// tests and user-level wall-clock benchmarks run against it. Timing of
// the paper's cluster experiments is modelled separately by
// internal/netsim.
//
// # Steady-state allocation discipline
//
// A World separates boot cost from per-operation cost. Boot allocates
// the endpoints, executor and per-rank scratch once; after that, a
// clean world may Run any number of times, and the message path recycles
// its per-message objects — eager payload copies (via internal/bufpool),
// unexpected-queue envelopes, posted receives, rendezvous states and the
// internal blocking paths' requests — through free lists. The ownership
// rules for those pooled objects (who may hold a pooled buffer, and
// until when) are spelled out in pool.go; the short version is that
// ownership follows the message, and only the final consumer returns an
// object to its pool, always on a clean completion path — aborted
// operations abandon their objects to the garbage collector rather than
// risk recycling something a peer still references.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/transport"
)

// DefaultEagerLimit is the eager/rendezvous protocol switch-over in bytes
// when Options.EagerLimit is zero. MPICH's default nemesis eager limit is
// 64 KiB.
const DefaultEagerLimit = 64 << 10

// DefaultEagerCredits is the default per-(receiver, sender) window of
// eager messages buffered but not yet received. Real MPI transports bound
// their unexpected-message storage and flow-control senders once the
// window fills; without this, a broadcast loop whose tuned root never
// blocks would flood receivers' queues without bound.
const DefaultEagerCredits = 64

// Options configures a World.
type Options struct {
	// NP is the number of ranks (required, > 0).
	NP int
	// Topology places ranks on nodes; nil means all ranks on one node.
	// It must have exactly NP ranks.
	Topology *topology.Map
	// EagerLimit is the largest payload sent eagerly; larger messages use
	// the rendezvous protocol. Zero selects DefaultEagerLimit; negative
	// forces rendezvous for every message.
	EagerLimit int
	// EagerCredits bounds the eager messages one sender may have buffered
	// at one receiver before further sends block (flow control). Zero
	// selects DefaultEagerCredits; negative means unlimited.
	EagerCredits int
	// Timeout aborts the whole run if it exceeds this wall-clock bound.
	// Zero selects 120 s.
	Timeout time.Duration
	// DeadlockAfter is how long every live rank must sit blocked in a
	// communication call with zero progress before the watchdog declares
	// deadlock. Zero selects 500 ms; negative disables detection.
	DeadlockAfter time.Duration
	// Executor selects the rank-execution substrate (default Goroutine:
	// one OS-scheduled goroutine per rank). Pooled runs ranks over a
	// bounded cooperative worker pool — see ExecPolicy.
	Executor ExecPolicy
	// MaxWorkers bounds the Pooled executor's concurrency: the pool runs
	// min(GOMAXPROCS, MaxWorkers) slots. Zero selects GOMAXPROCS;
	// negative is rejected, and any non-zero value is rejected with the
	// Goroutine executor (nothing would honor it).
	MaxWorkers int
	// Metrics receives the world's instrumentation. It must be sized for
	// NP ranks. Nil means the world creates its own (counters are always
	// on); passing one in lets a caller accumulate across sequential
	// worlds — the facade's Cluster hands every fallback boot the same
	// Metrics — and enables operation spans when it was built with a
	// span capacity.
	Metrics *metrics.Metrics
	// Transport is the point-to-point substrate for destinations it
	// declares wired (see internal/transport). Nil selects the
	// in-process chan transport — every rank hosted, nothing wired,
	// byte-identical to the pre-seam engine. The world does not own the
	// transport: the caller that built it closes it, after the world's
	// last run.
	Transport transport.Transport
}

// World is a fixed-size group of ranks with message endpoints. A World
// may host any number of sequential Runs as long as every one finishes
// cleanly: rank bodies are re-launched onto the live endpoints, the
// watchdog re-arms, and the boot-time allocations (endpoints, executor,
// per-rank state) are paid exactly once — the split between world-boot
// cost and per-operation cost that makes steady-state serving viable.
// A world that aborted (rank error, panic, cancellation, timeout,
// deadlock) is spent: its pending operations unwound through the closed
// abort channel, so further Runs are refused and the caller must boot a
// fresh world. Reusable reports which side of that line a world is on.
type World struct {
	np           int
	topo         *topology.Map
	eagerLimit   int
	eagerCredits int // 0 = unlimited
	timeout      time.Duration
	deadlock     time.Duration

	exec Executor

	// metrics is never nil: NewWorld wires the caller's Metrics or
	// creates a counters-only one, so every counter site updates
	// unconditionally (one atomic add — no branch, no allocation).
	metrics *metrics.Metrics

	// trans is never nil (default transport.Chan). wired caches whether
	// any destination crosses it — the single boolean the in-process
	// send path pays for the seam. hosted[r] caches trans.Hosted(r):
	// only hosted ranks execute fn; the rest belong to peer processes.
	trans  transport.Transport
	wired  bool
	hosted []bool

	// Remote rendezvous in flight: correlation id → the blocked
	// sender's rdvState, signaled by deliverRemote on RdvAck.
	rdvSeq    atomic.Uint64
	remoteMu  sync.Mutex
	remoteRdv map[uint64]*rdvState

	eps    []*endpoint
	ctxSeq atomic.Int64

	aborted   chan struct{}
	abortOnce sync.Once
	abortErr  atomic.Value // error

	progress atomic.Int64
	// state[r]: 0 = running, 1 = blocked in a communication call, 2 = done.
	state []atomic.Int32
	// running guards against concurrent Runs on one world; sequential
	// reuse resets the per-run state below.
	running atomic.Bool

	// Per-run scratch, pre-sized at boot and reset in place between
	// runs so a reused world's Run allocates O(np) at most (goroutine
	// launches), never O(messages).
	members []int   // world communicator members (identity), shared by every run
	comms   []comm  // per-rank world communicators, rewritten per run
	errs    []error // per-rank run errors, cleared per run
}

// NewWorld validates opts and builds a World.
func NewWorld(opts Options) (*World, error) {
	if opts.NP <= 0 {
		return nil, fmt.Errorf("engine: NP must be positive, got %d", opts.NP)
	}
	topo := opts.Topology
	if topo == nil {
		topo = topology.SingleNode(opts.NP)
	}
	if topo.NP() != opts.NP {
		return nil, fmt.Errorf("engine: topology has %d ranks, want %d", topo.NP(), opts.NP)
	}
	eager := opts.EagerLimit
	switch {
	case eager == 0:
		eager = DefaultEagerLimit
	case eager < 0:
		eager = -1 // every message rendezvous (even empty ones)
	}
	credits := opts.EagerCredits
	switch {
	case credits == 0:
		credits = DefaultEagerCredits
	case credits < 0:
		credits = 0 // unlimited
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 120 * time.Second
	}
	dl := opts.DeadlockAfter
	if dl == 0 {
		dl = 500 * time.Millisecond
	}
	trans := opts.Transport
	if trans == nil {
		trans = transport.Chan{}
	}
	wired := false
	hosted := make([]bool, opts.NP)
	for r := 0; r < opts.NP; r++ {
		hosted[r] = trans.Hosted(r)
		wired = wired || trans.Wire(r)
	}
	if wired {
		// Wire traffic makes local progress accounting blind: every
		// hosted rank legitimately blocks while datagrams (or a peer
		// process) are in flight, so deadlock detection would fire on
		// ordinary latency. The hard wall-clock timeout still guards.
		dl = -1
	}
	exec, err := newExecutor(opts.Executor, opts.MaxWorkers)
	if err != nil {
		return nil, err
	}
	mx := opts.Metrics
	if mx == nil {
		mx = metrics.New(opts.NP, 0)
	} else if mx.NP() != opts.NP {
		return nil, fmt.Errorf("engine: Metrics sized for %d ranks, want %d", mx.NP(), opts.NP)
	}
	if pe, ok := exec.(*PooledExecutor); ok {
		pe.metrics = mx
	}
	w := &World{
		exec:         exec,
		metrics:      mx,
		np:           opts.NP,
		topo:         topo,
		eagerLimit:   eager,
		eagerCredits: credits,
		timeout:      timeout,
		deadlock:     dl,
		trans:        trans,
		wired:        wired,
		hosted:       hosted,
		remoteRdv:    map[uint64]*rdvState{},
		eps:          make([]*endpoint, opts.NP),
		aborted:      make(chan struct{}),
		state:        make([]atomic.Int32, opts.NP),
		members:      make([]int, opts.NP),
		comms:        make([]comm, opts.NP),
		errs:         make([]error, opts.NP),
	}
	for i := range w.eps {
		w.eps[i] = newEndpoint()
	}
	for i := range w.members {
		w.members[i] = i
	}
	if bm, ok := trans.(interface{ BindMetrics(*metrics.Metrics) }); ok {
		bm.BindMetrics(mx)
	}
	if wired {
		if err := trans.Start(w.deliverRemote); err != nil {
			return nil, fmt.Errorf("engine: transport start: %w", err)
		}
	}
	return w, nil
}

// NP returns the world size.
func (w *World) NP() int { return w.np }

// Topology returns the world's rank placement.
func (w *World) Topology() *topology.Map { return w.topo }

// EagerLimit returns the effective eager/rendezvous threshold (-1 when
// rendezvous is forced).
func (w *World) EagerLimit() int { return w.eagerLimit }

// ExecutorName labels the world's rank-execution substrate for
// provenance ("goroutine", "pooled(8)").
func (w *World) ExecutorName() string { return w.exec.Name() }

// Reusable reports whether the world can host another Run: no Run is in
// progress and the world has not aborted. It is advisory — callers like
// bcast.Cluster consult it to decide between reusing a booted world and
// falling back to a fresh boot. A world whose last Run returned a
// non-nil error of any kind should be discarded even if Reusable still
// reports true (a strictness failure leaves stale messages behind).
func (w *World) Reusable() bool {
	select {
	case <-w.aborted:
		return false
	default:
	}
	return !w.running.Load()
}

func (w *World) abort(err error) {
	w.abortOnce.Do(func() {
		w.metrics.Add(0, metrics.AbortedRuns, 1)
		w.abortErr.Store(err)
		close(w.aborted)
	})
}

func (w *World) abortError() error {
	if err, ok := w.abortErr.Load().(error); ok {
		return fmt.Errorf("%w: %w", mpi.ErrAborted, err)
	}
	return mpi.ErrAborted
}

// Run executes fn concurrently on every rank and waits for all of them.
// A rank returning a non-nil error (or panicking) aborts the world,
// unblocking every pending operation with mpi.ErrAborted. After a clean
// finish, Run fails if any endpoint still holds unconsumed messages —
// every sent message must have been received, which catches mismatched
// schedules that MPI itself would let leak. After a clean (nil-error)
// finish the world may Run again; an aborted world refuses further
// Runs.
func (w *World) Run(fn func(mpi.Comm) error) error {
	return w.RunContext(context.Background(), fn)
}

// RunContext is Run bound to a context: when ctx is canceled or its
// deadline expires, the world aborts — every rank's pending communication
// unblocks with an error wrapping mpi.ErrAborted and the context's cause
// (errors.Is against context.Canceled / context.DeadlineExceeded works),
// fn returns on every rank, and RunContext returns with no goroutine left
// behind. Each rank's Comm carries the context binding, so ranks busy
// between calls observe cancellation at their next communication call;
// the watcher below catches them even mid-block.
func (w *World) RunContext(ctx context.Context, fn func(mpi.Comm) error) error {
	if !w.running.CompareAndSwap(false, true) {
		return errors.New("engine: concurrent Run on one World (Runs must be sequential)")
	}
	defer w.running.Store(false)
	select {
	case <-w.aborted:
		return fmt.Errorf("engine: world is spent: %w (boot a new World after an abort)", w.abortError())
	default:
	}
	// Re-arm per-run state in place: rank states back to running, rank
	// errors cleared, collective tag-stream counters dropped (the comm
	// contexts they key on are dead after the run; clearing also bounds
	// the per-ctx map footprint Split accumulates). Endpoints need no
	// other reset — a clean previous run proved them drained, and context
	// ids are world-monotonic so stale matching is impossible.
	for r := range w.state {
		w.state[r].Store(0)
	}
	for r := range w.errs {
		w.errs[r] = nil
	}
	for _, ep := range w.eps {
		ep.resetStreams()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	worldCtx := w.ctxSeq.Add(1)
	cancel := cancelSignal{}
	if ctx.Done() != nil {
		cancel = cancelSignal{
			done:  ctx.Done(),
			cause: func() error { return context.Cause(ctx) },
		}
		// The watcher turns cancellation into a world abort even while
		// every rank is blocked; it exits with the run.
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				w.abort(fmt.Errorf("engine: run canceled: %w", context.Cause(ctx)))
			case <-w.aborted:
			case <-stop:
			}
		}()
	}

	body := func(rank int) {
		defer w.state[rank].Store(2)
		if !w.hosted[rank] {
			// The rank's body runs in a peer process; its traffic reaches
			// us through the transport, not through fn.
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				w.errs[rank] = fmt.Errorf("engine: rank %d panicked: %v\n%s", rank, rec, debug.Stack())
				w.abort(w.errs[rank])
			}
		}()
		// Per-rank communicators are pre-allocated at boot and rewritten
		// per run (a Comm is documented as valid only during the call).
		c := &w.comms[rank]
		*c = comm{w: w, ctx: worldCtx, members: w.members, rank: rank, topo: w.topo, cancel: cancel}
		if err := fn(c); err != nil {
			w.errs[rank] = fmt.Errorf("engine: rank %d: %w", rank, err)
			w.abort(w.errs[rank])
		}
	}

	watchdogDone := make(chan struct{})
	var watchdogWG sync.WaitGroup
	watchdogWG.Add(1)
	go func() {
		defer watchdogWG.Done()
		w.watchdog(watchdogDone)
	}()

	w.exec.Launch(w.np, body)
	close(watchdogDone)
	watchdogWG.Wait()

	// Report the root cause: a rank's own failure beats cascade aborts.
	var cascade error
	for _, err := range w.errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, mpi.ErrAborted) {
			return err
		}
		if cascade == nil {
			cascade = err
		}
	}
	if err, ok := w.abortErr.Load().(error); ok {
		return err
	}
	if cascade != nil {
		return cascade
	}
	// Strictness: no message may be left unconsumed. Skipped on wired
	// worlds — a peer process that already entered its next run may
	// land messages here between our last receive and this scan, so
	// "drained at run end" is not a well-defined cross-process instant.
	if w.wired {
		return nil
	}
	for rank, ep := range w.eps {
		if n := ep.pendingArrivals(); n > 0 {
			return fmt.Errorf("engine: rank %d finished with %d unconsumed messages", rank, n)
		}
		if n := ep.pendingRecvs(); n > 0 {
			return fmt.Errorf("engine: rank %d finished with %d unmatched posted receives", rank, n)
		}
	}
	return nil
}

// watchdog aborts the world on wall-clock timeout or on a detected global
// deadlock: every live rank blocked in a communication call with the
// progress counter frozen for at least w.deadlock.
func (w *World) watchdog(done <-chan struct{}) {
	hard := time.NewTimer(w.timeout)
	defer hard.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()

	var frozenSince time.Time
	lastProgress := int64(-1)
	for {
		select {
		case <-done:
			return
		case <-w.aborted:
			return
		case <-hard.C:
			w.abort(fmt.Errorf("engine: wall-clock timeout after %v%s", w.timeout, w.pendingSummary()))
			return
		case <-tick.C:
			if w.deadlock < 0 {
				continue
			}
			prog := w.progress.Load()
			allBlocked := true
			anyBlocked := false
			for r := range w.state {
				switch w.state[r].Load() {
				case 0:
					allBlocked = false
				case 1:
					anyBlocked = true
				}
			}
			if !(allBlocked && anyBlocked) || prog != lastProgress {
				lastProgress = prog
				frozenSince = time.Time{}
				continue
			}
			if frozenSince.IsZero() {
				frozenSince = time.Now()
				continue
			}
			if time.Since(frozenSince) >= w.deadlock {
				w.abort(fmt.Errorf("%w: all live ranks blocked with no progress for %v%s",
					mpi.ErrDeadlock, w.deadlock, w.pendingSummary()))
				return
			}
		}
	}
}

// pendingSummary renders the blocked operations for deadlock diagnostics.
func (w *World) pendingSummary() string {
	s := ""
	for rank, ep := range w.eps {
		s += ep.describePending(rank)
	}
	if s == "" {
		return ""
	}
	return "; pending:" + s
}

// Run is the convenience entry point: np ranks on a single node with
// default options.
func Run(np int, fn func(mpi.Comm) error) error {
	w, err := NewWorld(Options{NP: np})
	if err != nil {
		return err
	}
	return w.Run(fn)
}

// RunWith builds a world with the given options and runs fn.
func RunWith(opts Options, fn func(mpi.Comm) error) error {
	w, err := NewWorld(opts)
	if err != nil {
		return err
	}
	return w.Run(fn)
}
