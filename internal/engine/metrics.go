package engine

import (
	"repro/internal/bufpool"
	"repro/internal/metrics"
)

// Metrics returns the world's instrumentation (never nil — a world
// without a caller-supplied Metrics creates a counters-only one).
func (w *World) Metrics() *metrics.Metrics { return w.metrics }

// CollectMetrics merges m into a Snapshot and folds in the
// process-global buffer-pool activity, which the metrics package itself
// cannot reach (it is a leaf; bufpool sits beside it). Every snapshot
// assembler — the facade's Cluster.Metrics, the benchmark harness —
// goes through here so the two halves cannot drift apart.
func CollectMetrics(m *metrics.Metrics) metrics.Snapshot {
	s := m.Snapshot()
	classes, oGets, oPuts := bufpool.Stats()
	for _, c := range classes {
		s.BufPool = append(s.BufPool, metrics.PoolClassStats{
			Size: c.Size, Gets: c.Gets, Puts: c.Puts, Misses: c.Misses,
		})
	}
	s.OversizeGets, s.OversizePuts = oGets, oPuts
	return s
}
