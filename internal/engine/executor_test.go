package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/testutil"
)

// TestOptionsExecutorValidation pins the Options contract: negative
// MaxWorkers is rejected loudly, MaxWorkers is pooled-only, unknown
// policies are rejected, and zero MaxWorkers defaults to GOMAXPROCS.
func TestOptionsExecutorValidation(t *testing.T) {
	if _, err := NewWorld(Options{NP: 2, Executor: Pooled, MaxWorkers: -1}); err == nil {
		t.Error("negative MaxWorkers accepted")
	}
	if _, err := NewWorld(Options{NP: 2, MaxWorkers: 4}); err == nil {
		t.Error("MaxWorkers accepted with the goroutine executor")
	}
	if _, err := NewWorld(Options{NP: 2, Executor: ExecPolicy(99)}); err == nil {
		t.Error("unknown executor policy accepted")
	}

	w, err := NewWorld(Options{NP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.ExecutorName(); got != "goroutine" {
		t.Errorf("default executor name = %q, want goroutine", got)
	}
	w, err = NewWorld(Options{NP: 2, Executor: Pooled})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("pooled(%d)", runtime.GOMAXPROCS(0))
	if got := w.ExecutorName(); got != want {
		t.Errorf("pooled default name = %q, want %q", got, want)
	}
}

func TestParseExecPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ExecPolicy
	}{{"goroutine", Goroutine}, {"pooled", Pooled}} {
		got, err := ParseExecPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseExecPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseExecPolicy("threads"); err == nil {
		t.Error("unknown executor name accepted")
	}
}

func TestPooledWorkersClamp(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := PooledWorkers(0); got != procs {
		t.Errorf("PooledWorkers(0) = %d, want GOMAXPROCS %d", got, procs)
	}
	if got := PooledWorkers(1); got != 1 {
		t.Errorf("PooledWorkers(1) = %d, want 1", got)
	}
	if got := PooledWorkers(1 << 20); got != procs {
		t.Errorf("PooledWorkers(huge) = %d, want GOMAXPROCS %d", got, procs)
	}
}

// TestPooledBoundsConcurrency is the pool's core invariant: user code of
// at most Workers ranks runs at any instant, even with np far beyond the
// pool, and ranks parked in communication hold no slot. The bound is
// structural (a slot is held exactly while user code runs), so the peak
// counter cannot exceed it regardless of scheduling.
func TestPooledBoundsConcurrency(t *testing.T) {
	const np, workers, rounds = 32, 2, 4
	w, err := NewWorld(Options{NP: np, Executor: Pooled, MaxWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var running, peak atomic.Int32
	enter := func() {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}
	err = w.Run(func(c mpi.Comm) error {
		buf := make([]byte, 8)
		for i := 0; i < rounds; i++ {
			enter()
			time.Sleep(200 * time.Microsecond) // hold the slot in user code
			running.Add(-1)
			// A full ring per round forces every rank through park/unpark.
			next, prev := (c.Rank()+1)%np, (c.Rank()+np-1)%np
			if err := c.Send(buf, next, 1); err != nil {
				return err
			}
			if _, err := c.Recv(buf, prev, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrent user-code ranks = %d, want <= %d", got, workers)
	}
}

// TestPooledRendezvousCorrectness moves rendezvous-sized payloads
// through a pooled world much wider than its pool: blocked senders must
// park without wedging the pool, and every byte must land.
func TestPooledRendezvousCorrectness(t *testing.T) {
	const np = 64
	w, err := NewWorld(Options{NP: np, Executor: Pooled, MaxWorkers: 3, EagerLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 4<<10)
	for i := range want {
		want[i] = byte(i * 7)
	}
	err = w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			for r := 1; r < np; r++ {
				if err := c.Send(want, r, 2); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, len(want))
		if _, err := c.Recv(buf, 0, 2); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: payload corrupted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPooledCancellationUnwinds fires a context while every rank of a
// pooled world is parked in an unmatchable receive: all ranks must
// unwind promptly with the cause attached and no worker or rank
// goroutine left behind — the same collective-cancellation guarantees
// the goroutine executor's tests assert.
func TestPooledCancellationUnwinds(t *testing.T) {
	base := runtime.NumGoroutine()
	w, err := NewWorld(Options{NP: 16, Executor: Pooled, MaxWorkers: 2, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = w.RunContext(ctx, func(c mpi.Comm) error {
		_, err := c.Recv(make([]byte, 8), mpi.AnySource, mpi.AnyTag) // never sent
		return err
	})
	if err == nil {
		t.Fatal("canceled pooled run returned nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("pooled cancellation took %v, want prompt unwind", elapsed)
	}
	testutil.WaitGoroutines(t, base)
}

// TestPooledDeadlockDetected: the watchdog's global-deadlock detection
// must survive the executor refactor — parked pooled ranks count as
// blocked, and a world where everyone waits forever is diagnosed, not
// hung.
func TestPooledDeadlockDetected(t *testing.T) {
	w, err := NewWorld(Options{NP: 4, Executor: Pooled, MaxWorkers: 2, DeadlockAfter: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c mpi.Comm) error {
		_, err := c.Recv(make([]byte, 1), mpi.AnySource, 9) // nobody sends
		return err
	})
	if !errors.Is(err, mpi.ErrDeadlock) {
		t.Fatalf("deadlocked pooled world returned %v, want mpi.ErrDeadlock", err)
	}
}

// TestPooledPanicAborts: a panicking rank must abort a pooled world and
// report the panic, with parked ranks unwound and workers released.
func TestPooledPanicAborts(t *testing.T) {
	base := runtime.NumGoroutine()
	w, err := NewWorld(Options{NP: 8, Executor: Pooled, MaxWorkers: 2, DeadlockAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c mpi.Comm) error {
		if c.Rank() == 3 {
			panic("boom")
		}
		_, err := c.Recv(make([]byte, 1), mpi.AnySource, 4)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking pooled world returned %v, want panic report", err)
	}
	testutil.WaitGoroutines(t, base)
}
