package engine

// The engine's transport seam. A world built with a wired transport
// (see internal/transport) routes sends whose destination the transport
// declares wired through Transport.Send instead of the in-process
// endpoint path, and receives inbound messages via deliverRemote on the
// transport's delivery goroutine. The protocols map as:
//
//   - Eager: the payload crosses the wire and the send completes at
//     enqueue time — the transport's copy substitutes for the local
//     staging copy, so StagedBytes accounting is unchanged. On arrival
//     the message either completes a posted receive directly or parks
//     in the unexpected queue as an ordinary eager envelope (charging
//     the sender's eager-credit account, which the consuming receive
//     releases as usual; remote senders are not credit-blocked — the
//     transport's send window is their flow control).
//   - Rendezvous: the payload crosses the wire with a correlation id
//     and the sender blocks on a pooled rdvState registered under that
//     id. When the receiver consumes the payload, the envelope's fin
//     callback sends a RdvAck back over the same reliable stream, and
//     deliverRemote signals the sender's rdvState. The "sender blocks
//     until the receiver takes the message" contract survives; only the
//     single-copy property is traded for wire framing.
//
// Aborted operations abandon their registered rdvStates to the garbage
// collector (the map entry is dropped; a late ack finds nothing), the
// same policy pool.go sets for local aborts.

import (
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/transport"
)

// TransportName labels the world's transport for provenance
// ("chan", "udp").
func (w *World) TransportName() string { return w.trans.Name() }

// registerRdv allocates a correlation id and parks a pooled rdvState
// under it for a remote rendezvous in flight.
func (w *World) registerRdv() (uint64, *rdvState) {
	id := w.rdvSeq.Add(1)
	rdv := rdvPool.Get().(*rdvState)
	w.remoteMu.Lock()
	w.remoteRdv[id] = rdv
	w.remoteMu.Unlock()
	return id, rdv
}

// unregisterRdv abandons an in-flight remote rendezvous (abort/cancel):
// the map entry is dropped and the rdvState left to the garbage
// collector, since a late ack may still be heading for it.
func (w *World) unregisterRdv(id uint64) {
	w.remoteMu.Lock()
	delete(w.remoteRdv, id)
	w.remoteMu.Unlock()
}

// remoteSend is the blocking send for a wired destination.
func (w *World) remoteSend(ctx int64, srcRank, srcWorld, dstWorld int, buf []byte, tag int, track bool, cnl cancelSignal) error {
	select {
	case <-w.aborted:
		return w.abortError()
	default:
	}
	if err := cnl.fired(w); err != nil {
		return err
	}
	if len(buf) <= w.eagerLimit {
		err := w.trans.Send(transport.Message{
			Ctx: ctx, Src: srcRank, SrcWorld: srcWorld, Dst: dstWorld,
			Tag: tag, Kind: transport.Eager, Data: buf,
		})
		if err != nil {
			w.abort(err)
			return w.abortError()
		}
		w.progress.Add(1)
		w.metrics.Add(srcWorld, metrics.EagerSends, 1)
		w.metrics.Add(srcWorld, metrics.StagedBytes, int64(len(buf)))
		return nil
	}
	id, rdv := w.registerRdv()
	err := w.trans.Send(transport.Message{
		Ctx: ctx, Src: srcRank, SrcWorld: srcWorld, Dst: dstWorld,
		Tag: tag, Kind: transport.Rdv, MsgID: id, Data: buf,
	})
	if err != nil {
		w.unregisterRdv(id)
		w.abort(err)
		return w.abortError()
	}
	w.progress.Add(1)
	w.metrics.Add(srcWorld, metrics.RdvSends, 1)
	if track {
		w.parkRank(srcWorld)
		defer w.unparkRank(srcWorld)
	}
	select {
	case <-rdv.done:
		putRdv(rdv)
		return nil
	case <-w.aborted:
		w.unregisterRdv(id)
		return w.abortError()
	case <-cnl.done:
		w.unregisterRdv(id)
		return cnl.fire(w)
	}
}

// isendRemote is the nonblocking send for a wired destination. Eager
// completes immediately; rendezvous returns a request blocked on the
// registered rdvState, which request.Wait handles exactly like a local
// zero-copy send (the ack signal is delivered through the same
// buffered-once channel).
func (w *World) isendRemote(ctx int64, srcRank, srcWorld, dstWorld int, buf []byte, tag int, cnl cancelSignal) *request {
	select {
	case <-w.aborted:
		return completedRequest(mpi.Status{}, w.abortError())
	default:
	}
	if err := cnl.fired(w); err != nil {
		return completedRequest(mpi.Status{}, err)
	}
	if len(buf) <= w.eagerLimit {
		err := w.trans.Send(transport.Message{
			Ctx: ctx, Src: srcRank, SrcWorld: srcWorld, Dst: dstWorld,
			Tag: tag, Kind: transport.Eager, Data: buf,
		})
		if err != nil {
			w.abort(err)
			return completedRequest(mpi.Status{}, w.abortError())
		}
		w.progress.Add(1)
		w.metrics.Add(srcWorld, metrics.EagerSends, 1)
		w.metrics.Add(srcWorld, metrics.StagedBytes, int64(len(buf)))
		return completedRequest(mpi.Status{Count: len(buf)}, nil)
	}
	id, rdv := w.registerRdv()
	err := w.trans.Send(transport.Message{
		Ctx: ctx, Src: srcRank, SrcWorld: srcWorld, Dst: dstWorld,
		Tag: tag, Kind: transport.Rdv, MsgID: id, Data: buf,
	})
	if err != nil {
		w.unregisterRdv(id)
		w.abort(err)
		return completedRequest(mpi.Status{}, w.abortError())
	}
	w.progress.Add(1)
	w.metrics.Add(srcWorld, metrics.RdvSends, 1)
	r := requestPool.Get().(*request)
	*r = request{w: w, trackRank: srcWorld, rdv: rdv, sendN: len(buf), cancel: cnl}
	return r
}

// deliverRemote is the transport Handler: it runs on the transport's
// delivery goroutine and injects inbound messages into the destination
// endpoint exactly where a local sender would — completing a posted
// receive directly or parking an envelope in the unexpected queue.
func (w *World) deliverRemote(m transport.Message) {
	if m.Kind == transport.RdvAck {
		if m.Buf != nil {
			m.Buf.Release()
		}
		w.remoteMu.Lock()
		rdv := w.remoteRdv[m.MsgID]
		delete(w.remoteRdv, m.MsgID)
		w.remoteMu.Unlock()
		if rdv != nil {
			rdv.done <- struct{}{}
			w.progress.Add(1)
		}
		return
	}
	if (m.Kind != transport.Eager && m.Kind != transport.Rdv) ||
		m.Dst < 0 || m.Dst >= w.np || !w.hosted[m.Dst] {
		if m.Buf != nil {
			m.Buf.Release()
		}
		return
	}
	eager := m.Kind == transport.Eager
	var fin func()
	if !eager {
		// Consumption notice back to the blocked sender. Captured by
		// value so the closure does not pin the payload buffer.
		ctx, from, to, id := m.Ctx, m.Dst, m.SrcWorld, m.MsgID
		fin = func() {
			_ = w.trans.Send(transport.Message{
				Ctx: ctx, Src: from, SrcWorld: from, Dst: to,
				Kind: transport.RdvAck, MsgID: id,
			})
		}
	}
	ep := w.eps[m.Dst]
	ep.mu.Lock()
	if pr := ep.matchPosted(m.Ctx, m.Src, m.Tag); pr != nil {
		n, err := copyPayload(pr.buf, m.Data)
		ep.mu.Unlock()
		pr.done <- recvResult{st: mpi.Status{Source: m.Src, Tag: m.Tag, Count: n}, err: err}
		if m.Buf != nil {
			m.Buf.Release()
		}
		w.progress.Add(1)
		w.countRecv(m.Dst, eager)
		if fin != nil {
			fin()
		}
		return
	}
	env := newRemoteEnvelope(&m, fin)
	ep.arrivals = append(ep.arrivals, env)
	if eager {
		ep.eagerBuffered[m.SrcWorld]++
	}
	w.metrics.Max(m.Dst, metrics.ArrivalQueueMax, int64(len(ep.arrivals)))
	ep.mu.Unlock()
	w.progress.Add(1)
}
