package engine

import (
	"repro/internal/bufpool"
	"repro/internal/metrics"
	"repro/internal/mpi"
)

// request implements mpi.Request. A request is used only by its owning
// rank's goroutine (like MPI), so completion caching needs no locking.
// Requests are pooled: the engine's own blocking paths recycle them
// through putRequest, while requests returned by Isend/Irecv stay with
// the caller (see pool.go).
type request struct {
	w *World
	// trackRank, when >= 0, marks that world rank blocked while Wait
	// waits (deadlock-detector accounting).
	trackRank int
	// cancel is the bound cancellation signal of the communicator that
	// issued the operation (zero = unbound).
	cancel cancelSignal

	// Pending completion sources (exactly one is non-nil while pending):
	pr    *posted   // posted receive (completion delivered via pr.done)
	rdv   *rdvState // zero-copy send awaiting its receiver
	sendN int       // payload size for the send status

	// Cached result once complete.
	complete bool
	st       mpi.Status
	err      error
}

var _ mpi.Request = (*request)(nil)

func (r *request) Wait() (mpi.Status, error) {
	if r.complete {
		return r.st, r.err
	}
	// Poll before parking: an already-delivered result completes without
	// surrendering the execution slot, so the pooled substrate's hot path
	// (eager message waiting in the queue) skips a FIFO round-trip
	// through the pool.
	if r.Done() {
		return r.st, r.err
	}
	if r.trackRank >= 0 {
		r.w.parkRank(r.trackRank)
		defer r.w.unparkRank(r.trackRank)
	}
	switch {
	case r.pr != nil:
		select {
		case res := <-r.pr.done:
			r.st, r.err = res.st, res.err
			putPosted(r.pr) // drained; the sender is done with it
		case <-r.w.aborted:
			r.st, r.err = mpi.Status{}, r.w.abortError()
		case <-r.cancel.done:
			r.st, r.err = mpi.Status{}, r.cancel.fire(r.w)
		}
	case r.rdv != nil:
		select {
		case <-r.rdv.done:
			r.st, r.err = mpi.Status{Count: r.sendN}, nil
			putRdv(r.rdv) // signal consumed; the receiver is done with it
		case <-r.w.aborted:
			r.st, r.err = mpi.Status{}, r.w.abortError()
		case <-r.cancel.done:
			r.st, r.err = mpi.Status{}, r.cancel.fire(r.w)
		}
	}
	r.complete = true
	r.pr, r.rdv = nil, nil
	return r.st, r.err
}

func (r *request) Done() bool {
	if r.complete {
		return true
	}
	switch {
	case r.pr != nil:
		select {
		case res := <-r.pr.done:
			r.st, r.err = res.st, res.err
			putPosted(r.pr)
		default:
			return false
		}
	case r.rdv != nil:
		select {
		case <-r.rdv.done:
			r.st, r.err = mpi.Status{Count: r.sendN}, nil
			putRdv(r.rdv)
		default:
			return false
		}
	}
	r.complete = true
	r.pr, r.rdv = nil, nil
	return true
}

// isend starts a nonblocking send. It never blocks: if the eager credit
// window is full (or the message is rendezvous-sized), the message is
// enqueued as a zero-copy envelope backed by the caller's buffer — legal
// because MPI forbids touching the buffer until the request completes —
// and the request finishes when the receiver copies it out. Envelopes
// enter the queue synchronously, preserving non-overtaking order.
func (w *World) isend(ctx int64, srcRank, srcWorld, dstWorld int, buf []byte, tag int, cnl cancelSignal) *request {
	if w.wired && w.trans.Wire(dstWorld) {
		return w.isendRemote(ctx, srcRank, srcWorld, dstWorld, buf, tag, cnl)
	}
	select {
	case <-w.aborted:
		return completedRequest(mpi.Status{}, w.abortError())
	default:
	}
	if err := cnl.fired(w); err != nil {
		return completedRequest(mpi.Status{}, err)
	}
	ep := w.eps[dstWorld]
	eager := len(buf) <= w.eagerLimit

	ep.mu.Lock()
	if pr := ep.matchPosted(ctx, srcRank, tag); pr != nil {
		var n int
		var err error
		if eager {
			staging := bufpool.Get(len(buf))
			copy(staging.B, buf)
			n, err = copyPayload(pr.buf, staging.B)
			staging.Release()
			w.metrics.Add(srcWorld, metrics.StagedBytes, int64(len(buf)))
		} else {
			n, err = copyPayload(pr.buf, buf)
		}
		ep.mu.Unlock()
		pr.done <- recvResult{st: mpi.Status{Source: srcRank, Tag: tag, Count: n}, err: err}
		w.progress.Add(1)
		w.countSend(srcWorld, eager)
		w.countRecv(dstWorld, eager)
		return completedRequest(mpi.Status{Count: len(buf)}, nil)
	}
	if eager && (w.eagerCredits == 0 || ep.eagerBuffered[srcWorld] < w.eagerCredits) {
		ep.arrivals = append(ep.arrivals, newEagerEnvelope(ctx, srcRank, srcWorld, tag, buf))
		ep.eagerBuffered[srcWorld]++
		w.metrics.Max(dstWorld, metrics.ArrivalQueueMax, int64(len(ep.arrivals)))
		ep.mu.Unlock()
		w.progress.Add(1)
		w.metrics.Add(srcWorld, metrics.EagerSends, 1)
		w.metrics.Add(srcWorld, metrics.StagedBytes, int64(len(buf)))
		return completedRequest(mpi.Status{Count: len(buf)}, nil)
	}
	// Zero-copy envelope: rendezvous-sized payloads, or eager overflow
	// past the credit window (the pinned buffer substitutes for the
	// buffering the receiver refused).
	env := newRdvEnvelope(ctx, srcRank, srcWorld, tag, buf)
	rdv := env.rdv
	ep.arrivals = append(ep.arrivals, env)
	w.metrics.Max(dstWorld, metrics.ArrivalQueueMax, int64(len(ep.arrivals)))
	ep.mu.Unlock()
	w.progress.Add(1)
	w.metrics.Add(srcWorld, metrics.RdvSends, 1)
	r := requestPool.Get().(*request)
	*r = request{w: w, trackRank: srcWorld, rdv: rdv, sendN: len(buf), cancel: cnl}
	return r
}

// irecv posts a nonblocking receive. Posting happens synchronously (so a
// rendezvous sender can match it immediately); the request completes when
// a matching message is consumed.
func (w *World) irecv(ctx int64, myWorld int, buf []byte, src, tag int, cnl cancelSignal) *request {
	select {
	case <-w.aborted:
		return completedRequest(mpi.Status{}, w.abortError())
	default:
	}
	if err := cnl.fired(w); err != nil {
		return completedRequest(mpi.Status{}, err)
	}
	ep := w.eps[myWorld]
	ep.mu.Lock()
	if env := ep.matchArrival(ctx, src, tag); env != nil {
		if env.rdv != nil {
			rdv := env.rdv
			n, err := copyPayload(buf, rdv.buf)
			ep.mu.Unlock()
			st := mpi.Status{Source: env.src, Tag: env.tag, Count: n}
			putEnvelope(env)
			rdv.done <- struct{}{} // sender consumes the signal and recycles rdv
			w.progress.Add(1)
			w.countRecv(myWorld, false)
			return completedRequest(st, err)
		}
		if env.fin != nil {
			// Remote rendezvous: copy out of the wire payload, then ack
			// the sender's process. No eager credit to release — remote
			// rendezvous never charged one.
			n, err := copyPayload(buf, env.data)
			ep.mu.Unlock()
			st := mpi.Status{Source: env.src, Tag: env.tag, Count: n}
			fin := env.fin
			putEnvelope(env)
			fin()
			w.progress.Add(1)
			w.countRecv(myWorld, false)
			return completedRequest(st, err)
		}
		n, err := copyPayload(buf, env.data)
		ep.releaseEagerCredit(env.srcWorld)
		ep.mu.Unlock()
		st := mpi.Status{Source: env.src, Tag: env.tag, Count: n}
		putEnvelope(env)
		w.progress.Add(1)
		w.countRecv(myWorld, true)
		return completedRequest(st, err)
	}
	pr := getPosted(ctx, src, tag, buf)
	ep.recvs = append(ep.recvs, pr)
	w.metrics.Max(myWorld, metrics.PostedQueueMax, int64(len(ep.recvs)))
	ep.mu.Unlock()
	r := requestPool.Get().(*request)
	*r = request{w: w, trackRank: myWorld, pr: pr, cancel: cnl}
	return r
}
