package engine

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// tagSplit is the engine-reserved tag for the Split collective handshake.
const tagSplit = 0x7F10

// cancelSignal carries a bound context's cancellation into the engine's
// blocking operations. The zero value (nil done channel) never fires —
// receiving from a nil channel blocks forever, so unbound communicators
// pay nothing in the selects.
type cancelSignal struct {
	done  <-chan struct{}
	cause func() error // non-nil whenever done is
}

// fire aborts the world with the context's cause. MPI collectives leave
// every participant in an undefined state when one rank bails out
// mid-protocol, so a fired context unwinds the whole world — every
// blocked operation on every rank returns, no goroutine is left waiting.
func (cs cancelSignal) fire(w *World) error {
	w.abort(fmt.Errorf("engine: context canceled: %w", cs.cause()))
	return w.abortError()
}

// fired reports (and acts on) an already-canceled context at operation
// entry, so a rank that never blocks still observes cancellation at its
// next communication call.
func (cs cancelSignal) fired(w *World) error {
	if cs.done == nil {
		return nil
	}
	select {
	case <-cs.done:
		return cs.fire(w)
	default:
		return nil
	}
}

// comm implements mpi.Comm over a World.
type comm struct {
	w       *World
	ctx     int64
	members []int // comm rank -> world rank
	rank    int   // my comm rank
	topo    *topology.Map
	cancel  cancelSignal
}

var (
	_ mpi.Comm        = (*comm)(nil)
	_ mpi.Contexter   = (*comm)(nil)
	_ mpi.TagStreamer = (*comm)(nil)
)

// NextTagStream implements mpi.TagStreamer: it advances this rank's
// collective tag stream for the communicator's context and returns the
// new stream id. Collectives call it once on entry (all ranks in the
// same order, per the MPI collective ordering rule), after which every
// reserved-block tag the operation sends or receives is transparently
// offset into that stream by streamTag — so two collectives in flight
// on one communicator can never match each other's messages, even
// though both were written against the same fixed phase-tag constants.
func (c *comm) NextTagStream() int {
	s := c.w.eps[c.worldRank()].nextStream(c.ctx)
	c.w.metrics.Max(c.worldRank(), metrics.TagStreamHighWater, int64(s))
	return s
}

// SpanRing exposes this rank's operation-span ring (nil when the
// world's Metrics has spans disabled). Collectives discover it through
// the metrics.SpanSource-shaped type assertion, and decorators like
// trace's traced communicator forward it — the same capability pattern
// as mpi.Contexter and mpi.TagStreamer.
func (c *comm) SpanRing() *metrics.SpanRing {
	return c.w.metrics.Ring(c.worldRank())
}

// streamTag maps a reserved-block collective tag onto the rank's
// current stream for this context (user tags and wildcards pass through
// unchanged). Both ends of a transfer translate with their own rank's
// counter; counters advance only at collective entry, and each rank
// issues all of collective N's operations before entering collective
// N+1, so sender and receiver always agree on the stream of the
// operation they are jointly executing.
func (c *comm) streamTag(tag int) int {
	if tag < mpi.CollTagBase || tag >= mpi.CollTagBase+mpi.TagStreamStride {
		return tag
	}
	return mpi.StreamTag(tag, c.w.eps[c.worldRank()].stream(c.ctx))
}

// WithContext implements mpi.Contexter: it returns a view of this
// communicator whose blocking operations additionally observe ctx. A
// fired context aborts the world (see mpi.Contexter for why), so the
// returned errors wrap both mpi.ErrAborted and the context's cause.
// Binding is a cheap struct copy; per-call binding is fine.
func (c *comm) WithContext(ctx context.Context) mpi.Comm {
	cc := *c
	if ctx == nil || ctx.Done() == nil {
		cc.cancel = cancelSignal{}
		return &cc
	}
	cc.cancel = cancelSignal{
		done:  ctx.Done(),
		cause: func() error { return context.Cause(ctx) },
	}
	return &cc
}

func (c *comm) Rank() int                { return c.rank }
func (c *comm) Size() int                { return len(c.members) }
func (c *comm) Topology() *topology.Map  { return c.topo }
func (c *comm) worldRank() int           { return c.members[c.rank] }
func (c *comm) worldRankOf(rank int) int { return c.members[rank] }

func (c *comm) Send(buf []byte, to, tag int) error {
	if err := mpi.CheckPeer(to, len(c.members), false); err != nil {
		return fmt.Errorf("engine: send: %w", err)
	}
	if err := mpi.CheckTag(tag, false); err != nil {
		return fmt.Errorf("engine: send: %w", err)
	}
	if to == c.rank {
		return fmt.Errorf("engine: send: %w: self-send unsupported (deadlocks a blocking rank)", mpi.ErrRank)
	}
	return c.w.send(c.ctx, c.rank, c.worldRank(), c.worldRankOf(to), buf, c.streamTag(tag), true, c.cancel)
}

func (c *comm) Recv(buf []byte, from, tag int) (mpi.Status, error) {
	if err := mpi.CheckPeer(from, len(c.members), true); err != nil {
		return mpi.Status{}, fmt.Errorf("engine: recv: %w", err)
	}
	if err := mpi.CheckTag(tag, true); err != nil {
		return mpi.Status{}, fmt.Errorf("engine: recv: %w", err)
	}
	return c.w.recv(c.ctx, c.worldRank(), buf, from, c.streamTag(tag), true, c.cancel)
}

func (c *comm) Sendrecv(sendBuf []byte, to, sendTag int, recvBuf []byte, from, recvTag int) (mpi.Status, error) {
	// Validate both halves up front so a bad argument cannot leave the
	// other half blocked.
	if err := mpi.CheckPeer(to, len(c.members), false); err != nil {
		return mpi.Status{}, fmt.Errorf("engine: sendrecv: %w", err)
	}
	if err := mpi.CheckTag(sendTag, false); err != nil {
		return mpi.Status{}, fmt.Errorf("engine: sendrecv: %w", err)
	}
	if err := mpi.CheckPeer(from, len(c.members), true); err != nil {
		return mpi.Status{}, fmt.Errorf("engine: sendrecv: %w", err)
	}
	if err := mpi.CheckTag(recvTag, true); err != nil {
		return mpi.Status{}, fmt.Errorf("engine: sendrecv: %w", err)
	}
	if to == c.rank || from == c.rank {
		return mpi.Status{}, fmt.Errorf("engine: sendrecv: %w: self transfer unsupported", mpi.ErrRank)
	}

	// Post the receive first (a matching rendezvous sender can then
	// complete against it), start the send, and wait for both. No
	// goroutine is needed: isend never blocks (large or credit-overflow
	// payloads are parked as zero-copy envelopes the receiver pulls).
	rreq := c.w.irecv(c.ctx, c.worldRank(), recvBuf, from, c.streamTag(recvTag), c.cancel)
	sreq := c.w.isend(c.ctx, c.rank, c.worldRank(), c.worldRankOf(to), sendBuf, c.streamTag(sendTag), c.cancel)
	_, serr := sreq.Wait()
	st, rerr := rreq.Wait()
	putRequest(sreq) // Sendrecv is the sole holder of both requests
	putRequest(rreq)
	if rerr != nil {
		return st, rerr
	}
	return st, serr
}

func (c *comm) Isend(buf []byte, to, tag int) (mpi.Request, error) {
	if err := mpi.CheckPeer(to, len(c.members), false); err != nil {
		return nil, fmt.Errorf("engine: isend: %w", err)
	}
	if err := mpi.CheckTag(tag, false); err != nil {
		return nil, fmt.Errorf("engine: isend: %w", err)
	}
	if to == c.rank {
		return nil, fmt.Errorf("engine: isend: %w: self-send unsupported", mpi.ErrRank)
	}
	return c.w.isend(c.ctx, c.rank, c.worldRank(), c.worldRankOf(to), buf, c.streamTag(tag), c.cancel), nil
}

func (c *comm) Irecv(buf []byte, from, tag int) (mpi.Request, error) {
	if err := mpi.CheckPeer(from, len(c.members), true); err != nil {
		return nil, fmt.Errorf("engine: irecv: %w", err)
	}
	if err := mpi.CheckTag(tag, true); err != nil {
		return nil, fmt.Errorf("engine: irecv: %w", err)
	}
	return c.w.irecv(c.ctx, c.worldRank(), buf, from, c.streamTag(tag), c.cancel), nil
}

// Split partitions the communicator by color, ordering each new
// communicator by (key, old rank). It is collective: rank 0 gathers all
// (color, key) pairs, forms the groups, allocates a fresh context id per
// group, and scatters each member its new communicator description.
func (c *comm) Split(color, key int) (mpi.Comm, error) {
	if color < 0 && color != mpi.Undefined {
		return nil, fmt.Errorf("engine: split: negative color %d (use mpi.Undefined to opt out)", color)
	}
	p := len(c.members)

	if c.rank == 0 {
		colors := make([]int, p)
		keys := make([]int, p)
		colors[0], keys[0] = color, key
		buf := make([]byte, 16)
		for r := 1; r < p; r++ {
			if _, err := c.Recv(buf, r, tagSplit); err != nil {
				return nil, fmt.Errorf("engine: split gather from %d: %w", r, err)
			}
			vals := decodeInts(buf, 2)
			colors[r], keys[r] = vals[0], vals[1]
		}
		replies, err := c.buildSplitGroups(colors, keys)
		if err != nil {
			return nil, err
		}
		for r := 1; r < p; r++ {
			if err := c.Send(replies[r], r, tagSplit); err != nil {
				return nil, fmt.Errorf("engine: split scatter to %d: %w", r, err)
			}
		}
		return c.commFromReply(replies[0])
	}

	if err := c.Send(encodeInts(color, key), 0, tagSplit); err != nil {
		return nil, fmt.Errorf("engine: split send: %w", err)
	}
	reply := make([]byte, (3+p)*8)
	st, err := c.Recv(reply, 0, tagSplit)
	if err != nil {
		return nil, fmt.Errorf("engine: split recv: %w", err)
	}
	return c.commFromReply(reply[:st.Count])
}

// buildSplitGroups computes, on rank 0, each rank's reply: the encoded
// (ctx, newRank, size, worldMembers...) of its new communicator, or
// (0, 0, 0) for Undefined colors.
func (c *comm) buildSplitGroups(colors, keys []int) ([][]byte, error) {
	p := len(c.members)
	type member struct{ key, oldRank int }
	groups := map[int][]member{}
	for r := 0; r < p; r++ {
		if colors[r] == mpi.Undefined {
			continue
		}
		groups[colors[r]] = append(groups[colors[r]], member{keys[r], r})
	}
	// Deterministic context allocation: ascending color order.
	colorOrder := make([]int, 0, len(groups))
	for col := range groups {
		colorOrder = append(colorOrder, col)
	}
	sort.Ints(colorOrder)

	replies := make([][]byte, p)
	for r := range replies {
		replies[r] = encodeInts(0, 0, 0) // default: Undefined -> nil comm
	}
	for _, col := range colorOrder {
		ms := groups[col]
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].key != ms[j].key {
				return ms[i].key < ms[j].key
			}
			return ms[i].oldRank < ms[j].oldRank
		})
		ctx := c.w.ctxSeq.Add(1)
		worldMembers := make([]int, len(ms))
		for i, m := range ms {
			worldMembers[i] = c.members[m.oldRank]
		}
		for newRank, m := range ms {
			vals := append([]int{int(ctx), newRank, len(ms)}, worldMembers...)
			replies[m.oldRank] = encodeInts(vals...)
		}
	}
	return replies, nil
}

// commFromReply decodes a Split reply into a live communicator (or nil
// for an Undefined color).
func (c *comm) commFromReply(reply []byte) (mpi.Comm, error) {
	head := decodeInts(reply, 3)
	ctx, newRank, size := int64(head[0]), head[1], head[2]
	if size == 0 {
		return nil, nil
	}
	if len(reply) < (3+size)*8 {
		return nil, fmt.Errorf("engine: split reply truncated: %d bytes for size %d", len(reply), size)
	}
	members := decodeInts(reply[3*8:], size)
	topo, err := c.w.topo.Subset(members)
	if err != nil {
		return nil, fmt.Errorf("engine: split topology: %w", err)
	}
	// The sub-communicator inherits the parent's context binding.
	return &comm{w: c.w, ctx: ctx, members: members, rank: newRank, topo: topo, cancel: c.cancel}, nil
}

// encodeInts packs ints as little-endian int64s.
func encodeInts(vals ...int) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(v)))
	}
	return b
}

// decodeInts unpacks n little-endian int64s.
func decodeInts(b []byte, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// Iprobe reports whether a matching message has arrived without
// consuming it.
func (c *comm) Iprobe(from, tag int) (mpi.Status, bool, error) {
	if err := mpi.CheckPeer(from, len(c.members), true); err != nil {
		return mpi.Status{}, false, fmt.Errorf("engine: iprobe: %w", err)
	}
	if err := mpi.CheckTag(tag, true); err != nil {
		return mpi.Status{}, false, fmt.Errorf("engine: iprobe: %w", err)
	}
	tag = c.streamTag(tag)
	ep := c.w.eps[c.worldRank()]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for _, env := range ep.arrivals {
		if env.ctx == c.ctx && matchSrc(from, env.src) && matchTag(tag, env.tag) {
			n := len(env.data)
			if env.rdv != nil {
				n = len(env.rdv.buf)
			}
			return mpi.Status{Source: env.src, Tag: env.tag, Count: n}, true, nil
		}
	}
	return mpi.Status{}, false, nil
}
