package core

import (
	"testing"
	"testing/quick"
)

func TestStepFlagPaperP8(t *testing.T) {
	// Figure 4 narrative, P = 8:
	//   root 0 never receives (send-only, step 8);
	//   rank 7 never sends (receive-only, step 8);
	//   rank 4 stops receiving from rank 3 after step 4 (send-only, step 4);
	//   rank 3 stops sending to rank 4 after step 4 (receive-only, step 4);
	//   ranks 2 and 6 are send-only with step 2; 1 and 5 receive-only, step 2.
	wants := map[int]StepFlag{
		0: {8, false},
		1: {2, true},
		2: {2, false},
		3: {4, true},
		4: {4, false},
		5: {2, true},
		6: {2, false},
		7: {8, true},
	}
	for rel, want := range wants {
		if got := ComputeStepFlag(rel, 8); got != want {
			t.Errorf("ComputeStepFlag(%d, 8) = %+v want %+v", rel, got, want)
		}
	}
}

func TestStepFlagPaperP10(t *testing.T) {
	// Figure 5 narrative, P = 10: rank 4 stops receiving after the sixth
	// step (step = 4 -> sendrecv while i <= 10-4 = 6); rank 8's subtree is
	// clamped at the boundary (step = 2); rank 9 is receive-only for all
	// steps (step = 10).
	wants := map[int]StepFlag{
		0: {10, false},
		1: {2, true},
		2: {2, false},
		3: {4, true},
		4: {4, false},
		5: {2, true},
		6: {2, false},
		7: {2, true},
		8: {2, false},
		9: {10, true},
	}
	for rel, want := range wants {
		if got := ComputeStepFlag(rel, 10); got != want {
			t.Errorf("ComputeStepFlag(%d, 10) = %+v want %+v", rel, got, want)
		}
	}
}

// TestStepFlagOwnershipTheorems ties Listing 1's mask loop to the scatter
// ownership semantics:
//
//	RecvOnly(rel)        <=> Extent(rel) == 1 (scatter-tree leaves);
//	send-only rank:  Step == Extent(rel)          (its own subtree size);
//	recv-only rank:  Step == Extent(rel+1 mod p)  (its right neighbour's).
func TestStepFlagOwnershipTheorems(t *testing.T) {
	for p := 2; p <= 300; p++ {
		for rel := 0; rel < p; rel++ {
			sf := ComputeStepFlag(rel, p)
			leaf := Extent(rel, p) == 1
			if sf.RecvOnly != leaf {
				t.Fatalf("p=%d rel=%d: RecvOnly=%v but leaf=%v", p, rel, sf.RecvOnly, leaf)
			}
			if sf.RecvOnly {
				right := (rel + 1) % p
				if sf.Step != Extent(right, p) {
					t.Fatalf("p=%d rel=%d: step=%d want right extent %d", p, rel, sf.Step, Extent(right, p))
				}
			} else {
				if sf.Step != Extent(rel, p) {
					t.Fatalf("p=%d rel=%d: step=%d want own extent %d", p, rel, sf.Step, Extent(rel, p))
				}
			}
		}
	}
}

// TestStepFlagPairing: a rank that is receive-only with step s >= 2 (i.e.
// it actually skips s-1 sends) always has a send-only right neighbour with
// the same step s — the property that makes the degenerate sends and
// receives pair up without deadlock. Step 1 carries no degenerate
// iterations (the rank sendrecvs in every step), so no pairing constraint
// applies; this happens at communicator boundaries, e.g. rel = p-2 when
// p-1 is even (its right neighbour p-1 is a clamped subtree of extent 1).
func TestStepFlagPairing(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := int(pRaw)%512 + 2
		for rel := 0; rel < p; rel++ {
			sf := ComputeStepFlag(rel, p)
			if sf.RecvOnly && sf.Step >= 2 {
				right := (rel + 1) % p
				rsf := ComputeStepFlag(right, p)
				if rsf.RecvOnly || rsf.Step != sf.Step {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStepFlagStepOneBoundary exercises the clamped boundary case
// explicitly: p = 121, rel = 119 is receive-only with step 1 (its right
// neighbour 120 is a boundary-clamped subtree of extent 1), and rank 120
// is receive-only for the whole ring because its right neighbour is the
// root.
func TestStepFlagStepOneBoundary(t *testing.T) {
	if sf := ComputeStepFlag(119, 121); !sf.RecvOnly || sf.Step != 1 {
		t.Fatalf("ComputeStepFlag(119,121) = %+v want {1 true}", sf)
	}
	if sf := ComputeStepFlag(120, 121); !sf.RecvOnly || sf.Step != 121 {
		t.Fatalf("ComputeStepFlag(120,121) = %+v want {121 true}", sf)
	}
	// Step 1 means zero degenerate iterations.
	sf := ComputeStepFlag(119, 121)
	if sf.DegenerateSteps(121) != 0 {
		t.Fatalf("step-1 rank must have no degenerate steps, got %d", sf.DegenerateSteps(121))
	}
}

func TestStepFlagRootAndLeftOfRoot(t *testing.T) {
	for p := 2; p <= 64; p++ {
		if sf := ComputeStepFlag(0, p); sf.RecvOnly || sf.Step != p {
			t.Fatalf("p=%d: root step/flag = %+v", p, sf)
		}
		if sf := ComputeStepFlag(p-1, p); !sf.RecvOnly || sf.Step != p {
			t.Fatalf("p=%d: rank p-1 step/flag = %+v", p, sf)
		}
	}
}

func TestStepFlagDegenerateComm(t *testing.T) {
	sf := ComputeStepFlag(0, 1)
	if sf.RecvOnly {
		t.Fatalf("p=1: %+v", sf)
	}
	if sf.SendrecvSteps(1) != 0 || sf.DegenerateSteps(1) != 0 {
		t.Fatalf("p=1 steps: %d/%d", sf.SendrecvSteps(1), sf.DegenerateSteps(1))
	}
}

func TestSendrecvStepsPartition(t *testing.T) {
	// Full + degenerate steps always sum to the P-1 ring iterations.
	for p := 2; p <= 128; p++ {
		for rel := 0; rel < p; rel++ {
			sf := ComputeStepFlag(rel, p)
			if sf.SendrecvSteps(p)+sf.DegenerateSteps(p) != p-1 {
				t.Fatalf("p=%d rel=%d: %d + %d != %d", p, rel,
					sf.SendrecvSteps(p), sf.DegenerateSteps(p), p-1)
			}
			if sf.SendrecvSteps(p) < 0 || sf.DegenerateSteps(p) < 0 {
				t.Fatalf("p=%d rel=%d: negative step split", p, rel)
			}
		}
	}
}
