package core

import (
	"testing"

	"repro/internal/sched"
)

// segGrid pairs bcastGrid points with segment sizes spanning the
// interesting regimes: tiny (many segments per chunk), chunk-misaligned,
// and huge (one segment per chunk, degenerating to the unsegmented ring).
func segGrid() []int { return []int{1, 3, 16, 64, 1 << 20} }

// TestBcastNativeSegProgramVerifies: the segmented native broadcast is
// deadlock-free, valid, and delivers the full buffer everywhere; like the
// enclosed ring it keeps the redundant transfers the tuned ring removes.
func TestBcastNativeSegProgramVerifies(t *testing.T) {
	for _, g := range bcastGrid() {
		p, root, n := g[0], g[1], g[2]
		for _, seg := range segGrid() {
			pr := BcastNativeSegProgram(p, root, n, seg)
			if err := pr.Validate(); err != nil {
				t.Fatalf("p=%d root=%d n=%d seg=%d: %v", p, root, n, seg, err)
			}
			if _, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)}); err != nil {
				t.Fatalf("p=%d root=%d n=%d seg=%d: %v", p, root, n, seg, err)
			}
		}
	}
}

// TestBcastOptSegProgramVerifies: the segmented tuned broadcast completes
// with zero redundant transfers — the paper's core claim survives
// segmentation.
func TestBcastOptSegProgramVerifies(t *testing.T) {
	for _, g := range bcastGrid() {
		p, root, n := g[0], g[1], g[2]
		for _, seg := range segGrid() {
			pr := BcastOptSegProgram(p, root, n, seg)
			if err := pr.Validate(); err != nil {
				t.Fatalf("p=%d root=%d n=%d seg=%d: %v", p, root, n, seg, err)
			}
			res, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)})
			if err != nil {
				t.Fatalf("p=%d root=%d n=%d seg=%d: %v", p, root, n, seg, err)
			}
			if res.RedundantMessages != 0 {
				t.Fatalf("p=%d root=%d n=%d seg=%d: %d redundant messages",
					p, root, n, seg, res.RedundantMessages)
			}
		}
	}
}

// TestSegRingBytesMatchUnsegmented: segmentation splits messages but must
// move exactly the bytes of its unsegmented counterpart.
func TestSegRingBytesMatchUnsegmented(t *testing.T) {
	for _, g := range bcastGrid() {
		p, root, n := g[0], g[1], g[2]
		for _, seg := range segGrid() {
			natSeg := RingAllgatherNativeSeg(p, root, n, seg).Stats()
			nat := RingAllgatherNative(p, root, n).Stats()
			if natSeg.Bytes != nat.Bytes {
				t.Fatalf("p=%d n=%d seg=%d: native seg bytes %d != %d", p, n, seg, natSeg.Bytes, nat.Bytes)
			}
			if natSeg.Messages < nat.Messages {
				t.Fatalf("p=%d n=%d seg=%d: native seg messages %d < %d", p, n, seg, natSeg.Messages, nat.Messages)
			}
			optSeg := RingAllgatherTunedSeg(p, root, n, seg).Stats()
			opt := RingAllgatherTuned(p, root, n).Stats()
			if optSeg.Bytes != opt.Bytes {
				t.Fatalf("p=%d n=%d seg=%d: tuned seg bytes %d != %d", p, n, seg, optSeg.Bytes, opt.Bytes)
			}
		}
	}
}

// TestSegRingDegeneratesToUnsegmented: a segment size at or above the
// chunk size yields exactly the unsegmented schedule, message for
// message.
func TestSegRingDegeneratesToUnsegmented(t *testing.T) {
	for _, g := range bcastGrid() {
		p, root, n := g[0], g[1], g[2]
		seg := NewLayout(n, p).ScatterSize
		if seg == 0 {
			seg = 1
		}
		cases := []struct {
			name     string
			seg, ref *sched.Program
		}{
			{"native", RingAllgatherNativeSeg(p, root, n, seg), RingAllgatherNative(p, root, n)},
			{"tuned", RingAllgatherTunedSeg(p, root, n, seg), RingAllgatherTuned(p, root, n)},
		}
		for _, tc := range cases {
			for r := 0; r < p; r++ {
				segOps, refOps := tc.seg.OpsOf(r), tc.ref.OpsOf(r)
				if len(segOps) != len(refOps) {
					t.Fatalf("%s p=%d root=%d n=%d rank %d: %d ops != %d", tc.name, p, root, n, r, len(segOps), len(refOps))
				}
				for i := range segOps {
					if segOps[i] != refOps[i] {
						t.Fatalf("%s p=%d root=%d n=%d rank %d op %d: %v != %v",
							tc.name, p, root, n, r, i, segOps[i], refOps[i])
					}
				}
			}
		}
	}
}

// TestSegRingTunedSavesMessages: at every grid point the segmented tuned
// ring sends no more messages (and strictly fewer whenever the
// unsegmented saving is non-zero) than the segmented native ring at the
// same segment size.
func TestSegRingTunedSavesMessages(t *testing.T) {
	for _, p := range []int{2, 4, 8, 10, 16, 17} {
		n := 64 * p
		for _, seg := range []int{8, 64} {
			nat := RingAllgatherNativeSeg(p, 0, n, seg).Stats()
			opt := RingAllgatherTunedSeg(p, 0, n, seg).Stats()
			if opt.Messages > nat.Messages {
				t.Fatalf("p=%d seg=%d: tuned seg messages %d > native %d", p, seg, opt.Messages, nat.Messages)
			}
			if TunedSavedMessages(p) > 0 && opt.Messages >= nat.Messages {
				t.Fatalf("p=%d seg=%d: tuned seg saved nothing (%d vs %d)", p, seg, opt.Messages, nat.Messages)
			}
			if opt.Bytes >= nat.Bytes && p > 2 {
				t.Fatalf("p=%d seg=%d: tuned seg bytes %d >= native %d", p, seg, opt.Bytes, nat.Bytes)
			}
		}
	}
}

// TestRingSegmentsAndSegSpan pins the segmentation helpers' edge cases.
func TestRingSegmentsAndSegSpan(t *testing.T) {
	cases := []struct {
		count, seg, want int
	}{
		{0, 8, 1},  // empty chunk: one zero-byte envelope
		{1, 8, 1},  // short chunk
		{8, 8, 1},  // exact fit
		{9, 8, 2},  // one spill byte
		{24, 8, 3}, // even split
		{100, 1, 100},
	}
	for _, tc := range cases {
		if got := RingSegments(tc.count, tc.seg); got != tc.want {
			t.Errorf("RingSegments(%d, %d) = %d want %d", tc.count, tc.seg, got, tc.want)
		}
	}
	// Segment spans tile the chunk exactly.
	for _, count := range []int{0, 1, 7, 8, 9, 100} {
		const seg = 8
		total := 0
		for s := 0; s < RingSegments(count, seg); s++ {
			off, length := SegSpan(count, seg, s)
			if off != total {
				t.Fatalf("count=%d seg %d: off %d want %d", count, s, off, total)
			}
			total += length
		}
		if total != count {
			t.Fatalf("count=%d: spans cover %d bytes", count, total)
		}
	}
}
