package core

import (
	"testing"

	"repro/internal/sched"
)

// FuzzLayoutInvariants checks the chunk layout under arbitrary inputs:
// chunks partition [0, n), stay in bounds, and never go negative.
func FuzzLayoutInvariants(f *testing.F) {
	f.Add(8, 8)
	f.Add(0, 1)
	f.Add(12288, 129)
	f.Add(5, 4)
	f.Add(1<<20, 256)
	f.Fuzz(func(t *testing.T, n, p int) {
		if p <= 0 || p > 4096 || n < 0 || n > 1<<26 {
			t.Skip()
		}
		l := NewLayout(n, p)
		total := 0
		for rel := 0; rel < p; rel++ {
			c, d := l.Count(rel), l.Disp(rel)
			if c < 0 || d < 0 || d+c > n {
				t.Fatalf("chunk %d out of bounds: disp=%d count=%d n=%d", rel, d, c, n)
			}
			total += c
		}
		if total != n {
			t.Fatalf("chunks sum to %d, want %d", total, n)
		}
	})
}

// FuzzStepFlagTheorems checks the Listing-1 pair against the ownership
// theorems for arbitrary (rel, p).
func FuzzStepFlagTheorems(f *testing.F) {
	f.Add(0, 8)
	f.Add(7, 8)
	f.Add(119, 121)
	f.Add(4, 10)
	f.Fuzz(func(t *testing.T, rel, p int) {
		if p < 2 || p > 8192 {
			t.Skip()
		}
		rel = ((rel % p) + p) % p
		sf := ComputeStepFlag(rel, p)
		if sf.Step < 1 || sf.Step > p {
			t.Fatalf("step %d out of range for p=%d", sf.Step, p)
		}
		if sf.RecvOnly != (Extent(rel, p) == 1) {
			t.Fatalf("rel=%d p=%d: RecvOnly=%v but extent=%d", rel, p, sf.RecvOnly, Extent(rel, p))
		}
		if sf.RecvOnly {
			if sf.Step != Extent((rel+1)%p, p) {
				t.Fatalf("rel=%d p=%d: step %d != right extent %d", rel, p, sf.Step, Extent((rel+1)%p, p))
			}
		} else if sf.Step != Extent(rel, p) {
			t.Fatalf("rel=%d p=%d: step %d != own extent %d", rel, p, sf.Step, Extent(rel, p))
		}
		if sf.SendrecvSteps(p)+sf.DegenerateSteps(p) != p-1 {
			t.Fatalf("rel=%d p=%d: step split does not partition", rel, p)
		}
	})
}

// FuzzBcastProgramsVerify runs the full broadcast verification (deadlock
// freedom, data validity, zero redundancy for the tuned ring, complete
// final coverage) on arbitrary (p, root, n).
func FuzzBcastProgramsVerify(f *testing.F) {
	f.Add(8, 0, 64)
	f.Add(10, 3, 100)
	f.Add(121, 7, 1000)
	f.Add(2, 1, 1)
	f.Fuzz(func(t *testing.T, p, root, n int) {
		if p < 1 || p > 200 || n < 0 || n > 1<<16 {
			t.Skip()
		}
		root = ((root % p) + p) % p
		opt := BcastOptProgram(p, root, n)
		res, err := sched.Verify(opt, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)})
		if err != nil {
			t.Fatalf("opt p=%d root=%d n=%d: %v", p, root, n, err)
		}
		if res.RedundantMessages != 0 {
			t.Fatalf("opt p=%d root=%d n=%d: %d redundant messages", p, root, n, res.RedundantMessages)
		}
		nat := BcastNativeProgram(p, root, n)
		if _, err := sched.Verify(nat, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)}); err != nil {
			t.Fatalf("native p=%d root=%d n=%d: %v", p, root, n, err)
		}
		// Message counts must satisfy the closed form regardless of n.
		if nat.Messages()-opt.Messages() != TunedSavedMessages(p) {
			t.Fatalf("p=%d: savings mismatch", p)
		}
	})
}

// FuzzChainBcastVerify covers the extension generator.
func FuzzChainBcastVerify(f *testing.F) {
	f.Add(5, 0, 1000, 128)
	f.Add(2, 1, 1, 1)
	f.Fuzz(func(t *testing.T, p, root, n, seg int) {
		if p < 1 || p > 64 || n < 0 || n > 1<<14 {
			t.Skip()
		}
		root = ((root % p) + p) % p
		pr := ChainBcast(p, root, n, seg)
		if _, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)}); err != nil {
			t.Fatalf("p=%d root=%d n=%d seg=%d: %v", p, root, n, seg, err)
		}
	})
}
