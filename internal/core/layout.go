package core

import "fmt"

// Layout describes how an n-byte broadcast buffer is divided into P
// chunks for the scatter-allgather algorithms.
//
// MPICH computes scatter_size = ceil(n/P); chunk i (indexed by rank
// relative to the root) occupies bytes [i*scatter_size, (i+1)*scatter_size)
// clamped to n. With uneven division the last chunks are short, and when
// n < (P-1)*scatter_size some tail chunks are empty; the ring algorithms
// still execute their full step structure with zero-byte transfers, which
// is why the traffic model distinguishes messages from non-empty messages.
type Layout struct {
	// N is the total buffer size in bytes.
	N int
	// P is the number of chunks (= communicator size).
	P int
	// ScatterSize is ceil(N/P), the nominal chunk size.
	ScatterSize int
}

// NewLayout returns the chunk layout for an n-byte buffer over p ranks.
// It panics if p <= 0 or n < 0; callers validate user input.
func NewLayout(n, p int) Layout {
	if p <= 0 {
		panic(fmt.Sprintf("core: layout requires p > 0, got %d", p))
	}
	if n < 0 {
		panic(fmt.Sprintf("core: layout requires n >= 0, got %d", n))
	}
	return Layout{N: n, P: p, ScatterSize: (n + p - 1) / p}
}

// Count returns the size in bytes of chunk rel (0 <= rel < P). Chunks past
// the end of the buffer are empty.
func (l Layout) Count(rel int) int {
	c := l.N - rel*l.ScatterSize
	if c > l.ScatterSize {
		c = l.ScatterSize
	}
	if c < 0 {
		c = 0
	}
	return c
}

// Disp returns the byte offset of chunk rel, clamped to N so that
// Disp(rel) + Count(rel) <= N always holds (empty chunks sit at offset N).
func (l Layout) Disp(rel int) int {
	d := rel * l.ScatterSize
	if d > l.N {
		d = l.N
	}
	return d
}

// RelRank returns rank's position relative to root in a P-rank
// communicator: (rank - root + P) mod P. The broadcast algorithms operate
// on relative ranks so that any root reduces to the root-0 case.
func RelRank(rank, root, p int) int {
	return ((rank-root)%p + p) % p
}

// AbsRank is the inverse of RelRank: the absolute rank of relative rank
// rel with respect to root.
func AbsRank(rel, root, p int) int {
	return (rel + root) % p
}

// IsPow2 reports whether p is a positive power of two.
func IsPow2(p int) bool {
	return p > 0 && p&(p-1) == 0
}

// CeilPow2 returns the smallest power of two >= p (p >= 1).
func CeilPow2(p int) int {
	m := 1
	for m < p {
		m <<= 1
	}
	return m
}

// FloorLog2 returns floor(log2(v)) for v >= 1.
func FloorLog2(v int) int {
	k := 0
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}
