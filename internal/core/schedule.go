package core

import (
	"fmt"

	"repro/internal/sched"
)

// Reserved message tags used by the collective algorithms. The executable
// collectives in internal/collective use the same values, so traces
// recorded there can be matched against schedules generated here.
const (
	// TagScatter marks binomial-scatter-phase messages.
	TagScatter = 0x7F01
	// TagRing marks ring-allgather-phase messages (native and tuned).
	TagRing = 0x7F02
	// TagRdb marks recursive-doubling allgather messages.
	TagRdb = 0x7F03
	// TagBinomial marks whole-buffer binomial broadcast messages.
	TagBinomial = 0x7F04
	// TagBarrier marks dissemination-barrier messages.
	TagBarrier = 0x7F05
	// TagChain marks pipelined-chain broadcast messages (extension).
	TagChain = 0x7F0A
)

func checkArgs(p, root, n int) {
	if p <= 0 {
		panic(fmt.Sprintf("core: schedule requires p > 0, got %d", p))
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("core: root %d out of range for p=%d", root, p))
	}
	if n < 0 {
		panic(fmt.Sprintf("core: schedule requires n >= 0, got %d", n))
	}
}

// coverEnd returns the byte offset just past the last chunk relative rank
// rel receives in the scatter phase (its subtree's end, clamped to n).
func coverEnd(l Layout, rel, p int) int {
	lo, hi := OwnedChunks(rel, p)
	_ = lo
	return l.Disp(hi)
}

// ScatterSchedule generates the binomial scatter tree of Figures 1 and 2:
// the root splits the buffer into P chunks and sends each subtree's chunk
// range down the tree; relative rank rel ends up holding chunks
// [rel, rel+Extent(rel)).
//
// Messages carry exactly the bytes MPICH's scatter_for_bcast transfers:
// the subtree byte range clamped to the buffer, and a transfer is omitted
// entirely when uneven division leaves it empty (MPICH only posts the
// send/recv pair when send_size > 0).
func ScatterSchedule(p, root, n int) *sched.Program {
	checkArgs(p, root, n)
	l := NewLayout(n, p)
	pr := sched.New("binomial-scatter", p, n, root)
	for rel := 0; rel < p; rel++ {
		rank := AbsRank(rel, root, p)
		// Receive from parent (all ranks except the root).
		recvMask := CeilPow2(p)
		if rel != 0 {
			recvMask = rel & (-rel) // lowest set bit: distance to parent
			parent := AbsRank(rel-recvMask, root, p)
			off := l.Disp(rel)
			length := coverEnd(l, rel, p) - off
			if length > 0 {
				pr.Add(rank, sched.Op{
					Kind: sched.OpRecv, From: parent,
					RecvOff: off, RecvLen: length,
					Tag: TagScatter, Step: 0,
				})
			}
		}
		// Forward to children, largest subtree first.
		for mask := recvMask >> 1; mask > 0; mask >>= 1 {
			child := rel + mask
			if child >= p {
				continue
			}
			off := l.Disp(child)
			length := coverEnd(l, child, p) - off
			if length > 0 {
				pr.Add(rank, sched.Op{
					Kind: sched.OpSend, To: AbsRank(child, root, p),
					SendOff: off, SendLen: length,
					Tag: TagScatter, Step: 0,
				})
			}
		}
	}
	return pr
}

// ringPeers returns the ring neighbours of rank in a P-rank communicator.
func ringPeers(rank, p int) (left, right int) {
	return (rank - 1 + p) % p, (rank + 1) % p
}

// RingAllgatherNative generates the enclosed-ring allgather of Figure 3:
// every rank runs P-1 Sendrecv steps, forwarding in step i the chunk it
// received in step i-1 (starting from its own chunk), regardless of what
// it already owns from the scatter phase. Exactly P messages flow in every
// step, P*(P-1) in total — the waste the paper eliminates.
func RingAllgatherNative(p, root, n int) *sched.Program {
	checkArgs(p, root, n)
	l := NewLayout(n, p)
	pr := sched.New("ring-allgather-native", p, n, root)
	for rank := 0; rank < p; rank++ {
		left, right := ringPeers(rank, p)
		j, jnext := rank, left
		for i := 1; i < p; i++ {
			relJ := RelRank(j, root, p)
			relJnext := RelRank(jnext, root, p)
			pr.Add(rank, sched.Op{
				Kind: sched.OpSendrecv,
				To:   right, SendOff: l.Disp(relJ), SendLen: l.Count(relJ),
				From: left, RecvOff: l.Disp(relJnext), RecvLen: l.Count(relJnext),
				Tag: TagRing, Step: i,
			})
			j = jnext
			jnext = (jnext - 1 + p) % p
		}
	}
	return pr
}

// RingAllgatherTuned generates the paper's non-enclosed ring allgather
// (Figures 4 and 5, Listing 1): the same P-1-step ring as
// RingAllgatherNative, except that each rank computes (step, flag) with
// ComputeStepFlag and, once i > P - step, degenerates to send-only
// (subtree roots, which already own the incoming chunks) or receive-only
// (their left neighbours, whose outgoing chunks the subtree root does not
// need).
func RingAllgatherTuned(p, root, n int) *sched.Program {
	checkArgs(p, root, n)
	l := NewLayout(n, p)
	pr := sched.New("ring-allgather-tuned", p, n, root)
	for rank := 0; rank < p; rank++ {
		rel := RelRank(rank, root, p)
		sf := ComputeStepFlag(rel, p)
		left, right := ringPeers(rank, p)
		j, jnext := rank, left
		for i := 1; i < p; i++ {
			relJ := RelRank(j, root, p)
			relJnext := RelRank(jnext, root, p)
			switch {
			case sf.Step <= p-i:
				pr.Add(rank, sched.Op{
					Kind: sched.OpSendrecv,
					To:   right, SendOff: l.Disp(relJ), SendLen: l.Count(relJ),
					From: left, RecvOff: l.Disp(relJnext), RecvLen: l.Count(relJnext),
					Tag: TagRing, Step: i,
				})
			case sf.RecvOnly:
				pr.Add(rank, sched.Op{
					Kind: sched.OpRecv,
					From: left, RecvOff: l.Disp(relJnext), RecvLen: l.Count(relJnext),
					Tag: TagRing, Step: i,
				})
			default:
				pr.Add(rank, sched.Op{
					Kind: sched.OpSend,
					To:   right, SendOff: l.Disp(relJ), SendLen: l.Count(relJ),
					Tag: TagRing, Step: i,
				})
			}
			j = jnext
			jnext = (jnext - 1 + p) % p
		}
	}
	return pr
}

// RdbAllgather generates the recursive-doubling allgather MPICH uses for
// medium messages with power-of-two communicators: in round k (mask =
// 2^k), relative rank rel exchanges its current 2^k-chunk block with
// partner rel XOR mask, doubling the owned block each round. p must be a
// power of two.
func RdbAllgather(p, root, n int) *sched.Program {
	checkArgs(p, root, n)
	if !IsPow2(p) {
		panic(fmt.Sprintf("core: RdbAllgather requires power-of-two p, got %d", p))
	}
	l := NewLayout(n, p)
	pr := sched.New("rdb-allgather", p, n, root)
	for rank := 0; rank < p; rank++ {
		rel := RelRank(rank, root, p)
		step := 1
		for mask := 1; mask < p; mask <<= 1 {
			relDst := rel ^ mask
			dst := AbsRank(relDst, root, p)
			myRoot := rel &^ (mask - 1)
			dstRoot := relDst &^ (mask - 1)
			sendOff := l.Disp(myRoot)
			sendLen := l.Disp(myRoot+mask) - sendOff
			recvOff := l.Disp(dstRoot)
			recvLen := l.Disp(dstRoot+mask) - recvOff
			pr.Add(rank, sched.Op{
				Kind: sched.OpSendrecv,
				To:   dst, SendOff: sendOff, SendLen: sendLen,
				From: dst, RecvOff: recvOff, RecvLen: recvLen,
				Tag: TagRdb, Step: step,
			})
			step++
		}
	}
	return pr
}

// BinomialBcast generates the whole-buffer binomial-tree broadcast MPICH
// uses for short messages (and for communicators smaller than
// MinRingProcs): every message carries all n bytes.
func BinomialBcast(p, root, n int) *sched.Program {
	checkArgs(p, root, n)
	pr := sched.New("binomial-bcast", p, n, root)
	for rel := 0; rel < p; rel++ {
		rank := AbsRank(rel, root, p)
		recvMask := CeilPow2(p)
		if rel != 0 {
			recvMask = rel & (-rel)
			parent := AbsRank(rel-recvMask, root, p)
			pr.Add(rank, sched.Op{
				Kind: sched.OpRecv, From: parent,
				RecvOff: 0, RecvLen: n,
				Tag: TagBinomial, Step: 0,
			})
		}
		for mask := recvMask >> 1; mask > 0; mask >>= 1 {
			child := rel + mask
			if child >= p {
				continue
			}
			pr.Add(rank, sched.Op{
				Kind: sched.OpSend, To: AbsRank(child, root, p),
				SendOff: 0, SendLen: n,
				Tag: TagBinomial, Step: 0,
			})
		}
	}
	return pr
}

// BcastNativeProgram is the full native long-message broadcast: binomial
// scatter followed by the enclosed ring allgather (MPI_Bcast_native).
func BcastNativeProgram(p, root, n int) *sched.Program {
	pr := ScatterSchedule(p, root, n).MustConcat(RingAllgatherNative(p, root, n))
	pr.Name = "bcast-native"
	return pr
}

// BcastOptProgram is the paper's tuned broadcast: binomial scatter
// followed by the non-enclosed ring allgather (MPI_Bcast_opt).
func BcastOptProgram(p, root, n int) *sched.Program {
	pr := ScatterSchedule(p, root, n).MustConcat(RingAllgatherTuned(p, root, n))
	pr.Name = "bcast-opt"
	return pr
}

// BcastRdbProgram is MPICH's medium-message power-of-two broadcast:
// binomial scatter followed by recursive-doubling allgather.
func BcastRdbProgram(p, root, n int) *sched.Program {
	pr := ScatterSchedule(p, root, n).MustConcat(RdbAllgather(p, root, n))
	pr.Name = "bcast-scatter-rdb"
	return pr
}
