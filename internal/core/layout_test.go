package core

import (
	"testing"
	"testing/quick"
)

func TestLayoutEvenDivision(t *testing.T) {
	l := NewLayout(80, 8)
	if l.ScatterSize != 10 {
		t.Fatalf("scatterSize = %d want 10", l.ScatterSize)
	}
	for rel := 0; rel < 8; rel++ {
		if l.Count(rel) != 10 || l.Disp(rel) != rel*10 {
			t.Fatalf("chunk %d: count=%d disp=%d", rel, l.Count(rel), l.Disp(rel))
		}
	}
}

func TestLayoutUnevenDivision(t *testing.T) {
	// 10 bytes over 4 ranks: scatter_size = 3, chunks 3,3,3,1.
	l := NewLayout(10, 4)
	if l.ScatterSize != 3 {
		t.Fatalf("scatterSize = %d want 3", l.ScatterSize)
	}
	wantCounts := []int{3, 3, 3, 1}
	for rel, w := range wantCounts {
		if l.Count(rel) != w {
			t.Fatalf("count(%d) = %d want %d", rel, l.Count(rel), w)
		}
	}
}

func TestLayoutEmptyTailChunks(t *testing.T) {
	// 5 bytes over 4 ranks: scatter_size = 2, chunks 2,2,1,0.
	l := NewLayout(5, 4)
	if got := []int{l.Count(0), l.Count(1), l.Count(2), l.Count(3)}; got[0] != 2 || got[1] != 2 || got[2] != 1 || got[3] != 0 {
		t.Fatalf("counts = %v", got)
	}
	// Empty chunk's disp must be clamped so disp+count <= n.
	if l.Disp(3)+l.Count(3) > 5 {
		t.Fatalf("disp(3)+count(3) = %d beyond buffer", l.Disp(3)+l.Count(3))
	}
}

func TestLayoutZeroBytes(t *testing.T) {
	l := NewLayout(0, 4)
	for rel := 0; rel < 4; rel++ {
		if l.Count(rel) != 0 || l.Disp(rel) != 0 {
			t.Fatalf("zero-byte layout chunk %d: count=%d disp=%d", rel, l.Count(rel), l.Disp(rel))
		}
	}
}

func TestLayoutPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct{ n, p int }{{-1, 4}, {8, 0}, {8, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLayout(%d,%d) did not panic", c.n, c.p)
				}
			}()
			NewLayout(c.n, c.p)
		}()
	}
}

// TestLayoutQuickPartition: chunks partition the buffer exactly.
func TestLayoutQuickPartition(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw)
		p := int(pRaw)%64 + 1
		l := NewLayout(n, p)
		total := 0
		for rel := 0; rel < p; rel++ {
			c := l.Count(rel)
			d := l.Disp(rel)
			if c < 0 || d < 0 || d+c > n {
				return false
			}
			// Chunks are contiguous: disp of the next chunk is disp+count
			// whenever this chunk is full-size; in all cases coverage is
			// contiguous from 0.
			if c > 0 && d != rel*l.ScatterSize {
				return false
			}
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRelAbsRankRoundTrip(t *testing.T) {
	for p := 1; p <= 16; p++ {
		for root := 0; root < p; root++ {
			for rank := 0; rank < p; rank++ {
				rel := RelRank(rank, root, p)
				if rel < 0 || rel >= p {
					t.Fatalf("rel out of range: rank=%d root=%d p=%d rel=%d", rank, root, p, rel)
				}
				if AbsRank(rel, root, p) != rank {
					t.Fatalf("round trip failed: rank=%d root=%d p=%d", rank, root, p)
				}
			}
			if RelRank(root, root, p) != 0 {
				t.Fatalf("root must map to rel 0")
			}
		}
	}
}

func TestIsPow2(t *testing.T) {
	trues := []int{1, 2, 4, 8, 16, 64, 256, 1024}
	falses := []int{0, -1, -4, 3, 5, 6, 7, 9, 12, 129}
	for _, v := range trues {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range falses {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 100: 128, 129: 256}
	for in, want := range cases {
		if got := CeilPow2(in); got != want {
			t.Errorf("CeilPow2(%d) = %d want %d", in, got, want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for in, want := range cases {
		if got := FloorLog2(in); got != want {
			t.Errorf("FloorLog2(%d) = %d want %d", in, got, want)
		}
	}
}
