package core

import "repro/internal/sched"

// Extent returns the number of consecutive chunks that relative rank rel
// holds in its buffer after the binomial scatter phase.
//
// The binomial scatter forwards a rank's whole subtree through it, so an
// interior tree node retains not only its own chunk but every chunk of its
// descendants (Section III of the paper: "not only does each non-leaf node
// p_i ... own its corresponding chunk ... it also provides all data chunks
// for its descendant"). The subtree of relative rank rel spans chunks
// [rel, rel + Extent(rel, p)):
//
//   - the root (rel = 0) covers all p chunks;
//   - otherwise the subtree size is the largest power of two dividing rel,
//     clamped at the communicator boundary p - rel (the clamp is what makes
//     non-power-of-two cases like Figure 2's rank 8, which owns exactly
//     chunks {8, 9} of 10, come out right).
func Extent(rel, p int) int {
	if rel == 0 {
		return p
	}
	low := rel & (-rel)
	if low > p-rel {
		return p - rel
	}
	return low
}

// OwnedChunks returns the half-open chunk interval [lo, hi) held by
// relative rank rel after the binomial scatter.
func OwnedChunks(rel, p int) (lo, hi int) {
	return rel, rel + Extent(rel, p)
}

// ScatterOwnership returns, for the verifier, each absolute rank's byte
// ownership after the binomial scatter of an n-byte buffer from root.
func ScatterOwnership(p, root, n int) func(rank int) *sched.IntervalSet {
	l := NewLayout(n, p)
	return func(rank int) *sched.IntervalSet {
		rel := RelRank(rank, root, p)
		lo, hi := OwnedChunks(rel, p)
		return sched.NewIntervalSet(sched.Interval{Lo: l.Disp(lo), Hi: l.Disp(hi)})
	}
}

// MissingBytesAfterScatter returns the total number of bytes that all
// ranks together still lack after the scatter phase — the minimum volume
// any allgather phase must deliver. The tuned ring allgather transfers
// exactly this volume; the native enclosed ring transfers (P-1)*n bytes.
func MissingBytesAfterScatter(p, n int) int {
	l := NewLayout(n, p)
	total := 0
	for rel := 0; rel < p; rel++ {
		lo, hi := OwnedChunks(rel, p)
		owned := l.Disp(hi) - l.Disp(lo)
		total += n - owned
	}
	return total
}
