package core

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/topology"
)

// This file contains extensions beyond the paper: a node-aware ring
// ordering (reducing inter-node ring crossings to one per node) and a
// pipelined chain broadcast (a classic long-message baseline the
// evaluation can be compared against).

// NodeAwareOrder returns a permutation perm (virtual ring position ->
// actual rank) that lays the ring out node by node, so consecutive ring
// neighbours share a node wherever possible and the ring crosses node
// boundaries exactly NumNodes times. Within a node, ranks keep ascending
// order. For a blocked placement this is the identity.
func NodeAwareOrder(topo *topology.Map) []int {
	perm := make([]int, 0, topo.NP())
	for node := 0; node < topo.NumNodes(); node++ {
		perm = append(perm, topo.RanksOnNode(node)...)
	}
	return perm
}

// positionOf returns the index of rank in perm.
func positionOf(perm []int, rank int) int {
	for pos, r := range perm {
		if r == rank {
			return pos
		}
	}
	return -1
}

// nodeAwareProgram generates a scatter-ring broadcast whose ring order
// follows NodeAwareOrder instead of rank order.
func nodeAwareProgram(gen func(p, root, n int) *sched.Program, topo *topology.Map, root, n int, name string) (*sched.Program, error) {
	perm := NodeAwareOrder(topo)
	rootPos := positionOf(perm, root)
	if rootPos < 0 {
		return nil, fmt.Errorf("core: node-aware order: root %d not placed", root)
	}
	pr, err := sched.Relabel(gen(topo.NP(), rootPos, n), perm)
	if err != nil {
		return nil, err
	}
	pr.Name = name
	return pr, nil
}

// BcastOptNodeAware is the tuned broadcast with a node-aware ring order —
// an extension beyond the paper that composes its bandwidth saving with
// placement awareness. On blocked placements it equals BcastOptProgram;
// on scattered placements (e.g. round-robin) it restores the blocked
// ring's inter-node profile.
func BcastOptNodeAware(topo *topology.Map, root, n int) (*sched.Program, error) {
	return nodeAwareProgram(BcastOptProgram, topo, root, n, "bcast-opt-nodeaware")
}

// BcastNativeNodeAware is the native broadcast with a node-aware ring
// order, isolating the reordering gain from the tuned-ring gain.
func BcastNativeNodeAware(topo *topology.Map, root, n int) (*sched.Program, error) {
	return nodeAwareProgram(BcastNativeProgram, topo, root, n, "bcast-native-nodeaware")
}

// DefaultChainSegment is the segment size used by ChainBcast when the
// caller passes segSize <= 0 (a typical pipeline depth trade-off).
const DefaultChainSegment = 8 << 10

// ChainBcast generates the segmented pipeline-chain broadcast: the buffer
// is cut into ceil(n/segSize) segments; relative rank r receives each
// segment from r-1 and forwards it to r+1, interleaving receive and
// forward so segments stream down the chain. It is the classic
// long-message broadcast baseline (one full wavefront of latency, then
// bandwidth-bound), against which the scatter-ring family is compared in
// the extension benchmarks.
func ChainBcast(p, root, n, segSize int) *sched.Program {
	checkArgs(p, root, n)
	if segSize <= 0 {
		segSize = DefaultChainSegment
	}
	pr := sched.New("chain-bcast", p, n, root)
	if p == 1 || n == 0 {
		// Still emit the zero-byte chain for n == 0 so the collective
		// has uniform behaviour? No: MPI sends nothing for an empty
		// buffer in a segmented chain; keep the program empty.
		if n == 0 {
			return pr
		}
	}
	segs := (n + segSize - 1) / segSize
	for rel := 0; rel < p; rel++ {
		rank := AbsRank(rel, root, p)
		for s := 0; s < segs; s++ {
			off := s * segSize
			length := min(segSize, n-off)
			if rel > 0 {
				pr.Add(rank, sched.Op{
					Kind: sched.OpRecv, From: AbsRank(rel-1, root, p),
					RecvOff: off, RecvLen: length,
					Tag: TagChain, Step: s + 1,
				})
			}
			if rel < p-1 {
				pr.Add(rank, sched.Op{
					Kind: sched.OpSend, To: AbsRank(rel+1, root, p),
					SendOff: off, SendLen: length,
					Tag: TagChain, Step: s + 1,
				})
			}
		}
	}
	return pr
}
