// Package core implements the algorithmic content of the reproduced paper
// ("A Bandwidth-saving Optimization for MPI Broadcast Collective
// Operation", Zhou et al., ICPP 2015) as pure, deterministic functions:
//
//   - the chunk layout used by MPICH's scatter-ring-allgather broadcast
//     (ceil(n/P)-byte chunks with short or empty tails);
//   - the binomial scatter tree (Figures 1 and 2) and the resulting
//     per-rank data ownership intervals;
//   - the (step, flag) computation from the paper's Listing 1, which is
//     the heart of the tuned non-enclosed ring allgather;
//   - schedule generators for every algorithm involved: binomial scatter,
//     native enclosed ring allgather (Figure 3), tuned non-enclosed ring
//     allgather (Figures 4 and 5), recursive-doubling allgather (the
//     MPICH medium-message power-of-two path), and whole-buffer binomial
//     broadcast (the short-message path);
//   - the analytic traffic model, including the closed-form message
//     savings the paper quotes (P=8: 56 -> 44, P=10: 90 -> 75).
//
// Everything here is side-effect free and independent of any runtime:
// the executable collectives (internal/collective) and the network
// simulator (internal/netsim) both consume this package, and tests
// cross-validate the three against each other.
package core
