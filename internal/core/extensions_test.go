package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/topology"
)

func TestNodeAwareOrderBlockedIsIdentity(t *testing.T) {
	topo := topology.Blocked(12, 4)
	perm := NodeAwareOrder(topo)
	for i, r := range perm {
		if r != i {
			t.Fatalf("blocked placement should give identity order, got perm[%d]=%d", i, r)
		}
	}
}

func TestNodeAwareOrderRoundRobin(t *testing.T) {
	// RoundRobin(6,2): nodes get ranks {0,3}, {1,4}, {2,5}; the
	// node-aware order visits them node by node.
	topo := topology.RoundRobin(6, 2)
	perm := NodeAwareOrder(topo)
	want := []int{0, 3, 1, 4, 2, 5}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v want %v", perm, want)
		}
	}
}

// ringCut counts ring edges (pos -> pos+1, wrapping) that cross nodes.
func ringCut(perm []int, topo *topology.Map) int {
	cut := 0
	p := len(perm)
	for i := 0; i < p; i++ {
		if !topo.SameNode(perm[i], perm[(i+1)%p]) {
			cut++
		}
	}
	return cut
}

func TestNodeAwareOrderMinimizesCut(t *testing.T) {
	for _, cores := range []int{2, 3, 8} {
		for _, np := range []int{6, 13, 24} {
			topo := topology.RoundRobin(np, cores)
			identity := make([]int, np)
			for i := range identity {
				identity[i] = i
			}
			nodeAware := NodeAwareOrder(topo)
			if got, id := ringCut(nodeAware, topo), ringCut(identity, topo); got > id {
				t.Fatalf("np=%d cores=%d: node-aware cut %d worse than identity %d", np, cores, got, id)
			}
			if got := ringCut(nodeAware, topo); got != topo.NumNodes() && topo.NumNodes() > 1 {
				t.Fatalf("np=%d cores=%d: node-aware cut %d want %d", np, cores, got, topo.NumNodes())
			}
		}
	}
}

func TestBcastOptNodeAwareVerifies(t *testing.T) {
	for _, topo := range []*topology.Map{
		topology.RoundRobin(10, 3),
		topology.Blocked(9, 4),
		topology.SingleNode(5),
	} {
		for _, root := range []int{0, topo.NP() - 1} {
			n := 16 * topo.NP()
			pr, err := BcastOptNodeAware(topo, root, n)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Root != root {
				t.Fatalf("relabelled root = %d want %d", pr.Root, root)
			}
			res, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)})
			if err != nil {
				t.Fatalf("%s root=%d: %v", topo, root, err)
			}
			if res.RedundantMessages != 0 {
				t.Fatalf("node-aware tuned ring must stay redundancy-free, got %d", res.RedundantMessages)
			}
		}
	}
}

func TestBcastNativeNodeAwareVerifies(t *testing.T) {
	topo := topology.RoundRobin(8, 3)
	pr, err := BcastNativeNodeAware(topo, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(64)}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAwareKeepsTrafficCounts(t *testing.T) {
	// Relabeling permutes endpoints but not message or byte counts.
	topo := topology.RoundRobin(10, 3)
	pr, err := BcastOptNodeAware(topo, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	base := BcastOptProgram(10, 0, 100).Stats()
	got := pr.Stats()
	if got.Messages != base.Messages || got.Bytes != base.Bytes {
		t.Fatalf("relabelled stats %+v != base %+v", got, base)
	}
}

func TestChainBcastVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 10} {
		for _, n := range []int{0, 1, 100, 4096} {
			for _, seg := range []int{0, 1, 7, 1024} {
				pr := ChainBcast(p, p/2, n, seg)
				if _, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)}); err != nil {
					t.Fatalf("p=%d n=%d seg=%d: %v", p, n, seg, err)
				}
			}
		}
	}
}

func TestChainBcastTraffic(t *testing.T) {
	// Each non-tail rank forwards every segment exactly once:
	// (p-1) * ceil(n/seg) messages, (p-1)*n bytes.
	const p, n, seg = 5, 1000, 128
	pr := ChainBcast(p, 0, n, seg)
	segs := (n + seg - 1) / seg
	st := pr.Stats()
	if st.Messages != (p-1)*segs {
		t.Fatalf("messages = %d want %d", st.Messages, (p-1)*segs)
	}
	if st.Bytes != (p-1)*n {
		t.Fatalf("bytes = %d want %d", st.Bytes, (p-1)*n)
	}
	if st.MaxStep != segs {
		t.Fatalf("steps = %d want %d", st.MaxStep, segs)
	}
}

func TestChainBcastInterleavesForPipelining(t *testing.T) {
	// A middle rank's op order must alternate recv(seg k), send(seg k):
	// receiving everything before forwarding would kill the pipeline.
	pr := ChainBcast(4, 0, 1000, 100)
	ops := pr.OpsOf(1) // relative rank 1: both receives and sends
	for i := 0; i+1 < len(ops); i += 2 {
		if ops[i].Kind != sched.OpRecv || ops[i+1].Kind != sched.OpSend {
			t.Fatalf("ops %d/%d not recv/send interleaved: %s, %s", i, i+1, ops[i], ops[i+1])
		}
		if ops[i].RecvOff != ops[i+1].SendOff {
			t.Fatalf("forwarding a different segment than received: %s then %s", ops[i], ops[i+1])
		}
	}
}
