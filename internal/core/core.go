package core
