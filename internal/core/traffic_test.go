package core

import (
	"testing"
	"testing/quick"
)

// TestTrafficPaperClaims checks the exact in-text numbers from Section IV:
// P=8: 56 -> 44 (reduced by 12); P=10: 90 -> 75 (reduced by 15).
func TestTrafficPaperClaims(t *testing.T) {
	if got := RingTrafficNative(8, 8).Messages; got != 56 {
		t.Errorf("native ring messages P=8: %d want 56", got)
	}
	if got := RingTrafficTuned(8, 8).Messages; got != 44 {
		t.Errorf("tuned ring messages P=8: %d want 44", got)
	}
	if got := TunedSavedMessages(8); got != 12 {
		t.Errorf("saved messages P=8: %d want 12", got)
	}
	if got := RingTrafficNative(10, 10).Messages; got != 90 {
		t.Errorf("native ring messages P=10: %d want 90", got)
	}
	if got := RingTrafficTuned(10, 10).Messages; got != 75 {
		t.Errorf("tuned ring messages P=10: %d want 75", got)
	}
	if got := TunedSavedMessages(10); got != 15 {
		t.Errorf("saved messages P=10: %d want 15", got)
	}
}

// TestTrafficMatchesSchedules: the analytic model must agree exactly with
// counts derived from the generated programs, for all roots.
func TestTrafficMatchesSchedules(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 9, 10, 13, 16, 17, 24, 33} {
		for _, n := range []int{0, 1, p - 1, p, 5 * p, 64*p + 7} {
			if n < 0 {
				continue
			}
			for _, root := range []int{0, p / 2, p - 1} {
				if root < 0 || root >= p {
					continue
				}
				natStats := RingAllgatherNative(p, root, n).Stats()
				nat := RingTrafficNative(p, n)
				if natStats.Messages != nat.Messages || natStats.Bytes != nat.Bytes ||
					natStats.NonEmptyMessages != nat.NonEmptyMessages {
					t.Fatalf("p=%d n=%d root=%d: native model %+v != schedule %+v", p, n, root, nat, natStats)
				}
				tunStats := RingAllgatherTuned(p, root, n).Stats()
				tun := RingTrafficTuned(p, n)
				if tunStats.Messages != tun.Messages || tunStats.Bytes != tun.Bytes ||
					tunStats.NonEmptyMessages != tun.NonEmptyMessages {
					t.Fatalf("p=%d n=%d root=%d: tuned model %+v != schedule %+v", p, n, root, tun, tunStats)
				}
				scatStats := ScatterSchedule(p, root, n).Stats()
				scat := ScatterTraffic(p, n)
				if scatStats.Messages != scat.Messages || scatStats.Bytes != scat.Bytes {
					t.Fatalf("p=%d n=%d root=%d: scatter model %+v != schedule %+v", p, n, root, scat, scatStats)
				}
			}
		}
	}
}

// TestTunedSavingsClosedForm: message savings equal the sum of (step-1)
// over receive-only ranks, and the tuned count is never larger than the
// native count.
func TestTunedSavingsClosedForm(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%200 + 1
		n := 8 * p
		nat := RingTrafficNative(p, n)
		tun := RingTrafficTuned(p, n)
		saved := TunedSavedMessages(p)
		if nat.Messages-tun.Messages != saved {
			return false
		}
		return tun.Messages <= nat.Messages && tun.Bytes <= nat.Bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSavingsGrowWithP: the paper deduces "the decrement in the amount of
// the transferred data will increase as the growing of the process count".
// Savings are monotone over doubling P (not strictly monotone point-wise,
// but doubling the power-of-two P must increase savings).
func TestSavingsGrowWithP(t *testing.T) {
	prev := TunedSavedMessages(2)
	for p := 4; p <= 1024; p *= 2 {
		cur := TunedSavedMessages(p)
		if cur <= prev {
			t.Fatalf("savings not growing: P=%d saves %d, P=%d saves %d", p/2, prev, p, cur)
		}
		prev = cur
	}
}

// TestSavingsClosedFormPow2: for power-of-two P the receive-only ranks have
// steps P, P/2 (once), and 2 (for the remaining P/2-1 leaves)... computed
// independently here by direct summation over extents: savings =
// sum over subtree roots (extent - 1).
func TestSavingsViaExtents(t *testing.T) {
	for p := 2; p <= 512; p++ {
		want := 0
		for rel := 0; rel < p; rel++ {
			e := Extent(rel, p)
			if e > 1 {
				want += e - 1
			}
		}
		if got := TunedSavedMessages(p); got != want {
			t.Fatalf("p=%d: savings %d want %d (extent sum)", p, got, want)
		}
	}
}

func TestSavedHelper(t *testing.T) {
	nat := RingTrafficNative(8, 8)
	tun := RingTrafficTuned(8, 8)
	d := tun.Saved(nat)
	if d.Messages != 12 || d.Bytes != 12 {
		t.Fatalf("saved = %+v", d)
	}
}

// TestBcastTrafficTotals: full-broadcast traffic is scatter + ring.
func TestBcastTrafficTotals(t *testing.T) {
	for _, p := range []int{2, 8, 10, 17} {
		n := 16 * p
		nat := BcastTrafficNative(p, n)
		opt := BcastTrafficOpt(p, n)
		natProg := BcastNativeProgram(p, 0, n).Stats()
		optProg := BcastOptProgram(p, 0, n).Stats()
		if nat.Messages != natProg.Messages || nat.Bytes != natProg.Bytes {
			t.Fatalf("p=%d: native total %+v != program %+v", p, nat, natProg)
		}
		if opt.Messages != optProg.Messages || opt.Bytes != optProg.Bytes {
			t.Fatalf("p=%d: opt total %+v != program %+v", p, opt, optProg)
		}
		if opt.Messages >= nat.Messages {
			t.Fatalf("p=%d: opt must save messages (%d vs %d)", p, opt.Messages, nat.Messages)
		}
	}
}

// TestNativeBytesClosedForm: the enclosed ring moves (P-1)*n bytes.
func TestNativeBytesClosedForm(t *testing.T) {
	for _, p := range []int{2, 5, 8, 10, 33} {
		for _, n := range []int{0, 1, p, 100 * p, 101*p + 13} {
			if got := RingTrafficNative(p, n).Bytes; got != (p-1)*n {
				t.Fatalf("p=%d n=%d: native bytes %d want %d", p, n, got, (p-1)*n)
			}
		}
	}
}

func TestTrafficDegenerate(t *testing.T) {
	if tr := RingTrafficNative(1, 100); tr.Messages != 0 || tr.Bytes != 0 {
		t.Fatalf("p=1 native traffic = %+v", tr)
	}
	if tr := RingTrafficTuned(1, 100); tr.Messages != 0 || tr.Bytes != 0 {
		t.Fatalf("p=1 tuned traffic = %+v", tr)
	}
	if TunedSavedMessages(1) != 0 || TunedSavedMessages(0) != 0 {
		t.Fatal("degenerate savings must be 0")
	}
}
