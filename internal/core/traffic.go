package core

// Traffic summarizes the communication volume of one algorithm phase.
type Traffic struct {
	// Messages is the number of message transfers, counting zero-byte
	// envelopes (the paper's "data transmissions" count).
	Messages int
	// NonEmptyMessages excludes zero-byte transfers.
	NonEmptyMessages int
	// Bytes is the total payload volume.
	Bytes int
}

// Saved returns how many messages and bytes t saves relative to base.
func (t Traffic) Saved(base Traffic) Traffic {
	return Traffic{
		Messages:         base.Messages - t.Messages,
		NonEmptyMessages: base.NonEmptyMessages - t.NonEmptyMessages,
		Bytes:            base.Bytes - t.Bytes,
	}
}

// TunedSavedMessages returns the closed-form number of ring messages the
// tuned allgather removes relative to the native enclosed ring: every
// receive-only rank r skips its final step_r - 1 sends, so the saving is
//
//	sum over recv-only ranks of (step_r - 1).
//
// For p = 8 this is 12 (56 -> 44) and for p = 10 it is 15 (90 -> 75),
// matching Section IV of the paper.
func TunedSavedMessages(p int) int {
	if p <= 1 {
		return 0
	}
	saved := 0
	for rel := 0; rel < p; rel++ {
		sf := ComputeStepFlag(rel, p)
		if sf.RecvOnly {
			saved += sf.Step - 1
		}
	}
	return saved
}

// RingTrafficNative returns the traffic of the enclosed ring allgather:
// P messages in each of the P-1 steps. Bytes are (P-1)*n when chunks
// divide evenly; with uneven division the exact per-chunk counts are
// summed (each step circulates every chunk exactly once).
func RingTrafficNative(p, n int) Traffic {
	if p <= 1 {
		return Traffic{}
	}
	l := NewLayout(n, p)
	nonEmptyPerStep := 0
	bytesPerStep := 0
	for rel := 0; rel < p; rel++ {
		c := l.Count(rel)
		bytesPerStep += c
		if c > 0 {
			nonEmptyPerStep++
		}
	}
	return Traffic{
		Messages:         p * (p - 1),
		NonEmptyMessages: nonEmptyPerStep * (p - 1),
		Bytes:            bytesPerStep * (p - 1),
	}
}

// RingTrafficTuned returns the traffic of the paper's non-enclosed ring
// allgather, computed exactly from the per-rank (step, flag) pairs: each
// rank sends in steps 1..P-1 except that receive-only ranks skip their
// final step-1 sends.
func RingTrafficTuned(p, n int) Traffic {
	if p <= 1 {
		return Traffic{}
	}
	l := NewLayout(n, p)
	var t Traffic
	for rank := 0; rank < p; rank++ {
		// Traffic counts are root-invariant (relative ranks only), so
		// compute with root 0: rel == rank.
		sf := ComputeStepFlag(rank, p)
		lastSendStep := p - 1
		if sf.RecvOnly {
			lastSendStep = p - sf.Step
		}
		for i := 1; i <= lastSendStep; i++ {
			relJ := ((rank-(i-1))%p + p) % p
			c := l.Count(relJ)
			t.Messages++
			if c > 0 {
				t.NonEmptyMessages++
			}
			t.Bytes += c
		}
	}
	return t
}

// ScatterTraffic returns the traffic of the binomial scatter phase:
// every rank with a non-empty subtree range receives exactly one message.
func ScatterTraffic(p, n int) Traffic {
	l := NewLayout(n, p)
	var t Traffic
	for rel := 1; rel < p; rel++ {
		length := coverEnd(l, rel, p) - l.Disp(rel)
		if length > 0 {
			t.Messages++
			t.NonEmptyMessages++
			t.Bytes += length
		}
	}
	return t
}

// BcastTrafficNative returns scatter + native ring traffic
// (MPI_Bcast_native's total).
func BcastTrafficNative(p, n int) Traffic {
	s, r := ScatterTraffic(p, n), RingTrafficNative(p, n)
	return Traffic{
		Messages:         s.Messages + r.Messages,
		NonEmptyMessages: s.NonEmptyMessages + r.NonEmptyMessages,
		Bytes:            s.Bytes + r.Bytes,
	}
}

// BcastTrafficOpt returns scatter + tuned ring traffic
// (MPI_Bcast_opt's total).
func BcastTrafficOpt(p, n int) Traffic {
	s, r := ScatterTraffic(p, n), RingTrafficTuned(p, n)
	return Traffic{
		Messages:         s.Messages + r.Messages,
		NonEmptyMessages: s.NonEmptyMessages + r.NonEmptyMessages,
		Bytes:            s.Bytes + r.Bytes,
	}
}
