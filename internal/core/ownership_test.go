package core

import (
	"testing"
	"testing/quick"
)

func TestExtentPaperExamples(t *testing.T) {
	// P = 8 (Figure 1): root owns all 8 chunks; 4 owns {4..7}; 2 owns
	// {2,3}; 6 owns {6,7}; odd ranks own only their own chunk.
	wants8 := map[int]int{0: 8, 1: 1, 2: 2, 3: 1, 4: 4, 5: 1, 6: 2, 7: 1}
	for rel, want := range wants8 {
		if got := Extent(rel, 8); got != want {
			t.Errorf("Extent(%d, 8) = %d want %d", rel, got, want)
		}
	}
	// P = 10 (Figure 2): additional branch rooted at 8 owning {8,9}.
	wants10 := map[int]int{0: 10, 2: 2, 4: 4, 6: 2, 8: 2, 1: 1, 3: 1, 5: 1, 7: 1, 9: 1}
	for rel, want := range wants10 {
		if got := Extent(rel, 10); got != want {
			t.Errorf("Extent(%d, 10) = %d want %d", rel, got, want)
		}
	}
}

// scatterParent returns the binomial-scatter parent of relative rank rel.
func scatterParent(rel int) int { return rel - rel&(-rel) }

// TestExtentMatchesScatterPaths: rank rel owns chunk c if and only if rel
// lies on c's scatter path (rel is c or an ancestor of c in the binomial
// tree). This ties the closed-form Extent to the tree semantics.
func TestExtentMatchesScatterPaths(t *testing.T) {
	for p := 1; p <= 64; p++ {
		// owners[c] = set of ranks owning chunk c per Extent.
		owners := make([]map[int]bool, p)
		for c := range owners {
			owners[c] = map[int]bool{}
		}
		for rel := 0; rel < p; rel++ {
			lo, hi := OwnedChunks(rel, p)
			if lo != rel {
				t.Fatalf("p=%d rel=%d: owned chunks must start at rel, got %d", p, rel, lo)
			}
			for c := lo; c < hi; c++ {
				owners[c][rel] = true
			}
		}
		for c := 0; c < p; c++ {
			// Ancestor chain of c: c, parent(c), ..., 0.
			want := map[int]bool{}
			for x := c; ; x = scatterParent(x) {
				want[x] = true
				if x == 0 {
					break
				}
			}
			if len(owners[c]) != len(want) {
				t.Fatalf("p=%d chunk %d: owners %v want %v", p, c, owners[c], want)
			}
			for rel := range want {
				if !owners[c][rel] {
					t.Fatalf("p=%d chunk %d: missing owner %d", p, c, rel)
				}
			}
		}
	}
}

func TestExtentBounds(t *testing.T) {
	f := func(relRaw, pRaw uint8) bool {
		p := int(pRaw)%128 + 1
		rel := int(relRaw) % p
		e := Extent(rel, p)
		if e < 1 || rel+e > p {
			return false
		}
		if rel == 0 {
			return e == p
		}
		// e is a power of two or the boundary clamp p-rel.
		return IsPow2(e) || e == p-rel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterOwnershipRootRotation(t *testing.T) {
	// With root 3 in a 5-rank world, rank 3 owns everything and rank 4
	// (rel 1) owns only its own chunk bytes.
	p, n := 5, 50
	own := ScatterOwnership(p, 3, n)
	if own(3).Total() != n {
		t.Fatalf("root ownership = %s", own(3))
	}
	l := NewLayout(n, p)
	rel := RelRank(4, 3, p) // = 1
	want := l.Count(rel)
	if own(4).Total() != want {
		t.Fatalf("rank 4 ownership = %s want %d bytes", own(4), want)
	}
}

func TestMissingBytesAfterScatter(t *testing.T) {
	// P=8, n=8: ownerships 8,1,2,1,4,1,2,1 -> missing 0+7+6+7+4+7+6+7 = 44.
	if got := MissingBytesAfterScatter(8, 8); got != 44 {
		t.Fatalf("missing bytes (8,8) = %d want 44", got)
	}
	// P=10, n=10: missing 0+9+8+9+6+9+8+9+8+9 = 75.
	if got := MissingBytesAfterScatter(10, 10); got != 75 {
		t.Fatalf("missing bytes (10,10) = %d want 75", got)
	}
}

// TestMissingBytesEqualsTunedRingBytes: the tuned ring transfers exactly
// the missing volume — the bandwidth-optimality claim.
func TestMissingBytesEqualsTunedRingBytes(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8, 9, 10, 16, 17, 33} {
		for _, n := range []int{0, 1, p - 1, p, 10 * p, 10*p + 3} {
			if n < 0 {
				continue
			}
			want := MissingBytesAfterScatter(p, n)
			got := RingTrafficTuned(p, n).Bytes
			if got != want {
				t.Errorf("p=%d n=%d: tuned ring bytes %d != missing bytes %d", p, n, got, want)
			}
		}
	}
}
