package core

import (
	"testing"

	"repro/internal/sched"
)

// opsOfKind filters rank's ops in pr by kind.
func opsOfKind(pr *sched.Program, rank int, kind sched.OpKind) []sched.Op {
	var out []sched.Op
	for _, op := range pr.OpsOf(rank) {
		if op.Kind == kind {
			out = append(out, op)
		}
	}
	return out
}

// TestScatterScheduleFig1 asserts the exact binomial scatter of Figure 1:
// 8 processes, root 0, one unit byte per chunk.
func TestScatterScheduleFig1(t *testing.T) {
	pr := ScatterSchedule(8, 0, 8)
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	type msg struct{ to, off, len int }
	wantSends := map[int][]msg{
		0: {{4, 4, 4}, {2, 2, 2}, {1, 1, 1}}, // step 1: {4,5,6,7} -> 4; then {2,3} -> 2; {1} -> 1
		4: {{6, 6, 2}, {5, 5, 1}},
		2: {{3, 3, 1}},
		6: {{7, 7, 1}},
	}
	for rank := 0; rank < 8; rank++ {
		sends := opsOfKind(pr, rank, sched.OpSend)
		want := wantSends[rank]
		if len(sends) != len(want) {
			t.Fatalf("rank %d: %d sends, want %d\n%s", rank, len(sends), len(want), pr.Dump())
		}
		for i, w := range want {
			got := sends[i]
			if got.To != w.to || got.SendOff != w.off || got.SendLen != w.len {
				t.Fatalf("rank %d send %d = %s want to=%d [%d,%d)", rank, i, got, w.to, w.off, w.off+w.len)
			}
		}
		// Every non-root rank receives exactly once, at its own chunk
		// offset, covering its whole subtree.
		recvs := opsOfKind(pr, rank, sched.OpRecv)
		if rank == 0 {
			if len(recvs) != 0 {
				t.Fatalf("root must not receive, got %v", recvs)
			}
			continue
		}
		if len(recvs) != 1 {
			t.Fatalf("rank %d: %d recvs, want 1", rank, len(recvs))
		}
		lo, hi := OwnedChunks(rank, 8)
		if recvs[0].RecvOff != lo || recvs[0].RecvLen != hi-lo {
			t.Fatalf("rank %d recv = %s want [%d,%d)", rank, recvs[0], lo, hi)
		}
	}
	if pr.Messages() != 7 {
		t.Fatalf("scatter messages = %d want 7", pr.Messages())
	}
}

// TestScatterScheduleFig2 asserts Figure 2: 10 processes; same tree as
// Figure 1 plus an additional branch rooted at process 8.
func TestScatterScheduleFig2(t *testing.T) {
	pr := ScatterSchedule(10, 0, 10)
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	rootSends := opsOfKind(pr, 0, sched.OpSend)
	// Root sends, largest subtree first: {8,9} -> 8 (the extra branch,
	// spawned at mask 8), then {4..7} -> 4, {2,3} -> 2, {1} -> 1.
	wantTo := []int{8, 4, 2, 1}
	wantLen := []int{2, 4, 2, 1}
	if len(rootSends) != 4 {
		t.Fatalf("root sends = %d want 4\n%s", len(rootSends), pr.Dump())
	}
	for i := range wantTo {
		if rootSends[i].To != wantTo[i] || rootSends[i].SendLen != wantLen[i] {
			t.Fatalf("root send %d = %s want to=%d len=%d", i, rootSends[i], wantTo[i], wantLen[i])
		}
	}
	// The extra branch: 8 forwards {9} to 9.
	sends8 := opsOfKind(pr, 8, sched.OpSend)
	if len(sends8) != 1 || sends8[0].To != 9 || sends8[0].SendOff != 9 || sends8[0].SendLen != 1 {
		t.Fatalf("rank 8 sends = %v", sends8)
	}
	if pr.Messages() != 9 {
		t.Fatalf("scatter messages = %d want 9", pr.Messages())
	}
}

// TestScatterScheduleVerifies: for a grid of (p, root, n), the scatter
// schedule runs deadlock-free, transfers only valid data, and leaves each
// rank owning exactly its subtree bytes.
func TestScatterScheduleVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 9, 10, 16, 17, 24, 33} {
		for _, root := range []int{0, 1, p - 1, p / 2} {
			if root < 0 || root >= p {
				continue
			}
			for _, n := range []int{0, 1, p, 3*p + 1, 64 * p} {
				pr := ScatterSchedule(p, root, n)
				want := ScatterOwnership(p, root, n)
				res, err := sched.Verify(pr, sched.VerifyConfig{
					WantFinal: want,
				})
				if err != nil {
					t.Fatalf("p=%d root=%d n=%d: %v", p, root, n, err)
				}
				if res.RedundantMessages != 0 {
					t.Fatalf("p=%d root=%d n=%d: scatter had %d redundant messages", p, root, n, res.RedundantMessages)
				}
				// Ownership must be exactly the subtree (not more).
				for r := 0; r < p; r++ {
					if !res.Final[r].Equal(want(r)) {
						t.Fatalf("p=%d root=%d n=%d rank %d: final %s want %s",
							p, root, n, r, res.Final[r], want(r))
					}
				}
			}
		}
	}
}

// TestNativeRingFig3 asserts the enclosed ring of Figure 3: with P = 8
// every rank performs 7 Sendrecv steps; in step i rank r sends chunk
// (r - i + 1 mod 8) and receives chunk (r - i mod 8); 56 messages total.
func TestNativeRingFig3(t *testing.T) {
	const p = 8
	pr := RingAllgatherNative(p, 0, p)
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		ops := pr.OpsOf(r)
		if len(ops) != p-1 {
			t.Fatalf("rank %d: %d ops want %d", r, len(ops), p-1)
		}
		for i, op := range ops {
			step := i + 1
			if op.Kind != sched.OpSendrecv {
				t.Fatalf("rank %d step %d: kind %s", r, step, op.Kind)
			}
			wantSendChunk := ((r-step+1)%p + p) % p
			wantRecvChunk := ((r-step)%p + p) % p
			if op.SendOff != wantSendChunk || op.RecvOff != wantRecvChunk {
				t.Fatalf("rank %d step %d: %s want send chunk %d recv chunk %d",
					r, step, op, wantSendChunk, wantRecvChunk)
			}
			if op.To != (r+1)%p || op.From != (r+p-1)%p {
				t.Fatalf("rank %d step %d: wrong peers %s", r, step, op)
			}
		}
	}
	if pr.Messages() != p*(p-1) {
		t.Fatalf("messages = %d want %d", pr.Messages(), p*(p-1))
	}
}

// TestTunedRingFig4 asserts the non-enclosed ring of Figure 4 (P = 8):
// rank 4 receives chunks 3,2,1,0 in steps 1-4 and has no receives
// afterwards; rank 0 never receives; rank 7 never sends; 44 messages.
func TestTunedRingFig4(t *testing.T) {
	const p = 8
	pr := RingAllgatherTuned(p, 0, p)
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rank 4: steps 1-4 sendrecv (receiving chunks 3,2,1,0), steps 5-7 send-only.
	ops4 := pr.OpsOf(4)
	wantRecvChunks := []int{3, 2, 1, 0}
	for i := 0; i < 4; i++ {
		if ops4[i].Kind != sched.OpSendrecv || ops4[i].RecvOff != wantRecvChunks[i] {
			t.Fatalf("rank 4 step %d: %s want sendrecv of chunk %d", i+1, ops4[i], wantRecvChunks[i])
		}
	}
	for i := 4; i < 7; i++ {
		if ops4[i].Kind != sched.OpSend {
			t.Fatalf("rank 4 step %d: %s want send-only", i+1, ops4[i])
		}
	}
	// Rank 0 (root): send-only in every step.
	for i, op := range pr.OpsOf(0) {
		if op.Kind != sched.OpSend {
			t.Fatalf("root step %d: %s want send-only", i+1, op)
		}
	}
	// Rank 7: receive-only in every step.
	for i, op := range pr.OpsOf(7) {
		if op.Kind != sched.OpRecv {
			t.Fatalf("rank 7 step %d: %s want recv-only", i+1, op)
		}
	}
	// Ranks 2 and 6 stop receiving after step 6; ranks 1 and 5 stop
	// sending after step 6.
	for _, r := range []int{2, 6} {
		ops := pr.OpsOf(r)
		if ops[6].Kind != sched.OpSend {
			t.Fatalf("rank %d step 7: %s want send-only", r, ops[6])
		}
		if ops[5].Kind != sched.OpSendrecv {
			t.Fatalf("rank %d step 6: %s want sendrecv", r, ops[5])
		}
	}
	for _, r := range []int{1, 5} {
		ops := pr.OpsOf(r)
		if ops[6].Kind != sched.OpRecv {
			t.Fatalf("rank %d step 7: %s want recv-only", r, ops[6])
		}
	}
	if got := pr.Messages(); got != 44 {
		t.Fatalf("tuned ring messages = %d want 44 (paper: 56 reduced by 12)", got)
	}
}

// TestTunedRingFig5 asserts Figure 5 (P = 10): rank 4 stops receiving
// after step 6; rank 8 completes its buffer after step 8; 75 messages.
func TestTunedRingFig5(t *testing.T) {
	const p = 10
	pr := RingAllgatherTuned(p, 0, p)
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	ops4 := pr.OpsOf(4)
	// Steps 1-6: sendrecv receiving chunks 3,2,1,0,9,8; steps 7-9 send-only.
	wantRecv := []int{3, 2, 1, 0, 9, 8}
	for i, c := range wantRecv {
		if ops4[i].Kind != sched.OpSendrecv || ops4[i].RecvOff != c {
			t.Fatalf("rank 4 step %d: %s want sendrecv chunk %d", i+1, ops4[i], c)
		}
	}
	for i := 6; i < 9; i++ {
		if ops4[i].Kind != sched.OpSend {
			t.Fatalf("rank 4 step %d: %s want send-only", i+1, ops4[i])
		}
	}
	// Rank 8 (subtree {8,9}): sendrecv through step 8, send-only at step 9.
	ops8 := pr.OpsOf(8)
	for i := 0; i < 8; i++ {
		if ops8[i].Kind != sched.OpSendrecv {
			t.Fatalf("rank 8 step %d: %s want sendrecv", i+1, ops8[i])
		}
	}
	if ops8[8].Kind != sched.OpSend {
		t.Fatalf("rank 8 step 9: %s want send-only", ops8[8])
	}
	if got := pr.Messages(); got != 75 {
		t.Fatalf("tuned ring messages = %d want 75 (paper: 90 reduced by 15)", got)
	}
}

// bcastGrid is the (p, root, n) grid used by the end-to-end schedule tests.
func bcastGrid() [][3]int {
	var grid [][3]int
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 17, 24, 31, 33, 64} {
		for _, root := range []int{0, 1, p / 2, p - 1} {
			if root < 0 || root >= p {
				continue
			}
			for _, n := range []int{0, 1, p - 1, p, 7 * p, 64*p + 5} {
				if n < 0 {
					continue
				}
				grid = append(grid, [3]int{p, root, n})
			}
		}
	}
	return grid
}

// TestBcastNativeProgramVerifies: the full native broadcast (scatter +
// enclosed ring) completes, transfers only sender-owned data, and leaves
// every rank with the whole buffer. Its redundant traffic equals the
// closed-form saving when all chunks are non-empty.
func TestBcastNativeProgramVerifies(t *testing.T) {
	for _, g := range bcastGrid() {
		p, root, n := g[0], g[1], g[2]
		pr := BcastNativeProgram(p, root, n)
		res, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)})
		if err != nil {
			t.Fatalf("p=%d root=%d n=%d: %v", p, root, n, err)
		}
		if n >= p && p > 1 {
			want := TunedSavedMessages(p)
			if res.RedundantMessages != want {
				t.Fatalf("p=%d root=%d n=%d: native redundant messages = %d want %d",
					p, root, n, res.RedundantMessages, want)
			}
		}
	}
}

// TestBcastOptProgramVerifies: the tuned broadcast completes with zero
// redundant transfers — the paper's core claim.
func TestBcastOptProgramVerifies(t *testing.T) {
	for _, g := range bcastGrid() {
		p, root, n := g[0], g[1], g[2]
		pr := BcastOptProgram(p, root, n)
		res, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)})
		if err != nil {
			t.Fatalf("p=%d root=%d n=%d: %v", p, root, n, err)
		}
		if res.RedundantMessages != 0 {
			t.Fatalf("p=%d root=%d n=%d: tuned broadcast had %d redundant messages",
				p, root, n, res.RedundantMessages)
		}
	}
}

// TestBcastRdbProgramVerifies: the power-of-two medium-message path.
func TestBcastRdbProgramVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, root := range []int{0, p - 1} {
			if root < 0 {
				continue
			}
			for _, n := range []int{0, 1, p, 16*p + 3} {
				pr := BcastRdbProgram(p, root, n)
				if _, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)}); err != nil {
					t.Fatalf("p=%d root=%d n=%d: %v", p, root, n, err)
				}
			}
		}
	}
}

func TestRdbAllgatherRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RdbAllgather(10) must panic")
		}
	}()
	RdbAllgather(10, 0, 10)
}

func TestRdbMessageCount(t *testing.T) {
	// Recursive doubling: every rank sends once per round, log2(p) rounds.
	for _, p := range []int{2, 4, 8, 16, 32} {
		pr := RdbAllgather(p, 0, 64*p)
		want := p * FloorLog2(p)
		if pr.Messages() != want {
			t.Fatalf("p=%d: rdb messages = %d want %d", p, pr.Messages(), want)
		}
	}
}

// TestBinomialBcastVerifies: the short-message path delivers the full
// buffer everywhere with exactly p-1 full-size messages.
func TestBinomialBcastVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13, 16, 33} {
		for _, root := range []int{0, p / 2} {
			for _, n := range []int{0, 1, 1024} {
				pr := BinomialBcast(p, root, n)
				if _, err := sched.Verify(pr, sched.VerifyConfig{WantFinal: sched.FullBuffer(n)}); err != nil {
					t.Fatalf("p=%d root=%d n=%d: %v", p, root, n, err)
				}
				if pr.Messages() != p-1 {
					t.Fatalf("p=%d: binomial messages = %d want %d", p, pr.Messages(), p-1)
				}
				if pr.Bytes() != (p-1)*n {
					t.Fatalf("p=%d n=%d: binomial bytes = %d want %d", p, n, pr.Bytes(), (p-1)*n)
				}
			}
		}
	}
}

// TestBinomialBcastRounds: the binomial tree completes in ceil(log2 p)
// communication rounds — the "dlog2(P)e steps" property of Section III.
// A rank's receive round is its parent's receive round plus the 1-based
// position of this child in the parent's (descending-mask) send order.
func TestBinomialBcastRounds(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8, 9, 10, 16, 17, 33, 64, 100} {
		pr := BinomialBcast(p, 0, p)
		round := make([]int, p) // receive round per relative rank; root = 0
		maxRound := 0
		// Ranks are processed in increasing rel order; parent < child, so
		// the parent's round is always known first.
		for rel := 1; rel < p; rel++ {
			parent := scatterParent(rel)
			// Position of rel among parent's children (descending mask).
			parentTop := CeilPow2(p)
			if parent != 0 {
				parentTop = parent & (-parent)
			}
			pos := 0
			for mask := parentTop >> 1; mask > 0; mask >>= 1 {
				child := parent + mask
				if child >= p {
					continue
				}
				pos++
				if child == rel {
					break
				}
			}
			round[rel] = round[parent] + pos
			if round[rel] > maxRound {
				maxRound = round[rel]
			}
		}
		want := 0
		for v := 1; v < p; v <<= 1 {
			want++
		}
		if maxRound != want {
			t.Fatalf("p=%d: rounds %d want ceil(log2 p) = %d", p, maxRound, want)
		}
		_ = pr
	}
}

// TestRingStepsEqual: tuned and native rings run the same number of steps
// (the paper: "using the same steps as the native ring allgather").
func TestRingStepsEqual(t *testing.T) {
	for _, p := range []int{2, 5, 8, 10, 17} {
		nat := RingAllgatherNative(p, 0, 8*p).Stats()
		tun := RingAllgatherTuned(p, 0, 8*p).Stats()
		if nat.MaxStep != p-1 || tun.MaxStep != p-1 {
			t.Fatalf("p=%d: maxStep native %d tuned %d want %d", p, nat.MaxStep, tun.MaxStep, p-1)
		}
	}
}
