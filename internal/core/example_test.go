package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's Section IV numbers fall straight out of the traffic model.
func ExampleTunedSavedMessages() {
	for _, p := range []int{8, 10} {
		nat := core.RingTrafficNative(p, p).Messages
		tun := core.RingTrafficTuned(p, p).Messages
		fmt.Printf("P=%d: native %d, tuned %d, saved %d\n", p, nat, tun, core.TunedSavedMessages(p))
	}
	// Output:
	// P=8: native 56, tuned 44, saved 12
	// P=10: native 90, tuned 75, saved 15
}

// ComputeStepFlag reproduces the per-rank behaviour of Figure 4: the
// root only sends, its left neighbour only receives, and interior
// subtree roots stop receiving step-1 iterations before the end.
func ExampleComputeStepFlag() {
	for _, rel := range []int{0, 4, 3, 7} {
		sf := core.ComputeStepFlag(rel, 8)
		mode := "send-only tail"
		if sf.RecvOnly {
			mode = "recv-only tail"
		}
		fmt.Printf("rel %d: step=%d %s (%d full sendrecv steps)\n",
			rel, sf.Step, mode, sf.SendrecvSteps(8))
	}
	// Output:
	// rel 0: step=8 send-only tail (0 full sendrecv steps)
	// rel 4: step=4 send-only tail (4 full sendrecv steps)
	// rel 3: step=4 recv-only tail (4 full sendrecv steps)
	// rel 7: step=8 recv-only tail (0 full sendrecv steps)
}

// After the binomial scatter, interior tree nodes own their whole
// subtree's chunks — the fact the tuned ring exploits.
func ExampleOwnedChunks() {
	for rel := 0; rel < 8; rel++ {
		lo, hi := core.OwnedChunks(rel, 8)
		fmt.Printf("rel %d owns chunks [%d,%d)\n", rel, lo, hi)
	}
	// Output:
	// rel 0 owns chunks [0,8)
	// rel 1 owns chunks [1,2)
	// rel 2 owns chunks [2,4)
	// rel 3 owns chunks [3,4)
	// rel 4 owns chunks [4,8)
	// rel 5 owns chunks [5,6)
	// rel 6 owns chunks [6,8)
	// rel 7 owns chunks [7,8)
}
