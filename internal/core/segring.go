package core

import "repro/internal/sched"

// This file generalizes segmentation from the chain broadcast to the
// scatter-ring family: segmented variants of the enclosed (native) and
// non-enclosed (tuned) ring allgathers that pipeline each ring step in
// segSize pieces. The ring structure — P-1 steps, each circulating one
// chunk per rank — is unchanged; every chunk transfer is split into
// ceil(chunk/segSize) back-to-back segment messages, so large rendezvous
// transfers become a stream of smaller ones that overlap inside each
// step's concurrent send/receive halves and across the engine's eager
// window. With segSize >= ceil(n/P) every chunk is a single segment and
// the schedules are identical to their unsegmented counterparts.

// DefaultRingSegment is the segment size used by the segmented ring
// allgathers when the caller passes segSize <= 0. It matches the engine's
// default eager limit, so default-segmented chunks take the eager path.
const DefaultRingSegment = 64 << 10

// RingSegments returns how many segments a count-byte chunk is cut into
// at the given segment size. Empty chunks still occupy one zero-byte
// round, mirroring the enclosed ring's zero-byte envelopes.
func RingSegments(count, segSize int) int {
	if count <= 0 {
		return 1
	}
	return (count + segSize - 1) / segSize
}

// SegSpan returns the offset and length of segment s within a count-byte
// chunk (offset relative to the chunk start). The final segment may be
// short; the single segment of an empty chunk is zero-length.
func SegSpan(count, segSize, s int) (off, length int) {
	off = s * segSize
	if off > count {
		off = count
	}
	length = count - off
	if length > segSize {
		length = segSize
	}
	return off, length
}

// segRing generates the segmented ring allgather. With tuned=false every
// rank runs the full enclosed exchange; with tuned=true each rank
// computes (step, flag) and degenerates to send-only or receive-only for
// its final step-1 ring steps, exactly like RingAllgatherTuned — the
// degeneration applies to every segment of the affected steps.
func segRing(p, root, n, segSize int, tuned bool, name string) *sched.Program {
	checkArgs(p, root, n)
	if segSize <= 0 {
		segSize = DefaultRingSegment
	}
	l := NewLayout(n, p)
	pr := sched.New(name, p, n, root)
	for rank := 0; rank < p; rank++ {
		var sf StepFlag
		if tuned {
			sf = ComputeStepFlag(RelRank(rank, root, p), p)
		}
		left, right := ringPeers(rank, p)
		j, jnext := rank, left
		for i := 1; i < p; i++ {
			relJ := RelRank(j, root, p)
			relJnext := RelRank(jnext, root, p)
			sendCnt, recvCnt := l.Count(relJ), l.Count(relJnext)
			sendDisp, recvDisp := l.Disp(relJ), l.Disp(relJnext)

			doSend, doRecv := true, true
			if tuned && sf.Step > p-i {
				doSend, doRecv = !sf.RecvOnly, sf.RecvOnly
			}
			rounds := 0
			if doSend {
				rounds = RingSegments(sendCnt, segSize)
			}
			if doRecv {
				if r := RingSegments(recvCnt, segSize); r > rounds {
					rounds = r
				}
			}
			for s := 0; s < rounds; s++ {
				sOK := doSend && s < RingSegments(sendCnt, segSize)
				rOK := doRecv && s < RingSegments(recvCnt, segSize)
				op := sched.Op{Tag: TagRing, Step: i}
				if sOK {
					off, length := SegSpan(sendCnt, segSize, s)
					op.To, op.SendOff, op.SendLen = right, sendDisp+off, length
				}
				if rOK {
					off, length := SegSpan(recvCnt, segSize, s)
					op.From, op.RecvOff, op.RecvLen = left, recvDisp+off, length
				}
				switch {
				case sOK && rOK:
					op.Kind = sched.OpSendrecv
				case rOK:
					op.Kind = sched.OpRecv
				case sOK:
					op.Kind = sched.OpSend
				default:
					continue
				}
				pr.Add(rank, op)
			}
			j = jnext
			jnext = (jnext - 1 + p) % p
		}
	}
	return pr
}

// RingAllgatherNativeSeg generates the segmented enclosed ring allgather:
// RingAllgatherNative with every chunk transfer pipelined in segSize
// pieces.
func RingAllgatherNativeSeg(p, root, n, segSize int) *sched.Program {
	return segRing(p, root, n, segSize, false, "ring-allgather-native-seg")
}

// RingAllgatherTunedSeg generates the segmented non-enclosed ring
// allgather: the paper's tuned ring with every retained chunk transfer
// pipelined in segSize pieces. The ownership-aware skips apply to whole
// steps, so the tuned saving carries over segment by segment.
func RingAllgatherTunedSeg(p, root, n, segSize int) *sched.Program {
	return segRing(p, root, n, segSize, true, "ring-allgather-tuned-seg")
}

// BcastNativeSegProgram is the segmented native broadcast: binomial
// scatter followed by the segmented enclosed ring allgather.
func BcastNativeSegProgram(p, root, n, segSize int) *sched.Program {
	pr := ScatterSchedule(p, root, n).MustConcat(RingAllgatherNativeSeg(p, root, n, segSize))
	pr.Name = "bcast-native-seg"
	return pr
}

// BcastOptSegProgram is the segmented tuned broadcast: binomial scatter
// followed by the segmented non-enclosed ring allgather.
func BcastOptSegProgram(p, root, n, segSize int) *sched.Program {
	pr := ScatterSchedule(p, root, n).MustConcat(RingAllgatherTunedSeg(p, root, n, segSize))
	pr.Name = "bcast-opt-seg"
	return pr
}
