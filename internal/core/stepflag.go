package core

// StepFlag is the per-rank pair computed by the tuned ring allgather
// (the "added code" of the paper's Listing 1).
//
// In ring step i (1-based, i = 1 .. P-1) a rank executes a full
// MPI_Sendrecv while i <= P - Step; for the remaining Step-1 iterations it
// degenerates:
//
//   - RecvOnly == false (the paper's flag = 0, "send point"): the rank is
//     a scatter-subtree root; the chunks that would arrive from its left
//     neighbour in the final iterations are chunks it already owns from
//     the scatter phase, so it stops receiving but keeps sending.
//   - RecvOnly == true (flag = 1, "receive point"): the rank's right
//     neighbour is a scatter-subtree root that does not need the chunks
//     this rank would forward, so it stops sending but keeps receiving.
//
// Every rank receives exactly one pair; the mask loop always terminates
// because at mask = 2 one of any two ring-adjacent relative ranks is even.
type StepFlag struct {
	// Step determines when the rank leaves the full-exchange regime: the
	// rank sendrecvs while i <= P - Step and degenerates for the final
	// Step-1 iterations.
	Step int
	// RecvOnly selects the degenerate half: true = receive-only, false =
	// send-only.
	RecvOnly bool
}

// ComputeStepFlag ports the mask loop of Listing 1. rel is the rank's
// position relative to the broadcast root; p is the communicator size.
func ComputeStepFlag(rel, p int) StepFlag {
	if p <= 1 {
		// Degenerate communicator: the ring loop body never runs.
		return StepFlag{Step: p, RecvOnly: false}
	}
	for mask := CeilPow2(p); mask > 1; mask >>= 1 {
		rightRel := rel + 1
		if rightRel >= p {
			rightRel -= p
		}
		if rightRel%mask == 0 {
			step := mask
			if rightRel+mask > p {
				step = p - rightRel
			}
			return StepFlag{Step: step, RecvOnly: true}
		}
		if rel%mask == 0 {
			step := mask
			if rel+mask > p {
				step = p - rel
			}
			return StepFlag{Step: step, RecvOnly: false}
		}
	}
	panic("core: ComputeStepFlag: mask loop fell through (unreachable for p >= 2)")
}

// SendrecvSteps returns how many of the P-1 ring iterations the rank
// executes as a full Sendrecv under the tuned algorithm.
func (sf StepFlag) SendrecvSteps(p int) int {
	full := p - sf.Step
	if full < 0 {
		full = 0
	}
	if full > p-1 {
		full = p - 1
	}
	return full
}

// DegenerateSteps returns how many iterations run send-only or
// receive-only: (P-1) - SendrecvSteps.
func (sf StepFlag) DegenerateSteps(p int) int {
	return (p - 1) - sf.SendrecvSteps(p)
}
