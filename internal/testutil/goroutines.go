// Package testutil holds small helpers shared by the module's test
// suites. It is imported only from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// WaitGoroutines polls until the process goroutine count drops back to
// at most base+2, failing t if it never does within five seconds. Every
// abort/cancellation test asserts through it that a torn-down world
// leaks no rank, watcher or worker goroutine; the slack absorbs the test
// runtime's own background goroutines.
func WaitGoroutines(t testing.TB, base int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, baseline %d", runtime.NumGoroutine(), base)
}
