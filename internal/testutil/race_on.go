//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in. Tests
// that assert allocation counts skip under -race: the detector's own
// bookkeeping allocates, so the counts are meaningless there.
const RaceEnabled = true
