package testutil

import (
	"runtime"
	"testing"
)

// TestWaitGoroutinesSettles: after a transient goroutine exits, the
// helper must observe the count back at baseline and return.
func TestWaitGoroutinesSettles(t *testing.T) {
	base := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() { <-done }()
	close(done)
	WaitGoroutines(t, base)
}
