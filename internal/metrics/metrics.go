// Package metrics is the engine's always-on instrumentation layer: a
// per-rank-sharded, atomic, allocation-free set of counters and gauges,
// plus opt-in per-operation span rings, merged into one Snapshot on the
// read side.
//
// The write side is built for the engine's steady-state discipline
// (≤2 allocs per operation inside a live world): every counter update is
// one atomic add or CAS-max on a pre-allocated, cache-line-padded
// per-rank shard, and span recording is an in-place struct write into a
// fixed-capacity ring. Nothing on the hot path allocates, takes a lock,
// or formats a string; all merging, labelling and encoding happens in
// Snapshot and its exporters, which callers invoke between runs.
//
// Sharding is by world rank because that is the engine's unit of
// concurrency — but a counter site may legally run on a peer's goroutine
// (a sender delivers into the receiver's endpoint), which is why shards
// are atomic rather than plain rank-owned ints.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counter indexes one accumulated quantity in a rank shard. Counters
// are summed across shards at snapshot time; the *Max entries are
// gauges merged by maximum instead (see Metrics.Max).
type Counter uint8

// The engine's counter set.
const (
	// EagerSends / RdvSends count messages issued, split by protocol.
	EagerSends Counter = iota
	RdvSends
	// EagerRecvs / RdvRecvs count messages delivered, split by protocol.
	EagerRecvs
	RdvRecvs
	// StagedBytes counts payload bytes copied through pooled staging
	// buffers (the eager protocol's engine-side copy).
	StagedBytes
	// Parks / Unparks count executor park/unpark transitions (every
	// blocking point in the engine is bracketed by exactly one pair).
	Parks
	Unparks
	// SlotWaits counts pooled-executor unparks that had to wait for a
	// free execution slot instead of reacquiring one immediately.
	SlotWaits
	// AbortedRuns counts world aborts (rank error, panic, cancellation,
	// timeout, deadlock).
	AbortedRuns
	// TagStreamHighWater is the highest collective tag-stream id any
	// rank reached within a run (max gauge; streams wrap at 256).
	TagStreamHighWater
	// PostedQueueMax / ArrivalQueueMax are the deepest posted-receive
	// and unexpected-arrival queues observed on any endpoint (max
	// gauges).
	PostedQueueMax
	ArrivalQueueMax
	// Wire* counters instrument a real-network transport (zero on the
	// in-process chan path): datagrams and wire bytes in each direction,
	// timeout-triggered retransmits, and completed ACK round-trips
	// (acknowledgements that retired at least one pending datagram).
	// Wire activity is process-level, so transports charge shard 0.
	WireDatagramsSent
	WireDatagramsRecv
	WireBytesSent
	WireBytesRecv
	WireRetransmits
	WireAckRoundTrips
	// Adaptive wire-path counters: ACK datagrams actually sent vs acks
	// coalesced away (in-order data packets whose cumulative ack was
	// deferred), batched send/recv syscalls (sendmmsg/recvmmsg), and
	// congestion-window halvings (loss events).
	WireAcksSent
	WireAcksCoalesced
	WireBatchedWrites
	WireBatchedReads
	WireCwndHalvings
	// Adaptive wire-path gauges (max over the run): congestion-window
	// high water in packets, the window's low water encoded inverted as
	// CwndLowWaterBase-cwnd (max of the inverse is the minimum; Snapshot
	// decodes it back), and the largest smoothed-RTT / retransmit-timeout
	// estimate any flow reached, in microseconds.
	WireCwndHighWater
	WireCwndLowWaterInv
	WireSRTTMaxMicros
	WireRTOMaxMicros

	numCounters
)

// CwndLowWaterBase is the encoding base for WireCwndLowWaterInv: writers
// record Max(CwndLowWaterBase - cwnd) so the shard-merged maximum is the
// observed minimum window. It only needs to exceed any plausible window
// in packets.
const CwndLowWaterBase = 1 << 20

// maxGauge reports whether c merges by maximum rather than by sum.
func maxGauge(c Counter) bool {
	switch c {
	case TagStreamHighWater, PostedQueueMax, ArrivalQueueMax,
		WireCwndHighWater, WireCwndLowWaterInv, WireSRTTMaxMicros, WireRTOMaxMicros:
		return true
	}
	return false
}

// shardPad rounds the shard up to a multiple of 128 bytes (two typical
// cache lines), so two ranks' hot counters never share a line.
const shardPad = (128 - (int(numCounters)*8)%128) % 128

type shard struct {
	c [numCounters]atomic.Int64
	_ [shardPad]byte
}

// Metrics is one world-shaped set of shards and (optionally) span
// rings. A Metrics outlives any single engine world: the facade's
// Cluster passes the same Metrics into every world it boots, so
// counters and spans accumulate across fallback reboots.
type Metrics struct {
	shards []shard
	rings  []SpanRing // empty when spans are disabled
}

// New builds a Metrics for np ranks. spanCap > 0 additionally enables
// per-operation spans with a ring of that capacity per rank; spanCap 0
// keeps spans off (counters are always on).
func New(np, spanCap int) *Metrics {
	if np <= 0 {
		panic(fmt.Sprintf("metrics: non-positive np %d", np))
	}
	if spanCap < 0 {
		spanCap = 0
	}
	m := &Metrics{shards: make([]shard, np)}
	if spanCap > 0 {
		m.rings = make([]SpanRing, np)
		for r := range m.rings {
			m.rings[r] = SpanRing{rank: r, buf: make([]Span, spanCap)}
		}
	}
	return m
}

// NP returns the rank count the Metrics was sized for.
func (m *Metrics) NP() int { return len(m.shards) }

// SpanCap returns the per-rank span ring capacity (0 = spans disabled).
func (m *Metrics) SpanCap() int {
	if len(m.rings) == 0 {
		return 0
	}
	return len(m.rings[0].buf)
}

// Add accumulates d into rank's shard for counter c. It is the hot-path
// write: one atomic add, no allocation.
func (m *Metrics) Add(rank int, c Counter, d int64) {
	m.shards[rank].c[c].Add(d)
}

// Max raises rank's gauge c to v if v exceeds the current value
// (CAS-max; lock- and allocation-free).
func (m *Metrics) Max(rank int, c Counter, v int64) {
	g := &m.shards[rank].c[c]
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Ring returns rank's span ring, or nil when spans are disabled — the
// nil check is the whole cost of disabled spans at an emission site.
func (m *Metrics) Ring(rank int) *SpanRing {
	if len(m.rings) == 0 {
		return nil
	}
	return &m.rings[rank]
}

// Snapshot merges every shard and ring into a point-in-time Snapshot.
// Call it between runs: counters are atomic, but span rings are written
// lock-free by their rank goroutines, so a mid-run snapshot may observe
// a torn span.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{NP: len(m.shards), SpanCap: m.SpanCap()}
	var merged [numCounters]int64
	for r := range m.shards {
		for c := Counter(0); c < numCounters; c++ {
			v := m.shards[r].c[c].Load()
			if maxGauge(c) {
				if v > merged[c] {
					merged[c] = v
				}
			} else {
				merged[c] += v
			}
		}
	}
	s.EagerSends = merged[EagerSends]
	s.RdvSends = merged[RdvSends]
	s.EagerRecvs = merged[EagerRecvs]
	s.RdvRecvs = merged[RdvRecvs]
	s.StagedBytes = merged[StagedBytes]
	s.Parks = merged[Parks]
	s.Unparks = merged[Unparks]
	s.SlotWaits = merged[SlotWaits]
	s.AbortedRuns = merged[AbortedRuns]
	s.TagStreamHighWater = merged[TagStreamHighWater]
	s.PostedQueueMax = merged[PostedQueueMax]
	s.ArrivalQueueMax = merged[ArrivalQueueMax]
	s.WireDatagramsSent = merged[WireDatagramsSent]
	s.WireDatagramsRecv = merged[WireDatagramsRecv]
	s.WireBytesSent = merged[WireBytesSent]
	s.WireBytesRecv = merged[WireBytesRecv]
	s.WireRetransmits = merged[WireRetransmits]
	s.WireAckRoundTrips = merged[WireAckRoundTrips]
	s.WireAcksSent = merged[WireAcksSent]
	s.WireAcksCoalesced = merged[WireAcksCoalesced]
	s.WireBatchedWrites = merged[WireBatchedWrites]
	s.WireBatchedReads = merged[WireBatchedReads]
	s.WireCwndHalvings = merged[WireCwndHalvings]
	s.WireCwndHighWater = merged[WireCwndHighWater]
	if inv := merged[WireCwndLowWaterInv]; inv > 0 {
		s.WireCwndLowWater = CwndLowWaterBase - inv
	}
	s.WireSRTTMaxMicros = merged[WireSRTTMaxMicros]
	s.WireRTOMaxMicros = merged[WireRTOMaxMicros]
	for r := range m.rings {
		ring := &m.rings[r]
		s.Spans = append(s.Spans, ring.Spans()...)
		s.SpansRecorded += ring.Recorded()
		s.SpanDrops += ring.Dropped()
	}
	sortSpans(s.Spans)
	return s
}
