package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestCountersMergeAcrossShards checks the two merge rules: counters sum
// over ranks, max gauges take the per-rank maximum.
func TestCountersMergeAcrossShards(t *testing.T) {
	m := New(4, 0)
	for r := 0; r < 4; r++ {
		m.Add(r, EagerSends, int64(r+1)) // 1+2+3+4 = 10
		m.Add(r, StagedBytes, 100)
		m.Max(r, PostedQueueMax, int64(10*r)) // max = 30
	}
	m.Max(2, PostedQueueMax, 5) // lower than current 20: must not regress
	s := m.Snapshot()
	if s.EagerSends != 10 {
		t.Errorf("EagerSends = %d, want 10 (sum over shards)", s.EagerSends)
	}
	if s.StagedBytes != 400 {
		t.Errorf("StagedBytes = %d, want 400", s.StagedBytes)
	}
	if s.PostedQueueMax != 30 {
		t.Errorf("PostedQueueMax = %d, want 30 (max over shards)", s.PostedQueueMax)
	}
	if s.NP != 4 || s.SpanCap != 0 || len(s.Spans) != 0 {
		t.Errorf("shape: NP=%d SpanCap=%d spans=%d, want 4/0/0", s.NP, s.SpanCap, len(s.Spans))
	}
}

// TestMaxIsConcurrencySafe hammers one gauge from many goroutines; the
// CAS loop must settle on the true maximum.
func TestMaxIsConcurrencySafe(t *testing.T) {
	m := New(1, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := 0; v < 1000; v++ {
				m.Max(0, ArrivalQueueMax, int64(g*1000+v))
			}
		}(g)
	}
	wg.Wait()
	if got := m.Snapshot().ArrivalQueueMax; got != 7999 {
		t.Errorf("ArrivalQueueMax = %d, want 7999", got)
	}
}

// TestWireCwndLowWaterDecode pins the inverted low-water encoding: the
// merged maximum of CwndLowWaterBase-cwnd decodes to the smallest window
// observed, and a snapshot with no congestion-control activity reports 0.
func TestWireCwndLowWaterDecode(t *testing.T) {
	m := New(2, 0)
	if got := m.Snapshot().WireCwndLowWater; got != 0 {
		t.Errorf("untouched low water = %d, want 0", got)
	}
	m.Max(0, WireCwndLowWaterInv, CwndLowWaterBase-32)
	m.Max(0, WireCwndLowWaterInv, CwndLowWaterBase-8) // a lower window must win
	m.Max(0, WireCwndLowWaterInv, CwndLowWaterBase-64)
	if got := m.Snapshot().WireCwndLowWater; got != 8 {
		t.Errorf("low water = %d, want 8 (minimum over observations)", got)
	}
}

// TestSpanRingWraparound pins the drop-oldest contract: a full ring
// overwrites its oldest entries, counts every drop, and Spans returns
// the retained tail oldest-first.
func TestSpanRingWraparound(t *testing.T) {
	m := New(1, 4)
	ring := m.Ring(0)
	epoch := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		ring.Record("bcast", "binomial", 0, i, epoch.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	if got := ring.Recorded(); got != 10 {
		t.Errorf("Recorded = %d, want 10", got)
	}
	if got := ring.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	spans := ring.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := 6 + i; sp.Bytes != want {
			t.Errorf("span %d: Bytes = %d, want %d (oldest-first tail)", i, sp.Bytes, want)
		}
		if sp.Rank != 0 {
			t.Errorf("span %d: Rank = %d, want 0", i, sp.Rank)
		}
	}
	s := m.Snapshot()
	if s.SpansRecorded != 10 || s.SpanDrops != 6 || len(s.Spans) != 4 {
		t.Errorf("snapshot spans: recorded=%d drops=%d retained=%d, want 10/6/4",
			s.SpansRecorded, s.SpanDrops, len(s.Spans))
	}
}

// TestSpanRingNilSafe: a nil ring (spans disabled) must absorb every
// call — that is the entire disabled-path contract at emission sites.
func TestSpanRingNilSafe(t *testing.T) {
	var ring *SpanRing
	ring.Record("bcast", "", 0, 0, time.Time{}, 0)
	if ring.Recorded() != 0 || ring.Dropped() != 0 || ring.Spans() != nil {
		t.Error("nil ring must report zero activity")
	}
	if m := New(2, 0); m.Ring(1) != nil {
		t.Error("Ring must be nil when spans are disabled")
	}
}

// TestRingOf checks the SpanSource capability discovery used by the
// collectives: a source yields its ring, anything else yields nil.
func TestRingOf(t *testing.T) {
	m := New(1, 8)
	if RingOf(spanSourceStub{m.Ring(0)}) != m.Ring(0) {
		t.Error("RingOf must extract the ring through SpanSource")
	}
	if RingOf(42) != nil || RingOf(nil) != nil {
		t.Error("RingOf of a non-source must be nil")
	}
}

type spanSourceStub struct{ r *SpanRing }

func (s spanSourceStub) SpanRing() *SpanRing { return s.r }

// goldenSnapshot is a fully-populated Snapshot literal. The golden test
// builds it directly rather than running an engine: the bufpool counters
// are process-global, so a live run's numbers depend on test order.
func goldenSnapshot() Snapshot {
	epoch := time.Unix(1700000000, 0).UTC()
	return Snapshot{
		NP:                 4,
		Executor:           "pooled(4)",
		Transport:          "udp",
		EagerSends:         120,
		RdvSends:           30,
		EagerRecvs:         120,
		RdvRecvs:           30,
		StagedBytes:        1 << 20,
		Parks:              256,
		Unparks:            256,
		SlotWaits:          12,
		AbortedRuns:        1,
		WireDatagramsSent:  420,
		WireDatagramsRecv:  409,
		WireBytesSent:      3 << 20,
		WireBytesRecv:      3<<20 - 8192,
		WireRetransmits:    11,
		WireAckRoundTrips:  57,
		WireAcksSent:       60,
		WireAcksCoalesced:  349,
		WireBatchedWrites:  14,
		WireBatchedReads:   19,
		WireCwndHalvings:   2,
		WireCwndHighWater:  256,
		WireCwndLowWater:   16,
		WireSRTTMaxMicros:  740,
		WireRTOMaxMicros:   1480,
		TagStreamHighWater: 7,
		PostedQueueMax:     3,
		ArrivalQueueMax:    9,
		Boots:              2,
		Runs:               6,
		FailedRuns:         1,
		RetiredWorlds:      map[string]int64{"deadlock": 1},
		BufPool: []PoolClassStats{
			{Size: 64, Gets: 40, Puts: 40, Misses: 4},
			{Size: 8 << 10, Gets: 30, Puts: 30, Misses: 3},
			{Size: 4 << 20, Gets: 2, Puts: 2, Misses: 2},
		},
		OversizeGets:  1,
		OversizePuts:  1,
		SpanCap:       256,
		SpansRecorded: 4,
		SpanDrops:     1,
		Spans: []Span{
			{Rank: 0, Op: "bcast", Algorithm: "binomial", Bytes: 1024, Start: epoch, Dur: 40 * time.Microsecond},
			{Rank: 1, Op: "bcast", Algorithm: "scatter-ring-allgather-opt-seg", Seg: 8192, Bytes: 1 << 20, Start: epoch.Add(time.Millisecond), Dur: 900 * time.Microsecond},
			{Rank: 0, Op: "barrier", Start: epoch.Add(2 * time.Millisecond), Dur: 15 * time.Microsecond},
		},
		Traffic: &TrafficTotals{
			Messages: 150, Bytes: 2 << 20,
			IntraMessages: 100, IntraBytes: 1 << 20,
			InterMessages: 50, InterBytes: 1 << 20,
			Recvs: 150,
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/metrics -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (re-run with -update if intentional)\ngot:\n%s", name, got)
	}
}

// TestWritePromGolden locks the Prometheus text exposition down to the
// byte: dashboards and scrape configs depend on these names and labels.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.prom", buf.Bytes())
}

// TestStringGolden locks the human-readable summary's line shapes — the
// CI smoke jobs grep them.
func TestStringGolden(t *testing.T) {
	checkGolden(t, "snapshot.txt", []byte(goldenSnapshot().String()+"\n"))
}

// TestChromeTraceRoundTrip writes the golden spans as a Chrome trace,
// checks the file shape (valid JSON, one thread-name record per rank),
// and reads it back through LoadChromeTrace.
func TestChromeTraceRoundTrip(t *testing.T) {
	s := goldenSnapshot()
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	metaTids, xTids := map[int]bool{}, map[int]bool{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if metaTids[ev.Tid] {
				t.Errorf("duplicate thread_name for tid %d", ev.Tid)
			}
			metaTids[ev.Tid] = true
		case "X":
			xTids[ev.Tid] = true
			if ev.Pid != 1 {
				t.Errorf("event %q: pid = %d, want 1", ev.Name, ev.Pid)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if len(xTids) != 2 || !xTids[0] || !xTids[1] {
		t.Errorf("span tids = %v, want exactly ranks 0 and 1", xTids)
	}
	for tid := range xTids {
		if !metaTids[tid] {
			t.Errorf("rank %d has spans but no thread_name metadata", tid)
		}
	}

	spans, err := LoadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(s.Spans) {
		t.Fatalf("round-trip: %d spans, want %d", len(spans), len(s.Spans))
	}
	for i, got := range spans {
		want := s.Spans[i]
		if got.Rank != want.Rank || got.Op != want.Op || got.Algorithm != want.Algorithm ||
			got.Seg != want.Seg || got.Bytes != want.Bytes || got.Dur != want.Dur {
			t.Errorf("span %d: %+v does not round-trip to %+v", i, got, want)
		}
	}
	// Relative timing survives even though the absolute epoch does not.
	if d := spans[1].Start.Sub(spans[0].Start); d != time.Millisecond {
		t.Errorf("span spacing = %v after round-trip, want 1ms", d)
	}
}

// TestSummarizeSpans checks the offline summary table: group rows,
// and the empty-input fast path.
func TestSummarizeSpans(t *testing.T) {
	if got := SummarizeSpans(nil); got != "no spans" {
		t.Errorf("empty summary = %q", got)
	}
	out := SummarizeSpans(goldenSnapshot().Spans)
	for _, row := range []string{"bcast/binomial", "bcast/scatter-ring-allgather-opt-seg", "barrier"} {
		if !strings.Contains(out, row) {
			t.Errorf("summary missing row %q:\n%s", row, out)
		}
	}
}

// TestNewValidates pins the constructor's contract.
func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, ...) must panic")
		}
	}()
	New(0, 4)
}
