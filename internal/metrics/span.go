package metrics

import (
	"sort"
	"time"
)

// Span is one completed collective operation on one rank: what ran,
// with which algorithm and segment size, over how many bytes, and when.
// Op and Algorithm are interned constants on the write side (the
// collective package's op names and registry names), so recording a
// Span copies two string headers, never their bytes.
type Span struct {
	Rank      int
	Op        string
	Algorithm string // registry name; "" for fixed-algorithm collectives
	Seg       int
	Bytes     int
	Start     time.Time
	Dur       time.Duration
}

// SpanSource is the capability interface of communicators that expose
// a per-rank span ring: the engine's communicator implements it (nil
// ring when spans are disabled), decorators forward it, and collectives
// type-assert against it at emission sites — the same discovery pattern
// as mpi.Contexter and mpi.TagStreamer, kept here so the capability's
// type lives next to the data it hands out.
type SpanSource interface {
	SpanRing() *SpanRing
}

// RingOf extracts c's span ring through the SpanSource capability,
// returning nil (record becomes a no-op) when the communicator has no
// spans. The assertion is allocation-free.
func RingOf(c any) *SpanRing {
	if src, ok := c.(SpanSource); ok {
		return src.SpanRing()
	}
	return nil
}

// SpanRing is a fixed-capacity, drop-oldest buffer of operation spans
// for one rank. Record is called only from contexts serialized per rank
// (a rank issues its collectives one at a time), so the ring needs no
// atomics; reading happens between runs via Spans/Recorded/Dropped.
type SpanRing struct {
	rank int
	buf  []Span
	n    int64 // total spans ever recorded
}

// Record appends a span, overwriting the oldest entry once the ring is
// full. It is allocation-free; a nil or zero-capacity ring ignores the
// call, so emission sites need no enabled check beyond the nil ring.
func (r *SpanRing) Record(op, algo string, seg, bytes int, start time.Time, dur time.Duration) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	r.buf[r.n%int64(len(r.buf))] = Span{
		Rank: r.rank, Op: op, Algorithm: algo,
		Seg: seg, Bytes: bytes, Start: start, Dur: dur,
	}
	r.n++
}

// Recorded returns the total number of spans ever recorded (including
// those since overwritten).
func (r *SpanRing) Recorded() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns how many recorded spans have been overwritten.
func (r *SpanRing) Dropped() int64 {
	if r == nil || len(r.buf) == 0 {
		return 0
	}
	if d := r.n - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// Spans copies out the retained spans, oldest first.
func (r *SpanRing) Spans() []Span {
	if r == nil || r.n == 0 {
		return nil
	}
	size := int64(len(r.buf))
	count := r.n
	if count > size {
		count = size
	}
	out := make([]Span, 0, count)
	start := r.n - count
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}

// sortSpans orders spans by start time (rank breaks ties) so a merged
// timeline reads chronologically.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Rank < spans[j].Rank
	})
}
