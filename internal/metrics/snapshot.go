package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PoolClassStats is one bufpool size class's activity. Gets that did
// not hit a recycled buffer appear in Misses, so the hit count is
// Gets - Misses.
type PoolClassStats struct {
	Size   int // class capacity in bytes (or elements for float64 pools)
	Gets   int64
	Puts   int64
	Misses int64
}

// TrafficTotals mirrors the trace collector's aggregate view so the
// Snapshot is the one observability surface: send-side message/byte
// totals split intra- vs inter-node, plus completed receives (which
// equal Messages after a clean run).
type TrafficTotals struct {
	Messages, Bytes           int64
	IntraMessages, IntraBytes int64
	InterMessages, InterBytes int64
	Recvs                     int64
}

// Snapshot is the merged, point-in-time view of a Metrics plus the
// process- and cluster-level observables its assemblers fold in
// (bufpool activity, world lifecycle, traced traffic).
type Snapshot struct {
	NP        int
	Executor  string // rank-execution substrate label; "" when unknown
	Transport string // point-to-point transport label ("chan", "udp"); "" when unknown

	// Engine counters (summed over ranks).
	EagerSends, RdvSends int64
	EagerRecvs, RdvRecvs int64
	StagedBytes          int64
	Parks, Unparks       int64
	SlotWaits            int64
	AbortedRuns          int64

	// Wire transport counters (zero on the in-process chan path):
	// datagrams and bytes in each direction, timeout-triggered
	// retransmits, and ACK round-trips that retired pending datagrams.
	WireDatagramsSent, WireDatagramsRecv int64
	WireBytesSent, WireBytesRecv         int64
	WireRetransmits                      int64
	WireAckRoundTrips                    int64

	// Adaptive wire-path counters: ACK datagrams sent vs acks coalesced
	// away by delayed cumulative acking, batched send/recv syscalls, and
	// congestion-window halvings (loss events).
	WireAcksSent, WireAcksCoalesced     int64
	WireBatchedWrites, WireBatchedReads int64
	WireCwndHalvings                    int64
	// Adaptive wire-path gauges: congestion-window high/low water in
	// packets (0 when congestion control never ran) and the largest
	// smoothed-RTT / RTO estimate any flow reached, in microseconds.
	WireCwndHighWater, WireCwndLowWater int64
	WireSRTTMaxMicros, WireRTOMaxMicros int64

	// Engine gauges (maximum over ranks).
	TagStreamHighWater int64
	PostedQueueMax     int64
	ArrivalQueueMax    int64

	// Cluster lifecycle (facade-assembled; zero for bare engine worlds).
	Boots, Runs, FailedRuns int64
	// RetiredWorlds counts failed runs by cause classification
	// ("deadlock", "canceled", "deadline", "aborted", "error").
	RetiredWorlds map[string]int64

	// Buffer-pool activity. The pools are process-global, so these
	// totals span every world in the process, not just this Snapshot's.
	BufPool                    []PoolClassStats
	OversizeGets, OversizePuts int64

	// Spans (opt-in; empty when disabled).
	SpanCap       int
	Spans         []Span
	SpansRecorded int64
	SpanDrops     int64

	// Traffic is the traced send/recv accounting, nil unless the
	// assembler had a trace collector.
	Traffic *TrafficTotals
}

// String renders a compact multi-line summary. Line shapes are stable
// enough to grep (the CI smoke jobs match the sends/recvs lines).
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: np=%d", s.NP)
	if s.Executor != "" {
		fmt.Fprintf(&b, " exec=%s", s.Executor)
	}
	if s.Transport != "" {
		fmt.Fprintf(&b, " transport=%s", s.Transport)
	}
	fmt.Fprintf(&b, "\n  sends: eager=%d rendezvous=%d\n", s.EagerSends, s.RdvSends)
	fmt.Fprintf(&b, "  recvs: eager=%d rendezvous=%d staged-bytes=%d\n", s.EagerRecvs, s.RdvRecvs, s.StagedBytes)
	fmt.Fprintf(&b, "  executor: parks=%d unparks=%d slot-waits=%d\n", s.Parks, s.Unparks, s.SlotWaits)
	if s.wireActive() {
		fmt.Fprintf(&b, "  wire: datagrams-sent=%d datagrams-recv=%d bytes-sent=%d bytes-recv=%d retransmits=%d ack-rtts=%d\n",
			s.WireDatagramsSent, s.WireDatagramsRecv, s.WireBytesSent, s.WireBytesRecv, s.WireRetransmits, s.WireAckRoundTrips)
		fmt.Fprintf(&b, "  wire-cc: srtt-max-us=%d rto-max-us=%d cwnd-hw=%d cwnd-lw=%d cwnd-halvings=%d acks-sent=%d acks-coalesced=%d batched-writes=%d batched-reads=%d\n",
			s.WireSRTTMaxMicros, s.WireRTOMaxMicros, s.WireCwndHighWater, s.WireCwndLowWater,
			s.WireCwndHalvings, s.WireAcksSent, s.WireAcksCoalesced, s.WireBatchedWrites, s.WireBatchedReads)
	}
	fmt.Fprintf(&b, "  queues: posted-max=%d arrival-max=%d tag-stream-hw=%d\n",
		s.PostedQueueMax, s.ArrivalQueueMax, s.TagStreamHighWater)
	fmt.Fprintf(&b, "  lifecycle: boots=%d runs=%d failed=%d aborted=%d", s.Boots, s.Runs, s.FailedRuns, s.AbortedRuns)
	for _, cause := range sortedCauses(s.RetiredWorlds) {
		fmt.Fprintf(&b, " retired[%s]=%d", cause, s.RetiredWorlds[cause])
	}
	b.WriteString("\n")
	for _, c := range s.BufPool {
		fmt.Fprintf(&b, "  bufpool[%s]: gets=%d puts=%d misses=%d\n", sizeLabel(c.Size), c.Gets, c.Puts, c.Misses)
	}
	if s.OversizeGets > 0 || s.OversizePuts > 0 {
		fmt.Fprintf(&b, "  bufpool[oversize]: gets=%d puts=%d\n", s.OversizeGets, s.OversizePuts)
	}
	if s.SpanCap > 0 {
		fmt.Fprintf(&b, "  spans: recorded=%d retained=%d dropped=%d cap=%d/rank\n",
			s.SpansRecorded, len(s.Spans), s.SpanDrops, s.SpanCap)
	}
	if s.Traffic != nil {
		t := s.Traffic
		fmt.Fprintf(&b, "  traffic: msgs=%d bytes=%d intra=%d/%d inter=%d/%d recvs=%d\n",
			t.Messages, t.Bytes, t.IntraMessages, t.IntraBytes, t.InterMessages, t.InterBytes, t.Recvs)
	}
	return strings.TrimRight(b.String(), "\n")
}

// wireActive reports whether the wire-transport summary line should
// render: a non-chan transport label or any wire counter activity. A
// chan-only snapshot stays byte-identical to what it printed before the
// transport seam existed.
func (s Snapshot) wireActive() bool {
	if s.Transport != "" && s.Transport != "chan" {
		return true
	}
	return s.WireDatagramsSent+s.WireDatagramsRecv+s.WireRetransmits+s.WireAckRoundTrips > 0
}

func sortedCauses(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	causes := make([]string, 0, len(m))
	for c := range m {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	return causes
}

// sizeLabel renders a power-of-two byte count the way humans and
// Prometheus labels want it ("64B", "8KiB", "4MiB").
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// promWriter accumulates the first write error so the metric emitters
// stay linear instead of error-checking every line.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteProm writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). It has no HTTP dependency: callers decide
// whether the bytes go to a scrape handler, a file, or a test.
func (s Snapshot) WriteProm(w io.Writer) error {
	p := &promWriter{w: w}

	p.header("bcast_sends_total", "Messages sent, by engine protocol.", "counter")
	p.printf("bcast_sends_total{protocol=\"eager\"} %d\n", s.EagerSends)
	p.printf("bcast_sends_total{protocol=\"rendezvous\"} %d\n", s.RdvSends)

	p.header("bcast_recvs_total", "Messages delivered, by engine protocol.", "counter")
	p.printf("bcast_recvs_total{protocol=\"eager\"} %d\n", s.EagerRecvs)
	p.printf("bcast_recvs_total{protocol=\"rendezvous\"} %d\n", s.RdvRecvs)

	p.header("bcast_staged_bytes_total", "Payload bytes copied through pooled eager staging.", "counter")
	p.printf("bcast_staged_bytes_total %d\n", s.StagedBytes)

	p.header("bcast_executor_parks_total", "Rank park transitions at engine blocking points.", "counter")
	p.printf("bcast_executor_parks_total %d\n", s.Parks)
	p.header("bcast_executor_unparks_total", "Rank unpark transitions after blocking-point wakeups.", "counter")
	p.printf("bcast_executor_unparks_total %d\n", s.Unparks)
	p.header("bcast_executor_slot_waits_total", "Pooled-executor unparks that waited for a free slot.", "counter")
	p.printf("bcast_executor_slot_waits_total %d\n", s.SlotWaits)

	if s.Transport != "" {
		p.header("bcast_transport_info", "Point-to-point transport substrate, as a label.", "gauge")
		p.printf("bcast_transport_info{transport=%q} 1\n", s.Transport)
	}
	p.header("bcast_wire_datagrams_total", "Transport datagrams on the wire, by direction.", "counter")
	p.printf("bcast_wire_datagrams_total{direction=\"sent\"} %d\n", s.WireDatagramsSent)
	p.printf("bcast_wire_datagrams_total{direction=\"recv\"} %d\n", s.WireDatagramsRecv)
	p.header("bcast_wire_bytes_total", "Transport bytes on the wire (headers included), by direction.", "counter")
	p.printf("bcast_wire_bytes_total{direction=\"sent\"} %d\n", s.WireBytesSent)
	p.printf("bcast_wire_bytes_total{direction=\"recv\"} %d\n", s.WireBytesRecv)
	p.header("bcast_wire_retransmits_total", "Datagrams retransmitted after an ACK timeout.", "counter")
	p.printf("bcast_wire_retransmits_total %d\n", s.WireRetransmits)
	p.header("bcast_wire_ack_round_trips_total", "ACKs received that retired at least one pending datagram.", "counter")
	p.printf("bcast_wire_ack_round_trips_total %d\n", s.WireAckRoundTrips)
	p.header("bcast_wire_acks_total", "ACK datagrams, split into sent and coalesced-away (deferred by delayed acking).", "counter")
	p.printf("bcast_wire_acks_total{result=\"sent\"} %d\n", s.WireAcksSent)
	p.printf("bcast_wire_acks_total{result=\"coalesced\"} %d\n", s.WireAcksCoalesced)
	p.header("bcast_wire_batched_syscalls_total", "Batched datagram syscalls (sendmmsg/recvmmsg), by direction.", "counter")
	p.printf("bcast_wire_batched_syscalls_total{direction=\"write\"} %d\n", s.WireBatchedWrites)
	p.printf("bcast_wire_batched_syscalls_total{direction=\"read\"} %d\n", s.WireBatchedReads)
	p.header("bcast_wire_cwnd_halvings_total", "Congestion-window halvings (retransmit-timeout loss events).", "counter")
	p.printf("bcast_wire_cwnd_halvings_total %d\n", s.WireCwndHalvings)
	p.header("bcast_wire_cwnd_packets", "Congestion-window water marks in packets, over every flow.", "gauge")
	p.printf("bcast_wire_cwnd_packets{bound=\"high\"} %d\n", s.WireCwndHighWater)
	p.printf("bcast_wire_cwnd_packets{bound=\"low\"} %d\n", s.WireCwndLowWater)
	p.header("bcast_wire_srtt_max_seconds", "Largest smoothed round-trip-time estimate any flow reached.", "gauge")
	p.printf("bcast_wire_srtt_max_seconds %g\n", float64(s.WireSRTTMaxMicros)/1e6)
	p.header("bcast_wire_rto_max_seconds", "Largest adaptive retransmit-timeout estimate any flow reached.", "gauge")
	p.printf("bcast_wire_rto_max_seconds %g\n", float64(s.WireRTOMaxMicros)/1e6)

	p.header("bcast_tag_stream_high_water", "Highest collective tag-stream id reached by any rank.", "gauge")
	p.printf("bcast_tag_stream_high_water %d\n", s.TagStreamHighWater)
	p.header("bcast_posted_queue_max", "Deepest posted-receive queue observed on any endpoint.", "gauge")
	p.printf("bcast_posted_queue_max %d\n", s.PostedQueueMax)
	p.header("bcast_arrival_queue_max", "Deepest unexpected-arrival queue observed on any endpoint.", "gauge")
	p.printf("bcast_arrival_queue_max %d\n", s.ArrivalQueueMax)

	p.header("bcast_world_boots_total", "Engine worlds booted by the cluster.", "counter")
	p.printf("bcast_world_boots_total %d\n", s.Boots)
	p.header("bcast_runs_total", "Cluster runs started.", "counter")
	p.printf("bcast_runs_total %d\n", s.Runs)
	p.header("bcast_failed_runs_total", "Cluster runs that returned an error (world retired).", "counter")
	p.printf("bcast_failed_runs_total %d\n", s.FailedRuns)
	p.header("bcast_aborted_runs_total", "Engine world aborts (error, panic, cancel, timeout, deadlock).", "counter")
	p.printf("bcast_aborted_runs_total %d\n", s.AbortedRuns)
	if len(s.RetiredWorlds) > 0 {
		p.header("bcast_retired_worlds_total", "Retired worlds by failure-cause classification.", "counter")
		for _, cause := range sortedCauses(s.RetiredWorlds) {
			p.printf("bcast_retired_worlds_total{cause=%q} %d\n", cause, s.RetiredWorlds[cause])
		}
	}

	if len(s.BufPool) > 0 {
		p.header("bcast_bufpool_gets_total", "Buffer-pool gets per size class (process-global).", "counter")
		for _, c := range s.BufPool {
			p.printf("bcast_bufpool_gets_total{class=%q} %d\n", sizeLabel(c.Size), c.Gets)
		}
		p.header("bcast_bufpool_puts_total", "Buffer-pool releases per size class (process-global).", "counter")
		for _, c := range s.BufPool {
			p.printf("bcast_bufpool_puts_total{class=%q} %d\n", sizeLabel(c.Size), c.Puts)
		}
		p.header("bcast_bufpool_misses_total", "Buffer-pool gets that allocated a fresh buffer.", "counter")
		for _, c := range s.BufPool {
			p.printf("bcast_bufpool_misses_total{class=%q} %d\n", sizeLabel(c.Size), c.Misses)
		}
	}
	p.header("bcast_bufpool_oversize_gets_total", "Requests above the largest pool class (plain allocation).", "counter")
	p.printf("bcast_bufpool_oversize_gets_total %d\n", s.OversizeGets)
	p.header("bcast_bufpool_oversize_puts_total", "Oversize buffers dropped on release.", "counter")
	p.printf("bcast_bufpool_oversize_puts_total %d\n", s.OversizePuts)

	p.header("bcast_spans_recorded_total", "Operation spans recorded across all ranks.", "counter")
	p.printf("bcast_spans_recorded_total %d\n", s.SpansRecorded)
	p.header("bcast_spans_dropped_total", "Operation spans overwritten by ring wraparound.", "counter")
	p.printf("bcast_spans_dropped_total %d\n", s.SpanDrops)

	if s.Traffic != nil {
		t := s.Traffic
		p.header("bcast_traffic_messages_total", "Traced messages sent, by placement scope.", "counter")
		p.printf("bcast_traffic_messages_total{scope=\"all\"} %d\n", t.Messages)
		p.printf("bcast_traffic_messages_total{scope=\"intra\"} %d\n", t.IntraMessages)
		p.printf("bcast_traffic_messages_total{scope=\"inter\"} %d\n", t.InterMessages)
		p.header("bcast_traffic_bytes_total", "Traced payload bytes sent, by placement scope.", "counter")
		p.printf("bcast_traffic_bytes_total{scope=\"all\"} %d\n", t.Bytes)
		p.printf("bcast_traffic_bytes_total{scope=\"intra\"} %d\n", t.IntraBytes)
		p.printf("bcast_traffic_bytes_total{scope=\"inter\"} %d\n", t.InterBytes)
		p.header("bcast_traffic_recvs_total", "Traced completed receives.", "counter")
		p.printf("bcast_traffic_recvs_total %d\n", t.Recvs)
	}
	return p.err
}
