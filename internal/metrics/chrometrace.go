package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// traceEvent is one Chrome trace-event JSON object. The subset emitted
// here — "X" (complete) events plus "M" (metadata) thread names, pid 1,
// one tid per rank, microsecond timestamps — loads in chrome://tracing
// and Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args traceEventArgs `json:"args,omitempty"`
}

type traceEventArgs struct {
	Name  string `json:"name,omitempty"` // thread_name metadata
	Op    string `json:"op,omitempty"`   // span payload
	Algo  string `json:"algo,omitempty"`
	Bytes int    `json:"bytes,omitempty"`
	Seg   int    `json:"seg,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// spanEventName renders a span's display name ("bcast/ring-opt-seg" or
// just "barrier" for fixed-algorithm collectives).
func spanEventName(sp Span) string {
	if sp.Algorithm == "" {
		return sp.Op
	}
	return sp.Op + "/" + sp.Algorithm
}

// WriteChromeTrace emits the snapshot's spans as Chrome trace-event
// JSON: pid 1, one tid per rank, timestamps in microseconds relative to
// the earliest span. The output loads in chrome://tracing and Perfetto,
// and round-trips through LoadChromeTrace.
func (s Snapshot) WriteChromeTrace(w io.Writer) error {
	tf := traceFile{DisplayTimeUnit: "ms"}
	var epoch time.Time
	for _, sp := range s.Spans {
		if epoch.IsZero() || sp.Start.Before(epoch) {
			epoch = sp.Start
		}
	}
	ranks := map[int]bool{}
	for _, sp := range s.Spans {
		if !ranks[sp.Rank] {
			ranks[sp.Rank] = true
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: sp.Rank,
				Args: traceEventArgs{Name: fmt.Sprintf("rank %d", sp.Rank)},
			})
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: spanEventName(sp), Ph: "X", Pid: 1, Tid: sp.Rank,
			Ts:  float64(sp.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur: float64(sp.Dur) / float64(time.Microsecond),
			Args: traceEventArgs{
				Op: sp.Op, Algo: sp.Algorithm, Bytes: sp.Bytes, Seg: sp.Seg,
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// LoadChromeTrace parses a WriteChromeTrace timeline back into spans
// (start times are relative to the file's epoch). It is the read half
// of the -spans-summary tooling, so a timeline written by one process
// can be summarized by another.
func LoadChromeTrace(r io.Reader) ([]Span, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("metrics: parse chrome trace: %w", err)
	}
	var spans []Span
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans = append(spans, Span{
			Rank:      ev.Tid,
			Op:        ev.Args.Op,
			Algorithm: ev.Args.Algo,
			Seg:       ev.Args.Seg,
			Bytes:     ev.Args.Bytes,
			Start:     time.Time{}.Add(time.Duration(ev.Ts * float64(time.Microsecond))),
			Dur:       time.Duration(ev.Dur * float64(time.Microsecond)),
		})
	}
	return spans, nil
}

// SummarizeSpans renders a per-(op, algorithm) latency table — count,
// distinct ranks, bytes, p50/p95/max duration — so a timeline can be
// eyeballed without Chrome. Rows are sorted by total time descending.
func SummarizeSpans(spans []Span) string {
	if len(spans) == 0 {
		return "no spans"
	}
	type key struct{ op, algo string }
	type agg struct {
		durs  []time.Duration
		bytes int64
		total time.Duration
		ranks map[int]bool
	}
	groups := map[key]*agg{}
	for _, sp := range spans {
		k := key{sp.Op, sp.Algorithm}
		g := groups[k]
		if g == nil {
			g = &agg{ranks: map[int]bool{}}
			groups[k] = g
		}
		g.durs = append(g.durs, sp.Dur)
		g.bytes += int64(sp.Bytes)
		g.total += sp.Dur
		g.ranks[sp.Rank] = true
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		gi, gj := groups[keys[i]], groups[keys[j]]
		if gi.total != gj.total {
			return gi.total > gj.total
		}
		return spanRowName(keys[i].op, keys[i].algo) < spanRowName(keys[j].op, keys[j].algo)
	})

	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %6s %12s %10s %10s %10s\n",
		"op/algorithm", "count", "ranks", "bytes", "p50", "p95", "max")
	for _, k := range keys {
		g := groups[k]
		sort.Slice(g.durs, func(i, j int) bool { return g.durs[i] < g.durs[j] })
		fmt.Fprintf(&b, "%-28s %8d %6d %12d %10v %10v %10v\n",
			spanRowName(k.op, k.algo), len(g.durs), len(g.ranks), g.bytes,
			percentile(g.durs, 50), percentile(g.durs, 95), g.durs[len(g.durs)-1])
	}
	return strings.TrimRight(b.String(), "\n")
}

func spanRowName(op, algo string) string {
	if algo == "" {
		return op
	}
	return op + "/" + algo
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank method).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
