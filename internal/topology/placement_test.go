package topology

import "testing"

func TestKindClassification(t *testing.T) {
	irregular, err := Custom([]int{0, 1, 1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    *Map
		want string
	}{
		{"single", SingleNode(16), KindSingle},
		{"blocked", Blocked(64, 24), KindBlocked},
		{"blocked-even", Blocked(48, 24), KindBlocked},
		{"round-robin", RoundRobin(64, 24), KindRoundRobin},
		{"round-robin-uneven", RoundRobin(10, 4), KindRoundRobin},
		{"blocked-collapses-to-single", Blocked(16, 24), KindSingle},
		{"rr-collapses-to-single", RoundRobin(8, 8), KindSingle},
		{"irregular", irregular, KindIrregular},
	}
	for _, tc := range cases {
		if got := tc.m.Kind(); got != tc.want {
			t.Errorf("%s: Kind() = %q want %q (%s)", tc.name, got, tc.want, tc.m)
		}
	}
	// One rank per node matches both patterns; the classification must be
	// deterministic and identical for both constructions.
	if Blocked(4, 1).Kind() != RoundRobin(4, 1).Kind() {
		t.Error("identical maps must classify identically")
	}
}

func TestMaxCoresPerNode(t *testing.T) {
	cases := []struct {
		m    *Map
		want int
	}{
		{SingleNode(7), 7},
		{Blocked(64, 24), 24},
		{Blocked(16, 24), 16},
		{RoundRobin(64, 24), 22}, // 64 ranks dealt over 3 nodes: 22/21/21
		{RoundRobin(10, 5), 5},
	}
	for _, tc := range cases {
		if got := tc.m.MaxCoresPerNode(); got != tc.want {
			t.Errorf("%s: MaxCoresPerNode() = %d want %d", tc.m, got, tc.want)
		}
	}
}
