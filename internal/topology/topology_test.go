package topology

import (
	"testing"
	"testing/quick"
)

func TestSingleNode(t *testing.T) {
	m := SingleNode(8)
	if m.NP() != 8 || m.NumNodes() != 1 {
		t.Fatalf("m = %v", m)
	}
	for r := 0; r < 8; r++ {
		if m.NodeOf(r) != 0 {
			t.Fatalf("rank %d on node %d", r, m.NodeOf(r))
		}
	}
	if !m.SameNode(0, 7) {
		t.Fatal("all ranks share the node")
	}
}

func TestBlockedPlacement(t *testing.T) {
	// The paper's Hornet default: np=64, 24 cores/node -> nodes 24/24/16.
	m := Blocked(64, HornetCoresPerNode)
	if m.NumNodes() != 3 {
		t.Fatalf("nodes = %d want 3", m.NumNodes())
	}
	if m.NodeOf(0) != 0 || m.NodeOf(23) != 0 || m.NodeOf(24) != 1 || m.NodeOf(63) != 2 {
		t.Fatalf("blocked boundaries wrong: %v", m)
	}
	if len(m.RanksOnNode(2)) != 16 {
		t.Fatalf("last node has %d ranks want 16", len(m.RanksOnNode(2)))
	}
}

func TestBlockedNP256(t *testing.T) {
	// Figure 6(c): 256 ranks on ceil(256/24) = 11 nodes.
	m := Blocked(256, HornetCoresPerNode)
	if m.NumNodes() != 11 {
		t.Fatalf("nodes = %d want 11", m.NumNodes())
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	m := RoundRobin(6, 2) // 3 nodes, dealt cyclically
	if m.NumNodes() != 3 {
		t.Fatalf("nodes = %d", m.NumNodes())
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for r, n := range want {
		if m.NodeOf(r) != n {
			t.Fatalf("rank %d on node %d want %d", r, m.NodeOf(r), n)
		}
	}
}

func TestLeaders(t *testing.T) {
	m := Blocked(9, 3)
	if got := m.Leaders(); got[0] != 0 || got[1] != 3 || got[2] != 6 {
		t.Fatalf("leaders = %v", got)
	}
	if !m.IsLeader(3) || m.IsLeader(4) {
		t.Fatal("leader detection wrong")
	}
}

func TestCustomValidation(t *testing.T) {
	if _, err := Custom(nil); err == nil {
		t.Fatal("empty placement must fail")
	}
	if _, err := Custom([]int{0, -1}); err == nil {
		t.Fatal("negative node must fail")
	}
	if _, err := Custom([]int{0, 2}); err == nil {
		t.Fatal("sparse node ids must fail")
	}
	m, err := Custom([]int{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 2 || m.NodeOf(0) != 1 {
		t.Fatalf("custom map wrong: %v", m)
	}
}

func TestSubset(t *testing.T) {
	m := Blocked(8, 2)                   // nodes 0..3
	sub, err := m.Subset([]int{6, 1, 7}) // nodes 3,0,3 -> densified 1,0,1
	if err != nil {
		t.Fatal(err)
	}
	if sub.NP() != 3 || sub.NumNodes() != 2 {
		t.Fatalf("subset = %v", sub)
	}
	if sub.NodeOf(0) != 1 || sub.NodeOf(1) != 0 || sub.NodeOf(2) != 1 {
		t.Fatalf("subset nodes: %v", sub)
	}
	if _, err := m.Subset([]int{99}); err == nil {
		t.Fatal("out-of-range member must fail")
	}
	if _, err := m.Subset(nil); err == nil {
		t.Fatal("empty subset must fail")
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){ //nolint
		func() { Blocked(0, 4) },
		func() { Blocked(4, 0) },
		func() { RoundRobin(-1, 4) },
		func() { RoundRobin(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestQuickBlockedProperties: every node except possibly the last is full,
// node ids are dense and ordered.
func TestQuickBlockedProperties(t *testing.T) {
	f := func(npRaw, coresRaw uint8) bool {
		np := int(npRaw)%300 + 1
		cores := int(coresRaw)%32 + 1
		m := Blocked(np, cores)
		wantNodes := (np + cores - 1) / cores
		if m.NumNodes() != wantNodes {
			return false
		}
		total := 0
		for node := 0; node < m.NumNodes(); node++ {
			rs := m.RanksOnNode(node)
			total += len(rs)
			if node < m.NumNodes()-1 && len(rs) != cores {
				return false
			}
			for _, r := range rs {
				if m.NodeOf(r) != node {
					return false
				}
			}
		}
		return total == np
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	m := Blocked(4, 2)
	if !m.Classify(0, 1) || m.Classify(1, 2) {
		t.Fatal("classification wrong")
	}
}

func TestString(t *testing.T) {
	got := Blocked(5, 2).String()
	want := "topology{np=5 nodes=3 [2 2 1]}"
	if got != want {
		t.Fatalf("String() = %q want %q", got, want)
	}
}
