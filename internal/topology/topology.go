// Package topology models the process-to-node placement of an MPI job on
// a multi-core cluster.
//
// The paper's evaluation platforms place ranks on nodes "in a blocked
// manner by default" (Hornet: 24 cores per node, Laki: 8), which
// determines how many transfers of each broadcast algorithm are cheap
// intra-node memory copies versus inter-node network messages. The
// tracing layer and the network simulator both classify traffic through a
// Map from this package.
package topology

import (
	"fmt"
	"sort"
)

// Cores-per-node presets for the paper's two evaluation platforms.
const (
	// HornetCoresPerNode is the core count of a Cray XC40 "Hornet" node
	// (dual 12-core Intel Haswell E5-2680v3).
	HornetCoresPerNode = 24
	// LakiCoresPerNode is the core count of a NEC "Laki" node (dual
	// 4-core Intel Xeon X5560).
	LakiCoresPerNode = 8
)

// Placement-kind names returned by Map.Kind. The tuning subsystem keys
// selection rules on these (tune.Env.Placement), so they are stable,
// serialization-friendly identifiers.
const (
	// KindSingle: every rank on one node.
	KindSingle = "single"
	// KindBlocked: nodes filled sequentially (rank r on node r/cores).
	KindBlocked = "blocked"
	// KindRoundRobin: ranks dealt cyclically (rank r on node r mod nodes).
	KindRoundRobin = "round-robin"
	// KindIrregular: any placement matching none of the named patterns.
	KindIrregular = "irregular"
)

// Map assigns every rank of a job to a node. Maps are immutable after
// construction.
type Map struct {
	nodeOf   []int
	numNodes int
	byNode   map[int][]int
}

func build(nodeOf []int) (*Map, error) {
	if len(nodeOf) == 0 {
		return nil, fmt.Errorf("topology: empty placement")
	}
	byNode := map[int][]int{}
	maxNode := -1
	for rank, node := range nodeOf {
		if node < 0 {
			return nil, fmt.Errorf("topology: rank %d placed on negative node %d", rank, node)
		}
		byNode[node] = append(byNode[node], rank)
		if node > maxNode {
			maxNode = node
		}
	}
	// Node ids must be dense 0..numNodes-1 so simulators can index arrays.
	for node := 0; node <= maxNode; node++ {
		if len(byNode[node]) == 0 {
			return nil, fmt.Errorf("topology: node %d has no ranks (node ids must be dense)", node)
		}
	}
	return &Map{nodeOf: append([]int(nil), nodeOf...), numNodes: maxNode + 1, byNode: byNode}, nil
}

// Custom builds a Map from an explicit rank-to-node assignment. Node ids
// must be dense (every id in [0, max] used).
func Custom(nodeOf []int) (*Map, error) { return build(nodeOf) }

// SingleNode places all np ranks on one node — the np=16 configuration of
// Figure 6(a), where every transfer is intra-node.
func SingleNode(np int) *Map {
	m, err := build(make([]int, max(np, 1)))
	if err != nil {
		panic(err) // unreachable: construction is always valid
	}
	return m
}

// Blocked fills nodes sequentially with coresPerNode ranks each — the
// default placement on the paper's systems ("all the processes are placed
// among the nodes in a blocked manner by default on Hornet").
func Blocked(np, coresPerNode int) *Map {
	if np <= 0 || coresPerNode <= 0 {
		panic(fmt.Sprintf("topology: Blocked(%d, %d): arguments must be positive", np, coresPerNode))
	}
	nodeOf := make([]int, np)
	for r := range nodeOf {
		nodeOf[r] = r / coresPerNode
	}
	m, err := build(nodeOf)
	if err != nil {
		panic(err) // unreachable
	}
	return m
}

// RoundRobin deals ranks across ceil(np/coresPerNode) nodes cyclically —
// the alternative placement used by the ablation benchmarks.
func RoundRobin(np, coresPerNode int) *Map {
	if np <= 0 || coresPerNode <= 0 {
		panic(fmt.Sprintf("topology: RoundRobin(%d, %d): arguments must be positive", np, coresPerNode))
	}
	numNodes := (np + coresPerNode - 1) / coresPerNode
	nodeOf := make([]int, np)
	for r := range nodeOf {
		nodeOf[r] = r % numNodes
	}
	m, err := build(nodeOf)
	if err != nil {
		panic(err) // unreachable
	}
	return m
}

// NP returns the number of ranks.
func (m *Map) NP() int { return len(m.nodeOf) }

// NumNodes returns the number of nodes in use.
func (m *Map) NumNodes() int { return m.numNodes }

// NodeOf returns the node hosting rank.
func (m *Map) NodeOf(rank int) int { return m.nodeOf[rank] }

// MaxCoresPerNode returns the largest number of ranks hosted on one node
// — the effective node occupancy the tuning subsystem keys rules on.
func (m *Map) MaxCoresPerNode() int {
	maxRanks := 0
	for _, rs := range m.byNode {
		if len(rs) > maxRanks {
			maxRanks = len(rs)
		}
	}
	return maxRanks
}

// Kind classifies the placement pattern: KindSingle when one node hosts
// everything, KindBlocked when rank r sits on node r/cores (cores =
// MaxCoresPerNode), KindRoundRobin when rank r sits on node r mod nodes,
// and KindIrregular otherwise. Blocked and round-robin placements that
// collapse onto one node classify as KindSingle, so the classification
// depends only on the realized mapping, never on how it was constructed.
func (m *Map) Kind() string {
	if m.numNodes == 1 {
		return KindSingle
	}
	blocked, rr := true, true
	cores := m.MaxCoresPerNode()
	for r, node := range m.nodeOf {
		if node != r/cores {
			blocked = false
		}
		if node != r%m.numNodes {
			rr = false
		}
	}
	switch {
	case blocked:
		return KindBlocked
	case rr:
		return KindRoundRobin
	default:
		return KindIrregular
	}
}

// SameNode reports whether two ranks share a node (their communication is
// an intra-node memory copy rather than a network transfer).
func (m *Map) SameNode(a, b int) bool { return m.nodeOf[a] == m.nodeOf[b] }

// RanksOnNode returns the ranks hosted on node, in ascending order.
func (m *Map) RanksOnNode(node int) []int {
	rs := append([]int(nil), m.byNode[node]...)
	sort.Ints(rs)
	return rs
}

// Leader returns the lowest rank on node — the node's representative in
// SMP-aware collectives.
func (m *Map) Leader(node int) int {
	rs := m.byNode[node]
	leader := rs[0]
	for _, r := range rs[1:] {
		if r < leader {
			leader = r
		}
	}
	return leader
}

// IsLeader reports whether rank is its node's leader.
func (m *Map) IsLeader(rank int) bool { return m.Leader(m.nodeOf[rank]) == rank }

// Leaders returns every node's leader, indexed by node.
func (m *Map) Leaders() []int {
	out := make([]int, m.numNodes)
	for node := range out {
		out[node] = m.Leader(node)
	}
	return out
}

// Subset derives the placement of a sub-communicator: member i of the new
// communicator is world rank members[i]. Node ids are re-densified while
// preserving relative order.
func (m *Map) Subset(members []int) (*Map, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("topology: empty subset")
	}
	// Collect used nodes in ascending id order, re-number densely.
	used := map[int]int{}
	var order []int
	for _, wr := range members {
		if wr < 0 || wr >= len(m.nodeOf) {
			return nil, fmt.Errorf("topology: subset member %d out of range", wr)
		}
		n := m.nodeOf[wr]
		if _, ok := used[n]; !ok {
			used[n] = 0
			order = append(order, n)
		}
	}
	sort.Ints(order)
	for i, n := range order {
		used[n] = i
	}
	nodeOf := make([]int, len(members))
	for i, wr := range members {
		nodeOf[i] = used[m.nodeOf[wr]]
	}
	return build(nodeOf)
}

// Classify reports whether a transfer between two ranks is intra-node.
func (m *Map) Classify(src, dst int) (intra bool) { return m.SameNode(src, dst) }

// String summarizes the map, e.g. "topology{np=64 nodes=3 [24 24 16]}".
func (m *Map) String() string {
	counts := make([]int, m.numNodes)
	for _, n := range m.nodeOf {
		counts[n]++
	}
	return fmt.Sprintf("topology{np=%d nodes=%d %v}", len(m.nodeOf), m.numNodes, counts)
}
