package bench

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

func TestMeasureRealProtocol(t *testing.T) {
	res, err := MeasureReal(RealConfig{NP: 4, Iterations: 5, Variant: Opt}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 4096 || res.Seconds <= 0 || res.MBps <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestMeasureRealAllVariants(t *testing.T) {
	for _, v := range []Variant{Native, Opt, Binomial, AutoNative, AutoOpt, SMPNative, SMPOpt} {
		cfg := RealConfig{NP: 8, CoresPerNode: 4, Iterations: 3, Variant: v}
		res, err := MeasureReal(cfg, 2048)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.MBps <= 0 {
			t.Fatalf("%v: bandwidth %v", v, res.MBps)
		}
	}
}

func TestMeasureSimVariants(t *testing.T) {
	cfg := SimConfig{Model: netsim.Hornet(), CoresPerNode: 24, Warm: 1, Total: 3}
	for _, v := range []Variant{Native, Opt, Binomial, AutoNative, AutoOpt} {
		res, err := MeasureSim(cfg, v, 10, 65536)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Seconds <= 0 {
			t.Fatalf("%v: seconds %v", v, res.Seconds)
		}
	}
	// SMP variants have no static schedule.
	if _, err := MeasureSim(cfg, SMPNative, 10, 65536); err == nil {
		t.Fatal("SMP variant must be rejected by the simulated harness")
	}
}

func TestVariantParseAndString(t *testing.T) {
	for _, name := range []string{"native", "opt", "binomial", "auto", "auto-opt", "smp", "smp-opt"} {
		v, err := ParseVariant(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.String() == "" {
			t.Fatalf("empty string for %q", name)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Fatal("bogus variant must fail")
	}
}

func TestAutoVariantProgramFollowsDispatch(t *testing.T) {
	// 12288 bytes, 9 ranks: medium npof2 -> ring path (native vs opt).
	prN, err := AutoNative.Program(9, 0, 12288)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prN.Name, "bcast-native") {
		t.Fatalf("auto-native selected %q", prN.Name)
	}
	prO, err := AutoOpt.Program(9, 0, 12288)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prO.Name, "bcast-opt") {
		t.Fatalf("auto-opt selected %q", prO.Name)
	}
	// Short message: binomial for both.
	prS, err := AutoOpt.Program(9, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if prS.Name != "binomial-bcast" {
		t.Fatalf("short message selected %q", prS.Name)
	}
	// Medium power-of-two: recursive doubling.
	prR, err := AutoNative.Program(16, 0, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prR.Name, "rdb") {
		t.Fatalf("medium pow2 selected %q", prR.Name)
	}
}

func TestFig6SmallSweep(t *testing.T) {
	cfg := SimConfig{Model: netsim.Hornet(), CoresPerNode: 24, Warm: 1, Total: 3}
	fig, err := Fig6(cfg, 16, []int{1 << 19, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) != 2 || len(fig.Lines[0].Y) != 2 {
		t.Fatalf("figure shape wrong: %+v", fig)
	}
	for i := range fig.Lines[0].Y {
		if fig.Lines[1].Y[i] < fig.Lines[0].Y[i] {
			t.Fatalf("opt below native at %d bytes", fig.Lines[0].X[i])
		}
	}
	maxGain, peakGain, err := Improvement(fig)
	if err != nil {
		t.Fatal(err)
	}
	if maxGain <= 0 || peakGain <= 0 {
		t.Fatalf("gains: %v %v", maxGain, peakGain)
	}
	out := FormatFigure(fig)
	if !strings.Contains(out, "MPI_Bcast_opt") || !strings.Contains(out, "524288") {
		t.Fatalf("format missing content:\n%s", out)
	}
}

func TestFig7SmallSweep(t *testing.T) {
	cfg := SimConfig{Model: netsim.Hornet(), CoresPerNode: 24, Warm: 1, Total: 3}
	fig, err := Fig7(cfg, []int{9, 17}, []int{12288})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) != 1 || len(fig.Lines[0].Y) != 2 {
		t.Fatalf("figure shape wrong: %+v", fig)
	}
	for i, s := range fig.Lines[0].Y {
		if s < 1 {
			t.Fatalf("speedup < 1 at np=%d: %v", fig.Lines[0].X[i], s)
		}
	}
}

func TestTransferCountsTable(t *testing.T) {
	rows := TransferCounts([]int{8, 10}, 8*64)
	if rows[0].NativeMsgs != 56 || rows[0].TunedMsgs != 44 || rows[0].Saved != 12 {
		t.Fatalf("P=8 row = %+v", rows[0])
	}
	if rows[1].NativeMsgs != 90 || rows[1].TunedMsgs != 75 || rows[1].Saved != 15 {
		t.Fatalf("P=10 row = %+v", rows[1])
	}
	out := FormatCounts(rows)
	if !strings.Contains(out, "56") || !strings.Contains(out, "75") {
		t.Fatalf("format missing counts:\n%s", out)
	}
}

func TestImprovementValidation(t *testing.T) {
	if _, _, err := Improvement(Figure{}); err == nil {
		t.Fatal("improvement with no series must fail")
	}
}

func TestFigSizeAxes(t *testing.T) {
	s6 := Fig6Sizes()
	if s6[0] != 1<<19 || s6[len(s6)-1] != 1<<25 {
		t.Fatalf("fig6 sizes = %v", s6)
	}
	s8 := Fig8Sizes()
	if s8[0] != 12288 || s8[len(s8)-1] > 2560000 {
		t.Fatalf("fig8 sizes = %v", s8)
	}
	if len(Fig7Procs()) != 5 || len(Fig7Sizes()) != 3 {
		t.Fatal("fig7 axes wrong")
	}
	for _, p := range Fig7Procs() {
		if p%2 == 0 {
			t.Fatalf("fig7 process counts must be non-power-of-two odd values, got %d", p)
		}
	}
}

func TestPaperClaimsIndexed(t *testing.T) {
	ids := map[string]bool{}
	for _, c := range PaperClaims {
		if c.Experiment == "" || c.Statement == "" || c.Check == "" {
			t.Fatalf("incomplete claim: %+v", c)
		}
		ids[c.Experiment] = true
	}
	for _, want := range []string{"SecIV-counts", "fig6a", "fig6b", "fig6c", "fig7", "fig8"} {
		if !ids[want] {
			t.Fatalf("missing claim for %s", want)
		}
	}
}
