package bench

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/measure"
	"repro/internal/topology"
	"repro/internal/tune"
)

// AutoTuneEngine runs the auto-tuner's segment-size and placement sweep
// on the real engine: the wall-clock counterpart of AutoTuneSweepSim,
// sharing the same grid semantics so the two tables are comparable
// cell-for-cell. A nil candidate list sweeps the whole registry — here
// genuinely the whole registry, SMP broadcasts included, since the
// engine executes implementations by name and needs no static schedule.
func AutoTuneEngine(m measure.EngineMeasurer, cands []tune.Candidate, sweep tune.SweepConfig) (*tune.Table, []tune.Winner, error) {
	if cands == nil {
		cands = collective.AllCandidates()
	}
	t, winners, err := tune.AutoTuneSweep(cands, m.Factory(), sweep)
	if err != nil {
		return nil, nil, err
	}
	warmup, reps, stat := m.Protocol()
	t.Description = fmt.Sprintf("%s on the real engine (exec %s, transport %s, warmup %d, reps %d, stat %s)",
		t.Description, m.ExecLabel(), m.TransportLabel(), warmup, reps, stat)
	return t, winners, nil
}

// CrossCell is one grid point of the model-versus-engine comparison:
// what each measurement substrate declares the winner, and how long each
// said the winner takes.
type CrossCell struct {
	P, N int
	// Env is the measurement environment (identical for both substrates
	// by construction; placement classification included).
	Env tune.Env
	// Sim and Eng are the winning decisions of the netsim model and the
	// real engine, with their measured per-iteration times.
	Sim, Eng               tune.Decision
	SimSeconds, EngSeconds float64
	// AgreeAlgo reports the substrates picked the same algorithm;
	// AgreeExact additionally requires the same segment size.
	AgreeAlgo, AgreeExact bool
}

// CrossReport is the outcome of one cross-validation run: both derived
// tables and the per-cell agreement.
type CrossReport struct {
	SimTable, EngTable *tune.Table
	Cells              []CrossCell
	// AlgoAgreements and ExactAgreements count cells where the substrates
	// agree (same algorithm / same decision including segment size).
	AlgoAgreements, ExactAgreements int
}

// Agreement is the fraction of cells whose winning algorithm matches.
func (r *CrossReport) Agreement() float64 {
	if len(r.Cells) == 0 {
		return 0
	}
	return float64(r.AlgoAgreements) / float64(len(r.Cells))
}

// CrossCheck derives one tuning table from the netsim cost model and one
// from wall-clock runs on the real engine, over the same candidates and
// the same (procs x sizes x segments x placements) grid, and reports
// per-cell agreement — the measurement-grounded answer to "does the
// model pick the same winners the real substrate does", with the cells
// where they diverge called out for investigation. A nil candidate list
// sweeps the whole registry.
//
// The simulated side is measured under the swept placements too (the
// measurer pinned per placement, exactly like AutoTuneSweepSim), so each
// cell compares the two substrates on an identical environment. The
// default candidate set is the schedule-static registry
// (collective.Candidates()), the widest set both substrates can measure.
func CrossCheck(sim SimConfig, eng measure.EngineMeasurer, cands []tune.Candidate, sweep tune.SweepConfig) (*CrossReport, error) {
	if cands == nil {
		cands = collective.Candidates()
	}
	// Both substrates must time the same broadcast: a root mismatch would
	// make per-cell divergence meaningless.
	sim.Root = eng.Root
	// Without an explicit placement sweep the two substrates would measure
	// different default environments (netsim: the model's blocked
	// placement; engine: a single node) and no cell would be comparable —
	// pin both to single-node instead.
	if len(sweep.Placements) == 0 {
		sweep.Placements = []tune.Placement{{Kind: topology.KindSingle}}
	}
	simTable, simWinners, err := AutoTuneSweepSim(sim, cands, sweep)
	if err != nil {
		return nil, fmt.Errorf("bench: crosscheck netsim side: %w", err)
	}
	engTable, engWinners, err := AutoTuneEngine(eng, cands, sweep)
	if err != nil {
		return nil, fmt.Errorf("bench: crosscheck engine side: %w", err)
	}
	if len(simWinners) != len(engWinners) {
		return nil, fmt.Errorf("bench: crosscheck grids diverged: %d netsim cells vs %d engine cells",
			len(simWinners), len(engWinners))
	}

	report := &CrossReport{SimTable: simTable, EngTable: engTable}
	for i, sw := range simWinners {
		ew := engWinners[i]
		// Both sweeps iterate placements, procs and sizes in the same
		// deterministic order; a mismatch means the measurers realized
		// different environments and the comparison would be meaningless.
		if sw.Procs != ew.Procs || sw.Bytes != ew.Bytes || sw.Env != ew.Env {
			return nil, fmt.Errorf("bench: crosscheck cell %d mismatch: netsim (p=%d, n=%d, env %+v) vs engine (p=%d, n=%d, env %+v)",
				i, sw.Procs, sw.Bytes, sw.Env, ew.Procs, ew.Bytes, ew.Env)
		}
		cell := CrossCell{
			P: sw.Procs, N: sw.Bytes, Env: sw.Env,
			Sim: sw.Decision, Eng: ew.Decision,
			SimSeconds: sw.Seconds, EngSeconds: ew.Seconds,
			AgreeAlgo:  sw.Decision.Algorithm == ew.Decision.Algorithm,
			AgreeExact: sw.Decision == ew.Decision,
		}
		if cell.AgreeAlgo {
			report.AlgoAgreements++
		}
		if cell.AgreeExact {
			report.ExactAgreements++
		}
		report.Cells = append(report.Cells, cell)
	}
	return report, nil
}

// FormatCrossReport renders the agreement report as an aligned table:
// one row per grid cell, divergent cells marked, and a closing summary
// line. Simulated times are virtual cluster time and engine times are
// host wall-clock — the winners are comparable, the magnitudes are not,
// which is why agreement is judged on decisions.
func FormatCrossReport(r *CrossReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-18s %-34s %-34s %12s %12s %s\n",
		"P", "bytes", "placement", "netsim-winner", "engine-winner", "sim-us", "eng-us", "agree")
	for _, c := range r.Cells {
		place := "-"
		if c.Env.Placement != "" {
			place = (tune.Placement{Kind: c.Env.Placement, CoresPerNode: c.Env.CoresPerNode}).String()
		}
		agree := "DIVERGE"
		switch {
		case c.AgreeExact:
			agree = "yes"
		case c.AgreeAlgo:
			agree = "algo (seg differs)"
		}
		fmt.Fprintf(&b, "%-6d %-10d %-18s %-34s %-34s %12.2f %12.2f %s\n",
			c.P, c.N, place,
			decisionLabel(c.Sim), decisionLabel(c.Eng),
			c.SimSeconds*1e6, c.EngSeconds*1e6, agree)
	}
	fmt.Fprintf(&b, "# %d/%d cells agree on the algorithm (%.0f%%), %d exactly; DIVERGE rows are where the cost model and the wall clock disagree on the winner\n",
		r.AlgoAgreements, len(r.Cells), 100*r.Agreement(), r.ExactAgreements)
	return b.String()
}
