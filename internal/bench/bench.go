// Package bench implements the paper's measurement protocol and the
// parameter sweeps behind every figure of the evaluation section.
//
// Two harnesses share the same reporting types:
//
//   - the real harness runs the executable collectives on the in-process
//     engine and reports wall-clock bandwidth, reproducing the paper's
//     user-level testing (barrier, then a loop of broadcasts, bandwidth =
//     message size over mean iteration time, in base-2 MB/s);
//   - the simulated harness replays the algorithms' schedules on the
//     netsim cluster model at full paper scale (up to 256 ranks and 32 MB
//     messages), regenerating the series of Figures 6(a-c), 7 and 8.
package bench

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/tune"
)

// MiB is 2^20 bytes; the paper uses megabytes "in the base-2 sense".
const MiB = 1 << 20

// Result is one measured point.
type Result struct {
	// Bytes is the broadcast message size.
	Bytes int
	// Seconds is the time per broadcast iteration.
	Seconds float64
	// MBps is Bytes/Seconds in base-2 MB/s.
	MBps float64
}

func newResult(bytes int, seconds float64) Result {
	r := Result{Bytes: bytes, Seconds: seconds}
	if seconds > 0 {
		r.MBps = float64(bytes) / seconds / MiB
	}
	return r
}

// Variant selects the broadcast implementation under test.
type Variant int

// Broadcast variants measured by the harnesses.
const (
	// Native is MPI_Bcast_native: binomial scatter + enclosed ring.
	Native Variant = iota
	// Opt is MPI_Bcast_opt: binomial scatter + tuned non-enclosed ring.
	Opt
	// Binomial is the short-message whole-buffer tree.
	Binomial
	// AutoNative is MPICH3's dispatcher with the native ring path.
	AutoNative
	// AutoOpt is the dispatcher with the tuned ring path.
	AutoOpt
	// SMPNative is the multi-core aware broadcast, native inter-node ring.
	SMPNative
	// SMPOpt is the multi-core aware broadcast, tuned inter-node ring.
	SMPOpt
)

// String names the variant like the paper.
func (v Variant) String() string {
	switch v {
	case Native:
		return "MPI_Bcast_native"
	case Opt:
		return "MPI_Bcast_opt"
	case Binomial:
		return "binomial"
	case AutoNative:
		return "auto(native)"
	case AutoOpt:
		return "auto(opt)"
	case SMPNative:
		return "smp(native)"
	case SMPOpt:
		return "smp(opt)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant maps a CLI name to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "native":
		return Native, nil
	case "opt":
		return Opt, nil
	case "binomial":
		return Binomial, nil
	case "auto":
		return AutoNative, nil
	case "auto-opt":
		return AutoOpt, nil
	case "smp":
		return SMPNative, nil
	case "smp-opt":
		return SMPOpt, nil
	default:
		return 0, fmt.Errorf("bench: unknown variant %q (native|opt|binomial|auto|auto-opt|smp|smp-opt)", s)
	}
}

// fn returns the executable collective for the variant.
func (v Variant) fn() func(mpi.Comm, []byte, int) error {
	switch v {
	case Native:
		return collective.BcastScatterRingAllgather
	case Opt:
		return collective.BcastScatterRingAllgatherOpt
	case Binomial:
		return collective.BcastBinomial
	case AutoNative:
		return collective.Bcast
	case AutoOpt:
		return collective.BcastOpt
	case SMPNative:
		return collective.BcastSMP
	case SMPOpt:
		return collective.BcastSMPOpt
	default:
		return nil
	}
}

// ProgramFor returns the static communication schedule of a tuner
// decision, resolved through the collective registry.
func ProgramFor(d tune.Decision, p, root, n int) (*sched.Program, error) {
	reg, ok := collective.Lookup(d.Algorithm)
	if !ok {
		return nil, fmt.Errorf("bench: unknown algorithm %q (registered: %v)", d.Algorithm, collective.Names())
	}
	if reg.Program == nil {
		return nil, fmt.Errorf("bench: algorithm %q has no static schedule", d.Algorithm)
	}
	return reg.Program(p, root, n, d.SegSize)
}

// Program returns the variant's communication schedule for the simulated
// harness (only schedule-static variants are supported there), resolved
// through the collective registry.
func (v Variant) Program(p, root, n int) (*sched.Program, error) {
	switch v {
	case Native:
		return ProgramFor(tune.Decision{Algorithm: tune.RingNative}, p, root, n)
	case Opt:
		return ProgramFor(tune.Decision{Algorithm: tune.RingOpt}, p, root, n)
	case Binomial:
		return ProgramFor(tune.Decision{Algorithm: tune.Binomial}, p, root, n)
	case AutoNative, AutoOpt:
		d := tune.MPICH3{Tuned: v == AutoOpt}.Decide(tune.Env{Bytes: n, Procs: p})
		return ProgramFor(d, p, root, n)
	default:
		return nil, fmt.Errorf("bench: variant %v has no static schedule", v)
	}
}

// RealConfig configures a real-engine measurement.
type RealConfig struct {
	// NP is the rank count.
	NP int
	// CoresPerNode controls the blocked placement (0 = single node).
	CoresPerNode int
	// EagerLimit overrides the engine protocol threshold (0 = default).
	EagerLimit int
	// Iterations is the number of broadcasts per measurement (the paper
	// uses 100).
	Iterations int
	// Root is the broadcast root.
	Root int
	// Variant is the broadcast under test (ignored when Algo or Tuner is
	// set).
	Variant Variant
	// Algo, when non-empty, selects a registry algorithm by name instead
	// of Variant; SegSize is its segment parameter (segmented algorithms
	// only, 0 = default).
	Algo    string
	SegSize int
	// Tuner, when non-nil, takes precedence over Algo and Variant: every
	// broadcast dispatches through it (table-driven or default MPICH3
	// selection).
	Tuner tune.Tuner
	// Executor selects the engine's rank-execution substrate and
	// MaxWorkers bounds the pooled executor's worker count — see
	// engine.Options.
	Executor   engine.ExecPolicy
	MaxWorkers int
	// Metrics, when non-nil, instruments the measurement worlds (it must
	// be sized for NP ranks; build it with span capacity to record
	// operation spans). Nil worlds still count into a private Metrics —
	// the engine's counters are always on — it is just unreadable here.
	Metrics *metrics.Metrics
	// Transport selects the engine's point-to-point substrate by name
	// ("" or "chan" = in-process; "udp" = every message crosses a
	// loopback UDP socket). The measurement boots and closes its own
	// transport.
	Transport string
}

// ExecLabel names the configured rank-execution substrate for the
// benchmark's provenance line, worker clamp applied.
func (cfg RealConfig) ExecLabel() string {
	return engine.ExecLabel(cfg.Executor, cfg.MaxWorkers)
}

// TransportLabel names the configured point-to-point substrate for the
// same provenance line ("chan", "udp").
func (cfg RealConfig) TransportLabel() string {
	if cfg.Transport == "" {
		return transport.ChanName
	}
	return cfg.Transport
}

// bcastFn resolves the broadcast the harness measures: Tuner, then Algo,
// then the legacy Variant. Tuner- and Algo-driven runs resolve to a
// collective.Options value and dispatch through collective.Broadcast —
// the module's one selection path — so the harness measures exactly what
// a facade caller with the same options would run.
func (cfg RealConfig) bcastFn() (func(c mpi.Comm, buf []byte, root int) error, error) {
	switch {
	case cfg.Tuner != nil, cfg.Algo != "":
		o := collective.Options{SegSize: cfg.SegSize, Tuner: cfg.Tuner}
		if cfg.Tuner == nil {
			o.Algorithm = cfg.Algo
		} else {
			// Documented precedence: Tuner beats Algo, and SegSize stays
			// the pinned-algorithm parameter (tuner decisions keep their
			// own segment sizes).
			o.SegSize = 0
		}
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		return func(c mpi.Comm, buf []byte, root int) error {
			return collective.Broadcast(c, buf, root, o)
		}, nil
	default:
		if o, ok := cfg.Variant.options(); ok {
			return func(c mpi.Comm, buf []byte, root int) error {
				return collective.Broadcast(c, buf, root, o)
			}, nil
		}
		if fn := cfg.Variant.fn(); fn != nil {
			return fn, nil
		}
		return nil, fmt.Errorf("bench: bad variant %v", cfg.Variant)
	}
}

// options maps the variants that name a registry algorithm (or the
// default tuner) onto collective.Options, so their measurements dispatch
// through the module's one selection path and emit operation spans like
// any facade broadcast. The SMP variants are excluded on purpose: their
// registrations are capability-gated to multi-node topologies, while the
// direct entry points serve single-node runs with a binomial fallback —
// pinning them here would turn that fallback into an error.
func (v Variant) options() (collective.Options, bool) {
	switch v {
	case Native:
		return collective.Options{Algorithm: tune.RingNative}, true
	case Opt:
		return collective.Options{Algorithm: tune.RingOpt}, true
	case Binomial:
		return collective.Options{Algorithm: tune.Binomial}, true
	case AutoNative:
		return collective.Options{}, true
	case AutoOpt:
		return collective.Options{Tuner: tune.MPICH3{Tuned: true}}, true
	default:
		return collective.Options{}, false
	}
}

func (cfg RealConfig) topology() *topology.Map {
	if cfg.CoresPerNode <= 0 {
		return topology.SingleNode(cfg.NP)
	}
	return topology.Blocked(cfg.NP, cfg.CoresPerNode)
}

// MeasureReal runs the paper's protocol on the real engine: synchronize
// with a barrier, run cfg.Iterations broadcasts back to back, synchronize
// again, and report bandwidth from the root's elapsed wall-clock time.
func MeasureReal(cfg RealConfig, n int) (Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 100
	}
	fn, err := cfg.bcastFn()
	if err != nil {
		return Result{}, err
	}
	trans, err := transport.New(cfg.Transport, cfg.NP)
	if err != nil {
		return Result{}, err
	}
	defer trans.Close()
	var elapsed time.Duration
	err = engine.RunWith(engine.Options{
		NP:         cfg.NP,
		Topology:   cfg.topology(),
		EagerLimit: cfg.EagerLimit,
		Timeout:    10 * time.Minute,
		Executor:   cfg.Executor,
		MaxWorkers: cfg.MaxWorkers,
		Metrics:    cfg.Metrics,
		Transport:  trans,
	}, func(c mpi.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == cfg.Root {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		if err := collective.Barrier(c); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < cfg.Iterations; i++ {
			if err := fn(c, buf, cfg.Root); err != nil {
				return err
			}
		}
		if err := collective.Barrier(c); err != nil {
			return err
		}
		if c.Rank() == cfg.Root {
			elapsed = time.Since(start)
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return newResult(n, elapsed.Seconds()/float64(cfg.Iterations)), nil
}

// SimConfig configures a simulated measurement.
type SimConfig struct {
	// Model is the cluster calibration (netsim.Hornet() by default).
	Model *netsim.Model
	// CoresPerNode controls the blocked placement (default 24, Hornet).
	CoresPerNode int
	// Warm and Total bound the steady-state replication (defaults 2, 6).
	Warm, Total int
	// Root is the broadcast root.
	Root int
}

func (cfg *SimConfig) fill() {
	if cfg.Model == nil {
		cfg.Model = netsim.Hornet()
	}
	if cfg.CoresPerNode <= 0 {
		cfg.CoresPerNode = topology.HornetCoresPerNode
	}
	if cfg.Warm <= 0 {
		cfg.Warm = 2
	}
	if cfg.Total <= cfg.Warm {
		cfg.Total = cfg.Warm + 4
	}
}

// MeasureSim predicts the steady-state per-broadcast time of the variant
// on the modelled cluster and reports bandwidth.
func MeasureSim(cfg SimConfig, v Variant, p, n int) (Result, error) {
	cfg.fill()
	pr, err := v.Program(p, cfg.Root, n)
	if err != nil {
		return Result{}, err
	}
	topo := topology.Blocked(p, cfg.CoresPerNode)
	dt, err := netsim.SteadyStateIterTime(pr, topo, cfg.Model, cfg.Warm, cfg.Total)
	if err != nil {
		return Result{}, err
	}
	return newResult(n, dt), nil
}
