package bench

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/topology"
	"repro/internal/tune"
)

// TestCrossCheckTinyGrid runs the full model-versus-engine cross
// validation at smoke scale: both tables must validate, the cells must
// cover the grid once per placement, and every cell must carry positive
// times from both substrates and an identical environment.
func TestCrossCheckTinyGrid(t *testing.T) {
	eng := measure.EngineMeasurer{Warmup: 1, Reps: 2, Stat: measure.StatMin}
	sweep := tune.SweepConfig{
		Procs:      []int{4, 8},
		Sizes:      []int{1 << 12, 1 << 16},
		Placements: []tune.Placement{{Kind: topology.KindBlocked, CoresPerNode: 2}},
	}
	report, err := CrossCheck(SimConfig{}, eng, FamilyCandidates(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(report.Cells), 4; got != want {
		t.Fatalf("got %d cells, want %d", got, want)
	}
	if err := report.SimTable.Validate(); err != nil {
		t.Errorf("netsim table: %v", err)
	}
	if err := report.EngTable.Validate(); err != nil {
		t.Errorf("engine table: %v", err)
	}
	for _, c := range report.Cells {
		if c.SimSeconds <= 0 || c.EngSeconds <= 0 {
			t.Errorf("cell (p=%d, n=%d): non-positive times %v/%v", c.P, c.N, c.SimSeconds, c.EngSeconds)
		}
		if c.Env.Placement != topology.KindBlocked {
			t.Errorf("cell (p=%d, n=%d): placement %q, want blocked", c.P, c.N, c.Env.Placement)
		}
		if c.Sim.Algorithm == "" || c.Eng.Algorithm == "" {
			t.Errorf("cell (p=%d, n=%d): empty decision %+v", c.P, c.N, c)
		}
	}
	if report.AlgoAgreements < report.ExactAgreements {
		t.Errorf("exact agreements (%d) exceed algorithm agreements (%d)",
			report.ExactAgreements, report.AlgoAgreements)
	}

	// Both tables must resolve through a TableTuner for the tuned
	// environment — the contract the CLIs depend on.
	e := tune.EnvOf(1<<16, 8, topology.Blocked(8, 2))
	for name, table := range map[string]*tune.Table{"sim": report.SimTable, "eng": report.EngTable} {
		d := tune.TableTuner{Table: table}.Decide(e)
		if d.Algorithm == "" {
			t.Errorf("%s table resolves to empty decision", name)
		}
	}

	out := FormatCrossReport(report)
	if !strings.Contains(out, "netsim-winner") || !strings.Contains(out, "cells agree") {
		t.Errorf("report rendering missing expected columns:\n%s", out)
	}
}

// TestAutoTuneEngineDescribesProtocol: the emitted table's provenance
// must say it came from the engine and record the protocol.
func TestAutoTuneEngineDescribesProtocol(t *testing.T) {
	eng := measure.EngineMeasurer{Warmup: 1, Reps: 2, Stat: measure.StatMin}
	table, winners, err := AutoTuneEngine(eng, FamilyCandidates(), tune.SweepConfig{
		Procs: []int{4},
		Sizes: []int{1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 1 {
		t.Fatalf("got %d winners, want 1", len(winners))
	}
	if !strings.Contains(table.Description, "real engine") ||
		!strings.Contains(table.Description, "exec goroutine") ||
		!strings.Contains(table.Description, "reps 2") ||
		!strings.Contains(table.Description, "stat min") {
		t.Errorf("description %q lacks engine provenance", table.Description)
	}
}

// TestAutoTuneEngineDescribesExecutor: a pooled-substrate sweep must
// record the pool (with its clamped worker count) in the emitted table's
// provenance — tables from different substrates are different artifacts.
func TestAutoTuneEngineDescribesExecutor(t *testing.T) {
	eng := measure.EngineMeasurer{
		Warmup: 1, Reps: 2, Stat: measure.StatMin,
		Executor: engine.Pooled, MaxWorkers: 1,
	}
	table, _, err := AutoTuneEngine(eng, FamilyCandidates(), tune.SweepConfig{
		Procs: []int{4},
		Sizes: []int{1 << 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.Description, "exec pooled(1)") {
		t.Errorf("description %q lacks pooled-executor provenance", table.Description)
	}
}
