package bench

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/tune"
)

// simMeasurer adapts a SimConfig to the auto-tuner's Measurer.
func (cfg SimConfig) simMeasurer() tune.SimMeasurer {
	cfg.fill()
	return tune.SimMeasurer{
		Model:        cfg.Model,
		CoresPerNode: cfg.CoresPerNode,
		Warm:         cfg.Warm,
		Total:        cfg.Total,
		Root:         cfg.Root,
	}
}

// FamilyCandidates returns the registry candidates restricted to MPICH3's
// own dispatch family (binomial, scatter-rdb, the two rings) — the set the
// paper tunes among. Extensions like the pipelined chain are excluded, so
// an auto-tuned table over this set is directly comparable to
// SelectAlgorithm's static thresholds.
func FamilyCandidates() []tune.Candidate {
	family := map[string]bool{
		tune.Binomial:   true,
		tune.ScatterRdb: true,
		tune.RingNative: true,
		tune.RingOpt:    true,
	}
	var out []tune.Candidate
	for _, c := range collective.Candidates() {
		if family[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// AutoTuneSim runs the auto-tuner over the registry's schedule-static
// algorithms on the netsim cluster model, deriving a tuning table from
// measured crossover points. A nil candidate list tunes over the whole
// registry (collective.Candidates()).
func AutoTuneSim(cfg SimConfig, cands []tune.Candidate, procs, sizes []int) (*tune.Table, []tune.Winner, error) {
	if cands == nil {
		cands = collective.Candidates()
	}
	cfg.fill()
	t, winners, err := tune.AutoTune(cands, cfg.simMeasurer(), procs, sizes)
	if err != nil {
		return nil, nil, err
	}
	t.Description = fmt.Sprintf("%s on netsim model %q, %d cores/node", t.Description, cfg.Model.Name, cfg.CoresPerNode)
	return t, winners, nil
}

// TunedRow is one point of the tuned-versus-native comparison: what the
// static MPICH3 dispatch picks, what the tuned table picks, and the
// simulated bandwidth of each.
type TunedRow struct {
	P, N       int
	NativeAlgo string
	TunedAlgo  string
	NativeMBps float64
	TunedMBps  float64
	// Speedup is native-time / tuned-time (> 1 where the tuner wins).
	Speedup float64
}

// CompareTuned evaluates a tuning table against MPICH3's static native
// dispatch over a (procs x sizes) grid on the simulated cluster,
// reporting where the auto-tuned selection beats the hardcoded one.
func CompareTuned(cfg SimConfig, table *tune.Table, procs, sizes []int) ([]TunedRow, error) {
	cfg.fill()
	native := tune.MPICH3{}
	tuned := tune.TableTuner{Table: table, Fallback: native}
	m := cfg.simMeasurer()

	var rows []TunedRow
	for _, p := range procs {
		for _, n := range sizes {
			e := m.Env(p, n)
			nd := native.Decide(e)
			td := tuned.Decide(e)
			nt, err := simDecision(cfg, nd, p, n)
			if err != nil {
				return nil, fmt.Errorf("bench: native %q at (p=%d, n=%d): %w", nd.Algorithm, p, n, err)
			}
			tt, err := simDecision(cfg, td, p, n)
			if err != nil {
				return nil, fmt.Errorf("bench: tuned %q at (p=%d, n=%d): %w", td.Algorithm, p, n, err)
			}
			row := TunedRow{
				P: p, N: n,
				NativeAlgo: nd.Algorithm, TunedAlgo: td.Algorithm,
				NativeMBps: newResult(n, nt).MBps,
				TunedMBps:  newResult(n, tt).MBps,
			}
			if tt > 0 {
				row.Speedup = nt / tt
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MeasureSimDecision predicts the bandwidth of a registry decision on
// the modelled cluster — MeasureSim generalized from the fixed Variant
// set to any registered algorithm.
func MeasureSimDecision(cfg SimConfig, d tune.Decision, p, n int) (Result, error) {
	dt, err := simDecision(cfg, d, p, n)
	if err != nil {
		return Result{}, err
	}
	return newResult(n, dt), nil
}

// simDecision predicts the steady-state per-iteration time of a decided
// algorithm on the modelled cluster.
func simDecision(cfg SimConfig, d tune.Decision, p, n int) (float64, error) {
	cfg.fill()
	pr, err := ProgramFor(d, p, cfg.Root, n)
	if err != nil {
		return 0, err
	}
	topo := topology.Blocked(p, cfg.CoresPerNode)
	return netsim.SteadyStateIterTime(pr, topo, cfg.Model, cfg.Warm, cfg.Total)
}

// FormatTunedRows renders the comparison as an aligned table.
func FormatTunedRows(rows []TunedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-28s %-28s %12s %12s %8s\n",
		"P", "bytes", "native-dispatch", "tuned-dispatch", "native-MB/s", "tuned-MB/s", "speedup")
	for _, r := range rows {
		marker := ""
		if r.Speedup > 1.005 && r.TunedAlgo != r.NativeAlgo {
			marker = " *"
		}
		fmt.Fprintf(&b, "%-6d %-10d %-28s %-28s %12.2f %12.2f %7.3fx%s\n",
			r.P, r.N, r.NativeAlgo, r.TunedAlgo, r.NativeMBps, r.TunedMBps, r.Speedup, marker)
	}
	b.WriteString("# * = auto-tuned table picked a different algorithm and won\n")
	return b.String()
}

// FormatWinners renders the auto-tuner's raw grid decisions.
func FormatWinners(ws []tune.Winner) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-28s %14s\n", "P", "bytes", "winner", "us/iter")
	for _, w := range ws {
		fmt.Fprintf(&b, "%-6d %-10d %-28s %14.2f\n", w.Procs, w.Bytes, w.Decision.Algorithm, w.Seconds*1e6)
	}
	return b.String()
}
