package bench

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/tune"
)

// simMeasurer adapts a SimConfig to the auto-tuner's Measurer.
func (cfg SimConfig) simMeasurer() tune.SimMeasurer {
	cfg.fill()
	return tune.SimMeasurer{
		Model:        cfg.Model,
		CoresPerNode: cfg.CoresPerNode,
		Warm:         cfg.Warm,
		Total:        cfg.Total,
		Root:         cfg.Root,
	}
}

// placedMeasurer is simMeasurer pinned to an explicit placement (the
// placement-sweep path); a zero placement falls back to the config's
// blocked default.
func (cfg SimConfig) placedMeasurer(pl tune.Placement) tune.SimMeasurer {
	m := cfg.simMeasurer()
	m.Place = pl
	return m
}

// placedMap realizes a placement for p ranks, defaulting to the config's
// blocked placement when pl is zero.
func (cfg SimConfig) placedMap(pl tune.Placement, p int) (*topology.Map, error) {
	if pl.Kind == "" {
		return topology.Blocked(p, cfg.CoresPerNode), nil
	}
	return pl.Map(p)
}

// FamilyCandidates returns the registry candidates restricted to the
// scatter-ring dispatch family (binomial, scatter-rdb, the two rings and
// their segmented and overlap-aware segmented variants) — the set the
// paper tunes among. Extensions
// like the pipelined chain are excluded, so an auto-tuned table over this
// set is directly comparable to SelectAlgorithm's static thresholds.
func FamilyCandidates() []tune.Candidate {
	family := map[string]bool{
		tune.Binomial:     true,
		tune.ScatterRdb:   true,
		tune.RingNative:   true,
		tune.RingOpt:      true,
		tune.RingSeg:      true,
		tune.RingOptSeg:   true,
		tune.RingSegNB:    true,
		tune.RingOptSegNB: true,
	}
	var out []tune.Candidate
	for _, c := range collective.Candidates() {
		if family[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// AutoTuneSim runs the auto-tuner over the registry's schedule-static
// algorithms on the netsim cluster model, deriving a tuning table from
// measured crossover points. A nil candidate list tunes over the whole
// registry (collective.Candidates()).
func AutoTuneSim(cfg SimConfig, cands []tune.Candidate, procs, sizes []int) (*tune.Table, []tune.Winner, error) {
	if cands == nil {
		cands = collective.Candidates()
	}
	cfg.fill()
	t, winners, err := tune.AutoTune(cands, cfg.simMeasurer(), procs, sizes)
	if err != nil {
		return nil, nil, err
	}
	t.Description = fmt.Sprintf("%s on netsim model %q, %d cores/node", t.Description, cfg.Model.Name, cfg.CoresPerNode)
	return t, winners, nil
}

// AutoTuneSweepSim runs the segment-size and placement sweep on the
// netsim cluster model: every segmented candidate is measured at every
// swept segment size, the whole grid repeats per placement, and the
// resulting table carries one placement-keyed rule group per placement.
// A nil candidate list sweeps the whole registry.
func AutoTuneSweepSim(cfg SimConfig, cands []tune.Candidate, sweep tune.SweepConfig) (*tune.Table, []tune.Winner, error) {
	if cands == nil {
		cands = collective.Candidates()
	}
	cfg.fill()
	t, winners, err := tune.AutoTuneSweep(cands, func(pl tune.Placement) tune.Measurer {
		return cfg.placedMeasurer(pl)
	}, sweep)
	if err != nil {
		return nil, nil, err
	}
	t.Description = fmt.Sprintf("%s on netsim model %q", t.Description, cfg.Model.Name)
	return t, winners, nil
}

// TunedRow is one point of the tuned-versus-native comparison: what the
// static MPICH3 dispatch picks, what the tuned table picks, and the
// simulated bandwidth of each. Place identifies the swept placement the
// point was evaluated under (zero = the config's blocked default).
type TunedRow struct {
	P, N       int
	Place      tune.Placement
	NativeAlgo string
	TunedAlgo  string
	// TunedSeg is the tuned decision's segment size (0 = none/default).
	TunedSeg   int
	NativeMBps float64
	TunedMBps  float64
	// Speedup is native-time / tuned-time (> 1 where the tuner wins).
	Speedup float64
}

// CompareTuned evaluates a tuning table against MPICH3's static native
// dispatch over a (procs x sizes) grid on the simulated cluster,
// reporting where the auto-tuned selection beats the hardcoded one.
func CompareTuned(cfg SimConfig, table *tune.Table, procs, sizes []int) ([]TunedRow, error) {
	return CompareTunedPlaced(cfg, table, procs, sizes, nil)
}

// CompareTunedPlaced is CompareTuned swept over placements: every grid
// point is re-evaluated under each placement, giving the comparison
// report a per-placement breakdown that mirrors the placement-keyed rule
// groups of AutoTuneSweepSim tables. A nil or empty placement list
// evaluates only the config's blocked default.
func CompareTunedPlaced(cfg SimConfig, table *tune.Table, procs, sizes []int, placements []tune.Placement) ([]TunedRow, error) {
	cfg.fill()
	if len(placements) == 0 {
		placements = []tune.Placement{{}}
	}
	native := tune.MPICH3{}
	tuned := tune.TableTuner{Table: table, Fallback: native}

	var rows []TunedRow
	for _, pl := range placements {
		for _, p := range procs {
			topo, err := cfg.placedMap(pl, p)
			if err != nil {
				return nil, err
			}
			for _, n := range sizes {
				e := tune.EnvOf(n, p, topo)
				nd := native.Decide(e)
				td := tuned.Decide(e)
				nt, err := simDecisionOn(cfg, nd, p, n, topo)
				if err != nil {
					return nil, fmt.Errorf("bench: native %q at (p=%d, n=%d): %w", nd.Algorithm, p, n, err)
				}
				tt, err := simDecisionOn(cfg, td, p, n, topo)
				if err != nil {
					return nil, fmt.Errorf("bench: tuned %q at (p=%d, n=%d): %w", td.Algorithm, p, n, err)
				}
				row := TunedRow{
					P: p, N: n, Place: pl,
					NativeAlgo: nd.Algorithm, TunedAlgo: td.Algorithm, TunedSeg: td.SegSize,
					NativeMBps: newResult(n, nt).MBps,
					TunedMBps:  newResult(n, tt).MBps,
				}
				if tt > 0 {
					row.Speedup = nt / tt
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// MeasureSimDecision predicts the bandwidth of a registry decision on
// the modelled cluster — MeasureSim generalized from the fixed Variant
// set to any registered algorithm.
func MeasureSimDecision(cfg SimConfig, d tune.Decision, p, n int) (Result, error) {
	dt, err := simDecision(cfg, d, p, n)
	if err != nil {
		return Result{}, err
	}
	return newResult(n, dt), nil
}

// simDecision predicts the steady-state per-iteration time of a decided
// algorithm on the modelled cluster under the config's blocked placement.
func simDecision(cfg SimConfig, d tune.Decision, p, n int) (float64, error) {
	cfg.fill()
	return simDecisionOn(cfg, d, p, n, topology.Blocked(p, cfg.CoresPerNode))
}

// simDecisionOn is simDecision over an explicit placement map.
func simDecisionOn(cfg SimConfig, d tune.Decision, p, n int, topo *topology.Map) (float64, error) {
	cfg.fill()
	pr, err := ProgramFor(d, p, cfg.Root, n)
	if err != nil {
		return 0, err
	}
	return netsim.SteadyStateIterTime(pr, topo, cfg.Model, cfg.Warm, cfg.Total)
}

// FormatTunedRows renders the comparison as an aligned table, grouped by
// placement when the rows carry a placement breakdown.
func FormatTunedRows(rows []TunedRow) string {
	var b strings.Builder
	header := func() {
		fmt.Fprintf(&b, "%-6s %-10s %-30s %-34s %12s %12s %8s\n",
			"P", "bytes", "native-dispatch", "tuned-dispatch", "native-MB/s", "tuned-MB/s", "speedup")
	}
	lastPlace := ""
	headed := false
	for _, r := range rows {
		if pl := r.Place.String(); r.Place.Kind != "" && pl != lastPlace {
			fmt.Fprintf(&b, "# placement %s\n", pl)
			lastPlace = pl
			header()
			headed = true
		} else if !headed {
			header()
			headed = true
		}
		marker := ""
		if r.Speedup > 1.005 && r.TunedAlgo != r.NativeAlgo {
			marker = " *"
		}
		fmt.Fprintf(&b, "%-6d %-10d %-30s %-34s %12.2f %12.2f %7.3fx%s\n",
			r.P, r.N, r.NativeAlgo, decisionLabel(tune.Decision{Algorithm: r.TunedAlgo, SegSize: r.TunedSeg}), r.NativeMBps, r.TunedMBps, r.Speedup, marker)
	}
	b.WriteString("# * = auto-tuned table picked a different algorithm and won\n")
	return b.String()
}

// decisionLabel renders a decision compactly, appending the segment size
// when one is set (e.g. "scatter-ring-allgather-opt-seg@65536").
func decisionLabel(d tune.Decision) string {
	if d.SegSize > 0 {
		return fmt.Sprintf("%s@%d", d.Algorithm, d.SegSize)
	}
	return d.Algorithm
}

// FormatWinners renders the auto-tuner's raw grid decisions, including
// the winning segment size and the measured placement classification.
func FormatWinners(ws []tune.Winner) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-10s %-18s %-34s %14s\n", "P", "bytes", "placement", "winner", "us/iter")
	for _, w := range ws {
		pl := tune.Placement{Kind: w.Env.Placement, CoresPerNode: w.Env.CoresPerNode}
		place := "-"
		if pl.Kind != "" {
			place = pl.String()
		}
		fmt.Fprintf(&b, "%-6d %-10d %-18s %-34s %14.2f\n",
			w.Procs, w.Bytes, place, decisionLabel(w.Decision), w.Seconds*1e6)
	}
	return b.String()
}
