package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Series is one curve of a figure: a label and aligned X/Y points.
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Figure is a reproduced plot: several series over a common x-axis.
type Figure struct {
	ID    string
	Title string
	XName string
	YName string
	Lines []Series
}

// Fig6Sizes is the long-message x-axis of Figure 6: 2^19 .. 2^25 bytes
// (the paper sweeps 524288 to ~30 MB).
func Fig6Sizes() []int {
	var sizes []int
	for n := 1 << 19; n <= 1<<25; n <<= 1 {
		sizes = append(sizes, n)
	}
	return sizes
}

// Fig7Procs and Fig7Sizes are the axes of Figure 7 (throughput speedups
// for non-power-of-two process counts at the dispatcher's threshold
// sizes).
func Fig7Procs() []int { return []int{9, 17, 33, 65, 129} }

// Fig7Sizes returns the three message sizes of Figure 7.
func Fig7Sizes() []int { return []int{12288, 524287, 1048576} }

// Fig8Sizes is Figure 8's x-axis: 12288 to 2560000 bytes with 129
// processes (medium into long messages, doubling).
func Fig8Sizes() []int {
	var sizes []int
	for n := 12288; n <= 2560000; n <<= 1 {
		sizes = append(sizes, n)
	}
	return sizes
}

// Fig6 regenerates one panel of Figure 6: bandwidth versus message size
// for MPI_Bcast_native and MPI_Bcast_opt at the given process count.
func Fig6(cfg SimConfig, np int, sizes []int) (Figure, error) {
	if sizes == nil {
		sizes = Fig6Sizes()
	}
	fig := Figure{
		ID:    fmt.Sprintf("fig6-np%d", np),
		Title: fmt.Sprintf("Bandwidth comparison for long messages, np=%d", np),
		XName: "message size (bytes)",
		YName: "bandwidth (MB/s)",
	}
	nat := Series{Label: "MPI_Bcast_native"}
	opt := Series{Label: "MPI_Bcast_opt"}
	for _, n := range sizes {
		rn, err := MeasureSim(cfg, Native, np, n)
		if err != nil {
			return fig, err
		}
		ro, err := MeasureSim(cfg, Opt, np, n)
		if err != nil {
			return fig, err
		}
		nat.X = append(nat.X, n)
		nat.Y = append(nat.Y, rn.MBps)
		opt.X = append(opt.X, n)
		opt.Y = append(opt.Y, ro.MBps)
	}
	fig.Lines = []Series{nat, opt}
	return fig, nil
}

// Fig7 regenerates Figure 7: the throughput speedup of MPI_Bcast_opt
// over MPI_Bcast_native across non-power-of-two process counts, one
// series per message size.
func Fig7(cfg SimConfig, procs, sizes []int) (Figure, error) {
	if procs == nil {
		procs = Fig7Procs()
	}
	if sizes == nil {
		sizes = Fig7Sizes()
	}
	fig := Figure{
		ID:    "fig7",
		Title: "Throughput speedups of MPI_Bcast_opt over MPI_Bcast_native",
		XName: "number of processes",
		YName: "speedup",
	}
	for _, n := range sizes {
		s := Series{Label: fmt.Sprintf("ms=%d", n)}
		for _, p := range procs {
			rn, err := MeasureSim(cfg, Native, p, n)
			if err != nil {
				return fig, err
			}
			ro, err := MeasureSim(cfg, Opt, p, n)
			if err != nil {
				return fig, err
			}
			s.X = append(s.X, p)
			s.Y = append(s.Y, rn.Seconds/ro.Seconds)
		}
		fig.Lines = append(fig.Lines, s)
	}
	return fig, nil
}

// Fig8 regenerates Figure 8: bandwidth versus message size for 129
// processes from medium (12288) into long (2560000) messages.
func Fig8(cfg SimConfig, sizes []int) (Figure, error) {
	if sizes == nil {
		sizes = Fig8Sizes()
	}
	fig, err := Fig6(cfg, 129, sizes)
	if err != nil {
		return fig, err
	}
	fig.ID = "fig8"
	fig.Title = "Bandwidth comparison for medium and long messages, np=129"
	return fig, nil
}

// CountRow is one line of the transfer-count table (the Section IV
// in-text claims generalized over P).
type CountRow struct {
	P             int
	NativeMsgs    int
	TunedMsgs     int
	Saved         int
	SavedPercent  float64
	NativeBytes   int
	TunedBytes    int
	BytesSavedPct float64
}

// TransferCounts tabulates ring-allgather message and byte counts for the
// given process counts at n bytes per broadcast.
func TransferCounts(ps []int, n int) []CountRow {
	rows := make([]CountRow, 0, len(ps))
	for _, p := range ps {
		nat := core.RingTrafficNative(p, n)
		tun := core.RingTrafficTuned(p, n)
		row := CountRow{
			P:          p,
			NativeMsgs: nat.Messages, TunedMsgs: tun.Messages,
			Saved:       nat.Messages - tun.Messages,
			NativeBytes: nat.Bytes, TunedBytes: tun.Bytes,
		}
		if nat.Messages > 0 {
			row.SavedPercent = 100 * float64(row.Saved) / float64(nat.Messages)
		}
		if nat.Bytes > 0 {
			row.BytesSavedPct = 100 * float64(nat.Bytes-tun.Bytes) / float64(nat.Bytes)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFigure renders the figure as an aligned text table, one row per
// x value, one column per series, ready for terminal inspection or
// gnuplot-style consumption.
func FormatFigure(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", fig.ID, fig.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", fig.XName, fig.YName)
	fmt.Fprintf(&b, "%-12s", "x")
	for _, s := range fig.Lines {
		fmt.Fprintf(&b, " %20s", s.Label)
	}
	b.WriteByte('\n')
	if len(fig.Lines) == 0 {
		return b.String()
	}
	for i := range fig.Lines[0].X {
		fmt.Fprintf(&b, "%-12d", fig.Lines[0].X[i])
		for _, s := range fig.Lines {
			fmt.Fprintf(&b, " %20.2f", s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatCounts renders the transfer-count table.
func FormatCounts(rows []CountRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %12s %8s %8s %14s %14s %8s\n",
		"P", "native-msgs", "tuned-msgs", "saved", "saved%", "native-bytes", "tuned-bytes", "bytes%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %12d %12d %8d %7.1f%% %14d %14d %7.1f%%\n",
			r.P, r.NativeMsgs, r.TunedMsgs, r.Saved, r.SavedPercent,
			r.NativeBytes, r.TunedBytes, r.BytesSavedPct)
	}
	return b.String()
}

// Improvement summarizes how much the second series of a two-line figure
// improves over the first: the maximum and the at-peak gain in percent.
func Improvement(fig Figure) (maxGainPct, peakGainPct float64, err error) {
	if len(fig.Lines) != 2 {
		return 0, 0, fmt.Errorf("bench: improvement needs exactly 2 series, got %d", len(fig.Lines))
	}
	nat, opt := fig.Lines[0], fig.Lines[1]
	var peakNat, peakOpt float64
	for i := range nat.Y {
		if nat.Y[i] > 0 {
			gain := 100 * (opt.Y[i] - nat.Y[i]) / nat.Y[i]
			if gain > maxGainPct {
				maxGainPct = gain
			}
		}
		if nat.Y[i] > peakNat {
			peakNat = nat.Y[i]
		}
		if opt.Y[i] > peakOpt {
			peakOpt = opt.Y[i]
		}
	}
	if peakNat > 0 {
		peakGainPct = 100 * (peakOpt - peakNat) / peakNat
	}
	return maxGainPct, peakGainPct, nil
}
