package bench

import (
	"testing"

	"repro/internal/tune"
)

// TestAutoTunePicksPaperRingForLongMessages is the paper-scale acceptance
// run: auto-tuning MPICH3's own algorithm family on the netsim Hornet
// model at the paper's process counts must, for every long message
// (>= tune.LongMsgSize), select the paper's tuned non-enclosed ring —
// the measured confirmation of the paper's claim that the optimized ring
// dominates the long-message regime.
func TestAutoTunePicksPaperRingForLongMessages(t *testing.T) {
	procs := []int{16, 64, 129}
	sizes := []int{1 << 18, tune.LongMsgSize, 1 << 20, 1 << 21}
	cfg := SimConfig{}
	table, winners, err := AutoTuneSim(cfg, FamilyCandidates(), procs, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range winners {
		if w.Bytes >= tune.LongMsgSize && w.Decision.Algorithm != tune.RingOpt {
			t.Errorf("long-message winner at (p=%d, n=%d) = %q, want %q",
				w.Procs, w.Bytes, w.Decision.Algorithm, tune.RingOpt)
		}
		if w.Seconds <= 0 {
			t.Errorf("non-positive time at (p=%d, n=%d)", w.Procs, w.Bytes)
		}
	}

	// The emitted JSON table must survive a round trip and keep the
	// long-message decisions.
	data, err := table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := tune.ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		d, ok := parsed.Lookup(tune.Env{Bytes: 1 << 20, Procs: p, NumNodes: 6})
		if !ok || d.Algorithm != tune.RingOpt {
			t.Errorf("table lookup (p=%d, n=1MiB) = (%+v, %v), want %q", p, d, ok, tune.RingOpt)
		}
	}
}

// TestCompareTunedBeatsNativeDispatch checks the tuned-vs-native report:
// where the auto-tuned table picks the paper's ring over the native one,
// the simulated bandwidth must not regress.
func TestCompareTunedBeatsNativeDispatch(t *testing.T) {
	procs := []int{129}
	sizes := []int{tune.LongMsgSize, 1 << 21}
	cfg := SimConfig{}
	table, _, err := AutoTuneSim(cfg, FamilyCandidates(), procs, sizes)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CompareTuned(cfg, table, procs, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(procs)*len(sizes) {
		t.Fatalf("want %d rows, got %d", len(procs)*len(sizes), len(rows))
	}
	for _, r := range rows {
		if r.NativeAlgo != tune.RingNative {
			t.Errorf("native dispatch at (p=%d, n=%d) = %q, want %q", r.P, r.N, r.NativeAlgo, tune.RingNative)
		}
		if r.TunedAlgo != tune.RingOpt {
			t.Errorf("tuned dispatch at (p=%d, n=%d) = %q, want %q", r.P, r.N, r.TunedAlgo, tune.RingOpt)
		}
		if r.Speedup <= 1.0 {
			t.Errorf("tuned ring must beat native at (p=%d, n=%d), speedup %.3f", r.P, r.N, r.Speedup)
		}
	}
	if out := FormatTunedRows(rows); out == "" {
		t.Error("empty report")
	}
}

// TestMeasureRealRegistryPaths drives the real-engine harness through the
// new Algo and Tuner configuration paths at tiny scale.
func TestMeasureRealRegistryPaths(t *testing.T) {
	base := RealConfig{NP: 4, Iterations: 2}

	algoCfg := base
	algoCfg.Algo = tune.Chain
	algoCfg.SegSize = 256
	if _, err := MeasureReal(algoCfg, 1024); err != nil {
		t.Errorf("Algo path: %v", err)
	}

	badCfg := base
	badCfg.Algo = "no-such-algorithm"
	if _, err := MeasureReal(badCfg, 1024); err == nil {
		t.Error("unknown Algo must fail")
	}

	tunerCfg := base
	tunerCfg.Tuner = tune.TableTuner{
		Table: &tune.Table{Rules: []tune.Rule{
			{Decision: tune.Decision{Algorithm: tune.RingOpt}},
		}},
	}
	if _, err := MeasureReal(tunerCfg, 1024); err != nil {
		t.Errorf("Tuner path: %v", err)
	}
}

// TestProgramForResolvesRegistry pins ProgramFor's error behavior.
func TestProgramForResolvesRegistry(t *testing.T) {
	if _, err := ProgramFor(tune.Decision{Algorithm: tune.RingOpt}, 10, 0, 4096); err != nil {
		t.Errorf("ring-opt: %v", err)
	}
	if _, err := ProgramFor(tune.Decision{Algorithm: "bogus"}, 10, 0, 4096); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if _, err := ProgramFor(tune.Decision{Algorithm: tune.SMP}, 10, 0, 4096); err == nil {
		t.Error("schedule-free algorithm must fail")
	}
	if _, err := ProgramFor(tune.Decision{Algorithm: tune.ScatterRdb}, 10, 0, 4096); err == nil {
		t.Error("rdb on non-pow2 must fail")
	}
}
