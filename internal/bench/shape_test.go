package bench

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// These tests assert the qualitative claims of the paper's evaluation —
// the "shape" criteria from DESIGN.md — against the simulated harness.
// They are regression guards for the model calibration: if a future
// change to the engine, the schedules or the model breaks an ordering
// the paper reports, these fail.

// shapeCfg uses moderate replication for stable steady-state numbers.
func shapeCfg() SimConfig {
	return SimConfig{Model: netsim.Hornet(), CoresPerNode: topology.HornetCoresPerNode, Warm: 2, Total: 6}
}

// TestShapeOptNeverLosesOnRingPath: across the evaluation grid, the tuned
// broadcast is at least as fast as the native one (paper: "consistently
// outperforms").
func TestShapeOptNeverLosesOnRingPath(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	cfg := shapeCfg()
	for _, p := range []int{9, 16, 64, 129} {
		for _, n := range []int{12288, 524288, 1 << 21} {
			nat, err := MeasureSim(cfg, Native, p, n)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := MeasureSim(cfg, Opt, p, n)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Seconds > nat.Seconds*1.0001 {
				t.Errorf("p=%d n=%d: opt %.4g s slower than native %.4g s", p, n, opt.Seconds, nat.Seconds)
			}
		}
	}
}

// TestShapeFig6PeakGainOrdering: the peak-bandwidth gain grows with the
// process count (paper: 16 -> 64 -> 256 gives ~10%, 13%, 16%).
func TestShapeFig6PeakGainOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	cfg := shapeCfg()
	var peakGains []float64
	for _, np := range []int{16, 64, 256} {
		fig, err := Fig6(cfg, np, Fig6Sizes())
		if err != nil {
			t.Fatal(err)
		}
		_, peak, err := Improvement(fig)
		if err != nil {
			t.Fatal(err)
		}
		if peak <= 0 {
			t.Fatalf("np=%d: nonpositive peak gain %.2f%%", np, peak)
		}
		peakGains = append(peakGains, peak)
	}
	if !(peakGains[0] < peakGains[1] && peakGains[1] < peakGains[2]) {
		t.Fatalf("peak gains not increasing with np: %v", peakGains)
	}
}

// TestShapeFig6aCapacityDrop: the np=16 curve drops past the modelled
// capacity threshold (paper: "drop ... starts from around 4MB").
func TestShapeFig6aCapacityDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	cfg := shapeCfg()
	before, err := MeasureSim(cfg, Opt, 16, 1<<21) // 2 MB: inside capacity
	if err != nil {
		t.Fatal(err)
	}
	after, err := MeasureSim(cfg, Opt, 16, 1<<23) // 8 MB: beyond capacity
	if err != nil {
		t.Fatal(err)
	}
	if after.MBps >= before.MBps {
		t.Fatalf("no capacity drop: %.0f -> %.0f MB/s", before.MBps, after.MBps)
	}
}

// TestShapeFig7SmallMessagesDominate: the 12288-byte speedup series lies
// clearly above the long-message series at every process count, and all
// speedups are at least 1 (paper Figure 7's dominant qualitative facts).
func TestShapeFig7SmallMessagesDominate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	cfg := shapeCfg()
	fig, err := Fig7(cfg, Fig7Procs(), Fig7Sizes())
	if err != nil {
		t.Fatal(err)
	}
	small, big1, big2 := fig.Lines[0], fig.Lines[1], fig.Lines[2]
	for i := range small.Y {
		if small.Y[i] < 1 || big1.Y[i] < 1 || big2.Y[i] < 1 {
			t.Fatalf("speedup below 1 at np=%d: %v %v %v", small.X[i], small.Y[i], big1.Y[i], big2.Y[i])
		}
		if small.Y[i] <= big1.Y[i] || small.Y[i] <= big2.Y[i] {
			t.Fatalf("12288-byte series not dominant at np=%d: %v vs %v/%v",
				small.X[i], small.Y[i], big1.Y[i], big2.Y[i])
		}
	}
	// Paper: ">2x for 9, 17 and 33 processes" at 12288 bytes — we accept
	// >= 1.8 to keep the guard robust to small calibration shifts.
	for i, p := range small.X {
		if p <= 33 && small.Y[i] < 1.8 {
			t.Fatalf("np=%d speedup %.2f below the paper's >2x regime", p, small.Y[i])
		}
	}
	// The two long-message series stay close to each other (paper: "they
	// show similar speedups").
	for i := range big1.Y {
		ratio := big1.Y[i] / big2.Y[i]
		if ratio < 0.85 || ratio > 1.18 {
			t.Fatalf("long-message series diverge at np=%d: %v vs %v", big1.X[i], big1.Y[i], big2.Y[i])
		}
	}
}

// TestShapeContentionDrivesIntraNodeGain: the ablation finding — for the
// single-node case (Figure 6(a)'s np=16) the tuned ring's advantage is a
// memory-channel contention effect: removing contention collapses the
// gain to nearly nothing. (For multi-node runs a second mechanism —
// reduced rendezvous synchronization coupling and cross-iteration
// pipelining — survives without contention; see EXPERIMENTS.md.)
func TestShapeContentionDrivesIntraNodeGain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	const np, n = 16, 1 << 20
	with := shapeCfg()
	gainWith := fig6Gain(t, with, np, n)

	without := shapeCfg()
	m := netsim.Hornet()
	m.NoContention = true
	without.Model = m
	gainWithout := fig6Gain(t, without, np, n)

	if gainWithout >= gainWith {
		t.Fatalf("removing contention did not shrink the intra-node gain: %.2f%% -> %.2f%%", gainWith, gainWithout)
	}
	if gainWithout > 3 {
		t.Fatalf("intra-node gain without contention should be marginal, got %.2f%%", gainWithout)
	}
	if gainWith < 5 {
		t.Fatalf("intra-node gain with contention should be substantial, got %.2f%%", gainWith)
	}
}

func fig6Gain(t *testing.T, cfg SimConfig, np, n int) float64 {
	t.Helper()
	nat, err := MeasureSim(cfg, Native, np, n)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := MeasureSim(cfg, Opt, np, n)
	if err != nil {
		t.Fatal(err)
	}
	return 100 * (nat.Seconds - opt.Seconds) / nat.Seconds
}

// TestShapeLakiSameTrend: the second calibration preserves the ordering
// facts (paper: "basically deliver the same bandwidth performance trend").
func TestShapeLakiSameTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sweeps")
	}
	cfg := SimConfig{Model: netsim.Laki(), CoresPerNode: topology.LakiCoresPerNode, Warm: 2, Total: 6}
	for _, p := range []int{9, 16, 33} {
		for _, n := range []int{12288, 1 << 20} {
			nat, err := MeasureSim(cfg, Native, p, n)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := MeasureSim(cfg, Opt, p, n)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Seconds > nat.Seconds*1.0001 {
				t.Errorf("laki p=%d n=%d: opt slower than native", p, n)
			}
		}
	}
}
