package bench

// PaperClaim records a quantitative statement from the paper's evaluation
// section, used by EXPERIMENTS.md and the shape checks in the test suite.
type PaperClaim struct {
	// Experiment identifies the figure or table.
	Experiment string
	// Statement quotes or paraphrases the claim.
	Statement string
	// Check describes the shape criterion the reproduction asserts.
	Check string
}

// PaperClaims is the index of everything the paper reports that the
// reproduction checks against.
var PaperClaims = []PaperClaim{
	{
		Experiment: "SecIV-counts",
		Statement:  "P=8: ring transfers 56 -> 44 (reduced by 12); P=10: 90 -> 75 (reduced by 15)",
		Check:      "exact equality from the analytic model, the schedules, and traced execution",
	},
	{
		Experiment: "fig6a",
		Statement:  "np=16 (all intra-node): opt up to 12% faster (at 512 KB); peaks 2748 vs 2623 MB/s (about +10%); bandwidth drops beyond ~4 MB (memory capacity)",
		Check:      "opt >= native at every size; single-digit-to-low-teens percent gain; a drop appears past the cache-capacity threshold",
	},
	{
		Experiment: "fig6b",
		Statement:  "np=64 (intra+inter): bandwidth up to 41% higher; peak bandwidth +13%",
		Check:      "opt >= native; the maximum gain exceeds the np=16 maximum gain",
	},
	{
		Experiment: "fig6c",
		Statement:  "np=256: up to 20% gain; peak +16%; a dip around 3 MB from cache effects",
		Check:      "opt >= native; peak-bandwidth gain largest of the three process counts",
	},
	{
		Experiment: "fig7",
		Statement:  "non-power-of-two process counts: opt consistently faster; ms=12288 more than 2x for 9/17/33 procs, dropping sharply at 65; ms=524287 and ms=1048576 similar, stable, above 1",
		Check:      "all speedups >= 1; the 12288-byte series dominates at small np and decays with np; the two larger sizes stay close to each other",
	},
	{
		Experiment: "fig8",
		Statement:  "np=129, 12288..2560000 bytes: bandwidth grows steadily, no protocol kink, opt up to 30% better",
		Check:      "both curves monotone non-decreasing (no kink); opt >= native with a double-digit maximum gain",
	},
	{
		Experiment: "user-level",
		Statement:  "barrier-synchronized, 100 iterations, bandwidth in base-2 MB/s",
		Check:      "cmd/bcastbench implements the identical protocol on the real engine",
	},
}

// Paper peak bandwidths for Figure 6(a) (MB/s, base-2), recorded for the
// EXPERIMENTS.md comparison table. Absolute values are testbed-specific;
// the reproduction matches their order of magnitude and ordering only.
const (
	PaperFig6aPeakNative = 2623.0
	PaperFig6aPeakOpt    = 2748.0
)
