package measure

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/tune"
)

// Default measurement protocol: enough repetitions for the robust
// statistics to reject a straggler, few enough that a full tuning grid
// stays interactive.
const (
	// DefaultWarmup is the number of untimed iterations that precede the
	// samples (first-touch page faults, cache warming, goroutine spin-up).
	DefaultWarmup = 2
	// DefaultReps is the number of timed repetitions per grid point.
	DefaultReps = 5
	// DefaultTimeout bounds one grid point's world wall-clock.
	DefaultTimeout = 2 * time.Minute
)

// EngineMeasurer measures candidates by executing them on the real
// in-process engine (internal/engine): every Measure call boots a fresh
// engine.World whose topology realizes Place, runs the candidate's
// registered implementation on the configured rank-execution substrate
// (Executor/MaxWorkers), and times repetitions between barriers. It
// implements tune.Measurer, so it plugs directly into tune.AutoTune and
// — via a factory closing over Place — into tune.AutoTuneSweep's
// placement sweep.
//
// Unlike tune.SimMeasurer this measures wall-clock time on the host
// actually running the broadcast, so results are machine-dependent and
// noisy; Warmup, Reps and Stat control the protocol that tames the
// noise. The zero value measures on a single node with the default
// protocol.
type EngineMeasurer struct {
	// Place selects the rank placement; a zero Place (empty Kind) puts
	// every rank on one node.
	Place tune.Placement
	// Warmup and Reps are the untimed and timed iteration counts
	// (defaults DefaultWarmup, DefaultReps; a negative Warmup means
	// none).
	Warmup, Reps int
	// Root is the broadcast root.
	Root int
	// EagerLimit overrides the engine's eager/rendezvous threshold
	// (0 = engine default, negative = rendezvous only).
	EagerLimit int
	// Stat selects the statistic reported to the tuner (default
	// StatTrimmed).
	Stat Stat
	// Timeout bounds one measurement's wall-clock (default
	// DefaultTimeout).
	Timeout time.Duration
	// Executor selects the engine's rank-execution substrate (default
	// engine.Goroutine). engine.Pooled bounds the runnable ranks to a
	// cooperative worker pool, which is what keeps large-np grids (p in
	// the hundreds) measurable instead of OS-scheduler noise.
	Executor engine.ExecPolicy
	// MaxWorkers bounds the pooled executor's worker count
	// (0 = GOMAXPROCS; pooled executor only).
	MaxWorkers int
	// Transport selects the engine's point-to-point substrate by name
	// (transport.ChanName — the default when empty — or
	// transport.UDPName, which routes every message through a loopback
	// UDP socket; see internal/transport). Each measurement boots its
	// own transport and closes it with the world.
	Transport string
	// Log, when non-nil, receives the raw samples of every measurement.
	Log *SampleLog
}

// Protocol returns the effective measurement protocol after defaulting —
// the warmup and repetition counts and statistic a Measure call will
// actually use. Provenance strings (table descriptions, reports) must be
// built from this, not from the raw fields, so they cannot drift from
// the protocol run.
func (m EngineMeasurer) Protocol() (warmup, reps int, stat Stat) {
	m = m.fill()
	return m.Warmup, m.Reps, statOrDefault(m.Stat)
}

// ExecLabel names the effective rank-execution substrate a Measure call
// will boot, worker clamp applied ("goroutine", "pooled(8)") — the
// executor half of the provenance Protocol covers.
func (m EngineMeasurer) ExecLabel() string {
	return engine.ExecLabel(m.Executor, m.MaxWorkers)
}

// TransportLabel names the effective point-to-point substrate a Measure
// call will boot ("chan", "udp") — the transport half of the same
// provenance.
func (m EngineMeasurer) TransportLabel() string {
	if m.Transport == "" {
		return transport.ChanName
	}
	return m.Transport
}

func (m EngineMeasurer) fill() EngineMeasurer {
	if m.Warmup < 0 {
		m.Warmup = 0
	} else if m.Warmup == 0 {
		m.Warmup = DefaultWarmup
	}
	if m.Reps <= 0 {
		m.Reps = DefaultReps
	}
	if m.Timeout <= 0 {
		m.Timeout = DefaultTimeout
	}
	return m
}

func (m EngineMeasurer) topo(p int) (*topology.Map, error) {
	if m.Place.Kind == "" {
		return topology.SingleNode(p), nil
	}
	return m.Place.Map(p)
}

// ProgramFree implements tune.ProgramFree: this measurer executes the
// registered implementation by name, so candidates without a static
// schedule (the SMP broadcasts) are measurable on its grids too.
func (m EngineMeasurer) ProgramFree() bool { return true }

// Env implements tune.Measurer. The environment is derived from the
// realized topology map, exactly as a runtime broadcast over that map
// would present it. As with tune.SimMeasurer, an invalid Place cannot be
// reported through this signature: the environment degrades to (Bytes,
// Procs) and the underlying error surfaces from the next Measure call.
func (m EngineMeasurer) Env(p, n int) tune.Env {
	topo, err := m.topo(p)
	if err != nil {
		return tune.Env{Bytes: n, Procs: p}
	}
	return tune.EnvOf(n, p, topo)
}

// Measure implements tune.Measurer: it executes the candidate's
// registered implementation (resolved by name — no static schedule is
// needed, the engine runs the real code) and returns the selected robust
// statistic over the timed repetitions.
func (m EngineMeasurer) Measure(c tune.Candidate, p, n int) (float64, error) {
	m = m.fill()
	// An unknown statistic must fail here, not silently measure as the
	// default while the sample log and provenance record the bogus name.
	stat, err := ParseStat(string(m.Stat))
	if err != nil {
		return 0, err
	}
	samples, err := m.run(tune.Decision{Algorithm: c.Name, SegSize: c.SegSize}, p, n)
	if err != nil {
		return 0, fmt.Errorf("measure: %q at (p=%d, n=%d): %w", c.Name, p, n, err)
	}
	sum, err := Summarize(samples)
	if err != nil {
		return 0, err
	}
	sec := stat.Of(sum)
	if m.Log != nil {
		m.Log.Add(Record{
			Algorithm: c.Name,
			SegSize:   c.SegSize,
			Procs:     p,
			Bytes:     n,
			Placement: m.placementLabel(),
			Warmup:    m.Warmup,
			Reps:      m.Reps,
			Stat:      string(stat),
			Exec:      m.ExecLabel(),
			Transport: m.TransportLabel(),
			Seconds:   sec,
			Samples:   samples,
			Summary:   sum,
		})
	}
	return sec, nil
}

func (m EngineMeasurer) placementLabel() string {
	if m.Place.Kind == "" {
		return ""
	}
	return m.Place.String()
}

func statOrDefault(s Stat) Stat {
	if s == "" {
		return StatTrimmed
	}
	return s
}

// run executes warmup + reps broadcasts on a fresh world and returns one
// sample per timed repetition: the slowest rank's time for that
// repetition. Every repetition starts from a barrier, so ranks begin
// together and the maximum over ranks measures the collective's global
// completion — per-rank completion times differ (the root finishes its
// sends before leaves finish receiving), and timing only the root would
// systematically favor root-early algorithms.
func (m EngineMeasurer) run(d tune.Decision, p, n int) ([]float64, error) {
	if p <= 0 {
		return nil, fmt.Errorf("bad process count %d", p)
	}
	if n < 0 {
		return nil, fmt.Errorf("bad message size %d", n)
	}
	if _, ok := collective.Lookup(d.Algorithm); !ok {
		return nil, fmt.Errorf("unknown algorithm (registered: %v)", collective.Names())
	}
	topo, err := m.topo(p)
	if err != nil {
		return nil, err
	}
	trans, err := transport.New(m.Transport, p)
	if err != nil {
		return nil, err
	}
	defer trans.Close()
	w, err := engine.NewWorld(engine.Options{
		NP:         p,
		Topology:   topo,
		EagerLimit: m.EagerLimit,
		Timeout:    m.Timeout,
		Executor:   m.Executor,
		MaxWorkers: m.MaxWorkers,
		Transport:  trans,
	})
	if err != nil {
		return nil, err
	}

	// perRank[r] is written only by rank r's goroutine and read after
	// Run returns.
	perRank := make([][]float64, p)
	err = w.Run(func(c mpi.Comm) error {
		buf := make([]byte, n)
		if c.Rank() == m.Root {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		times := make([]float64, m.Reps)
		for it := 0; it < m.Warmup+m.Reps; it++ {
			if err := collective.Barrier(c); err != nil {
				return err
			}
			start := time.Now()
			if err := collective.RunDecision(c, buf, m.Root, d); err != nil {
				return err
			}
			if it >= m.Warmup {
				times[it-m.Warmup] = time.Since(start).Seconds()
			}
		}
		perRank[c.Rank()] = times
		return nil
	})
	if err != nil {
		return nil, err
	}

	samples := make([]float64, m.Reps)
	for rep := range samples {
		for r := 0; r < p; r++ {
			if t := perRank[r][rep]; t > samples[rep] {
				samples[rep] = t
			}
		}
	}
	return samples, nil
}

// Factory returns the measurer-factory closure tune.AutoTuneSweep
// expects, rebinding a copy of m to each swept placement.
func (m EngineMeasurer) Factory() func(tune.Placement) tune.Measurer {
	return func(pl tune.Placement) tune.Measurer {
		mm := m
		mm.Place = pl
		return mm
	}
}
