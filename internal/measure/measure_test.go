package measure

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/topology"
	"repro/internal/tune"
)

// cand builds a minimal candidate for a registry name; EngineMeasurer
// resolves by name, so no Program is needed.
func cand(name string, seg int) tune.Candidate {
	return tune.Candidate{Name: name, SegSize: seg}
}

// TestEngineMeasurerSmoke measures a real broadcast at tiny scale and
// checks the timings are plausible: positive, and monotone in message
// size across a 256x size gap (wall-clock noise cannot plausibly make a
// 1 KiB broadcast slower than a 256 KiB one under the min statistic).
func TestEngineMeasurerSmoke(t *testing.T) {
	m := EngineMeasurer{Warmup: 1, Reps: 3, Stat: StatMin}
	small, err := m.Measure(cand(tune.RingOpt, 0), 4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	large, err := m.Measure(cand(tune.RingOpt, 0), 4, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 || large <= 0 {
		t.Fatalf("non-positive timings: small=%v large=%v", small, large)
	}
	if large <= small {
		t.Errorf("256 KiB (%v s) not slower than 1 KiB (%v s)", large, small)
	}
}

// TestEngineMeasurerHonorsPlacement: the measurement environment must
// reflect the realized placement, and a placed measurement must run
// (multi-node placements route through the engine's topology).
func TestEngineMeasurerHonorsPlacement(t *testing.T) {
	m := EngineMeasurer{
		Place:  tune.Placement{Kind: topology.KindBlocked, CoresPerNode: 2},
		Warmup: 1, Reps: 2, Stat: StatMin,
	}
	e := m.Env(4, 1<<10)
	if e.Placement != topology.KindBlocked || e.NumNodes != 2 || e.CoresPerNode != 2 {
		t.Fatalf("Env = %+v, want blocked placement over 2 nodes", e)
	}
	if _, err := m.Measure(cand(tune.RingNative, 0), 4, 1<<10); err != nil {
		t.Fatal(err)
	}

	// The placement must also gate capability-constrained algorithms:
	// an SMP broadcast is runnable here but not on a single node.
	if _, err := m.Measure(cand(tune.SMP, 0), 4, 1<<10); err != nil {
		t.Errorf("smp on 2 nodes: %v", err)
	}
	single := EngineMeasurer{Warmup: 1, Reps: 2}
	if _, err := single.Measure(cand(tune.SMP, 0), 4, 1<<10); err == nil {
		t.Error("smp on a single node: want capability error")
	}
}

// TestEngineMeasurerSegmented runs a segmented candidate with an awkward
// segment size end to end.
func TestEngineMeasurerSegmented(t *testing.T) {
	m := EngineMeasurer{Warmup: 1, Reps: 2, Stat: StatMedian}
	if _, err := m.Measure(cand(tune.RingOptSeg, 512), 5, 4096+3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Measure(cand(tune.RingOptSegNB, 512), 5, 4096+3); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMeasurerErrors(t *testing.T) {
	m := EngineMeasurer{Warmup: 1, Reps: 2}
	if _, err := m.Measure(cand("no-such-algorithm", 0), 4, 64); err == nil {
		t.Error("unknown algorithm: want error")
	}
	badStat := EngineMeasurer{Warmup: 1, Reps: 2, Stat: "mean"}
	if _, err := badStat.Measure(cand(tune.RingOpt, 0), 4, 64); err == nil {
		t.Error("unknown statistic: want error, not a silent default")
	}
	bad := EngineMeasurer{Place: tune.Placement{Kind: "blocked"}} // missing cores
	if _, err := bad.Measure(cand(tune.RingOpt, 0), 4, 64); err == nil {
		t.Error("invalid placement: want error")
	}
	if e := bad.Env(4, 64); e.Procs != 4 || e.Bytes != 64 || e.Placement != "" {
		t.Errorf("degraded Env = %+v, want bare (Bytes, Procs)", e)
	}
}

// TestSampleLogRoundTrip: measurements record raw samples, the log
// round-trips through JSON, and the recorded digest matches the value
// reported to the tuner.
func TestSampleLogRoundTrip(t *testing.T) {
	log := &SampleLog{}
	m := EngineMeasurer{
		Place:  tune.Placement{Kind: topology.KindBlocked, CoresPerNode: 2},
		Warmup: 1, Reps: 3, Stat: StatMin, Log: log,
	}
	sec, err := m.Measure(cand(tune.RingOpt, 0), 4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Records()
	if len(recs) != 1 {
		t.Fatalf("recorded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Algorithm != tune.RingOpt || r.Procs != 4 || r.Bytes != 1<<10 {
		t.Errorf("record key = %q/%d/%d", r.Algorithm, r.Procs, r.Bytes)
	}
	if r.Placement != "blocked:2" {
		t.Errorf("record placement = %q, want \"blocked:2\"", r.Placement)
	}
	if len(r.Samples) != 3 || r.Warmup != 1 || r.Reps != 3 || r.Stat != "min" {
		t.Errorf("record protocol = %+v", r)
	}
	if r.Seconds != sec || r.Summary.Min != sec {
		t.Errorf("record seconds %v / summary min %v, want both %v", r.Seconds, r.Summary.Min, sec)
	}

	path := filepath.Join(t.TempDir(), "samples.json")
	if err := log.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSampleLog(path)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Records()
	if len(got) != 1 || got[0].Algorithm != r.Algorithm || got[0].Seconds != r.Seconds ||
		len(got[0].Samples) != len(r.Samples) {
		t.Errorf("round-tripped record differs: %+v vs %+v", got[0], r)
	}
}

// TestAutoTuneOnEngine drives the real tuner loop end to end through the
// measurer-factory seam at tiny scale: the emitted table must validate
// and resolve, proving EngineMeasurer is a drop-in tune.Measurer.
func TestAutoTuneOnEngine(t *testing.T) {
	m := EngineMeasurer{Warmup: 1, Reps: 2, Stat: StatMin}
	var cands []tune.Candidate
	for _, c := range collective.Candidates() {
		if c.Name == tune.Binomial || c.Name == tune.RingOpt {
			cands = append(cands, c)
		}
	}
	table, winners, err := tune.AutoTuneSweep(cands, m.Factory(), tune.SweepConfig{
		Procs:      []int{4},
		Sizes:      []int{1 << 10, 1 << 14},
		Placements: []tune.Placement{{Kind: topology.KindBlocked, CoresPerNode: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(winners) != 2 {
		t.Fatalf("got %d winners, want 2", len(winners))
	}
	for _, w := range winners {
		if w.Seconds <= 0 {
			t.Errorf("winner at (p=%d, n=%d) has non-positive time", w.Procs, w.Bytes)
		}
		if w.Env.Placement != topology.KindBlocked {
			t.Errorf("winner env placement %q, want blocked", w.Env.Placement)
		}
	}
	e := tune.EnvOf(1<<10, 4, topology.Blocked(4, 2))
	if _, ok := table.Lookup(e); !ok {
		t.Errorf("table has no rule for the tuned environment %+v", e)
	}
}

// TestAutoTuneOnEngineMeasuresScheduleless: candidates without a static
// schedule (the SMP broadcasts) are measurable on the engine's grids —
// the tune.ProgramFree contract — and win when they are the only
// applicable candidate.
func TestAutoTuneOnEngineMeasuresScheduleless(t *testing.T) {
	m := EngineMeasurer{Warmup: 1, Reps: 2, Stat: StatMin}
	var smp tune.Candidate
	for _, c := range collective.AllCandidates() {
		if c.Name == tune.SMP {
			smp = c
		}
	}
	if smp.Name == "" {
		t.Fatal("smp not in AllCandidates")
	}
	if smp.Program != nil {
		t.Fatal("smp unexpectedly grew a static schedule; test needs updating")
	}
	_, winners, err := tune.AutoTuneSweep([]tune.Candidate{smp}, m.Factory(), tune.SweepConfig{
		Procs:      []int{4},
		Sizes:      []int{1 << 12},
		Placements: []tune.Placement{{Kind: topology.KindBlocked, CoresPerNode: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 1 || winners[0].Decision.Algorithm != tune.SMP {
		t.Fatalf("winners = %+v, want one smp win", winners)
	}
	if winners[0].Seconds <= 0 {
		t.Errorf("non-positive smp timing %v", winners[0].Seconds)
	}
}

// TestEngineMeasurerPooledExecutor measures on the pooled substrate:
// the measurement must succeed with more ranks than workers, and the
// sample log must record which substrate produced each sample.
func TestEngineMeasurerPooledExecutor(t *testing.T) {
	log := &SampleLog{}
	m := EngineMeasurer{
		Warmup: 1, Reps: 2, Stat: StatMin,
		Executor: engine.Pooled, MaxWorkers: 2,
		Log: log,
	}
	// The pool is clamped to GOMAXPROCS, so derive the label, don't pin it.
	want := fmt.Sprintf("pooled(%d)", engine.PooledWorkers(2))
	if got := m.ExecLabel(); got != want {
		t.Fatalf("ExecLabel = %q, want %s", got, want)
	}
	sec, err := m.Measure(cand(tune.RingOpt, 0), 16, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("non-positive pooled timing %v", sec)
	}
	recs := log.Records()
	if len(recs) != 1 || recs[0].Exec != want {
		t.Fatalf("sample log records %+v lack pooled provenance", recs)
	}

	// The default substrate must label itself too.
	d := EngineMeasurer{}
	if got := d.ExecLabel(); got != "goroutine" {
		t.Fatalf("default ExecLabel = %q, want goroutine", got)
	}
}

// TestEngineMeasurerRejectsBadWorkers: a negative worker bound must fail
// the measurement loudly, not fall back to a different substrate.
func TestEngineMeasurerRejectsBadWorkers(t *testing.T) {
	m := EngineMeasurer{Executor: engine.Pooled, MaxWorkers: -3}
	if _, err := m.Measure(cand(tune.RingOpt, 0), 4, 1<<10); err == nil {
		t.Fatal("negative MaxWorkers measured successfully")
	}
}
