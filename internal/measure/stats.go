package measure

import (
	"fmt"
	"math"
	"sort"
)

// madScale converts a median absolute deviation into a consistent
// estimate of the standard deviation for normally distributed samples
// (1 / Phi^-1(3/4)).
const madScale = 1.4826

// madCutoff is the rejection threshold in scaled-MAD units: a sample
// farther than this many robust standard deviations from the median is
// an outlier.
const madCutoff = 3.0

// Summary is the statistical digest of one measurement's repetition
// samples. All times are seconds.
type Summary struct {
	// N is the number of samples summarized.
	N int `json:"n"`
	// Min and Max are the sample extremes.
	Min float64 `json:"min_sec"`
	Max float64 `json:"max_sec"`
	// Mean is the plain arithmetic mean of all samples.
	Mean float64 `json:"mean_sec"`
	// Median is the sample median (midpoint average for even N).
	Median float64 `json:"median_sec"`
	// TrimmedMean is the mean of the samples surviving MAD-based outlier
	// rejection — the default statistic reported to the tuner.
	TrimmedMean float64 `json:"trimmed_mean_sec"`
	// Rejected counts the samples discarded as outliers.
	Rejected int `json:"rejected,omitempty"`
}

// Summarize reduces raw samples to a Summary. The outlier rule is the
// scaled-MAD criterion: a sample is rejected when its distance from the
// median exceeds madCutoff robust standard deviations (madScale * MAD).
// A zero MAD (at least half the samples identical) rejects nothing, so
// perfectly repeatable runs — and deterministic tests — pass through
// untouched. Summarize is deterministic: the same samples in any order
// yield the same Summary.
func Summarize(samples []float64) (Summary, error) {
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("measure: no samples to summarize")
	}
	for i, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return Summary{}, fmt.Errorf("measure: sample %d is %v", i, s)
		}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)

	sum := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean(sorted),
		Median: medianSorted(sorted),
	}

	dev := make([]float64, len(sorted))
	for i, s := range sorted {
		dev[i] = math.Abs(s - sum.Median)
	}
	sort.Float64s(dev)
	mad := medianSorted(dev)

	if mad == 0 {
		sum.TrimmedMean = sum.Mean
		return sum, nil
	}
	cut := madCutoff * madScale * mad
	var kept []float64
	for _, s := range sorted {
		if math.Abs(s-sum.Median) <= cut {
			kept = append(kept, s)
		}
	}
	sum.Rejected = sum.N - len(kept)
	sum.TrimmedMean = mean(kept)
	return sum, nil
}

func mean(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// medianSorted returns the median of an already-sorted non-empty slice.
func medianSorted(xs []float64) float64 {
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// Stat selects which Summary statistic a measurement reports to the
// tuner.
type Stat string

// The reportable statistics. StatTrimmed is the default: it tracks the
// central tendency like the mean but survives scheduler hiccups; StatMin
// is the classic noise floor ("the fastest the machine can go"); and
// StatMedian sits between the two.
const (
	StatMin     Stat = "min"
	StatMedian  Stat = "median"
	StatTrimmed Stat = "trimmed"
)

// ParseStat maps a CLI name to a Stat; the empty string selects the
// default (StatTrimmed).
func ParseStat(s string) (Stat, error) {
	switch Stat(s) {
	case "":
		return StatTrimmed, nil
	case StatMin, StatMedian, StatTrimmed:
		return Stat(s), nil
	default:
		return "", fmt.Errorf("measure: unknown statistic %q (min|median|trimmed)", s)
	}
}

// Of extracts the selected statistic from a summary; an unset Stat reads
// as StatTrimmed.
func (s Stat) Of(sum Summary) float64 {
	switch s {
	case StatMin:
		return sum.Min
	case StatMedian:
		return sum.Median
	default:
		return sum.TrimmedMean
	}
}
