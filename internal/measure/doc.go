// Package measure is the wall-clock measurement subsystem: it benchmarks
// registry-named broadcasts on the real in-process engine and feeds the
// results to the auto-tuner, grounding algorithm selection in measured
// runtimes on the communication substrate that actually executes them —
// with the netsim cost model demoted to a cross-check (internal/bench's
// CrossCheck compares the two over the same grid).
//
// The pieces:
//
//   - EngineMeasurer implements tune.Measurer: per measurement it boots
//     one engine.World whose topology realizes a tune.Placement, runs the
//     named broadcast on the configured rank-execution substrate (the
//     Executor/MaxWorkers fields select the engine's goroutine-per-rank
//     default or the pooled cooperative scheduler — the latter is what
//     keeps np-in-the-hundreds grids measurable) with barrier-synchronized
//     timing (every repetition starts from a barrier; the sample is the
//     slowest rank's completion), discards warmup iterations, and reduces
//     the repetition samples with a robust statistic. It plugs straight
//     into tune.AutoTune and tune.AutoTuneSweep's measurer-factory seam.
//   - Summarize is the deterministic statistics kernel: min, max, mean,
//     median, and a trimmed mean after MAD-based outlier rejection. Stat
//     selects which of those a measurement reports to the tuner.
//   - SampleLog persists every raw repetition sample as JSON, so a tuning
//     run is reproducible and two runs are diffable sample-by-sample.
//
// Wall-clock numbers from a shared machine are noisy where the virtual
// time of internal/netsim is exact; the warmup/repetition protocol and
// the robust reduction exist to keep the derived crossover points stable
// anyway, following the measurement-driven tuning literature.
package measure
