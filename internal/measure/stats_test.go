package measure

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSummarizeBasics(t *testing.T) {
	// Odd count, no outliers: MAD of {1..5} around median 3 is 1, cutoff
	// 3*1.4826 ≈ 4.45, so nothing is rejected.
	sum, err := Summarize([]float64{3, 1, 4, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 5 || !approx(sum.Min, 1) || !approx(sum.Max, 5) {
		t.Errorf("N/Min/Max = %d/%v/%v, want 5/1/5", sum.N, sum.Min, sum.Max)
	}
	if !approx(sum.Mean, 3) || !approx(sum.Median, 3) {
		t.Errorf("Mean/Median = %v/%v, want 3/3", sum.Mean, sum.Median)
	}
	if sum.Rejected != 0 || !approx(sum.TrimmedMean, 3) {
		t.Errorf("TrimmedMean/Rejected = %v/%d, want 3/0", sum.TrimmedMean, sum.Rejected)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	sum, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sum.Median, 2.5) {
		t.Errorf("Median = %v, want 2.5", sum.Median)
	}
}

func TestSummarizeRejectsOutlier(t *testing.T) {
	// Tight cluster around 1.0 plus one scheduler hiccup at 50: median
	// 1.005, MAD = 0.015, cutoff ≈ 0.067, so exactly the hiccup is
	// rejected and the trimmed mean recovers the cluster average.
	samples := []float64{0.99, 1.00, 1.01, 1.02, 0.98, 50}
	sum, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1 (summary %+v)", sum.Rejected, sum)
	}
	if !approx(sum.TrimmedMean, 1.0) {
		t.Errorf("TrimmedMean = %v, want 1.0", sum.TrimmedMean)
	}
	// The plain mean is dragged far off by the outlier; the robust
	// statistics are not.
	if sum.Mean < 9 {
		t.Errorf("Mean = %v, expected it polluted by the outlier", sum.Mean)
	}
	if !approx(sum.Median, 1.005) {
		t.Errorf("Median = %v, want 1.005", sum.Median)
	}
}

func TestSummarizeZeroMADKeepsAll(t *testing.T) {
	// More than half the samples identical makes the MAD zero; the rule
	// must then reject nothing (not everything).
	sum, err := Summarize([]float64{2, 2, 2, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rejected != 0 {
		t.Errorf("Rejected = %d, want 0", sum.Rejected)
	}
	if !approx(sum.TrimmedMean, 3) {
		t.Errorf("TrimmedMean = %v, want 3 (plain mean)", sum.TrimmedMean)
	}
}

func TestSummarizeOrderIndependent(t *testing.T) {
	a, err := Summarize([]float64{5, 1, 9, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Summarize([]float64{1, 1, 1, 1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("summaries differ by order: %+v vs %+v", a, b)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty samples: want error")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample: want error")
	}
	if _, err := Summarize([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf sample: want error")
	}
}

func TestStatSelection(t *testing.T) {
	sum := Summary{Min: 1, Median: 2, TrimmedMean: 3}
	cases := []struct {
		stat Stat
		want float64
	}{
		{StatMin, 1},
		{StatMedian, 2},
		{StatTrimmed, 3},
		{Stat(""), 3}, // zero value reads as the default
	}
	for _, tc := range cases {
		if got := tc.stat.Of(sum); !approx(got, tc.want) {
			t.Errorf("Stat(%q).Of = %v, want %v", tc.stat, got, tc.want)
		}
	}
}

func TestParseStat(t *testing.T) {
	for _, ok := range []string{"", "min", "median", "trimmed"} {
		if _, err := ParseStat(ok); err != nil {
			t.Errorf("ParseStat(%q): %v", ok, err)
		}
	}
	if s, err := ParseStat(""); err != nil || s != StatTrimmed {
		t.Errorf("ParseStat(\"\") = (%q, %v), want default %q", s, err, StatTrimmed)
	}
	if _, err := ParseStat("mode"); err == nil {
		t.Error("ParseStat(\"mode\"): want error")
	}
}
