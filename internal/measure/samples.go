package measure

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record is the raw outcome of one measurement: the full measurement key
// (algorithm, parameters, grid point, placement, protocol) plus every
// repetition sample and its digest. Persisting records makes a tuning
// run reproducible — the derived table can be re-checked from the
// samples without re-running anything — and two runs diffable.
type Record struct {
	// Algorithm and SegSize identify the measured candidate.
	Algorithm string `json:"algorithm"`
	SegSize   int    `json:"seg_size,omitempty"`
	// Procs and Bytes are the grid point.
	Procs int `json:"procs"`
	Bytes int `json:"bytes"`
	// Placement is the swept placement in CLI syntax ("" = single node).
	Placement string `json:"placement,omitempty"`
	// Warmup and Reps record the measurement protocol.
	Warmup int `json:"warmup"`
	Reps   int `json:"reps"`
	// Stat names the statistic reported to the tuner and Seconds is its
	// value — the number the winner selection saw.
	Stat    string  `json:"stat"`
	Seconds float64 `json:"seconds"`
	// Exec names the rank-execution substrate the world ran on
	// ("goroutine", "pooled(8)") — samples from different substrates are
	// not comparable, so the log must say which produced each record.
	Exec string `json:"exec,omitempty"`
	// Transport names the point-to-point substrate ("chan", "udp"):
	// wall-clock over a real socket is not comparable to the in-process
	// path, so it is part of the measurement key too.
	Transport string `json:"transport,omitempty"`
	// Samples are the per-repetition times (slowest rank per repetition).
	Samples []float64 `json:"samples_sec"`
	// Summary is the robust digest of Samples.
	Summary Summary `json:"summary"`
}

// SampleLog collects the raw records of a measurement run. The zero
// value is ready to use; Add is safe for concurrent use.
type SampleLog struct {
	mu      sync.Mutex
	records []Record
}

// Add appends one record.
func (l *SampleLog) Add(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, r)
}

// Records returns a copy of the recorded measurements in insertion
// order (the tuner's deterministic grid order).
func (l *SampleLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// JSON serializes the log, indented for human inspection and diffing.
func (l *SampleLog) JSON() ([]byte, error) {
	return json.MarshalIndent(l.Records(), "", "  ")
}

// Save writes the log as a JSON array of records.
func (l *SampleLog) Save(path string) error {
	data, err := l.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSampleLog reads a log written by Save.
func LoadSampleLog(path string) (*SampleLog, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("measure: load samples: %w", err)
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("measure: parse samples: %w", err)
	}
	return &SampleLog{records: records}, nil
}
