package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalSetBasic(t *testing.T) {
	s := NewIntervalSet()
	if s.Total() != 0 || s.String() != "{}" {
		t.Fatalf("empty set: total=%d str=%s", s.Total(), s)
	}
	s.Add(10, 20)
	if !s.Contains(10, 20) || s.Contains(9, 20) || s.Contains(10, 21) {
		t.Fatalf("containment wrong after Add(10,20): %s", s)
	}
	if s.Total() != 10 {
		t.Fatalf("total=%d want 10", s.Total())
	}
}

func TestIntervalSetMergeAdjacent(t *testing.T) {
	s := NewIntervalSet()
	s.Add(0, 4)
	s.Add(4, 8) // adjacent: must merge
	if got := len(s.Intervals()); got != 1 {
		t.Fatalf("adjacent intervals not merged: %s", s)
	}
	if !s.Contains(0, 8) {
		t.Fatalf("missing merged range: %s", s)
	}
}

func TestIntervalSetMergeOverlap(t *testing.T) {
	s := NewIntervalSet()
	s.Add(0, 10)
	s.Add(5, 15)
	s.Add(20, 30)
	if got := len(s.Intervals()); got != 2 {
		t.Fatalf("want 2 intervals before bridge, got %s", s)
	}
	if s.Contains(15, 20) {
		t.Fatalf("gap [15,20) must not be covered: %s", s)
	}
	s.Add(12, 22) // bridges the gap: everything merges into [0,30)
	if got := len(s.Intervals()); got != 1 {
		t.Fatalf("want 1 interval after bridge, got %s", s)
	}
	if !s.Contains(0, 30) {
		t.Fatalf("unexpected coverage: %s", s)
	}
}

func TestIntervalSetDisjoint(t *testing.T) {
	s := NewIntervalSet(Interval{0, 2}, Interval{8, 10}, Interval{4, 6})
	ivs := s.Intervals()
	want := []Interval{{0, 2}, {4, 6}, {8, 10}}
	if len(ivs) != len(want) {
		t.Fatalf("got %s", s)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("interval %d = %v want %v", i, ivs[i], want[i])
		}
	}
	if s.Contains(1, 5) {
		t.Fatalf("gap should not be contained: %s", s)
	}
}

func TestIntervalSetEmptyAdd(t *testing.T) {
	s := NewIntervalSet()
	s.Add(5, 5)
	s.Add(7, 3)
	if s.Total() != 0 {
		t.Fatalf("empty adds must be ignored: %s", s)
	}
	if !s.Contains(3, 3) {
		t.Fatal("empty range must be trivially contained")
	}
}

func TestIntervalSetCloneIndependence(t *testing.T) {
	s := NewIntervalSet(Interval{0, 4})
	c := s.Clone()
	c.Add(4, 8)
	if s.Contains(4, 8) {
		t.Fatal("Clone must be independent of the original")
	}
	if !s.Equal(NewIntervalSet(Interval{0, 4})) {
		t.Fatalf("original mutated: %s", s)
	}
}

func TestIntervalSetEqual(t *testing.T) {
	a := NewIntervalSet(Interval{0, 4}, Interval{8, 12})
	b := NewIntervalSet(Interval{8, 12}, Interval{0, 4})
	if !a.Equal(b) {
		t.Fatalf("%s != %s", a, b)
	}
	b.Add(4, 5)
	if a.Equal(b) {
		t.Fatalf("%s == %s", a, b)
	}
}

// TestIntervalSetQuickAgainstBitmap cross-checks the interval set against a
// naive byte bitmap over random operation sequences.
func TestIntervalSetQuickAgainstBitmap(t *testing.T) {
	const universe = 256
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewIntervalSet()
		var bm [universe]bool
		for op := 0; op < 50; op++ {
			lo := rng.Intn(universe)
			hi := rng.Intn(universe + 1)
			if hi < lo {
				lo, hi = hi, lo
			}
			s.Add(lo, hi)
			for i := lo; i < hi; i++ {
				bm[i] = true
			}
			// Spot-check random query.
			qlo := rng.Intn(universe)
			qhi := qlo + rng.Intn(universe-qlo+1)
			want := true
			for i := qlo; i < qhi; i++ {
				if !bm[i] {
					want = false
					break
				}
			}
			if s.Contains(qlo, qhi) != want {
				t.Logf("seed %d: Contains(%d,%d) = %v, want %v; set %s", seed, qlo, qhi, !want, want, s)
				return false
			}
		}
		// Total must match bitmap population.
		total := 0
		for _, b := range bm {
			if b {
				total++
			}
		}
		if s.Total() != total {
			t.Logf("seed %d: Total=%d want %d", seed, s.Total(), total)
			return false
		}
		// Normalization: sorted, disjoint, non-adjacent.
		ivs := s.Intervals()
		for i := range ivs {
			if ivs[i].Hi <= ivs[i].Lo {
				return false
			}
			if i > 0 && ivs[i].Lo <= ivs[i-1].Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalLen(t *testing.T) {
	if (Interval{3, 7}).Len() != 4 {
		t.Fatal("len of [3,7) should be 4")
	}
	if (Interval{7, 3}).Len() != 0 {
		t.Fatal("inverted interval should have zero length")
	}
}
