// Package sched defines a communication-schedule intermediate
// representation (IR) for collective algorithms.
//
// A Program is the complete, statically known communication pattern of one
// collective operation: for every rank, an ordered list of point-to-point
// operations (sends, receives, and combined send-receives) with explicit
// buffer offsets and lengths. The broadcast algorithms studied in the
// reproduced paper (binomial scatter, enclosed ring allgather, tuned
// non-enclosed ring allgather, recursive-doubling allgather) are all
// data-independent, so their entire schedule can be generated up front
// from (P, root, nbytes).
//
// Three consumers share this IR:
//
//   - internal/core generates Programs for each algorithm and derives
//     analytic traffic counts from them;
//   - the schedule verifier in this package checks deadlock-freedom and
//     data validity (no transfer may carry bytes the sender does not hold);
//   - internal/netsim replays Programs against a virtual-time network
//     model to predict completion times at paper scale.
//
// The executable collectives in internal/collective are hand-written
// against the mpi.Comm interface (faithful to the paper's pseudo-code);
// tests cross-validate their observed message traces against the
// Programs generated here.
package sched

import (
	"fmt"
	"strings"
)

// OpKind discriminates the three point-to-point operation shapes used by
// the broadcast algorithms.
type OpKind uint8

const (
	// OpSend is a blocking send of Program buffer bytes
	// [SendOff, SendOff+SendLen) to rank To.
	OpSend OpKind = iota
	// OpRecv is a blocking receive into [RecvOff, RecvOff+RecvLen)
	// from rank From.
	OpRecv
	// OpSendrecv is a combined operation: the send and receive halves
	// proceed concurrently and the operation completes when both have
	// completed (MPI_Sendrecv semantics).
	OpSendrecv
)

// String returns the lower-case MPI-style name of the kind.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpSendrecv:
		return "sendrecv"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one point-to-point operation executed by a single rank.
//
// For OpSend only the To/Send* fields are meaningful; for OpRecv only the
// From/Recv* fields; OpSendrecv uses both halves. Zero-length operations
// are legal: MPI transfers a zero-byte payload (an envelope) and the
// paper's transfer counts include them, so the IR keeps them explicit.
type Op struct {
	Kind OpKind

	// To is the destination rank of the send half.
	To int
	// SendOff is the byte offset of the outgoing data in the collective's
	// buffer.
	SendOff int
	// SendLen is the number of outgoing bytes (may be zero).
	SendLen int

	// From is the source rank of the receive half.
	From int
	// RecvOff is the byte offset at which incoming data lands.
	RecvOff int
	// RecvLen is the number of incoming bytes (may be zero).
	RecvLen int

	// Tag is the message tag; matching sends and receives must agree.
	Tag int

	// Step is the logical algorithm step this operation belongs to
	// (1-based for ring steps, 0 for scatter-phase operations). It is
	// diagnostic only and does not affect matching.
	Step int
}

// String renders the op compactly, e.g. "sendrecv(to=3 [8,12) from=1 [0,4) tag=7)".
func (o Op) String() string {
	switch o.Kind {
	case OpSend:
		return fmt.Sprintf("send(to=%d [%d,%d) tag=%d)", o.To, o.SendOff, o.SendOff+o.SendLen, o.Tag)
	case OpRecv:
		return fmt.Sprintf("recv(from=%d [%d,%d) tag=%d)", o.From, o.RecvOff, o.RecvOff+o.RecvLen, o.Tag)
	case OpSendrecv:
		return fmt.Sprintf("sendrecv(to=%d [%d,%d) from=%d [%d,%d) tag=%d)",
			o.To, o.SendOff, o.SendOff+o.SendLen, o.From, o.RecvOff, o.RecvOff+o.RecvLen, o.Tag)
	default:
		return fmt.Sprintf("op(kind=%d)", o.Kind)
	}
}

// Program is a complete static communication schedule for one collective
// over P ranks and an N-byte buffer.
type Program struct {
	// Name identifies the generating algorithm, e.g. "ring-allgather-tuned".
	Name string
	// P is the number of participating ranks.
	P int
	// N is the collective buffer size in bytes.
	N int
	// Root is the broadcast root rank.
	Root int
	// Ranks holds the per-rank operation lists; len(Ranks) == P.
	Ranks [][]Op
}

// New returns an empty Program with per-rank op slices allocated.
func New(name string, p, n, root int) *Program {
	ranks := make([][]Op, p)
	return &Program{Name: name, P: p, N: n, Root: root, Ranks: ranks}
}

// Add appends op to rank's operation list.
func (pr *Program) Add(rank int, op Op) {
	pr.Ranks[rank] = append(pr.Ranks[rank], op)
}

// Concat returns a new Program that runs pr to completion and then next
// (per rank, next's ops are appended after pr's). Both programs must have
// identical P, N and Root.
func (pr *Program) Concat(next *Program) (*Program, error) {
	if pr.P != next.P || pr.N != next.N || pr.Root != next.Root {
		return nil, fmt.Errorf("sched: concat mismatch: (%d,%d,%d) vs (%d,%d,%d)",
			pr.P, pr.N, pr.Root, next.P, next.N, next.Root)
	}
	out := New(pr.Name+"+"+next.Name, pr.P, pr.N, pr.Root)
	for r := 0; r < pr.P; r++ {
		out.Ranks[r] = append(out.Ranks[r], pr.Ranks[r]...)
		out.Ranks[r] = append(out.Ranks[r], next.Ranks[r]...)
	}
	return out, nil
}

// MustConcat is Concat that panics on mismatch; generators use it with
// programs they construct themselves.
func (pr *Program) MustConcat(next *Program) *Program {
	out, err := pr.Concat(next)
	if err != nil {
		panic(err)
	}
	return out
}

// Stats summarizes the traffic a Program generates.
type Stats struct {
	// Messages counts individual message transfers (a Sendrecv counts as
	// one send on the sending rank; every send half is one message).
	Messages int
	// NonEmptyMessages counts messages with payload length > 0.
	NonEmptyMessages int
	// Bytes is the total payload volume over all messages.
	Bytes int
	// MaxStep is the largest Step label present.
	MaxStep int
}

// Stats computes traffic statistics by walking all send halves.
func (pr *Program) Stats() Stats {
	var s Stats
	for r := 0; r < pr.P; r++ {
		for _, op := range pr.Ranks[r] {
			if op.Step > s.MaxStep {
				s.MaxStep = op.Step
			}
			if op.Kind == OpSend || op.Kind == OpSendrecv {
				s.Messages++
				if op.SendLen > 0 {
					s.NonEmptyMessages++
				}
				s.Bytes += op.SendLen
			}
		}
	}
	return s
}

// Messages returns the total number of message transfers (send halves).
func (pr *Program) Messages() int { return pr.Stats().Messages }

// Bytes returns the total payload volume in bytes.
func (pr *Program) Bytes() int { return pr.Stats().Bytes }

// OpsOf returns rank's operation list (nil if rank is out of range).
func (pr *Program) OpsOf(rank int) []Op {
	if rank < 0 || rank >= len(pr.Ranks) {
		return nil
	}
	return pr.Ranks[rank]
}

// Validate performs structural checks: rank indices in range, offsets and
// lengths within the buffer, and globally that every send half has exactly
// one matching receive half with equal payload length (matched FIFO per
// (src, dst, tag) channel, mirroring MPI's non-overtaking rule).
func (pr *Program) Validate() error {
	if pr.P <= 0 {
		return fmt.Errorf("sched: program %q: nonpositive P=%d", pr.Name, pr.P)
	}
	if len(pr.Ranks) != pr.P {
		return fmt.Errorf("sched: program %q: len(Ranks)=%d want %d", pr.Name, len(pr.Ranks), pr.P)
	}
	if pr.Root < 0 || pr.Root >= pr.P {
		return fmt.Errorf("sched: program %q: root %d out of range", pr.Name, pr.Root)
	}
	type chanKey struct{ src, dst, tag int }
	sends := map[chanKey][]int{} // payload lengths in program order
	recvs := map[chanKey][]int{}
	for r := 0; r < pr.P; r++ {
		for i, op := range pr.Ranks[r] {
			where := func() string { return fmt.Sprintf("program %q rank %d op %d (%s)", pr.Name, r, i, op) }
			if op.Kind == OpSend || op.Kind == OpSendrecv {
				if op.To < 0 || op.To >= pr.P {
					return fmt.Errorf("sched: %s: dest out of range", where())
				}
				if op.To == r {
					return fmt.Errorf("sched: %s: self send", where())
				}
				if op.SendLen < 0 || op.SendOff < 0 || op.SendOff+op.SendLen > pr.N {
					return fmt.Errorf("sched: %s: send range outside buffer of %d bytes", where(), pr.N)
				}
				k := chanKey{r, op.To, op.Tag}
				sends[k] = append(sends[k], op.SendLen)
			}
			if op.Kind == OpRecv || op.Kind == OpSendrecv {
				if op.From < 0 || op.From >= pr.P {
					return fmt.Errorf("sched: %s: source out of range", where())
				}
				if op.From == r {
					return fmt.Errorf("sched: %s: self receive", where())
				}
				if op.RecvLen < 0 || op.RecvOff < 0 || op.RecvOff+op.RecvLen > pr.N {
					return fmt.Errorf("sched: %s: recv range outside buffer of %d bytes", where(), pr.N)
				}
				k := chanKey{op.From, r, op.Tag}
				recvs[k] = append(recvs[k], op.RecvLen)
			}
		}
	}
	for k, ss := range sends {
		rr := recvs[k]
		if len(ss) != len(rr) {
			return fmt.Errorf("sched: program %q: channel %d->%d tag %d has %d sends but %d recvs",
				pr.Name, k.src, k.dst, k.tag, len(ss), len(rr))
		}
		for i := range ss {
			if ss[i] != rr[i] {
				return fmt.Errorf("sched: program %q: channel %d->%d tag %d message %d: send %d bytes, recv %d bytes",
					pr.Name, k.src, k.dst, k.tag, i, ss[i], rr[i])
			}
		}
		delete(recvs, k)
	}
	for k := range recvs {
		return fmt.Errorf("sched: program %q: channel %d->%d tag %d has recvs without sends",
			pr.Name, k.src, k.dst, k.tag)
	}
	return nil
}

// Dump renders the whole program, one line per op, for debugging and for
// the schematic-figure tests.
func (pr *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q P=%d N=%d root=%d\n", pr.Name, pr.P, pr.N, pr.Root)
	for r := 0; r < pr.P; r++ {
		fmt.Fprintf(&b, "  rank %d:\n", r)
		for _, op := range pr.Ranks[r] {
			fmt.Fprintf(&b, "    step %d: %s\n", op.Step, op)
		}
	}
	return b.String()
}
