package sched

import (
	"strings"
	"testing"
)

// pingPong builds a 2-rank program: 0 sends [0,4) to 1, 1 sends [4,8) back.
func pingPong() *Program {
	pr := New("ping-pong", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 4, Tag: 1, Step: 1})
	pr.Add(0, Op{Kind: OpRecv, From: 1, RecvOff: 4, RecvLen: 4, Tag: 2, Step: 2})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 4, Tag: 1, Step: 1})
	pr.Add(1, Op{Kind: OpSend, To: 0, SendOff: 4, SendLen: 4, Tag: 2, Step: 2})
	return pr
}

func TestValidateOK(t *testing.T) {
	if err := pingPong().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsUnmatchedSend(t *testing.T) {
	pr := pingPong()
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 1, Tag: 9})
	if err := pr.Validate(); err == nil {
		t.Fatal("expected error for send without recv")
	}
}

func TestValidateDetectsUnmatchedRecv(t *testing.T) {
	pr := pingPong()
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 1, Tag: 9})
	if err := pr.Validate(); err == nil {
		t.Fatal("expected error for recv without send")
	}
}

func TestValidateDetectsLengthMismatch(t *testing.T) {
	pr := New("mismatch", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 4, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 3, Tag: 1})
	if err := pr.Validate(); err == nil || !strings.Contains(err.Error(), "send 4 bytes, recv 3 bytes") {
		t.Fatalf("want length mismatch error, got %v", err)
	}
}

func TestValidateDetectsSelfSend(t *testing.T) {
	pr := New("self", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 0, SendLen: 1, Tag: 1})
	if err := pr.Validate(); err == nil {
		t.Fatal("expected self-send error")
	}
}

func TestValidateDetectsOutOfRangeRank(t *testing.T) {
	pr := New("range", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 5, SendLen: 1, Tag: 1})
	if err := pr.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestValidateDetectsBufferOverrun(t *testing.T) {
	pr := New("overrun", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 6, SendLen: 4, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 4, Tag: 1})
	if err := pr.Validate(); err == nil {
		t.Fatal("expected buffer overrun error")
	}
}

func TestValidateDetectsBadRoot(t *testing.T) {
	pr := New("badroot", 2, 8, 5)
	if err := pr.Validate(); err == nil {
		t.Fatal("expected root range error")
	}
}

func TestStats(t *testing.T) {
	pr := pingPong()
	s := pr.Stats()
	if s.Messages != 2 || s.NonEmptyMessages != 2 || s.Bytes != 8 || s.MaxStep != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if pr.Messages() != 2 || pr.Bytes() != 8 {
		t.Fatalf("convenience accessors wrong: %d msgs %d bytes", pr.Messages(), pr.Bytes())
	}
}

func TestStatsCountsSendrecvOnceAndEmpties(t *testing.T) {
	pr := New("sr", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSendrecv, To: 1, SendOff: 0, SendLen: 0, From: 1, RecvOff: 0, RecvLen: 4, Tag: 1, Step: 1})
	pr.Add(1, Op{Kind: OpSendrecv, To: 0, SendOff: 0, SendLen: 4, From: 0, RecvOff: 0, RecvLen: 0, Tag: 1, Step: 1})
	s := pr.Stats()
	if s.Messages != 2 {
		t.Fatalf("messages = %d want 2 (one per sendrecv)", s.Messages)
	}
	if s.NonEmptyMessages != 1 {
		t.Fatalf("nonEmpty = %d want 1 (zero-byte send excluded)", s.NonEmptyMessages)
	}
	if s.Bytes != 4 {
		t.Fatalf("bytes = %d want 4", s.Bytes)
	}
}

func TestConcat(t *testing.T) {
	a := pingPong()
	b := pingPong()
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OpsOf(0)) != 4 || len(c.OpsOf(1)) != 4 {
		t.Fatalf("concat op counts: %d, %d", len(c.OpsOf(0)), len(c.OpsOf(1)))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcatMismatch(t *testing.T) {
	a := pingPong()
	b := New("other", 3, 8, 0)
	if _, err := a.Concat(b); err == nil {
		t.Fatal("expected concat mismatch error")
	}
}

func TestOpsOfOutOfRange(t *testing.T) {
	pr := pingPong()
	if pr.OpsOf(-1) != nil || pr.OpsOf(2) != nil {
		t.Fatal("out-of-range OpsOf should return nil")
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Kind: OpSend, To: 3, SendOff: 8, SendLen: 4, Tag: 7}, "send(to=3 [8,12) tag=7)"},
		{Op{Kind: OpRecv, From: 1, RecvOff: 0, RecvLen: 4, Tag: 7}, "recv(from=1 [0,4) tag=7)"},
		{Op{Kind: OpSendrecv, To: 3, SendOff: 8, SendLen: 4, From: 1, RecvOff: 0, RecvLen: 4, Tag: 7},
			"sendrecv(to=3 [8,12) from=1 [0,4) tag=7)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("op string = %q want %q", got, c.want)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpSend.String() != "send" || OpRecv.String() != "recv" || OpSendrecv.String() != "sendrecv" {
		t.Fatal("kind strings wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestDumpContainsAllOps(t *testing.T) {
	d := pingPong().Dump()
	for _, want := range []string{"ping-pong", "rank 0", "rank 1", "send(to=1", "recv(from=0"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}
