package sched

import (
	"strings"
	"testing"
)

func initialOwner(owners map[int]Interval) func(int) *IntervalSet {
	return func(rank int) *IntervalSet {
		if iv, ok := owners[rank]; ok {
			return NewIntervalSet(iv)
		}
		return NewIntervalSet()
	}
}

func TestVerifyPingPong(t *testing.T) {
	pr := pingPong()
	res, err := Verify(pr, VerifyConfig{
		Initial: initialOwner(map[int]Interval{0: {0, 4}, 1: {4, 8}}),
		WantFinal: func(int) *IntervalSet {
			return NewIntervalSet(Interval{0, 8})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 || res.InvalidTransfers != 0 || res.RedundantMessages != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestVerifyDetectsDeadlock(t *testing.T) {
	// Two ranks that both Recv first: classic head-to-head deadlock.
	pr := New("deadlock", 2, 8, 0)
	pr.Add(0, Op{Kind: OpRecv, From: 1, RecvOff: 0, RecvLen: 4, Tag: 1})
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 4, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 4, Tag: 1})
	pr.Add(1, Op{Kind: OpSend, To: 0, SendOff: 0, SendLen: 4, Tag: 1})
	_, err := Verify(pr, VerifyConfig{Initial: initialOwner(map[int]Interval{0: {0, 8}, 1: {0, 8}})})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestVerifySendrecvRingDoesNotDeadlock(t *testing.T) {
	// A 3-rank Sendrecv ring: blocking sends would deadlock, MPI_Sendrecv
	// semantics must not.
	const p, n = 3, 3
	pr := New("sr-ring", p, n, 0)
	for r := 0; r < p; r++ {
		right := (r + 1) % p
		left := (r + p - 1) % p
		pr.Add(r, Op{
			Kind: OpSendrecv,
			To:   right, SendOff: r, SendLen: 1,
			From: left, RecvOff: left, RecvLen: 1,
			Tag: 1, Step: 1,
		})
	}
	res, err := Verify(pr, VerifyConfig{
		Initial: func(rank int) *IntervalSet { return NewIntervalSet(Interval{rank, rank + 1}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != p {
		t.Fatalf("delivered %d want %d", res.Delivered, p)
	}
}

func TestVerifyDetectsInvalidTransfer(t *testing.T) {
	// Rank 0 sends bytes it never owned.
	pr := New("invalid", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 4, SendLen: 4, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 4, RecvLen: 4, Tag: 1})
	res, err := Verify(pr, VerifyConfig{Initial: initialOwner(map[int]Interval{0: {0, 4}})})
	if err == nil || !strings.Contains(err.Error(), "did not own") {
		t.Fatalf("want invalid-transfer error, got %v", err)
	}
	if res == nil || res.InvalidTransfers != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestVerifyInvalidDataDoesNotGrantOwnership(t *testing.T) {
	// Rank 0 forwards unowned bytes to rank 1; rank 1 must not be treated
	// as owning them afterwards, so WantFinal fails before the invalid
	// transfer error would even be reported... the invalid-transfer error
	// takes precedence; check the recorded ownership directly instead.
	pr := New("invalid-own", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 8, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 8, Tag: 1})
	res, _ := Verify(pr, VerifyConfig{Initial: initialOwner(map[int]Interval{0: {0, 4}})})
	if res == nil {
		t.Fatal("expected a result alongside the error")
	}
	if res.Final[1].Total() != 0 {
		t.Fatalf("receiver gained ownership from invalid data: %s", res.Final[1])
	}
}

func TestVerifyCountsRedundantMessages(t *testing.T) {
	// Rank 0 owns everything and receives a chunk it already has.
	pr := New("redundant", 2, 8, 0)
	pr.Add(1, Op{Kind: OpSend, To: 0, SendOff: 0, SendLen: 4, Tag: 1})
	pr.Add(0, Op{Kind: OpRecv, From: 1, RecvOff: 0, RecvLen: 4, Tag: 1})
	res, err := Verify(pr, VerifyConfig{
		Initial: initialOwner(map[int]Interval{0: {0, 8}, 1: {0, 4}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RedundantMessages != 1 || res.RedundantBytes != 4 {
		t.Fatalf("redundancy = %d msgs / %d bytes, want 1/4", res.RedundantMessages, res.RedundantBytes)
	}
}

func TestVerifyWantFinalFailure(t *testing.T) {
	pr := New("nofinal", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 4, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 4, Tag: 1})
	_, err := Verify(pr, VerifyConfig{WantFinal: FullBuffer(8)})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want final-coverage error, got %v", err)
	}
}

func TestVerifyDefaultInitialIsRootOwnsAll(t *testing.T) {
	pr := New("default-initial", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 8, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 8, Tag: 1})
	res, err := Verify(pr, VerifyConfig{WantFinal: FullBuffer(8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvalidTransfers != 0 {
		t.Fatalf("root must own the full buffer by default: %+v", res)
	}
}

func TestVerifyFIFOMatchingLengthConflict(t *testing.T) {
	// Sender issues a 4-byte then an 8-byte message on the same channel;
	// receiver posts the 8-byte recv first. FIFO matching pairs it with
	// the 4-byte message: length conflict must be reported.
	pr := New("fifo", 2, 16, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 4, Tag: 1})
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 8, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 8, Tag: 1})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 4, Tag: 1})
	_, err := Verify(pr, VerifyConfig{Initial: initialOwner(map[int]Interval{0: {0, 16}})})
	if err == nil || !strings.Contains(err.Error(), "send 4 bytes, recv 8 bytes") {
		t.Fatalf("want FIFO mismatch error, got %v", err)
	}
}

func TestVerifyDistinctTagsMatchIndependently(t *testing.T) {
	// Same channel, two tags posted in "crossed" order: tag matching must
	// pair them correctly (no error).
	pr := New("tags", 2, 16, 0)
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 0, SendLen: 4, Tag: 1})
	pr.Add(0, Op{Kind: OpSend, To: 1, SendOff: 4, SendLen: 8, Tag: 2})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 4, RecvLen: 8, Tag: 2})
	pr.Add(1, Op{Kind: OpRecv, From: 0, RecvOff: 0, RecvLen: 4, Tag: 1})
	if _, err := Verify(pr, VerifyConfig{Initial: initialOwner(map[int]Interval{0: {0, 16}})}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsInvalidProgram(t *testing.T) {
	pr := New("invalid-prog", 2, 8, 0)
	pr.Add(0, Op{Kind: OpSend, To: 9, SendLen: 1, Tag: 1})
	if _, err := Verify(pr, VerifyConfig{}); err == nil {
		t.Fatal("Verify must reject structurally invalid programs")
	}
}
