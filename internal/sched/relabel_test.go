package sched

import "testing"

func TestRelabelPingPong(t *testing.T) {
	pr := pingPong() // rank 0 <-> rank 1
	out, err := Relabel(pr, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Root != 1 {
		t.Fatalf("root = %d want 1", out.Root)
	}
	// Virtual rank 0's ops now live on actual rank 1, pointed at rank 0.
	ops := out.OpsOf(1)
	if len(ops) != 2 || ops[0].Kind != OpSend || ops[0].To != 0 {
		t.Fatalf("relabelled ops: %v", ops)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelIdentity(t *testing.T) {
	pr := pingPong()
	out, err := Relabel(pr, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		a, b := pr.OpsOf(r), out.OpsOf(r)
		if len(a) != len(b) {
			t.Fatalf("rank %d op counts differ", r)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank %d op %d: %v != %v", r, i, a[i], b[i])
			}
		}
	}
}

func TestRelabelDoesNotMutateOriginal(t *testing.T) {
	pr := pingPong()
	before := pr.OpsOf(0)[0]
	if _, err := Relabel(pr, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if pr.OpsOf(0)[0] != before || pr.Root != 0 {
		t.Fatal("Relabel mutated its input")
	}
}

func TestRelabelValidation(t *testing.T) {
	pr := pingPong()
	if _, err := Relabel(pr, []int{0}); err == nil {
		t.Fatal("short perm must fail")
	}
	if _, err := Relabel(pr, []int{0, 0}); err == nil {
		t.Fatal("non-permutation must fail")
	}
	if _, err := Relabel(pr, []int{0, 5}); err == nil {
		t.Fatal("out-of-range perm must fail")
	}
}

func TestRelabelPreservesStats(t *testing.T) {
	pr := pingPong()
	out, err := Relabel(pr, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Stats() != out.Stats() {
		t.Fatalf("stats changed: %+v vs %+v", pr.Stats(), out.Stats())
	}
}
