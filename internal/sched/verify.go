package sched

import (
	"fmt"
	"strings"
)

// VerifyConfig controls schedule verification.
type VerifyConfig struct {
	// Initial returns the byte ranges rank holds valid data for before the
	// program starts. If nil, the broadcast default is used: the root owns
	// [0, N) and every other rank owns nothing.
	Initial func(rank int) *IntervalSet

	// WantFinal, if non-nil, is checked against every rank's final
	// ownership; verification fails unless each rank's final set contains
	// all of WantFinal(rank). If nil, no final check is performed.
	WantFinal func(rank int) *IntervalSet
}

// VerifyResult reports the outcome of a successful verification.
type VerifyResult struct {
	// Final holds each rank's ownership set after the program completes.
	Final []*IntervalSet
	// Delivered is the number of messages matched and consumed.
	Delivered int
	// InvalidTransfers counts messages whose payload was not fully owned
	// by the sender at issue time. Verification fails when it is nonzero,
	// but the count is reported for diagnostics.
	InvalidTransfers int
	// RedundantMessages counts non-empty messages delivered into a byte
	// range the receiver already fully owned — the useless transmissions
	// the paper's tuned ring eliminates. The native enclosed ring has
	// many; the tuned ring must have zero.
	RedundantMessages int
	// RedundantBytes is the payload volume of those redundant messages.
	RedundantBytes int
}

// message is an in-flight send half awaiting its matching receive.
type message struct {
	lo, hi int  // byte range carried
	valid  bool // sender owned the range at issue time
	step   int
}

type chanKey struct{ src, dst, tag int }

// Verify abstractly executes the program, tracking per-rank data ownership
// as byte-interval sets, and checks three properties:
//
//  1. Deadlock freedom under blocking-with-buffered-send semantics (sends
//     complete immediately, receives block until matched; a Sendrecv's
//     send half is issued as soon as the op is reached, modelling the
//     concurrent halves of MPI_Sendrecv).
//  2. Data validity: every message must carry only bytes its sender holds
//     at issue time — the property the tuned ring allgather exploits and
//     the native enclosed ring wastes.
//  3. Optional final coverage (e.g. every rank owns [0, N) after a
//     broadcast).
//
// Matching is FIFO per (source, destination, tag), mirroring MPI's
// non-overtaking rule for single-threaded ranks.
func Verify(pr *Program, cfg VerifyConfig) (*VerifyResult, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	own := make([]*IntervalSet, pr.P)
	for r := range own {
		if cfg.Initial != nil {
			own[r] = cfg.Initial(r).Clone()
		} else if r == pr.Root {
			own[r] = NewIntervalSet(Interval{0, pr.N})
		} else {
			own[r] = NewIntervalSet()
		}
	}

	pc := make([]int, pr.P)      // next op index per rank
	issued := make([]bool, pr.P) // send half of current Sendrecv already issued
	inflight := map[chanKey][]message{}
	res := &VerifyResult{Final: own}

	issueSend := func(rank int, op Op) {
		valid := own[rank].Contains(op.SendOff, op.SendOff+op.SendLen)
		if !valid {
			res.InvalidTransfers++
		}
		k := chanKey{rank, op.To, op.Tag}
		inflight[k] = append(inflight[k], message{op.SendOff, op.SendOff + op.SendLen, valid, op.Step})
	}

	// tryRecv attempts to match the receive half of op for rank; it
	// returns true (and applies the ownership transfer) on success.
	tryRecv := func(rank int, op Op) (bool, error) {
		k := chanKey{op.From, rank, op.Tag}
		q := inflight[k]
		if len(q) == 0 {
			return false, nil
		}
		m := q[0]
		inflight[k] = q[1:]
		if m.hi-m.lo != op.RecvLen {
			return false, fmt.Errorf("sched: verify %q: rank %d %s matched %d-byte message from step %d",
				pr.Name, rank, op, m.hi-m.lo, m.step)
		}
		if m.valid {
			if op.RecvLen > 0 && own[rank].Contains(op.RecvOff, op.RecvOff+op.RecvLen) {
				res.RedundantMessages++
				res.RedundantBytes += op.RecvLen
			}
			own[rank].Add(op.RecvOff, op.RecvOff+op.RecvLen)
		}
		res.Delivered++
		return true, nil
	}

	// execOne attempts the current op of rank r; it reports whether the
	// rank advanced past the op and whether any observable progress
	// happened (advancing, or issuing a Sendrecv's send half).
	execOne := func(r int) (advanced, progressed bool, err error) {
		op := pr.Ranks[r][pc[r]]
		switch op.Kind {
		case OpSend:
			issueSend(r, op)
			pc[r]++
			return true, true, nil
		case OpRecv:
			ok, err := tryRecv(r, op)
			if err != nil || !ok {
				return false, false, err
			}
			pc[r]++
			return true, true, nil
		case OpSendrecv:
			if !issued[r] {
				issueSend(r, op)
				issued[r] = true
				progressed = true
			}
			ok, err := tryRecv(r, op)
			if err != nil || !ok {
				return false, progressed, err
			}
			issued[r] = false
			pc[r]++
			return true, true, nil
		default:
			return false, false, fmt.Errorf("sched: verify %q: rank %d: unknown op kind %d", pr.Name, r, op.Kind)
		}
	}

	for {
		progressed := false
		for r := 0; r < pr.P; r++ {
			for pc[r] < len(pr.Ranks[r]) {
				advanced, prog, err := execOne(r)
				if err != nil {
					return nil, err
				}
				if prog {
					progressed = true
				}
				if !advanced {
					break
				}
			}
		}
		done := true
		for r := 0; r < pr.P; r++ {
			if pc[r] < len(pr.Ranks[r]) {
				done = false
				break
			}
		}
		if done {
			break
		}
		if !progressed {
			return nil, deadlockError(pr, pc)
		}
	}

	for k, q := range inflight {
		if len(q) > 0 {
			return nil, fmt.Errorf("sched: verify %q: %d unconsumed messages on channel %d->%d tag %d",
				pr.Name, len(q), k.src, k.dst, k.tag)
		}
	}
	if res.InvalidTransfers > 0 {
		return res, fmt.Errorf("sched: verify %q: %d transfers carried bytes the sender did not own",
			pr.Name, res.InvalidTransfers)
	}
	if cfg.WantFinal != nil {
		for r := 0; r < pr.P; r++ {
			want := cfg.WantFinal(r)
			for _, iv := range want.Intervals() {
				if !own[r].Contains(iv.Lo, iv.Hi) {
					return res, fmt.Errorf("sched: verify %q: rank %d final ownership %s missing [%d,%d)",
						pr.Name, r, own[r], iv.Lo, iv.Hi)
				}
			}
		}
	}
	return res, nil
}

func deadlockError(pr *Program, pc []int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "sched: verify %q: deadlock; blocked ranks:", pr.Name)
	for r := 0; r < pr.P; r++ {
		if pc[r] < len(pr.Ranks[r]) {
			fmt.Fprintf(&b, "\n  rank %d at op %d: %s", r, pc[r], pr.Ranks[r][pc[r]])
		}
	}
	return fmt.Errorf("%s", b.String())
}

// FullBuffer returns a WantFinal function requiring every rank to own the
// entire N-byte buffer — the postcondition of a broadcast.
func FullBuffer(n int) func(rank int) *IntervalSet {
	full := NewIntervalSet(Interval{0, n})
	return func(int) *IntervalSet { return full }
}
