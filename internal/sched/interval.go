package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Len returns the interval length (zero for empty or inverted intervals).
func (iv Interval) Len() int {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// IntervalSet is a normalized set of disjoint, sorted, non-adjacent
// half-open intervals. It tracks which byte ranges of the collective
// buffer a rank holds valid data for; the schedule verifier uses it to
// prove that no operation ever forwards bytes the sender does not own.
//
// The zero value is an empty set ready for use.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet returns a set containing the given intervals.
func NewIntervalSet(ivs ...Interval) *IntervalSet {
	s := &IntervalSet{}
	for _, iv := range ivs {
		s.Add(iv.Lo, iv.Hi)
	}
	return s
}

// Add inserts [lo, hi) into the set, merging with overlapping or adjacent
// intervals. Empty ranges are ignored.
func (s *IntervalSet) Add(lo, hi int) {
	if hi <= lo {
		return
	}
	// Find insertion window: all intervals overlapping or adjacent to [lo,hi).
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi >= lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].Lo <= hi {
		j++
	}
	if i < j {
		if s.ivs[i].Lo < lo {
			lo = s.ivs[i].Lo
		}
		if s.ivs[j-1].Hi > hi {
			hi = s.ivs[j-1].Hi
		}
	}
	merged := append(s.ivs[:i:i], Interval{lo, hi})
	s.ivs = append(merged, s.ivs[j:]...)
}

// Contains reports whether the whole range [lo, hi) is in the set.
// Empty ranges are trivially contained.
func (s *IntervalSet) Contains(lo, hi int) bool {
	if hi <= lo {
		return true
	}
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Hi > lo })
	return i < len(s.ivs) && s.ivs[i].Lo <= lo && hi <= s.ivs[i].Hi
}

// ContainsPoint reports whether byte offset x is in the set.
func (s *IntervalSet) ContainsPoint(x int) bool { return s.Contains(x, x+1) }

// Total returns the total number of bytes covered.
func (s *IntervalSet) Total() int {
	t := 0
	for _, iv := range s.ivs {
		t += iv.Len()
	}
	return t
}

// Intervals returns a copy of the normalized interval list.
func (s *IntervalSet) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Clone returns an independent copy of the set.
func (s *IntervalSet) Clone() *IntervalSet {
	return &IntervalSet{ivs: s.Intervals()}
}

// Equal reports whether two sets cover exactly the same bytes.
func (s *IntervalSet) Equal(o *IntervalSet) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set like "{[0,4) [8,12)}".
func (s *IntervalSet) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi)
	}
	return "{" + strings.Join(parts, " ") + "}"
}
