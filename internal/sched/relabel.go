package sched

import "fmt"

// Relabel returns a copy of the program with every rank renamed through
// perm: virtual rank v becomes actual rank perm[v]. perm must be a
// permutation of [0, P).
//
// Chunk offsets are untouched — the scatter-allgather algorithms index
// chunks by *relative position in the ring*, not by rank identity, and
// every rank ends up with the whole buffer, so any consistent relabeling
// preserves correctness (the verifier re-proves it). Relabeling is how
// the node-aware ring extension maps a virtually contiguous ring onto a
// placement so that node boundaries are crossed only NumNodes times.
func Relabel(pr *Program, perm []int) (*Program, error) {
	if len(perm) != pr.P {
		return nil, fmt.Errorf("sched: relabel: perm has %d entries, program %d ranks", len(perm), pr.P)
	}
	seen := make([]bool, pr.P)
	for v, a := range perm {
		if a < 0 || a >= pr.P || seen[a] {
			return nil, fmt.Errorf("sched: relabel: perm[%d]=%d is not a permutation", v, a)
		}
		seen[a] = true
	}
	out := New(pr.Name+"-relabelled", pr.P, pr.N, perm[pr.Root])
	for v := 0; v < pr.P; v++ {
		actual := perm[v]
		ops := make([]Op, len(pr.Ranks[v]))
		copy(ops, pr.Ranks[v])
		for i := range ops {
			if ops[i].Kind == OpSend || ops[i].Kind == OpSendrecv {
				ops[i].To = perm[ops[i].To]
			}
			if ops[i].Kind == OpRecv || ops[i].Kind == OpSendrecv {
				ops[i].From = perm[ops[i].From]
			}
		}
		out.Ranks[actual] = ops
	}
	return out, nil
}
