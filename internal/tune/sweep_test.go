package tune

import (
	"testing"

	"repro/internal/topology"
)

// placeMeasurer scores candidates from a fixed cost function that also
// sees the placement, so sweep tests can force different winners per
// placement and per segment size.
type placeMeasurer struct {
	pl   Placement
	cost func(c Candidate, pl Placement, p, n int) float64
}

func (m placeMeasurer) Env(p, n int) Env {
	topo, err := m.pl.Map(p)
	if err != nil {
		return Env{Bytes: n, Procs: p}
	}
	return EnvOf(n, p, topo)
}

func (m placeMeasurer) Measure(c Candidate, p, n int) (float64, error) {
	return m.cost(c, m.pl, p, n), nil
}

func TestParsePlacement(t *testing.T) {
	good := []struct {
		in   string
		want Placement
	}{
		{"single", Placement{Kind: topology.KindSingle}},
		{"blocked:24", Placement{Kind: topology.KindBlocked, CoresPerNode: 24}},
		{"round-robin:8", Placement{Kind: topology.KindRoundRobin, CoresPerNode: 8}},
		{"roundrobin:8", Placement{Kind: topology.KindRoundRobin, CoresPerNode: 8}},
		{"rr:4", Placement{Kind: topology.KindRoundRobin, CoresPerNode: 4}},
		{" blocked:2 ", Placement{Kind: topology.KindBlocked, CoresPerNode: 2}},
	}
	for _, tc := range good {
		got, err := ParsePlacement(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePlacement(%q) = (%+v, %v) want %+v", tc.in, got, err, tc.want)
		}
		// String() round-trips through ParsePlacement.
		back, err := ParsePlacement(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q failed: (%+v, %v)", tc.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"", "blocked", "round-robin", "single:4", "blocked:0", "blocked:x", "mesh:4"} {
		if _, err := ParsePlacement(bad); err == nil {
			t.Errorf("ParsePlacement(%q) must fail", bad)
		}
	}
}

func TestPlacementMap(t *testing.T) {
	if m, err := (Placement{Kind: topology.KindSingle}).Map(8); err != nil || m.NumNodes() != 1 {
		t.Errorf("single: (%v, %v)", m, err)
	}
	if m, err := (Placement{Kind: topology.KindBlocked, CoresPerNode: 4}).Map(8); err != nil || m.NumNodes() != 2 {
		t.Errorf("blocked: (%v, %v)", m, err)
	}
	if m, err := (Placement{Kind: topology.KindRoundRobin, CoresPerNode: 4}).Map(8); err != nil || m.Kind() != topology.KindRoundRobin {
		t.Errorf("round-robin: (%v, %v)", m, err)
	}
	for _, bad := range []Placement{{}, {Kind: "mesh"}, {Kind: topology.KindBlocked}} {
		if _, err := bad.Map(8); err == nil {
			t.Errorf("%+v.Map must fail", bad)
		}
	}
}

// TestAutoTuneSweepSegmentSizes: a segmented candidate is expanded over
// the swept sizes and the best segment size lands in the decision.
func TestAutoTuneSweepSegmentSizes(t *testing.T) {
	cands := []Candidate{
		{Name: "plain", Program: trivialProgram},
		{Name: "seg", Segmented: true, Program: trivialProgram},
	}
	mk := func(pl Placement) Measurer {
		return placeMeasurer{pl: pl, cost: func(c Candidate, _ Placement, p, n int) float64 {
			// seg@4096 is the global winner; other segment sizes and the
			// plain candidate lose.
			if c.Name == "seg" && c.SegSize == 4096 {
				return 1
			}
			return 2
		}}
	}
	cfg := SweepConfig{
		Procs:      []int{8},
		Sizes:      []int{1 << 20},
		SegSizes:   []int{1024, 4096, 16384},
		Placements: []Placement{{Kind: topology.KindSingle}},
	}
	table, winners, err := AutoTuneSweep(cands, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 1 || winners[0].Decision != (Decision{Algorithm: "seg", SegSize: 4096}) {
		t.Fatalf("winners = %+v", winners)
	}
	e := EnvOf(1<<20, 8, topology.SingleNode(8))
	d, ok := table.Lookup(e)
	if !ok || d.SegSize != 4096 {
		t.Fatalf("Lookup = (%+v, %v) want seg 4096", d, ok)
	}
}

// TestAutoTuneSweepPerPlacementGroups: different winners under blocked
// and round-robin placements yield distinct rule groups, each matching
// only its own placement's runtime environment.
func TestAutoTuneSweepPerPlacementGroups(t *testing.T) {
	cands := []Candidate{
		{Name: "likes-blocked", Program: trivialProgram},
		{Name: "likes-rr", Program: trivialProgram},
	}
	mk := func(pl Placement) Measurer {
		return placeMeasurer{pl: pl, cost: func(c Candidate, pl Placement, p, n int) float64 {
			if (pl.Kind == topology.KindBlocked) == (c.Name == "likes-blocked") {
				return 1
			}
			return 2
		}}
	}
	cfg := SweepConfig{
		Procs: []int{12},
		Sizes: []int{1 << 16},
		Placements: []Placement{
			{Kind: topology.KindBlocked, CoresPerNode: 4},
			{Kind: topology.KindRoundRobin, CoresPerNode: 4},
		},
	}
	table, winners, err := AutoTuneSweep(cands, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 2 {
		t.Fatalf("want 2 winners, got %d", len(winners))
	}
	blockedEnv := EnvOf(1<<16, 12, topology.Blocked(12, 4))
	rrEnv := EnvOf(1<<16, 12, topology.RoundRobin(12, 4))
	if d, ok := table.Lookup(blockedEnv); !ok || d.Algorithm != "likes-blocked" {
		t.Errorf("blocked env: (%+v, %v)", d, ok)
	}
	if d, ok := table.Lookup(rrEnv); !ok || d.Algorithm != "likes-rr" {
		t.Errorf("round-robin env: (%+v, %v)", d, ok)
	}
	// Every rule is placement-constrained: an unclassified environment
	// (no placement fields) matches nothing.
	if d, ok := table.Lookup(Env{Bytes: 1 << 16, Procs: 12, NumNodes: 3}); ok {
		t.Errorf("unclassified env matched %+v", d)
	}
}

// TestAutoTuneSweepCollapsedPlacementsDedup: at process counts where
// blocked and round-robin collapse onto one node, both passes realize the
// same single-node environment; the table must not repeat the group.
func TestAutoTuneSweepCollapsedPlacementsDedup(t *testing.T) {
	cands := []Candidate{{Name: "only", Program: trivialProgram}}
	mk := func(pl Placement) Measurer {
		return placeMeasurer{pl: pl, cost: func(Candidate, Placement, int, int) float64 { return 1 }}
	}
	cfg := SweepConfig{
		Procs: []int{4}, // 4 ranks on 24-core nodes: both placements collapse
		Sizes: []int{64},
		Placements: []Placement{
			{Kind: topology.KindBlocked, CoresPerNode: 24},
			{Kind: topology.KindRoundRobin, CoresPerNode: 24},
		},
	}
	table, winners, err := AutoTuneSweep(cands, mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 2 {
		t.Fatalf("want 2 winners (one per pass), got %d", len(winners))
	}
	if len(table.Rules) != 1 {
		t.Fatalf("collapsed placements must dedup to 1 rule, got %d: %+v", len(table.Rules), table.Rules)
	}
	if r := table.Rules[0]; r.Placement != topology.KindSingle || r.CoresPerNode != 4 {
		t.Fatalf("rule constraints = %+v", r)
	}
}

// TestAutoTuneSweepErrors covers the sweep-specific failure modes.
func TestAutoTuneSweepErrors(t *testing.T) {
	cands := []Candidate{{Name: "a", Program: trivialProgram}}
	mk := func(pl Placement) Measurer {
		return placeMeasurer{pl: pl, cost: func(Candidate, Placement, int, int) float64 { return 1 }}
	}
	if _, _, err := AutoTuneSweep(nil, mk, SweepConfig{Procs: []int{4}, Sizes: []int{64}}); err == nil {
		t.Error("no candidates must fail")
	}
	if _, _, err := AutoTuneSweep(cands, mk, SweepConfig{Sizes: []int{64}}); err == nil {
		t.Error("empty grid must fail")
	}
	if _, _, err := AutoTuneSweep(cands, nil, SweepConfig{Procs: []int{4}, Sizes: []int{64}}); err == nil {
		t.Error("nil factory must fail")
	}
	bad := SweepConfig{Procs: []int{4}, Sizes: []int{64}, Placements: []Placement{{Kind: "mesh"}}}
	if _, _, err := AutoTuneSweep(cands, mk, bad); err == nil {
		t.Error("bad placement must fail")
	}
}

// TestAutoTuneSweepNoPlacementsUnconstrained: without a placement list
// the sweep behaves like AutoTune — one pass, unconstrained rules.
func TestAutoTuneSweepNoPlacementsUnconstrained(t *testing.T) {
	cands := []Candidate{{Name: "a", Program: trivialProgram}}
	mk := func(pl Placement) Measurer {
		return fakeMeasurer{cost: func(string, int, int) float64 { return 1 }}
	}
	table, _, err := AutoTuneSweep(cands, mk, SweepConfig{Procs: []int{4}, Sizes: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rules) != 1 || table.Rules[0].Placement != "" || table.Rules[0].CoresPerNode != 0 {
		t.Fatalf("rules = %+v", table.Rules)
	}
}
