package tune

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// fakeMeasurer scores candidates from a fixed cost function, making the
// winner at every grid point deterministic without any simulation.
type fakeMeasurer struct {
	cost func(name string, p, n int) float64
}

func (m fakeMeasurer) Env(p, n int) Env { return Env{Bytes: n, Procs: p, NumNodes: 1} }

func (m fakeMeasurer) Measure(c Candidate, p, n int) (float64, error) {
	return m.cost(c.Name, p, n), nil
}

func trivialProgram(p, root, n, _ int) (*sched.Program, error) {
	return core.BinomialBcast(p, root, n), nil
}

func TestAutoTuneDerivesCrossoverRules(t *testing.T) {
	// "a" wins below 1 KiB, "b" wins at and above — a single crossover.
	cands := []Candidate{
		{Name: "a", Program: trivialProgram},
		{Name: "b", Program: trivialProgram},
	}
	m := fakeMeasurer{cost: func(name string, p, n int) float64 {
		if (n < 1024) == (name == "a") {
			return 1
		}
		return 2
	}}
	table, winners, err := AutoTune(cands, m, []int{4, 8}, []int{256, 512, 1024, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(winners) != 8 {
		t.Fatalf("want 8 winners, got %d", len(winners))
	}
	// Two rules per process count: [0, 1024) -> a, [1024, inf) -> b.
	if len(table.Rules) != 4 {
		t.Fatalf("want 4 rules, got %d: %+v", len(table.Rules), table.Rules)
	}
	for _, p := range []int{4, 8} {
		for _, tc := range []struct {
			n    int
			want string
		}{{0, "a"}, {700, "a"}, {1023, "a"}, {1024, "b"}, {1 << 30, "b"}} {
			d, ok := table.Lookup(Env{Bytes: tc.n, Procs: p})
			if !ok || d.Algorithm != tc.want {
				t.Errorf("Lookup(n=%d, p=%d) = (%+v, %v) want %q", tc.n, p, d, ok, tc.want)
			}
		}
	}
	// Untuned process counts fall through.
	if _, ok := table.Lookup(Env{Bytes: 512, Procs: 5}); ok {
		t.Error("p=5 must not match an exact-procs table")
	}
}

func TestAutoTuneRespectsApplicability(t *testing.T) {
	// "fast-but-pow2" is cheapest everywhere it applies; at p=10 the only
	// applicable candidate must win instead.
	cands := []Candidate{
		{Name: "fast-but-pow2", Program: trivialProgram, Applies: func(e Env) bool { return e.Pow2() }},
		{Name: "always", Program: trivialProgram},
	}
	m := fakeMeasurer{cost: func(name string, p, n int) float64 {
		if name == "fast-but-pow2" {
			return 1
		}
		return 2
	}}
	table, _, err := AutoTune(cands, m, []int{8, 10}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := table.Lookup(Env{Bytes: 64, Procs: 8}); d.Algorithm != "fast-but-pow2" {
		t.Errorf("p=8: got %q", d.Algorithm)
	}
	if d, _ := table.Lookup(Env{Bytes: 64, Procs: 10}); d.Algorithm != "always" {
		t.Errorf("p=10: got %q", d.Algorithm)
	}
}

func TestAutoTuneCopiesSegSize(t *testing.T) {
	cands := []Candidate{{Name: "seg", SegSize: 4096, Program: trivialProgram}}
	m := fakeMeasurer{cost: func(string, int, int) float64 { return 1 }}
	table, winners, err := AutoTune(cands, m, []int{4}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if winners[0].Decision.SegSize != 4096 {
		t.Errorf("winner seg = %d", winners[0].Decision.SegSize)
	}
	if d, _ := table.Lookup(Env{Bytes: 64, Procs: 4}); d.SegSize != 4096 {
		t.Errorf("table seg = %d", d.SegSize)
	}
}

func TestAutoTuneErrors(t *testing.T) {
	m := fakeMeasurer{cost: func(string, int, int) float64 { return 1 }}
	if _, _, err := AutoTune(nil, m, []int{4}, []int{64}); err == nil {
		t.Error("no candidates must fail")
	}
	cands := []Candidate{{Name: "a", Program: trivialProgram}}
	if _, _, err := AutoTune(cands, m, nil, []int{64}); err == nil {
		t.Error("empty grid must fail")
	}
	// No applicable candidate at a grid point.
	never := []Candidate{{Name: "never", Program: trivialProgram, Applies: func(Env) bool { return false }}}
	if _, _, err := AutoTune(never, m, []int{4}, []int{64}); err == nil {
		t.Error("unmeasurable grid point must fail")
	}
	// Measurement failures propagate.
	failing := measureError{}
	if _, _, err := AutoTune(cands, failing, []int{4}, []int{64}); err == nil {
		t.Error("measurer error must propagate")
	}
}

type measureError struct{}

func (measureError) Env(p, n int) Env { return Env{Bytes: n, Procs: p, NumNodes: 1} }
func (measureError) Measure(c Candidate, p, n int) (float64, error) {
	return 0, fmt.Errorf("boom")
}

func TestSimMeasurerSmoke(t *testing.T) {
	// End-to-end through netsim on a tiny point: a real virtual-time
	// measurement of the paper's two rings, and opt must not lose.
	m := SimMeasurer{CoresPerNode: 4}
	native := Candidate{Name: RingNative, Program: func(p, root, n, _ int) (*sched.Program, error) {
		return core.BcastNativeProgram(p, root, n), nil
	}}
	opt := Candidate{Name: RingOpt, Program: func(p, root, n, _ int) (*sched.Program, error) {
		return core.BcastOptProgram(p, root, n), nil
	}}
	const p, n = 10, 1 << 19
	tn, err := m.Measure(native, p, n)
	if err != nil {
		t.Fatal(err)
	}
	to, err := m.Measure(opt, p, n)
	if err != nil {
		t.Fatal(err)
	}
	if tn <= 0 || to <= 0 {
		t.Fatalf("non-positive times: native %g, opt %g", tn, to)
	}
	if to > tn*1.05 {
		t.Errorf("tuned ring slower than native: %g vs %g", to, tn)
	}
	if e := m.Env(p, n); e.NumNodes != 3 {
		t.Errorf("Env nodes = %d want 3", e.NumNodes)
	}
	// A candidate without a schedule cannot be measured.
	if _, err := m.Measure(Candidate{Name: "dynamic"}, p, n); err == nil {
		t.Error("nil Program must fail")
	}
}
