package tune

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEnvPredicates(t *testing.T) {
	cases := []struct {
		e     Env
		pow2  bool
		multi bool
	}{
		{Env{Procs: 1}, true, false},
		{Env{Procs: 2, NumNodes: 1}, true, false},
		{Env{Procs: 3, NumNodes: 2}, false, true},
		{Env{Procs: 128, NumNodes: 6}, true, true},
		{Env{Procs: 129}, false, false},
	}
	for _, tc := range cases {
		if got := tc.e.Pow2(); got != tc.pow2 {
			t.Errorf("%+v.Pow2() = %v want %v", tc.e, got, tc.pow2)
		}
		if got := tc.e.MultiNode(); got != tc.multi {
			t.Errorf("%+v.MultiNode() = %v want %v", tc.e, got, tc.multi)
		}
	}
}

func TestRuleMatching(t *testing.T) {
	cases := []struct {
		name string
		r    Rule
		e    Env
		want bool
	}{
		{"empty rule matches everything", Rule{}, Env{Bytes: 5, Procs: 3}, true},
		{"min bytes inclusive", Rule{MinBytes: 100}, Env{Bytes: 100, Procs: 1}, true},
		{"below min bytes", Rule{MinBytes: 100}, Env{Bytes: 99, Procs: 1}, false},
		{"max bytes exclusive", Rule{MaxBytes: 100}, Env{Bytes: 100, Procs: 1}, false},
		{"under max bytes", Rule{MaxBytes: 100}, Env{Bytes: 99, Procs: 1}, true},
		{"min procs inclusive", Rule{MinProcs: 8}, Env{Procs: 8}, true},
		{"below min procs", Rule{MinProcs: 8}, Env{Procs: 7}, false},
		{"max procs inclusive", Rule{MaxProcs: 8}, Env{Procs: 8}, true},
		{"above max procs", Rule{MaxProcs: 8}, Env{Procs: 9}, false},
		{"pow2 yes", Rule{Pow2: "yes"}, Env{Procs: 16}, true},
		{"pow2 yes rejects 10", Rule{Pow2: "yes"}, Env{Procs: 10}, false},
		{"pow2 no", Rule{Pow2: "no"}, Env{Procs: 10}, true},
		{"multi-node yes", Rule{MultiNode: "yes"}, Env{Procs: 4, NumNodes: 2}, true},
		{"multi-node yes rejects single", Rule{MultiNode: "yes"}, Env{Procs: 4, NumNodes: 1}, false},
		{"multi-node no", Rule{MultiNode: "no"}, Env{Procs: 4}, true},
		{"invalid tri-state never matches", Rule{Pow2: "maybe"}, Env{Procs: 4}, false},
	}
	for _, tc := range cases {
		if got := tc.r.Matches(tc.e); got != tc.want {
			t.Errorf("%s: Matches = %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestTableFirstMatchWins(t *testing.T) {
	table := &Table{
		Name: "t",
		Rules: []Rule{
			{MinProcs: 16, MaxProcs: 16, MaxBytes: 1 << 10, Decision: Decision{Algorithm: Binomial}},
			{MinProcs: 16, MaxProcs: 16, Decision: Decision{Algorithm: RingOpt}},
			{Decision: Decision{Algorithm: Chain, SegSize: 4096}},
		},
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		e    Env
		want string
	}{
		{Env{Bytes: 512, Procs: 16}, Binomial},
		{Env{Bytes: 1 << 10, Procs: 16}, RingOpt},
		{Env{Bytes: 1 << 20, Procs: 16}, RingOpt},
		{Env{Bytes: 512, Procs: 9}, Chain},
	}
	for _, tc := range cases {
		d, ok := table.Lookup(tc.e)
		if !ok || d.Algorithm != tc.want {
			t.Errorf("Lookup(%+v) = (%+v, %v) want algorithm %q", tc.e, d, ok, tc.want)
		}
	}
	if _, ok := (&Table{}).Lookup(Env{Bytes: 1, Procs: 1}); ok {
		t.Error("empty table must not match")
	}
}

func TestTableTunerFallback(t *testing.T) {
	table := &Table{Rules: []Rule{
		{MinProcs: 64, MaxProcs: 64, Decision: Decision{Algorithm: Chain}},
	}}
	tuner := TableTuner{Table: table, Fallback: MPICH3{Tuned: true}}
	if d := tuner.Decide(Env{Bytes: 1 << 20, Procs: 64}); d.Algorithm != Chain {
		t.Errorf("covered env: got %q", d.Algorithm)
	}
	// Uncovered env falls back to the tuned MPICH3 dispatch.
	if d := tuner.Decide(Env{Bytes: 1 << 20, Procs: 10}); d.Algorithm != RingOpt {
		t.Errorf("fallback: got %q want %q", d.Algorithm, RingOpt)
	}
	// Nil fallback defaults to native MPICH3.
	bare := TableTuner{Table: table}
	if d := bare.Decide(Env{Bytes: 1 << 20, Procs: 10}); d.Algorithm != RingNative {
		t.Errorf("nil fallback: got %q want %q", d.Algorithm, RingNative)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	table := &Table{
		Name:        "hornet-tuned",
		Description: "test table",
		Rules: []Rule{
			{MinBytes: 1 << 19, MinProcs: 9, Pow2: "no", MultiNode: "yes",
				Decision: Decision{Algorithm: RingOpt}},
			{Decision: Decision{Algorithm: Chain, SegSize: 64 << 10}},
		},
	}
	data, err := table.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != table.Name || len(got.Rules) != len(table.Rules) {
		t.Fatalf("round trip mangled table: %+v", got)
	}
	for i := range table.Rules {
		if got.Rules[i] != table.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, got.Rules[i], table.Rules[i])
		}
	}

	path := filepath.Join(t.TempDir(), "table.json")
	if err := SaveTable(table, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rules[0] != table.Rules[0] {
		t.Errorf("file round trip mangled rule 0: %+v", loaded.Rules[0])
	}
	if _, err := LoadTable(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must fail")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTable(path); err == nil {
		t.Error("bad JSON must fail")
	}
}

func TestTableValidateRejects(t *testing.T) {
	bad := []Table{
		{Rules: []Rule{{}}}, // empty algorithm
		{Rules: []Rule{{MinBytes: 10, MaxBytes: 10, Decision: Decision{Algorithm: "x"}}}}, // empty byte range
		{Rules: []Rule{{MinProcs: 9, MaxProcs: 8, Decision: Decision{Algorithm: "x"}}}},   // inverted procs
		{Rules: []Rule{{Pow2: "maybe", Decision: Decision{Algorithm: "x"}}}},              // bad tri-state
		{Rules: []Rule{{MultiNode: "si", Decision: Decision{Algorithm: "x"}}}},            // bad tri-state
		{Rules: []Rule{{Decision: Decision{Algorithm: "x", SegSize: -1}}}},                // negative seg
		{Rules: []Rule{{MinBytes: -1, Decision: Decision{Algorithm: "x"}}}},               // negative bytes
		{Rules: []Rule{{Placement: "mesh", Decision: Decision{Algorithm: "x"}}}},          // unknown placement
		{Rules: []Rule{{CoresPerNode: -1, Decision: Decision{Algorithm: "x"}}}},           // negative cores
	}
	for i, tb := range bad {
		if err := tb.Validate(); err == nil {
			t.Errorf("table %d must fail validation", i)
		}
	}
	// ParseTable validates too.
	if _, err := ParseTable([]byte(`{"name":"t","rules":[{"decision":{"algorithm":""}}]}`)); err == nil {
		t.Error("ParseTable must validate")
	}
}

func TestMPICH3KnownPoints(t *testing.T) {
	// Spot checks straight from the paper's Section V description; the
	// exhaustive golden comparison against collective.SelectAlgorithm
	// lives in internal/collective (which owns the legacy dispatcher).
	cases := []struct {
		n, p  int
		tuned bool
		want  string
	}{
		{1024, 64, false, Binomial},
		{1 << 20, 7, true, Binomial},
		{12288, 64, false, ScatterRdb},
		{524287, 16, true, ScatterRdb},
		{12288, 9, false, RingNative},
		{12288, 9, true, RingOpt},
		{1 << 20, 129, false, RingNative},
		{1 << 20, 129, true, RingOpt},
	}
	for _, tc := range cases {
		d := MPICH3{Tuned: tc.tuned}.Decide(Env{Bytes: tc.n, Procs: tc.p})
		if d.Algorithm != tc.want {
			t.Errorf("MPICH3{%v}.Decide(n=%d, p=%d) = %q want %q", tc.tuned, tc.n, tc.p, d.Algorithm, tc.want)
		}
	}
}
