package tune

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/topology"
)

// Rule is one decision rule of a tuning table. A rule matches an Env when
// every constraint holds: message size in [MinBytes, MaxBytes) (MaxBytes
// 0 = unbounded), process count in [MinProcs, MaxProcs] (MaxProcs 0 =
// unbounded), and the optional tri-state topology constraints ("" = any,
// "yes"/"no" otherwise).
type Rule struct {
	MinBytes int `json:"min_bytes,omitempty"`
	MaxBytes int `json:"max_bytes,omitempty"`
	MinProcs int `json:"min_procs,omitempty"`
	MaxProcs int `json:"max_procs,omitempty"`
	// Pow2 constrains the process count: "yes" requires a power of two,
	// "no" requires a non-power-of-two, "" matches either.
	Pow2 string `json:"pow2,omitempty"`
	// MultiNode constrains the placement: "yes" requires ranks on more
	// than one node, "no" requires a single node, "" matches either.
	MultiNode string `json:"multi_node,omitempty"`
	// Placement constrains the placement classification to one of the
	// topology.Kind* names ("single", "blocked", "round-robin",
	// "irregular"); "" matches any placement. Placement-swept auto-tuning
	// emits one rule group per placement keyed on this field.
	Placement string `json:"placement,omitempty"`
	// CoresPerNode constrains the node occupancy (Env.CoresPerNode) to an
	// exact value; 0 matches any occupancy.
	CoresPerNode int `json:"cores_per_node,omitempty"`

	Decision Decision `json:"decision"`
}

// knownPlacement reports whether s is a valid Placement constraint.
func knownPlacement(s string) bool {
	switch s {
	case "", topology.KindSingle, topology.KindBlocked, topology.KindRoundRobin, topology.KindIrregular:
		return true
	default:
		return false
	}
}

func matchTri(constraint string, actual bool) (bool, error) {
	switch constraint {
	case "":
		return true, nil
	case "yes":
		return actual, nil
	case "no":
		return !actual, nil
	default:
		return false, fmt.Errorf("tune: bad tri-state constraint %q (want \"\", \"yes\" or \"no\")", constraint)
	}
}

// Matches reports whether the rule applies to e.
func (r Rule) Matches(e Env) bool {
	if e.Bytes < r.MinBytes || (r.MaxBytes > 0 && e.Bytes >= r.MaxBytes) {
		return false
	}
	if e.Procs < r.MinProcs || (r.MaxProcs > 0 && e.Procs > r.MaxProcs) {
		return false
	}
	if ok, err := matchTri(r.Pow2, e.Pow2()); err != nil || !ok {
		return false
	}
	if ok, err := matchTri(r.MultiNode, e.MultiNode()); err != nil || !ok {
		return false
	}
	if r.Placement != "" && r.Placement != e.Placement {
		return false
	}
	if r.CoresPerNode > 0 && r.CoresPerNode != e.CoresPerNode {
		return false
	}
	return true
}

// Table is an ordered list of decision rules — the serializable product
// of auto-tuning. Lookup scans rules in order and the first match wins,
// so specific rules (exact process counts, narrow size bands) go first
// and broad defaults last.
type Table struct {
	// Name identifies the table (e.g. the model it was tuned against).
	Name string `json:"name"`
	// Description is free-form provenance: grid, measurer, date.
	Description string `json:"description,omitempty"`
	Rules       []Rule `json:"rules"`
}

// Lookup returns the decision of the first matching rule.
func (t *Table) Lookup(e Env) (Decision, bool) {
	for _, r := range t.Rules {
		if r.Matches(e) {
			return r.Decision, true
		}
	}
	return Decision{}, false
}

// Validate checks structural sanity: every rule names an algorithm, has
// coherent ranges, and uses valid tri-state constraints.
func (t *Table) Validate() error {
	for i, r := range t.Rules {
		if r.Decision.Algorithm == "" {
			return fmt.Errorf("tune: table %q rule %d: empty algorithm", t.Name, i)
		}
		if r.MinBytes < 0 || (r.MaxBytes > 0 && r.MaxBytes <= r.MinBytes) {
			return fmt.Errorf("tune: table %q rule %d: bad byte range [%d, %d)", t.Name, i, r.MinBytes, r.MaxBytes)
		}
		if r.MinProcs < 0 || (r.MaxProcs > 0 && r.MaxProcs < r.MinProcs) {
			return fmt.Errorf("tune: table %q rule %d: bad proc range [%d, %d]", t.Name, i, r.MinProcs, r.MaxProcs)
		}
		if _, err := matchTri(r.Pow2, true); err != nil {
			return fmt.Errorf("tune: table %q rule %d: pow2: %w", t.Name, i, err)
		}
		if _, err := matchTri(r.MultiNode, true); err != nil {
			return fmt.Errorf("tune: table %q rule %d: multi_node: %w", t.Name, i, err)
		}
		if !knownPlacement(r.Placement) {
			return fmt.Errorf("tune: table %q rule %d: unknown placement %q", t.Name, i, r.Placement)
		}
		if r.CoresPerNode < 0 {
			return fmt.Errorf("tune: table %q rule %d: negative cores_per_node %d", t.Name, i, r.CoresPerNode)
		}
		if r.Decision.SegSize < 0 {
			return fmt.Errorf("tune: table %q rule %d: negative seg_size %d", t.Name, i, r.Decision.SegSize)
		}
	}
	return nil
}

// JSON serializes the table, indented for human inspection.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// ParseTable deserializes and validates a table.
func ParseTable(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tune: parse table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTable reads and validates a table from a JSON file.
func LoadTable(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: load table: %w", err)
	}
	return ParseTable(data)
}

// SaveTable writes the table as indented JSON.
func SaveTable(t *Table, path string) error {
	data, err := t.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// TableTuner dispatches through a tuning table, falling back to another
// tuner (MPICH3 native dispatch when Fallback is nil) for environments no
// rule covers.
type TableTuner struct {
	Table    *Table
	Fallback Tuner
}

// Decide implements Tuner.
func (t TableTuner) Decide(e Env) Decision {
	if t.Table != nil {
		if d, ok := t.Table.Lookup(e); ok {
			return d
		}
	}
	if t.Fallback != nil {
		return t.Fallback.Decide(e)
	}
	return MPICH3{}.Decide(e)
}
