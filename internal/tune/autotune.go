package tune

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Candidate is one algorithm the auto-tuner may select: a registry name,
// an applicability predicate, and a schedule generator the measurer can
// replay. The collective registry adapts its entries to this shape
// (collective.Candidates), keeping this package free of a dependency on
// the executable implementations.
type Candidate struct {
	// Name is the registry name recorded in emitted decisions.
	Name string
	// SegSize is the segment-size parameter for segmented algorithms
	// (0 for algorithms without one); it is copied into the decision.
	SegSize int
	// Applies reports whether the algorithm can run in e (nil = always).
	Applies func(e Env) bool
	// Program generates the algorithm's communication schedule.
	Program func(p, root, n, segSize int) (*sched.Program, error)
}

// Measurer estimates the steady-state per-iteration time of a candidate
// broadcast at one (p, n) grid point. Env reports the environment the
// measurement runs in, so AutoTune can evaluate applicability predicates
// consistently with the measurement topology.
type Measurer interface {
	Measure(c Candidate, p, n int) (float64, error)
	Env(p, n int) Env
}

// SimMeasurer measures candidates on the netsim virtual-time cluster
// model — fast enough for paper-scale grids (hundreds of ranks, tens of
// megabytes) on a laptop.
type SimMeasurer struct {
	// Model is the cluster calibration (netsim.Hornet() when nil).
	Model *netsim.Model
	// CoresPerNode controls the blocked placement (<= 0: single node).
	CoresPerNode int
	// Warm and Total bound the steady-state replication (defaults 2, 6).
	Warm, Total int
	// Root is the broadcast root.
	Root int
}

func (m SimMeasurer) fill() SimMeasurer {
	if m.Model == nil {
		m.Model = netsim.Hornet()
	}
	if m.Warm <= 0 {
		m.Warm = 2
	}
	if m.Total <= m.Warm {
		m.Total = m.Warm + 4
	}
	return m
}

func (m SimMeasurer) topo(p int) *topology.Map {
	if m.CoresPerNode <= 0 {
		return topology.SingleNode(p)
	}
	return topology.Blocked(p, m.CoresPerNode)
}

// Env implements Measurer.
func (m SimMeasurer) Env(p, n int) Env {
	return Env{Bytes: n, Procs: p, NumNodes: m.topo(p).NumNodes()}
}

// Measure implements Measurer.
func (m SimMeasurer) Measure(c Candidate, p, n int) (float64, error) {
	m = m.fill()
	if c.Program == nil {
		return 0, fmt.Errorf("tune: candidate %q has no static schedule", c.Name)
	}
	pr, err := c.Program(p, m.Root, n, c.SegSize)
	if err != nil {
		return 0, fmt.Errorf("tune: candidate %q at (p=%d, n=%d): %w", c.Name, p, n, err)
	}
	return netsim.SteadyStateIterTime(pr, m.topo(p), m.Model, m.Warm, m.Total)
}

// Winner is one auto-tuned grid point: the fastest applicable candidate
// and its measured per-iteration time.
type Winner struct {
	Procs, Bytes int
	Decision     Decision
	Seconds      float64
}

// AutoTune measures every applicable candidate at every (procs x sizes)
// grid point and derives a first-match rule Table from the winners: per
// process count, adjacent sizes won by the same algorithm merge into one
// size-band rule, reproducing the crossover-point tables of the
// measurement-driven tuning literature. The winners themselves are
// returned alongside for reporting.
//
// Candidates without a static schedule, or whose Applies predicate
// rejects the measurement environment, are skipped at that point; a grid
// point where no candidate can be measured is an error.
func AutoTune(cands []Candidate, m Measurer, procs, sizes []int) (*Table, []Winner, error) {
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("tune: no candidates")
	}
	if len(procs) == 0 || len(sizes) == 0 {
		return nil, nil, fmt.Errorf("tune: empty grid (%d procs, %d sizes)", len(procs), len(sizes))
	}
	procs = sortedCopy(procs)
	sizes = sortedCopy(sizes)

	var winners []Winner
	for _, p := range procs {
		for _, n := range sizes {
			e := m.Env(p, n)
			best := Winner{Procs: p, Bytes: n, Seconds: -1}
			for _, c := range cands {
				if c.Program == nil {
					continue
				}
				if c.Applies != nil && !c.Applies(e) {
					continue
				}
				dt, err := m.Measure(c, p, n)
				if err != nil {
					return nil, nil, err
				}
				if best.Seconds < 0 || dt < best.Seconds {
					best.Seconds = dt
					best.Decision = Decision{Algorithm: c.Name, SegSize: c.SegSize}
				}
			}
			if best.Seconds < 0 {
				return nil, nil, fmt.Errorf("tune: no measurable candidate at (p=%d, n=%d)", p, n)
			}
			winners = append(winners, best)
		}
	}

	t := &Table{
		Name:        "auto-tuned",
		Description: fmt.Sprintf("auto-tuned over %d procs x %d sizes", len(procs), len(sizes)),
	}
	// One exact-procs rule per (p, winner run): the first band of each p
	// extends down to 0 bytes and the last extends to infinity, so the
	// table is total for tuned process counts and falls through to the
	// tuner's fallback elsewhere.
	for _, p := range procs {
		var run []Winner
		for _, w := range winners {
			if w.Procs == p {
				run = append(run, w)
			}
		}
		for i := 0; i < len(run); {
			j := i
			for j+1 < len(run) && run[j+1].Decision == run[i].Decision {
				j++
			}
			r := Rule{MinProcs: p, MaxProcs: p, Decision: run[i].Decision}
			if i > 0 {
				r.MinBytes = run[i].Bytes
			}
			if j+1 < len(run) {
				r.MaxBytes = run[j+1].Bytes
			}
			t.Rules = append(t.Rules, r)
			i = j + 1
		}
	}
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, winners, nil
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
