package tune

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Candidate is one algorithm the auto-tuner may select: a registry name,
// an applicability predicate, and a schedule generator the measurer can
// replay. The collective registry adapts its entries to this shape
// (collective.Candidates), keeping this package free of a dependency on
// the executable implementations.
type Candidate struct {
	// Name is the registry name recorded in emitted decisions.
	Name string
	// SegSize is the segment-size parameter for segmented algorithms
	// (0 for algorithms without one); it is copied into the decision.
	SegSize int
	// Segmented marks candidates that accept a segment-size parameter;
	// sweep-based tuning expands these into one candidate per swept
	// segment size instead of measuring only the algorithm's default.
	Segmented bool
	// Applies reports whether the algorithm can run in e (nil = always).
	Applies func(e Env) bool
	// Program generates the algorithm's communication schedule.
	Program func(p, root, n, segSize int) (*sched.Program, error)
}

// Measurer estimates the steady-state per-iteration time of a candidate
// broadcast at one (p, n) grid point. Env reports the environment the
// measurement runs in, so AutoTune can evaluate applicability predicates
// consistently with the measurement topology.
type Measurer interface {
	Measure(c Candidate, p, n int) (float64, error)
	Env(p, n int) Env
}

// ProgramFree is implemented by measurers that execute candidates by
// name and need no static schedule (the real-engine measurer): for
// those, the tuning grid also considers candidates without a Program.
// Measurers that replay schedules (SimMeasurer) don't implement it, and
// schedule-less candidates are skipped on their grids.
type ProgramFree interface {
	ProgramFree() bool
}

// needsProgram reports whether m can only measure candidates carrying a
// static schedule.
func needsProgram(m Measurer) bool {
	pf, ok := m.(ProgramFree)
	return !ok || !pf.ProgramFree()
}

// Placement names one rank-to-node mapping shape for placement sweeps.
type Placement struct {
	// Kind is one of the topology.Kind* names; KindSingle ignores
	// CoresPerNode.
	Kind string
	// CoresPerNode is the node capacity for blocked and round-robin maps.
	CoresPerNode int
}

// Map realizes the placement for np ranks.
func (pl Placement) Map(np int) (*topology.Map, error) {
	switch pl.Kind {
	case topology.KindSingle:
		return topology.SingleNode(np), nil
	case topology.KindBlocked:
		if pl.CoresPerNode <= 0 {
			return nil, fmt.Errorf("tune: placement %q needs cores per node", pl.Kind)
		}
		return topology.Blocked(np, pl.CoresPerNode), nil
	case topology.KindRoundRobin:
		if pl.CoresPerNode <= 0 {
			return nil, fmt.Errorf("tune: placement %q needs cores per node", pl.Kind)
		}
		return topology.RoundRobin(np, pl.CoresPerNode), nil
	default:
		return nil, fmt.Errorf("tune: unknown placement kind %q", pl.Kind)
	}
}

// String renders the placement in the CLI syntax ParsePlacement accepts.
func (pl Placement) String() string {
	if pl.Kind == topology.KindSingle || pl.CoresPerNode <= 0 {
		return pl.Kind
	}
	return fmt.Sprintf("%s:%d", pl.Kind, pl.CoresPerNode)
}

// ParsePlacement parses "single", "blocked:24" or "round-robin:24"
// ("roundrobin" is accepted as an alias).
func ParsePlacement(s string) (Placement, error) {
	kind, coresStr, has := strings.Cut(strings.TrimSpace(s), ":")
	switch kind {
	case "roundrobin", "rr":
		kind = topology.KindRoundRobin
	}
	pl := Placement{Kind: kind}
	if has {
		cores, err := strconv.Atoi(coresStr)
		if err != nil || cores < 1 {
			return Placement{}, fmt.Errorf("tune: bad cores in placement %q", s)
		}
		pl.CoresPerNode = cores
	}
	switch pl.Kind {
	case topology.KindSingle:
		if pl.CoresPerNode != 0 {
			return Placement{}, fmt.Errorf("tune: placement %q takes no cores", s)
		}
	case topology.KindBlocked, topology.KindRoundRobin:
		if pl.CoresPerNode == 0 {
			return Placement{}, fmt.Errorf("tune: placement %q needs cores, e.g. %q", s, s+":24")
		}
	default:
		return Placement{}, fmt.Errorf("tune: unknown placement %q (single|blocked:N|round-robin:N)", s)
	}
	return pl, nil
}

// SimMeasurer measures candidates on the netsim virtual-time cluster
// model — fast enough for paper-scale grids (hundreds of ranks, tens of
// megabytes) on a laptop.
type SimMeasurer struct {
	// Model is the cluster calibration (netsim.Hornet() when nil).
	Model *netsim.Model
	// Place selects the rank placement. When its Kind is empty the legacy
	// CoresPerNode field decides instead.
	Place Placement
	// CoresPerNode controls the blocked placement (<= 0: single node);
	// ignored when Place is set.
	CoresPerNode int
	// Warm and Total bound the steady-state replication (defaults 2, 6).
	Warm, Total int
	// Root is the broadcast root.
	Root int
}

func (m SimMeasurer) fill() SimMeasurer {
	if m.Model == nil {
		m.Model = netsim.Hornet()
	}
	if m.Warm <= 0 {
		m.Warm = 2
	}
	if m.Total <= m.Warm {
		m.Total = m.Warm + 4
	}
	return m
}

func (m SimMeasurer) topo(p int) (*topology.Map, error) {
	if m.Place.Kind != "" {
		return m.Place.Map(p)
	}
	if m.CoresPerNode <= 0 {
		return topology.SingleNode(p), nil
	}
	return topology.Blocked(p, m.CoresPerNode), nil
}

// Env implements Measurer. The environment is derived from the realized
// topology map, so placement-swept rules key on the same classification a
// runtime broadcast over that map would present. An invalid Place cannot
// be reported through this signature: the environment degrades to
// (Bytes, Procs) only, and the underlying error surfaces from the next
// Measure call (AutoTuneSweep additionally pre-validates placements, so
// the degraded path is reachable only by handing a malformed SimMeasurer
// straight to AutoTune).
func (m SimMeasurer) Env(p, n int) Env {
	topo, err := m.topo(p)
	if err != nil {
		return Env{Bytes: n, Procs: p}
	}
	return EnvOf(n, p, topo)
}

// Measure implements Measurer.
func (m SimMeasurer) Measure(c Candidate, p, n int) (float64, error) {
	m = m.fill()
	if c.Program == nil {
		return 0, fmt.Errorf("tune: candidate %q has no static schedule", c.Name)
	}
	pr, err := c.Program(p, m.Root, n, c.SegSize)
	if err != nil {
		return 0, fmt.Errorf("tune: candidate %q at (p=%d, n=%d): %w", c.Name, p, n, err)
	}
	topo, err := m.topo(p)
	if err != nil {
		return 0, err
	}
	return netsim.SteadyStateIterTime(pr, topo, m.Model, m.Warm, m.Total)
}

// Winner is one auto-tuned grid point: the fastest applicable candidate,
// its measured per-iteration time, and the environment it was measured in
// (placement classification included).
type Winner struct {
	Procs, Bytes int
	Env          Env
	Decision     Decision
	Seconds      float64
}

// tuneGrid measures every applicable candidate at every (procs x sizes)
// point and returns the per-point winners. procs and sizes must be
// sorted.
func tuneGrid(cands []Candidate, m Measurer, procs, sizes []int) ([]Winner, error) {
	skipNoProgram := needsProgram(m)
	var winners []Winner
	for _, p := range procs {
		for _, n := range sizes {
			e := m.Env(p, n)
			best := Winner{Procs: p, Bytes: n, Env: e, Seconds: -1}
			for _, c := range cands {
				if c.Program == nil && skipNoProgram {
					continue
				}
				if c.Applies != nil && !c.Applies(e) {
					continue
				}
				dt, err := m.Measure(c, p, n)
				if err != nil {
					return nil, err
				}
				if best.Seconds < 0 || dt < best.Seconds {
					best.Seconds = dt
					best.Decision = Decision{Algorithm: c.Name, SegSize: c.SegSize}
				}
			}
			if best.Seconds < 0 {
				return nil, fmt.Errorf("tune: no measurable candidate at (p=%d, n=%d)", p, n)
			}
			winners = append(winners, best)
		}
	}
	return winners, nil
}

// crossoverRules derives first-match rules from grid winners: per process
// count, adjacent sizes won by the same decision merge into one size-band
// rule. The first band of each p extends down to 0 bytes and the last to
// infinity, so the rules are total for tuned process counts. mark, when
// non-nil, stamps extra constraints (e.g. placement) onto every rule.
func crossoverRules(winners []Winner, procs []int, mark func(*Rule)) []Rule {
	var rules []Rule
	for _, p := range procs {
		var run []Winner
		for _, w := range winners {
			if w.Procs == p {
				run = append(run, w)
			}
		}
		for i := 0; i < len(run); {
			j := i
			for j+1 < len(run) && run[j+1].Decision == run[i].Decision {
				j++
			}
			r := Rule{MinProcs: p, MaxProcs: p, Decision: run[i].Decision}
			if i > 0 {
				r.MinBytes = run[i].Bytes
			}
			if j+1 < len(run) {
				r.MaxBytes = run[j+1].Bytes
			}
			if mark != nil {
				mark(&r)
			}
			rules = append(rules, r)
			i = j + 1
		}
	}
	return rules
}

// AutoTune measures every applicable candidate at every (procs x sizes)
// grid point and derives a first-match rule Table from the winners,
// reproducing the crossover-point tables of the measurement-driven tuning
// literature. The winners themselves are returned alongside for
// reporting.
//
// Candidates whose Applies predicate rejects the measurement
// environment are skipped at that point, as are candidates without a
// static schedule unless the measurer declares itself ProgramFree; a
// grid point where no candidate can be measured is an error. For
// segment-size and placement sweeps, see AutoTuneSweep.
func AutoTune(cands []Candidate, m Measurer, procs, sizes []int) (*Table, []Winner, error) {
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("tune: no candidates")
	}
	if len(procs) == 0 || len(sizes) == 0 {
		return nil, nil, fmt.Errorf("tune: empty grid (%d procs, %d sizes)", len(procs), len(sizes))
	}
	procs = sortedCopy(procs)
	sizes = sortedCopy(sizes)

	winners, err := tuneGrid(cands, m, procs, sizes)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Name:        "auto-tuned",
		Description: fmt.Sprintf("auto-tuned over %d procs x %d sizes", len(procs), len(sizes)),
		Rules:       crossoverRules(winners, procs, nil),
	}
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, winners, nil
}

// SweepConfig parameterizes AutoTuneSweep.
type SweepConfig struct {
	// Procs and Sizes span the measurement grid (both required).
	Procs, Sizes []int
	// SegSizes are the segment sizes swept for every Segmented candidate,
	// replacing the algorithm's single default. Empty = defaults only.
	SegSizes []int
	// Placements are the rank placements swept; one rule group is emitted
	// per placement, keyed on the realized topology's classification.
	// Empty = the measurer factory's default placement, unconstrained
	// rules.
	Placements []Placement
}

// AutoTuneSweep generalizes AutoTune along the two axes the paper's
// Section V crossovers are known to shift with: segment size and process
// placement. Every Segmented candidate is expanded into one candidate per
// cfg.SegSizes entry, and the whole grid is re-measured under every
// cfg.Placements entry via the measurer factory mk. The emitted table
// concatenates one rule group per placement, each rule constrained to the
// placement classification and node occupancy actually realized at its
// process count (a blocked sweep that collapses onto one node at small p
// emits single-node rules there, matching what a runtime broadcast over
// that map would look up).
func AutoTuneSweep(cands []Candidate, mk func(Placement) Measurer, cfg SweepConfig) (*Table, []Winner, error) {
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("tune: no candidates")
	}
	if len(cfg.Procs) == 0 || len(cfg.Sizes) == 0 {
		return nil, nil, fmt.Errorf("tune: empty grid (%d procs, %d sizes)", len(cfg.Procs), len(cfg.Sizes))
	}
	if mk == nil {
		return nil, nil, fmt.Errorf("tune: nil measurer factory")
	}
	procs := sortedCopy(cfg.Procs)
	sizes := sortedCopy(cfg.Sizes)
	expanded := expandSegments(cands, cfg.SegSizes)

	placements := cfg.Placements
	constrain := true
	if len(placements) == 0 {
		placements = []Placement{{}}
		constrain = false
	}

	t := &Table{Name: "auto-tuned"}
	var all []Winner
	for _, pl := range placements {
		if constrain {
			if _, err := pl.Map(1); err != nil {
				return nil, nil, err
			}
		}
		winners, err := tuneGrid(expanded, mk(pl), procs, sizes)
		if err != nil {
			return nil, nil, fmt.Errorf("tune: placement %s: %w", pl, err)
		}
		all = append(all, winners...)
		byProcs := map[int]Env{}
		for _, w := range winners {
			byProcs[w.Procs] = w.Env
		}
		rules := crossoverRules(winners, procs, func(r *Rule) {
			if !constrain {
				return
			}
			e := byProcs[r.MinProcs]
			r.Placement = e.Placement
			r.CoresPerNode = e.CoresPerNode
		})
		t.Rules = appendNewRules(t.Rules, rules)
	}
	t.Description = fmt.Sprintf("auto-tuned over %d procs x %d sizes x %d placements (%d segment sizes)",
		len(procs), len(sizes), len(placements), len(cfg.SegSizes))
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, all, nil
}

// expandSegments replaces every Segmented candidate with one copy per
// swept segment size; non-segmented candidates pass through unchanged.
func expandSegments(cands []Candidate, segSizes []int) []Candidate {
	if len(segSizes) == 0 {
		return cands
	}
	var out []Candidate
	for _, c := range cands {
		if !c.Segmented {
			out = append(out, c)
			continue
		}
		for _, seg := range segSizes {
			cc := c
			cc.SegSize = seg
			out = append(out, cc)
		}
	}
	return out
}

// appendNewRules appends rules, dropping exact duplicates of already
// emitted rules (placements that collapse onto the same realized topology
// at small process counts produce identical groups there).
func appendNewRules(rules, add []Rule) []Rule {
	for _, r := range add {
		dup := false
		for _, have := range rules {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			rules = append(rules, r)
		}
	}
	return rules
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
