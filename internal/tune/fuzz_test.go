package tune

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// probeEnvs is a fixed grid of lookup environments spanning every rule
// dimension: size bands, process counts, pow2-ness, node counts,
// placement kinds and occupancies.
func probeEnvs() []Env {
	var out []Env
	for _, n := range []int{0, 1, 12287, 12288, 1 << 19, 1 << 25} {
		for _, p := range []int{1, 8, 10, 64, 129} {
			for _, nodes := range []int{1, 3} {
				for _, place := range []string{"", topology.KindSingle, topology.KindBlocked, topology.KindRoundRobin} {
					out = append(out, Env{
						Bytes: n, Procs: p, NumNodes: nodes,
						CoresPerNode: 24, Placement: place,
					})
				}
			}
		}
	}
	return out
}

// FuzzTableRoundTrip is the table serialization property test: any JSON
// input that parses into a Validate-clean Table must survive
// marshal -> unmarshal -> Lookup identically — same rule count, same
// decision (or same miss) at every probe environment, and a stable
// re-marshalling. Malformed tables must be rejected by ParseTable, never
// silently repaired.
func FuzzTableRoundTrip(f *testing.F) {
	seeds := []string{
		`{"name":"t","rules":[]}`,
		`{"name":"t","rules":[{"decision":{"algorithm":"binomial"}}]}`,
		`{"name":"t","rules":[
			{"min_bytes":524288,"min_procs":9,"pow2":"no","multi_node":"yes",
			 "decision":{"algorithm":"scatter-ring-allgather-opt"}},
			{"decision":{"algorithm":"chain","seg_size":65536}}]}`,
		`{"name":"placed","rules":[
			{"min_procs":64,"max_procs":64,"placement":"blocked","cores_per_node":24,
			 "decision":{"algorithm":"scatter-ring-allgather-opt-seg","seg_size":8192}},
			{"min_procs":64,"max_procs":64,"placement":"round-robin","cores_per_node":22,
			 "decision":{"algorithm":"scatter-ring-allgather-opt"}}]}`,
		// Malformed seeds: these must keep failing ParseTable.
		`{"name":"t","rules":[{"decision":{"algorithm":"x","seg_size":-1}}]}`,
		`{"name":"t","rules":[{"min_bytes":10,"max_bytes":5,"decision":{"algorithm":"x"}}]}`,
		`{"name":"t","rules":[{"min_procs":9,"max_procs":8,"decision":{"algorithm":"x"}}]}`,
		`{"name":"t","rules":[{"placement":"mesh","decision":{"algorithm":"x"}}]}`,
		`{"name":"t","rules":[{"cores_per_node":-3,"decision":{"algorithm":"x"}}]}`,
		`{not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	envs := probeEnvs()
	f.Fuzz(func(t *testing.T, data []byte) {
		table, err := ParseTable(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		// ParseTable only returns validated tables.
		if err := table.Validate(); err != nil {
			t.Fatalf("parsed table fails Validate: %v", err)
		}
		out, err := table.JSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := ParseTable(out)
		if err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, out)
		}
		if back.Name != table.Name || len(back.Rules) != len(table.Rules) {
			t.Fatalf("round trip mangled structure: %d rules -> %d", len(table.Rules), len(back.Rules))
		}
		for i := range table.Rules {
			if back.Rules[i] != table.Rules[i] {
				t.Fatalf("rule %d mangled: %+v -> %+v", i, table.Rules[i], back.Rules[i])
			}
		}
		for _, e := range envs {
			d1, ok1 := table.Lookup(e)
			d2, ok2 := back.Lookup(e)
			if ok1 != ok2 || d1 != d2 {
				t.Fatalf("Lookup(%+v) diverged: (%+v,%v) -> (%+v,%v)", e, d1, ok1, d2, ok2)
			}
		}
		// Marshalling is stable: a second round trip emits identical bytes.
		out2, err := back.JSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshalling unstable:\n%s\nvs\n%s", out, out2)
		}
	})
}
