// Package tune is the broadcast-algorithm selection subsystem.
//
// The reproduced paper's central observation is that which broadcast
// algorithm wins depends on the message size, the process count, and the
// topology — MPICH3 hardcodes that choice behind fixed thresholds.
// This package makes selection itself a first-class, replaceable layer:
//
//   - Env is the selection key: message size, process count, node count,
//     node occupancy and placement classification (all carried through
//     the communicator's topology.Map — see EnvOf);
//   - Decision names a registered algorithm plus its parameters
//     (currently the segment size for pipelined schedules);
//   - Tuner maps Env to Decision. MPICH3 is the default tuner and
//     reproduces MPICH3's dispatch bit-for-bit (golden-tested against
//     collective.SelectAlgorithm);
//   - Table is a JSON-serializable rule list (size/procs/topology/
//     placement-keyed, first match wins) and TableTuner dispatches
//     through one;
//   - AutoTune sweeps Candidates over a (procs x sizes) grid with a
//     Measurer — virtual-time netsim by default, the real engine via
//     internal/bench — and derives a Table from the per-point winners,
//     the measured crossover points of the paper's Section V;
//   - AutoTuneSweep extends the grid along the two axes those crossovers
//     are known to shift with: segment sizes (every Segmented candidate
//     measured at each swept size) and placements (blocked vs round-robin
//     at varying cores per node), emitting one placement-keyed rule group
//     per placement.
//
// The executable algorithms live in internal/collective and register
// themselves into a registry keyed by the names below; internal/collective
// depends on this package (for Env/Decision/Tuner), never the reverse.
//
// # Where selection happens: the facade architecture
//
// Tuning is configured at the API boundary and resolved on one path.
// The public facade (package bcast, the module's importable surface)
// turns its functional options — a pinned algorithm, a segment size, a
// custom tuner, a JSON table loaded by bcast.TuneTable — into a
// collective.Options value; collective.Broadcast derives the Env from
// the communicator (EnvOf over Comm.Topology()) and calls
// Options.Decide, which yields exactly one Decision; and
// collective.RunDecision executes it through the registry after
// checking capabilities. Bcast, BcastOpt, BcastWith and the bench
// harness fill the same struct, so "which algorithm runs" has a single
// answer per (Options, Env) everywhere — the one-selection-path
// invariant. Nothing below the Options layer hardcodes a choice, and
// nothing above it re-derives one: a table derived by AutoTuneSweep
// under a swept placement therefore resolves at run time exactly as it
// was measured, whether the call came from the facade, a CLI tool, or
// the measurement subsystem itself.
package tune

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// Registered broadcast algorithm names. The collective registry and every
// tuning table use these strings; they are the stable, CLI-friendly
// identifiers of the algorithm family.
const (
	// Binomial is the whole-buffer binomial tree (MPICH short-message).
	Binomial = "binomial"
	// ScatterRdb is binomial scatter + recursive-doubling allgather
	// (MPICH medium-message, power-of-two communicators only).
	ScatterRdb = "scatter-rdb-allgather"
	// RingNative is binomial scatter + enclosed ring allgather — the
	// paper's MPI_Bcast_native (MPICH long-message).
	RingNative = "scatter-ring-allgather"
	// RingOpt is binomial scatter + the paper's non-enclosed ring
	// allgather — MPI_Bcast_opt.
	RingOpt = "scatter-ring-allgather-opt"
	// RingSeg is the segmented native ring broadcast: the enclosed ring
	// allgather pipelined in SegSize chunks.
	RingSeg = "scatter-ring-allgather-seg"
	// RingOptSeg is the segmented tuned ring broadcast: the non-enclosed
	// ring allgather pipelined in SegSize chunks.
	RingOptSeg = "scatter-ring-allgather-opt-seg"
	// RingSegNB and RingOptSegNB are the overlap-aware segmented rings:
	// the same pipelined schedules as RingSeg/RingOptSeg, but every
	// segment receive of a ring step is pre-posted through Irecv before
	// any segment is forwarded, so the transport can land segment k+1
	// while segment k is still being sent.
	RingSegNB    = "scatter-ring-allgather-seg-nb"
	RingOptSegNB = "scatter-ring-allgather-opt-seg-nb"
	// Chain is the segmented pipeline-chain broadcast (extension
	// baseline; takes a segment-size parameter).
	Chain = "chain"
	// SMP is the multi-core aware broadcast with the native inter-node
	// ring; SMPOpt uses the paper's tuned ring between node leaders.
	SMP    = "smp"
	SMPOpt = "smp-opt"
)

// MPICH3 broadcast dispatch thresholds (Section V of the paper: "The
// message size threshold determined by MPICH3 to switch from short
// messages to medium messages is 12288 bytes and ... from medium to long
// messages is 524288 bytes").
const (
	// ShortMsgSize: messages strictly below this use the binomial tree.
	ShortMsgSize = 12288
	// LongMsgSize: messages at or above this always use
	// scatter-ring-allgather.
	LongMsgSize = 512 << 10
	// MinRingProcs: communicators smaller than this always use the
	// binomial tree (MPIR_BCAST_MIN_PROCS in MPICH).
	MinRingProcs = 8
)

// Env is the selection key a Tuner decides on: everything about a
// broadcast call that is known before any byte moves.
type Env struct {
	// Bytes is the broadcast message size.
	Bytes int
	// Procs is the communicator size.
	Procs int
	// NumNodes is the number of distinct nodes hosting the communicator's
	// ranks (0 or 1 means single-node; selection must not depend on the
	// difference).
	NumNodes int
	// CoresPerNode is the largest number of ranks hosted on one node
	// (topology.Map.MaxCoresPerNode; 0 = unknown, and selection must not
	// depend on the difference between 0 and an unconstrained rule).
	CoresPerNode int
	// Placement classifies the rank-to-node mapping — one of the
	// topology.Kind* names ("single", "blocked", "round-robin",
	// "irregular"; "" = unknown).
	Placement string
}

// EnvOf derives the full selection environment of an n-byte broadcast
// over the ranks placed by topo: node count, node occupancy and placement
// classification all come from the map, so a table tuned under a swept
// placement matches the same environment at run time.
func EnvOf(n, procs int, topo *topology.Map) Env {
	e := Env{Bytes: n, Procs: procs}
	if topo != nil {
		e.NumNodes = topo.NumNodes()
		e.CoresPerNode = topo.MaxCoresPerNode()
		e.Placement = topo.Kind()
	}
	return e
}

// Pow2 reports whether the process count is a power of two.
func (e Env) Pow2() bool { return core.IsPow2(e.Procs) }

// MultiNode reports whether the communicator spans more than one node.
func (e Env) MultiNode() bool { return e.NumNodes > 1 }

// Decision is a tuner's verdict: the registry name of the algorithm to
// run and its parameters.
type Decision struct {
	// Algorithm is the registered algorithm name (e.g. RingOpt).
	Algorithm string `json:"algorithm"`
	// SegSize is the segment size in bytes for segmented (pipelined)
	// algorithms; 0 means the algorithm's default.
	SegSize int `json:"seg_size,omitempty"`
}

// Tuner selects a broadcast algorithm for an environment. Implementations
// must be pure: the same Env always yields the same Decision, and Decide
// must be safe for concurrent use (every rank of a communicator calls it
// and all must agree).
type Tuner interface {
	Decide(e Env) Decision
}

// MPICH3 is the default tuner: the dispatch MPICH3 hardcodes, reproduced
// bit-for-bit (short: binomial; medium power-of-two: scatter +
// recursive doubling; long or medium non-power-of-two: scatter + ring).
// With Tuned set, the ring path selects the paper's non-enclosed ring.
type MPICH3 struct {
	// Tuned selects the paper's optimized ring on the ring paths.
	Tuned bool
}

// Decide implements Tuner.
func (m MPICH3) Decide(e Env) Decision {
	switch {
	case e.Bytes < ShortMsgSize || e.Procs < MinRingProcs:
		return Decision{Algorithm: Binomial}
	case e.Bytes < LongMsgSize && e.Pow2():
		return Decision{Algorithm: ScatterRdb}
	case m.Tuned:
		return Decision{Algorithm: RingOpt}
	default:
		return Decision{Algorithm: RingNative}
	}
}
