package tune

// CachedDecision memoizes a single tuner decision keyed on the full
// selection environment. Serving workloads resolve the same Env for
// millions of operations; Env is a comparable value, so the cache is
// one struct equality check on the hit path — no map, no allocation,
// no lock (a CachedDecision belongs to one handle on one rank).
//
// The memo must be dropped (Invalidate) whenever something that feeds
// the decision besides the Env changes — a re-pinned algorithm, a
// swapped tuner, a segment-size override — otherwise the stale decision
// keeps winning the equality check forever.
type CachedDecision struct {
	env   Env
	dec   Decision
	valid bool
}

// Get returns the memoized decision when e matches the cached
// environment, and otherwise computes it with decide and caches it.
func (c *CachedDecision) Get(e Env, decide func(Env) Decision) Decision {
	if c.valid && c.env == e {
		return c.dec
	}
	c.env = e
	c.dec = decide(e)
	c.valid = true
	return c.dec
}

// Invalidate drops the memo; the next Get recomputes.
func (c *CachedDecision) Invalidate() { c.valid = false }
