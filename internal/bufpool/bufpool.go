// Package bufpool provides size-classed free lists for the scratch
// buffers the engine's message path and the collective algorithms
// allocate per operation. In a long-lived world serving millions of
// collectives, per-message `make`s dominate the allocation profile
// (see BENCH_pooled_vs_goroutine.json); routing them through these
// pools makes the steady state allocation-free regardless of segment
// count or message size.
//
// Buffers travel inside a wrapper (Buf, F64) whose pointer is what the
// underlying sync.Pool stores, so neither Get nor Release allocates on
// the pool hit path — pooling a bare slice would box its header into an
// interface on every Put.
//
// # Ownership
//
// Get transfers exclusive ownership of the wrapper and its buffer to
// the caller; ownership may be handed off (the engine's eager path
// fills a buffer on the sender and releases it on the receiver), but
// exactly one goroutine owns a wrapper at any moment and only the
// owner may call Release. After Release the buffer must not be read or
// written — the pool will hand it to an unrelated caller. Buffers are
// returned with their previous contents intact; callers that need
// zeroed memory must clear them.
package bufpool

import (
	"math/bits"
	"sync"
)

// Size classes are powers of two from 1<<minShift to 1<<maxShift
// bytes. Requests above the largest class fall back to plain
// allocation and are dropped on Release (huge one-off transfers must
// not pin megabytes in the pool forever).
const (
	minShift = 6  // 64 B
	maxShift = 22 // 4 MiB
)

// Buf is a pooled byte buffer. B has exactly the requested length; its
// capacity is the size class.
type Buf struct {
	B    []byte
	pool *sync.Pool
}

// F64 is a pooled float64 buffer. F has exactly the requested length.
type F64 struct {
	F    []float64
	pool *sync.Pool
}

var bytePools [maxShift - minShift + 1]sync.Pool
var f64Pools [maxShift - minShift + 1]sync.Pool

func init() {
	for i := range bytePools {
		shift := minShift + i
		pool := &bytePools[i]
		pool.New = func() any {
			return &Buf{B: make([]byte, 1<<shift), pool: pool}
		}
	}
	for i := range f64Pools {
		shift := minShift + i
		pool := &f64Pools[i]
		pool.New = func() any {
			return &F64{F: make([]float64, 1<<shift), pool: pool}
		}
	}
}

// class returns the pool index for a request of n elements, or -1 when
// n exceeds the largest class. Negative n panics here with a clear
// message — without the check it would surface as a bare reslice panic
// deep in Get, after handing out a pooled buffer it then leaks.
func class(n int) int {
	if n < 0 {
		panic("bufpool: negative length request")
	}
	if n > 1<<maxShift {
		return -1
	}
	shift := minShift
	if n > 1<<minShift {
		shift = bits.Len(uint(n - 1))
	}
	return shift - minShift
}

// Get returns a buffer of length n (n >= 0). The contents are
// unspecified.
func Get(n int) *Buf {
	c := class(n)
	if c < 0 {
		return &Buf{B: make([]byte, n)}
	}
	b := bytePools[c].Get().(*Buf)
	b.B = b.B[:cap(b.B)][:n]
	return b
}

// Release returns b to its pool. b must not be used afterwards.
func (b *Buf) Release() {
	if b == nil || b.pool == nil {
		return
	}
	b.pool.Put(b)
}

// GetF64 returns a float64 buffer of length n (n >= 0). The contents
// are unspecified.
func GetF64(n int) *F64 {
	c := class(n)
	if c < 0 {
		return &F64{F: make([]float64, n)}
	}
	f := f64Pools[c].Get().(*F64)
	f.F = f.F[:cap(f.F)][:n]
	return f
}

// Release returns f to its pool. f must not be used afterwards.
func (f *F64) Release() {
	if f == nil || f.pool == nil {
		return
	}
	f.pool.Put(f)
}
