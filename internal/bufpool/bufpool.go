// Package bufpool provides size-classed free lists for the scratch
// buffers the engine's message path and the collective algorithms
// allocate per operation. In a long-lived world serving millions of
// collectives, per-message `make`s dominate the allocation profile
// (see BENCH_pooled_vs_goroutine.json); routing them through these
// pools makes the steady state allocation-free regardless of segment
// count or message size.
//
// Buffers travel inside a wrapper (Buf, F64) whose pointer is what the
// underlying sync.Pool stores, so neither Get nor Release allocates on
// the pool hit path — pooling a bare slice would box its header into an
// interface on every Put.
//
// # Ownership
//
// Get transfers exclusive ownership of the wrapper and its buffer to
// the caller; ownership may be handed off (the engine's eager path
// fills a buffer on the sender and releases it on the receiver), but
// exactly one goroutine owns a wrapper at any moment and only the
// owner may call Release. After Release the buffer must not be read or
// written — the pool will hand it to an unrelated caller. Buffers are
// returned with their previous contents intact; callers that need
// zeroed memory must clear them.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 1<<minShift to 1<<maxShift
// bytes. Requests above the largest class fall back to plain
// allocation and are dropped on Release (huge one-off transfers must
// not pin megabytes in the pool forever).
const (
	minShift = 6  // 64 B
	maxShift = 22 // 4 MiB
)

// Buf is a pooled byte buffer. B has exactly the requested length; its
// capacity is the size class.
type Buf struct {
	B     []byte
	pool  *sync.Pool
	stats *classCounters
}

// F64 is a pooled float64 buffer. F has exactly the requested length.
type F64 struct {
	F     []float64
	pool  *sync.Pool
	stats *classCounters
}

var bytePools [maxShift - minShift + 1]sync.Pool
var f64Pools [maxShift - minShift + 1]sync.Pool

// classCounters tracks one size class's lifetime activity (byte and
// float64 pools of the same class share a row — both serve the same
// collective scratch traffic). A miss is a Get the pool served by
// allocating (its New ran); hits are gets - misses. The counters are
// process-global like the pools themselves, atomic so the hot path
// stays lock- and allocation-free.
type classCounters struct {
	gets, puts, misses atomic.Int64
}

var classStats [maxShift - minShift + 1]classCounters

// Oversize requests bypass the pools entirely: Get falls back to a
// plain allocation and Release drops the buffer.
var oversizeGets, oversizePuts atomic.Int64

// ClassStats is one size class's activity for Stats.
type ClassStats struct {
	Size   int // class capacity (bytes, or elements for float64 buffers)
	Gets   int64
	Puts   int64
	Misses int64
}

// Stats reports per-class gets/puts/misses for every class with any
// activity, plus the oversize fallback totals. The counts are
// process-global and monotonic.
func Stats() (classes []ClassStats, oGets, oPuts int64) {
	for i := range classStats {
		c := &classStats[i]
		g, p, m := c.gets.Load(), c.puts.Load(), c.misses.Load()
		if g == 0 && p == 0 && m == 0 {
			continue
		}
		classes = append(classes, ClassStats{Size: 1 << (minShift + i), Gets: g, Puts: p, Misses: m})
	}
	return classes, oversizeGets.Load(), oversizePuts.Load()
}

func init() {
	for i := range bytePools {
		shift := minShift + i
		pool := &bytePools[i]
		stats := &classStats[i]
		pool.New = func() any {
			stats.misses.Add(1)
			return &Buf{B: make([]byte, 1<<shift), pool: pool, stats: stats}
		}
	}
	for i := range f64Pools {
		shift := minShift + i
		pool := &f64Pools[i]
		stats := &classStats[i]
		pool.New = func() any {
			stats.misses.Add(1)
			return &F64{F: make([]float64, 1<<shift), pool: pool, stats: stats}
		}
	}
}

// class returns the pool index for a request of n elements, or -1 when
// n exceeds the largest class. Negative n panics here with a clear
// message — without the check it would surface as a bare reslice panic
// deep in Get, after handing out a pooled buffer it then leaks.
func class(n int) int {
	if n < 0 {
		panic("bufpool: negative length request")
	}
	if n > 1<<maxShift {
		return -1
	}
	shift := minShift
	if n > 1<<minShift {
		shift = bits.Len(uint(n - 1))
	}
	return shift - minShift
}

// Get returns a buffer of length n (n >= 0). The contents are
// unspecified.
func Get(n int) *Buf {
	c := class(n)
	if c < 0 {
		oversizeGets.Add(1)
		return &Buf{B: make([]byte, n)}
	}
	classStats[c].gets.Add(1)
	b := bytePools[c].Get().(*Buf)
	b.B = b.B[:cap(b.B)][:n]
	return b
}

// Release returns b to its pool. b must not be used afterwards.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.pool == nil {
		oversizePuts.Add(1)
		return
	}
	b.stats.puts.Add(1)
	b.pool.Put(b)
}

// GetF64 returns a float64 buffer of length n (n >= 0). The contents
// are unspecified.
func GetF64(n int) *F64 {
	c := class(n)
	if c < 0 {
		oversizeGets.Add(1)
		return &F64{F: make([]float64, n)}
	}
	classStats[c].gets.Add(1)
	f := f64Pools[c].Get().(*F64)
	f.F = f.F[:cap(f.F)][:n]
	return f
}

// Release returns f to its pool. f must not be used afterwards.
func (f *F64) Release() {
	if f == nil {
		return
	}
	if f.pool == nil {
		oversizePuts.Add(1)
		return
	}
	f.stats.puts.Add(1)
	f.pool.Put(f)
}
