package bufpool

import (
	"testing"
)

func TestGetLengthsAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 12, (1 << 12) + 1, 1 << 22} {
		b := Get(n)
		if len(b.B) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Fatalf("Get(%d): cap = %d < n", n, cap(b.B))
		}
		if b.pool == nil {
			t.Fatalf("Get(%d): class-sized buffer has no pool", n)
		}
		b.Release()
	}
}

func TestOversizeFallsBack(t *testing.T) {
	n := (1 << 22) + 1
	b := Get(n)
	if len(b.B) != n {
		t.Fatalf("oversize len = %d, want %d", len(b.B), n)
	}
	if b.pool != nil {
		t.Fatal("oversize buffer must not carry a pool")
	}
	b.Release() // must be a no-op, not a panic
}

func TestZeroLength(t *testing.T) {
	b := Get(0)
	if len(b.B) != 0 {
		t.Fatalf("Get(0): len = %d", len(b.B))
	}
	b.Release()
	f := GetF64(0)
	if len(f.F) != 0 {
		t.Fatalf("GetF64(0): len = %d", len(f.F))
	}
	f.Release()
}

func TestNegativeLengthPanics(t *testing.T) {
	for name, get := range map[string]func(){
		"Get":    func() { Get(-1) },
		"GetF64": func() { GetF64(-5) },
	} {
		func() {
			defer func() {
				if rec := recover(); rec == nil {
					t.Errorf("%s with negative length must panic", name)
				}
			}()
			get()
		}()
	}
}

func TestReuseRoundTrip(t *testing.T) {
	b := Get(100)
	for i := range b.B {
		b.B[i] = 0xAB
	}
	ptr := &b.B[0]
	b.Release()
	// Not guaranteed by sync.Pool, but on a single goroutine with no GC
	// in between the same object comes back; verify the length is reset
	// even when the previous user asked for a different size.
	c := Get(70)
	if len(c.B) != 70 {
		t.Fatalf("len after reuse = %d", len(c.B))
	}
	if &c.B[0] == ptr && cap(c.B) != 128 {
		t.Fatalf("reused buffer has cap %d, want class size 128", cap(c.B))
	}
	c.Release()
}

func TestF64RoundTrip(t *testing.T) {
	f := GetF64(33)
	if len(f.F) != 33 {
		t.Fatalf("GetF64(33): len = %d", len(f.F))
	}
	f.Release()
	g := GetF64((1 << 22) + 5)
	if g.pool != nil {
		t.Fatal("oversize float64 buffer must not carry a pool")
	}
	g.Release()
	var nilB *Buf
	var nilF *F64
	nilB.Release() // nil receivers are tolerated
	nilF.Release()
}

func TestClassBoundaries(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 22, maxShift - minShift}, {(1 << 22) + 1, -1},
	}
	for _, c := range cases {
		if got := class(c.n); got != c.want {
			t.Errorf("class(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func BenchmarkGetRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(8192)
		buf.Release()
	}
}
