package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestFrameRoundTrip pins the wire encoding: every header field must
// survive encode/decode, including negative tags and the ack format.
func TestFrameRoundTrip(t *testing.T) {
	in := header{
		seq: 7, msgID: 99, kind: Rdv, ctx: 1 << 40,
		src: 3, srcWorld: 11, dst: 5, tag: -42,
		totalLen: 100, offset: 64,
	}
	frag := 36 // totalLen - offset
	b := make([]byte, dataHeaderLen+frag)
	putHeader(b, in)
	if b[0] != ptData {
		t.Fatalf("packet type = %d, want %d", b[0], ptData)
	}
	out, err := parseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("header round-trip:\n got %+v\nwant %+v", out, in)
	}

	var ab [ackLen]byte
	putAck(ab[:], 1<<50)
	seq, err := parseAck(ab[:])
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1<<50 {
		t.Errorf("ack round-trip = %d, want %d", seq, 1<<50)
	}
}

// TestFrameRejectsMalformed: short datagrams and fragments overrunning
// the declared message length must error, not panic or corrupt.
func TestFrameRejectsMalformed(t *testing.T) {
	if _, err := parseHeader(make([]byte, dataHeaderLen-1)); err == nil {
		t.Error("short data datagram must be rejected")
	}
	if _, err := parseAck(make([]byte, ackLen-1)); err == nil {
		t.Error("short ack datagram must be rejected")
	}
	b := make([]byte, dataHeaderLen+10)
	putHeader(b, header{totalLen: 5, offset: 0}) // 10-byte frag into a 5-byte message
	if _, err := parseHeader(b); err == nil {
		t.Error("overrunning fragment must be rejected")
	}
}

// TestChanTransport pins the default transport's shape: everything
// hosted, nothing wired, Send unreachable by contract.
func TestChanTransport(t *testing.T) {
	var tr Transport = Chan{}
	if tr.Name() != ChanName {
		t.Errorf("Name = %q", tr.Name())
	}
	if !tr.Hosted(0) || !tr.Hosted(7) {
		t.Error("chan transport must host every rank")
	}
	if tr.Wire(0) || tr.Wire(7) {
		t.Error("chan transport must wire nothing")
	}
	if err := tr.Send(Message{Dst: 3}); err == nil {
		t.Error("Send on the chan transport must error")
	}
	if err := tr.Start(nil); err != nil {
		t.Error(err)
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
}

// TestNewFactory covers the CLI spellings.
func TestNewFactory(t *testing.T) {
	for _, spec := range []string{"", ChanName} {
		tr, err := New(spec, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		if _, ok := tr.(Chan); !ok {
			t.Errorf("New(%q) = %T, want Chan", spec, tr)
		}
	}
	tr, err := New(UDPName, 4)
	if err != nil {
		t.Fatalf("New(udp): %v", err)
	}
	u, ok := tr.(*UDP)
	if !ok {
		t.Fatalf("New(udp) = %T, want *UDP", tr)
	}
	if !u.Hosted(3) || !u.Wire(3) {
		t.Error("SelfUDP must host and wire every rank")
	}
	u.Close()
	tr, err = New(UDPBaseName, 4)
	if err != nil {
		t.Fatalf("New(udp-base): %v", err)
	}
	ub, ok := tr.(*UDP)
	if !ok {
		t.Fatalf("New(udp-base) = %T, want *UDP", tr)
	}
	if !ub.fixedRTO || ub.fixedWin != maxCwnd || ub.ackEvery != 1 || ub.bio != nil {
		t.Errorf("udp-base must pin every adaptive mechanism off: fixedRTO=%v fixedWin=%d ackEvery=%d batch=%v",
			ub.fixedRTO, ub.fixedWin, ub.ackEvery, ub.bio != nil)
	}
	ub.Close()
	if _, err := New("smoke-signals", 4); err == nil {
		t.Error("unknown transport spec must error")
	}
}

// collector gathers delivered messages in order.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) handle(m Message) {
	// Copy the payload out so the bufpool buffer can be released —
	// mirrors the engine, which consumes delivered payloads promptly.
	cp := append([]byte(nil), m.Data...)
	m.Data = cp
	m.Buf.Release()
	m.Buf = nil
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) waitFor(t *testing.T, n int, timeout time.Duration) []Message {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		got := len(c.msgs)
		c.mu.Unlock()
		if got >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]Message(nil), c.msgs...)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d messages delivered", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// pattern fills a payload deterministically from a message index.
func pattern(i, n int) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*131 + j*7)
	}
	return b
}

// newPair builds two single-rank-hosted UDP transports addressing each
// other, with an optional fault wrapper around each side's socket.
func newPair(t *testing.T, faults *FaultConfig, rto time.Duration) (*UDP, *UDP) {
	t.Helper()
	mkConn := func(seed int64) net.PacketConn {
		conn, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if faults == nil {
			return conn
		}
		cfg := *faults
		cfg.Seed = seed
		return NewFaulty(conn, cfg)
	}
	connA, connB := mkConn(7), mkConn(11)
	b, err := NewUDP(UDPConfig{
		NP: 2, Hosted: []int{1}, Conn: connB, RetransmitEvery: rto,
		Peers: map[int]string{0: connA.LocalAddr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewUDP(UDPConfig{
		NP: 2, Hosted: []int{0}, Conn: connA, RetransmitEvery: rto,
		Peers: map[int]string{1: connB.LocalAddr().String()},
	})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestUDPPairOrderAndFragmentation streams messages of mixed sizes —
// zero-length, sub-fragment, and multi-fragment — one way and checks
// order and bytes.
func TestUDPPairOrderAndFragmentation(t *testing.T) {
	a, b := newPair(t, nil, 0)
	var sink collector
	if err := a.Start(func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.handle); err != nil {
		t.Fatal(err)
	}

	sizes := []int{0, 1, 100, maxPayload, maxPayload + 1, 3 * maxPayload, 64 << 10}
	const rounds = 5
	n := 0
	for r := 0; r < rounds; r++ {
		for _, sz := range sizes {
			err := a.Send(Message{
				Ctx: 1, Src: 0, SrcWorld: 0, Dst: 1, Tag: n, Kind: Eager,
				Data: pattern(n, sz),
			})
			if err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	got := sink.waitFor(t, n, 10*time.Second)
	for i, m := range got {
		sz := sizes[i%len(sizes)]
		if m.Tag != i {
			t.Fatalf("message %d: tag %d — delivery out of order", i, m.Tag)
		}
		if m.Kind != Eager || m.Ctx != 1 || m.Src != 0 || m.Dst != 1 {
			t.Fatalf("message %d: metadata %+v", i, m)
		}
		if !bytes.Equal(m.Data, pattern(i, sz)) {
			t.Fatalf("message %d (%d bytes): payload corrupted", i, sz)
		}
	}
}

// TestUDPRendezvousAckFlow drives the Rdv → RdvAck exchange both ways:
// B acks every rendezvous payload it sees, and A must observe acks with
// matching correlation ids.
func TestUDPRendezvousAckFlow(t *testing.T) {
	a, b := newPair(t, nil, 0)
	var acks collector
	if err := a.Start(acks.handle); err != nil {
		t.Fatal(err)
	}
	err := b.Start(func(m Message) {
		id := m.MsgID
		m.Buf.Release()
		// Reply from the delivery path — Send must not block on it.
		if err := b.Send(Message{Ctx: m.Ctx, Src: 1, SrcWorld: 1, Dst: 0, Kind: RdvAck, MsgID: id}); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		err := a.Send(Message{
			Ctx: 2, Src: 0, SrcWorld: 0, Dst: 1, Tag: i, Kind: Rdv,
			MsgID: uint64(1000 + i), Data: pattern(i, 32<<10),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := acks.waitFor(t, n, 10*time.Second)
	for i, m := range got {
		if m.Kind != RdvAck || m.MsgID != uint64(1000+i) || len(m.Data) != 0 {
			t.Fatalf("ack %d: kind=%v msgID=%d len=%d", i, m.Kind, m.MsgID, len(m.Data))
		}
	}
}

// TestUDPByteIdentityUnderFaults is the satellite proof: 5% drop plus
// duplication and reordering on both sockets, and delivery must still
// be exactly-once, in order, byte-identical — with retransmits visible
// in the metrics snapshot.
func TestUDPByteIdentityUnderFaults(t *testing.T) {
	faults := &FaultConfig{Drop: 0.05, Dup: 0.03, Reorder: 0.03}
	a, b := newPair(t, faults, 5*time.Millisecond)
	m := metrics.New(1, 0)
	a.BindMetrics(m)
	b.BindMetrics(m)

	var sink collector
	if err := a.Start(func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.handle); err != nil {
		t.Fatal(err)
	}

	const n = 120
	for i := 0; i < n; i++ {
		sz := (i % 5) * maxPayload / 2 // 0 .. 2×maxPayload, crossing fragmentation
		err := a.Send(Message{
			Ctx: 3, Src: 0, SrcWorld: 0, Dst: 1, Tag: i, Kind: Eager,
			Data: pattern(i, sz),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := sink.waitFor(t, n, 30*time.Second)
	if len(got) != n {
		t.Fatalf("delivered %d messages, want exactly %d (no duplicates)", len(got), n)
	}
	for i, msg := range got {
		sz := (i % 5) * maxPayload / 2
		if msg.Tag != i {
			t.Fatalf("message %d: tag %d — delivery out of order under faults", i, msg.Tag)
		}
		if !bytes.Equal(msg.Data, pattern(i, sz)) {
			t.Fatalf("message %d (%d bytes): payload corrupted under faults", i, sz)
		}
	}
	s := m.Snapshot()
	if s.WireRetransmits == 0 {
		t.Error("expected retransmits under 5% datagram loss, counter is zero")
	}
	if s.WireDatagramsSent == 0 || s.WireDatagramsRecv == 0 || s.WireBytesSent == 0 {
		t.Errorf("wire counters not threaded: %+v", s)
	}
}

// TestUDPConfigValidation pins constructor error paths.
func TestUDPConfigValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{NP: 0}); err == nil {
		t.Error("NP=0 must error")
	}
	if _, err := NewUDP(UDPConfig{NP: 4, Hosted: []int{4}}); err == nil {
		t.Error("out-of-range hosted rank must error")
	}
	if _, err := NewUDP(UDPConfig{NP: 4, Hosted: []int{0}}); err == nil {
		t.Error("unaddressed unhosted rank must error")
	}
	if _, err := NewUDP(UDPConfig{NP: 2, Peers: map[int]string{5: "127.0.0.1:1"}}); err == nil {
		t.Error("out-of-range peer rank must error")
	}
	u, err := SelfUDP(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Send(Message{Dst: 9}); err == nil {
		t.Error("out-of-range destination must error")
	}
	if err := u.Close(); err != nil {
		t.Error(err)
	}
	if err := u.Close(); err != nil {
		t.Error("double Close must be a no-op, got:", err)
	}
	if err := u.Start(nil); err == nil {
		t.Error("Start after Close must error")
	}
}

func ExampleNew() {
	tr, _ := New("chan", 4)
	fmt.Println(tr.Name(), tr.Hosted(2), tr.Wire(2))
	// Output: chan true false
}
