package transport

import (
	"errors"
	"net"
)

// batchSize is the datagram count of one sendmmsg/recvmmsg syscall —
// large enough to swallow a full initial congestion window per call,
// small enough that the per-call scratch stays a few KiB.
const batchSize = 32

// errBatchUnsupported is returned by readBatch when the platform's
// batched receive path turns out to be unusable at runtime; the receive
// loop falls back to single ReadFrom calls.
var errBatchUnsupported = errors.New("transport: batched socket I/O unsupported")

// batchPkt is one datagram of a received batch. The byte slice aliases
// the batchIO's reusable receive buffers — valid only until the next
// readBatch call, which is fine because dispatch is synchronous.
type batchPkt struct {
	b    []byte
	addr net.Addr
}
