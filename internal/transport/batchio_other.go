//go:build !(linux && (amd64 || arm64))

package transport

import "net"

// batchIO is unavailable on this platform: newBatchIO reports no batch
// capability and the transport uses its WriteTo/ReadFrom path. The
// method set exists so the portable code compiles unchanged.
type batchIO struct{}

func newBatchIO(net.PacketConn) *batchIO { return nil }

func (*batchIO) writeBatch([][]byte, net.Addr) (int, int, bool) { return 0, 0, false }

func (*batchIO) readBatch([]batchPkt) (int, error) { return 0, errBatchUnsupported }
