// Package transport is the engine's point-to-point substrate seam: the
// layer that decides how a message issued by one rank reaches another
// rank's endpoint. The engine routes through a Transport only for
// destinations the transport declares wired; everything else stays on
// the in-process channel path, so the default Chan transport is
// byte- and traffic-identical to the pre-seam engine by construction.
//
// # Message model
//
// A Transport moves whole engine-level messages (Message), not packets:
// framing, fragmentation and reliability are the backend's private
// business. Send is a synchronous, reliable, ordered enqueue — when it
// returns, the transport has copied the payload out of the caller's
// buffer and guarantees in-order delivery per (SrcWorld, Dst) pair as
// long as the peer stays reachable, which is exactly the MPI
// non-overtaking obligation the engine needs. Delivered messages arrive
// through the Handler with their payload reassembled into a pooled
// bufpool buffer whose ownership transfers to the handler.
//
// Three message kinds cross a transport: Eager carries a payload whose
// send completed at enqueue time; Rdv carries a rendezvous payload whose
// sender blocks until the receiver consumes it; RdvAck is the
// consumption notice that unblocks the Rdv sender. The ack rides the
// same reliable stream as data, so a lost datagram delays — never
// wedges — a rendezvous.
//
// # UDP framing format
//
// The UDP backend frames messages as length-delimited fragments over
// datagrams, little-endian throughout, encoded with binary PutUint*/
// Uint* into caller-owned bufpool buffers (no per-packet allocation in
// steady state). A data datagram is a 54-byte header followed by the
// fragment payload:
//
//	[0]     packet type (1 = data)
//	[1:9]   seq       — per-flow sequence number (first packet is 1)
//	[9:17]  msgID     — sender-assigned rendezvous correlation id
//	[17]    kind      — Eager | Rdv | RdvAck
//	[18:26] ctx       — communicator context id
//	[26:30] src       — sender's rank within ctx
//	[30:34] srcWorld  — sender's world rank
//	[34:38] dst       — destination world rank
//	[38:46] tag
//	[46:50] totalLen  — full message payload length
//	[50:54] offset    — this fragment's offset into the payload
//
// An ACK datagram is 9 bytes: type 2 followed by the cumulative
// sequence number — the highest seq below which every packet of the
// flow has been delivered.
//
// # Retransmit contract
//
// A flow is the ordered packet stream between two socket addresses.
// Senders keep every packet until it is cumulatively acknowledged and
// retransmit unacknowledged packets on a timeout; receivers deliver
// strictly in sequence order, buffer out-of-order packets, drop
// duplicates, and acknowledge with their cumulative position (possibly
// coalesced — see Adaptive behavior). Loss, duplication and
// reordering (see Faulty) therefore cost latency, never correctness:
// delivery to the Handler is exactly-once and in flow order. Packets
// are retained and retransmitted without bound — abandoning a flow is
// the caller's decision (the engine's run watchdog), not the
// transport's. Close lingers (bounded) until every retained packet is
// acknowledged, because an Eager send completes at the engine level
// when it is enqueued: a process exiting right after its last send
// must not strand a message a peer is still blocked on. The drain bound
// scales with the live retransmit timeout — max(5s, 64·RTO) — so a
// backoff-inflated RTO still leaves the final ACK exchange several
// retransmit opportunities.
//
// # Adaptive behavior
//
// The UDP backend adapts three mechanisms per flow; each has a config
// escape hatch that pins the pre-adaptive behavior (the "udp-base"
// spelling pins all of them, as the benchmark baseline).
//
// Retransmit timeout: ACK round trips of never-retransmitted packets
// (Karn's rule) feed a Jacobson/Karels estimator — SRTT and RTTVAR with
// gains 1/8 and 1/4 — and the flow retransmits after RTO = SRTT +
// 4·RTTVAR, clamped to [200µs, 1s]. A packet that times out repeatedly
// backs off exponentially (RTO·2^n, capped). UDPConfig.RetransmitEvery
// pins a fixed timeout and disables estimation and backoff — the
// deterministic escape hatch for Faulty-based tests.
//
// Congestion window: the send window starts at 32 packets in slow start
// (+1 per acked packet), crosses into AIMD additive growth at the
// slow-start threshold, and on a retransmit timeout halves both cwnd
// and the threshold — at most once per outstanding window — flooring at
// 2 packets and capping at 256. Packets beyond the window queue
// unwritten and flush as ACKs reopen it. UDPConfig.FixedWindow pins a
// fixed window with no congestion response.
//
// ACK coalescing: in-order data datagrams defer their cumulative ACK
// until either UDPConfig.AckEvery of them accumulate (default 8) or a
// flush timer of ~RTO/4 of the reverse flow (clamped to [100µs, 5ms])
// expires; duplicates and out-of-order arrivals are acknowledged
// immediately, since the sender is evidently retransmitting or filling
// a hole. AckEvery=1 restores ack-per-datagram.
//
// Batched I/O: on Linux, multi-packet flushes go through sendmmsg and
// the receive loop drains the socket with recvmmsg — one syscall per
// batch instead of per datagram. The batch path engages only when the
// transport owns a raw *net.UDPConn; wrapped sockets (Faulty), other
// platforms, or a runtime refusal (ENOSYS) fall back to per-datagram
// WriteTo/ReadFrom with identical wire behavior. UDPConfig.NoBatch
// forces the fallback.
package transport

import (
	"fmt"

	"repro/internal/bufpool"
)

// Transport names, as the CLIs' -transport flag and the provenance
// labels spell them.
const (
	ChanName = "chan"
	UDPName  = "udp"
	// UDPBaseName selects the UDP backend with every adaptive mechanism
	// pinned to its pre-adaptive fixed behavior (see SelfUDPBase) — the
	// comparison baseline for wire benchmarks, not a deployment choice.
	UDPBaseName = "udp-base"
)

// Kind classifies an engine-level message on the wire.
type Kind uint8

const (
	// Eager carries a full payload; the send completed when the
	// transport accepted the message.
	Eager Kind = iota
	// Rdv carries a full rendezvous payload; the sender blocks until a
	// matching RdvAck comes back.
	Rdv
	// RdvAck is the consumption notice for a Rdv message (no payload);
	// MsgID correlates it with the blocked sender.
	RdvAck
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Eager:
		return "eager"
	case Rdv:
		return "rdv"
	case RdvAck:
		return "rdv-ack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is one engine-level message crossing a transport.
type Message struct {
	Ctx      int64 // communicator context id
	Src      int   // sender's rank within Ctx (the matching key)
	SrcWorld int   // sender's world rank
	Dst      int   // destination world rank
	Tag      int
	Kind     Kind
	MsgID    uint64 // rendezvous correlation id (Rdv and RdvAck)
	// Data is the payload. On Send the transport copies it before
	// returning and never retains it; on delivery it aliases Buf.B.
	Data []byte
	// Buf backs Data on delivered messages; ownership transfers to the
	// Handler, which must Release it (directly or through whatever the
	// payload was handed to). Nil on the Send side.
	Buf *bufpool.Buf
}

// Handler consumes delivered messages. It is invoked from the
// transport's receive goroutine in per-flow order, so it must not block
// on transport progress (enqueuing a reply via Send is fine — Send
// never waits for the receive loop).
type Handler func(Message)

// Transport is the engine's pluggable point-to-point substrate.
//
// Hosted reports whether a rank's body runs in this process; Wire
// whether messages to a destination rank must cross the transport
// (ForceWire self-loop setups answer true for hosted ranks too). The
// engine consults Wire per send and never calls Send for unwired
// destinations, so the default in-process path pays one boolean branch.
type Transport interface {
	// Name labels the transport for provenance ("chan", "udp").
	Name() string
	Hosted(rank int) bool
	Wire(dst int) bool
	// Send reliably enqueues m for in-order delivery to the process
	// hosting m.Dst. It is synchronous (per-sender issue order is
	// preserved), copies m.Data before returning, and never blocks on
	// the receive path.
	Send(m Message) error
	// Start begins delivering inbound messages to h. Calling Start
	// again replaces the handler (a fresh world rebinding a live
	// transport).
	Start(h Handler) error
	Close() error
}

// Chan is the default in-process transport: every rank is hosted,
// nothing is wired, and all traffic stays on the engine's channel path
// — byte- and traffic-identical to the pre-seam engine by construction
// (the engine never reaches Send when Wire is false everywhere).
type Chan struct{}

// Name implements Transport.
func (Chan) Name() string { return ChanName }

// Hosted implements Transport: every rank runs in this process.
func (Chan) Hosted(int) bool { return true }

// Wire implements Transport: nothing crosses a wire.
func (Chan) Wire(int) bool { return false }

// Send implements Transport. The engine routes nothing through an
// unwired transport, so reaching Send is a bug worth hearing about.
func (Chan) Send(m Message) error {
	return fmt.Errorf("transport: chan transport wires no destinations (got a send to rank %d)", m.Dst)
}

// Start implements Transport (nothing to deliver).
func (Chan) Start(Handler) error { return nil }

// Close implements Transport.
func (Chan) Close() error { return nil }

// New builds a transport from its CLI spelling: "chan" (or empty) for
// the in-process default, "udp" for a loopback self-loop UDP transport
// hosting all np ranks in this process with every message routed
// through a real socket (see SelfUDP), "udp-base" for the same wiring
// with the adaptive wire path pinned off (see SelfUDPBase). Multi-
// process UDP topologies need the explicit UDPConfig constructor — they
// cannot be described by a name alone.
func New(spec string, np int) (Transport, error) {
	switch spec {
	case "", ChanName:
		return Chan{}, nil
	case UDPName:
		return SelfUDP(np)
	case UDPBaseName:
		return SelfUDPBase(np)
	default:
		return nil, fmt.Errorf("transport: unknown transport %q (%s|%s|%s)", spec, ChanName, UDPName, UDPBaseName)
	}
}
