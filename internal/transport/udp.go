package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
)

const (
	// defaultRTO is the retransmit timeout when UDPConfig leaves it zero.
	// Loopback RTTs are microseconds; 20ms keeps spurious retransmits
	// rare while bounding the latency cost of a lost datagram.
	defaultRTO = 20 * time.Millisecond
	// sendWindow caps in-flight data datagrams per flow (2MiB at the max
	// datagram size). Packets beyond the window stay queued unwritten
	// until acknowledgements advance the base — Send itself never blocks,
	// so the receive loop can safely enqueue replies.
	sendWindow = 256
	// socketBuf is the kernel send/recv buffer size requested for
	// sockets the transport owns; large enough to absorb a full send
	// window without loopback drops.
	socketBuf = 1 << 22
	// drainTimeout bounds Close's linger: an eager send completes at the
	// engine level the moment it is enqueued, so teardown must give
	// unacknowledged packets their retransmit chances instead of
	// stranding them — a process that exits right after its last send
	// would otherwise lose messages peers are still blocked on. The
	// bound keeps Close from hanging on a dead peer.
	drainTimeout = 5 * time.Second
)

// UDPConfig describes a UDP transport endpoint.
type UDPConfig struct {
	// NP is the world size (required).
	NP int
	// Hosted lists the world ranks whose bodies run in this process.
	// Nil means all ranks are hosted (single-process setups).
	Hosted []int
	// Peers maps world ranks to "host:port" addresses of the processes
	// hosting them. Ranks without an entry must be hosted locally.
	Peers map[int]string
	// Conn, when non-nil, is an already-bound socket the transport takes
	// over (the soak harness reuses its bootstrap socket so peers keep a
	// stable address). When nil the transport binds Listen.
	Conn net.PacketConn
	// Listen is the address to bind when Conn is nil; empty means an
	// ephemeral loopback port ("127.0.0.1:0").
	Listen string
	// ForceWire routes every message through the socket even for hosted
	// ranks, defaulting each rank's peer address to the transport's own
	// socket. Single-process benchmarks use this to exercise the real
	// datagram path without spawning processes.
	ForceWire bool
	// RetransmitEvery overrides the retransmit timeout (default 20ms).
	RetransmitEvery time.Duration
}

// UDP is the datagram transport backend: reliable, in-order message
// delivery over unreliable packets, per the package-level framing and
// retransmit contract. One UDP value serves every world booted on it.
type UDP struct {
	np     int
	hosted []bool
	force  bool
	conn   net.PacketConn
	rto    time.Duration
	peers  []net.Addr

	hmu     sync.RWMutex
	handler Handler

	mu      sync.Mutex
	started bool
	closed  bool
	sflows  map[string]*sendFlow
	rflows  map[string]*recvFlow
	done    chan struct{}
	wg      sync.WaitGroup

	met atomic.Pointer[metrics.Metrics]
}

// sendFlow is the sender half of one address pair's packet stream.
type sendFlow struct {
	addr net.Addr

	mu      sync.Mutex
	nextSeq uint64 // next sequence number to assign (first packet is 1)
	base    uint64 // lowest unacknowledged sequence number
	pending map[uint64]*pendingPkt
}

// pendingPkt is a framed datagram retained until cumulatively acked.
// A zero sent time marks a packet queued beyond the send window and
// not yet written.
type pendingPkt struct {
	buf  *bufpool.Buf
	n    int
	sent time.Time
}

// recvFlow is the receiver half: in-order delivery position, held
// out-of-order datagrams, and the current message reassembly buffer.
type recvFlow struct {
	mu      sync.Mutex
	nextSeq uint64
	ooo     map[uint64]*bufpool.Buf
	asm     *bufpool.Buf
	asmGot  int
}

// NewUDP builds a UDP transport from cfg. The transport is idle until
// Start; Send may be called before Start (outbound only).
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.NP <= 0 {
		return nil, fmt.Errorf("transport: non-positive world size %d", cfg.NP)
	}
	conn := cfg.Conn
	if conn == nil {
		listen := cfg.Listen
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		var err error
		conn, err = net.ListenPacket("udp", listen)
		if err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
	}
	if uc, ok := conn.(*net.UDPConn); ok {
		// Best effort: absorb a full send window without loopback drops.
		_ = uc.SetReadBuffer(socketBuf)
		_ = uc.SetWriteBuffer(socketBuf)
	}
	rto := cfg.RetransmitEvery
	if rto <= 0 {
		rto = defaultRTO
	}
	t := &UDP{
		np:     cfg.NP,
		force:  cfg.ForceWire,
		conn:   conn,
		rto:    rto,
		hosted: make([]bool, cfg.NP),
		peers:  make([]net.Addr, cfg.NP),
		sflows: make(map[string]*sendFlow),
		rflows: make(map[string]*recvFlow),
		done:   make(chan struct{}),
	}
	if cfg.Hosted == nil {
		for r := range t.hosted {
			t.hosted[r] = true
		}
	} else {
		for _, r := range cfg.Hosted {
			if r < 0 || r >= cfg.NP {
				conn.Close()
				return nil, fmt.Errorf("transport: hosted rank %d out of range [0,%d)", r, cfg.NP)
			}
			t.hosted[r] = true
		}
	}
	for r, spec := range cfg.Peers {
		if r < 0 || r >= cfg.NP {
			conn.Close()
			return nil, fmt.Errorf("transport: peer rank %d out of range [0,%d)", r, cfg.NP)
		}
		addr, err := net.ResolveUDPAddr("udp", spec)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: peer %d: %w", r, err)
		}
		t.peers[r] = addr
	}
	if cfg.ForceWire {
		self := conn.LocalAddr()
		for r := range t.peers {
			if t.peers[r] == nil {
				t.peers[r] = self
			}
		}
	}
	for r := range t.peers {
		if t.peers[r] == nil && !t.hosted[r] {
			conn.Close()
			return nil, fmt.Errorf("transport: rank %d is neither hosted nor addressed", r)
		}
	}
	return t, nil
}

// SelfUDP builds a single-process UDP transport hosting all np ranks
// with ForceWire on: every message crosses the process's own socket, so
// benchmarks and tests exercise the full framing/reliability path
// without spawning processes.
func SelfUDP(np int) (*UDP, error) {
	return NewUDP(UDPConfig{NP: np, ForceWire: true})
}

// Name implements Transport.
func (t *UDP) Name() string { return UDPName }

// Addr returns the transport's bound socket address — what peers put in
// their UDPConfig.Peers entries.
func (t *UDP) Addr() net.Addr { return t.conn.LocalAddr() }

// Hosted implements Transport.
func (t *UDP) Hosted(rank int) bool {
	return rank >= 0 && rank < t.np && t.hosted[rank]
}

// Wire implements Transport: unhosted ranks always cross the wire, and
// ForceWire routes hosted ranks through the socket too.
func (t *UDP) Wire(dst int) bool {
	if dst < 0 || dst >= t.np {
		return false
	}
	return t.force || !t.hosted[dst]
}

// BindMetrics points wire counters at m (shard 0: wire activity is
// process-level, not rank-level). The engine binds its world's Metrics
// here at boot; nil detaches.
func (t *UDP) BindMetrics(m *metrics.Metrics) { t.met.Store(m) }

func (t *UDP) count(c metrics.Counter, v int64) {
	if m := t.met.Load(); m != nil {
		m.Add(0, c, v)
	}
}

// Start implements Transport: installs h and launches the receive and
// retransmit loops (once; a later Start only replaces the handler).
func (t *UDP) Start(h Handler) error {
	t.hmu.Lock()
	t.handler = h
	t.hmu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("transport: udp transport is closed")
	}
	if !t.started {
		t.started = true
		t.wg.Add(2)
		go t.recvLoop()
		go t.retransmitLoop()
	}
	return nil
}

// Send implements Transport: frames m into sequenced fragments on the
// destination's flow and writes those inside the send window. It copies
// m.Data before returning and never blocks on the receive path.
func (t *UDP) Send(m Message) error {
	if m.Dst < 0 || m.Dst >= t.np {
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", m.Dst, t.np)
	}
	addr := t.peers[m.Dst]
	if addr == nil {
		return fmt.Errorf("transport: no peer address for rank %d", m.Dst)
	}
	f := t.sendFlowFor(addr)
	f.mu.Lock()
	defer f.mu.Unlock()
	total := len(m.Data)
	off := 0
	for {
		frag := total - off
		if frag > maxPayload {
			frag = maxPayload
		}
		seq := f.nextSeq
		f.nextSeq++
		n := dataHeaderLen + frag
		pb := bufpool.Get(n)
		putHeader(pb.B, header{
			seq: seq, msgID: m.MsgID, kind: m.Kind, ctx: m.Ctx,
			src: m.Src, srcWorld: m.SrcWorld, dst: m.Dst, tag: m.Tag,
			totalLen: total, offset: off,
		})
		copy(pb.B[dataHeaderLen:n], m.Data[off:off+frag])
		p := &pendingPkt{buf: pb, n: n}
		f.pending[seq] = p
		if seq < f.base+sendWindow {
			t.writePkt(f, p)
		}
		off += frag
		if off >= total {
			return nil
		}
	}
}

// writePkt writes p to f's peer and stamps it for the retransmit clock.
// Write errors are ignored: a dropped datagram is indistinguishable
// from a lost one, and retransmit covers both. Callers hold f.mu.
func (t *UDP) writePkt(f *sendFlow, p *pendingPkt) {
	if _, err := t.conn.WriteTo(p.buf.B[:p.n], f.addr); err == nil {
		t.count(metrics.WireDatagramsSent, 1)
		t.count(metrics.WireBytesSent, int64(p.n))
	}
	p.sent = time.Now()
}

// Close implements Transport: drains unacknowledged packets (bounded
// by drainTimeout), stops the loops, closes the socket, and releases
// every retained wire buffer.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	started := t.started
	t.mu.Unlock()
	if started {
		// The loops are still running here, so retransmits keep flowing
		// and inbound acks keep retiring packets while we wait.
		deadline := time.Now().Add(drainTimeout)
		for t.hasPending() && time.Now().Before(deadline) {
			time.Sleep(t.rto / 4)
		}
	}
	close(t.done)
	err := t.conn.Close()
	if started {
		t.wg.Wait()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range t.sflows {
		f.mu.Lock()
		for _, p := range f.pending {
			p.buf.Release()
		}
		f.pending = make(map[uint64]*pendingPkt)
		f.mu.Unlock()
	}
	for _, f := range t.rflows {
		f.mu.Lock()
		for _, cp := range f.ooo {
			cp.Release()
		}
		f.ooo = make(map[uint64]*bufpool.Buf)
		if f.asm != nil {
			f.asm.Release()
			f.asm = nil
		}
		f.mu.Unlock()
	}
	return err
}

// hasPending reports whether any flow still holds unacknowledged
// packets.
func (t *UDP) hasPending() bool {
	t.mu.Lock()
	flows := make([]*sendFlow, 0, len(t.sflows))
	for _, f := range t.sflows {
		flows = append(flows, f)
	}
	t.mu.Unlock()
	for _, f := range flows {
		f.mu.Lock()
		n := len(f.pending)
		f.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

func (t *UDP) sendFlowFor(addr net.Addr) *sendFlow {
	key := addr.String()
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.sflows[key]
	if f == nil {
		f = &sendFlow{addr: addr, nextSeq: 1, base: 1, pending: make(map[uint64]*pendingPkt)}
		t.sflows[key] = f
	}
	return f
}

func (t *UDP) recvFlowFor(addr net.Addr) *recvFlow {
	key := addr.String()
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.rflows[key]
	if f == nil {
		f = &recvFlow{nextSeq: 1, ooo: make(map[uint64]*bufpool.Buf)}
		t.rflows[key] = f
	}
	return f
}

// recvLoop reads datagrams and dispatches by packet type. Unknown first
// bytes (e.g. the soak harness's textual bootstrap packets sharing this
// socket) are dropped.
func (t *UDP) recvLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxDatagram)
	var ackBuf [ackLen]byte
	for {
		n, addr, err := t.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if n < 1 {
			continue
		}
		switch buf[0] {
		case ptAck:
			ack, err := parseAck(buf[:n])
			if err != nil {
				continue
			}
			t.count(metrics.WireDatagramsRecv, 1)
			t.count(metrics.WireBytesRecv, int64(n))
			t.handleAck(addr, ack)
		case ptData:
			t.count(metrics.WireDatagramsRecv, 1)
			t.count(metrics.WireBytesRecv, int64(n))
			t.handleData(addr, buf[:n], ackBuf[:])
		}
	}
}

// handleAck retires cumulatively acknowledged packets and writes any
// queued packets the advanced window now admits.
func (t *UDP) handleAck(addr net.Addr, ack uint64) {
	f := t.sendFlowFor(addr)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ack >= f.nextSeq {
		ack = f.nextSeq - 1
	}
	retired := false
	for seq := f.base; seq <= ack; seq++ {
		if p, ok := f.pending[seq]; ok {
			p.buf.Release()
			delete(f.pending, seq)
			retired = true
		}
	}
	if ack+1 > f.base {
		f.base = ack + 1
		for seq := f.base; seq < f.base+sendWindow && seq < f.nextSeq; seq++ {
			if p, ok := f.pending[seq]; ok && p.sent.IsZero() {
				t.writePkt(f, p)
			}
		}
	}
	if retired {
		t.count(metrics.WireAckRoundTrips, 1)
	}
}

// handleData advances the flow's in-order position, holding early
// packets and re-acking duplicates, then acknowledges the cumulative
// position so the sender can retire and refill its window.
func (t *UDP) handleData(addr net.Addr, pkt, ackBuf []byte) {
	h, err := parseHeader(pkt)
	if err != nil {
		return
	}
	f := t.recvFlowFor(addr)
	f.mu.Lock()
	switch {
	case h.seq < f.nextSeq:
		// Duplicate (our earlier ack was lost): drop, re-ack below.
	case h.seq > f.nextSeq:
		if _, held := f.ooo[h.seq]; !held {
			cp := bufpool.Get(len(pkt))
			copy(cp.B, pkt)
			f.ooo[h.seq] = cp
		}
	default:
		t.deliverInOrder(f, h, pkt[dataHeaderLen:])
		f.nextSeq++
		for {
			cp, held := f.ooo[f.nextSeq]
			if !held {
				break
			}
			delete(f.ooo, f.nextSeq)
			if h2, err := parseHeader(cp.B); err == nil {
				t.deliverInOrder(f, h2, cp.B[dataHeaderLen:])
			}
			cp.Release()
			f.nextSeq++
		}
	}
	ack := f.nextSeq - 1
	f.mu.Unlock()
	putAck(ackBuf, ack)
	if _, err := t.conn.WriteTo(ackBuf[:ackLen], addr); err == nil {
		t.count(metrics.WireDatagramsSent, 1)
		t.count(metrics.WireBytesSent, ackLen)
	}
}

// deliverInOrder folds one in-sequence fragment into the flow's message
// under reassembly and hands the completed message to the handler.
// Fragments of a message are contiguous in the flow (Send enqueues them
// under the flow lock), so offset 0 always opens a fresh message.
func (t *UDP) deliverInOrder(f *recvFlow, h header, frag []byte) {
	if h.offset == 0 {
		if f.asm != nil {
			f.asm.Release()
		}
		f.asm = bufpool.Get(h.totalLen)
		f.asmGot = 0
	}
	if f.asm == nil || h.offset != f.asmGot || h.totalLen != len(f.asm.B) {
		return
	}
	copy(f.asm.B[h.offset:], frag)
	f.asmGot += len(frag)
	if f.asmGot < h.totalLen {
		return
	}
	buf := f.asm
	f.asm = nil
	t.hmu.RLock()
	hnd := t.handler
	t.hmu.RUnlock()
	if hnd == nil {
		buf.Release()
		return
	}
	hnd(Message{
		Ctx: h.ctx, Src: h.src, SrcWorld: h.srcWorld, Dst: h.dst,
		Tag: h.tag, Kind: h.kind, MsgID: h.msgID,
		Data: buf.B[:h.totalLen], Buf: buf,
	})
}

// retransmitLoop rewrites written-but-unacked packets older than the
// retransmit timeout, scanning at half the timeout for resolution.
func (t *UDP) retransmitLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.rto / 2)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case now := <-tick.C:
			t.mu.Lock()
			flows := make([]*sendFlow, 0, len(t.sflows))
			for _, f := range t.sflows {
				flows = append(flows, f)
			}
			t.mu.Unlock()
			for _, f := range flows {
				f.mu.Lock()
				for seq := f.base; seq < f.base+sendWindow && seq < f.nextSeq; seq++ {
					p, ok := f.pending[seq]
					if !ok {
						continue
					}
					if p.sent.IsZero() {
						t.writePkt(f, p)
						continue
					}
					if now.Sub(p.sent) >= t.rto {
						t.writePkt(f, p)
						t.count(metrics.WireRetransmits, 1)
					}
				}
				f.mu.Unlock()
			}
		}
	}
}
