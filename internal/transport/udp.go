package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/metrics"
)

const (
	// initialRTO seeds the adaptive retransmit timeout before the first
	// RTT sample arrives (and is the fixed default when adaptation is
	// disabled via RetransmitEvery). Loopback RTTs are microseconds; the
	// first ACK round-trip collapses the estimate to scale.
	initialRTO = 20 * time.Millisecond
	// minRTO / maxRTO clamp the adaptive estimate RTO = SRTT + 4·RTTVAR.
	// The floor keeps microsecond loopback variance from degenerating
	// into a zero timeout; the ceiling bounds recovery latency on a
	// congested or lossy path.
	minRTO = 200 * time.Microsecond
	maxRTO = time.Second
	// maxBackoff caps the per-packet exponential backoff shift: a packet
	// that keeps timing out waits rto<<backoff between retransmissions,
	// at most rto<<maxBackoff (further bounded by maxBackoffRTO).
	maxBackoff = 6
	// maxBackoffRTO bounds the backoff-inflated per-packet timeout so a
	// stalled peer is still probed a few times per drain window.
	maxBackoffRTO = 2 * time.Second
	// maxCwnd caps the congestion window, and is the send window when
	// congestion control is disabled (FixedWindow's default). 256
	// packets is 2MiB of in-flight data at the max datagram size.
	maxCwnd = 256
	// minCwnd is the congestion-window floor under sustained loss.
	minCwnd = 2
	// initialCwnd is where slow start begins for a fresh flow.
	initialCwnd = 32
	// defaultAckEvery is the delayed-ack coalescing threshold: a
	// cumulative ACK is forced after this many unacknowledged in-order
	// data datagrams (AckEvery overrides; 1 restores ack-per-datagram).
	defaultAckEvery = 8
	// minAckDelay / maxAckDelay clamp the delayed-ack flush timer, which
	// tracks ~RTO/4 of the reverse flow's estimate.
	minAckDelay = 100 * time.Microsecond
	maxAckDelay = 5 * time.Millisecond
	// socketBuf is the kernel send/recv buffer size requested for
	// sockets the transport owns; sized for a full 256-packet window of
	// maximum datagrams (the kernel clamps to its rmem/wmem ceilings,
	// and retransmit covers whatever still drops).
	socketBuf = 1 << 23
	// minDrain is the floor of Close's linger bound. The effective bound
	// scales with the live retransmit timeout — max(minDrain,
	// drainRTOs·RTO) — so a backoff-inflated RTO still leaves the final
	// ACK exchange several retransmit opportunities, while a dead peer
	// cannot hang Close forever.
	minDrain  = 5 * time.Second
	drainRTOs = 64
)

// UDPConfig describes a UDP transport endpoint.
type UDPConfig struct {
	// NP is the world size (required).
	NP int
	// Hosted lists the world ranks whose bodies run in this process.
	// Nil means all ranks are hosted (single-process setups).
	Hosted []int
	// Peers maps world ranks to "host:port" addresses of the processes
	// hosting them. Ranks without an entry must be hosted locally.
	Peers map[int]string
	// Conn, when non-nil, is an already-bound socket the transport takes
	// over (the soak harness reuses its bootstrap socket so peers keep a
	// stable address). When nil the transport binds Listen.
	Conn net.PacketConn
	// Listen is the address to bind when Conn is nil; empty means an
	// ephemeral loopback port ("127.0.0.1:0").
	Listen string
	// ForceWire routes every message through the socket even for hosted
	// ranks, defaulting each rank's peer address to the transport's own
	// socket. Single-process benchmarks use this to exercise the real
	// datagram path without spawning processes.
	ForceWire bool
	// RetransmitEvery pins a fixed retransmit timeout and disables the
	// adaptive RTT estimator and per-packet backoff — the escape hatch
	// that keeps Faulty-based tests deterministic. Zero selects the
	// adaptive path (Jacobson/Karels SRTT/RTTVAR from ACK round-trips).
	RetransmitEvery time.Duration
	// AckEvery overrides the delayed-ack coalescing threshold (default
	// 8). 1 acknowledges every data datagram — the pre-adaptive wire
	// behavior, kept as a benchmark baseline.
	AckEvery int
	// FixedWindow pins the send window to a packet count and disables
	// slow-start/AIMD congestion control. Zero selects the adaptive
	// congestion window.
	FixedWindow int
	// NoBatch disables sendmmsg/recvmmsg datagram batching even when
	// the socket supports it, forcing the WriteTo/ReadFrom fallback.
	NoBatch bool
	// PacketBytes caps outbound datagram size, header included. Zero
	// selects maxDatagram (32KiB — right for loopback and jumbo-frame
	// paths); paths with a 1500-byte MTU should set a value that dodges
	// IP fragmentation. Clamped to [dataHeaderLen+1, maxDatagram];
	// receivers accept up to maxDatagram regardless.
	PacketBytes int
}

// UDP is the datagram transport backend: reliable, in-order message
// delivery over unreliable packets, per the package-level framing and
// retransmit contract. One UDP value serves every world booted on it.
type UDP struct {
	np       int
	hosted   []bool
	force    bool
	conn     net.PacketConn
	rto      time.Duration // initial (or fixed) retransmit timeout
	fixedRTO bool          // RetransmitEvery pinned: no adaptation, no backoff
	ackEvery int
	fixedWin int // >0: fixed send window, congestion control off
	payload  int // max fragment payload per datagram
	bio      *batchIO
	peers    []net.Addr

	hmu     sync.RWMutex
	handler Handler

	mu      sync.Mutex
	started bool
	closed  bool
	sflows  map[string]*sendFlow
	rflows  map[string]*recvFlow
	done    chan struct{}
	wg      sync.WaitGroup

	met atomic.Pointer[metrics.Metrics]
}

// sendFlow is the sender half of one address pair's packet stream,
// including its adaptive retransmit and congestion state.
type sendFlow struct {
	addr net.Addr

	mu      sync.Mutex
	nextSeq uint64 // next sequence number to assign (first packet is 1)
	base    uint64 // lowest unacknowledged sequence number
	pending map[uint64]*pendingPkt

	// Adaptive RTO state (Jacobson/Karels; frozen when fixedRTO).
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration

	// Congestion state (slow start + AIMD; frozen when fixedWin > 0).
	cwnd     float64
	ssthresh float64
	recover  uint64 // loss-event fence: halve at most once per window

	// rtoNanos mirrors rto for lock-free reads by the reverse recvFlow
	// (delayed-ack timing) and the retransmit ticker.
	rtoNanos atomic.Int64

	wlist []*pendingPkt // flush scratch, guarded by mu
	wbufs [][]byte      // batch-write scratch, guarded by mu
}

// pendingPkt is a framed datagram retained until cumulatively acked.
// A zero sent time marks a packet queued beyond the send window and
// not yet written.
type pendingPkt struct {
	buf     *bufpool.Buf
	n       int
	sent    time.Time
	retx    bool  // retransmitted at least once: no RTT sample (Karn)
	backoff uint8 // exponential-backoff shift applied to the next timeout
}

// recvFlow is the receiver half: in-order delivery position, held
// out-of-order datagrams, the current message reassembly buffer, and
// the delayed-ack state.
type recvFlow struct {
	addr net.Addr
	// peer is the reverse sendFlow, for RTO-derived ack delay. Atomic
	// because it is bound under t.mu but read under only f.mu (taking
	// both would invert the handler→Send lock order). Nil until the
	// first outbound packet to this address.
	peer atomic.Pointer[sendFlow]

	mu      sync.Mutex
	nextSeq uint64
	ooo     map[uint64]*bufpool.Buf
	asm     *bufpool.Buf
	asmGot  int

	unacked int       // in-order data datagrams since the last ack sent
	ackDue  time.Time // deadline for the delayed cumulative ack; zero when none pending
}

// NewUDP builds a UDP transport from cfg. The transport is idle until
// Start; Send may be called before Start (outbound only).
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.NP <= 0 {
		return nil, fmt.Errorf("transport: non-positive world size %d", cfg.NP)
	}
	conn := cfg.Conn
	if conn == nil {
		listen := cfg.Listen
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		var err error
		conn, err = net.ListenPacket("udp", listen)
		if err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
	}
	if uc, ok := conn.(*net.UDPConn); ok {
		// Best effort: absorb a full send window without loopback drops.
		_ = uc.SetReadBuffer(socketBuf)
		_ = uc.SetWriteBuffer(socketBuf)
	}
	rto := cfg.RetransmitEvery
	if rto <= 0 {
		rto = initialRTO
	}
	ackEvery := cfg.AckEvery
	if ackEvery <= 0 {
		ackEvery = defaultAckEvery
	}
	pkt := cfg.PacketBytes
	if pkt <= dataHeaderLen || pkt > maxDatagram {
		pkt = maxDatagram
	}
	t := &UDP{
		np:       cfg.NP,
		force:    cfg.ForceWire,
		conn:     conn,
		rto:      rto,
		fixedRTO: cfg.RetransmitEvery > 0,
		ackEvery: ackEvery,
		fixedWin: cfg.FixedWindow,
		payload:  pkt - dataHeaderLen,
		hosted:   make([]bool, cfg.NP),
		peers:    make([]net.Addr, cfg.NP),
		sflows:   make(map[string]*sendFlow),
		rflows:   make(map[string]*recvFlow),
		done:     make(chan struct{}),
	}
	if !cfg.NoBatch {
		t.bio = newBatchIO(conn)
	}
	if cfg.Hosted == nil {
		for r := range t.hosted {
			t.hosted[r] = true
		}
	} else {
		for _, r := range cfg.Hosted {
			if r < 0 || r >= cfg.NP {
				conn.Close()
				return nil, fmt.Errorf("transport: hosted rank %d out of range [0,%d)", r, cfg.NP)
			}
			t.hosted[r] = true
		}
	}
	for r, spec := range cfg.Peers {
		if r < 0 || r >= cfg.NP {
			conn.Close()
			return nil, fmt.Errorf("transport: peer rank %d out of range [0,%d)", r, cfg.NP)
		}
		addr, err := net.ResolveUDPAddr("udp", spec)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: peer %d: %w", r, err)
		}
		t.peers[r] = addr
	}
	if cfg.ForceWire {
		self := conn.LocalAddr()
		for r := range t.peers {
			if t.peers[r] == nil {
				t.peers[r] = self
			}
		}
	}
	for r := range t.peers {
		if t.peers[r] == nil && !t.hosted[r] {
			conn.Close()
			return nil, fmt.Errorf("transport: rank %d is neither hosted nor addressed", r)
		}
	}
	return t, nil
}

// SelfUDP builds a single-process UDP transport hosting all np ranks
// with ForceWire on: every message crosses the process's own socket, so
// benchmarks and tests exercise the full framing/reliability path
// without spawning processes.
func SelfUDP(np int) (*UDP, error) {
	return NewUDP(UDPConfig{NP: np, ForceWire: true})
}

// SelfUDPBase builds SelfUDP with the pre-adaptive wire behavior: fixed
// 20ms retransmit timeout, fixed 256-packet send window, one ACK per
// data datagram, 8KiB datagrams, and one WriteTo/ReadFrom syscall per
// datagram. It is the comparison baseline for the adaptive path
// (BenchmarkWireThroughput and the "udp-base" CLI spelling), not a
// deployment configuration.
func SelfUDPBase(np int) (*UDP, error) {
	return NewUDP(UDPConfig{
		NP: np, ForceWire: true,
		RetransmitEvery: initialRTO,
		FixedWindow:     maxCwnd,
		AckEvery:        1,
		NoBatch:         true,
		PacketBytes:     basePacket,
	})
}

// Name implements Transport.
func (t *UDP) Name() string { return UDPName }

// Addr returns the transport's bound socket address — what peers put in
// their UDPConfig.Peers entries.
func (t *UDP) Addr() net.Addr { return t.conn.LocalAddr() }

// Hosted implements Transport.
func (t *UDP) Hosted(rank int) bool {
	return rank >= 0 && rank < t.np && t.hosted[rank]
}

// Wire implements Transport: unhosted ranks always cross the wire, and
// ForceWire routes hosted ranks through the socket too.
func (t *UDP) Wire(dst int) bool {
	if dst < 0 || dst >= t.np {
		return false
	}
	return t.force || !t.hosted[dst]
}

// BindMetrics points wire counters at m (shard 0: wire activity is
// process-level, not rank-level). The engine binds its world's Metrics
// here at boot; nil detaches.
func (t *UDP) BindMetrics(m *metrics.Metrics) { t.met.Store(m) }

func (t *UDP) count(c metrics.Counter, v int64) {
	if m := t.met.Load(); m != nil {
		m.Add(0, c, v)
	}
}

func (t *UDP) gauge(c metrics.Counter, v int64) {
	if m := t.met.Load(); m != nil {
		m.Max(0, c, v)
	}
}

// Start implements Transport: installs h and launches the receive and
// retransmit loops (once; a later Start only replaces the handler).
func (t *UDP) Start(h Handler) error {
	t.hmu.Lock()
	t.handler = h
	t.hmu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("transport: udp transport is closed")
	}
	if !t.started {
		t.started = true
		t.wg.Add(2)
		go t.recvLoop()
		go t.tickLoop()
	}
	return nil
}

// window is the flow's current send window in packets. Callers hold
// f.mu.
func (f *sendFlow) window(fixedWin int) uint64 {
	if fixedWin > 0 {
		return uint64(fixedWin)
	}
	w := uint64(f.cwnd)
	if w < minCwnd {
		w = minCwnd
	}
	return w
}

// observeRTT folds one ACK round-trip sample into the Jacobson/Karels
// estimator and refreshes RTO = SRTT + 4·RTTVAR within [minRTO, maxRTO].
// Callers hold f.mu and have already excluded retransmitted packets
// (Karn's rule).
func (f *sendFlow) observeRTT(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if f.srtt == 0 {
		f.srtt = sample
		f.rttvar = sample / 2
	} else {
		d := f.srtt - sample
		if d < 0 {
			d = -d
		}
		f.rttvar = (3*f.rttvar + d) / 4
		f.srtt = (7*f.srtt + sample) / 8
	}
	rto := f.srtt + 4*f.rttvar
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	f.rto = rto
	f.rtoNanos.Store(int64(rto))
}

// ccOnAck grows the congestion window for acked packets: +1 per packet
// in slow start up to ssthresh, then +acked/cwnd (AIMD additive phase),
// capped at maxCwnd. Callers hold f.mu.
func (f *sendFlow) ccOnAck(acked int) {
	if acked <= 0 {
		return
	}
	a := float64(acked)
	if f.cwnd < f.ssthresh {
		f.cwnd += a
		if f.cwnd > f.ssthresh {
			f.cwnd = f.ssthresh
		}
	} else {
		f.cwnd += a / f.cwnd
	}
	if f.cwnd > maxCwnd {
		f.cwnd = maxCwnd
	}
}

// ccOnTimeout registers a retransmit-timeout loss event: at most once
// per outstanding window (the recover fence), ssthresh and cwnd halve,
// flooring at minCwnd. It reports whether this timeout started a new
// loss event. Callers hold f.mu.
func (f *sendFlow) ccOnTimeout() bool {
	if f.base < f.recover {
		return false // still recovering from the previous halving
	}
	f.recover = f.nextSeq
	half := f.cwnd / 2
	if half < minCwnd {
		half = minCwnd
	}
	f.ssthresh = half
	f.cwnd = half
	return true
}

// noteCC publishes the flow's congestion and RTT state to the metrics
// gauges. Callers hold f.mu.
func (t *UDP) noteCC(f *sendFlow) {
	if t.met.Load() == nil {
		return
	}
	if t.fixedWin == 0 {
		w := int64(f.cwnd)
		t.gauge(metrics.WireCwndHighWater, w)
		t.gauge(metrics.WireCwndLowWaterInv, metrics.CwndLowWaterBase-w)
	}
	if !t.fixedRTO {
		t.gauge(metrics.WireSRTTMaxMicros, f.srtt.Microseconds())
		t.gauge(metrics.WireRTOMaxMicros, f.rto.Microseconds())
	}
}

// Send implements Transport: frames m into sequenced fragments on the
// destination's flow, then flushes every fragment the congestion window
// admits in one batched write. It copies m.Data before returning and
// never blocks on the receive path.
func (t *UDP) Send(m Message) error {
	if m.Dst < 0 || m.Dst >= t.np {
		return fmt.Errorf("transport: destination rank %d out of range [0,%d)", m.Dst, t.np)
	}
	addr := t.peers[m.Dst]
	if addr == nil {
		return fmt.Errorf("transport: no peer address for rank %d", m.Dst)
	}
	f := t.sendFlowFor(addr)
	f.mu.Lock()
	defer f.mu.Unlock()
	total := len(m.Data)
	off := 0
	win := f.window(t.fixedWin)
	f.wlist = f.wlist[:0]
	for {
		frag := total - off
		if frag > t.payload {
			frag = t.payload
		}
		seq := f.nextSeq
		f.nextSeq++
		n := dataHeaderLen + frag
		pb := bufpool.Get(n)
		putHeader(pb.B, header{
			seq: seq, msgID: m.MsgID, kind: m.Kind, ctx: m.Ctx,
			src: m.Src, srcWorld: m.SrcWorld, dst: m.Dst, tag: m.Tag,
			totalLen: total, offset: off,
		})
		copy(pb.B[dataHeaderLen:n], m.Data[off:off+frag])
		p := &pendingPkt{buf: pb, n: n}
		f.pending[seq] = p
		if seq < f.base+win {
			f.wlist = append(f.wlist, p)
		}
		off += frag
		if off >= total {
			break
		}
	}
	t.flushPkts(f, f.wlist)
	return nil
}

// flushPkts writes the given pending packets to f's peer — one batched
// sendmmsg when the socket supports it, WriteTo per packet otherwise —
// and stamps them for the retransmit clock. Write errors are ignored: a
// failed datagram is indistinguishable from a lost one, and retransmit
// covers both. Callers hold f.mu.
func (t *UDP) flushPkts(f *sendFlow, pkts []*pendingPkt) {
	if len(pkts) == 0 {
		return
	}
	if t.bio != nil && len(pkts) > 1 {
		f.wbufs = f.wbufs[:0]
		for _, p := range pkts {
			f.wbufs = append(f.wbufs, p.buf.B[:p.n])
		}
		if sent, calls, ok := t.bio.writeBatch(f.wbufs, f.addr); ok {
			now := time.Now()
			var bytes int64
			for _, p := range pkts[:sent] {
				p.sent = now
				bytes += int64(p.n)
			}
			if sent > 0 {
				t.count(metrics.WireDatagramsSent, int64(sent))
				t.count(metrics.WireBytesSent, bytes)
				t.count(metrics.WireBatchedWrites, int64(calls))
			}
			// Packets the kernel did not take are stamped too: the
			// retransmit clock re-offers them after the flow's RTO.
			for _, p := range pkts[sent:] {
				p.sent = now
			}
			return
		}
	}
	for _, p := range pkts {
		t.writePkt(f, p)
	}
}

// writePkt writes p to f's peer and stamps it for the retransmit clock.
// Callers hold f.mu.
func (t *UDP) writePkt(f *sendFlow, p *pendingPkt) {
	if _, err := t.conn.WriteTo(p.buf.B[:p.n], f.addr); err == nil {
		t.count(metrics.WireDatagramsSent, 1)
		t.count(metrics.WireBytesSent, int64(p.n))
	}
	p.sent = time.Now()
}

// Close implements Transport: drains unacknowledged packets — bounded
// by max(minDrain, drainRTOs·RTO) so a backoff-inflated timeout still
// gets its retransmit chances — then stops the loops, closes the
// socket, and releases every retained wire buffer.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	started := t.started
	t.mu.Unlock()
	if started {
		// The loops are still running here, so retransmits keep flowing
		// and inbound acks keep retiring packets while we wait. The bound
		// is re-evaluated each pass: backoff can inflate the live RTO
		// mid-drain.
		start := time.Now()
		for t.hasPending() && time.Since(start) < t.drainBound() {
			time.Sleep(time.Millisecond)
		}
	}
	close(t.done)
	err := t.conn.Close()
	if started {
		t.wg.Wait()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range t.sflows {
		f.mu.Lock()
		for _, p := range f.pending {
			p.buf.Release()
		}
		f.pending = make(map[uint64]*pendingPkt)
		f.mu.Unlock()
	}
	for _, f := range t.rflows {
		f.mu.Lock()
		for _, cp := range f.ooo {
			cp.Release()
		}
		f.ooo = make(map[uint64]*bufpool.Buf)
		if f.asm != nil {
			f.asm.Release()
			f.asm = nil
		}
		f.mu.Unlock()
	}
	return err
}

// drainBound is Close's linger ceiling: max(minDrain, drainRTOs times
// the largest live per-packet retransmit timeout, backoff included).
func (t *UDP) drainBound() time.Duration {
	worst := t.rto
	for _, f := range t.snapshotSendFlows() {
		f.mu.Lock()
		rto := f.rto
		for _, p := range f.pending {
			if eff := backoffRTO(rto, p.backoff); eff > worst {
				worst = eff
			}
		}
		if rto > worst {
			worst = rto
		}
		f.mu.Unlock()
	}
	if b := time.Duration(drainRTOs) * worst; b > minDrain {
		return b
	}
	return minDrain
}

// backoffRTO is the effective timeout of a packet that has already
// timed out `shift` times: rto<<shift, bounded by maxBackoffRTO.
func backoffRTO(rto time.Duration, shift uint8) time.Duration {
	eff := rto << shift
	if eff > maxBackoffRTO || eff < rto { // overflow-safe
		return maxBackoffRTO
	}
	return eff
}

// hasPending reports whether any flow still holds unacknowledged
// packets.
func (t *UDP) hasPending() bool {
	for _, f := range t.snapshotSendFlows() {
		f.mu.Lock()
		n := len(f.pending)
		f.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// snapshotSendFlows copies the send-flow list out from under t.mu so
// per-flow locks are never taken while holding the transport lock.
func (t *UDP) snapshotSendFlows() []*sendFlow {
	t.mu.Lock()
	defer t.mu.Unlock()
	flows := make([]*sendFlow, 0, len(t.sflows))
	for _, f := range t.sflows {
		flows = append(flows, f)
	}
	return flows
}

func (t *UDP) snapshotRecvFlows() []*recvFlow {
	t.mu.Lock()
	defer t.mu.Unlock()
	flows := make([]*recvFlow, 0, len(t.rflows))
	for _, f := range t.rflows {
		flows = append(flows, f)
	}
	return flows
}

func (t *UDP) sendFlowFor(addr net.Addr) *sendFlow {
	key := addr.String()
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.sflows[key]
	if f == nil {
		f = &sendFlow{
			addr: addr, nextSeq: 1, base: 1,
			pending:  make(map[uint64]*pendingPkt),
			rto:      t.rto,
			cwnd:     initialCwnd,
			ssthresh: maxCwnd,
		}
		f.rtoNanos.Store(int64(t.rto))
		t.sflows[key] = f
		// Bind the reverse recv flow's delayed-ack clock to this flow.
		if rf := t.rflows[key]; rf != nil {
			rf.peer.CompareAndSwap(nil, f)
		}
	}
	return f
}

func (t *UDP) recvFlowFor(addr net.Addr) *recvFlow {
	key := addr.String()
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.rflows[key]
	if f == nil {
		f = &recvFlow{addr: addr, nextSeq: 1, ooo: make(map[uint64]*bufpool.Buf)}
		if sf := t.sflows[key]; sf != nil {
			f.peer.Store(sf)
		}
		t.rflows[key] = f
	}
	return f
}

// ackDelay is how long f may defer a cumulative ack: ~RTO/4 of the
// reverse flow's live estimate (the sender whose retransmit clock the
// deferred ack races), clamped to [minAckDelay, maxAckDelay].
func (f *recvFlow) ackDelay(fallback time.Duration) time.Duration {
	rto := fallback
	if peer := f.peer.Load(); peer != nil {
		if n := peer.rtoNanos.Load(); n > 0 {
			rto = time.Duration(n)
		}
	}
	d := rto / 4
	if d < minAckDelay {
		d = minAckDelay
	}
	if d > maxAckDelay {
		d = maxAckDelay
	}
	return d
}

// recvLoop reads datagrams — recvmmsg batches when the socket supports
// them, single ReadFrom calls otherwise — and dispatches by packet
// type. Unknown first bytes (e.g. the soak harness's textual bootstrap
// packets sharing this socket) are dropped.
func (t *UDP) recvLoop() {
	defer t.wg.Done()
	var ackBuf [ackLen]byte
	if t.bio != nil {
		if done := t.recvBatchLoop(ackBuf[:]); done {
			return
		}
		// recvmmsg unavailable or broken at runtime: fall back to the
		// single-datagram path below.
	}
	buf := make([]byte, maxDatagram)
	for {
		n, addr, err := t.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.dispatch(buf[:n], addr, ackBuf[:])
	}
}

// recvBatchLoop drains the socket with recvmmsg, dispatching every
// datagram of each batch. It returns true when the transport is done
// (socket closed), false to fall back to the single-datagram path.
func (t *UDP) recvBatchLoop(ackBuf []byte) bool {
	pkts := make([]batchPkt, batchSize)
	for {
		n, err := t.bio.readBatch(pkts)
		if err != nil {
			select {
			case <-t.done:
				return true
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return true
			}
			if errors.Is(err, errBatchUnsupported) {
				return false
			}
			continue
		}
		if n > 0 {
			t.count(metrics.WireBatchedReads, 1)
		}
		for i := 0; i < n; i++ {
			if pkts[i].addr == nil {
				continue // undecodable source sockaddr
			}
			t.dispatch(pkts[i].b, pkts[i].addr, ackBuf)
		}
	}
}

// dispatch routes one received datagram by its first byte.
func (t *UDP) dispatch(pkt []byte, addr net.Addr, ackBuf []byte) {
	if len(pkt) < 1 {
		return
	}
	switch pkt[0] {
	case ptAck:
		ack, err := parseAck(pkt)
		if err != nil {
			return
		}
		t.count(metrics.WireDatagramsRecv, 1)
		t.count(metrics.WireBytesRecv, int64(len(pkt)))
		t.handleAck(addr, ack)
	case ptData:
		t.count(metrics.WireDatagramsRecv, 1)
		t.count(metrics.WireBytesRecv, int64(len(pkt)))
		t.handleData(addr, pkt, ackBuf)
	}
}

// handleAck retires cumulatively acknowledged packets, samples the RTT
// from a clean (never-retransmitted) round trip, grows the congestion
// window, and flushes any queued packets the advanced window now
// admits.
func (t *UDP) handleAck(addr net.Addr, ack uint64) {
	f := t.sendFlowFor(addr)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ack >= f.nextSeq {
		ack = f.nextSeq - 1
	}
	retired := 0
	var sampleFrom time.Time
	for seq := f.base; seq <= ack; seq++ {
		if p, ok := f.pending[seq]; ok {
			if !p.retx && !p.sent.IsZero() && p.sent.After(sampleFrom) {
				sampleFrom = p.sent
			}
			p.buf.Release()
			delete(f.pending, seq)
			retired++
		}
	}
	if retired > 0 {
		if !t.fixedRTO && !sampleFrom.IsZero() {
			f.observeRTT(time.Since(sampleFrom))
		}
		if t.fixedWin == 0 {
			f.ccOnAck(retired)
		}
		t.noteCC(f)
	}
	if ack+1 > f.base {
		f.base = ack + 1
		win := f.window(t.fixedWin)
		f.wlist = f.wlist[:0]
		for seq := f.base; seq < f.base+win && seq < f.nextSeq; seq++ {
			if p, ok := f.pending[seq]; ok && p.sent.IsZero() {
				f.wlist = append(f.wlist, p)
			}
		}
		t.flushPkts(f, f.wlist)
	}
	if retired > 0 {
		t.count(metrics.WireAckRoundTrips, 1)
	}
}

// handleData advances the flow's in-order position, holding early
// packets and re-acking duplicates. In-order arrivals coalesce their
// cumulative ack — one ack per ackEvery data datagrams, or a delayed
// flush from the tick loop — while duplicates and out-of-order
// arrivals ack immediately (the sender may be timing out or filling a
// hole).
func (t *UDP) handleData(addr net.Addr, pkt, ackBuf []byte) {
	h, err := parseHeader(pkt)
	if err != nil {
		return
	}
	f := t.recvFlowFor(addr)
	f.mu.Lock()
	ackNow := true
	switch {
	case h.seq < f.nextSeq:
		// Duplicate (our earlier ack was lost, or a retransmit raced the
		// delayed ack): re-ack immediately below.
	case h.seq > f.nextSeq:
		// Out of order: hold, and ack our position immediately so the
		// sender sees the hole.
		if _, held := f.ooo[h.seq]; !held {
			cp := bufpool.Get(len(pkt))
			copy(cp.B, pkt)
			f.ooo[h.seq] = cp
		}
	default:
		t.deliverInOrder(f, h, pkt[dataHeaderLen:])
		f.nextSeq++
		f.unacked++
		for {
			cp, held := f.ooo[f.nextSeq]
			if !held {
				break
			}
			delete(f.ooo, f.nextSeq)
			if h2, err := parseHeader(cp.B); err == nil {
				t.deliverInOrder(f, h2, cp.B[dataHeaderLen:])
			}
			cp.Release()
			f.nextSeq++
			f.unacked++
		}
		if f.unacked < t.ackEvery {
			// Coalesce: defer the cumulative ack to the flush timer.
			ackNow = false
			if f.ackDue.IsZero() {
				f.ackDue = time.Now().Add(f.ackDelay(t.rto))
			}
			t.count(metrics.WireAcksCoalesced, 1)
		}
	}
	var ack uint64
	if ackNow {
		ack = f.nextSeq - 1
		f.unacked = 0
		f.ackDue = time.Time{}
	}
	f.mu.Unlock()
	if ackNow {
		t.sendAck(addr, ack, ackBuf)
	}
}

// sendAck writes one cumulative-ack datagram.
func (t *UDP) sendAck(addr net.Addr, ack uint64, ackBuf []byte) {
	putAck(ackBuf, ack)
	if _, err := t.conn.WriteTo(ackBuf[:ackLen], addr); err == nil {
		t.count(metrics.WireDatagramsSent, 1)
		t.count(metrics.WireBytesSent, ackLen)
		t.count(metrics.WireAcksSent, 1)
	}
}

// deliverInOrder folds one in-sequence fragment into the flow's message
// under reassembly and hands the completed message to the handler.
// Fragments of a message are contiguous in the flow (Send enqueues them
// under the flow lock), so offset 0 always opens a fresh message.
func (t *UDP) deliverInOrder(f *recvFlow, h header, frag []byte) {
	if h.offset == 0 {
		if f.asm != nil {
			f.asm.Release()
		}
		f.asm = bufpool.Get(h.totalLen)
		f.asmGot = 0
	}
	if f.asm == nil || h.offset != f.asmGot || h.totalLen != len(f.asm.B) {
		return
	}
	copy(f.asm.B[h.offset:], frag)
	f.asmGot += len(frag)
	if f.asmGot < h.totalLen {
		return
	}
	buf := f.asm
	f.asm = nil
	t.hmu.RLock()
	hnd := t.handler
	t.hmu.RUnlock()
	if hnd == nil {
		buf.Release()
		return
	}
	hnd(Message{
		Ctx: h.ctx, Src: h.src, SrcWorld: h.srcWorld, Dst: h.dst,
		Tag: h.tag, Kind: h.kind, MsgID: h.msgID,
		Data: buf.B[:h.totalLen], Buf: buf,
	})
}

// tickLoop is the transport's clock: it retransmits written-but-unacked
// packets past their (backoff-inflated) timeout, writes queued packets
// the window admits, and flushes overdue delayed acks. The tick
// interval tracks the smallest live deadline so a 200µs adaptive RTO
// gets sub-millisecond resolution while an idle transport sleeps.
func (t *UDP) tickLoop() {
	defer t.wg.Done()
	timer := time.NewTimer(t.tickInterval())
	defer timer.Stop()
	for {
		select {
		case <-t.done:
			return
		case now := <-timer.C:
			t.retransmitPass(now)
			t.ackFlushPass(now)
			timer.Reset(t.tickInterval())
		}
	}
}

// tickInterval picks the next clock granularity: half the smallest live
// RTO when packets are pending, the shortest ack-flush deadline when
// acks are deferred, and a coarse idle tick otherwise.
func (t *UDP) tickInterval() time.Duration {
	const idle = 10 * time.Millisecond
	d := idle
	for _, f := range t.snapshotSendFlows() {
		f.mu.Lock()
		if len(f.pending) > 0 {
			if h := f.rto / 2; h < d {
				d = h
			}
		}
		f.mu.Unlock()
	}
	for _, f := range t.snapshotRecvFlows() {
		f.mu.Lock()
		if f.unacked > 0 && !f.ackDue.IsZero() {
			if u := time.Until(f.ackDue); u < d {
				d = u
			}
		}
		f.mu.Unlock()
	}
	if d < minAckDelay {
		d = minAckDelay
	}
	return d
}

// retransmitPass rewrites timed-out packets (exponential backoff per
// packet, Karn-marked so their acks never feed the RTT estimator) and
// registers at most one congestion loss event per pass.
func (t *UDP) retransmitPass(now time.Time) {
	for _, f := range t.snapshotSendFlows() {
		f.mu.Lock()
		win := f.window(t.fixedWin)
		f.wlist = f.wlist[:0]
		timedOut := false
		retx := 0
		for seq := f.base; seq < f.base+win && seq < f.nextSeq; seq++ {
			p, ok := f.pending[seq]
			if !ok {
				continue
			}
			if p.sent.IsZero() {
				f.wlist = append(f.wlist, p)
				continue
			}
			if now.Sub(p.sent) >= backoffRTO(f.rto, p.backoff) {
				p.retx = true
				if !t.fixedRTO && p.backoff < maxBackoff {
					p.backoff++
				}
				f.wlist = append(f.wlist, p)
				retx++
				timedOut = true
			}
		}
		if timedOut && t.fixedWin == 0 && f.ccOnTimeout() {
			t.count(metrics.WireCwndHalvings, 1)
			t.noteCC(f)
		}
		t.flushPkts(f, f.wlist)
		if retx > 0 {
			t.count(metrics.WireRetransmits, int64(retx))
		}
		f.mu.Unlock()
	}
}

// ackFlushPass sends the delayed cumulative ack of every recv flow
// whose flush deadline has passed.
func (t *UDP) ackFlushPass(now time.Time) {
	var ackBuf [ackLen]byte
	for _, f := range t.snapshotRecvFlows() {
		f.mu.Lock()
		due := f.unacked > 0 && !f.ackDue.IsZero() && !now.Before(f.ackDue)
		var ack uint64
		if due {
			ack = f.nextSeq - 1
			f.unacked = 0
			f.ackDue = time.Time{}
		}
		addr := f.addr
		f.mu.Unlock()
		if due {
			t.sendAck(addr, ack, ackBuf[:])
		}
	}
}
