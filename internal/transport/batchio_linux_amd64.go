//go:build linux && amd64

package transport

// mmsg syscall numbers, defined locally because the frozen stdlib
// syscall table on this arch predates sendmmsg(2).
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
