//go:build linux && arm64

package transport

// mmsg syscall numbers, defined locally because the frozen stdlib
// syscall table on this arch predates sendmmsg(2).
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
