package transport

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestAdaptiveRTOEstimator pins the Jacobson/Karels arithmetic: the
// first sample seeds SRTT/RTTVAR directly, later samples converge with
// gains 1/8 and 1/4, and the resulting RTO clamps to [minRTO, maxRTO].
func TestAdaptiveRTOEstimator(t *testing.T) {
	f := &sendFlow{}
	f.observeRTT(8 * time.Millisecond)
	if f.srtt != 8*time.Millisecond || f.rttvar != 4*time.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v, want 8ms/4ms", f.srtt, f.rttvar)
	}
	if want := 24 * time.Millisecond; f.rto != want {
		t.Fatalf("first rto = %v, want %v", f.rto, want)
	}
	// A long run of identical samples must converge srtt to the sample
	// and rttvar toward zero, bottoming the RTO out at srtt-ish.
	for i := 0; i < 200; i++ {
		f.observeRTT(8 * time.Millisecond)
	}
	if f.srtt != 8*time.Millisecond {
		t.Errorf("converged srtt = %v, want 8ms", f.srtt)
	}
	if f.rto > 9*time.Millisecond {
		t.Errorf("converged rto = %v, want ~srtt", f.rto)
	}

	// Clamps: microsecond samples floor at minRTO, huge ones cap at maxRTO.
	lo := &sendFlow{}
	lo.observeRTT(time.Microsecond)
	if lo.rto != minRTO {
		t.Errorf("tiny-sample rto = %v, want floor %v", lo.rto, minRTO)
	}
	hi := &sendFlow{}
	hi.observeRTT(10 * time.Second)
	if hi.rto != maxRTO {
		t.Errorf("huge-sample rto = %v, want cap %v", hi.rto, maxRTO)
	}
	if got := time.Duration(hi.rtoNanos.Load()); got != maxRTO {
		t.Errorf("rtoNanos mirror = %v, want %v", got, maxRTO)
	}
}

// TestBackoffRTO pins the per-packet exponential backoff: doubling per
// shift, capped at maxBackoffRTO, overflow-safe at large shifts.
func TestBackoffRTO(t *testing.T) {
	if got := backoffRTO(time.Millisecond, 0); got != time.Millisecond {
		t.Errorf("shift 0 = %v", got)
	}
	if got := backoffRTO(time.Millisecond, 3); got != 8*time.Millisecond {
		t.Errorf("shift 3 = %v, want 8ms", got)
	}
	if got := backoffRTO(maxRTO, maxBackoff); got != maxBackoffRTO {
		t.Errorf("capped = %v, want %v", got, maxBackoffRTO)
	}
	if got := backoffRTO(maxRTO, 62); got != maxBackoffRTO {
		t.Errorf("overflowing shift = %v, want %v", got, maxBackoffRTO)
	}
}

// TestCongestionWindowDynamics pins slow start, the AIMD crossover,
// halving on timeout with the once-per-window recover fence, and the
// floor under sustained loss.
func TestCongestionWindowDynamics(t *testing.T) {
	f := &sendFlow{nextSeq: 1, base: 1, cwnd: initialCwnd, ssthresh: maxCwnd}

	// Slow start: +1 per acked packet up to the threshold.
	f.ccOnAck(16)
	if f.cwnd != initialCwnd+16 {
		t.Fatalf("slow-start cwnd = %v, want %d", f.cwnd, initialCwnd+16)
	}
	// Above the threshold the growth is additive: +acked/cwnd per ack.
	f.ssthresh = f.cwnd
	before := f.cwnd
	f.ccOnAck(16)
	if grown := f.cwnd - before; grown >= 16 || grown <= 0 {
		t.Fatalf("AIMD growth for 16 acked = %v, want small additive step", grown)
	}

	// Timeout halves cwnd and the threshold...
	f.nextSeq = 100
	f.base = 40
	cw := f.cwnd
	if !f.ccOnTimeout() {
		t.Fatal("first timeout must register a loss event")
	}
	if f.cwnd != cw/2 || f.ssthresh != cw/2 {
		t.Fatalf("after timeout cwnd=%v ssthresh=%v, want both %v", f.cwnd, f.ssthresh, cw/2)
	}
	// ...but only once per outstanding window: another timeout before
	// base passes the recover fence must not halve again.
	if f.ccOnTimeout() {
		t.Fatal("timeout inside the recovery window must not halve again")
	}
	if f.cwnd != cw/2 {
		t.Fatalf("cwnd moved during recovery: %v", f.cwnd)
	}
	// Once base crosses the fence, sustained loss keeps halving down to
	// the floor and never below.
	for i := 0; i < 10; i++ {
		f.base = f.nextSeq
		f.nextSeq += 10
		f.ccOnTimeout()
	}
	if f.cwnd != minCwnd {
		t.Fatalf("sustained-loss cwnd = %v, want floor %d", f.cwnd, minCwnd)
	}
	if f.window(0) != minCwnd {
		t.Fatalf("window() = %d, want floor %d", f.window(0), minCwnd)
	}
	// Growth resumes from the floor.
	f.ccOnAck(1)
	if f.cwnd <= minCwnd {
		t.Fatalf("cwnd must regrow from the floor, got %v", f.cwnd)
	}

	// A fixed window ignores all of it.
	if f.window(64) != 64 {
		t.Fatalf("fixed window = %d, want 64", f.window(64))
	}
}

// blackHolePair builds an unstarted UDP transport whose peer address is
// a socket nobody reads: sends queue deterministically and acks can be
// injected by hand.
func blackHolePair(t *testing.T) (*UDP, net.Addr) {
	t.Helper()
	hole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hole.Close() })
	u, err := NewUDP(UDPConfig{
		NP: 2, Hosted: []int{0},
		Peers: map[int]string{1: hole.LocalAddr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: Close skips the drain, so leftover pending is fine.
	t.Cleanup(func() { u.Close() })
	return u, u.peers[1]
}

// TestWindowQueuedDrain extends the windowing coverage past the initial
// congestion window: a bulk message must queue its tail unwritten, and
// cumulative acks must both grow the window (slow start) and flush the
// queue as the window slides.
func TestWindowQueuedDrain(t *testing.T) {
	u, peer := blackHolePair(t)
	frags := 4 * initialCwnd // well past the initial window
	payload := frags * maxPayload
	if err := u.Send(Message{Ctx: 1, Dst: 1, Kind: Eager, Data: pattern(0, payload)}); err != nil {
		t.Fatal(err)
	}

	f := u.sendFlowFor(peer)
	count := func() (pending, queued int) {
		f.mu.Lock()
		defer f.mu.Unlock()
		for _, p := range f.pending {
			pending++
			if p.sent.IsZero() {
				queued++
			}
		}
		return
	}
	pending, queued := count()
	if pending != frags {
		t.Fatalf("pending = %d, want %d", pending, frags)
	}
	if queued != frags-initialCwnd {
		t.Fatalf("queued unwritten = %d, want %d (initial cwnd %d written)",
			queued, frags-initialCwnd, initialCwnd)
	}

	// Ack the first 16 packets: slow start grows cwnd by 16, the base
	// slides to 17, and the reopened window must flush the next batch of
	// queued packets — everything below base+cwnd is now written.
	u.handleAck(peer, 16)
	f.mu.Lock()
	cwnd, base := f.cwnd, f.base
	f.mu.Unlock()
	if cwnd != initialCwnd+16 || base != 17 {
		t.Fatalf("after ack: cwnd=%v base=%d, want %d/17", cwnd, base, initialCwnd+16)
	}
	pending, queued = count()
	if pending != frags-16 {
		t.Fatalf("pending after ack = %d, want %d", pending, frags-16)
	}
	written := 16 + initialCwnd + 16 // base-1 + reopened window
	if want := frags - written; queued != want {
		t.Fatalf("queued after window reopened = %d, want %d", queued, want)
	}

	// Ack everything: the flow must be clean.
	u.handleAck(peer, uint64(frags))
	if pending, _ = count(); pending != 0 {
		t.Fatalf("pending after full ack = %d, want 0", pending)
	}
}

// TestDrainBound pins the Close linger bound: the 5s floor when flows
// are quiet, and scaling to drainRTOs× the worst backoff-inflated
// per-packet timeout when they are not.
func TestDrainBound(t *testing.T) {
	u, peer := blackHolePair(t)
	if got := u.drainBound(); got != minDrain {
		t.Fatalf("idle drain bound = %v, want %v", got, minDrain)
	}
	f := u.sendFlowFor(peer)
	f.mu.Lock()
	f.rto = 200 * time.Millisecond
	f.pending[1] = &pendingPkt{backoff: 3} // effective timeout 1.6s
	f.mu.Unlock()
	if got, want := u.drainBound(), time.Duration(drainRTOs)*1600*time.Millisecond; got != want {
		t.Fatalf("inflated drain bound = %v, want %v", got, want)
	}
	f.mu.Lock()
	f.pending = map[uint64]*pendingPkt{}
	f.mu.Unlock()
}

// TestUDPCloseDrainsUnderBackoff is the strand-proof: heavy loss on
// both sockets inflates per-packet backoff, and Close on the sender
// must still linger until the final ACK exchange lands rather than
// stranding tail messages (eager sends complete at enqueue, so Close
// is the only thing standing between the caller and silent loss).
func TestUDPCloseDrainsUnderBackoff(t *testing.T) {
	faults := &FaultConfig{Drop: 0.4}
	a, b := newPair(t, faults, 0) // adaptive RTO, so backoff is live
	var sink collector
	if err := a.Start(func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.handle); err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		err := a.Send(Message{Ctx: 1, Src: 0, Dst: 1, Tag: i, Kind: Eager, Data: pattern(i, 2000)})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Close immediately: the drain must cover the in-flight tail.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.hasPending() {
		t.Error("Close returned with unacknowledged packets still pending")
	}
	got := sink.waitFor(t, n, 10*time.Second)
	for i, m := range got {
		if m.Tag != i || !bytes.Equal(m.Data, pattern(i, 2000)) {
			t.Fatalf("message %d corrupted or out of order after drain", i)
		}
	}
}

// TestUDPAckCoalescing proves the delayed-ack math on a bulk flow: the
// receiver must send far fewer ack datagrams than it receives data
// datagrams, with the deferrals visible in the coalesced counter and
// the sender's RTT estimate live in the gauges.
func TestUDPAckCoalescing(t *testing.T) {
	a, b := newPair(t, nil, 0)
	ma, mb := metrics.New(1, 0), metrics.New(1, 0)
	a.BindMetrics(ma)
	b.BindMetrics(mb)
	var sink collector
	if err := a.Start(func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.handle); err != nil {
		t.Fatal(err)
	}
	const msgs = 4
	for i := 0; i < msgs; i++ {
		if err := a.Send(Message{Ctx: 1, Dst: 1, Tag: i, Kind: Eager, Data: pattern(i, 1<<20)}); err != nil {
			t.Fatal(err)
		}
	}
	sink.waitFor(t, msgs, 10*time.Second)
	// Let trailing delayed acks flush before snapshotting.
	time.Sleep(20 * time.Millisecond)

	sa, sb := ma.Snapshot(), mb.Snapshot()
	if sb.WireAcksCoalesced == 0 {
		t.Error("bulk flow produced no coalesced acks")
	}
	if sb.WireAcksSent == 0 {
		t.Fatal("no acks sent at all")
	}
	if sa.WireDatagramsSent < 4*sb.WireAcksSent {
		t.Errorf("ack reduction < 4×: %d data datagrams vs %d acks",
			sa.WireDatagramsSent, sb.WireAcksSent)
	}
	if sa.WireSRTTMaxMicros <= 0 || sa.WireRTOMaxMicros <= 0 {
		t.Errorf("RTT gauges not live: srtt=%dus rto=%dus", sa.WireSRTTMaxMicros, sa.WireRTOMaxMicros)
	}
	if sa.WireCwndHighWater < initialCwnd {
		t.Errorf("cwnd high water = %d, want ≥ initial %d", sa.WireCwndHighWater, initialCwnd)
	}
	if a.bio != nil && sa.WireBatchedWrites == 0 {
		t.Error("batch-capable socket recorded no batched writes on a bulk flow")
	}
	if b.bio != nil && sb.WireBatchedReads == 0 {
		t.Error("batch-capable socket recorded no batched reads on a bulk flow")
	}
}

// TestUDPAdaptiveRTOWithLatency injects realistic one-way latency and
// jitter (satellite: FaultConfig.Delay/Jitter) and checks the estimator
// tracks it: with ≥2ms each way the SRTT gauge must report a
// multi-millisecond estimate, not loopback microseconds.
func TestUDPAdaptiveRTOWithLatency(t *testing.T) {
	faults := &FaultConfig{Delay: 2 * time.Millisecond, Jitter: time.Millisecond}
	a, b := newPair(t, faults, 0)
	m := metrics.New(1, 0)
	a.BindMetrics(m)
	var sink collector
	if err := a.Start(func(Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(sink.handle); err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Send(Message{Ctx: 1, Dst: 1, Tag: i, Kind: Eager, Data: pattern(i, 4096)}); err != nil {
			t.Fatal(err)
		}
	}
	got := sink.waitFor(t, n, 10*time.Second)
	for i, msg := range got {
		if msg.Tag != i || !bytes.Equal(msg.Data, pattern(i, 4096)) {
			t.Fatalf("message %d corrupted under latency injection", i)
		}
	}
	// The acks themselves ride the 2ms-delayed reverse path; wait for
	// them to retire the sender's pending packets (and feed the
	// estimator) before snapshotting.
	for deadline := time.Now().Add(5 * time.Second); a.hasPending(); {
		if time.Now().After(deadline) {
			t.Fatal("sender never drained under latency injection")
		}
		time.Sleep(time.Millisecond)
	}
	s := m.Snapshot()
	if s.WireSRTTMaxMicros < 2000 {
		t.Errorf("srtt gauge = %dus under ≥4ms injected RTT, want ≥2000", s.WireSRTTMaxMicros)
	}
	if s.WireRTOMaxMicros < s.WireSRTTMaxMicros {
		t.Errorf("rto gauge %dus below srtt %dus", s.WireRTOMaxMicros, s.WireSRTTMaxMicros)
	}
}

// TestFrameRejectsHardened pins the parse hardening added with the
// adaptive path: sequence number 0 (flows start at 1) and absurd
// claimed message lengths must be rejected before they reach
// reassembly.
func TestFrameRejectsHardened(t *testing.T) {
	b := make([]byte, dataHeaderLen+8)
	putHeader(b, header{seq: 0, totalLen: 8})
	if _, err := parseHeader(b); err == nil {
		t.Error("seq 0 must be rejected")
	}
	putHeader(b, header{seq: 1, totalLen: maxWireMessage + 1})
	if _, err := parseHeader(b); err == nil {
		t.Error("totalLen beyond maxWireMessage must be rejected")
	}
	putHeader(b, header{seq: 1, totalLen: 8})
	if _, err := parseHeader(b); err != nil {
		t.Errorf("valid header rejected: %v", err)
	}
}

// FuzzParseFrame throws arbitrary bytes at the datagram parsers — the
// exact surface recvLoop exposes to the network — and checks that
// anything accepted satisfies the invariants reassembly depends on.
func FuzzParseFrame(f *testing.F) {
	valid := make([]byte, dataHeaderLen+16)
	putHeader(valid, header{seq: 3, msgID: 9, kind: Rdv, src: 1, dst: 0, totalLen: 64, offset: 16})
	f.Add(valid)
	var ack [ackLen]byte
	putAck(ack[:], 77)
	f.Add(ack[:])
	f.Add([]byte{ptData, 0, 0})                   // truncated header
	f.Add(append([]byte(nil), valid[:ackLen]...)) // data byte, ack length
	short := append([]byte(nil), valid...)
	putHeader(short, header{seq: 0, totalLen: 16}) // zero seq
	f.Add(short)
	huge := append([]byte(nil), valid...)
	putHeader(huge, header{seq: 1, totalLen: 1 << 31}) // absurd claimed length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		if h, err := parseHeader(b); err == nil {
			if h.seq == 0 {
				t.Fatal("parser accepted sequence number 0")
			}
			if h.totalLen < 0 || h.totalLen > maxWireMessage {
				t.Fatalf("parser accepted totalLen %d", h.totalLen)
			}
			frag := len(b) - dataHeaderLen
			if h.offset < 0 || h.offset+frag > h.totalLen {
				t.Fatalf("parser accepted fragment [%d:%d) of a %d-byte message",
					h.offset, h.offset+frag, h.totalLen)
			}
		}
		// The ack parser must never panic and only needs length checks.
		if seq, err := parseAck(b); err == nil && len(b) < ackLen {
			t.Fatalf("short ack accepted: %d", seq)
		}
	})
}
