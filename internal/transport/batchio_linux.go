//go:build linux && (amd64 || arm64)

// Batched datagram I/O over sendmmsg(2)/recvmmsg(2), driven through
// syscall.RawConn so the sockets stay registered with the runtime
// netpoller: syscalls are non-blocking (MSG_DONTWAIT) and EAGAIN parks
// the goroutine on poller readiness instead of spinning. The frozen
// stdlib syscall package has no mmsghdr wrappers (and on some arches
// not even the sendmmsg number), so the structures and numbers live
// here; anything unexpected degrades to the portable WriteTo/ReadFrom
// path rather than failing.

package transport

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length, padded to 8-byte alignment on 64-bit.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// rawSockaddr is scratch space big enough for any UDP sockaddr.
type rawSockaddr [syscall.SizeofSockaddrInet6]byte

// batchIO provides sendmmsg/recvmmsg access to one UDP socket. Write
// scratch lives on the caller's stack (flows flush concurrently);
// receive scratch lives here because readBatch has a single caller,
// the transport's receive loop.
type batchIO struct {
	rc syscall.RawConn

	rbufs  [batchSize][]byte
	riovs  [batchSize]syscall.Iovec
	rhdrs  [batchSize]mmsghdr
	rnames [batchSize]rawSockaddr

	// addrs caches decoded source addresses so steady-state receives
	// from a known peer allocate nothing.
	addrs []cachedAddr
}

type cachedAddr struct {
	raw  rawSockaddr
	n    uint32
	addr *net.UDPAddr
}

// newBatchIO returns a batchIO for conn, or nil when conn is not a raw
// UDP socket (e.g. wrapped in a Faulty) — callers then use the portable
// single-datagram path.
func newBatchIO(conn net.PacketConn) *batchIO {
	uc, ok := conn.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{rc: rc}
	for i := range b.rbufs {
		b.rbufs[i] = make([]byte, maxDatagram)
		b.riovs[i].Base = &b.rbufs[i][0]
		b.riovs[i].SetLen(maxDatagram)
		b.rhdrs[i].hdr.Iov = &b.riovs[i]
		b.rhdrs[i].hdr.Iovlen = 1
		b.rhdrs[i].hdr.Name = &b.rnames[i][0]
	}
	return b
}

// encodeSockaddr fills rsa with addr's kernel representation and
// returns its length; ok is false for address shapes the batch path
// does not handle (callers fall back).
func encodeSockaddr(addr net.Addr, rsa *rawSockaddr) (uint32, bool) {
	ua, ok := addr.(*net.UDPAddr)
	if !ok || ua.Zone != "" {
		return 0, false
	}
	port := uint16(ua.Port)
	if ip4 := ua.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Port: port<<8 | port>>8}
		copy(sa.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, true
	}
	if ip6 := ua.IP.To16(); ip6 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Port: port<<8 | port>>8}
		copy(sa.Addr[:], ip6)
		return syscall.SizeofSockaddrInet6, true
	}
	return 0, false
}

// decodeSockaddr resolves a kernel-filled sockaddr through the address
// cache, adding an entry on first sight of a peer.
func (b *batchIO) decodeSockaddr(raw *rawSockaddr, n uint32) net.Addr {
	for i := range b.addrs {
		c := &b.addrs[i]
		if c.n == n && c.raw == *raw {
			return c.addr
		}
	}
	fam := uint16(raw[0]) | uint16(raw[1])<<8
	var ua *net.UDPAddr
	switch fam {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(raw))
		ua = &net.UDPAddr{
			IP:   append(net.IP(nil), sa.Addr[:]...),
			Port: int(sa.Port>>8 | sa.Port<<8),
		}
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(raw))
		ua = &net.UDPAddr{
			IP:   append(net.IP(nil), sa.Addr[:]...),
			Port: int(sa.Port>>8 | sa.Port<<8),
		}
	default:
		return nil
	}
	// Bound the cache; a rotating peer set beyond this just allocates.
	if len(b.addrs) < 256 {
		b.addrs = append(b.addrs, cachedAddr{raw: *raw, n: n, addr: ua})
	}
	return ua
}

// writeBatch sends bufs to addr in sendmmsg chunks, reporting how many
// datagrams the kernel accepted and how many syscalls that took. ok is
// false when the batch path cannot be used at all (callers fall back to
// WriteTo); a short or failed send after the first accepted datagram
// still reports ok, and the unaccepted tail is left to the retransmit
// clock.
func (b *batchIO) writeBatch(bufs [][]byte, addr net.Addr) (sent, calls int, ok bool) {
	var rsa rawSockaddr
	salen, ok := encodeSockaddr(addr, &rsa)
	if !ok {
		return 0, 0, false
	}
	var iovs [batchSize]syscall.Iovec
	var hdrs [batchSize]mmsghdr
	for sent < len(bufs) {
		n := len(bufs) - sent
		if n > batchSize {
			n = batchSize
		}
		for i := 0; i < n; i++ {
			p := bufs[sent+i]
			iovs[i].Base = &p[0]
			iovs[i].SetLen(len(p))
			hdrs[i].hdr = syscall.Msghdr{Name: &rsa[0], Namelen: salen, Iov: &iovs[i], Iovlen: 1}
		}
		wrote := 0
		var serr syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), uintptr(n), syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // park on the netpoller until writable
			}
			serr = e
			wrote = int(r1)
			return true
		})
		if err != nil || serr != 0 {
			return sent, calls, sent > 0
		}
		calls++
		sent += wrote
		if wrote < n {
			return sent, calls, true
		}
	}
	return sent, calls, true
}

// readBatch fills pkts from one recvmmsg call, blocking on the
// netpoller until at least one datagram is readable. The returned
// packet slices alias the batchIO's buffers until the next call.
func (b *batchIO) readBatch(pkts []batchPkt) (int, error) {
	n := len(pkts)
	if n > batchSize {
		n = batchSize
	}
	for i := 0; i < n; i++ {
		b.rhdrs[i].hdr.Namelen = uint32(len(b.rnames[i]))
		b.riovs[i].SetLen(maxDatagram)
	}
	got := 0
	var serr syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.rhdrs[0])), uintptr(n), syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // park on the netpoller until readable
		}
		serr = e
		got = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	if serr != 0 {
		if serr == syscall.ENOSYS || serr == syscall.EINVAL {
			return 0, errBatchUnsupported
		}
		return 0, serr
	}
	for i := 0; i < got; i++ {
		pkts[i].b = b.rbufs[i][:b.rhdrs[i].n]
		pkts[i].addr = b.decodeSockaddr(&b.rnames[i], b.rhdrs[i].hdr.Namelen)
	}
	return got, nil
}
