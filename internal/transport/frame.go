package transport

import (
	"encoding/binary"
	"fmt"
)

// Packet types on the wire (first byte of every datagram). Anything
// else — e.g. the soak harness's textual HELLO/PEERS bootstrap packets
// sharing the socket — is silently dropped by the receive loop.
const (
	ptData = 1
	ptAck  = 2
)

// Wire sizes. maxDatagram is the receive-buffer ceiling and the default
// fragment size: large enough that the per-datagram kernel cost stops
// dominating bulk flows, still comfortably inside the 64KiB loopback
// MTU and one bufpool size class. Senders may fragment smaller
// (UDPConfig.PacketBytes — real paths with a 1500-byte MTU want
// datagrams that dodge IP fragmentation); receivers always accept up to
// maxDatagram. Messages larger than a fragment are split into
// sequential fragments of the same flow.
const (
	dataHeaderLen = 54
	ackLen        = 9
	maxDatagram   = 32 << 10
	maxPayload    = maxDatagram - dataHeaderLen
	// basePacket is the pre-adaptive (PR 9) datagram size, kept as the
	// benchmark baseline's fragmentation and the conservative choice for
	// MTU-constrained paths.
	basePacket = 8 << 10
	// maxWireMessage caps the totalLen a data header may claim. Untrusted
	// bytes reach parseHeader straight off the socket, and totalLen sizes
	// the receiver's reassembly allocation — without a cap, one forged
	// datagram could demand a multi-GiB buffer.
	maxWireMessage = 1 << 30
)

// header is the decoded 54-byte data-datagram header. The layout is
// documented in the package comment; all fields are little-endian.
type header struct {
	seq      uint64
	msgID    uint64
	kind     Kind
	ctx      int64
	src      int
	srcWorld int
	dst      int
	tag      int
	totalLen int
	offset   int
}

// putHeader encodes h into b[:dataHeaderLen]. b must be caller-owned
// (a pooled wire buffer) and at least dataHeaderLen long.
func putHeader(b []byte, h header) {
	b[0] = ptData
	binary.LittleEndian.PutUint64(b[1:9], h.seq)
	binary.LittleEndian.PutUint64(b[9:17], h.msgID)
	b[17] = byte(h.kind)
	binary.LittleEndian.PutUint64(b[18:26], uint64(h.ctx))
	binary.LittleEndian.PutUint32(b[26:30], uint32(h.src))
	binary.LittleEndian.PutUint32(b[30:34], uint32(h.srcWorld))
	binary.LittleEndian.PutUint32(b[34:38], uint32(h.dst))
	binary.LittleEndian.PutUint64(b[38:46], uint64(int64(h.tag)))
	binary.LittleEndian.PutUint32(b[46:50], uint32(h.totalLen))
	binary.LittleEndian.PutUint32(b[50:54], uint32(h.offset))
}

// parseHeader decodes a data datagram's header. The fragment payload is
// b[dataHeaderLen:]; its length is implicit in the datagram length.
func parseHeader(b []byte) (header, error) {
	if len(b) < dataHeaderLen {
		return header{}, fmt.Errorf("transport: short data datagram (%d bytes)", len(b))
	}
	h := header{
		seq:      binary.LittleEndian.Uint64(b[1:9]),
		msgID:    binary.LittleEndian.Uint64(b[9:17]),
		kind:     Kind(b[17]),
		ctx:      int64(binary.LittleEndian.Uint64(b[18:26])),
		src:      int(int32(binary.LittleEndian.Uint32(b[26:30]))),
		srcWorld: int(int32(binary.LittleEndian.Uint32(b[30:34]))),
		dst:      int(int32(binary.LittleEndian.Uint32(b[34:38]))),
		tag:      int(int64(binary.LittleEndian.Uint64(b[38:46]))),
		totalLen: int(binary.LittleEndian.Uint32(b[46:50])),
		offset:   int(binary.LittleEndian.Uint32(b[50:54])),
	}
	if h.seq == 0 {
		return header{}, fmt.Errorf("transport: data datagram with sequence number 0 (flows start at 1)")
	}
	if h.totalLen > maxWireMessage {
		return header{}, fmt.Errorf("transport: claimed message length %d exceeds cap %d",
			h.totalLen, maxWireMessage)
	}
	frag := len(b) - dataHeaderLen
	if h.totalLen < 0 || h.offset < 0 || h.offset+frag > h.totalLen {
		return header{}, fmt.Errorf("transport: fragment [%d:%d) exceeds message length %d",
			h.offset, h.offset+frag, h.totalLen)
	}
	return h, nil
}

// putAck encodes a cumulative ACK for seq into b[:ackLen].
func putAck(b []byte, seq uint64) {
	b[0] = ptAck
	binary.LittleEndian.PutUint64(b[1:9], seq)
}

// parseAck decodes an ACK datagram's cumulative sequence number.
func parseAck(b []byte) (uint64, error) {
	if len(b) < ackLen {
		return 0, fmt.Errorf("transport: short ack datagram (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b[1:9]), nil
}
