package transport

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultConfig sets independent per-datagram fault probabilities for a
// Faulty wrapper. Probabilities are evaluated in Drop, Dup, Reorder
// order from one roll, so their sum must not exceed 1. Delay and Jitter
// compose with the probabilistic faults: every datagram that survives
// them is additionally held for Delay plus a uniform [0, Jitter) draw
// before hitting the wire — a one-way latency model that gives
// adaptive-RTO tests realistic round trips instead of loopback
// microseconds.
type FaultConfig struct {
	Drop    float64       // datagram vanishes (write reports success)
	Dup     float64       // datagram is written twice
	Reorder float64       // datagram is held and released after a later write
	Delay   time.Duration // fixed one-way latency added to every datagram
	Jitter  time.Duration // uniform extra latency in [0, Jitter) per datagram
	Seed    int64         // rng seed; 0 means a fixed default (deterministic)
}

// Faulty wraps a PacketConn and injects datagram loss, duplication and
// reordering on the write side. Reads pass through untouched, so
// wrapping one endpoint of a pair perturbs exactly one direction.
// The retransmit contract makes all three faults invisible to the
// Transport's callers — tests wrap a UDP transport's socket in a Faulty
// to prove byte-identity under loss.
type Faulty struct {
	net.PacketConn
	cfg FaultConfig

	mu   sync.Mutex
	rng  *rand.Rand
	held []heldPkt
}

type heldPkt struct {
	b    []byte
	addr net.Addr
}

// maxHeld bounds how many reordered packets wait for a release trigger.
const maxHeld = 4

// NewFaulty wraps conn with the configured fault probabilities.
func NewFaulty(conn net.PacketConn, cfg FaultConfig) *Faulty {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Faulty{PacketConn: conn, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// WriteTo implements net.PacketConn with fault injection. Dropped
// datagrams report success — exactly what the network does. Surviving
// datagrams leave through emit, which applies the configured one-way
// latency.
func (f *Faulty) WriteTo(p []byte, addr net.Addr) (int, error) {
	f.mu.Lock()
	roll := f.rng.Float64()
	var lat time.Duration
	if f.cfg.Delay > 0 || f.cfg.Jitter > 0 {
		lat = f.cfg.Delay
		if f.cfg.Jitter > 0 {
			lat += time.Duration(f.rng.Float64() * float64(f.cfg.Jitter))
		}
	}
	switch {
	case roll < f.cfg.Drop:
		f.mu.Unlock()
		return len(p), nil
	case roll < f.cfg.Drop+f.cfg.Dup:
		f.mu.Unlock()
		f.emit(p, addr, lat)
		f.emit(p, addr, lat)
		return len(p), nil
	case roll < f.cfg.Drop+f.cfg.Dup+f.cfg.Reorder:
		f.held = append(f.held, heldPkt{append([]byte(nil), p...), addr})
		var rel []heldPkt
		if len(f.held) > maxHeld {
			rel = append(rel, f.held[0])
			f.held = f.held[1:]
		}
		f.mu.Unlock()
		for _, h := range rel {
			f.emit(h.b, h.addr, lat)
		}
		return len(p), nil
	default:
		rel := f.held
		f.held = nil
		f.mu.Unlock()
		f.emit(p, addr, lat)
		for _, h := range rel {
			f.emit(h.b, h.addr, lat)
		}
		return len(p), nil
	}
}

// emit writes b immediately, or from a timer after the drawn latency.
// Write errors are ignored: the wrapped transport treats a failed
// datagram exactly like a lost one and retransmits. Delayed datagrams
// still pending when the socket closes are simply lost — also exactly
// what the network does.
func (f *Faulty) emit(b []byte, addr net.Addr, lat time.Duration) {
	if lat <= 0 {
		f.PacketConn.WriteTo(b, addr)
		return
	}
	cp := append([]byte(nil), b...)
	time.AfterFunc(lat, func() { f.PacketConn.WriteTo(cp, addr) })
}

// Close flushes held packets, then closes the underlying socket.
func (f *Faulty) Close() error {
	f.mu.Lock()
	for _, h := range f.held {
		f.PacketConn.WriteTo(h.b, h.addr)
	}
	f.held = nil
	f.mu.Unlock()
	return f.PacketConn.Close()
}
