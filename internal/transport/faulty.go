package transport

import (
	"math/rand"
	"net"
	"sync"
)

// FaultConfig sets independent per-datagram fault probabilities for a
// Faulty wrapper. Probabilities are evaluated in Drop, Dup, Reorder
// order from one roll, so their sum must not exceed 1.
type FaultConfig struct {
	Drop    float64 // datagram vanishes (write reports success)
	Dup     float64 // datagram is written twice
	Reorder float64 // datagram is held and released after a later write
	Seed    int64   // rng seed; 0 means a fixed default (deterministic)
}

// Faulty wraps a PacketConn and injects datagram loss, duplication and
// reordering on the write side. Reads pass through untouched, so
// wrapping one endpoint of a pair perturbs exactly one direction.
// The retransmit contract makes all three faults invisible to the
// Transport's callers — tests wrap a UDP transport's socket in a Faulty
// to prove byte-identity under loss.
type Faulty struct {
	net.PacketConn
	cfg FaultConfig

	mu   sync.Mutex
	rng  *rand.Rand
	held []heldPkt
}

type heldPkt struct {
	b    []byte
	addr net.Addr
}

// maxHeld bounds how many reordered packets wait for a release trigger.
const maxHeld = 4

// NewFaulty wraps conn with the configured fault probabilities.
func NewFaulty(conn net.PacketConn, cfg FaultConfig) *Faulty {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Faulty{PacketConn: conn, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// WriteTo implements net.PacketConn with fault injection. Dropped
// datagrams report success — exactly what the network does.
func (f *Faulty) WriteTo(p []byte, addr net.Addr) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	roll := f.rng.Float64()
	switch {
	case roll < f.cfg.Drop:
		return len(p), nil
	case roll < f.cfg.Drop+f.cfg.Dup:
		f.PacketConn.WriteTo(p, addr)
		return f.PacketConn.WriteTo(p, addr)
	case roll < f.cfg.Drop+f.cfg.Dup+f.cfg.Reorder:
		f.held = append(f.held, heldPkt{append([]byte(nil), p...), addr})
		if len(f.held) > maxHeld {
			h := f.held[0]
			f.held = f.held[1:]
			f.PacketConn.WriteTo(h.b, h.addr)
		}
		return len(p), nil
	default:
		n, err := f.PacketConn.WriteTo(p, addr)
		for _, h := range f.held {
			f.PacketConn.WriteTo(h.b, h.addr)
		}
		f.held = f.held[:0]
		return n, err
	}
}

// Close flushes held packets, then closes the underlying socket.
func (f *Faulty) Close() error {
	f.mu.Lock()
	for _, h := range f.held {
		f.PacketConn.WriteTo(h.b, h.addr)
	}
	f.held = nil
	f.mu.Unlock()
	return f.PacketConn.Close()
}
