// Command bcastsoak soaks the UDP transport across real process
// boundaries: a coordinator spawns one child process per rank block,
// the children bootstrap a shared peer table over loopback UDP, boot
// one engine world whose ranks are split across the processes, and run
// a broadcast matrix (native / opt / opt-seg, eager- and
// rendezvous-sized messages). Every rank hashes its final buffer, the
// coordinator re-runs the identical matrix on the in-process chan
// transport, and the soak passes only if every hash from every process
// matches the in-process reference — byte-identity of the wire path,
// asserted end to end.
//
// Usage:
//
//	bcastsoak -np 8 -procs 4
//	bcastsoak -np 8 -procs 4 -drop 0.05 -dup 0.02 -reorder 0.02 -metrics
//
// The fault flags wrap each child's socket in the transport's fault
// injector, so datagrams are dropped, duplicated and reordered while
// the results must stay byte-identical — retransmits show up in the
// -metrics snapshot each child prints to stderr.
//
// Bootstrap protocol (text datagrams on the same sockets the transport
// later owns; the transport drops packets whose first byte it does not
// recognize, so a straggling HELLO cannot corrupt a run): each child
// binds a socket and sends "HELLO <ranks>" to the coordinator until it
// receives "PEERS <rank>=<addr> ..." naming every rank's socket, then
// hands the socket to the transport and launches the world.
package main

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/transport"
	"repro/internal/tune"
)

// bootstrapDeadline bounds the HELLO/PEERS exchange; a child that
// cannot reach the coordinator in this window exits instead of hanging.
const bootstrapDeadline = 30 * time.Second

// soakCase is one cell of the broadcast matrix.
type soakCase struct {
	algo string
	seg  int
	size int
}

// matrix builds the soak's broadcast matrix: the paper's native and
// optimized rings plus the segmented variant, each at an eager-sized
// and a rendezvous-sized message (engine default threshold is 64 KiB).
func matrix() []soakCase {
	var cases []soakCase
	for _, a := range []struct {
		algo string
		seg  int
	}{
		{tune.RingNative, 0},
		{tune.RingOpt, 0},
		{tune.RingOptSeg, 8192},
	} {
		for _, size := range []int{4096, 128 << 10} {
			cases = append(cases, soakCase{algo: a.algo, seg: a.seg, size: size})
		}
	}
	return cases
}

// soakRoot is the broadcast root of every case — a non-zero rank so the
// root's traffic crosses a process boundary in every multi-process
// split.
const soakRoot = 1

// fill writes the deterministic payload pattern the root broadcasts.
func fill(buf []byte) {
	for i := range buf {
		buf[i] = byte(i*131 + 7)
	}
}

// runMatrix executes the broadcast matrix inside one world run and
// records the sha256 of each hosted rank's final buffer per case.
// hashes[rank] is written only by that rank's goroutine.
func runMatrix(w *engine.World, np int, hashes [][]string) error {
	cases := matrix()
	return w.Run(func(c mpi.Comm) error {
		for _, sc := range cases {
			buf := make([]byte, sc.size)
			if c.Rank() == soakRoot {
				fill(buf)
			}
			d := tune.Decision{Algorithm: sc.algo, SegSize: sc.seg}
			if err := collective.RunDecision(c, buf, soakRoot, d); err != nil {
				return fmt.Errorf("case %s/%d on rank %d: %w", sc.algo, sc.size, c.Rank(), err)
			}
			sum := sha256.Sum256(buf)
			hashes[c.Rank()] = append(hashes[c.Rank()], fmt.Sprintf("%x", sum))
			if err := collective.Barrier(c); err != nil {
				return err
			}
		}
		return nil
	})
}

func main() {
	var (
		childFlag   = flag.Bool("child", false, "internal: run as a rank-hosting child process")
		coordFlag   = flag.String("coord", "", "internal: coordinator bootstrap address (child mode)")
		ranksFlag   = flag.String("ranks", "", "internal: comma-separated hosted ranks (child mode)")
		npFlag      = flag.Int("np", 8, "total ranks in the world")
		procsFlag   = flag.Int("procs", 4, "processes to split the ranks across")
		dropFlag    = flag.Float64("drop", 0, "per-datagram drop probability injected at each child's socket")
		dupFlag     = flag.Float64("dup", 0, "per-datagram duplication probability")
		reorderFlag = flag.Float64("reorder", 0, "per-datagram reorder probability")
		seedFlag    = flag.Int64("seed", 0, "fault-injector seed base (child i uses seed+i)")
		metricsFlag = flag.Bool("metrics", false, "each child prints its engine metrics snapshot to stderr")
	)
	flag.Parse()

	var err error
	if *childFlag {
		err = runChild(*coordFlag, *ranksFlag, *npFlag, childFaults(*dropFlag, *dupFlag, *reorderFlag, *seedFlag), *metricsFlag)
	} else {
		err = runCoordinator(*npFlag, *procsFlag, *dropFlag, *dupFlag, *reorderFlag, *seedFlag, *metricsFlag)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcastsoak: %v\n", err)
		os.Exit(1)
	}
}

// childFaults assembles the child's fault configuration; nil means the
// socket is used bare.
func childFaults(drop, dup, reorder float64, seed int64) *transport.FaultConfig {
	if drop == 0 && dup == 0 && reorder == 0 {
		return nil
	}
	return &transport.FaultConfig{Drop: drop, Dup: dup, Reorder: reorder, Seed: seed}
}

// runCoordinator spawns the children, brokers the peer table, collects
// every RESULT line, and verdicts the soak against an in-process
// reference run.
func runCoordinator(np, procs int, drop, dup, reorder float64, seed int64, metricsOn bool) error {
	if np < 1 || procs < 1 || procs > np {
		return fmt.Errorf("need 1 <= procs (%d) <= np (%d)", procs, np)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	// Bootstrap socket: children HELLO here and learn the peer table.
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer conn.Close()

	// Contiguous rank blocks, remainder spread over the first children.
	blocks := make([][]int, procs)
	base, rem := np/procs, np%procs
	next := 0
	for i := range blocks {
		n := base
		if i < rem {
			n++
		}
		for j := 0; j < n; j++ {
			blocks[i] = append(blocks[i], next)
			next++
		}
	}

	fmt.Printf("# bcastsoak: np=%d across %d processes, root=%d, faults drop=%.2f dup=%.2f reorder=%.2f\n",
		np, procs, soakRoot, drop, dup, reorder)

	results := make(chan string, 256)
	waitErrs := make(chan error, procs)
	var wg sync.WaitGroup
	for i, block := range blocks {
		ranks := make([]string, len(block))
		for j, r := range block {
			ranks[j] = strconv.Itoa(r)
		}
		args := []string{
			"-child",
			"-coord", conn.LocalAddr().String(),
			"-ranks", strings.Join(ranks, ","),
			"-np", strconv.Itoa(np),
			"-drop", fmt.Sprint(drop),
			"-dup", fmt.Sprint(dup),
			"-reorder", fmt.Sprint(reorder),
			"-seed", strconv.FormatInt(seed+int64(i), 10),
		}
		if metricsOn {
			args = append(args, "-metrics")
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning child %d: %w", i, err)
		}
		wg.Add(1)
		go func(i int, cmd *exec.Cmd) {
			defer wg.Done()
			// Drain stdout to EOF before Wait: Wait closes the pipe and
			// would discard still-buffered RESULT lines.
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				results <- sc.Text()
			}
			if err := cmd.Wait(); err != nil {
				waitErrs <- fmt.Errorf("child %d: %w", i, err)
			}
		}(i, cmd)
	}

	bootErr := brokerPeers(conn, np)
	// The broker returning (success or not) ends the bootstrap; children
	// past bootstrap no longer need the coordinator socket.
	go func() {
		wg.Wait()
		close(results)
		close(waitErrs)
	}()

	// Collect RESULT lines while children run.
	got := map[string]map[int]string{} // "algo/size" -> rank -> hash
	for line := range results {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "RESULT" {
			fmt.Println(line) // pass through anything else a child prints
			continue
		}
		rank, err := strconv.Atoi(fields[2])
		if err != nil || rank < 0 || rank >= np {
			return fmt.Errorf("malformed result line %q", line)
		}
		if got[fields[1]] == nil {
			got[fields[1]] = map[int]string{}
		}
		if prev, ok := got[fields[1]][rank]; ok && prev != fields[3] {
			return fmt.Errorf("rank %d reported twice for %s with different hashes", rank, fields[1])
		}
		got[fields[1]][rank] = fields[3]
	}
	for err := range waitErrs {
		return err
	}
	if bootErr != nil {
		return bootErr
	}

	want, err := referenceHashes(np)
	if err != nil {
		return fmt.Errorf("in-process reference run: %w", err)
	}
	var mismatches []string
	for key, ranks := range want {
		for r, h := range ranks {
			gh, ok := got[key][r]
			switch {
			case !ok:
				mismatches = append(mismatches, fmt.Sprintf("%s rank %d: no result", key, r))
			case gh != h:
				mismatches = append(mismatches, fmt.Sprintf("%s rank %d: udp %s != chan %s", key, r, gh[:12], h[:12]))
			}
		}
	}
	if len(mismatches) > 0 {
		sort.Strings(mismatches)
		for _, m := range mismatches {
			fmt.Fprintln(os.Stderr, "bcastsoak: MISMATCH", m)
		}
		return fmt.Errorf("SOAK FAIL: %d mismatches", len(mismatches))
	}
	fmt.Printf("SOAK PASS: %d cases x np=%d across %d processes byte-identical with the in-process engine\n",
		len(want), np, procs)
	return nil
}

// brokerPeers runs the coordinator side of the bootstrap: it collects
// HELLOs until every rank is addressed, then answers each HELLO with
// the full peer table (children keep HELLOing until answered, so a
// dropped PEERS heals itself).
func brokerPeers(conn net.PacketConn, np int) error {
	peers := map[int]string{} // rank -> socket address
	helloed := map[string]bool{}
	deadline := time.Now().Add(bootstrapDeadline)
	buf := make([]byte, 2048)
	for {
		conn.SetReadDeadline(deadline)
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			return fmt.Errorf("bootstrap: waiting for HELLOs (%d/%d ranks addressed): %w", len(peers), np, err)
		}
		msg := strings.TrimSpace(string(buf[:n]))
		ranks, ok := strings.CutPrefix(msg, "HELLO ")
		if !ok {
			continue
		}
		for _, tok := range strings.Split(ranks, ",") {
			r, err := strconv.Atoi(tok)
			if err != nil || r < 0 || r >= np {
				return fmt.Errorf("bootstrap: bad HELLO %q from %s", msg, from)
			}
			peers[r] = from.String()
		}
		helloed[from.String()] = false
		if len(peers) < np {
			continue
		}
		// Everyone is addressed: answer this HELLO (and every later
		// duplicate) with the table, and finish once every child got one.
		var sb strings.Builder
		sb.WriteString("PEERS")
		for r := 0; r < np; r++ {
			fmt.Fprintf(&sb, " %d=%s", r, peers[r])
		}
		if _, err := conn.WriteTo([]byte(sb.String()), from); err != nil {
			return fmt.Errorf("bootstrap: sending PEERS to %s: %w", from, err)
		}
		helloed[from.String()] = true
		done := true
		for _, answered := range helloed {
			done = done && answered
		}
		if done {
			return nil
		}
	}
}

// referenceHashes runs the identical matrix on the in-process chan
// transport and returns the per-case per-rank hashes the soak must
// reproduce.
func referenceHashes(np int) (map[string]map[int]string, error) {
	w, err := engine.NewWorld(engine.Options{NP: np})
	if err != nil {
		return nil, err
	}
	hashes := make([][]string, np)
	if err := runMatrix(w, np, hashes); err != nil {
		return nil, err
	}
	want := map[string]map[int]string{}
	for i, sc := range matrix() {
		key := fmt.Sprintf("%s/%d", sc.algo, sc.size)
		want[key] = map[int]string{}
		for r := 0; r < np; r++ {
			want[key][r] = hashes[r][i]
		}
	}
	return want, nil
}

// runChild hosts one rank block: bootstrap the peer table, boot the
// world over the shared-socket UDP transport, run the matrix, and
// report one RESULT line per hosted rank and case on stdout.
func runChild(coord, ranksSpec string, np int, faults *transport.FaultConfig, metricsOn bool) error {
	if coord == "" || ranksSpec == "" {
		return fmt.Errorf("-child needs -coord and -ranks")
	}
	var hosted []int
	for _, tok := range strings.Split(ranksSpec, ",") {
		r, err := strconv.Atoi(tok)
		if err != nil {
			return fmt.Errorf("bad -ranks %q", ranksSpec)
		}
		hosted = append(hosted, r)
	}
	coordAddr, err := net.ResolveUDPAddr("udp", coord)
	if err != nil {
		return err
	}
	var conn net.PacketConn
	conn, err = net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if faults != nil {
		// The injector perturbs writes only, HELLO included — the
		// bootstrap retry loop absorbs a dropped HELLO exactly as the
		// transport absorbs a dropped datagram.
		conn = transport.NewFaulty(conn, *faults)
	}
	peers, err := bootstrap(conn, coordAddr, hosted, np)
	if err != nil {
		conn.Close()
		return err
	}

	tr, err := transport.NewUDP(transport.UDPConfig{
		NP:     np,
		Hosted: hosted,
		Peers:  peers,
		Conn:   conn,
	})
	if err != nil {
		conn.Close()
		return err
	}
	defer tr.Close()
	mx := metrics.New(np, 0)
	w, err := engine.NewWorld(engine.Options{
		NP:        np,
		Timeout:   time.Minute,
		Metrics:   mx,
		Transport: tr,
	})
	if err != nil {
		return err
	}
	hashes := make([][]string, np)
	if err := runMatrix(w, np, hashes); err != nil {
		return err
	}
	for i, sc := range matrix() {
		for _, r := range hosted {
			fmt.Printf("RESULT %s/%d %d %s\n", sc.algo, sc.size, r, hashes[r][i])
		}
	}
	if metricsOn {
		s := engine.CollectMetrics(mx)
		s.Transport = tr.Name()
		fmt.Fprintf(os.Stderr, "# child ranks %s\n%s\n", ranksSpec, s.String())
	}
	return nil
}

// bootstrap sends HELLO to the coordinator until the PEERS table
// arrives, then strips our own ranks from it (the transport defaults
// hosted ranks to the local socket). Data datagrams from fast peers
// that land during the wait are dropped here — the sender's retransmit
// path redelivers them once the transport owns the socket.
func bootstrap(conn net.PacketConn, coord net.Addr, hosted []int, np int) (map[int]string, error) {
	ranks := make([]string, len(hosted))
	for i, r := range hosted {
		ranks[i] = strconv.Itoa(r)
	}
	hello := []byte("HELLO " + strings.Join(ranks, ","))
	deadline := time.Now().Add(bootstrapDeadline)
	buf := make([]byte, 2048)
	for time.Now().Before(deadline) {
		if _, err := conn.WriteTo(hello, coord); err != nil {
			return nil, fmt.Errorf("bootstrap: HELLO: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			continue // timeout or transient: HELLO again
		}
		msg := strings.TrimSpace(string(buf[:n]))
		table, ok := strings.CutPrefix(msg, "PEERS ")
		if !ok {
			continue // a peer's early data datagram; its retransmit redelivers
		}
		peers := map[int]string{}
		for _, ent := range strings.Fields(table) {
			rs, addr, ok := strings.Cut(ent, "=")
			if !ok {
				return nil, fmt.Errorf("bootstrap: bad PEERS entry %q", ent)
			}
			r, err := strconv.Atoi(rs)
			if err != nil || r < 0 || r >= np {
				return nil, fmt.Errorf("bootstrap: bad PEERS rank %q", ent)
			}
			peers[r] = addr
		}
		if len(peers) != np {
			return nil, fmt.Errorf("bootstrap: PEERS names %d of %d ranks", len(peers), np)
		}
		conn.SetReadDeadline(time.Time{})
		return peers, nil
	}
	return nil, fmt.Errorf("bootstrap: no PEERS from %s within %v", coord, bootstrapDeadline)
}
