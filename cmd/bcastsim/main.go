// Command bcastsim regenerates the paper's evaluation figures on the
// modelled cluster (internal/netsim): bandwidth curves for Figures
// 6(a)-(c) and 8, the throughput-speedup series of Figure 7, and the
// Section IV transfer-count table.
//
// Usage:
//
//	bcastsim -fig all                 # every figure, Hornet model
//	bcastsim -fig 6b                  # one figure
//	bcastsim -fig 7 -model laki       # the NEC calibration
//	bcastsim -fig 6a -nocontention    # ablation: no NIC/memory queueing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func main() {
	var (
		figFlag      = flag.String("fig", "all", "figure to regenerate: 6a|6b|6c|7|8|counts|all")
		modelFlag    = flag.String("model", "hornet", "cluster model: hornet|laki")
		coresFlag    = flag.Int("cores", 0, "cores per node (default: model preset)")
		warmFlag     = flag.Int("warm", 2, "warm-up iterations for steady-state timing")
		totalFlag    = flag.Int("total", 6, "total iterations for steady-state timing")
		noContention = flag.Bool("nocontention", false, "ablation: disable NIC/memory contention")
	)
	flag.Parse()

	var model *netsim.Model
	cores := *coresFlag
	switch *modelFlag {
	case "hornet":
		model = netsim.Hornet()
		if cores == 0 {
			cores = topology.HornetCoresPerNode
		}
	case "laki":
		model = netsim.Laki()
		if cores == 0 {
			cores = topology.LakiCoresPerNode
		}
	default:
		fmt.Fprintf(os.Stderr, "bcastsim: unknown model %q\n", *modelFlag)
		os.Exit(2)
	}
	model.NoContention = *noContention

	cfg := bench.SimConfig{Model: model, CoresPerNode: cores, Warm: *warmFlag, Total: *totalFlag}

	run := func(id string) error {
		switch id {
		case "6a", "6b", "6c", "8":
			np := map[string]int{"6a": 16, "6b": 64, "6c": 256, "8": 129}[id]
			var sizes []int
			if id == "8" {
				sizes = bench.Fig8Sizes()
			}
			fig, err := bench.Fig6(cfg, np, sizes)
			if err != nil {
				return err
			}
			if id == "8" {
				fig.ID, fig.Title = "fig8", "Bandwidth comparison for medium and long messages, np=129"
			}
			fmt.Print(bench.FormatFigure(fig))
			maxGain, peakGain, err := bench.Improvement(fig)
			if err != nil {
				return err
			}
			fmt.Printf("# max gain %.1f%%, peak-bandwidth gain %.1f%%\n\n", maxGain, peakGain)
		case "7":
			fig, err := bench.Fig7(cfg, nil, nil)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure(fig))
			fmt.Println()
		case "counts":
			fmt.Println("# Section IV transfer counts (ring allgather phase, n = 16 KiB)")
			// A fixed buffer size keeps the byte columns meaningful for
			// every P (all chunks non-empty up to P=256).
			rows := bench.TransferCounts([]int{2, 4, 8, 10, 16, 32, 64, 129, 256}, 64*256)
			fmt.Print(bench.FormatCounts(rows))
			fmt.Println()
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
		return nil
	}

	ids := []string{"counts", "6a", "6b", "6c", "7", "8"}
	if *figFlag != "all" {
		ids = strings.Split(*figFlag, ",")
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: %v\n", err)
			os.Exit(1)
		}
	}
}
