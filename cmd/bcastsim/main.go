// Command bcastsim regenerates the paper's evaluation figures on the
// modelled cluster (internal/netsim): bandwidth curves for Figures
// 6(a)-(c) and 8, the throughput-speedup series of Figure 7, and the
// Section IV transfer-count table.
//
// Usage:
//
//	bcastsim -fig all                 # every figure, Hornet model
//	bcastsim -fig 6b                  # one figure
//	bcastsim -fig 7 -model laki       # the NEC calibration
//	bcastsim -fig 6a -nocontention    # ablation: no NIC/memory queueing
//
// Beyond the figures, the tool exposes the algorithm registry and the
// tuning subsystem:
//
//	bcastsim -algo scatter-ring-allgather-opt,chain -np 64   # bandwidth curves by registry name
//	bcastsim -autotune -np 16,64,129 -o table.json           # derive a tuning table on the model
//	bcastsim -tune-table table.json -np 16,64,129            # tuned-vs-native comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/tune"
)

func main() {
	var (
		figFlag      = flag.String("fig", "all", "figure to regenerate: 6a|6b|6c|7|8|counts|all")
		modelFlag    = flag.String("model", "hornet", "cluster model: hornet|laki")
		coresFlag    = flag.Int("cores", 0, "cores per node (default: model preset)")
		warmFlag     = flag.Int("warm", 2, "warm-up iterations for steady-state timing")
		totalFlag    = flag.Int("total", 6, "total iterations for steady-state timing")
		noContention = flag.Bool("nocontention", false, "ablation: disable NIC/memory contention")
		algoFlag     = flag.String("algo", "", "comma-separated registry algorithms: simulate bandwidth curves instead of figures")
		npFlag       = flag.String("np", "", "comma-separated process counts for -algo/-autotune/-tune-table (default 16,64,129)")
		minFlag      = flag.Int("min", 16<<10, "smallest message size for -algo/-autotune/-tune-table sweeps")
		maxFlag      = flag.Int("max", 4<<20, "largest message size for -algo/-autotune/-tune-table sweeps")
		segFlag      = flag.Int("seg", 0, "segment size for segmented algorithms (0 = default)")
		autotuneFlag = flag.Bool("autotune", false, "auto-tune over the registry and emit a JSON tuning table")
		candFlag     = flag.String("candidates", "all", "auto-tune candidate set: all (whole registry) | mpich (the dispatcher's own family)")
		tableFlag    = flag.String("tune-table", "", "JSON tuning table: report tuned-vs-native dispatch on the model")
		outFlag      = flag.String("o", "", "write -autotune output to this file instead of stdout")
	)
	flag.Parse()

	var model *netsim.Model
	cores := *coresFlag
	switch *modelFlag {
	case "hornet":
		model = netsim.Hornet()
		if cores == 0 {
			cores = topology.HornetCoresPerNode
		}
	case "laki":
		model = netsim.Laki()
		if cores == 0 {
			cores = topology.LakiCoresPerNode
		}
	default:
		fmt.Fprintf(os.Stderr, "bcastsim: unknown model %q\n", *modelFlag)
		os.Exit(2)
	}
	model.NoContention = *noContention

	cfg := bench.SimConfig{Model: model, CoresPerNode: cores, Warm: *warmFlag, Total: *totalFlag}

	if *algoFlag != "" || *autotuneFlag || *tableFlag != "" {
		procs, err := parseInts(*npFlag, []int{16, 64, 129})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: -np: %v\n", err)
			os.Exit(2)
		}
		if *minFlag <= 0 || *maxFlag < *minFlag {
			fmt.Fprintln(os.Stderr, "bcastsim: bad -min/-max")
			os.Exit(2)
		}
		var sizes []int
		for n := *minFlag; n <= *maxFlag; n *= 2 {
			sizes = append(sizes, n)
		}
		if err := runTuning(cfg, procs, sizes, *algoFlag, *segFlag, *autotuneFlag, *candFlag, *tableFlag, *outFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(id string) error {
		switch id {
		case "6a", "6b", "6c", "8":
			np := map[string]int{"6a": 16, "6b": 64, "6c": 256, "8": 129}[id]
			var sizes []int
			if id == "8" {
				sizes = bench.Fig8Sizes()
			}
			fig, err := bench.Fig6(cfg, np, sizes)
			if err != nil {
				return err
			}
			if id == "8" {
				fig.ID, fig.Title = "fig8", "Bandwidth comparison for medium and long messages, np=129"
			}
			fmt.Print(bench.FormatFigure(fig))
			maxGain, peakGain, err := bench.Improvement(fig)
			if err != nil {
				return err
			}
			fmt.Printf("# max gain %.1f%%, peak-bandwidth gain %.1f%%\n\n", maxGain, peakGain)
		case "7":
			fig, err := bench.Fig7(cfg, nil, nil)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure(fig))
			fmt.Println()
		case "counts":
			fmt.Println("# Section IV transfer counts (ring allgather phase, n = 16 KiB)")
			// A fixed buffer size keeps the byte columns meaningful for
			// every P (all chunks non-empty up to P=256).
			rows := bench.TransferCounts([]int{2, 4, 8, 10, 16, 32, 64, 129, 256}, 64*256)
			fmt.Print(bench.FormatCounts(rows))
			fmt.Println()
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
		return nil
	}

	ids := []string{"counts", "6a", "6b", "6c", "7", "8"}
	if *figFlag != "all" {
		ids = strings.Split(*figFlag, ",")
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseInts parses a comma-separated int list, returning def when empty.
func parseInts(s string, def []int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return def, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// runTuning handles the registry-facing modes: -algo bandwidth curves,
// -autotune table derivation, and -tune-table comparison.
func runTuning(cfg bench.SimConfig, procs, sizes []int, algos string, seg int, autotune bool, candSet, tablePath, outPath string) error {
	switch {
	case autotune:
		var cands []tune.Candidate
		switch candSet {
		case "all":
			// nil = the whole registry
		case "mpich":
			cands = bench.FamilyCandidates()
		default:
			return fmt.Errorf("unknown -candidates %q (all|mpich)", candSet)
		}
		table, winners, err := bench.AutoTuneSim(cfg, cands, procs, sizes)
		if err != nil {
			return err
		}
		fmt.Println("# auto-tuner grid winners:")
		fmt.Print(bench.FormatWinners(winners))
		if outPath != "" {
			if err := tune.SaveTable(table, outPath); err != nil {
				return err
			}
			fmt.Printf("# tuning table written to %s (%d rules)\n", outPath, len(table.Rules))
			return nil
		}
		data, err := table.JSON()
		if err != nil {
			return err
		}
		fmt.Println("# tuning table:")
		fmt.Println(string(data))
		return nil

	case tablePath != "":
		table, err := tune.LoadTable(tablePath)
		if err != nil {
			return err
		}
		rows, err := bench.CompareTuned(cfg, table, procs, sizes)
		if err != nil {
			return err
		}
		fmt.Printf("# tuned-vs-native dispatch on model %q, table %q\n", cfg.Model.Name, table.Name)
		fmt.Print(bench.FormatTunedRows(rows))
		return nil

	default:
		names := strings.Split(algos, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		for _, p := range procs {
			fmt.Printf("# simulated bandwidth (MB/s), model %q, np=%d\n", cfg.Model.Name, p)
			fmt.Printf("%-12s", "bytes")
			for _, name := range names {
				fmt.Printf(" %28s", name)
			}
			fmt.Println()
			for _, n := range sizes {
				fmt.Printf("%-12d", n)
				for _, name := range names {
					r, err := bench.MeasureSimDecision(cfg, tune.Decision{Algorithm: name, SegSize: seg}, p, n)
					if err != nil {
						return err
					}
					fmt.Printf(" %28.2f", r.MBps)
				}
				fmt.Println()
			}
			fmt.Println()
		}
		return nil
	}
}
