// Command bcastsim regenerates the paper's evaluation figures on the
// modelled cluster (internal/netsim): bandwidth curves for Figures
// 6(a)-(c) and 8, the throughput-speedup series of Figure 7, and the
// Section IV transfer-count table.
//
// Usage:
//
//	bcastsim -fig all                 # every figure, Hornet model
//	bcastsim -fig 6b                  # one figure
//	bcastsim -fig 7 -model laki       # the NEC calibration
//	bcastsim -fig 6a -nocontention    # ablation: no NIC/memory queueing
//
// Beyond the figures, the tool exposes the algorithm registry and the
// tuning subsystem:
//
//	bcastsim -algo scatter-ring-allgather-opt,chain -np 64   # bandwidth curves by registry name
//	bcastsim -autotune -np 16,64,129 -o table.json           # derive a tuning table on the model
//	bcastsim -autotune -candidates mpich -segs 8192,65536 -placements blocked:24,round-robin:24
//	                                                         # sweep segment sizes and placements;
//	                                                         # emits per-topology rule groups
//	bcastsim -tune-table table.json -np 16,64,129            # tuned-vs-native comparison
//	bcastsim -tune-table table.json -placements blocked:24,round-robin:24   # per-placement breakdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/collective"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/tune"
)

func main() {
	var (
		figFlag      = flag.String("fig", "all", "figure to regenerate: 6a|6b|6c|7|8|counts|all")
		modelFlag    = flag.String("model", "hornet", "cluster model: hornet|laki")
		coresFlag    = flag.Int("cores", 0, "cores per node (default: model preset)")
		warmFlag     = flag.Int("warm", 2, "warm-up iterations for steady-state timing")
		totalFlag    = flag.Int("total", 6, "total iterations for steady-state timing")
		noContention = flag.Bool("nocontention", false, "ablation: disable NIC/memory contention")
		algoFlag     = flag.String("algo", "", "comma-separated registry algorithms: simulate bandwidth curves instead of figures")
		npFlag       = flag.String("np", "", "comma-separated process counts for -algo/-autotune/-tune-table (default 16,64,129)")
		minFlag      = flag.Int("min", 16<<10, "smallest message size for -algo/-autotune/-tune-table sweeps")
		maxFlag      = flag.Int("max", 4<<20, "largest message size for -algo/-autotune/-tune-table sweeps")
		segFlag      = flag.Int("seg", 0, "segment size for segmented algorithms (0 = default)")
		segsFlag     = flag.String("segs", "", "comma-separated segment sizes for -autotune: sweep every segmented candidate over these instead of its default")
		placeFlag    = flag.String("placements", "", "comma-separated placements for -autotune/-tune-table: single|blocked:N|round-robin:N; emits per-topology rule groups")
		autotuneFlag = flag.Bool("autotune", false, "auto-tune over the registry and emit a JSON tuning table")
		candFlag     = flag.String("candidates", "all", "auto-tune candidate set: all (whole registry) | mpich (the dispatcher's own family) | list (print both sets with capability flags and exit)")
		tableFlag    = flag.String("tune-table", "", "JSON tuning table: report tuned-vs-native dispatch on the model")
		outFlag      = flag.String("o", "", "write -autotune output to this file instead of stdout")
		execFlag     = flag.String("exec", "", "engine-only (bcastbench): rank-execution substrate")
		workFlag     = flag.Int("workers", 0, "engine-only (bcastbench): pooled executor worker count")
	)
	flag.Parse()

	// Cross-tool strictness, symmetric with bcastbench's cross-mode
	// checks: the simulator replays schedules in virtual time and has no
	// rank-execution substrate, so accepting the engine's -exec/-workers
	// here would claim a measurement that never happened.
	if *execFlag != "" || *workFlag != 0 {
		fmt.Fprintln(os.Stderr, "bcastsim: -exec/-workers select the real engine's execution substrate; they are bcastbench flags")
		os.Exit(2)
	}

	if *candFlag == "list" {
		printCandidates()
		return
	}

	var model *netsim.Model
	cores := *coresFlag
	switch *modelFlag {
	case "hornet":
		model = netsim.Hornet()
		if cores == 0 {
			cores = topology.HornetCoresPerNode
		}
	case "laki":
		model = netsim.Laki()
		if cores == 0 {
			cores = topology.LakiCoresPerNode
		}
	default:
		fmt.Fprintf(os.Stderr, "bcastsim: unknown model %q\n", *modelFlag)
		os.Exit(2)
	}
	model.NoContention = *noContention

	cfg := bench.SimConfig{Model: model, CoresPerNode: cores, Warm: *warmFlag, Total: *totalFlag}

	if *algoFlag != "" || *autotuneFlag || *tableFlag != "" {
		procs, err := parseInts(*npFlag, []int{16, 64, 129})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: -np: %v\n", err)
			os.Exit(2)
		}
		if *minFlag <= 0 || *maxFlag < *minFlag {
			fmt.Fprintln(os.Stderr, "bcastsim: bad -min/-max")
			os.Exit(2)
		}
		var sizes []int
		for n := *minFlag; n <= *maxFlag; n *= 2 {
			sizes = append(sizes, n)
		}
		segs, err := parseInts(*segsFlag, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: -segs: %v\n", err)
			os.Exit(2)
		}
		placements, err := parsePlacements(*placeFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: -placements: %v\n", err)
			os.Exit(2)
		}
		// The sweep flags only act in specific modes; reject them elsewhere
		// rather than printing plausible but un-swept output.
		if len(segs) > 0 && !*autotuneFlag {
			fmt.Fprintln(os.Stderr, "bcastsim: -segs requires -autotune (use -seg for -algo curves)")
			os.Exit(2)
		}
		if len(placements) > 0 && !*autotuneFlag && *tableFlag == "" {
			fmt.Fprintln(os.Stderr, "bcastsim: -placements requires -autotune or -tune-table")
			os.Exit(2)
		}
		opts := tuningOpts{
			algos: *algoFlag, seg: *segFlag,
			autotune: *autotuneFlag, candSet: *candFlag,
			tablePath: *tableFlag, outPath: *outFlag,
			segs: segs, placements: placements,
		}
		if err := runTuning(cfg, procs, sizes, opts); err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(id string) error {
		switch id {
		case "6a", "6b", "6c", "8":
			np := map[string]int{"6a": 16, "6b": 64, "6c": 256, "8": 129}[id]
			var sizes []int
			if id == "8" {
				sizes = bench.Fig8Sizes()
			}
			fig, err := bench.Fig6(cfg, np, sizes)
			if err != nil {
				return err
			}
			if id == "8" {
				fig.ID, fig.Title = "fig8", "Bandwidth comparison for medium and long messages, np=129"
			}
			fmt.Print(bench.FormatFigure(fig))
			maxGain, peakGain, err := bench.Improvement(fig)
			if err != nil {
				return err
			}
			fmt.Printf("# max gain %.1f%%, peak-bandwidth gain %.1f%%\n\n", maxGain, peakGain)
		case "7":
			fig, err := bench.Fig7(cfg, nil, nil)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatFigure(fig))
			fmt.Println()
		case "counts":
			fmt.Println("# Section IV transfer counts (ring allgather phase, n = 16 KiB)")
			// A fixed buffer size keeps the byte columns meaningful for
			// every P (all chunks non-empty up to P=256).
			rows := bench.TransferCounts([]int{2, 4, 8, 10, 16, 32, 64, 129, 256}, 64*256)
			fmt.Print(bench.FormatCounts(rows))
			fmt.Println()
		default:
			return fmt.Errorf("unknown figure %q", id)
		}
		return nil
	}

	ids := []string{"counts", "6a", "6b", "6c", "7", "8"}
	if *figFlag != "all" {
		ids = strings.Split(*figFlag, ",")
	}
	for _, id := range ids {
		if err := run(strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "bcastsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// printCandidates lists the auto-tune candidate sets with each
// algorithm's capability flags, in the same format bcastbench -list uses.
func printCandidates() {
	inFamily := map[string]bool{}
	for _, c := range bench.FamilyCandidates() {
		inFamily[c.Name] = true
	}
	fmt.Println("# auto-tune candidates (schedule-static registry algorithms):")
	for _, r := range collective.Algorithms() {
		if r.Program == nil {
			continue
		}
		set := "all"
		if inFamily[r.Name] {
			set = "all,mpich"
		}
		fmt.Printf("%-34s %-30s %-10s %s\n", r.Name, r.Caps.Label(), set, r.Summary)
	}
}

// parseInts parses a comma-separated int list, returning def when empty.
func parseInts(s string, def []int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return def, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// tuningOpts bundles the registry-facing CLI options.
type tuningOpts struct {
	algos      string
	seg        int
	autotune   bool
	candSet    string
	tablePath  string
	outPath    string
	segs       []int
	placements []tune.Placement
}

// parsePlacements parses a comma-separated placement list
// ("single,blocked:24,round-robin:24").
func parsePlacements(s string) ([]tune.Placement, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []tune.Placement
	for _, tok := range strings.Split(s, ",") {
		pl, err := tune.ParsePlacement(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, pl)
	}
	return out, nil
}

// runTuning handles the registry-facing modes: -algo bandwidth curves,
// -autotune table derivation (optionally sweeping segment sizes and
// placements), and -tune-table comparison.
func runTuning(cfg bench.SimConfig, procs, sizes []int, o tuningOpts) error {
	switch {
	case o.autotune:
		var cands []tune.Candidate
		switch o.candSet {
		case "all":
			// nil = the whole registry
		case "mpich":
			cands = bench.FamilyCandidates()
		default:
			return fmt.Errorf("unknown -candidates %q (all|mpich)", o.candSet)
		}
		var (
			table   *tune.Table
			winners []tune.Winner
			err     error
		)
		if len(o.segs) > 0 || len(o.placements) > 0 {
			sweep := tune.SweepConfig{Procs: procs, Sizes: sizes, SegSizes: o.segs, Placements: o.placements}
			table, winners, err = bench.AutoTuneSweepSim(cfg, cands, sweep)
		} else {
			table, winners, err = bench.AutoTuneSim(cfg, cands, procs, sizes)
		}
		if err != nil {
			return err
		}
		fmt.Println("# auto-tuner grid winners:")
		fmt.Print(bench.FormatWinners(winners))
		if o.outPath != "" {
			if err := tune.SaveTable(table, o.outPath); err != nil {
				return err
			}
			fmt.Printf("# tuning table written to %s (%d rules)\n", o.outPath, len(table.Rules))
			return nil
		}
		data, err := table.JSON()
		if err != nil {
			return err
		}
		fmt.Println("# tuning table:")
		fmt.Println(string(data))
		return nil

	case o.tablePath != "":
		table, err := tune.LoadTable(o.tablePath)
		if err != nil {
			return err
		}
		rows, err := bench.CompareTunedPlaced(cfg, table, procs, sizes, o.placements)
		if err != nil {
			return err
		}
		fmt.Printf("# tuned-vs-native dispatch on model %q, table %q\n", cfg.Model.Name, table.Name)
		fmt.Print(bench.FormatTunedRows(rows))
		return nil

	default:
		names := strings.Split(o.algos, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		for _, p := range procs {
			fmt.Printf("# simulated bandwidth (MB/s), model %q, np=%d\n", cfg.Model.Name, p)
			fmt.Printf("%-12s", "bytes")
			for _, name := range names {
				fmt.Printf(" %30s", name)
			}
			fmt.Println()
			for _, n := range sizes {
				fmt.Printf("%-12d", n)
				for _, name := range names {
					r, err := bench.MeasureSimDecision(cfg, tune.Decision{Algorithm: name, SegSize: o.seg}, p, n)
					if err != nil {
						return err
					}
					fmt.Printf(" %30.2f", r.MBps)
				}
				fmt.Println()
			}
			fmt.Println()
		}
		return nil
	}
}
