// Command schedviz renders the paper's schematic figures from the actual
// schedule generators: the binomial scatter tree (Figures 1-2) and the
// per-step send/receive events of the ring allgather (Figure 3 for the
// enclosed ring, Figures 4-5 for the tuned non-enclosed ring, where the
// send-only and receive-only degenerations are visible as missing
// events).
//
// Usage:
//
//	schedviz -p 8              # reproduce Figures 1, 3 and 4
//	schedviz -p 10 -algo tuned # reproduce Figures 2 and 5
//	schedviz -p 10 -algo native -root 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
)

func main() {
	var (
		pFlag    = flag.Int("p", 8, "number of processes")
		rootFlag = flag.Int("root", 0, "broadcast root")
		algoFlag = flag.String("algo", "both", "ring to draw: native|tuned|both")
	)
	flag.Parse()
	p, root := *pFlag, *rootFlag
	if p < 1 || root < 0 || root >= p {
		fmt.Fprintln(os.Stderr, "schedviz: bad -p/-root")
		os.Exit(2)
	}

	drawScatter(p, root)
	switch *algoFlag {
	case "native":
		drawRing(core.RingAllgatherNative(p, root, p), p, root)
	case "tuned":
		drawRing(core.RingAllgatherTuned(p, root, p), p, root)
	case "both":
		drawRing(core.RingAllgatherNative(p, root, p), p, root)
		drawRing(core.RingAllgatherTuned(p, root, p), p, root)
	default:
		fmt.Fprintln(os.Stderr, "schedviz: unknown -algo")
		os.Exit(2)
	}
}

// drawScatter prints the binomial scatter tree with each rank's chunk
// range (one unit byte per chunk, so offsets read as chunk indices).
func drawScatter(p, root int) {
	fmt.Printf("binomial scatter tree, P=%d, root=%d (chunks each rank holds afterwards):\n", p, root)
	for rel := 0; rel < p; rel++ {
		rank := core.AbsRank(rel, root, p)
		lo, hi := core.OwnedChunks(rel, p)
		depth := 0
		for x := rel; x != 0; x -= x & (-x) {
			depth++
		}
		indent := strings.Repeat("  ", depth)
		parent := ""
		if rel != 0 {
			parent = fmt.Sprintf("  <- from rank %d", core.AbsRank(rel-rel&(-rel), root, p))
		}
		fmt.Printf("  %srank %-3d chunks [%d..%d)%s\n", indent, rank, lo, hi, parent)
	}
	fmt.Println()
}

// drawRing prints one line per ring step with each rank's events, like
// the figures: "s5" = sends chunk 5 to the right, "r3" = receives chunk 3
// from the left, "." = no event (the tuned ring's saved transfers).
func drawRing(pr *sched.Program, p, root int) {
	fmt.Printf("%s, P=%d, root=%d (s<chunk> = send right, r<chunk> = recv left):\n", pr.Name, p, root)
	fmt.Printf("  %-6s", "step")
	for r := 0; r < p; r++ {
		fmt.Printf(" %8s", fmt.Sprintf("rank%d", r))
	}
	fmt.Println()
	// Index ops by (rank, step).
	byStep := make([]map[int]sched.Op, p)
	maxStep := 0
	for r := 0; r < p; r++ {
		byStep[r] = map[int]sched.Op{}
		for _, op := range pr.OpsOf(r) {
			byStep[r][op.Step] = op
			if op.Step > maxStep {
				maxStep = op.Step
			}
		}
	}
	totalMsgs := 0
	for step := 1; step <= maxStep; step++ {
		fmt.Printf("  %-6d", step)
		for r := 0; r < p; r++ {
			op, ok := byStep[r][step]
			cell := "."
			if ok {
				var parts []string
				if op.Kind == sched.OpSend || op.Kind == sched.OpSendrecv {
					parts = append(parts, fmt.Sprintf("s%d", op.SendOff))
					totalMsgs++
				}
				if op.Kind == sched.OpRecv || op.Kind == sched.OpSendrecv {
					parts = append(parts, fmt.Sprintf("r%d", op.RecvOff))
				}
				cell = strings.Join(parts, "/")
			}
			fmt.Printf(" %8s", cell)
		}
		fmt.Println()
	}
	fmt.Printf("  total ring messages: %d\n\n", totalMsgs)
}
