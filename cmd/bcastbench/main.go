// Command bcastbench is the user-level micro-benchmark of the paper's
// Section V, run on the real in-process engine: all ranks synchronize
// with a barrier, the broadcast repeats for a fixed iteration count, and
// the bandwidth (base-2 MB/s) is reported per message size.
//
// Usage:
//
//	bcastbench -np 16 -algo native -min 524288 -max 4194304
//	bcastbench -np 10 -algo opt -iters 100
//	bcastbench -np 12 -cores 4 -algo smp-opt      # multi-node placement
//
// Comparing -algo native against -algo opt reproduces the paper's
// MPI_Bcast_native / MPI_Bcast_opt comparison at laptop scale. -algo also
// accepts any algorithm registered in internal/collective (see -list) —
// including the segmented ring family (scatter-ring-allgather-seg,
// scatter-ring-allgather-opt-seg), whose segment size -seg selects — and
// -tune-table dispatches every broadcast through a JSON tuning table
// produced by the auto-tuner (bcastsim -autotune).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/collective"
	"repro/internal/tune"
)

func main() {
	var (
		npFlag    = flag.Int("np", 8, "number of ranks")
		algoFlag  = flag.String("algo", "opt", "broadcast: a legacy variant (native|opt|binomial|auto|auto-opt|smp|smp-opt) or a registry algorithm (see -list)")
		listFlag  = flag.Bool("list", false, "list registered algorithms and exit")
		tableFlag = flag.String("tune-table", "", "JSON tuning table; dispatch each broadcast through it (overrides -algo)")
		segFlag   = flag.Int("seg", 0, "segment size in bytes for segmented algorithms (0 = default)")
		minFlag   = flag.Int("min", 16<<10, "smallest message size in bytes")
		maxFlag   = flag.Int("max", 4<<20, "largest message size in bytes")
		itersFlag = flag.Int("iters", 100, "broadcast iterations per size (paper: 100)")
		coresFlag = flag.Int("cores", 0, "cores per node for blocked placement (0 = single node)")
		eagerFlag = flag.Int("eager", 0, "eager limit override in bytes (0 = default, -1 = rendezvous only)")
		rootFlag  = flag.Int("root", 0, "broadcast root")
	)
	flag.Parse()

	if *listFlag {
		fmt.Println("# registered broadcast algorithms:")
		for _, r := range collective.Algorithms() {
			fmt.Printf("%-28s %s\n", r.Name, r.Summary)
		}
		return
	}
	if *npFlag <= 0 || *minFlag < 0 || *maxFlag < *minFlag {
		fmt.Fprintln(os.Stderr, "bcastbench: bad np/min/max")
		os.Exit(2)
	}
	// Guard against accidental monster allocations: every rank holds one
	// buffer of -max bytes.
	if total := *npFlag * *maxFlag; total > 4<<30 {
		fmt.Fprintf(os.Stderr, "bcastbench: np*max = %d bytes exceeds 4 GiB; scale down\n", total)
		os.Exit(2)
	}

	cfg := bench.RealConfig{
		NP:           *npFlag,
		CoresPerNode: *coresFlag,
		EagerLimit:   *eagerFlag,
		Iterations:   *itersFlag,
		Root:         *rootFlag,
		SegSize:      *segFlag,
	}
	label := *algoFlag
	switch {
	case *tableFlag != "":
		table, err := tune.LoadTable(*tableFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcastbench:", err)
			os.Exit(2)
		}
		cfg.Tuner = tune.TableTuner{Table: table, Fallback: tune.MPICH3{}}
		label = fmt.Sprintf("tune-table %q", table.Name)
	default:
		if variant, err := bench.ParseVariant(*algoFlag); err == nil {
			cfg.Variant = variant
			label = variant.String()
		} else if _, ok := collective.Lookup(*algoFlag); ok {
			cfg.Algo = *algoFlag
		} else {
			fmt.Fprintf(os.Stderr, "bcastbench: unknown algorithm %q (registry: %s)\n",
				*algoFlag, strings.Join(collective.Names(), ", "))
			os.Exit(2)
		}
	}
	fmt.Printf("# user-level bcast benchmark: %s, np=%d, iters=%d\n", label, *npFlag, *itersFlag)
	fmt.Printf("%-12s %14s %14s\n", "bytes", "us/iter", "MB/s")
	for n := *minFlag; n <= *maxFlag; n *= 2 {
		res, err := bench.MeasureReal(cfg, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcastbench: size %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Printf("%-12d %14.2f %14.2f\n", n, res.Seconds*1e6, res.MBps)
		if n == 0 {
			break
		}
	}
}
