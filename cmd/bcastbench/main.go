// Command bcastbench is the user-level micro-benchmark of the paper's
// Section V, run on the real in-process engine: all ranks synchronize
// with a barrier, the broadcast repeats for a fixed iteration count, and
// the bandwidth (base-2 MB/s) is reported per message size.
//
// Usage:
//
//	bcastbench -np 16 -algo native -min 524288 -max 4194304
//	bcastbench -np 10 -algo opt -iters 100
//	bcastbench -np 12 -cores 4 -algo smp-opt      # multi-node placement
//
// Comparing -algo native against -algo opt reproduces the paper's
// MPI_Bcast_native / MPI_Bcast_opt comparison at laptop scale. -algo also
// accepts any algorithm registered in internal/collective (see -list,
// which prints each algorithm's capability flags) — including the
// segmented ring family and its overlap-aware -seg-nb variants, whose
// segment size -seg selects — and -tune-table dispatches every broadcast
// through a JSON tuning table produced by the auto-tuner.
//
// Beyond the fixed-algorithm benchmark, the tool drives the auto-tuner
// from real wall-clock measurements (internal/measure), reaching feature
// parity with bcastsim's netsim-backed tuning:
//
//	bcastbench -autotune -np 4,8 -placements blocked:4 -o table.json
//	bcastbench -autotune -segs 8192,65536 -reps 7 -warmup 2 -stat median
//	bcastbench -autotune -samples samples.json      # persist raw samples
//	bcastbench -crosscheck -np 4,8                  # netsim-vs-engine agreement report
//
// -autotune measures every applicable registry candidate per grid point
// on the engine (warmup + repetitions between barriers, robust statistic
// over the samples) and emits a tune.Table; -crosscheck derives one
// table from the netsim cost model and one from the engine over the same
// grid and reports the cells where the model and the wall clock disagree
// on the winner. -samples writes every raw repetition sample as JSON so
// runs are reproducible and diffable.
//
// -persistent switches the benchmark onto the serving fast path: per
// message size the tool resolves one persistent handle with BcastInit
// and drives -iters Start/Wait rounds on it inside a single live run,
// so the printed bandwidth excludes per-call selection and relaunch
// costs (compare against the same invocation without -persistent):
//
//	bcastbench -persistent -np 64 -algo scatter-ring-allgather-opt-seg -seg 8192 -iters 1000
//
// -exec selects the engine's rank-execution substrate in every mode:
// the default "goroutine" runs one OS-scheduled goroutine per rank,
// "pooled" multiplexes ranks onto a bounded cooperative worker pool
// (-workers, clamped to GOMAXPROCS) — the substrate that keeps -np in
// the hundreds measurable:
//
//	bcastbench -exec pooled -np 256 -autotune -placements blocked:32
//
// -transport selects the engine's point-to-point substrate: the default
// "chan" moves messages in-process, "udp" routes every message through a
// loopback UDP socket with the real datagram framing and retransmit
// machinery (internal/transport) — the traffic and results are
// byte-identical, only the wall clock differs. It applies to the
// benchmark, -persistent and -autotune modes; -crosscheck rejects it
// because the netsim reference side has no transport to match:
//
//	bcastbench -transport udp -np 8 -algo opt -metrics
//
// Every table and report records the substrate in its provenance.
//
// Observability (benchmark and -persistent modes): -metrics prints the
// engine's counter snapshot after the sweep — sends and receives split
// by eager/rendezvous protocol, staged bytes, buffer-pool activity per
// size class, executor parks and slot waits, queue high-water marks.
// -timeline writes the per-operation spans as a Chrome trace-event JSON
// file (open it in Perfetto or chrome://tracing; one timeline row per
// rank), -spans sizes the per-rank span ring it records into, and
// -spans-summary reads such a file back and prints per-operation
// latency percentiles without re-running anything:
//
//	bcastbench -np 64 -exec pooled -algo binomial -metrics -timeline trace.json
//	bcastbench -spans-summary trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/bcast"
	"repro/internal/bench"
	"repro/internal/collective"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/tune"
)

func main() {
	var (
		npFlag    = flag.String("np", "8", "comma-separated rank counts (benchmark: one section per count; -autotune/-crosscheck: the grid's process axis)")
		algoFlag  = flag.String("algo", "opt", "broadcast: a legacy variant (native|opt|binomial|auto|auto-opt|smp|smp-opt) or a registry algorithm (see -list)")
		listFlag  = flag.Bool("list", false, "list registered algorithms with their capability flags and exit")
		tableFlag = flag.String("tune-table", "", "JSON tuning table; dispatch each broadcast through it (overrides -algo)")
		segFlag   = flag.Int("seg", 0, "segment size in bytes for segmented algorithms (0 = default)")
		minFlag   = flag.Int("min", 16<<10, "smallest message size in bytes")
		maxFlag   = flag.Int("max", 4<<20, "largest message size in bytes")
		itersFlag = flag.Int("iters", 100, "broadcast iterations per size (paper: 100; benchmark mode only)")
		coresFlag = flag.Int("cores", 0, "cores per node for blocked placement (0 = single node; benchmark mode only — tuning modes use -placements)")
		eagerFlag = flag.Int("eager", 0, "eager limit override in bytes (0 = default, -1 = rendezvous only)")
		rootFlag  = flag.Int("root", 0, "broadcast root")
		persFlag  = flag.Bool("persistent", false, "benchmark the persistent fast path: one BcastInit per size, -iters Start/Wait rounds on a live cluster (benchmark mode only)")

		metricsFlag = flag.Bool("metrics", false, "print the engine metrics snapshot after the sweep (benchmark modes only)")
		tlFlag      = flag.String("timeline", "", "write operation spans as Chrome trace-event JSON to this file (benchmark modes only; needs a single -np)")
		spansFlag   = flag.Int("spans", 0, "per-rank span ring capacity (0 = 4096 when -timeline is set, else spans off)")
		summaryFlag = flag.String("spans-summary", "", "read a -timeline file and print per-operation latency percentiles, then exit")
		execFlag    = flag.String("exec", "goroutine", "rank-execution substrate: goroutine (one goroutine per rank) | pooled (bounded cooperative worker pool; use for -np in the hundreds)")
		workFlag    = flag.Int("workers", 0, "pooled executor worker count, clamped to GOMAXPROCS (0 = GOMAXPROCS; requires -exec pooled)")
		transFlag   = flag.String("transport", "", "point-to-point substrate: chan (in-process, default) | udp (every message over a loopback UDP socket with the real framing and retransmit path)")

		autotuneFlag = flag.Bool("autotune", false, "auto-tune over the registry on the real engine and emit a JSON tuning table")
		crossFlag    = flag.Bool("crosscheck", false, "derive tables from both netsim and the engine over the same grid and report per-cell agreement")
		candFlag     = flag.String("candidates", "all", "tuning candidate set: all (whole registry, SMP included; -crosscheck: its schedule-static subset) | mpich (the dispatcher's own family)")
		segsFlag     = flag.String("segs", "", "comma-separated segment sizes for -autotune/-crosscheck: sweep every segmented candidate over these instead of its default")
		placeFlag    = flag.String("placements", "", "comma-separated placements for -autotune/-crosscheck: single|blocked:N|round-robin:N; emits per-topology rule groups")
		repsFlag     = flag.Int("reps", measure.DefaultReps, "timed repetitions per measured grid point")
		warmupFlag   = flag.Int("warmup", measure.DefaultWarmup, "untimed warm-up iterations per measured grid point (0 = none)")
		statFlag     = flag.String("stat", string(measure.StatTrimmed), "statistic reported to the tuner: min|median|trimmed")
		modelFlag    = flag.String("model", "hornet", "netsim model for the -crosscheck reference side: hornet|laki")
		outFlag      = flag.String("o", "", "write the -autotune/-crosscheck engine-derived table to this file instead of stdout")
		samplesFlag  = flag.String("samples", "", "write every raw repetition sample of a tuning run to this JSON file")
	)
	flag.Parse()

	if *listFlag {
		fmt.Println("# registered broadcast algorithms:")
		for _, r := range collective.Algorithms() {
			fmt.Printf("%-34s %-30s %s\n", r.Name, r.Caps.Label(), r.Summary)
		}
		return
	}
	if *summaryFlag != "" {
		// Like -list, a pure offline mode: nothing runs.
		if err := printSpansSummary(*summaryFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bcastbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	nps, err := parseInts(*npFlag)
	if err != nil || len(nps) == 0 {
		fmt.Fprintf(os.Stderr, "bcastbench: bad -np %q\n", *npFlag)
		os.Exit(2)
	}
	// -exec/-workers apply to every engine boot, so unlike the
	// mode-specific knobs below they are valid in both benchmark and
	// tuning mode.
	execPol, err := engine.ParseExecPolicy(*execFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcastbench: %v\n", err)
		os.Exit(2)
	}
	if *workFlag < 0 {
		fmt.Fprintf(os.Stderr, "bcastbench: -workers must be non-negative, got %d (0 = GOMAXPROCS)\n", *workFlag)
		os.Exit(2)
	}
	if *workFlag != 0 && execPol != engine.Pooled {
		fmt.Fprintln(os.Stderr, "bcastbench: -workers requires -exec pooled (the goroutine substrate has no pool to size)")
		os.Exit(2)
	}
	switch *transFlag {
	case "", transport.ChanName, transport.UDPName, transport.UDPBaseName:
	default:
		fmt.Fprintf(os.Stderr, "bcastbench: unknown -transport %q (chan|udp|udp-base)\n", *transFlag)
		os.Exit(2)
	}
	if *minFlag < 0 || *maxFlag < *minFlag {
		fmt.Fprintln(os.Stderr, "bcastbench: bad min/max")
		os.Exit(2)
	}
	// Guard against accidental monster allocations: every rank holds one
	// buffer of -max bytes.
	for _, np := range nps {
		if total := np * *maxFlag; total > 4<<30 {
			fmt.Fprintf(os.Stderr, "bcastbench: np*max = %d bytes exceeds 4 GiB; scale down\n", total)
			os.Exit(2)
		}
	}

	// A flag that only acts in the other mode is rejected, not silently
	// dropped — silently dropping it would run a different measurement
	// than asked for.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	tuningMode := *autotuneFlag || *crossFlag
	if *autotuneFlag && *crossFlag {
		// The modes differ (candidate set, output, an extra netsim sweep);
		// picking one silently would run a different measurement than
		// asked for.
		fmt.Fprintln(os.Stderr, "bcastbench: -autotune and -crosscheck are mutually exclusive")
		os.Exit(2)
	}
	if !tuningMode {
		for from, to := range map[string]string{
			"segs": "-seg", "placements": "-cores", "reps": "-iters", "warmup": "-iters",
			"o": "", "samples": "", "candidates": "", "stat": "", "model": "",
		} {
			if !set[from] {
				continue
			}
			hint := ""
			if to != "" {
				hint = fmt.Sprintf(" (the benchmark spelling is %s)", to)
			}
			fmt.Fprintf(os.Stderr, "bcastbench: -%s requires -autotune or -crosscheck%s\n", from, hint)
			os.Exit(2)
		}
	}
	if tuningMode {
		// Symmetric with the check above: the benchmark-only knobs have a
		// tuning-mode spelling (-seg vs -segs, -cores vs -placements,
		// -iters vs -reps, -tune-table vs the emitted -o).
		for from, to := range map[string]string{
			"seg": "-segs", "cores": "-placements", "iters": "-reps", "tune-table": "-o", "algo": "-candidates",
			"metrics": "", "timeline": "", "spans": "",
		} {
			if set[from] {
				hint := ""
				if to != "" {
					hint = fmt.Sprintf("; tuning modes use %s", to)
				}
				fmt.Fprintf(os.Stderr, "bcastbench: -%s is benchmark-only%s\n", from, hint)
				os.Exit(2)
			}
		}
		if *persFlag {
			fmt.Fprintln(os.Stderr, "bcastbench: -persistent is benchmark-only (tuning modes measure the per-call path)")
			os.Exit(2)
		}
		if set["model"] && !*crossFlag {
			fmt.Fprintln(os.Stderr, "bcastbench: -model only selects the -crosscheck reference side")
			os.Exit(2)
		}
		if set["transport"] && *crossFlag {
			// The netsim reference side has no transport to vary, so an
			// engine-side transport would make the per-cell comparison
			// asymmetric by construction.
			fmt.Fprintln(os.Stderr, "bcastbench: -transport is not valid with -crosscheck (the netsim side has no transport)")
			os.Exit(2)
		}
		if *minFlag < 1 {
			// The size grid doubles from -min; starting at 0 would collapse
			// it to a single zero-byte point whose winner the emitted rules
			// would then extend to every message size.
			fmt.Fprintln(os.Stderr, "bcastbench: tuning modes need -min >= 1")
			os.Exit(2)
		}
		if *repsFlag < 1 {
			// Silently falling back to the default would run a different
			// measurement than asked for.
			fmt.Fprintln(os.Stderr, "bcastbench: tuning modes need -reps >= 1")
			os.Exit(2)
		}
		// The measure package treats Warmup 0 as "default" and a negative
		// value as "none"; an explicit -warmup 0 on the command line means
		// none.
		warmup := *warmupFlag
		if set["warmup"] && warmup == 0 {
			warmup = -1
		}
		if err := runTuning(nps, tuningOpts{
			min: *minFlag, max: *maxFlag,
			segs: *segsFlag, placements: *placeFlag, candSet: *candFlag,
			reps: *repsFlag, warmup: warmup, stat: *statFlag,
			root: *rootFlag, eager: *eagerFlag, model: *modelFlag,
			exec: execPol, workers: *workFlag, transport: *transFlag,
			crosscheck: *crossFlag, outPath: *outFlag, samplesPath: *samplesFlag,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "bcastbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Span rings are sized per rank; -timeline turns them on implicitly.
	// The trace file holds one run's spans, so it needs a single -np.
	spanCap := *spansFlag
	if spanCap < 0 {
		fmt.Fprintf(os.Stderr, "bcastbench: -spans must be non-negative, got %d\n", spanCap)
		os.Exit(2)
	}
	if *tlFlag != "" {
		if len(nps) != 1 {
			fmt.Fprintln(os.Stderr, "bcastbench: -timeline needs a single -np (one trace file per run)")
			os.Exit(2)
		}
		if spanCap == 0 {
			spanCap = 4096
		}
	}

	if *persFlag {
		if err := runPersistent(nps, persistOpts{
			algo: *algoFlag, table: *tableFlag, seg: *segFlag,
			min: *minFlag, max: *maxFlag, iters: *itersFlag,
			cores: *coresFlag, eager: *eagerFlag, root: *rootFlag,
			exec: execPol, workers: *workFlag, transport: *transFlag,
			spanCap: spanCap, metrics: *metricsFlag, timeline: *tlFlag,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "bcastbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.RealConfig{
		CoresPerNode: *coresFlag,
		EagerLimit:   *eagerFlag,
		Iterations:   *itersFlag,
		Root:         *rootFlag,
		SegSize:      *segFlag,
		Executor:     execPol,
		MaxWorkers:   *workFlag,
		Transport:    *transFlag,
	}
	label := *algoFlag
	switch {
	case *tableFlag != "":
		table, err := tune.LoadTable(*tableFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcastbench:", err)
			os.Exit(2)
		}
		cfg.Tuner = tune.TableTuner{Table: table, Fallback: tune.MPICH3{}}
		label = fmt.Sprintf("tune-table %q", table.Name)
	default:
		if variant, err := bench.ParseVariant(*algoFlag); err == nil {
			cfg.Variant = variant
			label = variant.String()
		} else if _, ok := collective.Lookup(*algoFlag); ok {
			cfg.Algo = *algoFlag
		} else {
			fmt.Fprintf(os.Stderr, "bcastbench: unknown algorithm %q (registry: %s)\n",
				*algoFlag, strings.Join(collective.Names(), ", "))
			os.Exit(2)
		}
	}
	for _, np := range nps {
		cfg.NP = np
		// One Metrics per rank count: every measurement world of this
		// section boots against it, so the snapshot spans the whole sweep.
		mx := metrics.New(np, spanCap)
		cfg.Metrics = mx
		fmt.Printf("# user-level bcast benchmark: %s, np=%d, iters=%d, exec=%s, transport=%s\n",
			label, np, *itersFlag, cfg.ExecLabel(), cfg.TransportLabel())
		fmt.Printf("%-12s %14s %14s\n", "bytes", "us/iter", "MB/s")
		for n := *minFlag; n <= *maxFlag; n *= 2 {
			res, err := bench.MeasureReal(cfg, n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bcastbench: size %d: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Printf("%-12d %14.2f %14.2f\n", n, res.Seconds*1e6, res.MBps)
			if n == 0 {
				break
			}
		}
		if err := report(engineSnapshot(mx, cfg.ExecLabel(), cfg.TransportLabel()), *metricsFlag, *tlFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bcastbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// engineSnapshot merges a benchmark run's Metrics and stamps the
// executor and transport labels the way the facade's Cluster.Metrics
// does.
func engineSnapshot(mx *metrics.Metrics, execLabel, transLabel string) metrics.Snapshot {
	s := engine.CollectMetrics(mx)
	s.Executor = execLabel
	s.Transport = transLabel
	return s
}

// report prints the snapshot and/or writes the Chrome trace, as asked.
func report(s metrics.Snapshot, print bool, timeline string) error {
	if print {
		fmt.Println(s.String())
	}
	if timeline == "" {
		return nil
	}
	f, err := os.Create(timeline)
	if err != nil {
		return err
	}
	if err := s.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", timeline, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("# %d spans written to %s (open in Perfetto or chrome://tracing)\n", len(s.Spans), timeline)
	return nil
}

// printSpansSummary is the offline -spans-summary mode: it loads a
// Chrome trace written by -timeline and prints per-operation latency
// percentiles.
func printSpansSummary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := metrics.LoadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("# span summary of %s (%d spans):\n", path, len(spans))
	fmt.Print(metrics.SummarizeSpans(spans))
	return nil
}

// tuningOpts bundles the -autotune/-crosscheck options.
type tuningOpts struct {
	min, max     int
	segs         string
	placements   string
	candSet      string
	reps, warmup int
	stat         string
	root, eager  int
	model        string
	exec         engine.ExecPolicy
	workers      int
	transport    string
	crosscheck   bool
	outPath      string
	samplesPath  string
}

// runTuning drives the real-engine auto-tuner: it builds the measurement
// grid, measures it with an EngineMeasurer (optionally recording raw
// samples), and either emits the engine-derived table (-autotune) or the
// netsim-versus-engine agreement report (-crosscheck).
func runTuning(procs []int, o tuningOpts) error {
	var sizes []int
	for n := o.min; n <= o.max; n *= 2 { // o.min >= 1, checked by the caller
		sizes = append(sizes, n)
	}
	segs, err := parseInts(o.segs)
	if err != nil {
		return fmt.Errorf("-segs: %w", err)
	}
	var placements []tune.Placement
	if strings.TrimSpace(o.placements) != "" {
		for _, tok := range strings.Split(o.placements, ",") {
			pl, err := tune.ParsePlacement(tok)
			if err != nil {
				return err
			}
			placements = append(placements, pl)
		}
	}
	stat, err := measure.ParseStat(o.stat)
	if err != nil {
		return err
	}
	var cands []tune.Candidate
	switch o.candSet {
	case "all":
		// nil = the whole registry
	case "mpich":
		cands = bench.FamilyCandidates()
	default:
		return fmt.Errorf("unknown -candidates %q (all|mpich)", o.candSet)
	}

	log := &measure.SampleLog{}
	eng := measure.EngineMeasurer{
		Warmup:     o.warmup,
		Reps:       o.reps,
		Root:       o.root,
		EagerLimit: o.eager,
		Stat:       stat,
		Executor:   o.exec,
		MaxWorkers: o.workers,
		Transport:  o.transport,
	}
	if o.samplesPath != "" {
		eng.Log = log
	}
	sweep := tune.SweepConfig{Procs: procs, Sizes: sizes, SegSizes: segs, Placements: placements}

	var table *tune.Table
	if o.crosscheck {
		var model *netsim.Model
		switch o.model {
		case "hornet":
			model = netsim.Hornet()
		case "laki":
			model = netsim.Laki()
		default:
			return fmt.Errorf("unknown -model %q (hornet|laki)", o.model)
		}
		report, err := bench.CrossCheck(bench.SimConfig{Model: model}, eng, cands, sweep)
		if err != nil {
			return err
		}
		fmt.Printf("# netsim (%s) vs real-engine cross-check, %d procs x %d sizes:\n",
			model.Name, len(procs), len(sizes))
		fmt.Print(bench.FormatCrossReport(report))
		table = report.EngTable
	} else {
		t, winners, err := bench.AutoTuneEngine(eng, cands, sweep)
		if err != nil {
			return err
		}
		fmt.Println("# real-engine auto-tuner grid winners:")
		fmt.Print(bench.FormatWinners(winners))
		table = t
	}

	if o.samplesPath != "" {
		if err := log.Save(o.samplesPath); err != nil {
			return err
		}
		fmt.Printf("# raw samples written to %s (%d records)\n", o.samplesPath, len(log.Records()))
	}
	if o.outPath != "" {
		if err := tune.SaveTable(table, o.outPath); err != nil {
			return err
		}
		fmt.Printf("# engine-derived tuning table written to %s (%d rules)\n", o.outPath, len(table.Rules))
		return nil
	}
	data, err := table.JSON()
	if err != nil {
		return err
	}
	fmt.Println("# engine-derived tuning table:")
	fmt.Println(string(data))
	return nil
}

// persistOpts bundles the -persistent benchmark options.
type persistOpts struct {
	algo, table string
	seg         int
	min, max    int
	iters       int
	cores       int
	eager, root int
	exec        engine.ExecPolicy
	workers     int
	transport   string
	spanCap     int
	metrics     bool
	timeline    string
}

// persistSelection maps the -algo spelling onto facade cluster options
// (the legacy variant names resolve to their registry algorithms, the
// auto modes to the MPICH3 tuner) and returns the printable label.
func persistSelection(algo string) ([]bcast.Option, string, error) {
	legacy := map[string]string{
		"native": bcast.RingNative, "opt": bcast.RingOpt,
		"binomial": bcast.Binomial, "smp": bcast.SMP, "smp-opt": bcast.SMPOpt,
	}
	switch {
	case algo == "auto":
		return []bcast.Option{bcast.Tuner(bcast.MPICH3Tuner(false))}, "auto (mpich3)", nil
	case algo == "auto-opt":
		return []bcast.Option{bcast.Tuner(bcast.MPICH3Tuner(true))}, "auto-opt (mpich3 tuned)", nil
	case legacy[algo] != "":
		return []bcast.Option{bcast.Algorithm(legacy[algo])}, legacy[algo], nil
	default:
		if _, ok := collective.Lookup(algo); ok {
			return []bcast.Option{bcast.Algorithm(algo)}, algo, nil
		}
		return nil, "", fmt.Errorf("unknown algorithm %q (registry: %s)",
			algo, strings.Join(collective.Names(), ", "))
	}
}

// runPersistent benchmarks the serving fast path through the public
// facade: per process count one cluster, per message size one Run that
// resolves a persistent handle with BcastInit and drives -iters
// Start/Wait rounds on it, timed on rank 0 between barriers. The
// cluster — and the world it boots — is reused across every size, so
// after the first row each printed bandwidth is pure steady state.
func runPersistent(nps []int, o persistOpts) error {
	sel, label, err := persistSelection(o.algo)
	if o.table != "" {
		sel, label, err = []bcast.Option{bcast.TuneTable(o.table)}, fmt.Sprintf("tune-table %q", o.table), nil
	}
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, np := range nps {
		opts := append([]bcast.Option{
			bcast.Procs(np),
			bcast.EagerLimit(o.eager),
			bcast.Timeout(10 * time.Minute),
		}, sel...)
		if o.cores > 0 {
			opts = append(opts, bcast.Placement(fmt.Sprintf("blocked:%d", o.cores)))
		}
		if o.seg > 0 {
			opts = append(opts, bcast.SegSize(o.seg))
		}
		if o.exec == engine.Pooled {
			opts = append(opts, bcast.ExecPooled(o.workers))
		}
		if o.transport != "" {
			opts = append(opts, bcast.WithTransport(o.transport))
		}
		if o.spanCap > 0 {
			opts = append(opts, bcast.WithSpans(o.spanCap))
		}
		cl, err := bcast.NewCluster(ctx, opts...)
		if err != nil {
			return fmt.Errorf("np=%d: %w", np, err)
		}
		fmt.Printf("# persistent bcast benchmark: %s, np=%d, iters=%d, exec=%s, transport=%s\n",
			label, np, o.iters, o.exec, cl.Transport())
		fmt.Printf("%-12s %14s %14s\n", "bytes", "us/iter", "MB/s")
		for n := o.min; n <= o.max; n *= 2 {
			var elapsed time.Duration
			err := cl.Run(ctx, func(c bcast.Comm) error {
				buf := make([]byte, n)
				if c.Rank() == o.root {
					for i := range buf {
						buf[i] = byte(i)
					}
				}
				ph, err := c.BcastInit(buf, o.root)
				if err != nil {
					return err
				}
				// One untimed round populates the pooled staging classes.
				if err := ph.Run(ctx); err != nil {
					return err
				}
				if err := c.Barrier(ctx); err != nil {
					return err
				}
				start := time.Now()
				for i := 0; i < o.iters; i++ {
					if err := ph.Run(ctx); err != nil {
						return err
					}
				}
				if err := c.Barrier(ctx); err != nil {
					return err
				}
				if c.Rank() == 0 {
					elapsed = time.Since(start)
				}
				return ph.Free()
			})
			if err != nil {
				return fmt.Errorf("np=%d size=%d: %w", np, n, err)
			}
			per := elapsed.Seconds() / float64(o.iters)
			fmt.Printf("%-12d %14.2f %14.2f\n", n, per*1e6, float64(n)/per/(1<<20))
			if n == 0 {
				break
			}
		}
		if err := report(cl.Metrics(), o.metrics, o.timeline); err != nil {
			return err
		}
	}
	return nil
}

// parseInts parses a comma-separated list of positive ints; empty input
// yields nil.
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}
