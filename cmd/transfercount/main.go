// Command transfercount tabulates the ring-allgather transfer counts of
// the native (enclosed) and tuned (non-enclosed) algorithms — the
// Section IV claims of the paper (P=8: 56 -> 44, P=10: 90 -> 75),
// generalized over P. With -measure, the counts are additionally
// verified by executing both broadcasts on the real engine under the
// traffic tracer and comparing observed message counts against the
// analytic model.
//
// Usage:
//
//	transfercount
//	transfercount -p 8,10,16,129 -n 65536 -measure
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func main() {
	var (
		pFlag       = flag.String("p", "2,4,8,10,16,32,64,129,256", "comma-separated process counts")
		nFlag       = flag.Int("n", 1<<20, "broadcast size in bytes for the byte columns")
		measureFlag = flag.Bool("measure", false, "verify counts by traced execution on the real engine (P <= 64)")
	)
	flag.Parse()

	var ps []int
	for _, tok := range strings.Split(*pFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "transfercount: bad process count %q\n", tok)
			os.Exit(2)
		}
		ps = append(ps, p)
	}

	fmt.Printf("# ring allgather transfer counts, n=%d bytes (analytic model)\n", *nFlag)
	fmt.Print(bench.FormatCounts(bench.TransferCounts(ps, *nFlag)))

	if !*measureFlag {
		return
	}
	fmt.Println("\n# traced execution on the real engine (ring phase only):")
	fmt.Printf("%-6s %12s %12s %8s\n", "P", "native-msgs", "tuned-msgs", "match")
	for _, p := range ps {
		if p > 64 {
			fmt.Printf("%-6d %12s %12s %8s\n", p, "-", "-", "skipped")
			continue
		}
		nat, err := measureRing(collective.BcastScatterRingAllgather, p, *nFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transfercount: %v\n", err)
			os.Exit(1)
		}
		opt, err := measureRing(collective.BcastScatterRingAllgatherOpt, p, *nFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transfercount: %v\n", err)
			os.Exit(1)
		}
		wantNat := core.RingTrafficNative(p, *nFlag).Messages
		wantOpt := core.RingTrafficTuned(p, *nFlag).Messages
		match := "OK"
		if int(nat) != wantNat || int(opt) != wantOpt {
			match = fmt.Sprintf("MISMATCH (want %d/%d)", wantNat, wantOpt)
		}
		fmt.Printf("%-6d %12d %12d %8s\n", p, nat, opt, match)
	}
}

func measureRing(algo func(mpi.Comm, []byte, int) error, p, n int) (int64, error) {
	col := trace.NewCollector()
	err := engine.Run(p, func(c mpi.Comm) error {
		tc := col.Wrap(c)
		buf := make([]byte, n)
		if tc.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		return algo(tc, buf, 0)
	})
	if err != nil {
		return 0, err
	}
	return col.Stats().ByTag[core.TagRing].Messages, nil
}
